module cedar

go 1.22
