//go:build !race

package tables

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
