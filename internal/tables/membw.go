package tables

import (
	"fmt"

	"cedar/internal/core"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// MemBWResult is the memory-system characterization study of [GJTV91],
// which the paper invokes to explain Table 1 ("consistent with the
// observed maximum bandwidth of memory system characterization
// benchmarks"): delivered aggregate bandwidth versus processor count and
// access stride.
type MemBWResult struct {
	Points []kernels.MemBWPoint
}

// RunMemBW executes the sweep: CE counts across the machine, with unit
// stride (all modules), a half-modules power-of-two stride, and the
// full-conflict stride that serializes every reference on one module.
func RunMemBW(wordsPerCE int, obs ...*scope.Hub) (*MemBWResult, error) {
	hub := scope.Of(obs)
	p := params.Default()
	res := &MemBWResult{}
	for _, nCE := range []int{1, 2, 4, 8, 16, 32} {
		for _, stride := range []int64{1, 2, int64(p.MemModules)} {
			m, err := core.New(p, core.Options{
				Scope: hub.Sub(fmt.Sprintf("membw/%dce/stride%d", nCE, stride)),
			})
			if err != nil {
				return nil, err
			}
			pt, err := kernels.MemBW(m, nCE, stride, wordsPerCE)
			if err != nil {
				return nil, fmt.Errorf("membw nCE=%d stride=%d: %w", nCE, stride, err)
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}

// PeakMBps returns the best observed aggregate bandwidth.
func (r *MemBWResult) PeakMBps() float64 {
	best := 0.0
	for _, pt := range r.Points {
		if pt.MBps > best {
			best = pt.MBps
		}
	}
	return best
}

// Format renders the characterization.
func (r *MemBWResult) Format() string {
	header := []string{"CEs", "stride", "words/cycle", "MB/s"}
	var rows [][]string
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.CEs),
			fmt.Sprintf("%d", pt.Stride),
			fmt.Sprintf("%.2f", pt.WordsPerCycle),
			fmt.Sprintf("%.0f", pt.MBps),
		})
	}
	s := "memory system characterization [GJTV91]\n"
	s += formatTable(header, rows)
	s += fmt.Sprintf("observed peak %.0f MB/s (wiring peak %.0f MB/s; the companion study sustained ≈500)\n", r.PeakMBps(), params.WiringPeakMBps)
	return s
}
