package tables

import (
	"fmt"

	"cedar/internal/core"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// MemBWResult is the memory-system characterization study of [GJTV91],
// which the paper invokes to explain Table 1 ("consistent with the
// observed maximum bandwidth of memory system characterization
// benchmarks"): delivered aggregate bandwidth versus processor count and
// access stride.
type MemBWResult struct {
	Points []kernels.MemBWPoint
}

// RunMemBW executes the sweep: CE counts across the machine, with unit
// stride (all modules), a half-modules power-of-two stride, and the
// full-conflict stride that serializes every reference on one module.
func RunMemBW(wordsPerCE int, obs ...*scope.Hub) (*MemBWResult, error) {
	hub := scope.Of(obs)
	p := params.Default()
	type point struct {
		nCE    int
		stride int64
	}
	var points []point
	for _, nCE := range []int{1, 2, 4, 8, 16, 32} {
		for _, stride := range []int64{1, 2, int64(p.MemModules)} {
			points = append(points, point{nCE: nCE, stride: stride})
		}
	}
	jobs := make([]fleet.Job[kernels.MemBWPoint], len(points))
	for i, pt := range points {
		jobs[i] = fleet.Job[kernels.MemBWPoint]{
			Key: fleet.Key("membw", p, pt.nCE, pt.stride, wordsPerCE),
			Run: func(h *scope.Hub) (kernels.MemBWPoint, error) {
				m, err := core.New(p, core.Options{
					Scope: h.Sub(fmt.Sprintf("membw/%dce/stride%d", pt.nCE, pt.stride)),
				})
				if err != nil {
					return kernels.MemBWPoint{}, err
				}
				out, err := kernels.MemBW(m, pt.nCE, pt.stride, wordsPerCE)
				if err != nil {
					return kernels.MemBWPoint{}, fmt.Errorf("membw nCE=%d stride=%d: %w", pt.nCE, pt.stride, err)
				}
				return out, nil
			},
		}
	}
	outs, err := fleet.Run(fleet.Config{Hub: hub}, jobs)
	if err != nil {
		return nil, err
	}
	return &MemBWResult{Points: outs}, nil
}

// PeakMBps returns the best observed aggregate bandwidth.
func (r *MemBWResult) PeakMBps() float64 {
	best := 0.0
	for _, pt := range r.Points {
		if pt.MBps > best {
			best = pt.MBps
		}
	}
	return best
}

// Format renders the characterization.
func (r *MemBWResult) Format() string {
	header := []string{"CEs", "stride", "words/cycle", "MB/s"}
	var rows [][]string
	for _, pt := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.CEs),
			fmt.Sprintf("%d", pt.Stride),
			fmt.Sprintf("%.2f", pt.WordsPerCycle),
			fmt.Sprintf("%.0f", pt.MBps),
		})
	}
	s := "memory system characterization [GJTV91]\n"
	s += formatTable(header, rows)
	s += fmt.Sprintf("observed peak %.0f MB/s (wiring peak %.0f MB/s; the companion study sustained ≈500)\n", r.PeakMBps(), params.WiringPeakMBps)
	return s
}
