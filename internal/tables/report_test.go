package tables

import (
	"strings"
	"testing"

	"cedar/internal/perfect"
)

func TestWriteReportKernelsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation in -short mode")
	}
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		RankN:           96,
		SkipPerfect:     true,
		SkipMethodology: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Cedar evaluation report",
		"Table 1", "Table 2", "GM/no-pref",
		"runtime overheads", "memory characterization",
		"network ablation", "scheduling ablation", "scaled Cedar",
		"report generated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Table 3") {
		t.Error("kernels-only report should skip the Perfect suite")
	}
}

func TestWriteReportMethodologySections(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation in -short mode")
	}
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		SkipKernels: true,
		Codes:       []perfect.Profile{perfect.QCD(), perfect.SPICE()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 3", "Table 4", "Table 5", "Table 6", "Figure 3", "PPT4",
		"QCD", "SPICE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Table 1 —") {
		t.Error("kernel sections should be skipped")
	}
}
