package tables

import (
	"strings"
	"testing"
	"time"

	"cedar/internal/perfect"
)

func TestWriteReportKernelsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation in -short mode")
	}
	if raceEnabled {
		t.Skip("full-report simulation is too slow under the race detector")
	}
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		RankN:           96,
		SkipPerfect:     true,
		SkipMethodology: true,
		Now:             time.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Cedar evaluation report",
		"Table 1", "Table 2", "GM/no-pref",
		"runtime overheads", "memory characterization",
		"network ablation", "scheduling ablation", "scaled Cedar",
		"report generated",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Table 3") {
		t.Error("kernels-only report should skip the Perfect suite")
	}
}

func TestWriteReportMethodologySections(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation in -short mode")
	}
	if raceEnabled {
		t.Skip("full-report simulation is too slow under the race detector")
	}
	var b strings.Builder
	err := WriteReport(&b, ReportConfig{
		SkipKernels: true,
		Codes:       []perfect.Profile{perfect.QCD(), perfect.SPICE()},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"Table 3", "Table 4", "Table 5", "Table 6", "Figure 3", "PPT4",
		"QCD", "SPICE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "Table 1 —") {
		t.Error("kernel sections should be skipped")
	}
}

// TestWriteReportDeterministic is the report half of the determinism
// invariant: with no injected clock, two identical runs must produce
// byte-identical output (see DESIGN.md "Determinism invariants").
func TestWriteReportDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation in -short mode")
	}
	if raceEnabled {
		t.Skip("full-report simulation is too slow under the race detector")
	}
	gen := func() string {
		var b strings.Builder
		err := WriteReport(&b, ReportConfig{
			RankN:           64,
			SkipPerfect:     true,
			SkipMethodology: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	first, second := gen(), gen()
	if first != second {
		line := 1
		for i := 0; i < len(first) && i < len(second); i++ {
			if first[i] != second[i] {
				t.Fatalf("reports diverge at byte %d (line %d)", i, line)
			}
			if first[i] == '\n' {
				line++
			}
		}
		t.Fatalf("reports differ in length: %d vs %d bytes", len(first), len(second))
	}
	if strings.Contains(first, "report generated") {
		t.Error("deterministic report (nil Now) must omit the wall-clock trailer")
	}
}
