package tables

import (
	"fmt"

	"cedar/internal/comparator"
	"cedar/internal/ppt"
)

// Table3Row is one Perfect code's line: execution times as speed
// improvements over the uniprocessor scalar version, the ablations, the
// automatable MFLOPS, and the Cray YMP/8 ratio.
type Table3Row struct {
	Code          string
	SerialSec     float64
	KAPSpeedup    float64
	AutoSpeedup   float64
	NoSyncSpeedup float64
	NoPrefSpeedup float64
	MFLOPS        float64
	YMPMFLOPS     float64
	YMPRatio      float64
}

// Table3Result is the full Perfect table plus the harmonic-mean summary.
type Table3Result struct {
	Rows          []Table3Row
	CedarHarmonic float64
	YMPHarmonic   float64
	RatioHarmonic float64
}

// BuildTable3 derives the table from a completed suite run.
func BuildTable3(s *SuiteResult) *Table3Result {
	ymp := comparator.NewYMP8()
	res := &Table3Result{}
	var cedarRates, ympRates []float64
	for _, p := range s.Profiles {
		serial := s.Serial[p.Name].Seconds
		row := Table3Row{
			Code:          p.Name,
			SerialSec:     serial,
			KAPSpeedup:    serial / s.KAP[p.Name].Seconds,
			AutoSpeedup:   serial / s.Auto[p.Name].Seconds,
			NoSyncSpeedup: serial / s.NoSync[p.Name].Seconds,
			NoPrefSpeedup: serial / s.NoPref[p.Name].Seconds,
			MFLOPS:        s.Auto[p.Name].MFLOPS,
		}
		row.YMPMFLOPS = ymp.AutoMFLOPS(p.Summary())
		row.YMPRatio = row.YMPMFLOPS / row.MFLOPS
		cedarRates = append(cedarRates, row.MFLOPS)
		ympRates = append(ympRates, row.YMPMFLOPS)
		res.Rows = append(res.Rows, row)
	}
	res.CedarHarmonic = ppt.HarmonicMean(cedarRates)
	res.YMPHarmonic = ppt.HarmonicMean(ympRates)
	if res.CedarHarmonic > 0 {
		res.RatioHarmonic = res.YMPHarmonic / res.CedarHarmonic
	}
	return res
}

// Format renders the table in the paper's layout.
func (t *Table3Result) Format() string {
	header := []string{"Code", "Serial(s)", "KAP", "Automatable", "NoSync", "NoPref", "MFLOPS", "YMP/Cedar"}
	var rows [][]string
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Code,
			fmt.Sprintf("%.0f", r.SerialSec),
			fmt.Sprintf("%.1f", r.KAPSpeedup),
			fmt.Sprintf("%.1f", r.AutoSpeedup),
			fmt.Sprintf("%.1f", r.NoSyncSpeedup),
			fmt.Sprintf("%.1f", r.NoPrefSpeedup),
			fmt.Sprintf("%.2f", r.MFLOPS),
			fmt.Sprintf("%.1f", r.YMPRatio),
		})
	}
	s := formatTable(header, rows)
	s += fmt.Sprintf("harmonic-mean MFLOPS: Cedar %.1f, YMP/8 %.1f, ratio %.1f (paper: 3.2, 23.7, 7.4)\n",
		t.CedarHarmonic, t.YMPHarmonic, t.RatioHarmonic)
	return s
}

// Table4Row is one hand-optimized code: time and improvement over the
// automatable-with-prefetch-without-Cedar-sync version, the paper's
// reference point ("We use prefetch but not Cedar synchronization").
type Table4Row struct {
	Code        string
	HandSec     float64
	Improvement float64
}

// BuildTable4 derives Table 4. The reference variant (auto + prefetch,
// no Cedar sync) equals the suite's NoSync run.
func BuildTable4(s *SuiteResult) []Table4Row {
	var rows []Table4Row
	for _, p := range s.Profiles {
		hand, ok := s.Hand[p.Name]
		if !ok {
			continue
		}
		ref := s.NoSync[p.Name].Seconds
		rows = append(rows, Table4Row{
			Code:        p.Name,
			HandSec:     hand.Seconds,
			Improvement: ref / hand.Seconds,
		})
	}
	return rows
}

// FormatTable4 renders Table 4.
func FormatTable4(rows []Table4Row) string {
	header := []string{"Code", "Time(s)", "Improvement"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Code, fmt.Sprintf("%.1f", r.HandSec), fmt.Sprintf("%.1f", r.Improvement),
		})
	}
	s := formatTable(header, out)
	s += "paper: ARC2D 68 s (2.1), BDNA 70 (1.7), FLO52 33, DYFESM 31, TRFD 7.5 (2.8), QCD 21 (11.4), SPICE 26\n"
	return s
}
