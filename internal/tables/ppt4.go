package tables

import (
	"fmt"

	"cedar/internal/comparator"
	"cedar/internal/core"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/ppt"
	"cedar/internal/scope"
)

// PPT4Point is one (P, N) measurement of the scalability study.
type PPT4Point struct {
	P      int
	N      int
	MFLOPS float64
	Eff    float64
	Band   ppt.Band
}

// PPT4Result holds the §4.3 code/architecture scalability study: the
// conjugate gradient solver on Cedar with 2-32 processors and problem
// sizes up to 172K, against the CM-5 banded matrix-vector products at
// 32/256/512 nodes. The paper's reading: Cedar is scalable with high
// performance for matrices larger than roughly 10-16K and intermediate
// below; the 32-processor Cedar delivers 34-48 MFLOPS over 10K ≤ N ≤
// 172K; the CM-5 never reaches the high band and delivers 28-32 (BW=3)
// and 58-67 (BW=11) MFLOPS on 32 nodes.
type PPT4Result struct {
	Cedar []PPT4Point
	CM5   map[int][]PPT4Point // bandwidth -> points
	// CedarBanded runs [FWPS92]'s own kernel on Cedar for the paper's
	// "per-processor MFLOPS of the two systems are roughly equivalent"
	// remark.
	CedarBanded map[int][]PPT4Point
}

// ppt4Iters is enough CG iterations to amortize startup.
const ppt4Iters = 3

// RunPPT4 executes the study. full selects the paper's largest sizes;
// otherwise a reduced sweep with the same structure runs.
func RunPPT4(full bool, obs ...*scope.Hub) (*PPT4Result, error) {
	hub := scope.Of(obs)
	ns := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	if full {
		ns = append(ns, 172<<10)
	}
	ps := []int{2, 4, 8, 16, 32}
	res := &PPT4Result{CM5: map[int][]PPT4Point{}, CedarBanded: map[int][]PPT4Point{}}

	// Per-processor-count baselines come from the 2-CE run scaled down;
	// the efficiency baseline is a single CE running the same kernel.
	for _, n := range ns {
		base, err := runCG(n, 1, hub)
		if err != nil {
			return nil, err
		}
		for _, p := range ps {
			out, err := runCG(n, p, hub)
			if err != nil {
				return nil, err
			}
			eff := ppt.Efficiency(base.Seconds/out.Seconds, p)
			res.Cedar = append(res.Cedar, PPT4Point{
				P: p, N: n, MFLOPS: out.MFLOPS, Eff: eff,
				Band: ppt.BandOfEfficiency(eff, p),
			})
		}
	}

	// Banded matvec on Cedar itself, 32 CEs, the CM-5 problem range.
	for _, bw := range []int{3, 11} {
		for _, n := range []int{16 << 10, 64 << 10} {
			m, err := core.New(params.Default(), core.Options{
				Scope: hub.Sub(fmt.Sprintf("ppt4/banded/bw%d/n%d", bw, n)),
			})
			if err != nil {
				return nil, err
			}
			out, err := kernels.Banded(m, kernels.BandedConfig{N: n, BW: bw})
			if err != nil {
				return nil, fmt.Errorf("ppt4 banded n=%d bw=%d: %w", n, bw, err)
			}
			res.CedarBanded[bw] = append(res.CedarBanded[bw], PPT4Point{
				P: 32, N: n, MFLOPS: out.MFLOPS,
			})
		}
	}

	cm5 := comparator.NewCM5()
	for _, bw := range []int{3, 11} {
		for _, p := range []int{32, 256, 512} {
			for _, n := range []int{16 << 10, 64 << 10, 256 << 10} {
				eff := cm5.BandedEfficiency(n, bw, p)
				res.CM5[bw] = append(res.CM5[bw], PPT4Point{
					P: p, N: n, MFLOPS: cm5.BandedMFLOPS(n, bw, p),
					Eff: eff, Band: ppt.BandOfEfficiency(eff, p),
				})
			}
		}
	}
	return res, nil
}

func runCG(n, p int, hub *scope.Hub) (core.Result, error) {
	pm := params.Default()
	m, err := core.New(pm, core.Options{
		Scope: hub.Sub(fmt.Sprintf("ppt4/cg/n%d/p%d", n, p)),
	})
	if err != nil {
		return core.Result{}, err
	}
	out, err := kernels.CG(m, kernels.CGConfig{N: n, Iters: ppt4Iters, MaxCEs: p})
	if err != nil {
		return core.Result{}, fmt.Errorf("ppt4 CG n=%d p=%d: %w", n, p, err)
	}
	return out.Result, nil
}

// Cedar32Range returns the min and max 32-CE MFLOPS over N ≥ 10K (the
// paper: 34 to 48).
func (r *PPT4Result) Cedar32Range() (lo, hi float64) {
	lo, hi = 1e18, 0
	for _, pt := range r.Cedar {
		if pt.P == 32 && pt.N >= 10<<10 {
			if pt.MFLOPS < lo {
				lo = pt.MFLOPS
			}
			if pt.MFLOPS > hi {
				hi = pt.MFLOPS
			}
		}
	}
	return
}

// Format renders both halves of the study.
func (r *PPT4Result) Format() string {
	header := []string{"P", "N", "MFLOPS", "eff", "band"}
	var rows [][]string
	for _, pt := range r.Cedar {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.P), fmt.Sprintf("%d", pt.N),
			fmt.Sprintf("%.1f", pt.MFLOPS), fmt.Sprintf("%.2f", pt.Eff),
			pt.Band.String(),
		})
	}
	s := "Cedar CG scalability (paper: high band for N above ≈10-16K; 34-48 MFLOPS at 32 CEs)\n"
	s += formatTable(header, rows)
	lo, hi := r.Cedar32Range()
	s += fmt.Sprintf("32-CE CG range over N ≥ 10K: %.1f - %.1f MFLOPS (paper: 34 - 48)\n\n", lo, hi)
	for _, bw := range []int{3, 11} {
		s += fmt.Sprintf("CM-5 banded matvec BW=%d (paper 32 nodes: %s MFLOPS; never high band)\n",
			bw, map[int]string{3: "28-32", 11: "58-67"}[bw])
		rows = rows[:0]
		for _, pt := range r.CM5[bw] {
			rows = append(rows, []string{
				fmt.Sprintf("%d", pt.P), fmt.Sprintf("%d", pt.N),
				fmt.Sprintf("%.1f", pt.MFLOPS), fmt.Sprintf("%.2f", pt.Eff),
				pt.Band.String(),
			})
		}
		s += formatTable(header, rows) + "\n"
	}
	s += "banded matvec on Cedar itself (32 CEs; the paper: per-processor rates of the two systems are roughly equivalent)\n"
	rows = rows[:0]
	for _, bw := range []int{3, 11} {
		for _, pt := range r.CedarBanded[bw] {
			rows = append(rows, []string{
				fmt.Sprintf("%d", pt.P), fmt.Sprintf("%d", pt.N),
				fmt.Sprintf("%.1f", pt.MFLOPS),
				fmt.Sprintf("BW=%d", bw), "",
			})
		}
	}
	s += formatTable(header, rows)
	return s
}
