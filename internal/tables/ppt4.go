package tables

import (
	"fmt"

	"cedar/internal/comparator"
	"cedar/internal/core"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/ppt"
	"cedar/internal/scope"
)

// PPT4Point is one (P, N) measurement of the scalability study.
type PPT4Point struct {
	P      int
	N      int
	MFLOPS float64
	Eff    float64
	Band   ppt.Band
}

// PPT4Result holds the §4.3 code/architecture scalability study: the
// conjugate gradient solver on Cedar with 2-32 processors and problem
// sizes up to 172K, against the CM-5 banded matrix-vector products at
// 32/256/512 nodes. The paper's reading: Cedar is scalable with high
// performance for matrices larger than roughly 10-16K and intermediate
// below; the 32-processor Cedar delivers 34-48 MFLOPS over 10K ≤ N ≤
// 172K; the CM-5 never reaches the high band and delivers 28-32 (BW=3)
// and 58-67 (BW=11) MFLOPS on 32 nodes.
type PPT4Result struct {
	Cedar []PPT4Point
	CM5   map[int][]PPT4Point // bandwidth -> points
	// CedarBanded runs [FWPS92]'s own kernel on Cedar for the paper's
	// "per-processor MFLOPS of the two systems are roughly equivalent"
	// remark.
	CedarBanded map[int][]PPT4Point
}

// ppt4Iters is enough CG iterations to amortize startup.
const ppt4Iters = 3

// RunPPT4 executes the study. full selects the paper's largest sizes;
// otherwise a reduced sweep with the same structure runs.
func RunPPT4(full bool, obs ...*scope.Hub) (*PPT4Result, error) {
	hub := scope.Of(obs)
	ns := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	if full {
		ns = append(ns, 172<<10)
	}
	ps := []int{2, 4, 8, 16, 32}
	res := &PPT4Result{CM5: map[int][]PPT4Point{}, CedarBanded: map[int][]PPT4Point{}}
	pm := params.Default()

	// Per-processor-count baselines come from the 2-CE run scaled down;
	// the efficiency baseline is a single CE running the same kernel. The
	// baseline and sweep runs are all independent simulations, so every
	// (n, p) pair — p = 1 baselines included — is one pool job, and the
	// efficiencies are derived after reassembly.
	type cgPoint struct{ n, p int }
	var cgPoints []cgPoint
	for _, n := range ns {
		cgPoints = append(cgPoints, cgPoint{n, 1})
		for _, p := range ps {
			cgPoints = append(cgPoints, cgPoint{n, p})
		}
	}
	cgJobs := make([]fleet.Job[core.Result], len(cgPoints))
	for i, pt := range cgPoints {
		cgJobs[i] = fleet.Job[core.Result]{
			Key: fleet.Key("ppt4/cg", pm, pt.n, pt.p, ppt4Iters),
			Run: func(h *scope.Hub) (core.Result, error) {
				return runCG(pt.n, pt.p, h)
			},
		}
	}
	cgOuts, err := fleet.Run(fleet.Config{Hub: hub}, cgJobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for range ns {
		base := cgOuts[i]
		i++
		for _, p := range ps {
			out := cgOuts[i]
			pt := cgPoints[i]
			i++
			eff := ppt.Efficiency(base.Seconds/out.Seconds, p)
			res.Cedar = append(res.Cedar, PPT4Point{
				P: p, N: pt.n, MFLOPS: out.MFLOPS, Eff: eff,
				Band: ppt.BandOfEfficiency(eff, p),
			})
		}
	}

	// Banded matvec on Cedar itself, 32 CEs, the CM-5 problem range.
	type bandedPoint struct{ bw, n int }
	var bandedPoints []bandedPoint
	for _, bw := range []int{3, 11} {
		for _, n := range []int{16 << 10, 64 << 10} {
			bandedPoints = append(bandedPoints, bandedPoint{bw: bw, n: n})
		}
	}
	bandedJobs := make([]fleet.Job[float64], len(bandedPoints))
	for i, pt := range bandedPoints {
		bandedJobs[i] = fleet.Job[float64]{
			Key: fleet.Key("ppt4/banded", pm, pt.n, pt.bw),
			Run: func(h *scope.Hub) (float64, error) {
				m, err := core.New(pm, core.Options{
					Scope: h.Sub(fmt.Sprintf("ppt4/banded/bw%d/n%d", pt.bw, pt.n)),
				})
				if err != nil {
					return 0, err
				}
				out, err := kernels.Banded(m, kernels.BandedConfig{N: pt.n, BW: pt.bw})
				if err != nil {
					return 0, fmt.Errorf("ppt4 banded n=%d bw=%d: %w", pt.n, pt.bw, err)
				}
				return out.MFLOPS, nil
			},
		}
	}
	bandedOuts, err := fleet.Run(fleet.Config{Hub: hub}, bandedJobs)
	if err != nil {
		return nil, err
	}
	for i, pt := range bandedPoints {
		res.CedarBanded[pt.bw] = append(res.CedarBanded[pt.bw], PPT4Point{
			P: 32, N: pt.n, MFLOPS: bandedOuts[i],
		})
	}

	// The CM-5 comparator sweep: analytic, but still a set of independent
	// machine evaluations, dispatched like the simulated ones (uncached —
	// the evaluation is cheaper than a cache key).
	type cm5Point struct{ bw, p, n int }
	var cm5Points []cm5Point
	for _, bw := range []int{3, 11} {
		for _, p := range []int{32, 256, 512} {
			for _, n := range []int{16 << 10, 64 << 10, 256 << 10} {
				cm5Points = append(cm5Points, cm5Point{bw: bw, p: p, n: n})
			}
		}
	}
	cm5Jobs := make([]fleet.Job[PPT4Point], len(cm5Points))
	for i, pt := range cm5Points {
		cm5Jobs[i] = fleet.Job[PPT4Point]{
			Run: func(*scope.Hub) (PPT4Point, error) {
				mflops, eff := comparator.NewCM5().BandedPoint(pt.n, pt.bw, pt.p)
				return PPT4Point{
					P: pt.p, N: pt.n, MFLOPS: mflops,
					Eff: eff, Band: ppt.BandOfEfficiency(eff, pt.p),
				}, nil
			},
		}
	}
	cm5Outs, err := fleet.Run(fleet.Config{Hub: hub}, cm5Jobs)
	if err != nil {
		return nil, err
	}
	for i, pt := range cm5Points {
		res.CM5[pt.bw] = append(res.CM5[pt.bw], cm5Outs[i])
	}
	return res, nil
}

func runCG(n, p int, hub *scope.Hub) (core.Result, error) {
	pm := params.Default()
	m, err := core.New(pm, core.Options{
		Scope: hub.Sub(fmt.Sprintf("ppt4/cg/n%d/p%d", n, p)),
	})
	if err != nil {
		return core.Result{}, err
	}
	out, err := kernels.CG(m, kernels.CGConfig{N: n, Iters: ppt4Iters, MaxCEs: p})
	if err != nil {
		return core.Result{}, fmt.Errorf("ppt4 CG n=%d p=%d: %w", n, p, err)
	}
	return out.Result, nil
}

// Cedar32Range returns the min and max 32-CE MFLOPS over N ≥ 10K (the
// paper: 34 to 48).
func (r *PPT4Result) Cedar32Range() (lo, hi float64) {
	lo, hi = 1e18, 0
	for _, pt := range r.Cedar {
		if pt.P == 32 && pt.N >= 10<<10 {
			if pt.MFLOPS < lo {
				lo = pt.MFLOPS
			}
			if pt.MFLOPS > hi {
				hi = pt.MFLOPS
			}
		}
	}
	return
}

// Format renders both halves of the study.
func (r *PPT4Result) Format() string {
	header := []string{"P", "N", "MFLOPS", "eff", "band"}
	var rows [][]string
	for _, pt := range r.Cedar {
		rows = append(rows, []string{
			fmt.Sprintf("%d", pt.P), fmt.Sprintf("%d", pt.N),
			fmt.Sprintf("%.1f", pt.MFLOPS), fmt.Sprintf("%.2f", pt.Eff),
			pt.Band.String(),
		})
	}
	s := "Cedar CG scalability (paper: high band for N above ≈10-16K; 34-48 MFLOPS at 32 CEs)\n"
	s += formatTable(header, rows)
	lo, hi := r.Cedar32Range()
	s += fmt.Sprintf("32-CE CG range over N ≥ 10K: %.1f - %.1f MFLOPS (paper: 34 - 48)\n\n", lo, hi)
	for _, bw := range []int{3, 11} {
		s += fmt.Sprintf("CM-5 banded matvec BW=%d (paper 32 nodes: %s MFLOPS; never high band)\n",
			bw, map[int]string{3: "28-32", 11: "58-67"}[bw])
		rows = rows[:0]
		for _, pt := range r.CM5[bw] {
			rows = append(rows, []string{
				fmt.Sprintf("%d", pt.P), fmt.Sprintf("%d", pt.N),
				fmt.Sprintf("%.1f", pt.MFLOPS), fmt.Sprintf("%.2f", pt.Eff),
				pt.Band.String(),
			})
		}
		s += formatTable(header, rows) + "\n"
	}
	s += "banded matvec on Cedar itself (32 CEs; the paper: per-processor rates of the two systems are roughly equivalent)\n"
	rows = rows[:0]
	for _, bw := range []int{3, 11} {
		for _, pt := range r.CedarBanded[bw] {
			rows = append(rows, []string{
				fmt.Sprintf("%d", pt.P), fmt.Sprintf("%d", pt.N),
				fmt.Sprintf("%.1f", pt.MFLOPS),
				fmt.Sprintf("BW=%d", bw), "",
			})
		}
	}
	s += formatTable(header, rows)
	return s
}
