package tables

import (
	"math"
	"strings"
	"testing"

	"cedar/internal/params"
	"cedar/internal/perfect"
	"cedar/internal/ppt"
)

// smallSuite runs a 3-code suite once per test binary invocation.
var smallSuiteCache *SuiteResult

func smallSuite(t *testing.T) *SuiteResult {
	t.Helper()
	if raceEnabled {
		t.Skip("Perfect suite simulation is too slow under the race detector")
	}
	if smallSuiteCache != nil {
		return smallSuiteCache
	}
	s, err := RunSuite(params.Default(),
		[]perfect.Profile{perfect.ARC2D(), perfect.QCD(), perfect.SPICE()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	smallSuiteCache = s
	return s
}

func TestSuiteRunsAllVariants(t *testing.T) {
	s := smallSuite(t)
	for _, name := range []string{"ARC2D", "QCD", "SPICE"} {
		for label, m := range map[string]map[string]perfect.Outcome{
			"serial": s.Serial, "kap": s.KAP, "auto": s.Auto,
			"nosync": s.NoSync, "nopref": s.NoPref,
		} {
			if _, ok := m[name]; !ok {
				t.Errorf("%s missing %s outcome", name, label)
			}
		}
		if _, ok := s.Hand[name]; !ok {
			t.Errorf("%s missing hand outcome (all three have Table 4 versions)", name)
		}
	}
}

func TestTable3Structure(t *testing.T) {
	s := smallSuite(t)
	t3 := BuildTable3(s)
	if len(t3.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(t3.Rows))
	}
	for _, r := range t3.Rows {
		if r.SerialSec <= 0 || r.MFLOPS <= 0 {
			t.Errorf("%s: non-positive entries: %+v", r.Code, r)
		}
		if r.AutoSpeedup < r.KAPSpeedup*0.9 {
			t.Errorf("%s: automatable (%.1f) worse than KAP (%.1f)", r.Code, r.AutoSpeedup, r.KAPSpeedup)
		}
		if r.NoSyncSpeedup > r.AutoSpeedup*1.05 {
			t.Errorf("%s: removing Cedar sync improved speedup %.1f > %.1f", r.Code, r.NoSyncSpeedup, r.AutoSpeedup)
		}
		if r.NoPrefSpeedup > r.NoSyncSpeedup*1.05 {
			t.Errorf("%s: removing prefetch improved speedup", r.Code)
		}
	}
	// ARC2D is the strong code; SPICE the weak one.
	byName := map[string]Table3Row{}
	for _, r := range t3.Rows {
		byName[r.Code] = r
	}
	if byName["ARC2D"].AutoSpeedup <= byName["SPICE"].AutoSpeedup {
		t.Error("ARC2D should outrun SPICE")
	}
	if !strings.Contains(t3.Format(), "harmonic") {
		t.Error("format should include the harmonic-mean summary")
	}
}

func TestTable4Structure(t *testing.T) {
	s := smallSuite(t)
	rows := BuildTable4(s)
	if len(rows) != 3 {
		t.Fatalf("%d hand rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Improvement < 1 {
			t.Errorf("%s: hand version slower than automatable (%.2f)", r.Code, r.Improvement)
		}
	}
	if out := FormatTable4(rows); !strings.Contains(out, "QCD") {
		t.Error("format lost a code")
	}
}

func TestTable5And6Structure(t *testing.T) {
	s := smallSuite(t)
	t5 := BuildTable5(s)
	for _, sys := range t5.Systems {
		in := t5.In[sys]
		// In(K, e) is non-increasing in e; entries with e ≥ K are +Inf
		// markers (only 3 codes in the small suite) and are skipped.
		for i := 1; i < len(in); i++ {
			if math.IsInf(in[i], 1) {
				continue
			}
			if in[i-1] < in[i] {
				t.Errorf("%s: instability not non-increasing in e: %v", sys, in)
			}
		}
	}
	t6 := BuildTable6(s)
	if t6.CedarHigh+t6.CedarInter+t6.CedarUnacc != 3 {
		t.Errorf("Cedar band counts don't sum: %+v", t6)
	}
	if t6.YMPHigh+t6.YMPInter+t6.YMPUnacc != 3 {
		t.Errorf("YMP band counts don't sum: %+v", t6)
	}
	if !strings.Contains(t5.Format(), "In(13,0)") || !strings.Contains(t6.Format(), "High") {
		t.Error("formats incomplete")
	}
}

func TestFigure3Structure(t *testing.T) {
	s := smallSuite(t)
	f := BuildFigure3(s)
	if len(f.Points) != 3 {
		t.Fatalf("%d points, want 3", len(f.Points))
	}
	for _, p := range f.Points {
		if p.CedarEff < 0 || p.CedarEff > 1.2 || p.YMPEff < 0 || p.YMPEff > 1.2 {
			t.Errorf("%s: implausible efficiencies %+v", p.Code, p)
		}
		if !p.Hand {
			t.Errorf("%s: should use a hand version", p.Code)
		}
	}
	out := f.Format()
	if !strings.Contains(out, "Cedar eff.") || !strings.Contains(out, "*") {
		t.Error("scatter plot missing")
	}
}

func TestTable1SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 sweep in -short mode")
	}
	t1, err := RunTable1(96)
	if err != nil {
		t.Fatal(err)
	}
	// Structural facts from the paper that survive small matrices:
	// prefetch and cache beat no-pref everywhere; no-pref scales linearly.
	for c := 0; c < 4; c++ {
		if t1.MFLOPS[1][c] <= t1.MFLOPS[0][c] {
			t.Errorf("clusters=%d: prefetch (%.1f) not faster than no-pref (%.1f)",
				c+1, t1.MFLOPS[1][c], t1.MFLOPS[0][c])
		}
		if t1.MFLOPS[2][c] <= t1.MFLOPS[0][c] {
			t.Errorf("clusters=%d: cache (%.1f) not faster than no-pref (%.1f)",
				c+1, t1.MFLOPS[2][c], t1.MFLOPS[0][c])
		}
	}
	if lin := t1.MFLOPS[0][3] / t1.MFLOPS[0][0]; lin < 3.5 || lin > 4.5 {
		t.Errorf("no-pref 1→4 cluster scaling %.2f, want ≈4 (latency-bound)", lin)
	}
	if !strings.Contains(t1.Format(), "GM/cache") {
		t.Error("format incomplete")
	}
}

func TestTable2SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 sweep in -short mode")
	}
	t2, err := RunTable2Small()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range t2.Kernels {
		// Latency can only grow with CE count; floors hold.
		if t2.Latency[k][8] < 8 {
			t.Errorf("%s: latency %.1f below hardware floor", k, t2.Latency[k][8])
		}
		if t2.Inter[k][8] < 1 {
			t.Errorf("%s: interarrival %.2f below floor", k, t2.Inter[k][8])
		}
		if t2.Latency[k][32] < t2.Latency[k][8] {
			t.Errorf("%s: latency fell with more CEs (%.1f → %.1f)",
				k, t2.Latency[k][8], t2.Latency[k][32])
		}
		if t2.Blocks[k][8] == 0 {
			t.Errorf("%s: no blocks monitored", k)
		}
	}
	if !strings.Contains(t2.Format(), "lat@32") {
		t.Error("format incomplete")
	}
}

func TestOverheadsMatchPaper(t *testing.T) {
	ov, err := RunOverheads()
	if err != nil {
		t.Fatal(err)
	}
	if ov.XDoallStartupUS < 75 || ov.XDoallStartupUS > 115 {
		t.Errorf("XDOALL startup %.1f µs, want ≈90", ov.XDoallStartupUS)
	}
	if ov.FetchNoSyncUS < 20 || ov.FetchNoSyncUS > 45 {
		t.Errorf("iteration fetch %.1f µs, want ≈30", ov.FetchNoSyncUS)
	}
	if ov.FetchCedarSyncUS >= ov.FetchNoSyncUS/2 {
		t.Errorf("Cedar-sync fetch %.1f µs should be far below the library path %.1f",
			ov.FetchCedarSyncUS, ov.FetchNoSyncUS)
	}
	if ov.CDoallStartUS < 1 || ov.CDoallStartUS > 10 {
		t.Errorf("CDOALL start %.1f µs, want a few µs", ov.CDoallStartUS)
	}
}

func TestNetworkAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := RunNetworkAblation(96)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The [Turn93] claim: relief comes from fixing implementation
	// constraints, so the as-built configuration must not beat the
	// deeper-queue or ideal fabrics.
	asBuilt, deep, xbar := rows[0], rows[1], rows[2]
	if asBuilt.MFLOPS > deep.MFLOPS*1.05 {
		t.Errorf("deeper queues slower than as-built: %.1f vs %.1f", deep.MFLOPS, asBuilt.MFLOPS)
	}
	if asBuilt.MFLOPS > xbar.MFLOPS*1.05 {
		t.Errorf("ideal crossbar slower than as-built: %.1f vs %.1f", xbar.MFLOPS, asBuilt.MFLOPS)
	}
	if !strings.Contains(FormatNetworkAblation(rows), "Turn93") {
		t.Error("format incomplete")
	}
}

func TestPrefetchBlockAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := RunPrefetchBlockAblation(128)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Block != 0 {
		t.Fatal("first row should be no-prefetch")
	}
	for _, r := range rows[1:] {
		if r.MFLOPS <= rows[0].MFLOPS*1.5 {
			t.Errorf("block %d (%.1f) not clearly faster than no prefetch (%.1f)",
				r.Block, r.MFLOPS, rows[0].MFLOPS)
		}
	}
	// Under a full cluster's contention, ever-larger blocks stop paying
	// (the paper: RK, with the longest blocks and full overlap, degrades
	// most quickly); we only require diminishing, not negative, returns
	// to stay robust to calibration.
	if rows[len(rows)-1].MFLOPS < rows[1].MFLOPS*0.5 {
		t.Errorf("512-word blocks (%.1f) collapsed vs 32-word blocks (%.1f)",
			rows[len(rows)-1].MFLOPS, rows[1].MFLOPS)
	}
}

func TestBandMathUsedByTables(t *testing.T) {
	// Spot-check the thresholds the tables rely on.
	if ppt.BandOfEfficiency(0.5, 32) != ppt.High {
		t.Error("0.5 on 32 should be high")
	}
	if ppt.BandOfEfficiency(0.2, 32) != ppt.Intermediate {
		t.Error("0.2 on 32 should be intermediate")
	}
}

func TestSchedulingAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation in -short mode")
	}
	rows, err := RunSchedulingAblation()
	if err != nil {
		t.Fatal(err)
	}
	get := func(wl, pol string, sync bool) int64 {
		for _, r := range rows {
			if r.Workload == wl && r.Policy == pol && r.CedarSync == sync {
				return r.Cycles
			}
		}
		t.Fatalf("missing row %s/%s/%v", wl, pol, sync)
		return 0
	}
	// Balanced: static is cheapest (no claims); guided close behind;
	// library-path scheduling is catastrophic.
	if !(get("balanced", "static", true) <= get("balanced", "guided", true)) {
		t.Error("static should win a balanced loop")
	}
	if get("balanced", "self", false) < 10*get("balanced", "self", true) {
		t.Error("library-path self-scheduling should be an order of magnitude slower")
	}
	// Imbalanced: dynamic policies must beat static chunking.
	if !(get("imbalanced", "guided", true) < get("imbalanced", "static", true)) {
		t.Error("guided should beat static on an imbalanced tail")
	}
	if !(get("imbalanced", "self", true) < get("imbalanced", "static", true)) {
		t.Error("self should beat static on an imbalanced tail")
	}
	if !strings.Contains(FormatScheduling(rows), "guided") {
		t.Error("format incomplete")
	}
}
