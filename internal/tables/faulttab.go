package tables

import (
	"errors"
	"fmt"

	"cedar/internal/core"
	"cedar/internal/fault"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// DegradedRow is one fault scenario's result on the 32-CE prefetched
// rank-n update.
type DegradedRow struct {
	Scenario string
	MFLOPS   float64
	Cycles   int64
	Slowdown float64 // cycles relative to the healthy row
	Injected int64   // faults fired (stalls + jams + drops + NACKs)
	Retries  int64   // PFU element reissues
	DeadMods int     // memory modules remapped around
	Status   string  // "ok" or the degradation error
}

// degradedSeed keys the built-in scenarios' probability draws.
const degradedSeed = 0xCEDA2

// RunDegraded measures graceful degradation: the prefetched rank-n
// update under a healthy machine and under each fault class — a dead
// memory bank (interleave remaps around it), a jammed first network
// stage, transient module NACKs, and lossy links — plus the caller's
// plan when one is given. Failures surface as a row status, never as a
// crashed table: that is the point of the exercise.
func RunDegraded(n int, plan *fault.Plan, obs ...*scope.Hub) ([]DegradedRow, error) {
	hub := scope.Of(obs)
	type scenario struct {
		name string
		key  string // scope-namespace token (no spaces)
		plan *fault.Plan
	}
	scenarios := []scenario{
		{"healthy (no faults)", "healthy", nil},
		{"dead bank (module 3 remapped)", "deadbank", &fault.Plan{Seed: degradedSeed, Faults: []fault.Fault{
			{Kind: fault.BankDead, Module: 3},
		}}},
		{"stage jam (fwd stage 0, 5%)", "stagejam", &fault.Plan{Seed: degradedSeed, Faults: []fault.Fault{
			{Kind: fault.StageJam, Fabric: "fwd", Stage: 0, Line: -1, Rate: 0.05},
		}}},
		{"pfu nacks (all modules, 2%)", "pfunack", &fault.Plan{Seed: degradedSeed, Faults: []fault.Fault{
			{Kind: fault.PFUNack, Module: -1, Rate: 0.02},
		}}},
		{"link drops (both nets, 0.5%)", "linkdrop", &fault.Plan{Seed: degradedSeed, Faults: []fault.Fault{
			{Kind: fault.LinkDrop, Stage: -1, Line: -1, Rate: 0.005},
		}}},
		{"combined (dead bank + jam + nacks)", "combined", fault.DemoPlan()},
	}
	if plan != nil {
		scenarios = append(scenarios, scenario{"as configured (-faults plan)", "configured", plan})
	}

	jobs := make([]fleet.Job[DegradedRow], len(scenarios))
	for i, sc := range scenarios {
		jobs[i] = fleet.Job[DegradedRow]{
			// The plan fingerprint stands in for the (pointer-bearing)
			// plan itself; "" is the healthy machine.
			Key: fleet.Key("degraded", params.Default(), sc.key, sc.plan.Fingerprint(), n),
			Run: func(h *scope.Hub) (DegradedRow, error) {
				opt := core.Options{Scope: h.Sub("degraded/" + sc.key), Faults: sc.plan, NoFaults: sc.plan == nil}
				m, err := core.New(params.Default(), opt)
				if err != nil {
					return DegradedRow{}, err
				}
				row := DegradedRow{Scenario: sc.name, Status: "ok"}
				out, err := kernels.RankUpdate(m, n, kernels.RKPref)
				switch {
				case err == nil:
					row.MFLOPS = out.MFLOPS
					row.Cycles = out.Cycles
				case errors.Is(err, fault.ErrDegraded):
					// The run was abandoned; report what the machine
					// measured before giving up.
					row.Status = "degraded"
					row.Cycles = m.Engine.Cycle()
				default:
					return DegradedRow{}, fmt.Errorf("degraded %s: %w", sc.name, err)
				}
				fc := m.FaultCounters()
				row.Injected = fc.Injected
				row.Retries = fc.Retries
				row.DeadMods = fc.DeadMods
				return row, nil
			},
		}
	}
	rows, err := fleet.Run(fleet.Config{Hub: hub}, jobs)
	if err != nil {
		return nil, err
	}
	if len(rows) > 0 && rows[0].Cycles > 0 {
		for i := range rows {
			rows[i].Slowdown = float64(rows[i].Cycles) / float64(rows[0].Cycles)
		}
	}
	return rows, nil
}

// FormatDegraded renders the degraded-mode table.
func FormatDegraded(rows []DegradedRow) string {
	header := []string{"scenario", "MFLOPS", "cycles", "slowdown", "injected", "retries", "dead", "status"}
	var out [][]string
	for _, r := range rows {
		mflops := "-"
		if r.Status == "ok" {
			mflops = fmt.Sprintf("%.1f", r.MFLOPS)
		}
		out = append(out, []string{
			r.Scenario,
			mflops,
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.2fx", r.Slowdown),
			fmt.Sprintf("%d", r.Injected),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.DeadMods),
			r.Status,
		})
	}
	s := formatTable(header, out)
	s += "fault model: deterministic injection (seed-keyed counter PRNG); dead banks remap the interleave,\n" +
		"NACKed/lost prefetch reads retry with exponential backoff, exhaustion degrades the run instead of crashing it\n"
	return s
}
