package tables

import (
	"fmt"
	"io"
	"time"

	"cedar/internal/params"
	"cedar/internal/perfect"
	"cedar/internal/scope"
)

// ReportConfig selects what the full report includes and at what scale.
type ReportConfig struct {
	// RankN is the rank-64 update order (paper: 1K; default 256).
	RankN int
	// FullPPT4 includes the paper's largest CG sizes.
	FullPPT4 bool
	// Codes restricts the Perfect suite (nil = all 13).
	Codes []perfect.Profile
	// Progress receives per-run lines (nil = quiet).
	Progress io.Writer
	// SkipKernels / SkipPerfect / SkipMethodology drop report sections.
	SkipKernels     bool
	SkipPerfect     bool
	SkipMethodology bool
	// Now supplies wall-clock time for the "report generated in ..."
	// trailer. When nil (the default) the trailer is omitted, so two
	// identical runs produce byte-identical reports; CLIs that want the
	// timing pass time.Now.
	Now func() time.Time
	// Scope, when non-nil, observes every machine the report builds and
	// adds a cycle-attribution section.
	Scope *scope.Hub
}

// WriteReport regenerates the paper's complete evaluation and writes a
// markdown-ish report to w. It is the programmatic equivalent of running
// cedarsim, perfect and judge back to back.
func WriteReport(w io.Writer, cfg ReportConfig) error {
	if cfg.RankN == 0 {
		cfg.RankN = 256
	}
	var started time.Time
	if cfg.Now != nil {
		started = cfg.Now()
	}
	fmt.Fprintf(w, "# Cedar evaluation report\n\n")
	fmt.Fprintf(w, "machine: %d clusters × %d CEs, %.0f MFLOPS peak, %.0f effective\n\n",
		params.Default().Clusters, params.Default().CEsPerCluster,
		params.Default().PeakMFLOPS(), params.Default().EffectivePeakMFLOPS())

	section := func(title string) { fmt.Fprintf(w, "\n## %s\n\n", title) }

	if !cfg.SkipKernels {
		section("§3.2 runtime overheads")
		ov, err := RunOverheads(cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, ov.Format())

		section(fmt.Sprintf("Table 1 — rank-64 update (n=%d)", cfg.RankN))
		t1, err := RunTable1(cfg.RankN, cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, t1.Format())

		section("Table 2 — global memory performance")
		t2, err := RunTable2Small(cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, t2.Format())

		section("[GJTV91] memory characterization")
		bw, err := RunMemBW(2048, cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, bw.Format())

		section("[Turn93] network ablation")
		net, err := RunNetworkAblation(cfg.RankN, cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, FormatNetworkAblation(net))

		section("Prefetch block-size ablation")
		pref, err := RunPrefetchBlockAblation(cfg.RankN, cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, FormatPrefetchBlock(pref))

		section("Loop scheduling ablation")
		sched, err := RunSchedulingAblation(cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, FormatScheduling(sched))

		section("PPT5 probe — scaled Cedar")
		scaled, err := RunScaledCedar(cfg.RankN, cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, FormatScaled(scaled))
	}

	var suite *SuiteResult
	if !cfg.SkipPerfect || !cfg.SkipMethodology {
		var err error
		suite, err = RunSuite(params.Default(), cfg.Codes, cfg.Progress, cfg.Scope)
		if err != nil {
			return err
		}
	}

	if !cfg.SkipPerfect {
		section("Table 3 — Perfect Benchmarks")
		fmt.Fprint(w, BuildTable3(suite).Format())

		section("Table 4 — manually altered Perfect codes")
		fmt.Fprint(w, FormatTable4(BuildTable4(suite)))
	}

	if !cfg.SkipMethodology {
		section("Table 5 — instability")
		fmt.Fprint(w, BuildTable5(suite).Format())

		section("Table 6 — restructuring efficiency")
		fmt.Fprint(w, BuildTable6(suite).Format())

		section("Figure 3 — YMP/8 vs Cedar efficiency")
		fmt.Fprint(w, BuildFigure3(suite).Format())

		section("PPT4 — scalability")
		p4, err := RunPPT4(cfg.FullPPT4, cfg.Scope)
		if err != nil {
			return err
		}
		fmt.Fprint(w, p4.Format())
	}

	if cfg.Scope != nil {
		section("Cycle attribution")
		fmt.Fprint(w, scope.FormatAttribution(cfg.Scope.Attribution()))
	}

	if cfg.Now != nil {
		fmt.Fprintf(w, "\n---\nreport generated in %s of host time\n", cfg.Now().Sub(started).Round(time.Second))
	}
	return nil
}
