// Package tables regenerates every table and figure of the paper's
// evaluation: the rank-64 update memory study (Table 1), the global
// memory latency/interarrival study (Table 2), the Perfect Benchmarks
// results (Tables 3 and 4), the stability and restructuring-efficiency
// analyses (Tables 5 and 6), the Cedar-vs-YMP efficiency scatter
// (Figure 3), the PPT4 scalability study (CG on Cedar vs banded matvec on
// the CM-5), plus the §3.2 runtime overhead measurements and the design
// ablations DESIGN.md calls out (network type/queue depth, prefetch block
// size, scaled-up Cedar).
package tables

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/perfect"
	"cedar/internal/scope"
)

// SuiteResult holds every Perfect outcome the later tables need.
type SuiteResult struct {
	Profiles []perfect.Profile
	// Per code name:
	Serial map[string]perfect.Outcome
	KAP    map[string]perfect.Outcome
	Auto   map[string]perfect.Outcome
	NoSync map[string]perfect.Outcome // automatable without Cedar sync
	NoPref map[string]perfect.Outcome // ... and without prefetch
	Hand   map[string]perfect.Outcome // Table 4 versions where they exist
}

// RunSuite executes all variants of the given Perfect codes (nil = full
// suite). progress, if non-nil, receives one line per completed run, in
// submission order. The (code × variant) points are independent whole
// simulations, so they dispatch to the fleet worker pool; the maps are
// filled from the reassembled results only, never from worker goroutines.
func RunSuite(pm params.Machine, codes []perfect.Profile, progress io.Writer, obs ...*scope.Hub) (*SuiteResult, error) {
	hub := scope.Of(obs)
	if codes == nil {
		codes = perfect.All()
	}
	hand := perfect.HandOptimized()
	s := &SuiteResult{
		Profiles: codes,
		Serial:   map[string]perfect.Outcome{},
		KAP:      map[string]perfect.Outcome{},
		Auto:     map[string]perfect.Outcome{},
		NoSync:   map[string]perfect.Outcome{},
		NoPref:   map[string]perfect.Outcome{},
		Hand:     map[string]perfect.Outcome{},
	}
	type variant struct {
		dst  map[string]perfect.Outcome
		spec perfect.Spec
		only bool // only for hand-optimized codes
	}
	variants := []variant{
		{s.Serial, perfect.Spec{Variant: perfect.Serial}, false},
		{s.KAP, perfect.Spec{Variant: perfect.KAP}, false},
		{s.Auto, perfect.Spec{Variant: perfect.Auto}, false},
		{s.NoSync, perfect.Spec{Variant: perfect.Auto, NoSync: true}, false},
		{s.NoPref, perfect.Spec{Variant: perfect.Auto, NoSync: true, NoPref: true}, false},
		{s.Hand, perfect.Spec{Variant: perfect.Hand}, true},
	}
	type point struct {
		profile perfect.Profile
		v       variant
	}
	var points []point
	for _, p := range codes {
		for _, v := range variants {
			if v.only && !hand[p.Name] {
				continue
			}
			points = append(points, point{p, v})
		}
	}
	jobs := make([]fleet.Job[perfect.Outcome], len(points))
	for i, pt := range points {
		jobs[i] = fleet.Job[perfect.Outcome]{
			Key: fleet.Key("perfect", pm, pt.profile, pt.v.spec),
			Run: func(h *scope.Hub) (perfect.Outcome, error) {
				out, err := perfect.Run(pm, pt.profile, pt.v.spec,
					h.Sub(fmt.Sprintf("perfect/%s/%s", pt.profile.Name, label(pt.v.spec))))
				if err != nil {
					return out, fmt.Errorf("tables: %s: %w", pt.profile.Name, err)
				}
				return out, nil
			},
		}
	}
	outs, err := fleet.Run(fleet.Config{Hub: hub}, jobs)
	if err != nil {
		return nil, err
	}
	for i, out := range outs {
		pt := points[i]
		pt.v.dst[pt.profile.Name] = out
		if progress != nil {
			fmt.Fprintf(progress, "  %-8s %-12v %8.1f s %7.2f MFLOPS\n",
				pt.profile.Name, label(pt.v.spec), out.Seconds, out.MFLOPS)
		}
	}
	return s, nil
}

func label(spec perfect.Spec) string {
	s := spec.Variant.String()
	if spec.NoSync {
		s += "-nosync"
	}
	if spec.NoPref {
		s += "-nopref"
	}
	return s
}

// BestSeconds returns the hand time where one exists, else automatable.
func (s *SuiteResult) BestSeconds(code string) float64 {
	if o, ok := s.Hand[code]; ok {
		return o.Seconds
	}
	return s.Auto[code].Seconds
}

// BestMFLOPS mirrors BestSeconds.
func (s *SuiteResult) BestMFLOPS(code string) float64 {
	if o, ok := s.Hand[code]; ok {
		return o.MFLOPS
	}
	return s.Auto[code].MFLOPS
}

// Names returns the code names in suite order.
func (s *SuiteResult) Names() []string {
	names := make([]string, 0, len(s.Profiles))
	for _, p := range s.Profiles {
		names = append(names, p.Name)
	}
	return names
}

// column formats a fixed-width table from rows of cells.
func formatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys(m map[string]perfect.Outcome) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
