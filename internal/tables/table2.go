package tables

import (
	"fmt"

	"strings"

	"cedar/internal/core"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// Table2 reproduces "Global memory performance": mean first-word latency
// and interarrival time (CE cycles, minimums 8 and 1) of CE 0's prefetch
// requests for four kernels — vector load (VL), tridiagonal matvec (TM),
// rank-64 update (RK, 256-word blocks, aggressively overlapped), and
// conjugate gradient (CG) — on 8, 16 and 32 processors. The paper's
// finding: contention degrades both metrics as CEs are added; RK degrades
// most (longest blocks, fully overlapped), VL less (32-word blocks), TM
// and CG least (register-register operations reduce memory demand).
type Table2Result struct {
	Kernels []string
	CEs     []int
	Latency map[string]map[int]float64
	Inter   map[string]map[int]float64
	Blocks  map[string]map[int]int64
}

// table2Sizes keeps each kernel's simulated slice moderate.
type table2Size struct {
	vlWords int
	tmN     int
	rkN     int
	cgN     int
}

// RunTable2 executes the kernel × processor-count sweep.
func RunTable2(obs ...*scope.Hub) (*Table2Result, error) {
	return runTable2(table2Size{vlWords: 4096, tmN: 16384, rkN: 192, cgN: 16384}, scope.Of(obs))
}

// RunTable2Small is a reduced version for tests.
func RunTable2Small(obs ...*scope.Hub) (*Table2Result, error) {
	return runTable2(table2Size{vlWords: 1024, tmN: 4096, rkN: 96, cgN: 4096}, scope.Of(obs))
}

// t2Stats is one (kernel, CE-count) point's measurements.
type t2Stats struct {
	Latency float64
	Inter   float64
	Blocks  int64
}

func runTable2(sz table2Size, hub *scope.Hub) (*Table2Result, error) {
	res := &Table2Result{
		Kernels: []string{"VL", "TM", "RK", "CG"},
		CEs:     []int{8, 16, 32},
		Latency: map[string]map[int]float64{},
		Inter:   map[string]map[int]float64{},
		Blocks:  map[string]map[int]int64{},
	}
	for _, k := range res.Kernels {
		res.Latency[k] = map[int]float64{}
		res.Inter[k] = map[int]float64{}
		res.Blocks[k] = map[int]int64{}
	}
	kernel := map[string]func(m *core.Machine) (kernels.Result, error){
		"VL": func(m *core.Machine) (kernels.Result, error) {
			return kernels.VectorLoad(m, sz.vlWords, 2)
		},
		"TM": func(m *core.Machine) (kernels.Result, error) {
			return kernels.TriMat(m, sz.tmN)
		},
		"RK": func(m *core.Machine) (kernels.Result, error) {
			return kernels.RankUpdate(m, sz.rkN, kernels.RKPref)
		},
		"CG": func(m *core.Machine) (kernels.Result, error) {
			return kernels.CG(m, kernels.CGConfig{N: sz.cgN, Iters: 1})
		},
	}
	type point struct {
		name string
		ces  int
	}
	var points []point
	for _, ces := range res.CEs {
		for _, name := range res.Kernels {
			points = append(points, point{name: name, ces: ces})
		}
	}
	jobs := make([]fleet.Job[t2Stats], len(points))
	for i, pt := range points {
		p := params.Default()
		p.Clusters = pt.ces / p.CEsPerCluster
		f := kernel[pt.name]
		jobs[i] = fleet.Job[t2Stats]{
			Key: fleet.Key("table2", p, pt.name, sz),
			Run: func(h *scope.Hub) (t2Stats, error) {
				m, err := core.New(p, core.Options{
					Scope: h.Sub(fmt.Sprintf("t2/%s/%dce", strings.ToLower(pt.name), pt.ces)),
				})
				if err != nil {
					return t2Stats{}, err
				}
				out, err := f(m)
				if err != nil {
					return t2Stats{}, fmt.Errorf("table2 %s %d CEs: %w", pt.name, pt.ces, err)
				}
				return t2Stats{
					Latency: out.Blocks.MeanLatency(),
					Inter:   out.Blocks.MeanInterarrival(),
					Blocks:  out.Blocks.Blocks(),
				}, nil
			},
		}
	}
	outs, err := fleet.Run(fleet.Config{Hub: hub}, jobs)
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		res.Latency[pt.name][pt.ces] = outs[i].Latency
		res.Inter[pt.name][pt.ces] = outs[i].Inter
		res.Blocks[pt.name][pt.ces] = outs[i].Blocks
	}
	return res, nil
}

// Format renders the table.
func (t *Table2Result) Format() string {
	header := []string{"kernel"}
	for _, c := range t.CEs {
		header = append(header, fmt.Sprintf("lat@%d", c), fmt.Sprintf("int@%d", c))
	}
	var rows [][]string
	for _, k := range t.Kernels {
		row := []string{k}
		for _, c := range t.CEs {
			row = append(row,
				fmt.Sprintf("%.1f", t.Latency[k][c]),
				fmt.Sprintf("%.2f", t.Inter[k][c]))
		}
		rows = append(rows, row)
	}
	s := formatTable(header, rows)
	s += "minimal latency 8 cycles, minimal interarrival 1 cycle (hardware floors)\n"
	return s
}
