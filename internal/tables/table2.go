package tables

import (
	"fmt"

	"strings"

	"cedar/internal/core"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// Table2 reproduces "Global memory performance": mean first-word latency
// and interarrival time (CE cycles, minimums 8 and 1) of CE 0's prefetch
// requests for four kernels — vector load (VL), tridiagonal matvec (TM),
// rank-64 update (RK, 256-word blocks, aggressively overlapped), and
// conjugate gradient (CG) — on 8, 16 and 32 processors. The paper's
// finding: contention degrades both metrics as CEs are added; RK degrades
// most (longest blocks, fully overlapped), VL less (32-word blocks), TM
// and CG least (register-register operations reduce memory demand).
type Table2Result struct {
	Kernels []string
	CEs     []int
	Latency map[string]map[int]float64
	Inter   map[string]map[int]float64
	Blocks  map[string]map[int]int64
}

// table2Sizes keeps each kernel's simulated slice moderate.
type table2Size struct {
	vlWords int
	tmN     int
	rkN     int
	cgN     int
}

// RunTable2 executes the kernel × processor-count sweep.
func RunTable2(obs ...*scope.Hub) (*Table2Result, error) {
	return runTable2(table2Size{vlWords: 4096, tmN: 16384, rkN: 192, cgN: 16384}, scope.Of(obs))
}

// RunTable2Small is a reduced version for tests.
func RunTable2Small(obs ...*scope.Hub) (*Table2Result, error) {
	return runTable2(table2Size{vlWords: 1024, tmN: 4096, rkN: 96, cgN: 4096}, scope.Of(obs))
}

func runTable2(sz table2Size, hub *scope.Hub) (*Table2Result, error) {
	res := &Table2Result{
		Kernels: []string{"VL", "TM", "RK", "CG"},
		CEs:     []int{8, 16, 32},
		Latency: map[string]map[int]float64{},
		Inter:   map[string]map[int]float64{},
		Blocks:  map[string]map[int]int64{},
	}
	for _, k := range res.Kernels {
		res.Latency[k] = map[int]float64{}
		res.Inter[k] = map[int]float64{}
		res.Blocks[k] = map[int]int64{}
	}
	for _, ces := range res.CEs {
		p := params.Default()
		p.Clusters = ces / p.CEsPerCluster
		run := func(name string, f func(m *core.Machine) (kernels.Result, error)) error {
			m, err := core.New(p, core.Options{
				Scope: hub.Sub(fmt.Sprintf("t2/%s/%dce", strings.ToLower(name), ces)),
			})
			if err != nil {
				return err
			}
			out, err := f(m)
			if err != nil {
				return fmt.Errorf("table2 %s %d CEs: %w", name, ces, err)
			}
			res.Latency[name][ces] = out.Blocks.MeanLatency()
			res.Inter[name][ces] = out.Blocks.MeanInterarrival()
			res.Blocks[name][ces] = out.Blocks.Blocks()
			return nil
		}
		if err := run("VL", func(m *core.Machine) (kernels.Result, error) {
			return kernels.VectorLoad(m, sz.vlWords, 2)
		}); err != nil {
			return nil, err
		}
		if err := run("TM", func(m *core.Machine) (kernels.Result, error) {
			return kernels.TriMat(m, sz.tmN)
		}); err != nil {
			return nil, err
		}
		if err := run("RK", func(m *core.Machine) (kernels.Result, error) {
			return kernels.RankUpdate(m, sz.rkN, kernels.RKPref)
		}); err != nil {
			return nil, err
		}
		if err := run("CG", func(m *core.Machine) (kernels.Result, error) {
			return kernels.CG(m, kernels.CGConfig{N: sz.cgN, Iters: 1})
		}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Format renders the table.
func (t *Table2Result) Format() string {
	header := []string{"kernel"}
	for _, c := range t.CEs {
		header = append(header, fmt.Sprintf("lat@%d", c), fmt.Sprintf("int@%d", c))
	}
	var rows [][]string
	for _, k := range t.Kernels {
		row := []string{k}
		for _, c := range t.CEs {
			row = append(row,
				fmt.Sprintf("%.1f", t.Latency[k][c]),
				fmt.Sprintf("%.2f", t.Inter[k][c]))
		}
		rows = append(rows, row)
	}
	s := formatTable(header, rows)
	s += "minimal latency 8 cycles, minimal interarrival 1 cycle (hardware floors)\n"
	return s
}
