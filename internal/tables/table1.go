package tables

import (
	"fmt"

	"cedar/internal/core"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// Table1 reproduces "MFLOPS for rank-64 update on Cedar": three memory
// variants across 1-4 clusters. The paper's values (n = 1K):
//
//	GM/no-pref  14.5   29.0   43.0   55.0
//	GM/pref     50.0   84.0   96.0  104.0
//	GM/cache    52.0  104.0  152.0  208.0
type Table1Result struct {
	N      int
	Modes  []kernels.RKMode
	MFLOPS [][]float64 // [mode][clusters-1]
}

// RunTable1 executes the sweep. n is the matrix order (the paper used 1K;
// 256 preserves the shape at a fraction of the simulation cost). An
// optional scope hub observes every machine in the sweep, each under its
// own t1/<mode>/<k>cl namespace.
func RunTable1(n int, obs ...*scope.Hub) (*Table1Result, error) {
	hub := scope.Of(obs)
	modes := []kernels.RKMode{kernels.RKNoPref, kernels.RKPref, kernels.RKCache}
	res := &Table1Result{N: n, Modes: modes, MFLOPS: make([][]float64, len(modes))}
	type point struct {
		mi       int
		clusters int
		mode     kernels.RKMode
	}
	var points []point
	for mi, mode := range modes {
		res.MFLOPS[mi] = make([]float64, 4)
		for clusters := 1; clusters <= 4; clusters++ {
			points = append(points, point{mi: mi, clusters: clusters, mode: mode})
		}
	}
	jobs := make([]fleet.Job[float64], len(points))
	for i, pt := range points {
		p := params.Default()
		p.Clusters = pt.clusters
		jobs[i] = fleet.Job[float64]{
			Key: fleet.Key("table1", p, int(pt.mode), n),
			Run: func(h *scope.Hub) (float64, error) {
				m, err := core.New(p, core.Options{
					Scope: h.Sub(fmt.Sprintf("t1/%s/%dcl", rkShort(pt.mode), pt.clusters)),
				})
				if err != nil {
					return 0, err
				}
				out, err := kernels.RankUpdate(m, n, pt.mode)
				if err != nil {
					return 0, fmt.Errorf("table1 %v %d clusters: %w", pt.mode, pt.clusters, err)
				}
				return out.MFLOPS, nil
			},
		}
	}
	outs, err := fleet.Run(fleet.Config{Hub: hub}, jobs)
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		res.MFLOPS[pt.mi][pt.clusters-1] = outs[i]
	}
	return res, nil
}

// rkShort is the metric-namespace token for an RK mode (mode.String()
// contains '/', which would split scope prefixes).
func rkShort(m kernels.RKMode) string {
	switch m {
	case kernels.RKNoPref:
		return "nopref"
	case kernels.RKPref:
		return "pref"
	case kernels.RKCache:
		return "cache"
	}
	return fmt.Sprintf("mode%d", int(m))
}

// PrefetchGain returns GM/pref over GM/no-pref per cluster count (the
// paper: 3.5, 2.9, 2.2, 1.9).
func (t *Table1Result) PrefetchGain() []float64 {
	g := make([]float64, 4)
	for c := 0; c < 4; c++ {
		g[c] = t.MFLOPS[1][c] / t.MFLOPS[0][c]
	}
	return g
}

// CacheGain returns GM/cache over GM/no-pref per cluster count (the
// paper: 3.5 ... 3.8).
func (t *Table1Result) CacheGain() []float64 {
	g := make([]float64, 4)
	for c := 0; c < 4; c++ {
		g[c] = t.MFLOPS[2][c] / t.MFLOPS[0][c]
	}
	return g
}

// CacheEfficiency returns the 4-cluster GM/cache rate as a fraction of
// the effective (vector-startup-limited) peak; the paper reports 74%.
func (t *Table1Result) CacheEfficiency() float64 {
	return t.MFLOPS[2][3] / params.Default().EffectivePeakMFLOPS()
}

// Format renders the table in the paper's layout.
func (t *Table1Result) Format() string {
	header := []string{fmt.Sprintf("rank-64 n=%d", t.N), "1 cl.", "2 cl.", "3 cl.", "4 cl."}
	var rows [][]string
	for mi, mode := range t.Modes {
		row := []string{mode.String()}
		for c := 0; c < 4; c++ {
			row = append(row, fmt.Sprintf("%.1f", t.MFLOPS[mi][c]))
		}
		rows = append(rows, row)
	}
	s := formatTable(header, rows)
	g := t.PrefetchGain()
	s += fmt.Sprintf("prefetch gain: %.1f %.1f %.1f %.1f (paper: 3.5 2.9 2.2 1.9)\n",
		g[0], g[1], g[2], g[3])
	s += fmt.Sprintf("GM/cache 4-cluster efficiency vs effective peak: %.0f%% (paper: 74%%)\n",
		100*t.CacheEfficiency())
	return s
}
