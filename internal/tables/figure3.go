package tables

import (
	"fmt"
	"strings"

	"cedar/internal/comparator"
	"cedar/internal/ppt"
)

// Figure3Point is one code in the Cray YMP/8 vs Cedar efficiency scatter
// for the manually optimized Perfect codes.
type Figure3Point struct {
	Code      string
	CedarEff  float64
	YMPEff    float64
	CedarBand ppt.Band
	YMPBand   ppt.Band
	Hand      bool // Cedar point uses a Table 4 hand version
}

// Figure3Result is the scatter plus the band tallies the paper reads off
// it: the 8-processor YMP about half high and half intermediate with one
// unacceptable; the 32-processor Cedar about one-quarter high and
// three-quarters intermediate with none unacceptable.
type Figure3Result struct {
	Points                            []Figure3Point
	CedarHigh, CedarInter, CedarUnacc int
	YMPHigh, YMPInter, YMPUnacc       int
}

// BuildFigure3 derives the scatter from the suite, using hand versions
// where they exist (the paper's "manually optimized" set).
func BuildFigure3(s *SuiteResult) *Figure3Result {
	ymp := comparator.NewYMP8()
	res := &Figure3Result{}
	for _, p := range s.Profiles {
		speedup := s.Serial[p.Name].Seconds / s.BestSeconds(p.Name)
		_, hand := s.Hand[p.Name]
		pt := Figure3Point{
			Code:     p.Name,
			CedarEff: ppt.Efficiency(speedup, 32),
			YMPEff:   ymp.HandEfficiency(p.Summary()),
			Hand:     hand,
		}
		pt.CedarBand = ppt.BandOfEfficiency(pt.CedarEff, 32)
		pt.YMPBand = ppt.BandOfEfficiency(pt.YMPEff, 8)
		res.Points = append(res.Points, pt)
		switch pt.CedarBand {
		case ppt.High:
			res.CedarHigh++
		case ppt.Intermediate:
			res.CedarInter++
		default:
			res.CedarUnacc++
		}
		switch pt.YMPBand {
		case ppt.High:
			res.YMPHigh++
		case ppt.Intermediate:
			res.YMPInter++
		default:
			res.YMPUnacc++
		}
	}
	return res
}

// Format renders the scatter as a table plus an ASCII plot in the spirit
// of the paper's Figure 3 (YMP efficiency vs Cedar efficiency, banded).
func (f *Figure3Result) Format() string {
	header := []string{"Code", "Cedar Ep", "band", "YMP Ep", "band", "version"}
	var rows [][]string
	for _, p := range f.Points {
		v := "auto"
		if p.Hand {
			v = "hand"
		}
		rows = append(rows, []string{
			p.Code,
			fmt.Sprintf("%.3f", p.CedarEff), p.CedarBand.String()[:1],
			fmt.Sprintf("%.3f", p.YMPEff), p.YMPBand.String()[:1],
			v,
		})
	}
	s := formatTable(header, rows)
	s += fmt.Sprintf("Cedar bands H/I/U: %d/%d/%d (paper: ≈1/4 high, ≈3/4 intermediate, 0 unacceptable)\n",
		f.CedarHigh, f.CedarInter, f.CedarUnacc)
	s += fmt.Sprintf("YMP   bands H/I/U: %d/%d/%d (paper: ≈half high, half intermediate, 1 unacceptable)\n",
		f.YMPHigh, f.YMPInter, f.YMPUnacc)
	s += "\n" + f.plot()
	return s
}

// plot draws a crude scatter: x = Cedar efficiency, y = YMP efficiency.
func (f *Figure3Result) plot() string {
	const w, h = 51, 21
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y float64, c byte) {
		col := int(x * float64(w-1))
		row := h - 1 - int(y*float64(h-1))
		if col < 0 {
			col = 0
		}
		if col >= w {
			col = w - 1
		}
		if row < 0 {
			row = 0
		}
		if row >= h {
			row = h - 1
		}
		grid[row][col] = c
	}
	for _, p := range f.Points {
		c := byte('o')
		if p.Hand {
			c = '*'
		}
		put(p.CedarEff, p.YMPEff, c)
	}
	var b strings.Builder
	b.WriteString("YMP eff.\n")
	for i, row := range grid {
		y := 1 - float64(i)/float64(h-1)
		if i%5 == 0 {
			fmt.Fprintf(&b, "%4.1f |%s|\n", y, string(row))
		} else {
			fmt.Fprintf(&b, "     |%s|\n", string(row))
		}
	}
	b.WriteString("      " + strings.Repeat("-", w) + "\n")
	b.WriteString("      0.0                 Cedar eff.                1.0\n")
	b.WriteString("      (* = hand-optimized, o = automatable)\n")
	return b.String()
}
