package tables

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// OverheadsResult measures the §3.2 runtime library costs on the
// simulated machine: XDOALL startup (paper: ≈90 µs), per-iteration fetch
// without Cedar synchronization (≈30 µs), the same with Cedar
// synchronization, and CDOALL start (a few µs on the concurrency control
// bus).
type OverheadsResult struct {
	XDoallStartupUS  float64
	FetchNoSyncUS    float64
	FetchCedarSyncUS float64
	CDoallStartUS    float64
}

// RunOverheads performs the microbenchmarks. The five machine runs are
// independent; they dispatch as pool jobs and the derived quantities are
// computed from the reassembled times.
func RunOverheads(obs ...*scope.Hub) (*OverheadsResult, error) {
	hub := scope.Of(obs)
	pm := params.Default()
	const iters = 64
	jobs := []fleet.Job[float64]{
		// XDOALL startup: cycles from loop entry until the first iteration
		// body executes (the paper's "typical loop startup latency").
		{
			Key: fleet.Key("overheads/startup", pm),
			Run: func(h *scope.Hub) (float64, error) {
				return timeToFirstIteration(h.Sub("overheads/startup"))
			},
		},
		// Iteration fetch: the marginal cost per iteration of an empty
		// loop, measured on one CE to avoid overlap (iterations - 1 extra
		// fetches), with and without Cedar synchronization.
		{
			Key: fleet.Key("overheads/fetch", pm, iters, false),
			Run: func(h *scope.Hub) (float64, error) {
				return timeXDoallOneCE(iters, false, h.Sub(fmt.Sprintf("overheads/fetch-lib-%d", iters)))
			},
		},
		{
			Key: fleet.Key("overheads/fetch", pm, 1, false),
			Run: func(h *scope.Hub) (float64, error) {
				return timeXDoallOneCE(1, false, h.Sub("overheads/fetch-lib-1"))
			},
		},
		{
			Key: fleet.Key("overheads/fetch", pm, iters, true),
			Run: func(h *scope.Hub) (float64, error) {
				return timeXDoallOneCE(iters, true, h.Sub(fmt.Sprintf("overheads/fetch-sync-%d", iters)))
			},
		},
		{
			Key: fleet.Key("overheads/fetch", pm, 1, true),
			Run: func(h *scope.Hub) (float64, error) {
				return timeXDoallOneCE(1, true, h.Sub("overheads/fetch-sync-1"))
			},
		},
	}
	t, err := fleet.Run(fleet.Config{Hub: hub}, jobs)
	if err != nil {
		return nil, err
	}
	return &OverheadsResult{
		XDoallStartupUS:  t[0] * 1e6,
		FetchNoSyncUS:    (t[1] - t[2]) / float64(iters-1) * 1e6,
		FetchCedarSyncUS: (t[3] - t[4]) / float64(iters-1) * 1e6,
		// CDOALL start: booked cost of the concurrent-start broadcast.
		CDoallStartUS: float64(pm.CDoallStart) * params.CycleNS / 1e3,
	}, nil
}

func emptyBody(int) []*ce.Instr {
	return []*ce.Instr{{Op: ce.OpScalar, Cycles: 1}}
}

// timeToFirstIteration measures XDOALL startup: the delay before any CE
// executes the first iteration of a freshly started machine-wide loop.
func timeToFirstIteration(hub *scope.Hub) (float64, error) {
	m, err := core.New(params.Default(), core.Options{Scope: hub})
	if err != nil {
		return 0, err
	}
	first := int64(-1)
	body := func(int) []*ce.Instr {
		return []*ce.Instr{{Op: ce.OpScalar, Cycles: 1, OnDone: func(cy int64) {
			if first < 0 {
				first = cy
			}
		}}}
	}
	rt := cfrt.New(m, cfrt.Config{UseCedarSync: true}, cfrt.XDoall{N: 64, Body: body})
	if _, err := rt.Run(100_000_000); err != nil {
		return 0, err
	}
	return params.CyclesToSeconds(first), nil
}

func timeXDoall(n int, sync bool) (float64, error) {
	m, err := core.New(params.Default(), core.Options{})
	if err != nil {
		return 0, err
	}
	rt := cfrt.New(m, cfrt.Config{UseCedarSync: sync}, cfrt.XDoall{N: n, Body: emptyBody})
	res, err := rt.Run(100_000_000)
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

func timeXDoallOneCE(n int, sync bool, hub *scope.Hub) (float64, error) {
	m, err := core.New(params.Default(), core.Options{Scope: hub})
	if err != nil {
		return 0, err
	}
	rt := cfrt.New(m, cfrt.Config{UseCedarSync: sync, MaxCEs: 1},
		cfrt.XDoall{N: n, Body: emptyBody})
	res, err := rt.Run(100_000_000)
	if err != nil {
		return 0, err
	}
	return res.Seconds, nil
}

// Format renders the measurements.
func (o *OverheadsResult) Format() string {
	return fmt.Sprintf(`runtime library overheads (measured on the simulated machine)
XDOALL loop startup:              %6.1f µs   (paper: ≈90 µs)
XDOALL iteration fetch (library): %6.1f µs   (paper: ≈30 µs)
XDOALL iteration fetch (Cedar sync): %5.1f µs  (the hardware-synchronization win)
CDOALL concurrent start:          %6.1f µs   (paper: a few µs)
`, o.XDoallStartupUS, o.FetchNoSyncUS, o.FetchCedarSyncUS, o.CDoallStartUS)
}
