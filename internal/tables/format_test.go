package tables

import (
	"strings"
	"testing"

	"cedar/internal/perfect"
)

// syntheticSuite builds a SuiteResult with hand-picked outcomes so the
// derived tables are fully deterministic — format and math coverage
// without simulation time.
func syntheticSuite() *SuiteResult {
	mk := func(sec, mflops float64) perfect.Outcome {
		return perfect.Outcome{Seconds: sec, MFLOPS: mflops}
	}
	profiles := []perfect.Profile{perfect.ARC2D(), perfect.QCD(), perfect.SPICE()}
	s := &SuiteResult{
		Profiles: profiles,
		Serial:   map[string]perfect.Outcome{"ARC2D": mk(1500, 2), "QCD": mk(250, 2), "SPICE": mk(130, 0.6)},
		KAP:      map[string]perfect.Outcome{"ARC2D": mk(750, 4), "QCD": mk(240, 2.1), "SPICE": mk(128, 0.6)},
		Auto:     map[string]perfect.Outcome{"ARC2D": mk(100, 30), "QCD": mk(139, 3.6), "SPICE": mk(110, 0.7)},
		NoSync:   map[string]perfect.Outcome{"ARC2D": mk(110, 27), "QCD": mk(145, 3.4), "SPICE": mk(112, 0.69)},
		NoPref:   map[string]perfect.Outcome{"ARC2D": mk(130, 23), "QCD": mk(146, 3.4), "SPICE": mk(113, 0.68)},
		Hand:     map[string]perfect.Outcome{"ARC2D": mk(65, 28), "QCD": mk(12, 40), "SPICE": mk(30, 1.5)},
	}
	return s
}

func TestSyntheticTable3Math(t *testing.T) {
	t3 := BuildTable3(syntheticSuite())
	by := map[string]Table3Row{}
	for _, r := range t3.Rows {
		by[r.Code] = r
	}
	if got := by["ARC2D"].AutoSpeedup; got != 15 {
		t.Errorf("ARC2D auto speedup %v, want 1500/100 = 15", got)
	}
	if got := by["QCD"].KAPSpeedup; got < 1.03 || got > 1.05 {
		t.Errorf("QCD KAP speedup %v, want ≈1.04", got)
	}
	if t3.CedarHarmonic <= 0 || t3.YMPHarmonic <= 0 {
		t.Error("harmonic means missing")
	}
	out := t3.Format()
	for _, want := range []string{"ARC2D", "QCD", "SPICE", "Serial(s)", "harmonic"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestSyntheticTable4Math(t *testing.T) {
	rows := BuildTable4(syntheticSuite())
	by := map[string]Table4Row{}
	for _, r := range rows {
		by[r.Code] = r
	}
	// Improvement is over the NoSync reference (automatable w/ prefetch,
	// w/o Cedar sync), per the paper's footnote.
	if got := by["QCD"].Improvement; got < 12.0 || got > 12.2 {
		t.Errorf("QCD improvement %v, want 145/12 ≈ 12.1", got)
	}
	if got := by["ARC2D"].HandSec; got != 65 {
		t.Errorf("ARC2D hand time %v", got)
	}
}

func TestSyntheticTable5Monotone(t *testing.T) {
	t5 := BuildTable5(syntheticSuite())
	in := t5.In["Cedar"]
	// Cedar ensemble {30, 3.6, 0.7}: In(3,0) = 42.86.
	if in[0] < 42 || in[0] > 43.5 {
		t.Errorf("Cedar In(3,0) = %v, want ≈42.9", in[0])
	}
	if t5.Exceptions["Cedar"] != 1 {
		t.Errorf("Cedar exceptions %d, want 1 ({30,3.6} → 8.3 > 6; {3.6,.7} = 5.1 ≤ 6)",
			t5.Exceptions["Cedar"])
	}
}

func TestSyntheticTable6AndFigure3(t *testing.T) {
	s := syntheticSuite()
	t6 := BuildTable6(s)
	// ARC2D speedup 15 → eff .47 (intermediate); QCD 1.8 → .056 (unacc);
	// SPICE 1.18 → .037 (unacc).
	if t6.CedarHigh != 0 || t6.CedarInter != 1 || t6.CedarUnacc != 2 {
		t.Errorf("Cedar bands %d/%d/%d, want 0/1/2", t6.CedarHigh, t6.CedarInter, t6.CedarUnacc)
	}
	f := BuildFigure3(s)
	by := map[string]Figure3Point{}
	for _, p := range f.Points {
		by[p.Code] = p
	}
	// Hand versions: ARC2D 1500/65/32 = 0.72 (high), QCD 250/12/32 = 0.65
	// (high), SPICE 130/30/32 = 0.135 (intermediate).
	if by["ARC2D"].CedarEff < 0.71 || by["ARC2D"].CedarEff > 0.73 {
		t.Errorf("ARC2D hand eff %v", by["ARC2D"].CedarEff)
	}
	if f.CedarHigh != 2 || f.CedarInter != 1 || f.CedarUnacc != 0 {
		t.Errorf("figure bands %d/%d/%d, want 2/1/0", f.CedarHigh, f.CedarInter, f.CedarUnacc)
	}
	if !strings.Contains(f.Format(), "|") {
		t.Error("plot missing")
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := formatTable([]string{"a", "bb"}, [][]string{{"xxx", "y"}, {"z", "wwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + rule + 2 rows", len(lines))
	}
	w := len(lines[0])
	for i, l := range lines {
		if i == 1 {
			continue // rule
		}
		if len(l) != w {
			t.Errorf("line %d width %d, want %d (aligned columns)", i, len(l), w)
		}
	}
}

func TestSuiteHelpers(t *testing.T) {
	s := syntheticSuite()
	if s.BestSeconds("ARC2D") != 65 {
		t.Error("BestSeconds should prefer the hand version")
	}
	if s.BestMFLOPS("QCD") != 40 {
		t.Error("BestMFLOPS should prefer the hand version")
	}
	names := s.Names()
	if len(names) != 3 || names[0] != "ARC2D" {
		t.Errorf("names %v", names)
	}
	if got := sortedKeys(s.Serial); len(got) != 3 || got[0] != "ARC2D" {
		t.Errorf("sortedKeys %v", got)
	}
}
