package tables

import (
	"fmt"
	"math"

	"cedar/internal/comparator"
	"cedar/internal/ppt"
)

// Table5Result reproduces "Instability for Perfect codes": In(13, e) for
// e = 0, 2, 6 on Cedar (automatable), the Cray-1 (modern compiler) and
// the Cray YMP/8 (baseline), plus the smallest exception count that
// reaches workstation-level stability (In ≤ 6). The paper: Cedar and the
// Cray-1 pass with two exceptions; the YMP needs six.
type Table5Result struct {
	Systems    []string
	In         map[string][3]float64 // e = 0, 2, 6
	Exceptions map[string]int
}

// BuildTable5 derives the instability table from the suite.
func BuildTable5(s *SuiteResult) *Table5Result {
	ymp := comparator.NewYMP8()
	cray1 := comparator.NewCray1()
	var cedar, crayRates, ympRates []float64
	for _, p := range s.Profiles {
		cedar = append(cedar, s.Auto[p.Name].MFLOPS)
		sum := p.Summary()
		crayRates = append(crayRates, cray1.MFLOPS(sum))
		ympRates = append(ympRates, ymp.AutoMFLOPS(sum))
	}
	res := &Table5Result{
		Systems:    []string{"Cedar", "Cray 1", "YMP/8"},
		In:         map[string][3]float64{},
		Exceptions: map[string]int{},
	}
	for name, rates := range map[string][]float64{
		"Cedar": cedar, "Cray 1": crayRates, "YMP/8": ympRates,
	} {
		res.In[name] = [3]float64{
			ppt.Instability(rates, 0),
			ppt.Instability(rates, 2),
			ppt.Instability(rates, 6),
		}
		res.Exceptions[name] = ppt.ExceptionsForStability(rates)
	}
	return res
}

// Format renders Table 5.
func (t *Table5Result) Format() string {
	header := []string{"System", "In(13,0)", "In(13,2)", "In(13,6)", "e for stability"}
	var rows [][]string
	for _, sys := range t.Systems {
		in := t.In[sys]
		f := func(v float64) string {
			if math.IsInf(v, 1) {
				return "-"
			}
			return fmt.Sprintf("%.1f", v)
		}
		rows = append(rows, []string{
			sys, f(in[0]), f(in[1]), f(in[2]), fmt.Sprintf("%d", t.Exceptions[sys]),
		})
	}
	s := formatTable(header, rows)
	s += "paper: Cedar 63.4/5.8/-, Cray 1 -/10.9/4.6, YMP/8 75.3/29.0/5.3; Cedar and Cray-1 stable with 2 exceptions, YMP needs 6\n"
	return s
}

// Table6Result reproduces "Restructuring Efficiency": how many codes land
// in each efficiency band for Cedar (32 CEs, automatable) and the Cray
// YMP (8 CPUs, automatic restructuring). The paper: Cedar 1 High /
// 9 Intermediate / 3 Unacceptable; YMP 0 / 6 / 7.
type Table6Result struct {
	CedarHigh, CedarInter, CedarUnacc int
	YMPHigh, YMPInter, YMPUnacc       int
	CedarEff, YMPEff                  map[string]float64
}

// BuildTable6 derives the band counts from the suite.
func BuildTable6(s *SuiteResult) *Table6Result {
	ymp := comparator.NewYMP8()
	res := &Table6Result{CedarEff: map[string]float64{}, YMPEff: map[string]float64{}}
	var cedarEffs, ympEffs []float64
	for _, p := range s.Profiles {
		speedup := s.Serial[p.Name].Seconds / s.Auto[p.Name].Seconds
		ce := ppt.Efficiency(speedup, 32)
		res.CedarEff[p.Name] = ce
		cedarEffs = append(cedarEffs, ce)
		ye := ymp.RestructuringEfficiency(p.Summary())
		res.YMPEff[p.Name] = ye
		ympEffs = append(ympEffs, ye)
	}
	res.CedarHigh, res.CedarInter, res.CedarUnacc = ppt.BandCounts(cedarEffs, 32)
	res.YMPHigh, res.YMPInter, res.YMPUnacc = ppt.BandCounts(ympEffs, 8)
	return res
}

// Format renders Table 6.
func (t *Table6Result) Format() string {
	header := []string{"Performance Level", "Cedar", "Cray YMP"}
	rows := [][]string{
		{"High (Ep >= 1/2)", fmt.Sprintf("%d Codes", t.CedarHigh), fmt.Sprintf("%d Codes", t.YMPHigh)},
		{"Intermediate (Ep >= 1/2logP)", fmt.Sprintf("%d Codes", t.CedarInter), fmt.Sprintf("%d Codes", t.YMPInter)},
		{"Unacceptable (Ep < 1/2logP)", fmt.Sprintf("%d Codes", t.CedarUnacc), fmt.Sprintf("%d Codes", t.YMPUnacc)},
	}
	s := formatTable(header, rows)
	s += "paper: Cedar 1/9/3, Cray YMP 0/6/7\n"
	return s
}
