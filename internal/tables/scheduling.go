package tables

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// SchedulingRow is one (policy, sync, workload) measurement of the loop
// scheduling ablation: design choice 3 of DESIGN.md, extending §3.2's
// overhead discussion with the guided self-scheduling policy that came
// out of the Cedar compiler work.
type SchedulingRow struct {
	Policy    string
	CedarSync bool
	Workload  string
	Cycles    int64
}

// RunSchedulingAblation times a balanced and an imbalanced 512-iteration
// loop under static, self- and guided scheduling, with and without the
// Cedar synchronization instructions.
func RunSchedulingAblation(obs ...*scope.Hub) ([]SchedulingRow, error) {
	hub := scope.Of(obs)
	balanced := func(i int) []*ce.Instr {
		return []*ce.Instr{{Op: ce.OpScalar, Cycles: 60, Flops: 20}}
	}
	imbalanced := func(i int) []*ce.Instr {
		cost := int64(15)
		if i >= 480 {
			cost = 2500
		}
		return []*ce.Instr{{Op: ce.OpScalar, Cycles: cost, Flops: 20}}
	}
	policies := []struct {
		name  string
		sched cfrt.Schedule
	}{
		{"static", cfrt.StaticSchedule},
		{"self", cfrt.SelfSchedule},
		{"guided", cfrt.GuidedSchedule},
	}
	type point struct {
		wlName  string
		body    cfrt.BodyFn
		polName string
		sched   cfrt.Schedule
		sync    bool
	}
	var points []point
	for _, wl := range []struct {
		name string
		body cfrt.BodyFn
	}{{"balanced", balanced}, {"imbalanced", imbalanced}} {
		for _, pol := range policies {
			for _, sync := range []bool{true, false} {
				if pol.sched == cfrt.StaticSchedule && !sync {
					continue // static never claims; sync is irrelevant
				}
				points = append(points, point{
					wlName: wl.name, body: wl.body,
					polName: pol.name, sched: pol.sched, sync: sync,
				})
			}
		}
	}
	jobs := make([]fleet.Job[SchedulingRow], len(points))
	for i, pt := range points {
		jobs[i] = fleet.Job[SchedulingRow]{
			// The body closures are stateless, so workload name stands in
			// for them in the key.
			Key: fleet.Key("sched", params.Default(), pt.wlName, pt.polName, pt.sync),
			Run: func(h *scope.Hub) (SchedulingRow, error) {
				m, err := core.New(params.Default(), core.Options{
					Scope: h.Sub(fmt.Sprintf("sched/%s/%s/sync=%v", pt.wlName, pt.polName, pt.sync)),
				})
				if err != nil {
					return SchedulingRow{}, err
				}
				rt := cfrt.New(m, cfrt.Config{UseCedarSync: pt.sync},
					cfrt.XDoall{N: 512, Sched: pt.sched, Body: pt.body})
				res, err := rt.Run(1 << 40)
				if err != nil {
					return SchedulingRow{}, fmt.Errorf("scheduling %s/%s: %w", pt.polName, pt.wlName, err)
				}
				return SchedulingRow{
					Policy: pt.polName, CedarSync: pt.sync,
					Workload: pt.wlName, Cycles: res.Cycles,
				}, nil
			},
		}
	}
	return fleet.Run(fleet.Config{Hub: hub}, jobs)
}

// FormatScheduling renders the ablation.
func FormatScheduling(rows []SchedulingRow) string {
	header := []string{"workload", "policy", "Cedar sync", "cycles", "µs"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, r.Policy, fmt.Sprintf("%v", r.CedarSync),
			fmt.Sprintf("%d", r.Cycles),
			fmt.Sprintf("%.0f", float64(r.Cycles)*params.CycleNS/1e3),
		})
	}
	s := "loop scheduling ablation (512 iterations, 32 CEs)\n"
	s += formatTable(header, out)
	s += "static wins on balanced work; guided recovers balance at a fraction of self-scheduling's claim traffic\n"
	return s
}
