//go:build race

package tables

// raceEnabled reports whether the race detector is compiled in. The
// full-report integration tests multiply a ~2-minute simulation by the
// detector's overhead and blow the per-package test timeout, so they
// skip under -race; every simulator path they cover is also exercised
// by the per-table unit tests, which do run raced.
const raceEnabled = true
