package tables

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// NetworkAblationRow is one fabric configuration's result on the
// 32-CE prefetched rank-64 update.
type NetworkAblationRow struct {
	Config  string
	MFLOPS  float64
	Latency float64
	Inter   float64
}

// RunNetworkAblation supports the [Turn93] claim quoted in §4.1: the
// contention degradation "is not inherent in the type of network used but
// is a result of specific implementation constraints". It runs the
// prefetched rank-64 update on all 32 CEs under the omega network as
// built (2-word queues), an omega with deeper (8-word) queues, and an
// ideal crossbar of the same port bandwidth.
func RunNetworkAblation(n int, obs ...*scope.Hub) ([]NetworkAblationRow, error) {
	hub := scope.Of(obs)
	configs := []struct {
		name string
		key  string // scope-namespace token (no spaces)
		opt  core.Options
	}{
		{"omega 2-word queues (as built)", "omega-2w", core.Options{Fabric: core.FabricOmega}},
		{"omega 8-word queues", "omega-8w", core.Options{Fabric: core.FabricOmega, QueueWords: 8}},
		{"ideal crossbar", "crossbar", core.Options{Fabric: core.FabricCrossbar}},
	}
	jobs := make([]fleet.Job[NetworkAblationRow], len(configs))
	for i, cfg := range configs {
		jobs[i] = fleet.Job[NetworkAblationRow]{
			// cfg.key uniquely identifies the fabric and queue depth, so it
			// stands in for the (pointer-bearing) core.Options in the key.
			Key: fleet.Key("netablation", params.Default(), cfg.key, n),
			Run: func(h *scope.Hub) (NetworkAblationRow, error) {
				opt := cfg.opt
				opt.Scope = h.Sub("net/" + cfg.key)
				m, err := core.New(params.Default(), opt)
				if err != nil {
					return NetworkAblationRow{}, err
				}
				out, err := kernels.RankUpdate(m, n, kernels.RKPref)
				if err != nil {
					return NetworkAblationRow{}, fmt.Errorf("ablation %s: %w", cfg.name, err)
				}
				return NetworkAblationRow{
					Config:  cfg.name,
					MFLOPS:  out.MFLOPS,
					Latency: out.Blocks.MeanLatency(),
					Inter:   out.Blocks.MeanInterarrival(),
				}, nil
			},
		}
	}
	return fleet.Run(fleet.Config{Hub: hub}, jobs)
}

// FormatNetworkAblation renders the ablation.
func FormatNetworkAblation(rows []NetworkAblationRow) string {
	header := []string{"network", "MFLOPS", "latency", "interarrival"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Config,
			fmt.Sprintf("%.1f", r.MFLOPS),
			fmt.Sprintf("%.1f", r.Latency),
			fmt.Sprintf("%.2f", r.Inter),
		})
	}
	s := formatTable(header, out)
	s += "[Turn93]: degradation is an implementation constraint (shallow queues), not the network type\n"
	return s
}

// PrefetchBlockRow is one prefetch block size's rank-update rate.
type PrefetchBlockRow struct {
	Block  int // 0 = no prefetch
	MFLOPS float64
}

// RunPrefetchBlockAblation isolates design choice 2 of DESIGN.md: the
// compiler's 32-word blocks versus RK's aggressive 256-word blocks versus
// no prefetch, on one cluster.
func RunPrefetchBlockAblation(n int, obs ...*scope.Hub) ([]PrefetchBlockRow, error) {
	hub := scope.Of(obs)
	p := params.Default()
	p.Clusters = 1
	blocks := []int{0, 32, 128, 256, 512}
	jobs := make([]fleet.Job[PrefetchBlockRow], len(blocks))
	for i, block := range blocks {
		jobs[i] = fleet.Job[PrefetchBlockRow]{
			Key: fleet.Key("prefblock", p, block, n),
			Run: func(h *scope.Hub) (PrefetchBlockRow, error) {
				m, err := core.New(p, core.Options{
					Scope: h.Sub(fmt.Sprintf("prefblock/%d", block)),
				})
				if err != nil {
					return PrefetchBlockRow{}, err
				}
				aBase := m.AllocGlobalAligned(n*64, 64)
				body := func(j int) []*ce.Instr {
					ins := make([]*ce.Instr, 0, 64)
					for k := 0; k < 64; k++ {
						ins = append(ins, &ce.Instr{
							Op: ce.OpVector, N: n, Flops: 2,
							Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: aBase + uint64(k*n), Stride: 1, PrefBlock: block}},
						})
					}
					return ins
				}
				rt := cfrt.New(m, cfrt.Config{UseCedarSync: true},
					cfrt.XDoall{N: n / 8, Static: true, Body: body})
				res, err := rt.Run(1 << 40)
				if err != nil {
					return PrefetchBlockRow{}, fmt.Errorf("prefetch block %d: %w", block, err)
				}
				return PrefetchBlockRow{Block: block, MFLOPS: res.MFLOPS}, nil
			},
		}
	}
	return fleet.Run(fleet.Config{Hub: hub}, jobs)
}

// FormatPrefetchBlock renders the block-size ablation.
func FormatPrefetchBlock(rows []PrefetchBlockRow) string {
	header := []string{"prefetch block (words)", "MFLOPS (1 cluster)"}
	var out [][]string
	for _, r := range rows {
		b := "none"
		if r.Block > 0 {
			b = fmt.Sprintf("%d", r.Block)
		}
		out = append(out, []string{b, fmt.Sprintf("%.1f", r.MFLOPS)})
	}
	return formatTable(header, out)
}

// ScaledRow is one machine size in the PPT5 probe.
type ScaledRow struct {
	Clusters int
	CEs      int
	RKMFLOPS float64
	CGMFLOPS float64
}

// RunScaledCedar probes PPT5 (§4.3's closing note: "collecting detailed
// simulation data for various computations on scaled-up Cedar-like
// systems"): the prefetched rank-64 update and CG on Cedar scaled to 8
// clusters with a proportionally larger network and memory system.
func RunScaledCedar(n int, obs ...*scope.Hub) ([]ScaledRow, error) {
	hub := scope.Of(obs)
	clusterCounts := []int{4, 8}
	// The RK and CG runs of one machine size are themselves independent
	// simulations, so each (size, kernel) pair is its own pool job.
	type point struct {
		clusters int
		kernel   string
	}
	var points []point
	for _, clusters := range clusterCounts {
		points = append(points, point{clusters, "rk"}, point{clusters, "cg"})
	}
	jobs := make([]fleet.Job[float64], len(points))
	for i, pt := range points {
		pm := params.Scaled(pt.clusters)
		jobs[i] = fleet.Job[float64]{
			Key: fleet.Key("scaled", pm, pt.kernel, n),
			Run: func(h *scope.Hub) (float64, error) {
				m, err := core.New(pm, core.Options{
					Scope: h.Sub(fmt.Sprintf("scaled/%dcl/%s", pt.clusters, pt.kernel)),
				})
				if err != nil {
					return 0, err
				}
				if pt.kernel == "rk" {
					out, err := kernels.RankUpdate(m, n, kernels.RKPref)
					if err != nil {
						return 0, fmt.Errorf("scaled RK %d clusters: %w", pt.clusters, err)
					}
					return out.MFLOPS, nil
				}
				out, err := kernels.CG(m, kernels.CGConfig{N: 32 << 10, Iters: 2})
				if err != nil {
					return 0, fmt.Errorf("scaled CG %d clusters: %w", pt.clusters, err)
				}
				return out.MFLOPS, nil
			},
		}
	}
	outs, err := fleet.Run(fleet.Config{Hub: hub}, jobs)
	if err != nil {
		return nil, err
	}
	var rows []ScaledRow
	for i, clusters := range clusterCounts {
		rows = append(rows, ScaledRow{
			Clusters: clusters, CEs: params.Scaled(clusters).CEs(),
			RKMFLOPS: outs[2*i], CGMFLOPS: outs[2*i+1],
		})
	}
	return rows, nil
}

// FormatScaled renders the PPT5 probe.
func FormatScaled(rows []ScaledRow) string {
	header := []string{"clusters", "CEs", "RK GM/pref MFLOPS", "CG 32K MFLOPS"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Clusters), fmt.Sprintf("%d", r.CEs),
			fmt.Sprintf("%.1f", r.RKMFLOPS), fmt.Sprintf("%.1f", r.CGMFLOPS),
		})
	}
	return formatTable(header, out)
}
