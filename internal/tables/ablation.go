package tables

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// NetworkAblationRow is one fabric configuration's result on the
// 32-CE prefetched rank-64 update.
type NetworkAblationRow struct {
	Config  string
	MFLOPS  float64
	Latency float64
	Inter   float64
}

// RunNetworkAblation supports the [Turn93] claim quoted in §4.1: the
// contention degradation "is not inherent in the type of network used but
// is a result of specific implementation constraints". It runs the
// prefetched rank-64 update on all 32 CEs under the omega network as
// built (2-word queues), an omega with deeper (8-word) queues, and an
// ideal crossbar of the same port bandwidth.
func RunNetworkAblation(n int, obs ...*scope.Hub) ([]NetworkAblationRow, error) {
	hub := scope.Of(obs)
	configs := []struct {
		name string
		key  string // scope-namespace token (no spaces)
		opt  core.Options
	}{
		{"omega 2-word queues (as built)", "omega-2w", core.Options{Fabric: core.FabricOmega}},
		{"omega 8-word queues", "omega-8w", core.Options{Fabric: core.FabricOmega, QueueWords: 8}},
		{"ideal crossbar", "crossbar", core.Options{Fabric: core.FabricCrossbar}},
	}
	var rows []NetworkAblationRow
	for _, cfg := range configs {
		opt := cfg.opt
		opt.Scope = hub.Sub("net/" + cfg.key)
		m, err := core.New(params.Default(), opt)
		if err != nil {
			return nil, err
		}
		out, err := kernels.RankUpdate(m, n, kernels.RKPref)
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", cfg.name, err)
		}
		rows = append(rows, NetworkAblationRow{
			Config:  cfg.name,
			MFLOPS:  out.MFLOPS,
			Latency: out.Blocks.MeanLatency(),
			Inter:   out.Blocks.MeanInterarrival(),
		})
	}
	return rows, nil
}

// FormatNetworkAblation renders the ablation.
func FormatNetworkAblation(rows []NetworkAblationRow) string {
	header := []string{"network", "MFLOPS", "latency", "interarrival"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Config,
			fmt.Sprintf("%.1f", r.MFLOPS),
			fmt.Sprintf("%.1f", r.Latency),
			fmt.Sprintf("%.2f", r.Inter),
		})
	}
	s := formatTable(header, out)
	s += "[Turn93]: degradation is an implementation constraint (shallow queues), not the network type\n"
	return s
}

// PrefetchBlockRow is one prefetch block size's rank-update rate.
type PrefetchBlockRow struct {
	Block  int // 0 = no prefetch
	MFLOPS float64
}

// RunPrefetchBlockAblation isolates design choice 2 of DESIGN.md: the
// compiler's 32-word blocks versus RK's aggressive 256-word blocks versus
// no prefetch, on one cluster.
func RunPrefetchBlockAblation(n int, obs ...*scope.Hub) ([]PrefetchBlockRow, error) {
	hub := scope.Of(obs)
	p := params.Default()
	p.Clusters = 1
	var rows []PrefetchBlockRow
	for _, block := range []int{0, 32, 128, 256, 512} {
		m, err := core.New(p, core.Options{
			Scope: hub.Sub(fmt.Sprintf("prefblock/%d", block)),
		})
		if err != nil {
			return nil, err
		}
		aBase := m.AllocGlobalAligned(n*64, 64)
		body := func(j int) []*ce.Instr {
			ins := make([]*ce.Instr, 0, 64)
			for k := 0; k < 64; k++ {
				ins = append(ins, &ce.Instr{
					Op: ce.OpVector, N: n, Flops: 2,
					Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: aBase + uint64(k*n), Stride: 1, PrefBlock: block}},
				})
			}
			return ins
		}
		rt := cfrt.New(m, cfrt.Config{UseCedarSync: true},
			cfrt.XDoall{N: n / 8, Static: true, Body: body})
		res, err := rt.Run(1 << 40)
		if err != nil {
			return nil, fmt.Errorf("prefetch block %d: %w", block, err)
		}
		rows = append(rows, PrefetchBlockRow{Block: block, MFLOPS: res.MFLOPS})
	}
	return rows, nil
}

// FormatPrefetchBlock renders the block-size ablation.
func FormatPrefetchBlock(rows []PrefetchBlockRow) string {
	header := []string{"prefetch block (words)", "MFLOPS (1 cluster)"}
	var out [][]string
	for _, r := range rows {
		b := "none"
		if r.Block > 0 {
			b = fmt.Sprintf("%d", r.Block)
		}
		out = append(out, []string{b, fmt.Sprintf("%.1f", r.MFLOPS)})
	}
	return formatTable(header, out)
}

// ScaledRow is one machine size in the PPT5 probe.
type ScaledRow struct {
	Clusters int
	CEs      int
	RKMFLOPS float64
	CGMFLOPS float64
}

// RunScaledCedar probes PPT5 (§4.3's closing note: "collecting detailed
// simulation data for various computations on scaled-up Cedar-like
// systems"): the prefetched rank-64 update and CG on Cedar scaled to 8
// clusters with a proportionally larger network and memory system.
func RunScaledCedar(n int, obs ...*scope.Hub) ([]ScaledRow, error) {
	hub := scope.Of(obs)
	var rows []ScaledRow
	for _, clusters := range []int{4, 8} {
		pm := params.Scaled(clusters)
		m, err := core.New(pm, core.Options{
			Scope: hub.Sub(fmt.Sprintf("scaled/%dcl/rk", clusters)),
		})
		if err != nil {
			return nil, err
		}
		rk, err := kernels.RankUpdate(m, n, kernels.RKPref)
		if err != nil {
			return nil, fmt.Errorf("scaled RK %d clusters: %w", clusters, err)
		}
		m2, err := core.New(pm, core.Options{
			Scope: hub.Sub(fmt.Sprintf("scaled/%dcl/cg", clusters)),
		})
		if err != nil {
			return nil, err
		}
		cg, err := kernels.CG(m2, kernels.CGConfig{N: 32 << 10, Iters: 2})
		if err != nil {
			return nil, fmt.Errorf("scaled CG %d clusters: %w", clusters, err)
		}
		rows = append(rows, ScaledRow{
			Clusters: clusters, CEs: pm.CEs(),
			RKMFLOPS: rk.MFLOPS, CGMFLOPS: cg.MFLOPS,
		})
	}
	return rows, nil
}

// FormatScaled renders the PPT5 probe.
func FormatScaled(rows []ScaledRow) string {
	header := []string{"clusters", "CEs", "RK GM/pref MFLOPS", "CG 32K MFLOPS"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Clusters), fmt.Sprintf("%d", r.CEs),
			fmt.Sprintf("%.1f", r.RKMFLOPS), fmt.Sprintf("%.1f", r.CGMFLOPS),
		})
	}
	return formatTable(header, out)
}
