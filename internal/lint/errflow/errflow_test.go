package errflow_test

import (
	"testing"

	"cedar/internal/lint/errflow"
	"cedar/internal/lint/linttest"
)

func TestErrFlow(t *testing.T) {
	linttest.Run(t, errflow.Analyzer, "testdata/src/errflow")
}
