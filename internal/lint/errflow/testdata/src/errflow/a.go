// Package errflow is the golden package for the errflow analyzer.
package errflow

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func discards() {
	fail()       // want `error return of fail is silently discarded`
	defer fail() // want `error return of fail is silently discarded`
	go fail()    // want `error return of fail is silently discarded`
	if err := fail(); err != nil {
		_ = err // explicitly received: clean
	}
	waived()
}

func waived() {
	fail() //lint:allow errflow the golden test waives this one
}

func exemptWriters() {
	var b strings.Builder
	b.WriteString("never fails")
	fmt.Println("never fails")
	fmt.Fprintf(os.Stderr, "never fails")
}

func undocumented() {
	panic("boom") // want `undocumented panic`
}

// crash brings the machine down on purpose. Panics if called.
func crash() {
	panic("documented")
}

// MustValue follows the Must naming convention.
func MustValue(ok bool) int {
	if !ok {
		panic("not ok")
	}
	return 1
}

func exits() {
	os.Exit(1) // want `os\.Exit in internal code`
}
