// Package errflow enforces error-flow hygiene in internal packages:
// errors propagate, they do not vanish.
//
//   - panic is reserved for documented invariant violations: the
//     enclosing function's doc comment must say so (mention "panic"), or
//     the function must follow the Must* naming convention. Anything
//     else should return an error.
//   - os.Exit is forbidden: only main owns the process.
//   - A call whose results include an error must not be used as a bare
//     statement (or deferred) with the error silently dropped. The
//     never-failing writers — package fmt's print family, strings.Builder
//     and bytes.Buffer methods — are exempt.
//
// Test files are exempt from all three rules.
package errflow

import (
	"go/ast"
	"go/types"
	"strings"

	"cedar/internal/lint"
)

// Analyzer is the errflow check.
var Analyzer = &lint.Analyzer{
	Name: "errflow",
	Doc:  "internal code must propagate errors: no undocumented panic, no os.Exit, no discarded error returns",
	Run:  run,
}

var errType = types.Universe.Lookup("error").Type()

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// panicDocumented reports whether fd declares its panic behaviour: a doc
// comment mentioning panic, or the Must* naming convention (whose whole
// contract is "panics instead of returning an error").
func panicDocumented(fd *ast.FuncDecl) bool {
	if strings.HasPrefix(fd.Name.Name, "Must") {
		return true
	}
	return fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
}

func checkFunc(pass *lint.Pass, fd *ast.FuncDecl) {
	docOK := panicDocumented(fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				checkDiscard(pass, call)
			}
		case *ast.DeferStmt:
			checkDiscard(pass, n.Call)
		case *ast.GoStmt:
			checkDiscard(pass, n.Call)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, builtin := pass.Info.Uses[id].(*types.Builtin); builtin && !docOK {
					pass.Reportf(n.Pos(),
						"undocumented panic; say \"Panics if ...\" in the doc comment of %s or return an error", fd.Name.Name)
				}
			}
			if pkg, fn, ok := pkgCall(pass.Info, n.Fun); ok && pkg == "os" && fn == "Exit" {
				pass.Reportf(n.Pos(), "os.Exit in internal code; return an error and let main own the process")
			}
		}
		return true
	})
}

// checkDiscard flags a statement-position call whose results include an
// error that nothing receives.
func checkDiscard(pass *lint.Pass, call *ast.CallExpr) {
	if !returnsError(pass.Info, call) || exemptCallee(pass.Info, call.Fun) {
		return
	}
	pass.Reportf(call.Pos(),
		"error return of %s is silently discarded; handle it or assign it explicitly", types.ExprString(call.Fun))
}

// returnsError reports whether the call's result list contains an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch t := t.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// exemptCallee lists the callees whose error results are fiction:
// package fmt's print family and the in-memory writers, which are
// documented never to fail.
func exemptCallee(info *types.Info, fun ast.Expr) bool {
	if pkg, fn, ok := pkgCall(info, fun); ok {
		return pkg == "fmt" && strings.HasPrefix(fn, "Print") || pkg == "fmt" && strings.HasPrefix(fn, "Fprint")
	}
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// pkgCall resolves fun to (package path, function name) for pkg.F calls.
func pkgCall(info *types.Info, fun ast.Expr) (string, string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}
