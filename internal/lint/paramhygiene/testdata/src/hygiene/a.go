// Package hygiene is the golden package for the paramhygiene check.
package hygiene

import "fmt"

// Distinctive figures are flagged anywhere.
func distinctive() float64 {
	cycle := 170.0 // want `hardware magic number 170\.0 duplicates params\.CycleNS`
	peak := 768.0  // want `hardware magic number 768\.0 duplicates params\.WiringPeakMBps`
	return cycle + peak
}

// Collision-prone figures are flagged only in hardware-ish contexts.
type badConfig struct {
	LoadLatency int
	PrefDepth   int
}

func gated() badConfig {
	return badConfig{
		LoadLatency: 13,  // want `hardware magic number 13 duplicates params\.GlobalLoadLatency`
		PrefDepth:   512, // want `hardware magic number 512 duplicates params\.Machine\.PFUBufferWords`
	}
}

func gatedDecl() int {
	const busLatency = 13 // want `hardware magic number 13`
	prefBufWords := 512   // want `hardware magic number 512`
	return busLatency + prefBufWords
}

// The same values as sizes, bounds or orders stay clean.
func ungatedUses() int {
	sizes := []int{128, 256, 512}
	n := 512
	for i := 0; i < 13; i++ {
		n += sizes[i%3]
	}
	return n
}

// Quoting a figure with its unit in output text is flagged.
func banner() string {
	return fmt.Sprintf("wiring peak 768 MB/s at a 170 ns cycle") // want `paper figure "768 MB/s" baked into string`
}

// The escape hatch documents a deliberate duplicate.
func allowed() int {
	const tileDepth = 512 //lint:allow paramhygiene tile depth tuned independently of the PFU
	return tileDepth
}
