// Package params mirrors internal/params for the exemption test: the
// parameter table is the one place the paper's figures belong.
package params

const (
	CycleNS           = 170.0
	GlobalLoadLatency = 13
	PFUBufferWords    = 512
	WiringPeakMBps    = 768.0
)
