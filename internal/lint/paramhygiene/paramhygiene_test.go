package paramhygiene_test

import (
	"testing"

	"cedar/internal/lint/linttest"
	"cedar/internal/lint/paramhygiene"
)

func TestParamHygiene(t *testing.T) {
	linttest.Run(t, paramhygiene.Analyzer, "testdata/src/hygiene")
}

// The params package itself is where the constants live; nothing may be
// flagged there.
func TestParamsPackageExempt(t *testing.T) {
	linttest.Run(t, paramhygiene.Analyzer, "testdata/src/params")
}
