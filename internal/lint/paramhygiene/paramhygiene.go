// Package paramhygiene flags hardware constants from the Cedar paper's
// parameter table appearing outside internal/params. Magic copies of the
// machine description (the 170 ns cycle, the 13-cycle global load, the
// 512-deep prefetch unit, the 768 MB/s wiring peak, ...) silently drift
// when the central table is retuned, which is exactly how a calibrated
// performance model loses credibility.
//
// Two flavors of rule:
//
//   - Distinctive values (170.0 ns, 768 MB/s, 176-cycle fetch&lock,
//     5.88 MHz, 11.8 MFLOPS/CE) are flagged wherever they appear as
//     numeric literals.
//   - Collision-prone values (13, 512, 300) are flagged only when the
//     nearest declaration context — a struct-literal key, assignment
//     target, or const/var name — reads like a hardware parameter
//     (latency, prefetch, depth, bandwidth, buffer, ...), so loop bounds
//     and matrix orders stay usable.
//
// String literals quoting the figures with their units ("768 MB/s",
// "170 ns") are flagged too: baked-in report text contradicts the model
// the moment someone retunes params. Interpolate the named constant.
//
// The internal/params package itself and _test.go files (golden values)
// are exempt.
package paramhygiene

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"strings"

	"cedar/internal/lint"
)

// Analyzer is the paramhygiene check.
var Analyzer = &lint.Analyzer{
	Name: "paramhygiene",
	Doc: "forbid hardcoded copies of the paper's machine parameters " +
		"outside internal/params",
	Run: run,
}

// knownValue is one entry of the paper's parameter table.
type knownValue struct {
	val   constant.Value
	param string // the params identifier to use instead
	gated bool   // only flagged in hardware-ish declaration context
}

// mk parses a literal exactly (rationally), so 170, 170. and 170.0 all
// compare equal while 5.88 stays the decimal 5.88, not its float64
// rounding.
func mk(lit string) constant.Value {
	kind := token.INT
	if strings.ContainsAny(lit, ".eE") {
		kind = token.FLOAT
	}
	return constant.MakeFromLiteral(lit, kind, 0)
}

var knownValues = []knownValue{
	{mk("170.0"), "params.CycleNS", false},
	{mk("5.88"), "params.CyclesPerSecond (≈5.88 MHz)", false},
	{mk("11.8"), "params.Machine.PeakMFLOPS per CE (11.8)", false},
	{mk("768"), "params.WiringPeakMBps", false},
	{mk("176"), "params.Machine.XDoallFetchLock", false},
	{mk("13"), "params.GlobalLoadLatency", true},
	{mk("512"), "params.Machine.PFUBufferWords / PFUMaxOutstanding / PageWords", true},
	{mk("300"), "params.Machine.TLBMissCost", true},
}

// hardwareContext matches declaration names that read like machine
// parameters.
var hardwareContext = regexp.MustCompile(`(?i)lat(ency)?|pref|pfu|depth|band|bw|buf|cycle|outstand|tlb|fetch`)

// stringFigures match paper figures quoted with units inside strings.
var stringFigures = regexp.MustCompile(`768\s?MB/s|170\s?ns|176[- ]cycle|13[- ]cycle`)

func run(pass *lint.Pass) error {
	if exemptPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			lit, ok := n.(*ast.BasicLit)
			if !ok {
				return true
			}
			switch lit.Kind {
			case token.INT, token.FLOAT:
				checkNumber(pass, lit, stack)
			case token.STRING:
				if m := stringFigures.FindString(lit.Value); m != "" {
					pass.Reportf(lit.Pos(), "paper figure %q baked into string; interpolate the named constant from internal/params so report text tracks the model", m)
				}
			}
			return true
		})
	}
	return nil
}

func exemptPackage(path string) bool {
	return path == "params" || strings.HasSuffix(path, "/params")
}

func checkNumber(pass *lint.Pass, lit *ast.BasicLit, stack []ast.Node) {
	v := constant.MakeFromLiteral(lit.Value, lit.Kind, 0)
	if v.Kind() == constant.Unknown {
		return
	}
	for _, kv := range knownValues {
		if !numEq(v, kv.val) {
			continue
		}
		if kv.gated && !gatedContext(stack) {
			continue
		}
		pass.Reportf(lit.Pos(), "hardware magic number %s duplicates %s; take it from internal/params", lit.Value, kv.param)
		return
	}
}

// numEq compares numerically across int/float literal kinds.
func numEq(a, b constant.Value) bool {
	return constant.Compare(constant.ToFloat(a), token.EQL, constant.ToFloat(b))
}

// gatedContext climbs the ancestor stack (innermost last) for the nearest
// naming context and asks whether it smells like a hardware parameter.
func gatedContext(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.KeyValueExpr:
			if id, ok := n.Key.(*ast.Ident); ok {
				return hardwareContext.MatchString(id.Name)
			}
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if hardwareContext.MatchString(name.Name) {
					return true
				}
			}
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && hardwareContext.MatchString(id.Name) {
					return true
				}
			}
			return false
		case *ast.Field:
			for _, name := range n.Names {
				if hardwareContext.MatchString(name.Name) {
					return true
				}
			}
			return false
		case ast.Stmt, ast.Decl:
			// Reached a statement or declaration without any naming
			// context: the literal is a bound, size or index.
			return false
		}
	}
	return false
}
