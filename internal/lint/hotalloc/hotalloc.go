// Package hotalloc flags heap-allocating constructs in per-cycle code.
//
// The per-cycle hot path is defined by reachability: any function
// reachable on the module call graph from a root — a function or method
// named Tick or Step declared in one of the configured hot packages — is
// per-cycle code. Within those functions (and only in the hot packages
// themselves, so helper code in tables/cfrt that a kernel's Next method
// drags in does not explode the report), the analyzer flags:
//
//   - &T{...} composite literals (heap escape by construction)
//   - slice and map composite literals
//   - make of slices, maps, and channels; new(T)
//   - function literals (closure environments allocate)
//   - calls into package fmt (argument boxing)
//   - append to any destination other than the self-append reuse idiom
//     x = append(x, ...), which is amortised-free once warm
//   - non-constant string concatenation
//
// Arguments of panic(...) are exempt: a panicking simulator is already
// dead, so formatting the autopsy may allocate freely.
package hotalloc

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"cedar/internal/lint"
)

// Config declares what "hot" means for one module.
type Config struct {
	// HotPkgs lists module-relative package paths ("internal/sim") whose
	// Tick/Step-reachable code must stay allocation-free. Roots are only
	// taken from these packages, and findings are only reported in them.
	HotPkgs []string
	// Roots lists the function/method names that start a cycle
	// ("Tick", "Step").
	Roots []string
}

// DefaultConfig is the cedar module's hot-path definition: the simulator
// engine and every component ticked by it each cycle.
var DefaultConfig = Config{
	HotPkgs: []string{
		"internal/sim",
		"internal/core",
		"internal/network",
		"internal/gmem",
		"internal/cmem",
		"internal/cache",
		"internal/ccbus",
		"internal/ce",
		"internal/prefetch",
	},
	Roots: []string{"Tick", "Step"},
}

// Analyzer is hotalloc with the cedar hot-path definition.
var Analyzer = New(DefaultConfig)

// New builds a hotalloc analyzer for the given hot-path definition.
func New(cfg Config) *lint.ModuleAnalyzer {
	a := &lint.ModuleAnalyzer{
		Name: "hotalloc",
		Doc:  "flags heap allocations in code reachable from per-cycle Tick/Step roots",
	}
	a.Run = func(pass *lint.ModulePass) error { return run(pass, cfg) }
	return a
}

func relPath(pkg *lint.Package) string {
	if pkg.Path == pkg.Module {
		return ""
	}
	return strings.TrimPrefix(pkg.Path, pkg.Module+"/")
}

func run(pass *lint.ModulePass, cfg Config) error {
	hot := map[string]bool{}
	for _, p := range cfg.HotPkgs {
		hot[p] = true
	}
	rootName := map[string]bool{}
	for _, r := range cfg.Roots {
		rootName[r] = true
	}

	g := pass.Module.CallGraph()

	// Roots: Tick/Step declarations in hot packages, in sorted key order
	// so the reachability attribution below is deterministic.
	var rootKeys []string
	for key, node := range g.Nodes {
		if hot[relPath(node.Pkg)] && rootName[node.Decl.Name.Name] {
			rootKeys = append(rootKeys, key)
		}
	}
	sort.Strings(rootKeys)

	// reachedVia maps every hot function to the first root that reaches
	// it, for the "(reachable from ...)" note in findings.
	reachedVia := map[string]string{}
	for _, root := range rootKeys {
		for key := range g.Reachable([]string{root}) {
			if _, ok := reachedVia[key]; !ok {
				reachedVia[key] = root
			}
		}
	}

	// Deterministic order: nodes sorted by key.
	var keys []string
	for key := range reachedVia {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	for _, key := range keys {
		node := g.Nodes[key]
		if node == nil || !hot[relPath(node.Pkg)] {
			continue
		}
		filename := node.Pkg.Fset.Position(node.Decl.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		checkFunc(pass, node, reachedVia[key])
	}
	return nil
}

// checkFunc walks one hot function body and reports allocating
// constructs. via names the root that makes the function hot.
func checkFunc(pass *lint.ModulePass, node *lint.FuncNode, via string) {
	info := node.Pkg.Info
	report := func(n ast.Node, what string) {
		pass.Reportf(n.Pos(), "%s in per-cycle code (reachable from %s)", what, via)
	}

	// Pre-pass: collect the x = append(x, ...) self-appends, which are
	// amortised-free once the backing array is warm (the keep = keep[:0]
	// reuse idiom depends on exactly this exemption).
	selfAppend := map[*ast.CallExpr]bool{}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(info, call.Fun, "append") || len(call.Args) == 0 {
				continue
			}
			if types.ExprString(as.Lhs[i]) == types.ExprString(call.Args[0]) {
				selfAppend[call] = true
			}
		}
		return true
	})
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isBuiltin(info, n.Fun, "panic") {
				return false // autopsy path: formatting the panic message is fine
			}
			if isBuiltin(info, n.Fun, "new") {
				report(n, "new(...) allocates")
				return true
			}
			if isBuiltin(info, n.Fun, "make") {
				report(n, "make(...) allocates")
				return true
			}
			if isBuiltin(info, n.Fun, "append") && !selfAppend[n] {
				report(n, "append to a fresh destination may grow a new backing array")
				return true
			}
			if pkgName, fn, ok := pkgCall(info, n.Fun); ok && pkgName == "fmt" {
				report(n, "fmt."+fn+" boxes its arguments")
				return true
			}
		case *ast.UnaryExpr:
			if _, isLit := n.X.(*ast.CompositeLit); isLit && n.Op.String() == "&" {
				report(n, "&composite-literal allocates")
				// Still walk the literal's elements for nested closures.
				ast.Inspect(n.X, walk)
				return false
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				report(n, "slice/map composite literal allocates")
			}
		case *ast.FuncLit:
			report(n, "func literal allocates its closure environment")
		case *ast.BinaryExpr:
			if n.Op.String() == "+" && isNonConstString(info, n) {
				report(n, "string concatenation allocates")
			}
		}
		return true
	}
	ast.Inspect(node.Decl.Body, walk)
}

func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// pkgCall resolves fun to (package name, function name) for calls of the
// form pkg.F.
func pkgCall(info *types.Info, fun ast.Expr) (string, string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}
