package hotalloc_test

import (
	"testing"

	"cedar/internal/lint"
	"cedar/internal/lint/hotalloc"
	"cedar/internal/lint/linttest"
)

func TestHotAlloc(t *testing.T) {
	suite := &lint.Suite{Module: []*lint.ModuleAnalyzer{hotalloc.New(hotalloc.Config{
		HotPkgs: []string{"hot"},
		Roots:   []string{"Tick"},
	})}}
	linttest.RunModule(t, suite, "testdata/mod")
}
