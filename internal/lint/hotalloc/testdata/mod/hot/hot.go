// Package hot is the golden hot package: Engine.Tick is the per-cycle
// root and everything it reaches inside this package must stay
// allocation-free.
package hot

import (
	"fmt"

	"hotmod/helper"
)

// Ticker is dispatched through an interface from Tick.
type Ticker interface{ Sub(cycle int64) }

// Engine is the root device.
type Engine struct {
	keep []int
	dev  Ticker
	name string
}

// Tick is the per-cycle root.
func (e *Engine) Tick(cycle int64) {
	s := make([]int, 8) // want `make\(...\) allocates`
	_ = s
	p := new(Engine) // want `new\(...\) allocates`
	_ = p
	e.keep = append(e.keep, int(cycle)) // self-append reuse: clean
	lit := []int{1, 2}                  // want `slice/map composite literal allocates`
	lit = append(e.keep, 3)             // want `append to a fresh destination`
	_ = lit
	q := &Engine{} // want `&composite-literal allocates`
	_ = q
	f := func() {} // want `func literal allocates its closure environment`
	f()
	e.name = e.name + "x" // want `string concatenation allocates`
	fmt.Sprint(cycle)     // want `fmt\.Sprint boxes its arguments`
	if cycle < 0 {
		panic(fmt.Sprintf("bad cycle %d", cycle)) // autopsy path: exempt
	}
	e.reached()
	e.dev.Sub(cycle)
	helper.Cold(int(cycle))
	waived()
}

// reached is hot by reachability from Tick.
func (e *Engine) reached() {
	e.keep = make([]int, 4) // want `make\(...\) allocates`
}

// idle lives in a hot package, but nothing per-cycle reaches it.
func idle() {
	_ = make([]int, 1)
}

// waived shows a justified allocation surviving via a directive.
func waived() {
	_ = make([]int, 1) //lint:allow hotalloc warms a reused buffer once; steady state is clean
}

// Device implements Ticker; the interface dispatch from Tick makes its
// Sub method hot.
type Device struct{ buf []byte }

// Sub runs once per cycle via the Ticker interface.
func (d *Device) Sub(cycle int64) {
	d.buf = make([]byte, 16) // want `make\(...\) allocates`
}
