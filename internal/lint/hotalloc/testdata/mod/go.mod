module hotmod

go 1.22
