// Package helper is outside the hot set: code here is never reported,
// even when Tick reaches it.
package helper

// Cold allocates, but helper is not a hot package.
func Cold(n int) []int {
	return make([]int, n)
}
