// Package lint is a minimal static-analysis framework in the spirit of
// golang.org/x/tools/go/analysis, built entirely on the standard library
// (this module deliberately has no external dependencies). It exists to
// host cedarvet, the suite of project-specific analyzers that enforce the
// simulator's determinism and parameter-hygiene invariants; see DESIGN.md
// "Determinism invariants and cedarvet".
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics. Findings can be suppressed at the source line
// with a directive comment:
//
//	//lint:allow <check> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// A directive suppresses matching diagnostics on its own line and on the
// line directly below it, so both trailing-comment and own-line placement
// work:
//
//	t := time.Now() //lint:allow nondeterminism wall-clock is for the CLI banner only
//
//	//lint:allow paramhygiene this 512 is a test matrix order, not the PFU depth
//	n := 512
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the check in output and in //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run inspects the package behind pass and reports findings.
	Run func(pass *Pass) error
}

// A Pass connects an Analyzer to the package under inspection.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package syntax, including in-package _test.go files.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Filename returns the name of the file holding f.
func (p *Pass) Filename(f *ast.File) string {
	return p.Fset.Position(f.Pos()).Filename
}

// IsTestFile reports whether f is a _test.go file. Several analyzers
// relax their rules inside tests (seeded randomness and wall-clock reads
// are fine there).
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Filename(f), "_test.go")
}

// A Diagnostic is one finding, located by resolved position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// allowDirective is the comment prefix of a suppression.
const allowDirective = "//lint:allow"

// MalformedCheck is the pseudo-check name under which broken //lint:allow
// directives are reported. It cannot itself be suppressed.
const MalformedCheck = "lintdirective"

// StaleCheck is the pseudo-check name under which the suppression audit
// reports //lint:allow directives that no longer suppress a live finding.
// Like MalformedCheck it cannot itself be suppressed: a stale directive
// is dead weight that hides nothing and must be deleted, not waived.
const StaleCheck = "lintstale"

// directive is one parsed //lint:allow comment.
type directive struct {
	pos   token.Position
	check string
	used  bool
}

// Directives holds the parsed //lint:allow suppressions of one package.
type Directives struct {
	list []*directive
	// allow maps filename -> line -> directives covering that line.
	allow map[string]map[int][]*directive
	// Malformed collects directives missing a check name or a reason.
	Malformed []Diagnostic
}

// ParseDirectives scans the comments of files for //lint:allow.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{allow: map[string]map[int][]*directive{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					d.Malformed = append(d.Malformed, Diagnostic{
						Pos:     pos,
						Check:   MalformedCheck,
						Message: "malformed directive: want //lint:allow <check> <reason>",
					})
					continue
				}
				dir := &directive{pos: pos, check: fields[0]}
				d.list = append(d.list, dir)
				byLine := d.allow[pos.Filename]
				if byLine == nil {
					byLine = map[int][]*directive{}
					d.allow[pos.Filename] = byLine
				}
				// A directive covers its own line (trailing comment)
				// and the next line (own-line comment above the code).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					byLine[line] = append(byLine[line], dir)
				}
			}
		}
	}
	return d
}

// Suppressed reports whether diag is covered by an allow directive, and
// marks the covering directive as live for the stale-suppression audit.
func (d *Directives) Suppressed(diag Diagnostic) bool {
	if diag.Check == MalformedCheck || diag.Check == StaleCheck {
		return false
	}
	hit := false
	for _, dir := range d.allow[diag.Pos.Filename][diag.Pos.Line] {
		if dir.check == diag.Check {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// Stale reports directives that suppressed nothing, restricted to checks
// for which audited returns true (a directive for a check that did not
// run this pass cannot be judged). known tells whether a check name
// exists at all; unknown names are always reported when audited.
func (d *Directives) Stale(audited, known func(check string) bool, validList string) []Diagnostic {
	var out []Diagnostic
	for _, dir := range d.list {
		if dir.used || !audited(dir.check) {
			continue
		}
		msg := fmt.Sprintf("//lint:allow %s suppresses no finding; delete the stale directive", dir.check)
		if !known(dir.check) {
			msg = fmt.Sprintf("//lint:allow names unknown check %q (valid: %s)", dir.check, validList)
		}
		out = append(out, Diagnostic{Pos: dir.pos, Check: StaleCheck, Message: msg})
	}
	return out
}

// A ScopedAnalyzer pairs a package analyzer with the subset of packages
// it applies to. A nil Applies means everywhere.
type ScopedAnalyzer struct {
	Analyzer *Analyzer
	Applies  func(pkgPath string) bool
}

// A Suite is the full set of checks run over one module load: scoped
// per-package analyzers plus whole-module analyzers.
type Suite struct {
	Package []ScopedAnalyzer
	Module  []*ModuleAnalyzer
}

// Names returns every check name in the suite, sorted.
func (s *Suite) Names() []string {
	var names []string
	for _, sa := range s.Package {
		names = append(names, sa.Analyzer.Name)
	}
	for _, ma := range s.Module {
		names = append(names, ma.Name)
	}
	sort.Strings(names)
	return names
}

// Has reports whether the suite contains a check with the given name.
func (s *Suite) Has(name string) bool {
	for _, n := range s.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Run executes the suite over a module's packages, applies //lint:allow
// suppressions, and returns the surviving diagnostics sorted by position.
// The result includes malformed directives and the stale-suppression
// audit: any directive naming an enabled check that suppressed nothing is
// itself a finding (check "lintstale"), as is a directive naming a check
// the suite has never heard of. enabled filters checks by name; nil runs
// everything. Directives for disabled checks are left alone — they cannot
// be judged on a partial run.
func (s *Suite) Run(pkgs []*Package, enabled func(name string) bool) ([]Diagnostic, error) {
	if enabled == nil {
		enabled = func(string) bool { return true }
	}

	dirsByPkg := make([]*Directives, len(pkgs))
	fileDirs := map[string]*Directives{}
	var diags []Diagnostic
	for i, pkg := range pkgs {
		d := ParseDirectives(pkg.Fset, pkg.Files)
		dirsByPkg[i] = d
		for filename := range d.allow {
			fileDirs[filename] = d
		}
		diags = append(diags, d.Malformed...)
	}

	var raw []Diagnostic
	for _, pkg := range pkgs {
		for _, sa := range s.Package {
			if !enabled(sa.Analyzer.Name) {
				continue
			}
			if sa.Applies != nil && !sa.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: sa.Analyzer,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &raw,
			}
			if err := sa.Analyzer.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", sa.Analyzer.Name, pkg.Path, err)
			}
		}
	}
	if len(s.Module) > 0 {
		mod := NewModule(pkgs)
		for _, ma := range s.Module {
			if !enabled(ma.Name) {
				continue
			}
			pass := &ModulePass{Analyzer: ma, Module: mod, diags: &raw}
			if err := ma.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", ma.Name, err)
			}
		}
	}

	for _, d := range raw {
		fd := fileDirs[d.Pos.Filename]
		if fd != nil && fd.Suppressed(d) {
			continue
		}
		diags = append(diags, d)
	}

	// Stale-suppression audit. Only directives naming enabled checks are
	// judged; on a full run that is every directive, so unknown check
	// names surface too.
	audited := func(check string) bool {
		if s.Has(check) {
			return enabled(check)
		}
		// Unknown check names only surface on a full run: a subset run
		// cannot distinguish "misspelled" from "not selected today".
		return enabled(StaleCheck)
	}
	validList := strings.Join(s.Names(), ", ")
	for _, d := range dirsByPkg {
		diags = append(diags, d.Stale(audited, s.Has, validList)...)
	}

	sortDiagnostics(diags)
	return diags, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Check < diags[j].Check
	})
}

// CheckPackage runs the analyzers over one loaded package, applies the
// package's //lint:allow directives, and returns the surviving
// diagnostics sorted by position (malformed directives included). Unlike
// Suite.Run it performs no stale-suppression audit, which keeps golden
// linttest packages focused on one analyzer at a time.
func CheckPackage(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	dirs := ParseDirectives(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic(nil), dirs.Malformed...)
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			if !dirs.Suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sortDiagnostics(diags)
	return diags, nil
}
