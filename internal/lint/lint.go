// Package lint is a minimal static-analysis framework in the spirit of
// golang.org/x/tools/go/analysis, built entirely on the standard library
// (this module deliberately has no external dependencies). It exists to
// host cedarvet, the suite of project-specific analyzers that enforce the
// simulator's determinism and parameter-hygiene invariants; see DESIGN.md
// "Determinism invariants and cedarvet".
//
// An Analyzer inspects one type-checked package at a time through a Pass
// and reports Diagnostics. Findings can be suppressed at the source line
// with a directive comment:
//
//	//lint:allow <check> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
// A directive suppresses matching diagnostics on its own line and on the
// line directly below it, so both trailing-comment and own-line placement
// work:
//
//	t := time.Now() //lint:allow nondeterminism wall-clock is for the CLI banner only
//
//	//lint:allow paramhygiene this 512 is a test matrix order, not the PFU depth
//	n := 512
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the check in output and in //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run inspects the package behind pass and reports findings.
	Run func(pass *Pass) error
}

// A Pass connects an Analyzer to the package under inspection.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files is the package syntax, including in-package _test.go files.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Filename returns the name of the file holding f.
func (p *Pass) Filename(f *ast.File) string {
	return p.Fset.Position(f.Pos()).Filename
}

// IsTestFile reports whether f is a _test.go file. Several analyzers
// relax their rules inside tests (seeded randomness and wall-clock reads
// are fine there).
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Filename(f), "_test.go")
}

// A Diagnostic is one finding, located by resolved position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// allowDirective is the comment prefix of a suppression.
const allowDirective = "//lint:allow"

// MalformedCheck is the pseudo-check name under which broken //lint:allow
// directives are reported. It cannot itself be suppressed.
const MalformedCheck = "lintdirective"

// Directives holds the parsed //lint:allow suppressions of one package.
type Directives struct {
	// allow maps filename -> line -> set of check names allowed there.
	allow map[string]map[int]map[string]bool
	// Malformed collects directives missing a check name or a reason.
	Malformed []Diagnostic
}

// ParseDirectives scans the comments of files for //lint:allow.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{allow: map[string]map[int]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowDirective) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowDirective)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					d.Malformed = append(d.Malformed, Diagnostic{
						Pos:     pos,
						Check:   MalformedCheck,
						Message: "malformed directive: want //lint:allow <check> <reason>",
					})
					continue
				}
				check := fields[0]
				byLine := d.allow[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					d.allow[pos.Filename] = byLine
				}
				// A directive covers its own line (trailing comment)
				// and the next line (own-line comment above the code).
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][check] = true
				}
			}
		}
	}
	return d
}

// Suppressed reports whether diag is covered by an allow directive.
func (d *Directives) Suppressed(diag Diagnostic) bool {
	if diag.Check == MalformedCheck {
		return false
	}
	return d.allow[diag.Pos.Filename][diag.Pos.Line][diag.Check]
}

// CheckPackage runs the analyzers over one loaded package, applies the
// package's //lint:allow directives, and returns the surviving
// diagnostics sorted by position (malformed directives included).
func CheckPackage(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	dirs := ParseDirectives(pkg.Fset, pkg.Files)
	diags := append([]Diagnostic(nil), dirs.Malformed...)
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &raw,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range raw {
			if !dirs.Suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Check < diags[j].Check
	})
	return diags, nil
}
