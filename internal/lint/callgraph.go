package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// CallGraph is a conservative intra-module call graph built from
// go/types information alone:
//
//   - A static call or a reference to a named function or a method on a
//     concrete receiver adds an edge to that function. References count
//     because a function passed as a value (a method value, a callback)
//     may be invoked by anything that holds it.
//   - A call through an interface method adds an edge to every module
//     method with the same name and structurally identical signature —
//     the interface-method-set over-approximation. Signatures are
//     compared by fully-qualified type string, so the same module
//     package type-checked in different loader universes (analysis vs.
//     dependency) still matches.
//   - Function literals are not separate nodes: a literal's body belongs
//     to the enclosing declared function, so calls made inside a closure
//     are edges from the function that created the closure. This is the
//     right attribution for reachability ("whose code can run") without
//     having to track where the closure value flows.
//
// Calls through plain function-typed values (not method values resolved
// above) have no callee edges; the callee body was attributed to
// whichever function created it, which is where an allocation- or
// hygiene-finding belongs anyway.
type CallGraph struct {
	// Nodes maps a stable function key (FuncKey) to the declaration that
	// provides its body. Only functions declared in the module with
	// bodies appear.
	Nodes map[string]*FuncNode

	edges map[string]map[string]bool
}

// FuncNode locates one declared function of the module.
type FuncNode struct {
	Key  string
	Pkg  *Package
	Decl *ast.FuncDecl
	Func *types.Func
}

// FuncKey returns the stable cross-universe identity of a function: its
// fully qualified name. Two type-checks of the same package (the
// analysis load and the dependency load) yield distinct objects but the
// same key.
func FuncKey(f *types.Func) string {
	return f.Origin().FullName()
}

// sigKey renders a signature as parameter and result types only (fully
// qualified, names dropped), so interface methods match implementations
// across type-checking universes and regardless of parameter naming.
func sigKey(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	for i := 0; i < sig.Params().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Params().At(i).Type(), nil))
	}
	if sig.Variadic() {
		b.WriteString("...")
	}
	b.WriteString(")(")
	for i := 0; i < sig.Results().Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(sig.Results().At(i).Type(), nil))
	}
	b.WriteByte(')')
	return b.String()
}

type methodKey struct {
	name string
	sig  string
}

func buildCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		Nodes: map[string]*FuncNode{},
		edges: map[string]map[string]bool{},
	}

	// Pass 1: register declared functions and index concrete methods by
	// (name, signature) for interface-dispatch resolution.
	methods := map[methodKey][]string{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				key := FuncKey(obj)
				if fd.Body != nil {
					g.Nodes[key] = &FuncNode{Key: key, Pkg: pkg, Decl: fd, Func: obj}
				}
				if fd.Recv != nil {
					mk := methodKey{fd.Name.Name, sigKey(obj.Type().(*types.Signature))}
					methods[mk] = append(methods[mk], key)
				}
			}
		}
	}

	// Pass 2: edges. Every use of a *types.Func inside a body — called
	// or referenced — is an edge; interface methods fan out to all
	// structurally matching module methods.
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				from := FuncKey(obj)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					fobj, ok := pkg.Info.Uses[id].(*types.Func)
					if !ok {
						return true
					}
					fobj = fobj.Origin()
					sig, ok := fobj.Type().(*types.Signature)
					if !ok {
						return true
					}
					if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
						for _, to := range methods[methodKey{fobj.Name(), sigKey(sig)}] {
							g.addEdge(from, to)
						}
					} else {
						g.addEdge(from, FuncKey(fobj))
					}
					return true
				})
			}
		}
	}
	return g
}

func (g *CallGraph) addEdge(from, to string) {
	set := g.edges[from]
	if set == nil {
		set = map[string]bool{}
		g.edges[from] = set
	}
	set[to] = true
}

// Calls reports whether an edge from → to exists.
func (g *CallGraph) Calls(from, to string) bool { return g.edges[from][to] }

// Reachable returns the set of function keys reachable from the roots
// (roots included, whether or not they have bodies in the module). The
// traversal visits callees in sorted order so that any caller folding
// over the walk sees a deterministic sequence.
func (g *CallGraph) Reachable(roots []string) map[string]bool {
	seen := map[string]bool{}
	stack := append([]string(nil), roots...)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[k] {
			continue
		}
		seen[k] = true
		var next []string
		for to := range g.edges[k] {
			if !seen[to] {
				next = append(next, to)
			}
		}
		sort.Strings(next)
		stack = append(stack, next...)
	}
	return seen
}
