// Package maporder flags range loops over maps whose iteration order can
// leak into results: appends into slices that outlive the loop, floating-
// point accumulation (rounding is order-dependent), and direct output
// emission. Map iteration order is randomized by the runtime, so any of
// these makes two identical simulation runs disagree.
//
// The canonical collect-keys-then-sort idiom is recognized and exempt: an
// append inside the loop is clean when the same slice is passed to a
// sort.* or slices.* call later in the enclosing block. Integer
// accumulation is also exempt — exact addition commutes.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"cedar/internal/lint"
)

// Analyzer is the maporder check.
var Analyzer = &lint.Analyzer{
	Name: "maporder",
	Doc: "forbid map iteration whose nondeterministic order reaches " +
		"appended slices, float accumulators or emitted output",
	Run: run,
}

var fmtEmitters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, f, rs)
			return true
		})
	}
	return nil
}

func checkMapRange(pass *lint.Pass, file *ast.File, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAppend(pass, file, rs, n)
			checkFloatAccum(pass, rs, n)
		case *ast.CallExpr:
			checkEmission(pass, n)
		}
		return true
	})
}

// checkAppend flags `s = append(s, ...)` where s outlives the loop and is
// never sorted afterwards.
func checkAppend(pass *lint.Pass, file *ast.File, rs *ast.RangeStmt, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.Info.ObjectOf(id)
		if obj == nil || obj.Pos() >= rs.Pos() {
			continue // loop-local slice; order cannot escape
		}
		if sortedAfter(pass, file, rs, obj) {
			continue
		}
		pass.Reportf(call.Pos(), "append into %s inside map iteration; map order is nondeterministic — collect keys and sort them first", obj.Name())
	}
}

// checkFloatAccum flags compound float accumulation (`sum += v` and
// friends); float rounding makes the result order-dependent.
func checkFloatAccum(pass *lint.Pass, rs *ast.RangeStmt, as *ast.AssignStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	if len(as.Lhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	t := pass.Info.TypeOf(lhs)
	if t == nil {
		return
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return
	}
	if obj := rootObject(pass, lhs); obj != nil && obj.Pos() >= rs.Pos() {
		return // accumulator local to the loop body
	}
	pass.Reportf(as.Pos(), "floating-point accumulation in map iteration order; rounding makes the sum order-dependent — iterate sorted keys")
}

// checkEmission flags writes to output streams from inside the loop.
func checkEmission(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// fmt.Print*/Fprint* via the package name.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && fmtEmitters[sel.Sel.Name] {
				pass.Reportf(call.Pos(), "fmt.%s emits output in map iteration order; collect into sorted form before printing", sel.Sel.Name)
			}
			return
		}
	}
	// Writer methods on buffers, builders, and io.Writer values.
	if !writerMethods[sel.Sel.Name] {
		return
	}
	t := pass.Info.TypeOf(sel.X)
	if t == nil {
		return
	}
	if isOutputSink(t) {
		pass.Reportf(call.Pos(), "%s on %s emits output in map iteration order; collect into sorted form before writing", sel.Sel.Name, t.String())
	}
}

func isOutputSink(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch tt := t.(type) {
	case *types.Named:
		obj := tt.Obj()
		if obj.Pkg() == nil {
			return false
		}
		full := obj.Pkg().Path() + "." + obj.Name()
		return full == "bytes.Buffer" || full == "strings.Builder" || full == "io.Writer"
	case *types.Interface:
		// An interface value with a Write method is treated as a sink.
		for i := 0; i < tt.NumMethods(); i++ {
			if tt.Method(i).Name() == "Write" {
				return true
			}
		}
	}
	return false
}

// sortedAfter reports whether obj is passed to a sort.* or slices.* call
// in a statement after rs within the block that directly contains rs.
func sortedAfter(pass *lint.Pass, file *ast.File, rs *ast.RangeStmt, obj types.Object) bool {
	list := enclosingStmtList(file, rs)
	if list == nil {
		return false
	}
	seen := false
	for _, st := range list {
		if st == ast.Stmt(rs) {
			seen = true
			continue
		}
		if !seen {
			continue
		}
		if stmtSorts(pass, st, obj) {
			return true
		}
	}
	return false
}

// enclosingStmtList finds the statement list that directly contains rs.
func enclosingStmtList(file *ast.File, rs *ast.RangeStmt) []ast.Stmt {
	var found []ast.Stmt
	ast.Inspect(file, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for _, st := range list {
			if st == ast.Stmt(rs) {
				found = list
				return false
			}
		}
		return true
	})
	return found
}

// stmtSorts reports whether st calls into sort or slices with obj among
// the call's arguments (possibly wrapped, e.g. sort.StringSlice(keys)).
func stmtSorts(pass *lint.Pass, st ast.Stmt, obj types.Object) bool {
	sorts := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorts {
			return !sorts
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if usesObject(pass, arg, obj) {
				sorts = true
				return false
			}
		}
		return true
	})
	return sorts
}

func usesObject(pass *lint.Pass, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}

func isBuiltin(pass *lint.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Info.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == name
}

// rootObject resolves the leftmost identifier of an lvalue (x, x.f,
// x[i].f, ...) to its object.
func rootObject(pass *lint.Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return pass.Info.ObjectOf(v)
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}
