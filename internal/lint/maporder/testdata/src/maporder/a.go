// Package maporder is the golden package for the maporder check.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

// leakyAppend lets map order escape into a slice.
func leakyAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append into out inside map iteration`
	}
	return out
}

// collectThenSort is the approved idiom and stays clean.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// floatAccum rounds in iteration order.
func floatAccum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation in map iteration order`
	}
	return sum
}

// intAccum commutes exactly, so it is clean.
func intAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// emit prints in iteration order.
func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `fmt\.Printf emits output in map iteration order`
	}
}

// build writes into a builder in iteration order.
func build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `WriteString on strings\.Builder emits output`
	}
	return b.String()
}

// rewrite only updates the map itself; order cannot be observed.
func rewrite(m map[string]int) {
	for k, v := range m {
		m[k] = v * 2
	}
}

// loopLocal appends into a slice scoped to the body, which dies each
// iteration, so order cannot escape.
func loopLocal(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var batch []int
		batch = append(batch, vs...)
		n += len(batch)
	}
	return n
}

// sliceRange is not a map; clean.
func sliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// allowed shows the suppression escape hatch.
func allowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //lint:allow maporder consumer treats out as an unordered set
	}
	return out
}
