package maporder_test

import (
	"testing"

	"cedar/internal/lint/linttest"
	"cedar/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, maporder.Analyzer, "testdata/src/maporder")
}
