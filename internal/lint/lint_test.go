package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func parseOne(t *testing.T, src string) (*token.FileSet, *Directives) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ParseDirectives(fset, []*ast.File{f})
}

func TestDirectiveCoversOwnAndNextLine(t *testing.T) {
	_, d := parseOne(t, `package p

func f() int {
	x := 1 //lint:allow democheck trailing form
	//lint:allow democheck own-line form
	y := 2
	z := 3
	return x + y + z
}
`)
	mk := func(line int, check string) Diagnostic {
		return Diagnostic{Pos: token.Position{Filename: "x.go", Line: line}, Check: check}
	}
	if !d.Suppressed(mk(4, "democheck")) {
		t.Error("trailing directive should suppress its own line")
	}
	if !d.Suppressed(mk(6, "democheck")) {
		t.Error("own-line directive should suppress the next line")
	}
	if d.Suppressed(mk(7, "democheck")) {
		t.Error("line 7 has no directive")
	}
	if d.Suppressed(mk(4, "othercheck")) {
		t.Error("directive is per-check")
	}
}

func TestMalformedDirectiveReported(t *testing.T) {
	_, d := parseOne(t, `package p

//lint:allow nondeterminism
var x = 1
`)
	if len(d.Malformed) != 1 {
		t.Fatalf("want 1 malformed directive, got %d", len(d.Malformed))
	}
	if d.Suppressed(Diagnostic{Pos: token.Position{Filename: "x.go", Line: 3}, Check: MalformedCheck}) {
		t.Error("malformed-directive diagnostics must not be suppressible")
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	if l.Module != "cedar" {
		t.Fatalf("module = %q, want cedar", l.Module)
	}
}

// TestParseDirRespectsBuildConstraints guards the loader against the
// mutually-exclusive-twin pattern (a "//go:build race" file redeclaring
// what its "!race" twin declares): without constraint evaluation both
// parse and the package fails to typecheck.
func TestParseDirRespectsBuildConstraints(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module constrained\n")
	write("on.go", "//go:build race\n\npackage p\n\nconst flag = true\n")
	write("off.go", "//go:build !race\n\npackage p\n\nconst flag = false\n")
	write("other_goos.go", "//go:build plan9\n\npackage p\n\nconst flag = 3\n")
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	files, err := l.parseDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("got %d files, want just the !race twin", len(files))
	}
	if got := l.Fset.Position(files[0].Pos()).Filename; filepath.Base(got) != "off.go" {
		t.Errorf("loaded %s, want off.go", got)
	}
}
