package layering_test

import (
	"testing"

	"cedar/internal/lint"
	"cedar/internal/lint/layering"
	"cedar/internal/lint/linttest"
)

func TestLayering(t *testing.T) {
	suite := &lint.Suite{Module: []*lint.ModuleAnalyzer{layering.New(layering.Config{
		Layers: map[string]int{
			"base": 0,
			"low":  0,
			"mid":  1,
		},
		Prefixes: map[string]int{"cmd/": 2},
	})}}
	linttest.RunModule(t, suite, "testdata/mod")
}
