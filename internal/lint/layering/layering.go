// Package layering enforces the module's declared package DAG: every
// package is assigned a layer number, and an import may only point at an
// equal or lower layer. Same-layer imports are allowed (the memory
// subsystem is one layer with internal structure); upward imports — a
// fabric reaching into the core, a parameter package growing a simulator
// dependency — are findings. A module package missing from the table is
// also a finding, so new packages must be placed deliberately.
package layering

import (
	"sort"
	"strconv"
	"strings"

	"cedar/internal/lint"
)

// Config declares the layer DAG for one module.
type Config struct {
	// Layers maps module-relative package paths ("internal/sim", "" for
	// the module root) to layer numbers. Higher layers may import lower
	// or equal ones.
	Layers map[string]int
	// Prefixes assigns a layer to whole subtrees ("cmd/", "internal/lint")
	// when no exact entry matches. Longest matching prefix wins.
	Prefixes map[string]int
}

// DefaultConfig is the cedar module's layer DAG, bottom to top:
//
//	 0  params, sim, perfmon, ppt, comparator, lint (leaf vocabulary + engines)
//	 1  scope            (metrics hub: params + perfmon)
//	 2  fault            (deterministic injection: params + scope)
//	 3  network          (fabrics: fault)
//	 4  gmem cmem cache ccbus prefetch   (memory system: network + fault)
//	 5  ce vm            (compute engine + reference VM)
//	 6  core xylem       (whole-machine assembly, workload gen)
//	 7  cfrt             (kernel runtime over core)
//	 8  kernels perfect  (paper workloads + cross-validation)
//	 9  fleet store      (experiment orchestration, durable result store)
//	10  tables cliutil bench  (paper tables, CLI plumbing, perf campaigns)
//	11  cedar serve      (module root facade, experiment-serving daemon core)
//	12  cmd/* examples/* (binaries and examples)
var DefaultConfig = Config{
	Layers: map[string]int{
		"internal/params":     0,
		"internal/sim":        0,
		"internal/perfmon":    0,
		"internal/ppt":        0,
		"internal/comparator": 0,
		"internal/scope":      1,
		"internal/fault":      2,
		"internal/network":    3,
		"internal/gmem":       4,
		"internal/cmem":       4,
		"internal/cache":      4,
		"internal/ccbus":      4,
		"internal/prefetch":   4,
		"internal/ce":         5,
		"internal/vm":         5,
		"internal/core":       6,
		"internal/xylem":      6,
		"internal/cfrt":       7,
		"internal/kernels":    8,
		"internal/perfect":    8,
		"internal/fleet":      9,
		"internal/store":      9,
		"internal/tables":     10,
		"internal/cliutil":    10,
		"internal/bench":      10,
		"":                    11,
		"internal/serve":      11,
	},
	Prefixes: map[string]int{
		"internal/lint": 0,
		"cmd/":          12,
		"examples/":     12,
	},
}

// Analyzer is layering with the cedar layer DAG.
var Analyzer = New(DefaultConfig)

// New builds a layering analyzer for the given DAG.
func New(cfg Config) *lint.ModuleAnalyzer {
	a := &lint.ModuleAnalyzer{
		Name: "layering",
		Doc:  "enforces the declared package layer DAG: imports must not point upward",
	}
	a.Run = func(pass *lint.ModulePass) error { return run(pass, cfg) }
	return a
}

// layerOf resolves a module-relative package path to its layer.
func (c Config) layerOf(rel string) (int, bool) {
	if l, ok := c.Layers[rel]; ok {
		return l, true
	}
	best, bestLen, found := 0, -1, false
	for prefix, l := range c.Prefixes {
		if (strings.HasPrefix(rel, prefix) || rel == strings.TrimSuffix(prefix, "/")) && len(prefix) > bestLen {
			best, bestLen, found = l, len(prefix), true
		}
	}
	return best, found
}

func relPath(pkg *lint.Package) string {
	if pkg.Path == pkg.Module {
		return ""
	}
	return strings.TrimPrefix(pkg.Path, pkg.Module+"/")
}

func run(pass *lint.ModulePass, cfg Config) error {
	// Deterministic package order.
	pkgs := append([]*lint.Package(nil), pass.Module.Packages...)
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	for _, pkg := range pkgs {
		rel := relPath(pkg)
		from, ok := cfg.layerOf(rel)
		if !ok {
			if len(pkg.Files) > 0 {
				pass.Reportf(pkg.Files[0].Package,
					"package %s is not assigned a layer; add it to the layering DAG", pkg.Path)
			}
			continue
		}
		for _, f := range pkg.Files {
			filename := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(filename, "_test.go") {
				continue // tests may reach anywhere (cross-validation does)
			}
			for _, imp := range f.Imports {
				path, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				impRel, inModule := moduleRel(path, pkg.Module)
				if !inModule {
					continue
				}
				to, ok := cfg.layerOf(impRel)
				if !ok {
					continue // the unassigned package is reported at its own clause
				}
				if from < to {
					pass.Reportf(imp.Path.Pos(),
						"layering violation: %s (layer %d) imports %s (layer %d); imports must point at equal or lower layers",
						pkg.Path, from, path, to)
				}
			}
		}
	}
	return nil
}

func moduleRel(importPath, module string) (string, bool) {
	if importPath == module {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, module+"/"); ok {
		return rest, true
	}
	return "", false
}
