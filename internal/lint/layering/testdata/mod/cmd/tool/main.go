// Command tool exercises the prefix table: cmd/* sits on top and may
// import anything.
package main

import "laymod/low"

func main() { _ = low.X }
