// Package base anchors the bottom layer.
package base

// V is the bottom-layer value.
const V = 1
