package base

import "laymod/mid"

// Tests may reach across layers freely (no finding here).
var _ = mid.W
