// Package low is bottom-layer code that illegally reaches upward.
package low

import "laymod/mid" // want `layering violation: laymod/low \(layer 0\) imports laymod/mid \(layer 1\)`

// X leaks an upper-layer value downward.
const X = mid.W
