module laymod

go 1.22
