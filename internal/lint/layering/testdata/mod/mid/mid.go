// Package mid sits one layer above base; its downward import is fine.
package mid

import "laymod/base"

// W consumes the lower layer.
const W = base.V + 1
