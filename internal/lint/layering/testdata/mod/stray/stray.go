// Package stray is missing from the DAG on purpose.
package stray // want `package laymod/stray is not assigned a layer`

// S keeps the package non-empty.
const S = 1
