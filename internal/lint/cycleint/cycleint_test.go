package cycleint_test

import (
	"testing"

	"cedar/internal/lint/cycleint"
	"cedar/internal/lint/linttest"
)

func TestCycleInt(t *testing.T) {
	linttest.Run(t, cycleint.Analyzer, "testdata/src/cycleint")
}
