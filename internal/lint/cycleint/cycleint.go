// Package cycleint flags narrowing of int64 cycle counts. Simulated time
// in this repo is always an int64 cycle count (a full-scale Perfect run
// simulates billions of cycles); squeezing one through int or int32 —
// in a conversion or by declaring a cycle-named struct field narrow —
// silently truncates on 32-bit builds or long runs.
//
// A conversion is flagged when the operand is "cycle-flavored": its type
// is int64 (or names Cycle) and the expression or its type mentions
// cycle. A struct field is flagged when its name mentions cycle but its
// type is a narrower integer. Plain int conversions of non-cycle values
// (word counts, indices) stay clean.
package cycleint

import (
	"go/ast"
	"go/types"
	"regexp"

	"cedar/internal/lint"
)

// Analyzer is the cycleint check.
var Analyzer = &lint.Analyzer{
	Name: "cycleint",
	Doc:  "forbid narrowing int64 cycle counts to int/int32 in conversions and struct fields",
	Run:  run,
}

var cycleName = regexp.MustCompile(`(?i)cycle`)

// narrowInts are integer kinds that cannot hold a full cycle count on
// every platform.
var narrowInts = map[types.BasicKind]bool{
	types.Int: true, types.Int32: true, types.Int16: true, types.Int8: true,
	types.Uint: true, types.Uint32: true, types.Uint16: true, types.Uint8: true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkConversion(pass, n)
			case *ast.StructType:
				checkFields(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkConversion(pass *lint.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || !narrowInts[dst.Kind()] {
		return
	}
	src := pass.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	sb, ok := src.Underlying().(*types.Basic)
	if !ok || (sb.Kind() != types.Int64 && sb.Kind() != types.Uint64) {
		return
	}
	if !cycleFlavored(call.Args[0], src) {
		return
	}
	pass.Reportf(call.Pos(), "narrowing int64 cycle count %s to %s truncates long simulations; keep cycle arithmetic in int64", exprString(call.Args[0]), tv.Type.String())
}

func checkFields(pass *lint.Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		t := pass.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		b, ok := t.Underlying().(*types.Basic)
		if !ok || !narrowInts[b.Kind()] {
			continue
		}
		for _, name := range field.Names {
			if cycleName.MatchString(name.Name) {
				pass.Reportf(name.Pos(), "cycle-count field %s declared %s; declare it int64 so long simulations cannot truncate", name.Name, t.String())
			}
		}
	}
}

// cycleFlavored reports whether the expression or its type talks about
// cycles.
func cycleFlavored(e ast.Expr, t types.Type) bool {
	if named, ok := t.(*types.Named); ok && cycleName.MatchString(named.Obj().Name()) {
		return true
	}
	flavored := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && cycleName.MatchString(id.Name) {
			flavored = true
		}
		return !flavored
	})
	return flavored
}

// exprString renders a short label for the flagged operand.
func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprString(v.X) + "." + v.Sel.Name
	case *ast.CallExpr:
		return exprString(v.Fun) + "(...)"
	default:
		return "expression"
	}
}
