// Package cycleint is the golden package for the cycleint check.
package cycleint

// Narrow cycle-named fields are flagged; int64 and non-cycle fields are
// fine (WordsPerCycle is a rate, not a count, but float escapes the rule
// by type, which is what we want).
type result struct {
	Cycles        int   // want `cycle-count field Cycles declared int`
	StartCycle    int32 // want `cycle-count field StartCycle declared int32`
	GoodCycles    int64
	WordsPerCycle float64
	Words         int
}

type simCycles int64

func narrowing(totalCycles int64, lineWords uint64) int {
	a := int(totalCycles)   // want `narrowing int64 cycle count totalCycles to int`
	b := int32(totalCycles) // want `narrowing int64 cycle count totalCycles to int32`
	_ = b
	// Widening and same-width moves are fine.
	var w int64 = totalCycles
	_ = w
	// Non-cycle narrowings (word counts, indices) are fine.
	c := int(lineWords)
	return a + c
}

// Named cycle types are recognized even when the identifier is bland.
func namedType(t simCycles) int32 {
	return int32(t) // want `narrowing int64 cycle count t to int32`
}

// The escape hatch: a justified allow.
func bounded(deltaCycles int64) int {
	return int(deltaCycles) //lint:allow cycleint delta bounded by one quantum, fits int32
}
