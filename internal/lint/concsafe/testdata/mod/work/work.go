// Package work is the golden package for the concsafe analyzer.
package work

import (
	"sync"

	"csmod/scope"
)

func use(int) {}

func loopCapture(items []int) {
	var wg sync.WaitGroup
	for i, v := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			use(i) // want `goroutine captures loop variable i`
			use(v) // want `goroutine captures loop variable v`
		}()
	}
	wg.Wait()
}

func loopArg(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			use(i) // passed as an argument: clean
		}(i)
	}
	wg.Wait()
}

func forCapture() {
	for j := 0; j < 4; j++ {
		go func() {
			use(j) // want `goroutine captures loop variable j`
		}()
	}
}

func sharedHub(hub *scope.Hub, jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := hub.Fork() // Fork on a captured hub is the sanctioned idiom
			w.Bump()        // worker-local hub: unrestricted
			hub.Bump()      // want `goroutine calls Bump on a captured Hub`
			hub.Adopt(w)
		}()
	}
	wg.Wait()
}

func lockByValue(mu sync.Mutex) { // want `parameter copies sync\.Mutex by value`
	mu.Lock()
	mu.Unlock()
}

func waitByValue(wg sync.WaitGroup) { // want `parameter copies sync\.WaitGroup by value`
	wg.Wait()
}

func lockByPointer(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

var litByValue = func(o sync.Once) { // want `parameter copies sync\.Once by value`
	o.Do(func() {})
}
