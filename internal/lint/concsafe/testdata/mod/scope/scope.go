// Package scope mimics the real metrics hub; the analyzer matches it by
// package-path suffix and the type name Hub.
package scope

// Hub is a stand-in metrics hub.
type Hub struct{ n int }

// Fork returns a worker-local child hub.
func (h *Hub) Fork() *Hub { return &Hub{} }

// Adopt merges a forked child back in.
func (h *Hub) Adopt(w *Hub) { h.n += w.n }

// Bump mutates shared state.
func (h *Hub) Bump() { h.n++ }
