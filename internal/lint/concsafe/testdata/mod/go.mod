module csmod

go 1.22
