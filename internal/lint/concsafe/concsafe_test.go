package concsafe_test

import (
	"testing"

	"cedar/internal/lint"
	"cedar/internal/lint/concsafe"
	"cedar/internal/lint/linttest"
)

// The golden sources need a scope.Hub lookalike in a sibling package, so
// concsafe tests as a module rather than a single golden package.
func TestConcSafe(t *testing.T) {
	suite := &lint.Suite{Package: []lint.ScopedAnalyzer{{Analyzer: concsafe.Analyzer}}}
	linttest.RunModule(t, suite, "testdata/mod")
}
