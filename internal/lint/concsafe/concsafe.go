// Package concsafe enforces the fleet-era concurrency hygiene rules:
//
//   - A goroutine literal must not capture a loop variable. Go 1.22 made
//     per-iteration bindings the semantics, so this is no longer a
//     correctness bug — but the repo treats it as hygiene: the captured
//     name hides which iteration's value the goroutine sees, so pass it
//     as an argument instead.
//   - Inside a goroutine literal, a captured *scope.Hub may only be
//     Forked (or Adopted from): any other method call mutates shared
//     metrics state from a worker, which breaks cedarfleet's
//     byte-identical-at-any-jobs guarantee. A Hub obtained inside the
//     goroutine (h := hub.Fork()) is worker-local and unrestricted.
//   - sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Once, and sync.Cond
//     must not travel by value: a copied lock guards nothing. Receivers
//     and parameters of these bare types are findings.
package concsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cedar/internal/lint"
)

// Analyzer is the concsafe check.
var Analyzer = &lint.Analyzer{
	Name: "concsafe",
	Doc:  "goroutine loop-variable capture, shared Hub mutation from workers, by-value sync primitives",
	Run:  run,
}

// forkOnly are the Hub methods a worker goroutine may call on a captured
// hub: everything else mutates shared state.
var forkOnly = map[string]bool{"Fork": true, "Adopt": true}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		checkFile(pass, f)
	}
	return nil
}

func checkFile(pass *lint.Pass, f *ast.File) {
	// loopVars tracks, per enclosing loop nest, the objects bound by
	// range/for clauses currently in scope.
	var loopVars []types.Object

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			mark := len(loopVars)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						loopVars = append(loopVars, obj)
					}
				}
			}
			ast.Inspect(n.Body, walk)
			loopVars = loopVars[:mark]
			return false
		case *ast.ForStmt:
			mark := len(loopVars)
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							loopVars = append(loopVars, obj)
						}
					}
				}
			}
			ast.Inspect(n.Body, walk)
			loopVars = loopVars[:mark]
			return false
		case *ast.GoStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkGoroutine(pass, lit, loopVars)
			}
			return true
		case *ast.FuncDecl:
			checkSyncByValue(pass, n.Recv, n.Type)
		case *ast.FuncLit:
			checkSyncByValue(pass, nil, n.Type)
		}
		return true
	}
	ast.Inspect(f, walk)
}

// checkGoroutine inspects one `go func(){...}` literal for loop-variable
// capture and shared-Hub mutation.
func checkGoroutine(pass *lint.Pass, lit *ast.FuncLit, loopVars []types.Object) {
	captured := map[types.Object]bool{}
	for _, obj := range loopVars {
		captured[obj] = true
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[n]; obj != nil && captured[obj] {
				pass.Reportf(n.Pos(),
					"goroutine captures loop variable %s; pass it as an argument to the func literal", n.Name)
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isHub(pass.Info.TypeOf(sel.X)) || forkOnly[sel.Sel.Name] {
				return true
			}
			if definedOutside(pass.Info, sel.X, lit) {
				pass.Reportf(n.Pos(),
					"goroutine calls %s on a captured Hub; Fork a worker-local hub instead of mutating shared metrics state", sel.Sel.Name)
			}
		}
		return true
	})
}

// isHub matches the named type Hub from a package called scope (by path
// suffix, so golden-test modules can define their own scope package).
func isHub(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Hub" || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "scope" || strings.HasSuffix(path, "/scope")
}

// definedOutside reports whether the root identifier of expr names an
// object declared outside lit's body — i.e. the expression is captured,
// not worker-local.
func definedOutside(info *types.Info, expr ast.Expr, lit *ast.FuncLit) bool {
	for {
		switch e := expr.(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.Ident:
			obj := info.Uses[e]
			if obj == nil {
				return false
			}
			return obj.Pos() < lit.Body.Pos() || obj.Pos() > lit.Body.End()
		default:
			return false
		}
	}
}

// checkSyncByValue flags receivers and parameters whose type is a bare
// sync primitive that must not be copied.
func checkSyncByValue(pass *lint.Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	check := func(fl *ast.FieldList, role string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.Info.TypeOf(field.Type)
			if name, bad := copiedSyncType(t); bad {
				pass.Reportf(field.Type.Pos(),
					"%s copies sync.%s by value; a copied lock guards nothing — use *sync.%s", role, name, name)
			}
		}
	}
	check(recv, "receiver")
	check(ftype.Params, "parameter")
}

// copiedSyncType reports whether t is a bare (non-pointer) sync.Mutex,
// RWMutex, WaitGroup, Once, or Cond.
func copiedSyncType(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", false
	}
	switch name := named.Obj().Name(); name {
	case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond":
		return name, true
	}
	return "", false
}
