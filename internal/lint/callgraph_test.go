package lint

import "testing"

// TestCallGraph covers the three constructions the conservative graph
// must get right: interface dispatch (fan-out to structurally matching
// methods), method values (a reference counts as an edge), and recursion
// (Reachable terminates).
func TestCallGraph(t *testing.T) {
	pkgs := writeTestModule(t, map[string]string{
		"go.mod": "module cg\n\ngo 1.22\n",
		"dev/dev.go": `package dev

// Ticker is the per-cycle interface.
type Ticker interface{ Tick(cycle int64) }

// Clock implements Ticker.
type Clock struct{ n int64 }

// Tick advances the clock.
func (c *Clock) Tick(cycle int64) { c.n = cycle; c.helper() }

func (c *Clock) helper() { loop(0) }

func loop(d int) {
	if d < 3 {
		loop(d + 1)
	}
}
`,
		"eng/eng.go": `package eng

import "cg/dev"

// Run drives every Ticker once: an interface call.
func Run(ts []dev.Ticker, cycle int64) {
	for _, t := range ts {
		t.Tick(cycle)
	}
}

// Grab takes Tick as a method value without calling it.
func Grab(c *dev.Clock) func(int64) { return c.Tick }

// Closed calls Tick from inside a closure; the edge belongs to Closed.
func Closed(c *dev.Clock) {
	f := func() { c.Tick(0) }
	f()
}
`,
	})
	g := NewModule(pkgs).CallGraph()

	const (
		run    = "cg/eng.Run"
		grab   = "cg/eng.Grab"
		closed = "cg/eng.Closed"
		tick   = "(*cg/dev.Clock).Tick"
		helper = "(*cg/dev.Clock).helper"
		loop   = "cg/dev.loop"
	)
	for _, k := range []string{run, grab, closed, tick, helper, loop} {
		if g.Nodes[k] == nil {
			t.Fatalf("node %s missing from graph", k)
		}
	}

	edges := []struct {
		from, to, why string
	}{
		{run, tick, "interface dispatch fans out to matching concrete methods"},
		{grab, tick, "a method value reference is an edge"},
		{closed, tick, "closure bodies belong to the enclosing declaration"},
		{tick, helper, "plain method call"},
		{helper, loop, "plain function call"},
		{loop, loop, "self-recursion"},
	}
	for _, e := range edges {
		if !g.Calls(e.from, e.to) {
			t.Errorf("missing edge %s -> %s (%s)", e.from, e.to, e.why)
		}
	}

	reach := g.Reachable([]string{run})
	for _, k := range []string{run, tick, helper, loop} {
		if !reach[k] {
			t.Errorf("%s not reachable from Run", k)
		}
	}
	if reach[grab] || reach[closed] {
		t.Error("Grab/Closed are not reachable from Run")
	}
}
