package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("cedar/internal/tables").
	Path string
	// Module is the module path from go.mod ("cedar"); Path is always
	// Module or Module + "/...".
	Module string
	// Dir is the absolute directory holding the sources.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks packages of one module using only the standard
// library: module-internal imports are resolved from source under the
// module root, and standard-library imports go through the compiler's
// source importer. This is a deliberately small stand-in for
// golang.org/x/tools/go/packages, which this dependency-free module
// cannot vendor.
type Loader struct {
	// Root is the absolute module root (the directory with go.mod).
	Root string
	// Module is the module path from go.mod.
	Module string
	Fset   *token.FileSet

	std     types.ImporterFrom
	deps    map[string]*types.Package
	loading map[string]bool
}

// NewLoader reads go.mod under root and prepares a loader.
func NewLoader(root string) (*Loader, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: module root: %w", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:    root,
		Module:  module,
		Fset:    fset,
		deps:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// FindModuleRoot walks up from dir looking for go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func (l *Loader) inModule(path string) bool {
	return path == l.Module || strings.HasPrefix(path, l.Module+"/")
}

func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")
	return filepath.Join(l.Root, filepath.FromSlash(rel))
}

// Import implements types.Importer for the type-checker: module packages
// load from source (without test files), everything else falls through to
// the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if !l.inModule(path) {
		return l.std.ImportFrom(path, l.Root, 0)
	}
	if p, ok := l.deps[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(l.dirFor(path), false)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", l.dirFor(path))
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, nil)
	if err != nil {
		return nil, err
	}
	l.deps[path] = pkg
	return pkg, nil
}

// Load type-checks the packages matching the patterns for analysis.
// Patterns are directory-based like the go tool's: "./..." for the whole
// module, "./internal/..." for a subtree, or "./internal/tables" for one
// package. Analysis packages include their in-package _test.go files;
// external (_test-package) files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	files, err := l.parseDir(dir, true)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return nil, err
	}
	path := l.Module
	if rel != "." {
		path = l.Module + "/" + filepath.ToSlash(rel)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Module: l.Module, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// parseDir parses the package in dir. Only files of the primary
// (non-test) package clause are kept, so an external _test package in the
// same directory never mixes in. Returns nil when the directory holds no
// non-test Go files.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type parsed struct {
		name string
		test bool
		file *ast.File
	}
	var all []parsed
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		// Respect //go:build constraints and GOOS/GOARCH filename
		// suffixes the way the go tool would (e.g. a "//go:build race"
		// twin of a "!race" file must not both load).
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			if err != nil {
				return nil, err
			}
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		all = append(all, parsed{name: f.Name.Name, test: strings.HasSuffix(name, "_test.go"), file: f})
	}
	primary := ""
	for _, p := range all {
		if !p.test {
			if primary != "" && primary != p.name {
				return nil, fmt.Errorf("%s: conflicting package names %s and %s", dir, primary, p.name)
			}
			primary = p.name
		}
	}
	if primary == "" {
		return nil, nil
	}
	var files []*ast.File
	for _, p := range all {
		if p.name != primary || (p.test && !includeTests) {
			continue
		}
		files = append(files, p.file)
	}
	return files, nil
}

// expand resolves patterns to package directories (sorted, deduplicated).
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "scripts") {
				return fs.SkipDir
			}
			if hasGoFiles(p) {
				add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
			!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_") {
			return true
		}
	}
	return false
}
