package shardsafe_test

import (
	"testing"

	"cedar/internal/lint"
	"cedar/internal/lint/linttest"
	"cedar/internal/lint/shardsafe"
)

func TestShardSafe(t *testing.T) {
	suite := &lint.Suite{Module: []*lint.ModuleAnalyzer{shardsafe.New(shardsafe.Config{
		ShardPkgs: []string{"shard"},
		Roots:     []string{"Tick"},
	})}}
	linttest.RunModule(t, suite, "testdata/mod")
}
