module shardmod

go 1.22
