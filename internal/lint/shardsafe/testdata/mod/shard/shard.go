// Package shard is the golden shard package: Engine.Tick is the phase-A
// root, and everything it reaches must keep its writes inside its own
// object graph.
package shard

// trace and seq are the shared state the golden functions write.
var trace []int
var seq int

// counters is a pointer-shaped global: writing through it is just as
// shared as writing it.
var counters = &Engine{}

// Ticker is dispatched through an interface from Tick.
type Ticker interface{ Sub(cycle int64) }

// Engine is the root device.
type Engine struct {
	local int
	dev   Ticker
}

// Tick is the phase-A root.
func (e *Engine) Tick(cycle int64) {
	e.local = int(cycle) // receiver write: clean
	n := 0
	n++ // local write: clean
	_ = n
	seq++                          // want `write to package-level shard\.seq`
	trace = append(trace, e.local) // want `write to package-level shard\.trace`
	counters.local = 1             // want `write to package-level shard\.counters`
	e.reached(cycle)
	e.dev.Sub(cycle)
	waived()
}

// reached is phase-A code by reachability from Tick.
func (e *Engine) reached(cycle int64) {
	seq = int(cycle) // want `write to package-level shard\.seq`
}

// idle lives in a shard package, but nothing per-cycle reaches it, so
// its global write is the hub's business, not this check's.
func idle() {
	seq = 0
}

// waived shows a justified global write surviving via a directive.
func waived() {
	seq = -1 //lint:allow shardsafe drained by the hub before the next phase A
}

// Device implements Ticker; the interface dispatch from Tick makes its
// Sub method phase-A code.
type Device struct{ buf int }

// Sub runs once per cycle via the Ticker interface.
func (d *Device) Sub(cycle int64) {
	d.buf = int(cycle) // receiver write: clean
	seq = d.buf        // want `write to package-level shard\.seq`
}
