// Package shardsafe enforces the parallel-engine ownership rule: code
// that runs in phase A of the sharded cycle must not write state another
// shard can see.
//
// Under `-shards N` the engine ticks shard-owned components concurrently
// (phase A) and drains cross-shard effects in the hub afterwards. Within
// phase A a component may mutate only its own object graph; every
// cross-shard effect must travel through a sanctioned deferred API — the
// fabric Offer/Poll mailboxes, scope span sinks, the engine wake heap —
// all of which defer internally and replay in the hub in fixed shard
// order. The one class of state those APIs cannot protect is the
// process-global kind: a package-level variable is visible from every
// shard at once, so a write to one from Tick-reachable code is a data
// race under the parallel engine and a determinism hole under the
// sequential one.
//
// The check therefore flags, in any function reachable on the module
// call graph from a Tick/Step root declared in one of the configured
// shard packages, every assignment or ++/-- whose destination resolves
// to a package-level variable (of any package — writing another
// package's exported global from per-cycle code is just as shared).
// Reads are fine, receiver/local writes are fine, and mutation through
// the atomic types' method sets appears as calls rather than
// assignments, so the sanctioned sync/atomic escape hatch passes
// untouched. Justified exceptions carry //lint:allow shardsafe.
package shardsafe

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"cedar/internal/lint"
)

// Config declares which packages' per-cycle code the ownership rule
// covers.
type Config struct {
	// ShardPkgs lists module-relative package paths whose Tick/Step
	// roots start phase-A code. Roots are only taken from these
	// packages, and findings are only reported in them.
	ShardPkgs []string
	// Roots lists the function/method names that start a cycle
	// ("Tick", "Step").
	Roots []string
}

// DefaultConfig covers the same per-cycle surface as hotalloc: the
// engine and every component it can tick. Hub-side components (gmem,
// the fabrics' drain path) are included deliberately — a global write is
// a fleet-determinism hole even from the serial phase, and the shard
// contract is easiest to audit when the whole cycle obeys it.
var DefaultConfig = Config{
	ShardPkgs: []string{
		"internal/sim",
		"internal/core",
		"internal/network",
		"internal/gmem",
		"internal/cmem",
		"internal/cache",
		"internal/ccbus",
		"internal/ce",
		"internal/prefetch",
	},
	Roots: []string{"Tick", "Step"},
}

// Analyzer is shardsafe with the cedar shard-surface definition.
var Analyzer = New(DefaultConfig)

// New builds a shardsafe analyzer for the given shard-surface definition.
func New(cfg Config) *lint.ModuleAnalyzer {
	a := &lint.ModuleAnalyzer{
		Name: "shardsafe",
		Doc:  "flags writes to package-level state from per-cycle Tick/Step-reachable code; cross-shard effects must use the deferred mailbox/sink APIs",
	}
	a.Run = func(pass *lint.ModulePass) error { return run(pass, cfg) }
	return a
}

func relPath(pkg *lint.Package) string {
	if pkg.Path == pkg.Module {
		return ""
	}
	return strings.TrimPrefix(pkg.Path, pkg.Module+"/")
}

func run(pass *lint.ModulePass, cfg Config) error {
	shard := map[string]bool{}
	for _, p := range cfg.ShardPkgs {
		shard[p] = true
	}
	rootName := map[string]bool{}
	for _, r := range cfg.Roots {
		rootName[r] = true
	}

	g := pass.Module.CallGraph()

	var rootKeys []string
	for key, node := range g.Nodes {
		if shard[relPath(node.Pkg)] && rootName[node.Decl.Name.Name] {
			rootKeys = append(rootKeys, key)
		}
	}
	sort.Strings(rootKeys)

	// reachedVia maps every covered function to the first root that
	// reaches it, for the "(reachable from ...)" note in findings.
	reachedVia := map[string]string{}
	for _, root := range rootKeys {
		for key := range g.Reachable([]string{root}) {
			if _, ok := reachedVia[key]; !ok {
				reachedVia[key] = root
			}
		}
	}

	var keys []string
	for key := range reachedVia {
		keys = append(keys, key)
	}
	sort.Strings(keys)

	for _, key := range keys {
		node := g.Nodes[key]
		if node == nil || !shard[relPath(node.Pkg)] {
			continue
		}
		filename := node.Pkg.Fset.Position(node.Decl.Pos()).Filename
		if strings.HasSuffix(filename, "_test.go") {
			continue
		}
		checkFunc(pass, node, reachedVia[key])
	}
	return nil
}

// checkFunc walks one phase-A-reachable function body and reports
// writes whose destination is package-level. via names the root that
// makes the function per-cycle.
func checkFunc(pass *lint.ModulePass, node *lint.FuncNode, via string) {
	info := node.Pkg.Info
	checkWrite := func(dst ast.Expr) {
		id := rootIdent(dst)
		if id == nil || id.Name == "_" {
			return
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.Pkg() == nil || obj.Parent() != obj.Pkg().Scope() {
			return
		}
		pass.Reportf(dst.Pos(),
			"write to package-level %s.%s from per-cycle code (reachable from %s); shard-visible effects must go through a deferred mailbox/sink API",
			obj.Pkg().Name(), obj.Name(), via)
	}
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(n.X)
		}
		return true
	})
}

// rootIdent strips selectors, indexing, dereferences and parens off a
// write destination down to the identifier that owns the storage.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
