package lint

import (
	"fmt"
	"go/token"
)

// A ModuleAnalyzer is one named check over the whole module at once: it
// sees every type-checked package of a load in a single pass, which is
// what cross-package properties (import layering, call-graph
// reachability) need. Module analyzers share the //lint:allow suppression
// mechanism with per-package Analyzers.
type ModuleAnalyzer struct {
	// Name identifies the check in output and in //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of what the check enforces.
	Doc string
	// Run inspects the module behind pass and reports findings.
	Run func(pass *ModulePass) error
}

// A Module is the unit of whole-module analysis: every package of one
// load, plus the lazily built conservative call graph over them.
type Module struct {
	// Packages holds the loaded packages in load order (sorted by
	// directory, so deterministic).
	Packages []*Package
	// Fset is the file set shared by every package of the load.
	Fset *token.FileSet

	graph *CallGraph
}

// NewModule assembles a module from loaded packages. All packages must
// come from one Loader (they share its FileSet).
func NewModule(pkgs []*Package) *Module {
	m := &Module{Packages: pkgs}
	if len(pkgs) > 0 {
		m.Fset = pkgs[0].Fset
	} else {
		m.Fset = token.NewFileSet()
	}
	return m
}

// CallGraph returns the module's conservative call graph, building it on
// first use.
func (m *Module) CallGraph() *CallGraph {
	if m.graph == nil {
		m.graph = buildCallGraph(m)
	}
	return m.graph
}

// A ModulePass connects a ModuleAnalyzer to the module under inspection.
type ModulePass struct {
	Analyzer *ModuleAnalyzer
	Module   *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Module.Fset.Position(pos),
		Check:   p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}
