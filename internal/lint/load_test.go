package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// writeTestModule lays files (slash-relative path -> source) under a temp
// dir, then loads every package of the resulting module with a fresh
// Loader.
func writeTestModule(t *testing.T, files map[string]string) []*Package {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

func TestLoaderLoadsWholeModule(t *testing.T) {
	pkgs := writeTestModule(t, map[string]string{
		"go.mod":      "module tmod\n\ngo 1.22\n",
		"a/a.go":      "package a\n\n// V is exported.\nconst V = 1\n",
		"b/b.go":      "package b\n\nimport \"tmod/a\"\n\n// W doubles a.V.\nconst W = 2 * a.V\n",
		"b/b_test.go": "package b\n\nimport \"testing\"\n\nfunc TestW(t *testing.T) { _ = W }\n",
	})
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	if pkgs[0].Path != "tmod/a" || pkgs[1].Path != "tmod/b" {
		t.Fatalf("paths = %s, %s; want tmod/a, tmod/b", pkgs[0].Path, pkgs[1].Path)
	}
	for _, p := range pkgs {
		if p.Module != "tmod" {
			t.Errorf("%s: Module = %q, want tmod", p.Path, p.Module)
		}
	}
	// In-package test files ride along with the analysis package.
	if n := len(pkgs[1].Files); n != 2 {
		t.Errorf("tmod/b holds %d files, want 2 (b.go + b_test.go)", n)
	}
}
