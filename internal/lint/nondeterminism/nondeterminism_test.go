package nondeterminism_test

import (
	"testing"

	"cedar/internal/lint/linttest"
	"cedar/internal/lint/nondeterminism"
)

func TestNondeterminism(t *testing.T) {
	linttest.Run(t, nondeterminism.Analyzer, "testdata/src/nondet")
}
