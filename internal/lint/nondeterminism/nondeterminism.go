// Package nondeterminism flags constructs that can make a simulation run
// irreproducible: wall-clock reads, the process-global math/rand source,
// sleeps, goroutine spawns, and channel selects. The Cedar simulator is a
// single-threaded cycle-level model whose ticking order is part of the
// model, so any of these either leaks host time into results or races the
// tick order.
//
// _test.go files are exempt from the wall-clock and concurrency rules
// (tests may time themselves and exercise goroutines), but the global
// math/rand source stays flagged everywhere: tests must seed explicitly
// via rand.New(rand.NewSource(seed)) so failures replay.
package nondeterminism

import (
	"go/ast"
	"go/types"

	"cedar/internal/lint"
)

// Analyzer is the nondeterminism check.
var Analyzer = &lint.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall-clock time, the global math/rand source, sleeps, " +
		"goroutines and selects inside the simulator",
	Run: run,
}

// wallClockFuncs are the time-package functions that read or depend on
// the host clock. Types like time.Time and time.Duration stay usable.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// seededConstructors are the math/rand functions that build an explicitly
// seeded generator and are therefore allowed.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	// math/rand/v2 additions.
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		isTest := pass.IsTestFile(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !isTest {
					pass.Reportf(n.Pos(), "goroutine spawn in simulator code; the tick order is part of the model and must stay single-threaded")
				}
			case *ast.SelectStmt:
				if !isTest {
					pass.Reportf(n.Pos(), "channel select in simulator code; case choice is scheduler-dependent and breaks cycle reproducibility")
				}
			case *ast.SelectorExpr:
				pkgPath, ok := packageOf(pass, n)
				if !ok {
					break
				}
				name := n.Sel.Name
				switch pkgPath {
				case "time":
					if wallClockFuncs[name] && !isTest && isFunc(pass, n.Sel) {
						pass.Reportf(n.Pos(), "time.%s is wall-clock and leaks host time into the model; inject the value or drop it from deterministic output", name)
					}
				case "math/rand", "math/rand/v2":
					if !seededConstructors[name] && isFunc(pass, n.Sel) {
						pass.Reportf(n.Pos(), "global math/rand source (rand.%s) is not reproducibly seeded; use rand.New(rand.NewSource(seed))", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// packageOf resolves sel's receiver to an imported package path.
func packageOf(pass *lint.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

// isFunc reports whether sel names a function (not a type or variable).
func isFunc(pass *lint.Pass, sel *ast.Ident) bool {
	_, ok := pass.Info.Uses[sel].(*types.Func)
	return ok
}
