package nondet

import (
	"math/rand"
	"time"
)

// Test files may read the clock and spawn goroutines...
func timingHarness(done chan bool) time.Time {
	go func() { done <- true }()
	return time.Now()
}

// ...but must still seed their randomness so failures replay.
func fuzzInputs() []int {
	rng := rand.New(rand.NewSource(42))
	out := make([]int, 8)
	for i := range out {
		out[i] = rng.Intn(100)
	}
	_ = rand.Int() // want `global math/rand source \(rand\.Int\)`
	return out
}
