package nondet

import "time"

// startupBanner shows the documented escape hatch: a justified
// //lint:allow directive suppresses the finding on its line.
func startupBanner() time.Time {
	return time.Now() //lint:allow nondeterminism wall-clock is CLI banner output, never reaches the model
}

// aboveLine demonstrates own-line placement.
func aboveLine() time.Time {
	//lint:allow nondeterminism wall-clock is CLI banner output, never reaches the model
	return time.Now()
}
