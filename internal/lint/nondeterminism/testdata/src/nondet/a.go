// Package nondet is the golden package for the nondeterminism check.
package nondet

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	started := time.Now()        // want `time\.Now is wall-clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep is wall-clock`
	return time.Since(started)   // want `time\.Since is wall-clock`
}

func globalRand() int {
	rand.Seed(1)        // want `global math/rand source \(rand\.Seed\)`
	x := rand.Intn(10)  // want `global math/rand source \(rand\.Intn\)`
	y := rand.Float64() // want `global math/rand source \(rand\.Float64\)`
	_ = y
	return x
}

// seededRand is the approved pattern: an explicit source replays.
func seededRand() int {
	rng := rand.New(rand.NewSource(1993))
	return rng.Intn(10)
}

func concurrency(ch chan int) {
	go func() { ch <- 1 }() // want `goroutine spawn in simulator code`
	select {                // want `channel select in simulator code`
	case <-ch:
	default:
	}
}

// durations only touch time's types, which is fine.
func durations(d time.Duration) float64 { return d.Seconds() }
