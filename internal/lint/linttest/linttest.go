// Package linttest is a small stand-in for
// golang.org/x/tools/go/analysis/analysistest: it runs one lint.Analyzer
// over a golden package under testdata and matches the diagnostics
// against // want comments.
//
// Each expectation is written at the end of the offending line:
//
//	t := time.Now() // want `time\.Now`
//
// The backquoted text is a regular expression matched against the
// diagnostic message; several expectations may share one line. Every
// diagnostic must be matched by a want and every want must be matched by
// a diagnostic, so clean (negative) lines simply carry no comment.
// //lint:allow suppressions are applied before matching, which lets the
// golden packages test the suppression mechanism itself.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cedar/internal/lint"
)

var wantRE = regexp.MustCompile("`([^`]*)`")

// Run analyzes the golden package in dir (e.g. "testdata/src/nondet")
// and reports any mismatch between diagnostics and // want comments.
func Run(t *testing.T, a *lint.Analyzer, dir string) {
	t.Helper()
	pkg, err := load(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := lint.CheckPackage(pkg, a)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	matchWants(t, []*lint.Package{pkg}, diags)
}

// RunModule analyzes the golden module in dir — a directory with its own
// go.mod — with a whole Suite (every check enabled, stale-suppression
// audit included) and matches the result against // want comments across
// all of the module's files. This is the harness for module analyzers
// (layering, hotalloc), which need several packages at once, and for the
// suppression audit, which only runs on full Suite passes.
func RunModule(t *testing.T, suite *lint.Suite, dir string) {
	t.Helper()
	loader, err := lint.NewLoader(dir)
	if err != nil {
		t.Fatalf("loader for %s: %v", dir, err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := suite.Run(pkgs, nil)
	if err != nil {
		t.Fatalf("running suite on %s: %v", dir, err)
	}
	matchWants(t, pkgs, diags)
}

// matchWants checks diagnostics against the // want comments of the
// golden sources: every diagnostic needs a matching want on its line and
// every want needs a matching diagnostic.
func matchWants(t *testing.T, pkgs []*lint.Package, diags []lint.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					k := key{filepath.Base(pos.Filename), pos.Line}
					for _, m := range wantRE.FindAllStringSubmatch(c.Text[idx:], -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						wants[k] = append(wants[k], re)
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key{filepath.Base(d.Pos.Filename), d.Pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", k.file, k.line, d.Check, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// load parses and type-checks the single golden package in dir. Golden
// packages may import the standard library only.
func load(dir string) (*lint.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	path := filepath.Base(dir)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &lint.Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
