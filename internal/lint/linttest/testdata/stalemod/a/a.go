// Package a exercises //lint:allow suppression and the stale audit end
// to end through Suite.Run.
package a

func bad() {}

func covered() {
	bad() //lint:allow flagbad the golden test wants this one waived
}

func uncovered() {
	bad() // want `call to bad`
}

//lint:allow flagbad covers no finding at all // want `suppresses no finding; delete the stale directive`

//lint:allow flagbda misspelled check name // want `names unknown check "flagbda"`
