package linttest_test

import (
	"go/ast"
	"testing"

	"cedar/internal/lint"
	"cedar/internal/lint/linttest"
)

// flagBad reports every call to a function literally named bad — a
// deterministic finding source for exercising the suppression machinery.
var flagBad = &lint.Analyzer{
	Name: "flagbad",
	Doc:  "flags calls to functions named bad",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil
	},
}

// TestRunModuleStaleAudit runs a full Suite over the stalemod golden
// module: a used directive stays silent, an unused one is reported as
// lintstale, and a misspelled check name is called out with the valid
// list.
func TestRunModuleStaleAudit(t *testing.T) {
	suite := &lint.Suite{Package: []lint.ScopedAnalyzer{{Analyzer: flagBad}}}
	linttest.RunModule(t, suite, "testdata/stalemod")
}
