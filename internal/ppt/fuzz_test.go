package ppt

import (
	"math"
	"testing"
)

// FuzzInstability checks the measure's algebraic invariants on arbitrary
// ensembles: In ≥ 1 when finite, non-increasing in e, scale-invariant,
// and exactly max/min at e = 0.
func FuzzInstability(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(1))
	f.Add([]byte{200, 1, 200, 1}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, e8 uint8) {
		if len(raw) < 2 || len(raw) > 64 {
			return
		}
		perf := make([]float64, len(raw))
		mn, mx := math.Inf(1), 0.0
		for i, b := range raw {
			perf[i] = float64(b) + 1 // strictly positive
			if perf[i] < mn {
				mn = perf[i]
			}
			if perf[i] > mx {
				mx = perf[i]
			}
		}
		e := int(e8) % len(perf)

		in := Instability(perf, e)
		if in < 1-1e-12 {
			t.Fatalf("In = %v < 1 on positive data", in)
		}
		if got := Instability(perf, 0); math.Abs(got-mx/mn) > 1e-9 {
			t.Fatalf("In(.,0) = %v, want max/min = %v", got, mx/mn)
		}
		if e > 0 && Instability(perf, e) > Instability(perf, e-1)+1e-9 {
			t.Fatal("In not non-increasing in e")
		}
		// Scale invariance.
		scaled := make([]float64, len(perf))
		for i := range perf {
			scaled[i] = perf[i] * 3.25
		}
		if math.Abs(Instability(scaled, e)-in) > 1e-9*in {
			t.Fatal("In not scale invariant")
		}
		// Stability is the inverse.
		if st := Stability(perf, e); math.Abs(st*in-1) > 1e-9 {
			t.Fatalf("St·In = %v, want 1", st*in)
		}
	})
}

// FuzzBands checks the band thresholds partition speedups consistently.
func FuzzBands(f *testing.F) {
	f.Add(16.0, uint16(32))
	f.Add(0.5, uint16(8))
	f.Fuzz(func(t *testing.T, sp float64, p16 uint16) {
		if math.IsNaN(sp) || math.IsInf(sp, 0) || sp < 0 || sp > 1e9 {
			return
		}
		p := int(p16%2048) + 2
		b := BandOfSpeedup(sp, p)
		switch b {
		case High:
			if sp < HighThreshold(p) {
				t.Fatal("high below threshold")
			}
		case Intermediate:
			if sp >= HighThreshold(p) || sp < AcceptableThreshold(p) {
				t.Fatal("intermediate outside its window")
			}
		case Unacceptable:
			if sp >= AcceptableThreshold(p) {
				t.Fatal("unacceptable above threshold")
			}
		}
		// Efficiency formulation agrees with the speedup formulation.
		if BandOfEfficiency(sp/float64(p), p) != b {
			t.Fatal("efficiency and speedup classifications disagree")
		}
	})
}
