// Package ppt implements the performance-evaluation methodology of §4.3:
// the Practical Parallelism Tests. It provides speedup and efficiency,
// the High / Intermediate / Unacceptable performance bands delimited by
// P/2 and P/(2·log₂P), the stability measure St(P, Nᵢ, K, e) with its
// inverse Instability, and the harmonic-mean rate summary used for the
// absolute-performance comparison.
package ppt

import (
	"fmt"
	"math"
	"sort"
)

// Speedup is serial time over parallel time.
func Speedup(serialTime, parallelTime float64) float64 {
	if parallelTime <= 0 {
		return 0
	}
	return serialTime / parallelTime
}

// Efficiency is speedup per processor.
func Efficiency(speedup float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return speedup / float64(p)
}

// Band is a performance level relative to the processor count.
type Band int

// The three bands of §4.3: speedups of at least P/2 are high, at least
// P/(2·log₂P) intermediate, anything below unacceptable (for P ≥ 8).
const (
	Unacceptable Band = iota
	Intermediate
	High
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case High:
		return "High"
	case Intermediate:
		return "Intermediate"
	case Unacceptable:
		return "Unacceptable"
	}
	return fmt.Sprintf("Band(%d)", int(b))
}

// HighThreshold returns the speedup needed for the high band: P/2.
func HighThreshold(p int) float64 { return float64(p) / 2 }

// AcceptableThreshold returns the speedup needed to escape the
// unacceptable band: P/(2·log₂P).
func AcceptableThreshold(p int) float64 {
	if p < 2 {
		return 0.5
	}
	return float64(p) / (2 * math.Log2(float64(p)))
}

// BandOfSpeedup classifies a speedup on P processors.
func BandOfSpeedup(speedup float64, p int) Band {
	switch {
	case speedup >= HighThreshold(p):
		return High
	case speedup >= AcceptableThreshold(p):
		return Intermediate
	default:
		return Unacceptable
	}
}

// BandOfEfficiency classifies an efficiency Ep on P processors (Table 6's
// formulation: Ep ≥ 0.5 high, Ep ≥ 1/(2·log₂P) intermediate).
func BandOfEfficiency(eff float64, p int) Band {
	return BandOfSpeedup(eff*float64(p), p)
}

// Instability computes In(K, e) for an ensemble of K performance values:
// the max/min ratio after excluding the e most extreme outliers, choosing
// exclusions (from either end) to minimize the ratio — i.e. the best
// contiguous window of K−e values in sorted order. Stability is its
// inverse. It returns +Inf when a window contains a non-positive value.
func Instability(perf []float64, e int) float64 {
	k := len(perf)
	if k == 0 || e < 0 || e >= k {
		return math.Inf(1)
	}
	v := make([]float64, k)
	copy(v, perf)
	sort.Float64s(v)
	w := k - e
	best := math.Inf(1)
	for i := 0; i+w <= k; i++ {
		lo, hi := v[i], v[i+w-1]
		if lo <= 0 {
			continue
		}
		if r := hi / lo; r < best {
			best = r
		}
	}
	return best
}

// Stability returns St(K, e) = 1 / In(K, e).
func Stability(perf []float64, e int) float64 {
	in := Instability(perf, e)
	if math.IsInf(in, 1) {
		return 0
	}
	return 1 / in
}

// StableWorkstationLevel is the paper's threshold: a system is stable if
// St ≥ 1/6 (instability ≤ 6), the level workstations exhibited on the
// Perfect codes for twenty years.
const StableWorkstationLevel = 6.0

// ExceptionsForStability returns the smallest e such that In(K, e) ≤ the
// workstation level, or -1 if none exists below K.
func ExceptionsForStability(perf []float64) int {
	for e := 0; e < len(perf); e++ {
		if Instability(perf, e) <= StableWorkstationLevel {
			return e
		}
	}
	return -1
}

// HarmonicMean computes the harmonic mean of positive rates, the summary
// the paper uses for MFLOPS across the Perfect suite.
func HarmonicMean(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var inv float64
	for _, r := range rates {
		if r <= 0 {
			return 0
		}
		inv += 1 / r
	}
	return float64(len(rates)) / inv
}

// BandCounts tallies efficiencies into the three bands (Table 6's rows).
func BandCounts(effs []float64, p int) (high, intermediate, unacceptable int) {
	for _, e := range effs {
		switch BandOfEfficiency(e, p) {
		case High:
			high++
		case Intermediate:
			intermediate++
		default:
			unacceptable++
		}
	}
	return
}

// ScalabilityCriterion reports PPT4's acceptability over a sweep of
// (processor count, efficiency) points: every point must be High or
// Intermediate and the performance stability across the sweep must be
// within the factor-2 range (0.5 ≤ St ≤ 1 with e = 0).
func ScalabilityCriterion(perf []float64, effs []float64, ps []int) bool {
	if len(effs) != len(ps) {
		return false
	}
	for i, e := range effs {
		if BandOfEfficiency(e, ps[i]) == Unacceptable {
			return false
		}
	}
	return Instability(perf, 0) <= 2
}

// EquivalentYears converts a speedup into years of historical
// supercomputing progress at the paper's 10×/7-years rate: the FPPP's
// motivation that "a 1000 processor machine would provide about 15
// equivalent years of electronics-advancement speed improvement" when it
// runs in the acceptable-to-high band.
func EquivalentYears(speedup float64) float64 {
	if speedup <= 0 {
		return 0
	}
	return 7 * math.Log10(speedup)
}
