package ppt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedupAndEfficiency(t *testing.T) {
	if s := Speedup(100, 10); s != 10 {
		t.Errorf("speedup = %v", s)
	}
	if s := Speedup(100, 0); s != 0 {
		t.Errorf("speedup with zero time = %v", s)
	}
	if e := Efficiency(16, 32); e != 0.5 {
		t.Errorf("efficiency = %v", e)
	}
	if e := Efficiency(16, 0); e != 0 {
		t.Errorf("efficiency P=0 = %v", e)
	}
}

func TestBands(t *testing.T) {
	// P = 32: high ≥ 16, acceptable ≥ 32/(2·5) = 3.2.
	cases := []struct {
		sp   float64
		p    int
		want Band
	}{
		{16, 32, High},
		{17, 32, High},
		{15.9, 32, Intermediate},
		{3.2, 32, Intermediate},
		{3.1, 32, Unacceptable},
		{4, 8, High},
		{8.0 / 6.0, 8, Intermediate}, // 8/(2·3) = 1.333
		{1.2, 8, Unacceptable},
	}
	for _, c := range cases {
		if got := BandOfSpeedup(c.sp, c.p); got != c.want {
			t.Errorf("BandOfSpeedup(%v,%d) = %v, want %v", c.sp, c.p, got, c.want)
		}
	}
	if BandOfEfficiency(0.5, 32) != High {
		t.Error("Ep = .5 should be High")
	}
	if BandOfEfficiency(0.11, 32) != Intermediate {
		t.Error("Ep = .11 on 32 should be Intermediate (threshold .1)")
	}
}

func TestInstabilityBasic(t *testing.T) {
	perf := []float64{1, 2, 4, 100}
	if in := Instability(perf, 0); in != 100 {
		t.Errorf("In(4,0) = %v, want 100", in)
	}
	// Excluding one: best window of 3 is {1,2,4} ratio 4.
	if in := Instability(perf, 1); in != 4 {
		t.Errorf("In(4,1) = %v, want 4", in)
	}
	// Excluding two: best window {2,4} ratio 2 or {1,2} ratio 2.
	if in := Instability(perf, 2); in != 2 {
		t.Errorf("In(4,2) = %v, want 2", in)
	}
}

func TestInstabilityExcludesEitherEnd(t *testing.T) {
	// Outliers at both ends: {0.01, 5, 6, 7, 1000}, e = 2 should pick the
	// middle window 7/5 = 1.4.
	perf := []float64{1000, 5, 0.01, 7, 6}
	if in := Instability(perf, 2); math.Abs(in-1.4) > 1e-12 {
		t.Errorf("In = %v, want 1.4", in)
	}
}

func TestInstabilityDegenerate(t *testing.T) {
	if !math.IsInf(Instability(nil, 0), 1) {
		t.Error("empty ensemble should be infinitely unstable")
	}
	if !math.IsInf(Instability([]float64{1, 2}, 2), 1) {
		t.Error("excluding everything should be infinite")
	}
	if !math.IsInf(Instability([]float64{0, 1}, 0), 1) {
		t.Error("zero performance should be infinite")
	}
	if in := Instability([]float64{0, 1}, 1); in != 1 {
		t.Errorf("excluding the zero leaves {1}: In = %v, want 1", in)
	}
}

func TestStabilityInverse(t *testing.T) {
	perf := []float64{2, 4}
	if s := Stability(perf, 0); s != 0.5 {
		t.Errorf("St = %v, want 0.5", s)
	}
	if s := Stability([]float64{0}, 0); s != 0 {
		t.Errorf("St of zero perf = %v, want 0", s)
	}
}

func TestExceptionsForStability(t *testing.T) {
	// Workstation-stable already.
	if e := ExceptionsForStability([]float64{1, 2, 3}); e != 0 {
		t.Errorf("e = %d, want 0", e)
	}
	// One huge outlier.
	if e := ExceptionsForStability([]float64{1, 2, 3, 1000}); e != 1 {
		t.Errorf("e = %d, want 1", e)
	}
	if e := ExceptionsForStability(nil); e != -1 {
		t.Errorf("e = %d, want -1", e)
	}
}

func TestHarmonicMean(t *testing.T) {
	if h := HarmonicMean([]float64{2, 2, 2}); h != 2 {
		t.Errorf("h = %v", h)
	}
	// Harmonic mean is dominated by the slow codes (why SPICE matters).
	h := HarmonicMean([]float64{1, 100})
	if math.Abs(h-1.9802) > 0.001 {
		t.Errorf("h = %v, want ≈1.98", h)
	}
	if HarmonicMean([]float64{1, 0}) != 0 {
		t.Error("non-positive rate should yield 0")
	}
	if HarmonicMean(nil) != 0 {
		t.Error("empty should yield 0")
	}
}

func TestBandCounts(t *testing.T) {
	effs := []float64{0.6, 0.5, 0.3, 0.11, 0.05}
	h, i, u := BandCounts(effs, 32)
	if h != 2 || i != 2 || u != 1 {
		t.Errorf("counts = %d/%d/%d, want 2/2/1", h, i, u)
	}
}

func TestInstabilityWindowProperty(t *testing.T) {
	// In(K, e) is non-increasing in e, and In(K,0) equals max/min.
	f := func(raw []uint16, e8 uint8) bool {
		if len(raw) < 2 {
			return true
		}
		perf := make([]float64, len(raw))
		mn, mx := math.Inf(1), 0.0
		for i, v := range raw {
			perf[i] = float64(v%1000) + 1
			if perf[i] < mn {
				mn = perf[i]
			}
			if perf[i] > mx {
				mx = perf[i]
			}
		}
		if got := Instability(perf, 0); math.Abs(got-mx/mn) > 1e-9 {
			return false
		}
		e := int(e8) % len(perf)
		if e == 0 {
			return true
		}
		return Instability(perf, e) <= Instability(perf, e-1)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScalabilityCriterion(t *testing.T) {
	// CG-like sweep: high efficiency, stable rates.
	ok := ScalabilityCriterion(
		[]float64{40, 44, 48},
		[]float64{0.7, 0.6, 0.55},
		[]int{8, 16, 32})
	if !ok {
		t.Error("stable high sweep should pass")
	}
	// An unacceptable point fails.
	if ScalabilityCriterion([]float64{40, 44}, []float64{0.7, 0.05}, []int{8, 32}) {
		t.Error("unacceptable point should fail")
	}
	// Rate varying more than 2× fails.
	if ScalabilityCriterion([]float64{10, 50}, []float64{0.7, 0.6}, []int{8, 16}) {
		t.Error("unstable sweep should fail")
	}
	if ScalabilityCriterion([]float64{1}, []float64{0.7, 0.6}, []int{8}) {
		t.Error("mismatched lengths should fail")
	}
}

func TestEquivalentYears(t *testing.T) {
	if EquivalentYears(10) != 7 {
		t.Errorf("10× = %v years, want 7", EquivalentYears(10))
	}
	if EquivalentYears(0) != 0 || EquivalentYears(-3) != 0 {
		t.Error("non-positive speedups should be 0")
	}
	// The paper's 1000-processor remark: speedups between the acceptable
	// and high levels (P/2logP = 50, P/2 = 500) land around 15 years.
	lo := EquivalentYears(AcceptableThreshold(1000))
	hi := EquivalentYears(HighThreshold(1000))
	if lo > 15 || hi < 15 {
		t.Errorf("1000-processor band [%.1f, %.1f] years should straddle ≈15", lo, hi)
	}
}
