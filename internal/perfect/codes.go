package perfect

// The thirteen Perfect Benchmarks® profiles. Each profile encodes what
// the paper and its companion CSRD reports say about the code: where its
// parallelism is, what KAP already exploited, what the automatable
// transformations added, what the Table 4 hand optimizations changed, and
// what limits it (granularity, placement, barriers, I/O, paging, scalar
// access). Flop counts are chosen so the serial times on the ≈2 MFLOPS
// scalar CE land in the right regime; absolute magnitudes are not the
// reproduction target, relative structure is.

// ADM: pseudospectral air-pollution model. Good loop-level parallelism
// once arrays are privatized; a serial control section caps the speedup
// in the intermediate band.
func ADM() Profile {
	return Profile{
		Name: "ADM", Flops: 1.2e9, Reps: 3000,
		Segments: []Segment{
			{Name: "dynamics", Frac: 0.55, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 2000, Place: PlaceGlobal, WordsPerFlop: 0.5},
			{Name: "vertical-diffusion", Frac: 0.30, Vector: true, ParAuto: true,
				Grain: 800, Place: PlaceLocal, WordsPerFlop: 0.5},
			{Name: "control", Frac: 0.15},
		},
		YMPVec: 0.80, YMPParAuto: 0.20, YMPParHand: 0.60, Cray1Vec: 0.75,
	}
}

// ARC2D: implicit 2-D CFD. Almost fully vectorizable and parallelizable
// after automatable transformations — the suite's one high performer on
// Cedar. The hand version (Table 4: 68 s, 2.1×) eliminates a substantial
// number of unnecessary computations and aggressively distributes data
// into cluster memory [BrBo91].
func ARC2D() Profile {
	return Profile{
		Name: "ARC2D", Flops: 3e9, Reps: 1000,
		HandWork: 0.62,
		Segments: []Segment{
			{Name: "rhs-solver", Frac: 0.64, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 4000, Place: PlaceGlobal, WordsPerFlop: 0.5, HandLocal: true},
			{Name: "filters", Frac: 0.30, Vector: true, ParAuto: true,
				Grain: 2000, Place: PlaceLocal, WordsPerFlop: 0.5},
			{Name: "boundary", Frac: 0.06},
		},
		YMPVec: 0.97, YMPParAuto: 0.75, YMPParHand: 0.93, Cray1Vec: 0.97,
	}
}

// BDNA: molecular dynamics of biomolecules in water. Vector-parallel
// force evaluation; the serial version spends a large fixed time on
// formatted I/O, which the hand version converts to unformatted (Table 4:
// 70 s, 1.7× from the I/O change alone).
func BDNA() Profile {
	return Profile{
		Name: "BDNA", Flops: 1e9, Reps: 2500,
		IOWords: 1_000_000,
		Segments: []Segment{
			{Name: "nonbonded-forces", Frac: 0.75, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 3000, Place: PlaceGlobal, WordsPerFlop: 0.6},
			{Name: "correlation", Frac: 0.15, Vector: true, ParAuto: true,
				Grain: 1500, Place: PlaceLocal, WordsPerFlop: 0.4},
			{Name: "setup", Frac: 0.10},
		},
		YMPVec: 0.90, YMPParAuto: 0.50, YMPParHand: 0.88, Cray1Vec: 0.85,
	}
}

// DYFESM: structural dynamics with a very small benchmark problem. The
// parallel loops are fine-grained, so self-scheduling needs low-overhead
// Cedar synchronization (its "No Synchronization" slowdown), and the
// many short vector fetches from global memory on few processors make it
// the code that benefits most from prefetch. The hand version reshapes
// data structures, reimplements kernels with the prefetch unit via Xylem
// assembler, and exploits the hierarchical SDOALL/CDOALL structure
// [YaGa93] (Table 4: 31 s).
func DYFESM() Profile {
	return Profile{
		Name: "DYFESM", Flops: 3e8, Reps: 600,
		HandWork:      0.85,
		KAPOneCluster: true,
		Segments: []Segment{
			{Name: "element-loops", Frac: 0.60, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 600, Place: PlaceGlobal, WordsPerFlop: 0.7, HandLocal: true, Hier: true},
			// The substructure solves have few, long iterations: limited
			// parallelism keeps only a handful of CEs busy streaming long
			// vectors from global memory — the prefetch-sensitive part.
			{Name: "substructure-solve", Frac: 0.32, Vector: true, ParAuto: true,
				Grain: 30000, Place: PlaceGlobal, WordsPerFlop: 0.7, Hier: true},
			{Name: "serial", Frac: 0.08},
		},
		YMPVec: 0.70, YMPParAuto: 0.15, YMPParHand: 0.50, Cray1Vec: 0.65,
	}
}

// FLO52: transonic flow by multigrid. Four of the five major routines
// need chains of multicluster barriers whose overhead hurts at the
// Perfect problem size; the hand version introduces a small amount of
// redundancy to collapse them into one multicluster barrier plus
// independent per-cluster barrier sequences on the concurrency control
// hardware [GJWY93] (Table 4: 33 s).
func FLO52() Profile {
	return Profile{
		Name: "FLO52", Flops: 6e8, Reps: 750,
		HandWork: 0.95,
		Segments: []Segment{
			{Name: "smoothing", Frac: 0.70, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 1000, Place: PlaceGlobal, WordsPerFlop: 0.5,
				Chunks: 6, HandChunks: 2, Hier: true},
			{Name: "residual", Frac: 0.25, Vector: true, ParAuto: true,
				Grain: 1000, Place: PlaceLocal, WordsPerFlop: 0.4,
				Chunks: 2, HandChunks: 1},
			{Name: "serial", Frac: 0.05},
		},
		YMPVec: 0.96, YMPParAuto: 0.72, YMPParHand: 0.92, Cray1Vec: 0.93,
	}
}

// MDG: molecular dynamics of water. Coarse-grained pairwise force loops
// parallelize well after runtime dependence tests.
func MDG() Profile {
	return Profile{
		Name: "MDG", Flops: 1.4e9, Reps: 3500,
		Segments: []Segment{
			{Name: "pair-forces", Frac: 0.77, Vector: true, ParAuto: true,
				Grain: 4000, Place: PlaceGlobal, WordsPerFlop: 0.35},
			{Name: "intramolecular", Frac: 0.20, Vector: true, ParAuto: true,
				Grain: 1000, Place: PlaceLocal, WordsPerFlop: 0.4},
			{Name: "serial", Frac: 0.03},
		},
		YMPVec: 0.85, YMPParAuto: 0.45, YMPParHand: 0.95, Cray1Vec: 0.78,
	}
}

// MG3D: seismic migration. This version includes the elimination of file
// I/O (the paper's Table 3 footnote); depth extrapolation vectorizes and
// parallelizes well.
func MG3D() Profile {
	return Profile{
		Name: "MG3D", Flops: 2e9, Reps: 5000,
		Segments: []Segment{
			{Name: "depth-extrapolation", Frac: 0.80, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 2500, Place: PlaceGlobal, WordsPerFlop: 0.5},
			{Name: "fft", Frac: 0.12, Vector: true, ParAuto: true,
				Grain: 600, Place: PlaceLocal, WordsPerFlop: 0.3},
			{Name: "serial", Frac: 0.08},
		},
		YMPVec: 0.94, YMPParAuto: 0.60, YMPParHand: 0.90, Cray1Vec: 0.90,
	}
}

// OCEAN: 2-D ocean circulation built on many short FFTs: fine-grained
// parallel loops that, like DYFESM, need low-overhead self-scheduling
// (the other code the paper names in the "No Synchronization" slowdown).
func OCEAN() Profile {
	return Profile{
		Name: "OCEAN", Flops: 8e8, Reps: 1600,
		KAPOneCluster: true,
		Segments: []Segment{
			{Name: "ffts", Frac: 0.55, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 120, Place: PlaceGlobal, WordsPerFlop: 0.5},
			{Name: "field-updates", Frac: 0.35, Vector: true, ParAuto: true,
				Grain: 250, Place: PlaceGlobal, WordsPerFlop: 0.5},
			{Name: "serial", Frac: 0.10},
		},
		YMPVec: 0.85, YMPParAuto: 0.20, YMPParHand: 0.55, Cray1Vec: 0.80,
	}
}

// QCD: lattice gauge theory Monte Carlo. The serial random-number
// generator dominates and defeats automatic parallelization (automatable
// speedup 1.8); the hand-coded parallel generator raises the speed
// improvement to 20.8 (Table 4: 21 s).
func QCD() Profile {
	return Profile{
		Name: "QCD", Flops: 5e8, Reps: 1000,
		Segments: []Segment{
			{Name: "rng-update", Frac: 0.53, ParHand: true, Grain: 500},
			{Name: "rng-seed-chain", Frac: 0.02}, // stays serial even by hand
			{Name: "link-update", Frac: 0.35, Vector: true, ParAuto: true,
				Grain: 400, Place: PlaceGlobal, WordsPerFlop: 0.4},
			{Name: "measurements", Frac: 0.10, Vector: true, ParAuto: true,
				Grain: 800, Place: PlaceLocal, WordsPerFlop: 0.3},
		},
		YMPVec: 0.50, YMPParAuto: 0.05, YMPParHand: 0.70, Cray1Vec: 0.45,
	}
}

// SPEC77: global spectral weather. Vectorizable transforms with moderate
// parallel coverage.
func SPEC77() Profile {
	return Profile{
		Name: "SPEC77", Flops: 1.6e9, Reps: 4000,
		Segments: []Segment{
			{Name: "spectral-transforms", Frac: 0.60, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 900, Place: PlaceGlobal, WordsPerFlop: 0.5},
			{Name: "physics", Frac: 0.30, Vector: true, ParAuto: true,
				Grain: 1200, Place: PlaceLocal, WordsPerFlop: 0.4},
			{Name: "serial", Frac: 0.10},
		},
		YMPVec: 0.95, YMPParAuto: 0.55, YMPParHand: 0.87, Cray1Vec: 0.92,
	}
}

// SPICE: circuit simulation — the suite's very poor performer on every
// machine. Mostly serial pointer-chasing and sparse-matrix work with a
// tiny floating-point fraction; even the hand version only reaches ≈26 s
// after new approaches in all major phases.
func SPICE() Profile {
	return Profile{
		Name: "SPICE", Flops: 2.5e8, Reps: 500,
		IOWords:      130_000,
		HandWork:     0.55,
		FlopFraction: 0.3,
		Segments: []Segment{
			{Name: "device-eval", Frac: 0.15, ParAuto: true, Grain: 80},
			{Name: "sparse-solve", Frac: 0.45, ScalarAccess: true, ParHand: true,
				Grain: 120, Place: PlaceGlobal, WordsPerFlop: 0.35},
			{Name: "serial-overhead", Frac: 0.40},
		},
		YMPVec: 0.05, YMPParAuto: 0.02, YMPParHand: 0.10, Cray1Vec: 0.05,
	}
}

// TRACK: missile tracking. Dominated by scalar global accesses — the
// reason the paper gives for its behaviour without prefetching — with
// modest parallelism.
func TRACK() Profile {
	return Profile{
		Name: "TRACK", Flops: 1.8e8, Reps: 450,
		FlopFraction:  0.6,
		KAPOneCluster: true,
		Segments: []Segment{
			{Name: "kalman-filters", Frac: 0.50, ScalarAccess: true, ParAuto: true,
				Grain: 120, Place: PlaceGlobal, WordsPerFlop: 0.35},
			{Name: "hypothesis", Frac: 0.25, ParAuto: true, Grain: 200},
			{Name: "serial", Frac: 0.25},
		},
		YMPVec: 0.25, YMPParAuto: 0.05, YMPParHand: 0.40, Cray1Vec: 0.22,
	}
}

// TRFD: two-electron integral transformation. The automatable version's
// multicluster runs take almost four times the page faults of the
// one-cluster version — TLB-miss faults as each additional cluster first
// touches pages — spending near half its time in virtual memory
// [MaEG92]; the hand version implements high-performance kernels that
// exploit the cluster caches and vector registers [AnGa93] and a
// distributed-memory rewrite that removes the paging (Table 4: 7.5 s).
func TRFD() Profile {
	return Profile{
		Name: "TRFD", Flops: 7e8, Reps: 1750,
		HandWork: 0.90, HandVM: true,
		VMFootprintWords: 2 << 20, VMPhases: 6,
		Segments: []Segment{
			{Name: "transform-matmuls", Frac: 0.81, Vector: true, VecKAP: true, ParAuto: true,
				Grain: 1500, Place: PlaceGlobal, WordsPerFlop: 0.5, HandLocal: true},
			{Name: "index-setup", Frac: 0.15, ParAuto: true, Grain: 500},
			{Name: "serial", Frac: 0.04},
		},
		YMPVec: 0.85, YMPParAuto: 0.25, YMPParHand: 0.75, Cray1Vec: 0.82,
	}
}

// All returns the full suite in the paper's (alphabetical) order.
func All() []Profile {
	return []Profile{
		ADM(), ARC2D(), BDNA(), DYFESM(), FLO52(), MDG(), MG3D(),
		OCEAN(), QCD(), SPEC77(), SPICE(), TRACK(), TRFD(),
	}
}

// HandOptimized returns the codes with Table 4 hand versions.
func HandOptimized() map[string]bool {
	return map[string]bool{
		"ARC2D": true, "BDNA": true, "FLO52": true, "DYFESM": true,
		"TRFD": true, "QCD": true, "SPICE": true,
	}
}
