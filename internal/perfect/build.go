package perfect

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/params"
	"cedar/internal/scope"
	"cedar/internal/vm"
	"cedar/internal/xylem"
)

// Spec selects a variant and the Table 3 ablations.
type Spec struct {
	Variant Variant
	// NoPref disables the prefetch units (vector global accesses fall
	// back to the CE's two outstanding requests).
	NoPref bool
	// NoSync schedules loops through the lock-based library path instead
	// of Cedar synchronization instructions.
	NoSync bool
}

// Outcome is one measured run, scaled to the full application.
type Outcome struct {
	Code      string
	Variant   Variant
	Seconds   float64 // full-scale execution time
	MFLOPS    float64
	SimCycles int64 // cycles actually simulated (one slice)
}

// Run executes a code variant on a freshly built machine. An optional
// scope hub observes the run (callers namespace it via Sub).
func Run(pm params.Machine, p Profile, spec Spec, obs ...*scope.Hub) (Outcome, error) {
	if err := p.Validate(); err != nil {
		return Outcome{}, err
	}
	m, err := core.New(pm, core.Options{Scope: scope.Of(obs)})
	if err != nil {
		return Outcome{}, err
	}
	b := &builder{m: m, pm: pm, p: p, spec: spec}
	phases, err := b.phases()
	if err != nil {
		return Outcome{}, err
	}
	cfg := cfrt.Config{UseCedarSync: !spec.NoSync}
	switch spec.Variant {
	case Serial:
		cfg.MaxCEs = 1
	case KAP:
		if p.KAPOneCluster {
			cfg.Clusters = 1
		}
	}
	rt := cfrt.New(m, cfg, phases...)
	res, err := rt.Run(1 << 40)
	if err != nil {
		return Outcome{}, fmt.Errorf("perfect %s %v: %w", p.Name, spec.Variant, err)
	}

	seconds := res.Seconds * float64(p.Reps)
	seconds += b.fixedSeconds(len(m.Clusters))
	work := float64(p.Flops) * p.flopFraction()
	if spec.Variant == Hand {
		work *= p.handWork()
	}
	return Outcome{
		Code:      p.Name,
		Variant:   spec.Variant,
		Seconds:   seconds,
		MFLOPS:    work / (seconds * 1e6),
		SimCycles: res.Cycles,
	}, nil
}

// fixedSeconds are the non-loop components: I/O (through the Xylem I/O
// model) and paging (through the vm first-touch model).
func (b *builder) fixedSeconds(clusters int) float64 {
	p, spec := b.p, b.spec
	io := xylem.DefaultIO()
	var s float64
	if p.IOWords > 0 {
		switch spec.Variant {
		case Hand:
			s += io.Seconds(p.IOWords, xylem.Unformatted)
		default:
			s += io.Seconds(p.IOWords, xylem.Formatted)
		}
	}
	// TRFD's TLB-fault penalty applies to multicluster parallel runs.
	if p.VMFootprintWords > 0 && clusters > 1 {
		phases := p.VMPhases
		if phases < 1 {
			phases = 1
		}
		pen := vm.MulticlusterPenaltySeconds(b.pm, p.VMFootprintWords, clusters) * float64(phases)
		switch spec.Variant {
		case Auto:
			s += pen
		case Hand:
			if !p.HandVM {
				s += pen
			}
		}
	}
	return s
}

type builder struct {
	m    *core.Machine
	pm   params.Machine
	p    Profile
	spec Spec
}

// phases lowers the profile into a phase program for the variant.
func (b *builder) phases() ([]cfrt.Phase, error) {
	repFlops := b.p.Flops / int64(b.p.Reps)
	var phases []cfrt.Phase
	for i := range b.p.Segments {
		seg := &b.p.Segments[i]
		segFlops := int64(float64(repFlops) * seg.Frac)
		if segFlops <= 0 {
			continue
		}
		if b.spec.Variant == Hand {
			segFlops = int64(float64(segFlops) * b.p.handWork())
		}
		phases = append(phases, b.segmentPhases(seg, segFlops)...)
	}
	if len(phases) == 0 {
		return nil, fmt.Errorf("perfect %s: no work", b.p.Name)
	}
	return phases, nil
}

func (b *builder) segmentPhases(seg *Segment, segFlops int64) []cfrt.Phase {
	parallel, vector := b.execClass(seg)
	chunks := seg.Chunks
	if b.spec.Variant == Hand && seg.HandChunks > 0 {
		chunks = seg.HandChunks
	}
	if chunks < 1 {
		chunks = 1
	}
	chunkFlops := segFlops / int64(chunks)
	if chunkFlops < 1 {
		chunkFlops = 1
		chunks = 1
	}

	var phases []cfrt.Phase
	for c := 0; c < chunks; c++ {
		if !parallel {
			phases = append(phases, b.serialPhase(seg, chunkFlops, vector))
			continue
		}
		phases = append(phases, b.parallelPhase(seg, chunkFlops, vector))
	}
	return phases
}

// execClass decides whether the segment is parallel and vectorized under
// the current variant.
func (b *builder) execClass(seg *Segment) (parallel, vector bool) {
	switch b.spec.Variant {
	case Serial:
		return false, false
	case KAP:
		return seg.ParKAP, seg.VecKAP
	case Auto:
		return seg.ParKAP || seg.ParAuto, seg.Vector
	case Hand:
		return seg.ParKAP || seg.ParAuto || seg.ParHand, seg.Vector
	}
	return false, false
}

// placement resolves the segment's data placement for this variant.
func (b *builder) placement(seg *Segment) Placement {
	if b.spec.Variant == Hand && seg.HandLocal {
		return PlaceLocal
	}
	return seg.Place
}

// serialPhase is a chunk running on CE 0 only.
func (b *builder) serialPhase(seg *Segment, flops int64, vector bool) cfrt.Phase {
	if !vector {
		return cfrt.Serial{Body: func() []*ce.Instr {
			return []*ce.Instr{{Op: ce.OpScalar, Cycles: flops * scalarCPF, Flops: flops}}
		}}
	}
	ins := b.vectorOps(seg, flops, b.segArray(seg, flops))
	return cfrt.Serial{Body: func() []*ce.Instr { return ins }}
}

// parallelPhase is a chunk spread across the machine.
func (b *builder) parallelPhase(seg *Segment, flops int64, vector bool) cfrt.Phase {
	grain := int64(seg.Grain)
	if grain < 32 {
		grain = 32
	}
	n := int(flops / grain)
	if n < 1 {
		n = 1
	}
	grainFlops := flops / int64(n)
	arr := b.segArray(seg, flops)

	body := func(iter int) []*ce.Instr {
		switch {
		case seg.ScalarAccess:
			return b.scalarAccessBody(seg, grainFlops, arr, iter)
		case vector:
			return b.vectorOps(seg, grainFlops, arr.at(iter))
		default:
			return []*ce.Instr{{Op: ce.OpScalar, Cycles: grainFlops * scalarCPF, Flops: grainFlops}}
		}
	}

	if b.spec.Variant == Hand && seg.Hier {
		// SDOALL/CDOALL nest: clusters claim statically, CEs
		// self-schedule on the concurrency control bus.
		clusters := len(b.m.Clusters)
		perCluster := (n + clusters - 1) / clusters
		return cfrt.SDoall{N: clusters, Static: true, Body: func(cl int) []cfrt.ClusterPhase {
			lo := cl * perCluster
			cnt := perCluster
			if lo+cnt > n {
				cnt = n - lo
			}
			if cnt < 0 {
				cnt = 0
			}
			return []cfrt.ClusterPhase{cfrt.CDoall{N: cnt, Body: func(j int) []*ce.Instr {
				return body(lo + j)
			}}}
		}}
	}
	return cfrt.XDoall{N: n, Body: body}
}

// segArrays gives each segment working storage; loop-local data is a
// small privatized region reused per cluster (high cache affinity),
// global data is a large region walked by iteration.
type segArray struct {
	place      Placement
	base       uint64
	words      uint64
	grainWords uint64
}

func (a segArray) at(iter int) segArray {
	b := a
	if a.words > 0 {
		b.base = a.base + (uint64(iter)*a.grainWords)%a.words
	}
	return b
}

func (b *builder) segArray(seg *Segment, flops int64) segArray {
	wpf := seg.WordsPerFlop
	if wpf <= 0 {
		wpf = 0.25
	}
	words := int(float64(flops) * wpf)
	if words < 64 {
		words = 64
	}
	grainWords := int(float64(seg.Grain) * wpf)
	if grainWords < 32 {
		grainWords = 32
	}
	if b.placement(seg) == PlaceLocal {
		// Privatized loop-local storage: one region per cluster, reused
		// across iterations (short-lived data, strong cache affinity).
		local := words
		if local > 8192 {
			local = 8192
		}
		var base uint64
		for i, cl := range b.m.Clusters {
			bb := cl.AllocLocal(local + 64)
			if i == 0 {
				base = bb
			}
		}
		return segArray{place: PlaceLocal, base: base, words: uint64(local), grainWords: uint64(grainWords)}
	}
	base := b.m.AllocGlobalAligned(words+64, 64)
	return segArray{place: PlaceGlobal, base: base, words: uint64(words), grainWords: uint64(grainWords)}
}

// vectorOps emits vector instructions totalling the given flops with the
// segment's memory intensity.
func (b *builder) vectorOps(seg *Segment, flops int64, arr segArray) []*ce.Instr {
	elems := int(flops / 2)
	if elems < 4 {
		elems = 4
	}
	const maxOp = 2048
	wpf := seg.WordsPerFlop
	var ins []*ce.Instr
	opIdx := 0
	for rem := elems; rem > 0; rem -= maxOp {
		n := rem
		if n > maxOp {
			n = maxOp
		}
		in := &ce.Instr{Op: ce.OpVector, N: n, Flops: 2}
		nstreams := 0
		switch {
		case wpf >= 0.9:
			nstreams = 2
		case wpf >= 0.4:
			nstreams = 1
		case wpf >= 0.15:
			if opIdx%2 == 0 {
				nstreams = 1
			}
		}
		for s := 0; s < nstreams; s++ {
			in.Srcs = append(in.Srcs, b.stream(arr, n, s == 0))
		}
		ins = append(ins, in)
		opIdx++
	}
	return ins
}

// stream builds one operand stream over the segment array. Only the first
// stream of an instruction may use the CE's single PFU.
func (b *builder) stream(arr segArray, n int, first bool) ce.Stream {
	if arr.place == PlaceLocal {
		return ce.Stream{Space: ce.SpaceCluster, Base: arr.base, Stride: 1}
	}
	pref := 0
	if !b.spec.NoPref && first {
		pref = 32
	}
	base := arr.base
	if arr.words > 0 {
		base = arr.base + (uint64(n) % arr.words)
	}
	return ce.Stream{Space: ce.SpaceGlobal, Base: base, Stride: 1, PrefBlock: pref}
}

// scalarAccessBody models TRACK-style work: scalar global loads
// interleaved with short scalar computation.
func (b *builder) scalarAccessBody(seg *Segment, flops int64, arr segArray, iter int) []*ce.Instr {
	loads := int(float64(flops) * seg.WordsPerFlop)
	if loads < 1 {
		loads = 1
	}
	if loads > 48 {
		loads = 48
	}
	per := flops / int64(loads)
	ins := make([]*ce.Instr, 0, 2*loads)
	for l := 0; l < loads; l++ {
		addr := arr.base + (uint64(iter*loads+l)*7)%arr.words
		ins = append(ins,
			&ce.Instr{Op: ce.OpGlobalLoad, Addr: addr},
			&ce.Instr{Op: ce.OpScalar, Cycles: per * scalarCPF, Flops: per},
		)
	}
	return ins
}
