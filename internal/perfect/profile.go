// Package perfect implements profile-driven proxies for the thirteen
// Perfect Benchmarks® codes the paper evaluates on Cedar.
//
// The original codes are large Fortran applications; what Tables 3-6 and
// Figure 3 depend on is each code's *shape* — how much of its work
// vectorizes, how much parallelizes under KAP versus under the
// "automatable" transformations (array privatization, parallel
// reductions, advanced induction variables, runtime dependence tests),
// the granularity of its parallel loops, where its data lives, and its
// sensitivity to prefetch, Cedar synchronization, barriers, I/O and
// paging. Each proxy encodes those facts (sourced from the paper's §3.3
// and §4.2 commentary and the companion CSRD reports) as a profile of
// work segments, and the builder turns a profile into real phase programs
// that run on the simulated machine in four variants: the uniprocessor
// scalar Serial baseline, the KAP/Cedar compiled version, the Automatable
// version, and the Hand-optimized version of Table 4, with the NoPrefetch
// and NoCedarSync ablations of Table 3.
//
// Applications are simulated at reduced scale: a profile describes Reps
// identical slices of the full computation and the runner simulates one
// slice, scaling the time back up and adding the serial I/O and paging
// components. The slice is large enough to exercise every machine
// mechanism the full code would (loop scheduling, prefetch streams,
// cache placement, synchronization, barriers).
package perfect

import "fmt"

// Placement says where a segment's vector data lives in the parallel
// versions.
type Placement uint8

// Data placements.
const (
	// PlaceGlobal: operands stream from global memory.
	PlaceGlobal Placement = iota
	// PlaceLocal: loop-local (privatized) data in cluster memory, served
	// by the cluster cache.
	PlaceLocal
)

// Segment is one class of work within a code.
type Segment struct {
	Name string
	// Frac is this segment's share of the code's floating-point work.
	Frac float64
	// Vector marks work that can use the vector unit at all.
	Vector bool
	// VecKAP marks vectorization the 1988 KAP retarget already finds.
	VecKAP bool
	// ParKAP marks loops KAP parallelizes.
	ParKAP bool
	// ParAuto marks loops the automatable transformations parallelize.
	ParAuto bool
	// ParHand marks loops only hand optimization parallelizes (for
	// example QCD's random-number generator).
	ParHand bool
	// Grain is the floating-point work per parallel loop iteration.
	Grain int
	// Place is the data placement of the parallel versions.
	Place Placement
	// HandLocal moves the data to cluster memory in the hand version
	// (aggressive data distribution, as in ARC2D).
	HandLocal bool
	// WordsPerFlop is the memory intensity of the segment.
	WordsPerFlop float64
	// ScalarAccess marks segments dominated by scalar global accesses
	// (TRACK): they never vectorize their memory traffic.
	ScalarAccess bool
	// Chunks splits the segment into that many dependent sweeps, each a
	// phase ending in a multicluster barrier (FLO52's barrier chains).
	// Zero means one.
	Chunks int
	// HandChunks is the sweep count after hand restructuring (FLO52's
	// single multicluster barrier + concurrency-control sequences).
	// Zero means unchanged.
	HandChunks int
	// Hier makes the hand version schedule this segment as an
	// SDOALL/CDOALL nest instead of a flat XDOALL (DYFESM, FLO52).
	Hier bool
}

// Profile describes one Perfect code.
type Profile struct {
	Name string
	// Flops is the full-scale floating-point operation count.
	Flops int64
	// Reps is how many identical slices the full run comprises; one
	// slice is simulated.
	Reps int
	// IOWords is the code's Fortran I/O volume. The Serial, KAP and
	// Automatable variants pay the formatted path for it; the Hand
	// variant pays the unformatted path (BDNA's I/O fix). MG3D's Table 3
	// entry already has its file I/O eliminated, so its profile carries
	// zero.
	IOWords int64
	// HandWork is the fraction of the flops remaining after hand
	// elimination of unnecessary computation (ARC2D); 0 means 1.0.
	HandWork float64
	// VMFootprintWords is the shared working set whose pages every
	// cluster of a multicluster run must first-touch (TRFD's TLB-miss
	// faults); VMPhases counts the remappings (transposes) that repeat
	// the first-touch storm.
	VMFootprintWords int64
	VMPhases         int
	// HandVM notes that the hand version eliminates the paging penalty
	// (TRFD's distributed-memory rewrite).
	HandVM bool
	// KAPOneCluster confines the KAP version to one cluster, as the
	// Perfect runs did for some codes to avoid intercluster overhead.
	KAPOneCluster bool
	// FlopFraction is the share of the code's work that is floating
	// point (0 means 1). SPICE-like codes spend most of their time on
	// pointer chasing and integer work, which is why their MFLOPS — the
	// Cray hardware-monitor flop counts over wall time — are so low.
	FlopFraction float64
	Segments     []Segment

	// Comparator fractions for the Cray models.
	YMPVec, YMPParAuto, YMPParHand, Cray1Vec float64
}

// Validate checks that segment fractions sum to 1.
func (p Profile) Validate() error {
	var sum float64
	for _, s := range p.Segments {
		if s.Frac < 0 {
			return fmt.Errorf("perfect %s: negative fraction in %s", p.Name, s.Name)
		}
		sum += s.Frac
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("perfect %s: segment fractions sum to %.4f", p.Name, sum)
	}
	if p.Flops <= 0 || p.Reps <= 0 {
		return fmt.Errorf("perfect %s: need positive Flops and Reps", p.Name)
	}
	return nil
}

// flopFraction returns the effective flop share.
func (p Profile) flopFraction() float64 {
	if p.FlopFraction == 0 {
		return 1
	}
	return p.FlopFraction
}

// handWork returns the hand-version work factor.
func (p Profile) handWork() float64 {
	if p.HandWork == 0 {
		return 1
	}
	return p.HandWork
}

// Variant selects which version of a code to run.
type Variant uint8

// Code variants, matching the paper's tables.
const (
	// Serial is the uniprocessor scalar baseline of Table 3.
	Serial Variant = iota
	// KAP is the version compiled by the retargeted 1988 KAP.
	KAP
	// Auto is the "Automatable" version: manually applied but
	// automatable restructuring transformations.
	Auto
	// Hand is the Table 4 manually optimized version.
	Hand
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Serial:
		return "Serial"
	case KAP:
		return "KAP"
	case Auto:
		return "Automatable"
	case Hand:
		return "Hand"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// scalarCPF is the cycles-per-flop of scalar 68020+FPU code: the serial
// baseline runs at ≈2 MFLOPS per CE.
const scalarCPF = 3
