package perfect

import (
	"testing"

	"cedar/internal/params"
)

func TestAllProfilesValid(t *testing.T) {
	codes := All()
	if len(codes) != 13 {
		t.Fatalf("suite has %d codes, want 13", len(codes))
	}
	seen := map[string]bool{}
	for _, p := range codes {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if seen[p.Name] {
			t.Errorf("duplicate code %s", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestValidateCatchesBadProfiles(t *testing.T) {
	p := ADM()
	p.Segments[0].Frac = 0.9 // fractions no longer sum to 1
	if err := p.Validate(); err == nil {
		t.Error("bad fractions accepted")
	}
	p = ADM()
	p.Flops = 0
	if err := p.Validate(); err == nil {
		t.Error("zero flops accepted")
	}
	p = ADM()
	p.Segments[0].Frac = -0.1
	if err := p.Validate(); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestSerialVariantRate(t *testing.T) {
	// The serial baseline runs at the scalar rate (≈2 MFLOPS) plus I/O.
	out, err := Run(params.Default(), BDNA(), Spec{Variant: Serial})
	if err != nil {
		t.Fatal(err)
	}
	p := BDNA()
	computeSec := float64(p.Flops) * scalarCPF / (params.CyclesPerSecond)
	// Plus the formatted I/O through the Xylem I/O model (tens of seconds
	// for BDNA's million-word output).
	if out.Seconds < computeSec*1.05 || out.Seconds > computeSec*1.25 {
		t.Errorf("BDNA serial = %.0f s, want compute %.0f plus substantial formatted I/O", out.Seconds, computeSec)
	}
}

func TestAutomatableBeatsKAPBeatsSerial(t *testing.T) {
	pm := params.Default()
	for _, p := range []Profile{ADM(), DYFESM()} {
		serial, err := Run(pm, p, Spec{Variant: Serial})
		if err != nil {
			t.Fatal(err)
		}
		kap, err := Run(pm, p, Spec{Variant: KAP})
		if err != nil {
			t.Fatal(err)
		}
		auto, err := Run(pm, p, Spec{Variant: Auto})
		if err != nil {
			t.Fatal(err)
		}
		if !(auto.Seconds < kap.Seconds && kap.Seconds <= serial.Seconds*1.05) {
			t.Errorf("%s: serial %.0f, KAP %.0f, auto %.0f — want strictly improving",
				p.Name, serial.Seconds, kap.Seconds, auto.Seconds)
		}
	}
}

func TestQCDAutomatableNearPaperValue(t *testing.T) {
	// The paper: QCD automatable speedup is 1.8 (serial RNG dominates);
	// hand parallelization of the generator yields 20.8.
	pm := params.Default()
	serial, err := Run(pm, QCD(), Spec{Variant: Serial})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Run(pm, QCD(), Spec{Variant: Auto})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := Run(pm, QCD(), Spec{Variant: Hand})
	if err != nil {
		t.Fatal(err)
	}
	sAuto := serial.Seconds / auto.Seconds
	sHand := serial.Seconds / hand.Seconds
	if sAuto < 1.4 || sAuto > 2.4 {
		t.Errorf("QCD automatable speedup %.2f, want ≈1.8", sAuto)
	}
	if sHand < 12 || sHand > 34 {
		t.Errorf("QCD hand speedup %.2f, want ≈20.8", sHand)
	}
}

func TestNoSyncHurtsFineGrainCodes(t *testing.T) {
	pm := params.Default()
	for _, p := range []Profile{DYFESM(), OCEAN()} {
		auto, err := Run(pm, p, Spec{Variant: Auto})
		if err != nil {
			t.Fatal(err)
		}
		nosync, err := Run(pm, p, Spec{Variant: Auto, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		if nosync.Seconds <= auto.Seconds*1.05 {
			t.Errorf("%s: no-sync %.1f s vs %.1f s — expected a clear slowdown",
				p.Name, nosync.Seconds, auto.Seconds)
		}
	}
}

func TestNoPrefHurtsDYFESMMoreThanTRACK(t *testing.T) {
	pm := params.Default()
	ratio := func(p Profile) float64 {
		auto, err := Run(pm, p, Spec{Variant: Auto, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		nopref, err := Run(pm, p, Spec{Variant: Auto, NoSync: true, NoPref: true})
		if err != nil {
			t.Fatal(err)
		}
		return nopref.Seconds / auto.Seconds
	}
	dy := ratio(DYFESM())
	tr := ratio(TRACK())
	if dy < 1.2 {
		t.Errorf("DYFESM no-pref slowdown %.2f, want clear (vector global fetches)", dy)
	}
	if tr > dy {
		t.Errorf("TRACK no-pref slowdown %.2f exceeds DYFESM's %.2f; scalar accesses cannot prefetch", tr, dy)
	}
}

func TestHandIOFixBDNA(t *testing.T) {
	pm := params.Default()
	auto, err := Run(pm, BDNA(), Spec{Variant: Auto})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := Run(pm, BDNA(), Spec{Variant: Hand})
	if err != nil {
		t.Fatal(err)
	}
	imp := auto.Seconds / hand.Seconds
	// Table 4: 1.7× from replacing formatted with unformatted I/O.
	if imp < 1.3 || imp > 2.4 {
		t.Errorf("BDNA hand improvement %.2f×, want ≈1.7×", imp)
	}
}

func TestTRFDPagingPenalty(t *testing.T) {
	pm := params.Default()
	auto, err := Run(pm, TRFD(), Spec{Variant: Auto})
	if err != nil {
		t.Fatal(err)
	}
	hand, err := Run(pm, TRFD(), Spec{Variant: Hand})
	if err != nil {
		t.Fatal(err)
	}
	if imp := auto.Seconds / hand.Seconds; imp < 1.8 || imp > 4.5 {
		t.Errorf("TRFD hand improvement %.2f×, want ≈2.8× (kernels + distributed memory)", imp)
	}
	// One cluster avoids the TLB penalty entirely.
	pm1 := pm
	pm1.Clusters = 1
	one, err := Run(pm1, TRFD(), Spec{Variant: Auto})
	if err != nil {
		t.Fatal(err)
	}
	_ = one // the penalty appears only in the 4-cluster fixed seconds
}

func TestSummaryConversion(t *testing.T) {
	s := SPICE().Summary()
	if s.Name != "SPICE" {
		t.Error("name lost")
	}
	if s.Flops >= SPICE().Flops {
		t.Error("FlopFraction not applied to summary flops")
	}
	if s.VecFrac != 0.05 || s.ParAutoFrac != 0.02 {
		t.Error("fractions not carried")
	}
}

func TestHandOptimizedSet(t *testing.T) {
	h := HandOptimized()
	for _, name := range []string{"ARC2D", "BDNA", "FLO52", "DYFESM", "TRFD", "QCD", "SPICE"} {
		if !h[name] {
			t.Errorf("%s missing from hand-optimized set", name)
		}
	}
	if len(h) != 7 {
		t.Errorf("hand set has %d codes, want 7", len(h))
	}
}

func TestKAPOneClusterConfinement(t *testing.T) {
	// The Perfect rules confined some codes' compiled runs to one
	// cluster to avoid intercluster overhead; verify the confinement is
	// wired through (the KAP variant may not beat a straight serial run
	// for these codes, just as the paper found "very limited
	// improvement").
	for _, p := range All() {
		switch p.Name {
		case "DYFESM", "OCEAN", "TRACK":
			if !p.KAPOneCluster {
				t.Errorf("%s should be confined to one cluster under KAP", p.Name)
			}
		}
	}
	out, err := Run(params.Default(), DYFESM(), Spec{Variant: KAP})
	if err != nil {
		t.Fatal(err)
	}
	if out.Seconds <= 0 {
		t.Error("confined KAP run produced no time")
	}
}
