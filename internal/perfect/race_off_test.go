//go:build !race

package perfect

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
