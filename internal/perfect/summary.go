package perfect

import "cedar/internal/comparator"

// Summary converts a profile into the comparator models' input.
func (p Profile) Summary() comparator.CodeSummary {
	return comparator.CodeSummary{
		Name:         p.Name,
		Flops:        int64(float64(p.Flops) * p.flopFraction()),
		VecFrac:      p.YMPVec,
		ParAutoFrac:  p.YMPParAuto,
		ParHandFrac:  p.YMPParHand,
		Cray1VecFrac: p.Cray1Vec,
	}
}
