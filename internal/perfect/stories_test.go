package perfect

import (
	"testing"

	"cedar/internal/params"
	"cedar/internal/ppt"
)

// TestPerCodeStories checks, code by code, the property the paper (or a
// companion CSRD report) attributes to it. These are the load-bearing
// facts behind Tables 3-6 and Figure 3; each is asserted against a real
// simulated run rather than against the profile's declaration.
func TestPerCodeStories(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite stories in -short mode")
	}
	if raceEnabled {
		t.Skip("per-code story simulations are too slow under the race detector")
	}
	pm := params.Default()

	speedup := func(t *testing.T, p Profile, spec Spec) float64 {
		t.Helper()
		serial, err := Run(pm, p, Spec{Variant: Serial})
		if err != nil {
			t.Fatal(err)
		}
		out, err := Run(pm, p, spec)
		if err != nil {
			t.Fatal(err)
		}
		return serial.Seconds / out.Seconds
	}

	t.Run("ADM intermediate automatable", func(t *testing.T) {
		sp := speedup(t, ADM(), Spec{Variant: Auto})
		if ppt.BandOfSpeedup(sp, 32) != ppt.Intermediate {
			t.Errorf("ADM automatable speedup %.1f not intermediate", sp)
		}
	})

	t.Run("ARC2D strong vector code", func(t *testing.T) {
		sp := speedup(t, ARC2D(), Spec{Variant: Auto})
		if sp < 10 {
			t.Errorf("ARC2D automatable speedup %.1f, want strong (>10)", sp)
		}
	})

	t.Run("BDNA serial dominated by formatted IO", func(t *testing.T) {
		serial, err := Run(pm, BDNA(), Spec{Variant: Serial})
		if err != nil {
			t.Fatal(err)
		}
		computeOnly := float64(BDNA().Flops) * scalarCPF / params.CyclesPerSecond
		ioShare := (serial.Seconds - computeOnly) / serial.Seconds
		if ioShare < 0.05 {
			t.Errorf("BDNA I/O share %.2f of serial time; the hand I/O fix would be pointless", ioShare)
		}
	})

	t.Run("DYFESM needs Cedar sync and prefetch", func(t *testing.T) {
		auto := speedup(t, DYFESM(), Spec{Variant: Auto})
		nosync := speedup(t, DYFESM(), Spec{Variant: Auto, NoSync: true})
		nopref := speedup(t, DYFESM(), Spec{Variant: Auto, NoSync: true, NoPref: true})
		if !(auto > nosync && nosync > nopref) {
			t.Errorf("DYFESM ablation ordering broken: %.1f / %.1f / %.1f", auto, nosync, nopref)
		}
	})

	t.Run("FLO52 barrier chains hurt; hand restructuring helps", func(t *testing.T) {
		auto, err := Run(pm, FLO52(), Spec{Variant: Auto, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		hand, err := Run(pm, FLO52(), Spec{Variant: Hand})
		if err != nil {
			t.Fatal(err)
		}
		if hand.Seconds >= auto.Seconds {
			t.Errorf("FLO52 hand %.1f s not faster than automatable %.1f s", hand.Seconds, auto.Seconds)
		}
	})

	t.Run("MDG the high performer", func(t *testing.T) {
		sp := speedup(t, MDG(), Spec{Variant: Auto})
		if ppt.BandOfSpeedup(sp, 32) != ppt.High {
			t.Errorf("MDG automatable speedup %.1f not high (≥16)", sp)
		}
	})

	t.Run("OCEAN fine grain needs Cedar sync", func(t *testing.T) {
		auto := speedup(t, OCEAN(), Spec{Variant: Auto})
		nosync := speedup(t, OCEAN(), Spec{Variant: Auto, NoSync: true})
		if nosync > auto/1.5 {
			t.Errorf("OCEAN nosync %.1f vs auto %.1f; want a severe hit", nosync, auto)
		}
	})

	t.Run("QCD RNG bound until hand parallelization", func(t *testing.T) {
		auto := speedup(t, QCD(), Spec{Variant: Auto})
		hand := speedup(t, QCD(), Spec{Variant: Hand})
		if auto > 2.4 {
			t.Errorf("QCD automatable %.1f, want ≈1.8 (serial RNG)", auto)
		}
		if hand < 6*auto {
			t.Errorf("QCD hand %.1f vs auto %.1f; want the dramatic RNG fix", hand, auto)
		}
	})

	t.Run("SPICE poor everywhere", func(t *testing.T) {
		out, err := Run(pm, SPICE(), Spec{Variant: Auto})
		if err != nil {
			t.Fatal(err)
		}
		if out.MFLOPS > 1.5 {
			t.Errorf("SPICE automatable %.2f MFLOPS, want the suite minimum (<1)", out.MFLOPS)
		}
	})

	t.Run("TRACK scalar access bound", func(t *testing.T) {
		nosync, err := Run(pm, TRACK(), Spec{Variant: Auto, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		nopref, err := Run(pm, TRACK(), Spec{Variant: Auto, NoSync: true, NoPref: true})
		if err != nil {
			t.Fatal(err)
		}
		if ratio := nopref.Seconds / nosync.Seconds; ratio > 1.1 {
			t.Errorf("TRACK no-pref slowdown %.2f; scalar accesses cannot benefit from the PFU", ratio)
		}
	})

	t.Run("TRFD pays paging only on multiple clusters", func(t *testing.T) {
		four, err := Run(pm, TRFD(), Spec{Variant: Auto})
		if err != nil {
			t.Fatal(err)
		}
		pm1 := pm
		pm1.Clusters = 1
		one, err := Run(pm1, TRFD(), Spec{Variant: Auto})
		if err != nil {
			t.Fatal(err)
		}
		// The paper's point exactly: the multicluster version's TLB storm
		// (≈4× the page faults, near half the time in virtual memory)
		// eats the gain from having four times the processors — which is
		// why the distributed-memory rewrite exists. Multicluster must
		// NOT show healthy scaling here.
		if one.Seconds/four.Seconds > 1.5 {
			t.Errorf("TRFD 4-cluster scaling %.1f× over 1-cluster; the paging penalty should erase it",
				one.Seconds/four.Seconds)
		}
		// The hand (distributed) version beats both.
		hand, err := Run(pm, TRFD(), Spec{Variant: Hand})
		if err != nil {
			t.Fatal(err)
		}
		if hand.Seconds >= four.Seconds || hand.Seconds >= one.Seconds {
			t.Errorf("TRFD hand %.1f s should beat both auto runs (%.1f, %.1f)",
				hand.Seconds, four.Seconds, one.Seconds)
		}
	})

	t.Run("SPEC77 and MG3D solid intermediates", func(t *testing.T) {
		for _, p := range []Profile{SPEC77(), MG3D()} {
			sp := speedup(t, p, Spec{Variant: Auto})
			if ppt.BandOfSpeedup(sp, 32) != ppt.Intermediate {
				t.Errorf("%s automatable speedup %.1f not intermediate", p.Name, sp)
			}
		}
	})
}
