//go:build race

package perfect

// raceEnabled reports whether the race detector is compiled in. The
// per-code story tests multiply a half-minute of simulation by the
// detector's overhead and blow the per-package test timeout, so they
// skip under -race; every simulator path they cover is also exercised
// by the per-variant unit tests, which do run raced.
const raceEnabled = true
