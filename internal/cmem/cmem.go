// Package cmem models an Alliant FX/8 cluster memory: the interleaved
// memory behind a cluster's shared cache. Its bandwidth is half the cache
// bandwidth (192 MB/s vs 384 MB/s per cluster in the paper's terms, i.e.
// 4 vs 8 words per instruction cycle).
//
// The model is a pipelined word server: requests are granted word credits
// at wordsPerCyc per cycle and complete latency cycles after their last
// word is granted. Cache line fills and write-backs are its only clients;
// CEs reach cluster memory through the cache.
package cmem

import "cedar/internal/gmem"

// Memory is one cluster's memory.
type Memory struct {
	wordsPerCyc int
	latency     int64
	data        *gmem.Store

	queue   []pending
	firing  []firing
	busyCnt int64
	wake    func(at int64)
}

// never mirrors sim.Never without importing sim (cmem sits below it in
// the layering DAG).
const never = int64(1<<63 - 1)

// Sink receives transfer completions. Completions carry the caller's tag
// instead of a per-request closure so that submitting on the per-cycle
// hot path allocates nothing (the cache encodes the line address in the
// tag and implements FillDone once).
type Sink interface {
	FillDone(tag uint64, cycle int64)
}

type pending struct {
	remaining int
	sink      Sink
	tag       uint64
}

type firing struct {
	at   int64
	sink Sink
	tag  uint64
}

// New builds a cluster memory with the given bandwidth (words/cycle) and
// access latency (cycles). A nil store allocates a fresh one.
func New(wordsPerCyc int, latency int, data *gmem.Store) *Memory {
	if data == nil {
		data = gmem.NewStore()
	}
	if wordsPerCyc < 1 {
		wordsPerCyc = 1
	}
	return &Memory{wordsPerCyc: wordsPerCyc, latency: int64(latency), data: data}
}

// Store returns the backdoor store.
func (m *Memory) Store() *gmem.Store { return m.data }

// Submit enqueues a transfer of words; sink.FillDone(tag, cycle) fires
// during the Tick in which the transfer completes (sink may be nil for
// fire-and-forget write-backs). There is no back-pressure: the queue is
// the cache's miss traffic, already bounded by MSHR limits upstream.
func (m *Memory) Submit(words int, sink Sink, tag uint64) {
	if words < 1 {
		words = 1
	}
	m.queue = append(m.queue, pending{remaining: words, sink: sink, tag: tag})
	if m.wake != nil {
		m.wake(0) // clamps to the currently executing cycle
	}
}

// SetWaker installs the engine wake callback; Submit uses it to rouse a
// sleeping memory. Until one is wired the memory never sleeps.
func (m *Memory) SetWaker(wake func(at int64)) { m.wake = wake }

// NextWakeup implements sim.Sleeper: now while transfers hold word
// credits (one grant pass per cycle), the earliest completion otherwise.
func (m *Memory) NextWakeup(now int64) int64 {
	if m.wake == nil || len(m.queue) > 0 {
		return now
	}
	w := never
	for i := range m.firing {
		if at := m.firing[i].at; at < w {
			w = at
		}
	}
	if w < now {
		return now
	}
	return w
}

// Idle reports whether no transfers are queued or completing.
func (m *Memory) Idle() bool { return len(m.queue) == 0 && len(m.firing) == 0 }

// BusyCycles reports cycles with a non-empty queue, a utilization proxy.
func (m *Memory) BusyCycles() int64 { return m.busyCnt }

// Tick grants word credits to the queue head(s) and fires due completions.
func (m *Memory) Tick(cycle int64) {
	// Fire completions that are due. The list stays short (bounded by
	// upstream MSHRs), so a linear scan is fine and keeps order stable.
	if len(m.firing) > 0 {
		keep := m.firing[:0]
		for _, f := range m.firing {
			if f.at <= cycle {
				f.sink.FillDone(f.tag, cycle)
			} else {
				keep = append(keep, f)
			}
		}
		m.firing = keep
	}

	if len(m.queue) == 0 {
		return
	}
	m.busyCnt++
	credit := m.wordsPerCyc
	for credit > 0 && len(m.queue) > 0 {
		h := &m.queue[0]
		take := h.remaining
		if take > credit {
			take = credit
		}
		h.remaining -= take
		credit -= take
		if h.remaining == 0 {
			if h.sink != nil {
				m.firing = append(m.firing, firing{at: cycle + m.latency, sink: h.sink, tag: h.tag})
			}
			copy(m.queue, m.queue[1:])
			m.queue = m.queue[:len(m.queue)-1]
		}
	}
}
