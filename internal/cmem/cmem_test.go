package cmem

import "testing"

// fillFunc adapts a completion closure to the Sink interface so tests can
// keep asserting on completion cycles.
type fillFunc func(cy int64)

func (f fillFunc) FillDone(_ uint64, cy int64) { f(cy) }

func TestTransferTiming(t *testing.T) {
	m := New(4, 10, nil)
	var done int64 = -1
	m.Submit(4, fillFunc(func(cy int64) { done = cy }), 0)
	for cycle := int64(0); cycle < 100 && !m.Idle(); cycle++ {
		m.Tick(cycle)
	}
	// 4 words granted in cycle 0, completion 10 cycles later.
	if done != 10 {
		t.Fatalf("completion at %d, want 10", done)
	}
}

func TestBandwidthSerializes(t *testing.T) {
	m := New(4, 10, nil)
	var times []int64
	for i := 0; i < 10; i++ {
		m.Submit(4, fillFunc(func(cy int64) { times = append(times, cy) }), 0)
	}
	for cycle := int64(0); cycle < 1000 && !m.Idle(); cycle++ {
		m.Tick(cycle)
	}
	if len(times) != 10 {
		t.Fatalf("%d completions, want 10", len(times))
	}
	// One 4-word line per cycle at 4 words/cycle.
	for i := 1; i < len(times); i++ {
		if times[i]-times[i-1] != 1 {
			t.Fatalf("completions %d cycles apart at %d, want 1", times[i]-times[i-1], i)
		}
	}
}

func TestHalfBandwidthTakesTwice(t *testing.T) {
	m := New(2, 5, nil)
	var last int64
	const n = 20
	for i := 0; i < n; i++ {
		m.Submit(4, fillFunc(func(cy int64) { last = cy }), 0)
	}
	for cycle := int64(0); cycle < 1000 && !m.Idle(); cycle++ {
		m.Tick(cycle)
	}
	// 20 transfers × 4 words at 2 words/cycle = 40 cycles + latency.
	if last < 40 || last > 46 {
		t.Fatalf("last completion at %d, want ≈44", last)
	}
}

func TestZeroWordTransferClamped(t *testing.T) {
	m := New(4, 1, nil)
	fired := false
	m.Submit(0, fillFunc(func(int64) { fired = true }), 0)
	for cycle := int64(0); cycle < 10 && !m.Idle(); cycle++ {
		m.Tick(cycle)
	}
	if !fired {
		t.Error("zero-word transfer never completed")
	}
}

func TestBusyCycles(t *testing.T) {
	m := New(4, 1, nil)
	m.Submit(8, nil, 0)
	for cycle := int64(0); cycle < 10 && !m.Idle(); cycle++ {
		m.Tick(cycle)
	}
	if m.BusyCycles() != 2 {
		t.Errorf("busy cycles = %d, want 2 (8 words at 4/cycle)", m.BusyCycles())
	}
}
