package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file is the property gate on the event wheel: for randomly
// generated component mixes — periodic sleepers, one-shot wakes, plain
// (never-sleeping) components, and pokers that fire spurious Handle.Wake
// calls at random targets and offsets — the engine must produce a
// byte-identical run log to the pure stepped schedule. Scenario
// generation is seeded, so a failure prints a seed that reproduces it.

// pokerSpec describes one spurious-wake emitter: a periodic component
// that, on each of its effective ticks, wakes a random co-registered
// component at a random future (or past, to exercise the clamp) cycle.
type pokerSpec struct {
	period int64
	want   int
	seed   int64
}

// scenario is pure data, so the stepped and event runs instantiate
// identical component sets.
type scenario struct {
	periodics []periodic  // values copied per run
	onces     []int64     // wakeOnce cycles
	pokers    []pokerSpec // spurious-wake emitters
	plain     int         // how many periodics lose their Sleeper half
}

// poker emits the spurious wakes. Draws happen only on period multiples
// while more pokes are owed, so the stepped and event runs consume the
// same pseudo-random sequence whenever their tick schedules agree —
// which is exactly the property under test.
type poker struct {
	id      string
	period  int64
	want    int
	rng     *rand.Rand
	targets []Handle
	ticks   []int64
}

func (p *poker) Name() string { return p.id }
func (p *poker) Tick(cycle int64) {
	if cycle%p.period != 0 || len(p.ticks) >= p.want {
		return
	}
	p.ticks = append(p.ticks, cycle)
	if len(p.targets) > 0 {
		h := p.targets[p.rng.Intn(len(p.targets))]
		// Offsets reach one cycle into the past on purpose: a wake at or
		// before the current cycle must clamp, never rewind.
		h.Wake(cycle - 1 + int64(p.rng.Intn(30)))
	}
}
func (p *poker) Idle() bool { return len(p.ticks) >= p.want }
func (p *poker) NextWakeup(now int64) int64 {
	if len(p.ticks) >= p.want {
		return Never
	}
	if now%p.period == 0 {
		return now
	}
	return now - now%p.period + p.period
}

// runScenario executes one scenario and returns its full run log:
// every component's effective-tick cycles, the end cycle, and the error.
func runScenario(t *testing.T, sc scenario, stepped bool) string {
	t.Helper()
	e := New()
	e.stepped = stepped // per-engine, so the test doesn't touch the process mode

	var logs []func() string
	var handles []Handle
	for i := range sc.periodics {
		p := sc.periodics[i] // copy
		var h Handle
		if i < sc.plain {
			h = e.Register(hidden{&p})[0]
		} else {
			h = e.Register(&p)[0]
		}
		handles = append(handles, h)
		logs = append(logs, func() string { return fmt.Sprintf("%s:%v", p.id, p.ticks) })
	}
	for i, at := range sc.onces {
		w := &wakeOnce{id: fmt.Sprintf("once%d", i), at: at}
		handles = append(handles, e.Register(w)[0])
		logs = append(logs, func() string { return fmt.Sprintf("%s:%v", w.id, w.ticks) })
	}
	for i, ps := range sc.pokers {
		pk := &poker{
			id:      fmt.Sprintf("poker%d", i),
			period:  ps.period,
			want:    ps.want,
			rng:     rand.New(rand.NewSource(ps.seed)),
			targets: handles,
		}
		e.Register(pk)
		logs = append(logs, func() string { return fmt.Sprintf("%s:%v", pk.id, pk.ticks) })
	}

	err := e.RunUntilIdle(5000)
	var b strings.Builder
	for _, f := range logs {
		b.WriteString(f())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "cycle:%d skipped>=0:%v err:%v\n", e.Cycle(), e.FastForwarded() >= 0, err)
	return b.String()
}

// TestRandomWakeInterleavingsMatchStepped is the property test: 40
// seeded scenarios, each run both ways, logs compared byte for byte. It
// runs under -race in the repo gate (scripts/check.sh) like the other
// equivalence checks; the engine is single-goroutine, so the detector
// guards the process-wide mode plumbing rather than the wheel itself.
func TestRandomWakeInterleavingsMatchStepped(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := scenario{}
		for i, n := 0, 1+rng.Intn(5); i < n; i++ {
			sc.periodics = append(sc.periodics, periodic{
				id:     fmt.Sprintf("p%d", i),
				period: 1 + int64(rng.Intn(12)),
				want:   1 + rng.Intn(6),
			})
		}
		for i, n := 0, rng.Intn(4); i < n; i++ {
			sc.onces = append(sc.onces, int64(rng.Intn(300)))
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			sc.pokers = append(sc.pokers, pokerSpec{
				period: 1 + int64(rng.Intn(9)),
				want:   1 + rng.Intn(8),
				seed:   rng.Int63(),
			})
		}
		// A quarter of the scenarios keep some plain components, pinning
		// the busy-region rule (no jumps, but sleepers still skip ticks).
		if seed%4 == 0 && len(sc.periodics) > 1 {
			sc.plain = 1 + rng.Intn(len(sc.periodics)-1)
		}

		event := runScenario(t, sc, false)
		steppedLog := runScenario(t, sc, true)
		if event != steppedLog {
			t.Errorf("seed %d: event and stepped runs diverge\nevent:\n%s\nstepped:\n%s",
				seed, event, steppedLog)
		}
	}
}
