package sim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// This file is the property gate on the sharded engine: for randomly
// generated shard layouts — periodic sleepers, same-shard pokers, and
// cross-shard senders whose traffic flows through per-shard mailboxes
// drained in shard order — the sharded run must produce a byte-identical
// run log to the flat (unsharded) registration of the same components,
// at every worker count and in both wheel modes. It runs under -race in
// scripts/check.sh, so the detector watches the real phase-A
// concurrency.

// sender emits one tagged value into its shard's mailbox on each of its
// effective ticks — the engine-level model of a cluster submitting a
// packet to a fabric. In flat mode it additionally wakes the glue
// component that stands in for the drain hook.
type sender struct {
	id       string
	period   int64
	want     int
	box      *[]string
	wakeGlue func(at int64) // nil in sharded mode: the drain runs every executed cycle
	sent     int
}

func (s *sender) Name() string { return s.id }
func (s *sender) Tick(cycle int64) {
	if cycle%s.period != 0 || s.sent >= s.want {
		return
	}
	*s.box = append(*s.box, fmt.Sprintf("%s@%d", s.id, cycle))
	s.sent++
	if s.wakeGlue != nil {
		s.wakeGlue(cycle)
	}
}
func (s *sender) Idle() bool { return s.sent >= s.want }
func (s *sender) NextWakeup(now int64) int64 {
	if s.sent >= s.want {
		return Never
	}
	if now%s.period == 0 {
		return now
	}
	return now - now%s.period + s.period
}

// collector is the hub-side consumer: it logs everything the drain
// delivered, stamped with its own tick cycle.
type collector struct {
	inbox []string
	log   []string
}

func (c *collector) Name() string { return "collector" }
func (c *collector) Tick(cycle int64) {
	for _, v := range c.inbox {
		c.log = append(c.log, fmt.Sprintf("%s->%d", v, cycle))
	}
	c.inbox = c.inbox[:0]
}
func (c *collector) Idle() bool { return len(c.inbox) == 0 }
func (c *collector) NextWakeup(now int64) int64 {
	if len(c.inbox) > 0 {
		return now
	}
	return Never
}

// shardSpec is one shard's component mix, as pure data.
type shardSpec struct {
	periodics []periodic
	senders   []sender // id/period/want only
	pokerSeed int64    // 0 = no poker; pokers target same-shard components only
	pokerWant int
}

type shardScenario struct {
	shards []shardSpec
	hub    []periodic
}

// runShardScenario executes one scenario and returns its full run log.
// With sharded=false the same components are registered flat, with a
// glue Sleeper standing where the drain hook runs, so the two logs are
// comparable byte for byte.
func runShardScenario(t *testing.T, sc shardScenario, sharded bool, workers int, stepped bool) string {
	t.Helper()
	e := New()
	e.stepped = stepped
	e.maxWorkers = workers

	boxes := make([][]string, len(sc.shards))
	col := &collector{}
	var logs []func() string

	reg := func(shard int, cs ...Component) []Handle {
		if sharded {
			return e.RegisterShard(shard, cs...)
		}
		return e.Register(cs...)
	}
	for si := range sc.shards {
		sp := &sc.shards[si]
		var shardHandles []Handle
		for i := range sp.periodics {
			p := sp.periodics[i] // copy
			pp := &p
			shardHandles = append(shardHandles, reg(si, pp)...)
			logs = append(logs, func() string { return fmt.Sprintf("%s:%v", pp.id, pp.ticks) })
		}
		for i := range sp.senders {
			s := sp.senders[i] // copy
			ss := &s
			ss.box = &boxes[si]
			shardHandles = append(shardHandles, reg(si, ss)...)
			logs = append(logs, func() string { return fmt.Sprintf("%s:%d", ss.id, ss.sent) })
		}
		if sp.pokerSeed != 0 {
			pk := &poker{
				id:      fmt.Sprintf("shard%dpoker", si),
				period:  1 + sp.pokerSeed%7,
				want:    sp.pokerWant,
				rng:     rand.New(rand.NewSource(sp.pokerSeed)),
				targets: shardHandles,
			}
			reg(si, pk)
			logs = append(logs, func() string { return fmt.Sprintf("%s:%v", pk.id, pk.ticks) })
		}
	}

	// The drain: move every shard's mailbox into the collector in shard
	// order, waking it when anything arrived. Flat runs place the same
	// logic in a glue Sleeper registered between the shard and hub
	// regions — the position the drain hook occupies on a sharded engine.
	var colHandle Handle
	drain := func(cycle int64) {
		delivered := false
		for si := range boxes {
			if len(boxes[si]) > 0 {
				col.inbox = append(col.inbox, boxes[si]...)
				boxes[si] = boxes[si][:0]
				delivered = true
			}
		}
		if delivered {
			colHandle.Wake(cycle)
		}
	}
	if sharded {
		e.SetDrain(drain)
	} else {
		var glueHandle Handle
		glueHandle = e.Register(SchedFunc{
			ID: "glue",
			F:  drain,
			W: func(now int64) int64 {
				return Never // woken by senders
			},
		})[0]
		// Wire every sender's glue wake (senders were copied; walk the
		// registered components instead).
		for _, c := range e.components {
			if s, ok := c.(*sender); ok {
				s.wakeGlue = glueHandle.Wake
			}
		}
	}

	colHandle = e.Register(col)[0]
	for i := range sc.hub {
		p := sc.hub[i] // copy
		pp := &p
		e.Register(pp)
		logs = append(logs, func() string { return fmt.Sprintf("%s:%v", pp.id, pp.ticks) })
	}

	err := e.RunUntilIdle(5000)
	var b strings.Builder
	for _, f := range logs {
		b.WriteString(f())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "collector:%v\n", col.log)
	fmt.Fprintf(&b, "cycle:%d skipped:%d err:%v\n", e.Cycle(), e.FastForwarded(), err)
	return b.String()
}

// TestShardedMatchesFlat is the seeded property test over random shard
// counts and worker interleavings required by the sharding contract:
// every (scenario × worker count × wheel mode) run must equal the flat
// single-goroutine run byte for byte, including jump accounting.
func TestShardedMatchesFlat(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sc := shardScenario{}
		nShards := 1 + rng.Intn(6)
		for si := 0; si < nShards; si++ {
			sp := shardSpec{}
			for i, n := 0, 1+rng.Intn(3); i < n; i++ {
				sp.periodics = append(sp.periodics, periodic{
					id:     fmt.Sprintf("s%dp%d", si, i),
					period: 1 + int64(rng.Intn(12)),
					want:   1 + rng.Intn(6),
				})
			}
			for i, n := 0, rng.Intn(3); i < n; i++ {
				sp.senders = append(sp.senders, sender{
					id:     fmt.Sprintf("s%dtx%d", si, i),
					period: 1 + int64(rng.Intn(9)),
					want:   1 + rng.Intn(5),
				})
			}
			if rng.Intn(3) == 0 {
				sp.pokerSeed = 1 + rng.Int63n(1<<30)
				sp.pokerWant = 1 + rng.Intn(6)
			}
			sc.shards = append(sc.shards, sp)
		}
		for i, n := 0, rng.Intn(3); i < n; i++ {
			sc.hub = append(sc.hub, periodic{
				id:     fmt.Sprintf("hub%d", i),
				period: 1 + int64(rng.Intn(15)),
				want:   1 + rng.Intn(4),
			})
		}

		for _, stepped := range []bool{false, true} {
			flat := runShardScenario(t, sc, false, 1, stepped)
			for _, workers := range []int{1, 2, 3, 8} {
				got := runShardScenario(t, sc, true, workers, stepped)
				if got != flat {
					t.Errorf("seed %d stepped=%v workers=%d: sharded run diverges from flat\nsharded:\n%s\nflat:\n%s",
						seed, stepped, workers, got, flat)
				}
			}
		}
	}
}

// TestSleepingShardDoesNotBlockJump is the regression test for the
// min-over-heaps jump target: a shard whose components are all asleep
// (wake = Never) must not pin the clock while another shard has a far
// wake pending.
func TestSleepingShardDoesNotBlockJump(t *testing.T) {
	e := New()
	// Shard 0: one sender that is idle from the start — NextWakeup Never.
	done := &sender{id: "done", period: 1, want: 0}
	var box []string
	done.box = &box
	e.RegisterShard(0, done)
	// Shard 1: a single distant wake.
	w := &wakeOnce{id: "far", at: 400}
	e.RegisterShard(1, w)
	if err := e.RunUntilIdle(1000); err != nil {
		t.Fatal(err)
	}
	if !w.fired || e.Cycle() != 401 {
		t.Fatalf("fired=%v cycle=%d, want fired at 400 and cycle 401", w.fired, e.Cycle())
	}
	if e.FastForwarded() != 400 {
		t.Errorf("FastForwarded = %d, want 400 (the sleeping shard blocked the jump)", e.FastForwarded())
	}
}

// TestShardedWorkerPoolRuns pins that a multi-worker run really uses
// the pool (Workers > 1) and terminates cleanly across repeated run
// entries — the per-run worker lifecycle.
func TestShardedWorkerPoolRuns(t *testing.T) {
	e := New()
	e.maxWorkers = 4
	var ps []*periodic
	for s := 0; s < 4; s++ {
		p := &periodic{id: fmt.Sprintf("s%d", s), period: 3, want: 5}
		ps = append(ps, p)
		e.RegisterShard(s, p)
	}
	if e.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", e.Workers())
	}
	for i := 0; i < 3; i++ {
		if err := e.RunUntilIdle(100); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	for _, p := range ps {
		if len(p.ticks) != 5 {
			t.Errorf("%s ticked %d times, want 5", p.id, len(p.ticks))
		}
	}
}

// TestShardPanicPropagates pins that a component panic inside a worker
// resurfaces on the engine goroutine instead of hanging the barrier.
func TestShardPanicPropagates(t *testing.T) {
	e := New()
	e.maxWorkers = 2
	e.RegisterShard(0, Func{ID: "boom", F: func(int64) { panic("boom") }})
	e.RegisterShard(1, Func{ID: "calm", F: func(int64) {}})
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	e.Run(1)
}

// TestRegisterShardContract pins the registration rules: shards are
// contiguous from 0, and freeze once a hub component registers.
func TestRegisterShardContract(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	comp := func() Component { return Func{ID: "c", F: func(int64) {}} }

	mustPanic("skipping a shard index", func() {
		e := New()
		e.RegisterShard(0, comp())
		e.RegisterShard(2, comp())
	})
	mustPanic("sharding after hub registration", func() {
		e := New()
		e.RegisterShard(0, comp())
		e.Register(comp())
		e.RegisterShard(1, comp())
	})
	mustPanic("sharding a flat engine with components", func() {
		e := New()
		e.Register(comp())
		e.RegisterShard(0, comp())
	})

	// Extending the current shard and then opening the next is legal.
	e := New()
	e.RegisterShard(0, comp())
	e.RegisterShard(0, comp())
	e.RegisterShard(1, comp())
	e.Register(comp())
	if e.NumShards() != 2 || e.hubLo() != 3 {
		t.Errorf("NumShards=%d hubLo=%d, want 2 and 3", e.NumShards(), e.hubLo())
	}
}
