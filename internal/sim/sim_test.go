package sim

import (
	"errors"
	"strings"
	"testing"
)

func TestStepIncrementsCycle(t *testing.T) {
	e := New()
	if e.Cycle() != 0 {
		t.Fatalf("new engine cycle = %d, want 0", e.Cycle())
	}
	e.Step()
	e.Step()
	if e.Cycle() != 2 {
		t.Fatalf("cycle after two steps = %d, want 2", e.Cycle())
	}
}

func TestTickOrderAndCycleValue(t *testing.T) {
	e := New()
	var order []string
	var seen []int64
	mk := func(id string) Func {
		return Func{ID: id, F: func(c int64) {
			order = append(order, id)
			seen = append(seen, c)
		}}
	}
	e.Register(mk("a"), mk("b"))
	e.Register(mk("c"))
	e.Run(2)

	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("tick %d = %q, want %q", i, order[i], want[i])
		}
	}
	for i, c := range seen {
		if wantC := int64(i / 3); c != wantC {
			t.Errorf("tick %d saw cycle %d, want %d", i, c, wantC)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	e.Register(Func{ID: "counter", F: func(int64) { count++ }})
	if err := e.RunUntil(func() bool { return count >= 5 }, 100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Cycle() != 5 {
		t.Errorf("cycle = %d, want 5", e.Cycle())
	}
}

func TestRunUntilLimit(t *testing.T) {
	e := New()
	err := e.RunUntil(func() bool { return false }, 10)
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	if e.Cycle() != 10 {
		t.Errorf("cycle = %d, want 10", e.Cycle())
	}
}

type idleAfter struct {
	n    int64
	tick int64
}

func (i *idleAfter) Name() string     { return "idleAfter" }
func (i *idleAfter) Tick(cycle int64) { i.tick = cycle + 1 }
func (i *idleAfter) Idle() bool       { return i.tick >= i.n }

func TestRunUntilIdle(t *testing.T) {
	e := New()
	e.Register(&idleAfter{n: 7}, &idleAfter{n: 3})
	if err := e.RunUntilIdle(100); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if e.Cycle() != 7 {
		t.Errorf("cycle = %d, want 7 (slowest component)", e.Cycle())
	}
}

func TestRunUntilIdleLimit(t *testing.T) {
	e := New()
	e.Register(&idleAfter{n: 1 << 40})
	if err := e.RunUntilIdle(5); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
}

func TestComponentsCount(t *testing.T) {
	e := New()
	e.Register(Func{ID: "x", F: func(int64) {}})
	if e.Components() != 1 {
		t.Errorf("Components() = %d, want 1", e.Components())
	}
}

func TestRunUntilNonPositiveLimit(t *testing.T) {
	for _, limit := range []int64{0, -1, -100} {
		e := New()
		ticked := false
		e.Register(Func{ID: "x", F: func(int64) { ticked = true }})
		err := e.RunUntil(func() bool { return true }, limit)
		if !errors.Is(err, ErrNonPositiveLimit) {
			t.Fatalf("limit %d: err = %v, want ErrNonPositiveLimit", limit, err)
		}
		if errors.Is(err, ErrCycleLimit) {
			t.Errorf("limit %d: non-positive limit must be distinct from ErrCycleLimit", limit)
		}
		if ticked || e.Cycle() != 0 {
			t.Errorf("limit %d: engine stepped (cycle %d) on a rejected limit", limit, e.Cycle())
		}
	}
}

func TestRunUntilIdleNonPositiveLimit(t *testing.T) {
	e := New()
	e.Register(&idleAfter{n: 5})
	if err := e.RunUntilIdle(0); !errors.Is(err, ErrNonPositiveLimit) {
		t.Fatalf("err = %v, want ErrNonPositiveLimit", err)
	}
	if e.Cycle() != 0 {
		t.Errorf("cycle = %d, want 0 (no stepping on rejected limit)", e.Cycle())
	}
}

func TestCycleLimitNamesBusyComponents(t *testing.T) {
	e := New()
	e.Register(&idleAfter{n: 1 << 40}, Func{ID: "glue", F: func(int64) {}})
	err := e.RunUntilIdle(5)
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	if !strings.Contains(err.Error(), "idleAfter") {
		t.Errorf("cycle-limit error %q does not name the busy component", err)
	}
	if strings.Contains(err.Error(), "glue") {
		t.Errorf("cycle-limit error %q names a non-Idler component as busy", err)
	}
}

func TestIdleCountSharesScanWithRunUntilIdle(t *testing.T) {
	e := New()
	busy := &idleAfter{n: 3}
	e.Register(busy, Func{ID: "glue", F: func(int64) {}})
	// Non-Idler components count as idle; the Idler is initially busy.
	if got := e.IdleCount(); got != 1 {
		t.Fatalf("IdleCount before run = %d, want 1", got)
	}
	if err := e.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if got := e.IdleCount(); got != e.Components() {
		t.Errorf("IdleCount after RunUntilIdle = %d, want %d (the same scan must agree)",
			got, e.Components())
	}
}

// periodic is a Sleeper: it does work only on multiples of period, and is
// idle once it has recorded enough effective ticks.
type periodic struct {
	id     string
	period int64
	want   int
	ticks  []int64
}

func (p *periodic) Name() string { return p.id }
func (p *periodic) Tick(cycle int64) {
	if cycle%p.period == 0 {
		p.ticks = append(p.ticks, cycle)
	}
}
func (p *periodic) Idle() bool { return len(p.ticks) >= p.want }
func (p *periodic) NextWakeup(now int64) int64 {
	if now%p.period == 0 {
		return now
	}
	return now - now%p.period + p.period
}

// hidden wraps a periodic, hiding its Sleeper implementation so the same
// workload can run with fast-forwarding disabled.
type hidden struct{ p *periodic }

func (h hidden) Name() string     { return h.p.Name() }
func (h hidden) Tick(cycle int64) { h.p.Tick(cycle) }
func (h hidden) Idle() bool       { return h.p.Idle() }

func TestFastForwardMatchesSteppedRun(t *testing.T) {
	run := func(fastForward bool) (*periodic, *periodic, *Engine) {
		a := &periodic{id: "a", period: 10, want: 4}
		b := &periodic{id: "b", period: 15, want: 3}
		e := New()
		if fastForward {
			e.Register(a, b)
		} else {
			e.Register(hidden{a}, hidden{b})
		}
		if err := e.RunUntilIdle(1000); err != nil {
			t.Fatal(err)
		}
		return a, b, e
	}
	fa, fb, fe := run(true)
	sa, sb, se := run(false)
	if fe.FastForwarded() == 0 {
		t.Error("all-Sleeper engine skipped no cycles")
	}
	if se.FastForwarded() != 0 {
		t.Error("non-Sleeper engine fast-forwarded")
	}
	if fe.Cycle() != se.Cycle() {
		t.Errorf("fast-forwarded run ended at cycle %d, stepped run at %d", fe.Cycle(), se.Cycle())
	}
	for _, pair := range [][2]*periodic{{fa, sa}, {fb, sb}} {
		f, s := pair[0], pair[1]
		if len(f.ticks) != len(s.ticks) {
			t.Fatalf("%s: %d effective ticks fast-forwarded vs %d stepped", f.id, len(f.ticks), len(s.ticks))
		}
		for i := range f.ticks {
			if f.ticks[i] != s.ticks[i] {
				t.Errorf("%s tick %d at cycle %d, stepped run at %d", f.id, i, f.ticks[i], s.ticks[i])
			}
		}
	}
}

func TestFastForwardRequiresEveryComponent(t *testing.T) {
	a := &periodic{id: "a", period: 10, want: 2}
	e := New()
	e.Register(a, Func{ID: "plain", F: func(int64) {}})
	if err := e.RunUntilIdle(100); err != nil {
		t.Fatal(err)
	}
	if e.FastForwarded() != 0 {
		t.Errorf("engine with a non-Sleeper component skipped %d cycles", e.FastForwarded())
	}
}

func TestFastForwardRespectsLimit(t *testing.T) {
	a := &periodic{id: "a", period: 1 << 30, want: 2}
	e := New()
	e.Register(a)
	err := e.RunUntilIdle(50)
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	if e.Cycle() != 50 {
		t.Errorf("cycle = %d, want 50 (fast-forward must clamp to the limit)", e.Cycle())
	}
}

// wakeOnce is a Sleeper with exactly one effective tick, at cycle at.
// It is the minimal probe for the fast-forward/limit boundary: whether
// a wake landing on, just before, or just after the RunUntil deadline
// behaves identically to a stepped run.
type wakeOnce struct {
	id    string
	at    int64
	fired bool
	ticks []int64
}

func (w *wakeOnce) Name() string { return w.id }
func (w *wakeOnce) Tick(cycle int64) {
	if cycle == w.at {
		w.fired = true
		w.ticks = append(w.ticks, cycle)
	}
}
func (w *wakeOnce) Idle() bool { return w.fired }
func (w *wakeOnce) NextWakeup(now int64) int64 {
	if w.fired || now >= w.at {
		return now
	}
	return w.at
}

// hiddenWake strips the Sleeper interface off a wakeOnce so the same
// workload can run fully stepped.
type hiddenWake struct{ w *wakeOnce }

func (h hiddenWake) Name() string     { return h.w.Name() }
func (h hiddenWake) Tick(cycle int64) { h.w.Tick(cycle) }
func (h hiddenWake) Idle() bool       { return h.w.Idle() }

// TestFastForwardWakeOnLimitBoundary pins the boundary semantics of the
// fast-forward clamp: a wakeup exactly at the deadline (or past it) must
// time out at exactly the limit, and a wakeup one cycle inside must
// complete — in both cases agreeing with the stepped run cycle for
// cycle.
func TestFastForwardWakeOnLimitBoundary(t *testing.T) {
	const limit = 50
	cases := []struct {
		name     string
		wake     int64
		wantErr  bool
		wantTick bool
	}{
		// The deadline cycle itself is never executed: RunUntil checks
		// the budget before stepping, so a wake at start+limit times out.
		{"wake exactly on limit", limit, true, false},
		{"wake one inside limit", limit - 1, false, true},
		{"wake one past limit", limit + 1, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(fastForward bool) (*wakeOnce, *Engine, error) {
				w := &wakeOnce{id: "wake", at: tc.wake}
				e := New()
				if fastForward {
					e.Register(w)
				} else {
					e.Register(hiddenWake{w})
				}
				return w, e, e.RunUntilIdle(limit)
			}
			fw, fe, ferr := run(true)
			sw, se, serr := run(false)

			if gotErr := errors.Is(ferr, ErrCycleLimit); gotErr != tc.wantErr {
				t.Fatalf("fast-forwarded: err = %v, want cycle-limit %v", ferr, tc.wantErr)
			}
			if gotErr := errors.Is(serr, ErrCycleLimit); gotErr != tc.wantErr {
				t.Fatalf("stepped: err = %v, want cycle-limit %v", serr, tc.wantErr)
			}
			if fe.Cycle() != se.Cycle() {
				t.Errorf("fast-forwarded ended at cycle %d, stepped at %d", fe.Cycle(), se.Cycle())
			}
			wantCycle := int64(limit)
			if !tc.wantErr {
				wantCycle = tc.wake + 1 // the effective tick's cycle completes
			}
			if fe.Cycle() != wantCycle {
				t.Errorf("ended at cycle %d, want %d", fe.Cycle(), wantCycle)
			}
			if fw.fired != tc.wantTick || sw.fired != tc.wantTick {
				t.Errorf("fired: fast-forwarded %v, stepped %v, want %v", fw.fired, sw.fired, tc.wantTick)
			}
			if tc.wantTick && (len(fw.ticks) != 1 || fw.ticks[0] != tc.wake) {
				t.Errorf("effective ticks %v, want exactly [%d]", fw.ticks, tc.wake)
			}
			if tc.wake >= limit && fe.FastForwarded() != limit {
				// The clamp must deliver the engine to the deadline in one
				// skip, not overshoot it.
				t.Errorf("fast-forwarded %d cycles, want %d (clamped to deadline)", fe.FastForwarded(), limit)
			}
		})
	}
}

// TestFastForwardedAcrossReentry pins the skipped-cycle accounting when
// RunUntil is re-entered mid-run and a wake lands exactly on the
// re-entered deadline (start+limit). The seam this guards: each RunUntil
// computes its deadline from its own start cycle, and tryJump clamps to
// that deadline, so FastForwarded must accumulate exactly the cycles no
// tick ran — never double-counting a deadline cycle across re-entries
// and never overshooting a clamp.
func TestFastForwardedAcrossReentry(t *testing.T) {
	w := &wakeOnce{id: "wake", at: 100}
	e := New()
	e.Register(w)

	// First entry times out well before the wake: one clamped jump 0→30.
	if err := e.RunUntilIdle(30); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("first entry: err = %v, want ErrCycleLimit", err)
	}
	if e.Cycle() != 30 || e.FastForwarded() != 30 {
		t.Fatalf("first entry: cycle %d / skipped %d, want 30 / 30", e.Cycle(), e.FastForwarded())
	}

	// Re-entry with the wake exactly on start+limit (30+70): the deadline
	// cycle is never executed, so the run times out, the component must
	// not fire, and every cycle of this window was skipped.
	if err := e.RunUntilIdle(70); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("re-entry: err = %v, want ErrCycleLimit", err)
	}
	if w.fired {
		t.Error("re-entry: component fired on the deadline cycle, which must not execute")
	}
	if e.Cycle() != 100 || e.FastForwarded() != 100 {
		t.Errorf("re-entry: cycle %d / skipped %d, want 100 / 100", e.Cycle(), e.FastForwarded())
	}

	// Third entry starts on the wake cycle itself: the tick executes, so
	// cycle 100 counts as executed and the skip total must not grow.
	if err := e.RunUntilIdle(10); err != nil {
		t.Fatalf("third entry: %v", err)
	}
	if !w.fired || len(w.ticks) != 1 || w.ticks[0] != 100 {
		t.Errorf("third entry: ticks = %v, want [100]", w.ticks)
	}
	if e.Cycle() != 101 || e.FastForwarded() != 100 {
		t.Errorf("third entry: cycle %d / skipped %d, want 101 / 100", e.Cycle(), e.FastForwarded())
	}

	// The stepped twin of the same three-entry schedule agrees on every
	// cycle count and never fast-forwards.
	sw := &wakeOnce{id: "wake", at: 100}
	se := New()
	se.Register(hiddenWake{sw})
	if err := se.RunUntilIdle(30); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("stepped first entry: %v", err)
	}
	if err := se.RunUntilIdle(70); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("stepped re-entry: %v", err)
	}
	if err := se.RunUntilIdle(10); err != nil {
		t.Fatalf("stepped third entry: %v", err)
	}
	if se.Cycle() != e.Cycle() || sw.fired != w.fired {
		t.Errorf("stepped twin ended at cycle %d (fired %v), fast-forwarded at %d (fired %v)",
			se.Cycle(), sw.fired, e.Cycle(), w.fired)
	}
	if se.FastForwarded() != 0 {
		t.Errorf("stepped twin skipped %d cycles, want 0", se.FastForwarded())
	}
}

// TestFastForwardWakeBoundaryMidRun repeats the boundary check with a
// non-zero start cycle, so the deadline arithmetic (start+limit, not
// absolute limit) is what is actually pinned.
func TestFastForwardWakeBoundaryMidRun(t *testing.T) {
	const warmup, limit = 7, 20
	mk := func(wake int64) (*wakeOnce, *Engine) {
		w := &wakeOnce{id: "wake", at: wake}
		e := New()
		e.Register(w)
		e.Run(warmup) // the wake is still ahead; these are no-op ticks
		return w, e
	}

	// Wake at start+limit: times out at exactly start+limit.
	w, e := mk(warmup + limit)
	if err := e.RunUntilIdle(limit); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	if e.Cycle() != warmup+limit {
		t.Errorf("cycle = %d, want %d", e.Cycle(), warmup+limit)
	}
	if w.fired {
		t.Error("component fired on the deadline cycle, which must not execute")
	}

	// Wake at start+limit-1: completes with the tick on its exact cycle.
	w, e = mk(warmup + limit - 1)
	if err := e.RunUntilIdle(limit); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if !w.fired || len(w.ticks) != 1 || w.ticks[0] != warmup+limit-1 {
		t.Errorf("ticks = %v, want [%d]", w.ticks, warmup+limit-1)
	}
	if e.Cycle() != warmup+limit {
		t.Errorf("cycle = %d, want %d", e.Cycle(), warmup+limit)
	}
}
