package sim

import (
	"errors"
	"testing"
)

func TestStepIncrementsCycle(t *testing.T) {
	e := New()
	if e.Cycle() != 0 {
		t.Fatalf("new engine cycle = %d, want 0", e.Cycle())
	}
	e.Step()
	e.Step()
	if e.Cycle() != 2 {
		t.Fatalf("cycle after two steps = %d, want 2", e.Cycle())
	}
}

func TestTickOrderAndCycleValue(t *testing.T) {
	e := New()
	var order []string
	var seen []int64
	mk := func(id string) Func {
		return Func{ID: id, F: func(c int64) {
			order = append(order, id)
			seen = append(seen, c)
		}}
	}
	e.Register(mk("a"), mk("b"))
	e.Register(mk("c"))
	e.Run(2)

	want := []string{"a", "b", "c", "a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("got %d ticks, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("tick %d = %q, want %q", i, order[i], want[i])
		}
	}
	for i, c := range seen {
		if wantC := int64(i / 3); c != wantC {
			t.Errorf("tick %d saw cycle %d, want %d", i, c, wantC)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	count := 0
	e.Register(Func{ID: "counter", F: func(int64) { count++ }})
	if err := e.RunUntil(func() bool { return count >= 5 }, 100); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Cycle() != 5 {
		t.Errorf("cycle = %d, want 5", e.Cycle())
	}
}

func TestRunUntilLimit(t *testing.T) {
	e := New()
	err := e.RunUntil(func() bool { return false }, 10)
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
	if e.Cycle() != 10 {
		t.Errorf("cycle = %d, want 10", e.Cycle())
	}
}

type idleAfter struct {
	n    int64
	tick int64
}

func (i *idleAfter) Name() string     { return "idleAfter" }
func (i *idleAfter) Tick(cycle int64) { i.tick = cycle + 1 }
func (i *idleAfter) Idle() bool       { return i.tick >= i.n }

func TestRunUntilIdle(t *testing.T) {
	e := New()
	e.Register(&idleAfter{n: 7}, &idleAfter{n: 3})
	if err := e.RunUntilIdle(100); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if e.Cycle() != 7 {
		t.Errorf("cycle = %d, want 7 (slowest component)", e.Cycle())
	}
}

func TestRunUntilIdleLimit(t *testing.T) {
	e := New()
	e.Register(&idleAfter{n: 1 << 40})
	if err := e.RunUntilIdle(5); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("err = %v, want ErrCycleLimit", err)
	}
}

func TestComponentsCount(t *testing.T) {
	e := New()
	e.Register(Func{ID: "x", F: func(int64) {}})
	if e.Components() != 1 {
		t.Errorf("Components() = %d, want 1", e.Components())
	}
}
