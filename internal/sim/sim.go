// Package sim provides the deterministic cycle-driven simulation engine
// used by the Cedar machine model.
//
// Components register with an Engine and are ticked once per cycle in
// registration order. Ticking order is part of the model: producers are
// registered before the fabrics that carry their traffic, so a request can
// traverse at most one hop per cycle and all timing is reproducible.
package sim

import (
	"errors"
	"fmt"
	"strings"
)

// Component is a piece of simulated hardware advanced once per cycle.
type Component interface {
	// Name identifies the component in diagnostics.
	Name() string
	// Tick advances the component by one cycle. cycle is the cycle number
	// being executed, starting at 0.
	Tick(cycle int64)
}

// Idler is implemented by components that can report quiescence; the
// engine's RunUntilIdle uses it to detect completion.
type Idler interface {
	// Idle reports whether the component has no work in flight.
	Idle() bool
}

// Sleeper is implemented by components whose Tick is a guaranteed no-op
// until a known future cycle. When every registered component implements
// Sleeper, the engine fast-forwards the clock to the earliest reported
// wakeup instead of executing the intervening no-op ticks; the observable
// schedule of effective ticks is unchanged, so runs stay cycle-identical.
// Registering only Sleeper components also asserts that any RunUntil
// predicate driving the engine depends on component state alone (never on
// the raw cycle count), since predicates are not re-evaluated on skipped
// cycles.
type Sleeper interface {
	// NextWakeup returns the earliest cycle ≥ now at which Tick may have
	// an effect. Returning now declines fast-forwarding for this cycle.
	NextWakeup(now int64) int64
}

// Engine drives a set of components with a shared clock.
type Engine struct {
	components []Component
	// idlers caches the components implementing Idler at Register time, so
	// the idle scan does no per-cycle type assertions and IdleCount and
	// RunUntilIdle can never disagree about who is quiescent.
	idlers []namedIdler
	// sleepers caches the components implementing Sleeper; fast-forwarding
	// requires every component to appear here.
	sleepers []Sleeper
	cycle    int64
	skipped  int64
}

type namedIdler struct {
	c Component
	i Idler
}

// ErrCycleLimit is returned by RunUntil and RunUntilIdle when the predicate
// does not become true within the cycle budget. The error text names the
// components still reporting busy, so stalls are diagnosable.
var ErrCycleLimit = errors.New("sim: cycle limit exceeded")

// ErrNonPositiveLimit is returned by RunUntil and RunUntilIdle when the
// cycle budget is zero or negative: such a budget is a caller bug, not a
// run that legitimately ran out of cycles, and no component is ticked.
var ErrNonPositiveLimit = errors.New("sim: non-positive cycle limit")

// New returns an empty engine at cycle 0.
func New() *Engine { return &Engine{} }

// Register appends components to the tick order.
func (e *Engine) Register(cs ...Component) {
	for _, c := range cs {
		e.components = append(e.components, c)
		if id, ok := c.(Idler); ok {
			e.idlers = append(e.idlers, namedIdler{c: c, i: id})
		}
		if sl, ok := c.(Sleeper); ok {
			e.sleepers = append(e.sleepers, sl)
		}
	}
}

// Cycle returns the number of cycles executed so far.
func (e *Engine) Cycle() int64 { return e.cycle }

// Components returns the number of registered components.
func (e *Engine) Components() int { return len(e.components) }

// FastForwarded returns the number of no-op cycles the engine skipped via
// the Sleeper fast-forward path.
func (e *Engine) FastForwarded() int64 { return e.skipped }

// allIdle is the termination predicate of RunUntilIdle: every registered
// component that implements Idler reports Idle.
func (e *Engine) allIdle() bool {
	for _, x := range e.idlers {
		if !x.i.Idle() {
			return false
		}
	}
	return true
}

// IdleCount returns how many registered components currently report Idle;
// components that do not implement Idler count as idle. It is a liveness
// gauge for the observability hub, and shares its scan with RunUntilIdle.
func (e *Engine) IdleCount() int {
	n := len(e.components)
	for _, x := range e.idlers {
		if !x.i.Idle() {
			n--
		}
	}
	return n
}

// busyNameCap bounds how many component names a cycle-limit error carries.
const busyNameCap = 8

// busyNames lists the components still reporting busy, for diagnostics.
func (e *Engine) busyNames() []string {
	var names []string
	for _, x := range e.idlers {
		if !x.i.Idle() {
			if len(names) == busyNameCap {
				names = append(names, "...")
				break
			}
			names = append(names, x.c.Name())
		}
	}
	return names
}

func (e *Engine) limitErr(limit int64) error {
	if busy := e.busyNames(); len(busy) > 0 {
		return fmt.Errorf("%w after %d cycles (busy: %s)",
			ErrCycleLimit, limit, strings.Join(busy, ", "))
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, limit)
}

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for _, c := range e.components {
		c.Tick(e.cycle)
	}
	e.cycle++
}

// Run executes n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// fastForward skips the clock to the earliest component wakeup when every
// registered component implements Sleeper and reports one strictly in the
// future, clamped to deadline so limit accounting matches a stepped run.
// It reports whether any cycles were skipped.
func (e *Engine) fastForward(deadline int64) bool {
	if len(e.sleepers) == 0 || len(e.sleepers) != len(e.components) {
		return false
	}
	wake := deadline
	for _, s := range e.sleepers {
		w := s.NextWakeup(e.cycle)
		if w <= e.cycle {
			return false
		}
		if w < wake {
			wake = w
		}
	}
	if wake <= e.cycle {
		return false
	}
	e.skipped += wake - e.cycle
	e.cycle = wake
	return true
}

// RunUntil steps until done() is true, checking after every cycle. It
// returns ErrNonPositiveLimit without stepping when limit ≤ 0, and
// ErrCycleLimit (naming the still-busy components) if more than limit
// cycles elapse before done() holds.
func (e *Engine) RunUntil(done func() bool, limit int64) error {
	if limit <= 0 {
		return fmt.Errorf("%w: %d", ErrNonPositiveLimit, limit)
	}
	start := e.cycle
	for !done() {
		if e.cycle-start >= limit {
			return e.limitErr(limit)
		}
		if !e.fastForward(start + limit) {
			e.Step()
		}
	}
	return nil
}

// RunUntilIdle steps until every registered component that implements Idler
// reports Idle, checking after every cycle. It shares RunUntil's limit
// semantics and the IdleCount idle scan.
func (e *Engine) RunUntilIdle(limit int64) error {
	return e.RunUntil(e.allIdle, limit)
}

// Func adapts a function to the Component interface, for tests and small
// glue components.
type Func struct {
	ID string
	F  func(cycle int64)
}

// Name implements Component.
func (f Func) Name() string { return f.ID }

// Tick implements Component.
func (f Func) Tick(cycle int64) { f.F(cycle) }
