// Package sim provides the deterministic cycle-driven simulation engine
// used by the Cedar machine model.
//
// Components register with an Engine and are ticked once per cycle in
// registration order. Ticking order is part of the model: producers are
// registered before the fabrics that carry their traffic, so a request can
// traverse at most one hop per cycle and all timing is reproducible.
package sim

import (
	"errors"
	"fmt"
)

// Component is a piece of simulated hardware advanced once per cycle.
type Component interface {
	// Name identifies the component in diagnostics.
	Name() string
	// Tick advances the component by one cycle. cycle is the cycle number
	// being executed, starting at 0.
	Tick(cycle int64)
}

// Idler is implemented by components that can report quiescence; the
// engine's RunUntilIdle uses it to detect completion.
type Idler interface {
	// Idle reports whether the component has no work in flight.
	Idle() bool
}

// Engine drives a set of components with a shared clock.
type Engine struct {
	components []Component
	cycle      int64
}

// ErrCycleLimit is returned by RunUntil and RunUntilIdle when the predicate
// does not become true within the cycle budget.
var ErrCycleLimit = errors.New("sim: cycle limit exceeded")

// New returns an empty engine at cycle 0.
func New() *Engine { return &Engine{} }

// Register appends components to the tick order.
func (e *Engine) Register(cs ...Component) {
	e.components = append(e.components, cs...)
}

// Cycle returns the number of cycles executed so far.
func (e *Engine) Cycle() int64 { return e.cycle }

// Components returns the number of registered components.
func (e *Engine) Components() int { return len(e.components) }

// IdleCount returns how many registered components currently report Idle;
// components that do not implement Idler count as idle. It is a liveness
// gauge for the observability hub.
func (e *Engine) IdleCount() int {
	n := 0
	for _, c := range e.components {
		if id, ok := c.(Idler); !ok || id.Idle() {
			n++
		}
	}
	return n
}

// Step executes exactly one cycle.
func (e *Engine) Step() {
	for _, c := range e.components {
		c.Tick(e.cycle)
	}
	e.cycle++
}

// Run executes n cycles.
func (e *Engine) Run(n int64) {
	for i := int64(0); i < n; i++ {
		e.Step()
	}
}

// RunUntil steps until done() is true, checking after every cycle. It
// returns ErrCycleLimit if more than limit cycles elapse first.
func (e *Engine) RunUntil(done func() bool, limit int64) error {
	start := e.cycle
	for !done() {
		if e.cycle-start >= limit {
			return fmt.Errorf("%w after %d cycles", ErrCycleLimit, limit)
		}
		e.Step()
	}
	return nil
}

// RunUntilIdle steps until every registered component that implements Idler
// reports Idle, checking after every cycle. It returns ErrCycleLimit if more
// than limit cycles elapse first.
func (e *Engine) RunUntilIdle(limit int64) error {
	return e.RunUntil(func() bool {
		for _, c := range e.components {
			if id, ok := c.(Idler); ok && !id.Idle() {
				return false
			}
		}
		return true
	}, limit)
}

// Func adapts a function to the Component interface, for tests and small
// glue components.
type Func struct {
	ID string
	F  func(cycle int64)
}

// Name implements Component.
func (f Func) Name() string { return f.ID }

// Tick implements Component.
func (f Func) Tick(cycle int64) { f.F(cycle) }
