// Package sim provides the deterministic simulation engine used by the
// Cedar machine model.
//
// Components register with an Engine and are ticked in registration
// order. Ticking order is part of the model: producers are registered
// before the fabrics that carry their traffic, so a request can traverse
// at most one hop per cycle and all timing is reproducible.
//
// The engine is an event wheel over that fixed order. Components
// implementing Sleeper post their next effective-tick cycle; within a
// cycle only the components that are due are ticked, and when nothing at
// all is due the clock jumps straight to the earliest pending wake.
// Per-cycle ticking of everything survives only while a non-Sleeper
// component is registered (the busy-region rule: such a component is
// assumed live every cycle) or while SetSteppedMode pins the engine to
// the pure stepped schedule. Because due components still run in
// registration order and a skipped component's Tick is by contract a
// no-op, the schedule of effective ticks — and therefore every
// deterministic artifact — is byte-identical to the stepped run.
//
// The engine can additionally shard the tick order (see RegisterShard
// and shard.go): components registered into shards tick concurrently in
// phase A of each cycle on a bounded worker set, a drain hook applies
// deferred cross-shard effects in fixed shard order, and the remaining
// (hub) components tick serially. Sharding is a pure execution-strategy
// change — artifacts must stay byte-identical to the unsharded order.
package sim

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync/atomic"
)

// Never is the NextWakeup value meaning "no effective tick is scheduled";
// a component returning it sleeps until something calls its Handle.Wake.
const Never = int64(math.MaxInt64)

// Component is a piece of simulated hardware advanced once per cycle.
type Component interface {
	// Name identifies the component in diagnostics.
	Name() string
	// Tick advances the component by one cycle. cycle is the cycle number
	// being executed, starting at 0.
	Tick(cycle int64)
}

// Idler is implemented by components that can report quiescence; the
// engine's RunUntilIdle uses it to detect completion.
type Idler interface {
	// Idle reports whether the component has no work in flight.
	Idle() bool
}

// Sleeper is implemented by components whose Tick is a guaranteed no-op
// until a known future cycle — the scheduling half of the event wheel.
// The engine skips a sleeping component's ticks entirely (and jumps the
// clock when every component sleeps), so NextWakeup must account for all
// state the component can see, including pending work on its input
// ports. Work that arrives while the component sleeps must wake it via
// the Handle returned by Register (producers call Wake on their
// consumers' behalf); a wake that turns out to be early is harmless —
// the component re-arms through the NextWakeup requery after its tick.
// Registering only Sleeper components also asserts that any RunUntil
// predicate driving the engine depends on component state alone (never
// on the raw cycle count), since predicates are not re-evaluated on
// skipped cycles.
type Sleeper interface {
	// NextWakeup returns the earliest cycle ≥ now at which Tick may have
	// an effect, or Never when no future work is visible. Returning now
	// keeps the component ticking every cycle.
	NextWakeup(now int64) int64
}

// steppedMode is the process-wide engine-mode default, captured by New:
// when set, engines tick every component every cycle with no skips or
// jumps — the pure stepped schedule the event wheel must reproduce
// byte-for-byte. It exists for the stepped-vs-event equivalence gates
// and follows the same process-wide-default pattern as the fleet's jobs
// count.
var steppedMode atomic.Bool

// SetSteppedMode sets the process-wide engine mode for engines built
// afterwards: true forces pure per-cycle stepping, false (the default)
// enables the event wheel.
func SetSteppedMode(on bool) { steppedMode.Store(on) }

// SteppedModeEnabled reports the current process-wide default.
func SteppedModeEnabled() bool { return steppedMode.Load() }

// shardsDefault is the process-wide phase-A worker bound, captured by
// New like steppedMode: ≤ 1 (the default) keeps every engine on the
// single-goroutine schedule; N > 1 lets machines built afterwards shard
// their clusters and tick up to N shards concurrently. It follows the
// same process-wide-default pattern as the fleet's jobs count.
var shardsDefault atomic.Int64

// SetShards sets the process-wide intra-run parallelism for engines
// built afterwards: n ≤ 1 (the default) disables sharding, n > 1 bounds
// the phase-A worker set. Sharding is required to be invisible — the
// shards-1-vs-N equivalence gates byte-compare every artifact — so like
// SetSteppedMode this is a strategy switch, never a semantic one.
func SetShards(n int) {
	if n < 1 {
		n = 1
	}
	shardsDefault.Store(int64(n))
}

// Shards reports the current process-wide worker bound (minimum 1).
func Shards() int {
	if n := shardsDefault.Load(); n > 1 {
		return int(n)
	}
	return 1
}

// wakeEntry is one pending (cycle, component) wake in the wheel's heap.
type wakeEntry struct {
	at  int64
	idx int
}

// Engine drives a set of components with a shared clock.
type Engine struct {
	components []Component
	// idlers caches the components implementing Idler at Register time, so
	// the idle scan does no per-cycle type assertions and IdleCount and
	// RunUntilIdle can never disagree about who is quiescent.
	idlers []namedIdler
	// sched holds, per component index, its Sleeper half (nil for plain
	// components, which are ticked every cycle).
	sched []Sleeper
	// wake is the authoritative next-wake cycle per component; entries for
	// plain components are unused. The heaps index the same values with
	// lazy invalidation: an entry is live iff its at equals wake[idx].
	// heaps[0] is the hub heap (and the only heap on an unsharded
	// engine); shard s posts into heaps[s+1], so phase-A workers never
	// contend on a shared heap. The global jump target is the min over
	// all heaps.
	wake  []int64
	heaps [][]wakeEntry
	// plain counts registered non-Sleeper components; while it is nonzero
	// the clock can never jump (the busy-region rule).
	plain   int
	cycle   int64
	skipped int64
	// stepped pins this engine to the pure per-cycle schedule (captured
	// from the process-wide mode at New).
	stepped bool
	// inCycle/pos track the in-progress tick pass so wakes aimed at or
	// before the current cycle land on the earliest cycle the target can
	// still legally execute: the current one if its turn is still ahead,
	// the next one otherwise. On a sharded engine pos covers only the
	// drain + hub passes; phase A uses the per-shard spos instead.
	inCycle bool
	pos     int

	// Sharding (see shard.go). shardHi[s] is one past the last component
	// index of shard s; shards are contiguous from index 0, so shard s
	// spans [shardHi[s-1], shardHi[s]) and every index ≥ shardHi[last] is
	// a hub component. shardOf maps a component index to its shard, or -1
	// for hub components. spos[s] is shard s's in-cycle position during
	// phase A, written and read only by the worker that owns the shard.
	shardHi []int
	shardOf []int
	spos    []int
	// phaseA is true while shard workers are ticking; it routes setWake's
	// floor decision to the per-shard position.
	phaseA bool
	// drain applies deferred cross-shard effects (fabric mailboxes, scope
	// span sinks) between phase A and the hub pass, in fixed shard order.
	drain func(cycle int64)
	// maxWorkers bounds phase-A concurrency; captured from the
	// process-wide SetShards default at New.
	maxWorkers int
	// runner is the live worker pool while a Run/RunUntil is in flight.
	runner *shardRunner
}

type namedIdler struct {
	c Component
	i Idler
}

// ErrCycleLimit is returned by RunUntil and RunUntilIdle when the predicate
// does not become true within the cycle budget. The error text names the
// components still reporting busy, so stalls are diagnosable.
var ErrCycleLimit = errors.New("sim: cycle limit exceeded")

// ErrNonPositiveLimit is returned by RunUntil and RunUntilIdle when the
// cycle budget is zero or negative: such a budget is a caller bug, not a
// run that legitimately ran out of cycles, and no component is ticked.
var ErrNonPositiveLimit = errors.New("sim: non-positive cycle limit")

// New returns an empty engine at cycle 0 in the process-wide mode.
func New() *Engine {
	return &Engine{
		stepped:    steppedMode.Load(),
		maxWorkers: Shards(),
		heaps:      make([][]wakeEntry, 1),
	}
}

// Handle names one registered component and carries wakes to it. The
// zero Handle is valid and inert, so optional wiring can stay nil-free.
type Handle struct {
	e   *Engine
	idx int
}

// Wake schedules the handle's component to tick no later than cycle at
// (clamped to the earliest cycle it can still execute). It is how
// producers announce cross-component work — a packet offered to a
// fabric, a reply pushed to a port — to consumers that may be sleeping.
// Wakes are monotone: they only ever move a component's next tick
// earlier, so a spurious Wake costs one no-op tick and nothing else.
func (h Handle) Wake(at int64) {
	e := h.e
	if e == nil || e.stepped || e.sched[h.idx] == nil {
		return
	}
	if at < e.wake[h.idx] {
		e.setWake(h.idx, at)
	}
}

// setWake records component i's next wake as at (clamping to the
// earliest legally executable cycle) and indexes it in the owning heap.
// During phase A the floor comes from the owning shard's position —
// same-shard producers are the only legal phase-A wakers, so the check
// mirrors the sequential one shard-locally; during the drain and hub
// passes the global pos covers every already-ticked component.
func (e *Engine) setWake(i int, at int64) {
	floor := e.cycle
	if e.inCycle {
		if e.phaseA {
			if s := e.shardOf[i]; s >= 0 && i <= e.spos[s] {
				floor = e.cycle + 1
			}
		} else if i <= e.pos {
			floor = e.cycle + 1
		}
	}
	if at < floor {
		at = floor
	}
	e.wake[i] = at
	if at != Never {
		h := 0
		if e.shardOf != nil {
			h = e.shardOf[i] + 1
		}
		e.heaps[h] = append(e.heaps[h], wakeEntry{at: at, idx: i})
		e.siftUp(h, len(e.heaps[h])-1)
	}
}

// siftUp restores heap h's order after an append.
func (e *Engine) siftUp(h, i int) {
	hp := e.heaps[h]
	for i > 0 {
		p := (i - 1) / 2
		if hp[p].at <= hp[i].at {
			return
		}
		hp[p], hp[i] = hp[i], hp[p]
		i = p
	}
}

// popHeap removes heap h's minimum entry.
func (e *Engine) popHeap(h int) {
	hp := e.heaps[h]
	n := len(hp) - 1
	hp[0] = hp[n]
	e.heaps[h] = hp[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && hp[l].at < hp[small].at {
			small = l
		}
		if r < n && hp[r].at < hp[small].at {
			small = r
		}
		if small == i {
			return
		}
		hp[i], hp[small] = hp[small], hp[i]
		i = small
	}
}

// nextWakeOf returns heap h's earliest live wake cycle, discarding stale
// entries (whose at no longer matches the component's authoritative
// wake) along the way.
func (e *Engine) nextWakeOf(h int) int64 {
	for len(e.heaps[h]) > 0 {
		top := e.heaps[h][0]
		if top.at == e.wake[top.idx] {
			return top.at
		}
		e.popHeap(h)
	}
	return Never
}

// nextWake returns the earliest live wake cycle across every heap — on a
// sharded engine the global jump target is the min over the per-shard
// wake heaps and the hub heap, so a shard whose components all sleep
// never blocks the jump. Never means no component has a pending wake.
func (e *Engine) nextWake() int64 {
	w := Never
	for h := range e.heaps {
		if hw := e.nextWakeOf(h); hw < w {
			w = hw
		}
	}
	return w
}

// Register appends components to the tick order and returns their
// handles, one per component, for wake wiring. Newly registered
// components are due immediately; their first NextWakeup requery (at the
// next run entry) installs the real schedule, so registration order and
// wiring order never race. On a sharded engine, Register places
// components in the hub: they tick serially after every shard's phase-A
// pass, so fabrics, global memory, and samplers observe a fully drained
// machine each cycle.
func (e *Engine) Register(cs ...Component) []Handle {
	hs := make([]Handle, len(cs))
	for k, c := range cs {
		i := len(e.components)
		e.components = append(e.components, c)
		if id, ok := c.(Idler); ok {
			e.idlers = append(e.idlers, namedIdler{c: c, i: id})
		}
		var s Sleeper
		if sl, ok := c.(Sleeper); ok {
			s = sl
		} else {
			e.plain++
		}
		e.sched = append(e.sched, s)
		e.wake = append(e.wake, e.cycle)
		if e.shardOf != nil {
			e.shardOf = append(e.shardOf, -1)
		}
		hs[k] = Handle{e: e, idx: i}
	}
	return hs
}

// pollAll re-queries every Sleeper's schedule against the current cycle.
// It runs at every public run entry point, so state changes made between
// runs — a controller assigned, a sampler attached — are picked up
// without requiring the mutator to know about wakes.
func (e *Engine) pollAll() {
	if e.stepped {
		return
	}
	for i, s := range e.sched {
		if s != nil {
			e.setWake(i, s.NextWakeup(e.cycle))
		}
	}
}

// Cycle returns the number of cycles executed so far.
func (e *Engine) Cycle() int64 { return e.cycle }

// Components returns the number of registered components.
func (e *Engine) Components() int { return len(e.components) }

// FastForwarded returns the number of cycles the engine jumped over
// entirely — cycles in which no component was due, so no Tick ran.
// Cycles where only some components ticked count as executed.
func (e *Engine) FastForwarded() int64 { return e.skipped }

// AwakeComponents names the components whose declared next wake is at or
// before the current cycle — the ones that would tick now, i.e. the set
// keeping the clock from jumping. Plain (non-Sleeper) components are
// always awake. Diagnostic: it re-queries every Sleeper, so call it
// between runs, not per cycle.
func (e *Engine) AwakeComponents() []string {
	var names []string
	for i, c := range e.components {
		s := e.sched[i]
		if s == nil || e.stepped || s.NextWakeup(e.cycle) <= e.cycle {
			names = append(names, c.Name())
		}
	}
	return names
}

// allIdle is the termination predicate of RunUntilIdle: every registered
// component that implements Idler reports Idle.
func (e *Engine) allIdle() bool {
	for _, x := range e.idlers {
		if !x.i.Idle() {
			return false
		}
	}
	return true
}

// IdleCount returns how many registered components currently report Idle;
// components that do not implement Idler count as idle. It is a liveness
// gauge for the observability hub, and shares its scan with RunUntilIdle.
func (e *Engine) IdleCount() int {
	n := len(e.components)
	for _, x := range e.idlers {
		if !x.i.Idle() {
			n--
		}
	}
	return n
}

// busyNameCap bounds how many component names a cycle-limit error carries.
const busyNameCap = 8

// busyNames lists the components still reporting busy, for diagnostics.
func (e *Engine) busyNames() []string {
	var names []string
	for _, x := range e.idlers {
		if !x.i.Idle() {
			if len(names) == busyNameCap {
				names = append(names, "...")
				break
			}
			names = append(names, x.c.Name())
		}
	}
	return names
}

func (e *Engine) limitErr(limit int64) error {
	if busy := e.busyNames(); len(busy) > 0 {
		return fmt.Errorf("%w after %d cycles (busy: %s)",
			ErrCycleLimit, limit, strings.Join(busy, ", "))
	}
	return fmt.Errorf("%w after %d cycles", ErrCycleLimit, limit)
}

// stepOnce executes the current cycle: every plain component, and every
// Sleeper whose wake is due. Dueness is evaluated when the iteration
// reaches the component, so a producer ticking earlier in the pass can
// still hand a later consumer same-cycle work via Wake. After a due
// Sleeper ticks, its schedule is re-queried for the next cycle.
func (e *Engine) stepOnce() {
	if len(e.shardHi) > 0 {
		e.stepSharded()
		return
	}
	c := e.cycle
	e.inCycle = true
	for i, comp := range e.components {
		e.pos = i
		s := e.sched[i]
		if s == nil || e.stepped || e.wake[i] <= c {
			comp.Tick(c)
			if s != nil && !e.stepped {
				e.setWake(i, s.NextWakeup(c+1))
			}
		}
	}
	e.inCycle = false
	e.cycle = c + 1
}

// tryJump advances the clock to the earliest pending wake when no
// component is due this cycle, clamped to deadline so limit accounting
// matches a stepped run, and reports whether it moved. Jumps are what
// FastForwarded counts: cycles in which nothing at all ran.
func (e *Engine) tryJump(deadline int64) bool {
	if e.stepped || e.plain > 0 {
		return false
	}
	w := e.nextWake()
	if w <= e.cycle {
		return false
	}
	t := w
	if t > deadline {
		t = deadline
	}
	if t <= e.cycle {
		return false
	}
	e.skipped += t - e.cycle
	e.cycle = t
	return true
}

// Step executes exactly one cycle.
func (e *Engine) Step() {
	e.pollAll()
	e.stepOnce()
}

// Run advances the clock by n cycles, executing due ticks and jumping
// over cycles where nothing is due.
func (e *Engine) Run(n int64) {
	if n <= 0 {
		return
	}
	stop := e.startWorkers()
	defer stop()
	e.pollAll()
	deadline := e.cycle + n
	for e.cycle < deadline {
		if !e.tryJump(deadline) {
			e.stepOnce()
		}
	}
}

// RunUntil advances until done() is true, checking after every executed
// cycle and after every jump. It returns ErrNonPositiveLimit without
// stepping when limit ≤ 0, and ErrCycleLimit (naming the still-busy
// components) if more than limit cycles elapse before done() holds.
func (e *Engine) RunUntil(done func() bool, limit int64) error {
	if limit <= 0 {
		return fmt.Errorf("%w: %d", ErrNonPositiveLimit, limit)
	}
	stop := e.startWorkers()
	defer stop()
	e.pollAll()
	start := e.cycle
	for !done() {
		if e.cycle-start >= limit {
			return e.limitErr(limit)
		}
		if !e.tryJump(start + limit) {
			e.stepOnce()
		}
	}
	return nil
}

// RunUntilIdle steps until every registered component that implements Idler
// reports Idle, checking after every cycle. It shares RunUntil's limit
// semantics and the IdleCount idle scan.
func (e *Engine) RunUntilIdle(limit int64) error {
	return e.RunUntil(e.allIdle, limit)
}

// Func adapts a function to the Component interface, for tests and small
// glue components.
type Func struct {
	ID string
	F  func(cycle int64)
}

// Name implements Component.
func (f Func) Name() string { return f.ID }

// Tick implements Component.
func (f Func) Tick(cycle int64) { f.F(cycle) }

// SchedFunc adapts a pair of functions to a scheduling component: F
// ticks, W reports the next wakeup. It is the Sleeper-aware analogue of
// Func for glue components that aggregate other parts' schedules.
type SchedFunc struct {
	ID string
	F  func(cycle int64)
	W  func(now int64) int64
}

// Name implements Component.
func (f SchedFunc) Name() string { return f.ID }

// Tick implements Component.
func (f SchedFunc) Tick(cycle int64) { f.F(cycle) }

// NextWakeup implements Sleeper.
func (f SchedFunc) NextWakeup(now int64) int64 { return f.W(now) }
