// Sharded execution: the intra-run parallel half of the engine.
//
// A sharded engine partitions the tick order into contiguous shards
// (one per cluster, in the Cedar machine) followed by a hub region
// (fabrics, global memory, samplers). Each cycle then runs as two
// deterministic phases:
//
//	phase A — every shard ticks its components, in index order within
//	          the shard, concurrently on a bounded worker set;
//	drain   — the drain hook applies effects shard components deferred
//	          (fabric submissions, scope spans) in fixed shard order;
//	hub     — hub components tick serially in index order, exactly as
//	          on an unsharded engine.
//
// Determinism does not depend on the schedule: shards own disjoint
// state, cross-shard traffic is deferred into per-shard ordered
// mailboxes replayed by the drain hook, and the drain order equals the
// order a sequential pass would have produced (shards are registered
// cluster-major and each mailbox preserves offer order). The worker
// count therefore changes wall time only — `-shards 1` and `-shards N`
// artifacts are byte-compared by the equivalence gates.
//
// The event wheel composes: each shard posts wakes into its own heap,
// and the global jump target is the min over all heaps, so a shard
// whose components all sleep never blocks the jump (see nextWake).
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// RegisterShard appends components to the tick order inside the given
// shard and returns their handles. Shards must be registered in order
// (shard 0 first, each new shard index exactly one past the last) and
// before any hub component: once plain Register has been called on a
// sharded engine, the shard map is frozen. Panics if shards are
// registered out of order or after a hub component — both are wiring
// bugs in machine construction, never data-dependent. Within a cycle, a
// shard's components may only touch shard-owned state and
// deferred-submission APIs; the cedarvet shardsafe analyzer audits that
// contract.
func (e *Engine) RegisterShard(shard int, cs ...Component) []Handle {
	if len(e.components) > e.hubLo() {
		panic("sim: RegisterShard after hub components were registered")
	}
	switch {
	case shard == len(e.shardHi): // opening a new shard
		if e.shardOf == nil {
			e.shardOf = []int{}
		}
		e.shardHi = append(e.shardHi, len(e.components))
		e.spos = append(e.spos, 0)
		e.heaps = append(e.heaps, nil)
	case shard == len(e.shardHi)-1: // extending the current shard
	default:
		panic(fmt.Sprintf("sim: RegisterShard(%d) out of order (have %d shards)", shard, len(e.shardHi)))
	}
	hs := e.Register(cs...)
	// Register marked them as hub components; claim them for the shard.
	for _, h := range hs {
		e.shardOf[h.idx] = shard
	}
	e.shardHi[shard] = len(e.components)
	return hs
}

// SetDrain installs the drain hook, called between phase A and the hub
// pass of every sharded cycle with the executing cycle number. The hook
// replays deferred cross-shard effects in fixed shard order; wakes it
// issues land on the earliest legal cycle (hub components can still
// tick this cycle, shard components next cycle).
func (e *Engine) SetDrain(f func(cycle int64)) { e.drain = f }

// NumShards reports how many shards have been registered (0 on an
// unsharded engine).
func (e *Engine) NumShards() int { return len(e.shardHi) }

// Workers reports the effective phase-A worker count: the process-wide
// bound captured at New, clamped to the shard count. 1 means phase A
// runs on the engine's own goroutine.
func (e *Engine) Workers() int {
	if w := min(e.maxWorkers, len(e.shardHi)); w > 1 {
		return w
	}
	return 1
}

// hubLo returns the index of the first hub component — one past the
// last sharded component, 0 on an unsharded engine.
func (e *Engine) hubLo() int {
	if n := len(e.shardHi); n > 0 {
		return e.shardHi[n-1]
	}
	return 0
}

// tickShard executes shard s's slice of the current cycle: every due
// component in index order, with the same dueness and requery rules as
// the sequential pass. It runs on whichever worker claimed the shard;
// all state it touches (component state, wake entries, the shard heap,
// spos) is owned by the shard, so the claim schedule is invisible.
func (e *Engine) tickShard(s int, c int64) {
	lo := 0
	if s > 0 {
		lo = e.shardHi[s-1]
	}
	for i := lo; i < e.shardHi[s]; i++ {
		e.spos[s] = i
		sc := e.sched[i]
		if sc == nil || e.stepped || e.wake[i] <= c {
			e.components[i].Tick(c)
			if sc != nil && !e.stepped {
				e.setWake(i, sc.NextWakeup(c+1))
			}
		}
	}
}

// stepSharded executes one cycle of a sharded engine: phase A over all
// shards (parallel when a runner is live, serial otherwise — the
// results are identical), the drain hook, then the serial hub pass.
func (e *Engine) stepSharded() {
	c := e.cycle
	e.inCycle = true
	e.phaseA = true
	if e.runner != nil {
		e.runner.runCycle(c)
	} else {
		for s := range e.shardHi {
			e.tickShard(s, c)
		}
	}
	e.phaseA = false
	// Drain-phase wakes: every shard component has ticked (floor is the
	// next cycle), every hub component is still ahead (floor is this
	// cycle) — exactly the floors a sequential pass positioned between
	// the two regions would compute.
	e.pos = e.hubLo() - 1
	if e.drain != nil {
		e.drain(c)
	}
	for i := e.hubLo(); i < len(e.components); i++ {
		e.pos = i
		s := e.sched[i]
		if s == nil || e.stepped || e.wake[i] <= c {
			e.components[i].Tick(c)
			if s != nil && !e.stepped {
				e.setWake(i, s.NextWakeup(c+1))
			}
		}
	}
	e.inCycle = false
	e.cycle = c + 1
}

// startWorkers spins up the phase-A worker pool for the duration of one
// run entry and returns the matching stop function. On an unsharded
// engine, with a single effective worker, or when a pool is already
// live (a nested run), it is a no-op. The stop function panics if a
// worker recorded a component panic that runCycle has not yet rethrown
// — the original panic, resurfaced on the engine goroutine.
func (e *Engine) startWorkers() func() {
	w := e.Workers()
	if w <= 1 || e.runner != nil {
		return func() {}
	}
	r := &shardRunner{e: e, workers: w - 1}
	for i := 0; i < r.workers; i++ {
		r.wg.Add(1)
		//lint:allow nondeterminism phase-A pool: shards own disjoint state and the drain replays effects in fixed order, so the schedule cannot reach the model (the -race byte-equality gates prove it)
		go r.work()
	}
	e.runner = r
	return func() {
		r.stop.Store(true)
		r.wg.Wait()
		e.runner = nil
		if p := r.firstPanic(); p != nil {
			panic(p)
		}
	}
}

// shardRunner is the phase-A worker pool: workers-many goroutines plus
// the engine goroutine claim shards from an atomic counter each cycle.
// The release counter is the cycle barrier's opening edge and arrived
// its closing edge; both are sync/atomic operations, so the race
// detector sees the happens-before chain (worker writes → arrived.Add →
// engine load → next release.Add → worker load) and any component state
// crossing a shard boundary outside it is reported as the data race it
// is — that is what the -race equivalence gates exercise.
type shardRunner struct {
	e       *Engine
	workers int // goroutines beyond the engine's own

	cycle   int64        // the cycle being executed; written before release
	release atomic.Int64 // incremented once per cycle to start phase A
	claim   atomic.Int64 // next unclaimed shard index
	arrived atomic.Int64 // workers that finished claiming this cycle
	stop    atomic.Bool
	wg      sync.WaitGroup

	mu    sync.Mutex
	panic any // first recovered phase-A panic, rethrown by the engine
}

// runCycle executes phase A for cycle c across the pool. It returns
// only after every worker has left its claim loop, so no stale claim
// can leak into the next cycle. Panics if a component panicked during
// phase A: the recorded panic is rethrown on the engine goroutine.
func (r *shardRunner) runCycle(c int64) {
	r.cycle = c
	r.claim.Store(0)
	r.arrived.Store(0)
	r.release.Add(1)
	r.claimShards(c)
	for r.arrived.Load() < int64(r.workers) {
		runtime.Gosched()
	}
	if p := r.firstPanic(); p != nil {
		panic(p)
	}
}

// work is one pool goroutine: wait for a cycle release, claim shards
// until none remain, check in, repeat until stopped. Stops are only
// requested between cycles, so a stopping worker is never mid-shard.
func (r *shardRunner) work() {
	defer r.wg.Done()
	seen := int64(0)
	for {
		for r.release.Load() == seen {
			if r.stop.Load() {
				return
			}
			runtime.Gosched()
		}
		seen++
		r.claimShards(r.cycle)
		r.arrived.Add(1)
	}
}

// claimShards ticks shards off the shared counter until all are taken.
// A panicking component poisons the run, not the pool: the panic is
// recorded and rethrown on the engine goroutine after the barrier.
func (r *shardRunner) claimShards(c int64) {
	n := int64(len(r.e.shardHi))
	for {
		s := r.claim.Add(1) - 1
		if s >= n {
			return
		}
		r.tickOne(int(s), c)
	}
}

func (r *shardRunner) tickOne(s int, c int64) {
	defer r.capture()
	r.e.tickShard(s, c)
}

// capture is tickOne's deferred recovery: it records the first phase-A
// panic for the engine goroutine to rethrow. A method rather than a
// closure so the per-shard-per-cycle defer stays allocation-free.
func (r *shardRunner) capture() {
	if p := recover(); p != nil {
		r.mu.Lock()
		if r.panic == nil {
			r.panic = p
		}
		r.mu.Unlock()
	}
}

func (r *shardRunner) firstPanic() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.panic
}
