package perfmon

// Sampler is the software analogue of hooking the hardware histogrammers
// to "any other accessible hardware signal": every Interval cycles it
// reads a set of probes and adds each value to that probe's histogram.
// The paper's monitor cascaded 64K×32-bit counter units; a Sampler uses
// one Histogram per probe.
//
// Register it with the simulation engine after the components it probes.
type Sampler struct {
	Interval int64
	probes   []probe
}

type probe struct {
	name string
	read func() int
	hist *Histogram
}

// NewSampler builds a sampler with the given period (≥1).
func NewSampler(interval int64) *Sampler {
	if interval < 1 {
		interval = 1
	}
	return &Sampler{Interval: interval}
}

// Probe attaches a signal: read() is sampled every Interval cycles into a
// fresh histogram, which is returned for analysis.
func (s *Sampler) Probe(name string, read func() int) *Histogram {
	h := NewHistogram(1)
	s.probes = append(s.probes, probe{name: name, read: read, hist: h})
	return h
}

// Name implements sim.Component.
func (s *Sampler) Name() string { return "perfmon-sampler" }

// Tick implements sim.Component.
func (s *Sampler) Tick(cycle int64) {
	if cycle%s.Interval != 0 {
		return
	}
	for i := range s.probes {
		s.probes[i].hist.Add(s.probes[i].read())
	}
}

// NextWakeup implements sim.Sleeper: between sample boundaries Tick is a
// no-op, so the engine may fast-forward to the next multiple of Interval.
func (s *Sampler) NextWakeup(now int64) int64 {
	if now%s.Interval == 0 {
		return now
	}
	return now - now%s.Interval + s.Interval
}

// Histogram returns the histogram for a named probe, or nil.
func (s *Sampler) Histogram(name string) *Histogram {
	for i := range s.probes {
		if s.probes[i].name == name {
			return s.probes[i].hist
		}
	}
	return nil
}

// Probes returns the probe names in registration order.
func (s *Sampler) Probes() []string {
	names := make([]string, len(s.probes))
	for i := range s.probes {
		names[i] = s.probes[i].name
	}
	return names
}
