package perfmon

import "testing"

func TestSamplerSamplesAtInterval(t *testing.T) {
	s := NewSampler(10)
	v := 0
	h := s.Probe("v", func() int { return v })
	for cy := int64(0); cy < 100; cy++ {
		v = int(cy)
		s.Tick(cy)
	}
	if got := h.Total(); got != 10 {
		t.Fatalf("%d samples, want 10", got)
	}
	// Samples at cycles 0, 10, ..., 90: mean bin = 45.
	if m := h.Mean(); m != 45 {
		t.Errorf("mean %v, want 45", m)
	}
}

func TestSamplerMultipleProbes(t *testing.T) {
	s := NewSampler(1)
	a := s.Probe("a", func() int { return 1 })
	b := s.Probe("b", func() int { return 2 })
	s.Tick(0)
	if a.Count(1) != 1 || b.Count(2) != 1 {
		t.Error("probes not independent")
	}
	if s.Histogram("a") != a || s.Histogram("b") != b {
		t.Error("lookup by name broken")
	}
	if s.Histogram("c") != nil {
		t.Error("unknown probe should be nil")
	}
	names := s.Probes()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("probe names %v", names)
	}
}

func TestSamplerIntervalClamped(t *testing.T) {
	s := NewSampler(0)
	if s.Interval != 1 {
		t.Errorf("interval %d, want clamp to 1", s.Interval)
	}
}

func TestSamplerIntervalLongerThanRun(t *testing.T) {
	// Only cycle 0 matches when the interval exceeds the run length, so
	// each probe records exactly one sample.
	s := NewSampler(1000)
	h := s.Probe("v", func() int { return 5 })
	for cy := int64(0); cy < 100; cy++ {
		s.Tick(cy)
	}
	if got := h.Total(); got != 1 {
		t.Fatalf("%d samples, want 1 (only cycle 0)", got)
	}
	if h.Count(5) != 1 {
		t.Errorf("sample landed in the wrong bin")
	}
}
