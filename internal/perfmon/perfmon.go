// Package perfmon is the software analogue of Cedar's external performance
// monitoring hardware: time-stamped event tracers (1M events each,
// cascadable) and histogrammers (64K 32-bit counters), plus the derived
// statistics the paper reports — first-word latency and interarrival time
// of prefetch blocks (Table 2) and MFLOPS accounting.
//
// Programs can also post software events, mirroring the paper's note that
// software event tracing posts events to the performance hardware.
package perfmon

import (
	"fmt"
	"math"
	"sort"
)

// Event is one time-stamped trace record.
type Event struct {
	Cycle int64
	Kind  uint16
	CE    int32
	Value int64
}

// TracerCap is the capacity of one hardware event tracer.
const TracerCap = 1 << 20

// Tracer collects time-stamped events. When full it drops new events and
// counts them, like the hardware filling up; cascade by raising units.
type Tracer struct {
	events  []Event
	units   int
	dropped int64
}

// NewTracer builds a tracer cascaded from n hardware units (n ≥ 1).
func NewTracer(units int) *Tracer {
	if units < 1 {
		units = 1
	}
	return &Tracer{units: units}
}

// Post records an event if capacity remains.
func (t *Tracer) Post(e Event) {
	if len(t.events) >= t.units*TracerCap {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// Events returns the captured trace.
func (t *Tracer) Events() []Event { return t.events }

// Dropped returns the number of events lost to capacity.
func (t *Tracer) Dropped() int64 { return t.dropped }

// HistogramBins is the counter count of one histogrammer unit.
const HistogramBins = 1 << 16

// Histogram is a 64K-counter histogrammer. Out-of-range bins clamp to the
// last counter (an overflow bucket), and counters saturate at 2³²-1 like
// the 32-bit hardware counters.
type Histogram struct {
	bins []uint32
}

// NewHistogram builds a histogrammer cascaded from n units.
func NewHistogram(units int) *Histogram {
	if units < 1 {
		units = 1
	}
	return &Histogram{bins: make([]uint32, units*HistogramBins)}
}

// Add increments the counter for bin.
func (h *Histogram) Add(bin int) {
	if bin < 0 {
		bin = 0
	}
	if bin >= len(h.bins) {
		bin = len(h.bins) - 1
	}
	if h.bins[bin] != math.MaxUint32 {
		h.bins[bin]++
	}
}

// Count returns the value of one counter.
func (h *Histogram) Count(bin int) uint32 {
	if bin < 0 || bin >= len(h.bins) {
		return 0
	}
	return h.bins[bin]
}

// Total returns the sum over all counters.
func (h *Histogram) Total() int64 {
	var s int64
	for _, v := range h.bins {
		s += int64(v)
	}
	return s
}

// Mean returns the counter-weighted mean bin.
func (h *Histogram) Mean() float64 {
	var s, n int64
	for b, v := range h.bins {
		s += int64(b) * int64(v)
		n += int64(v)
	}
	if n == 0 {
		return 0
	}
	return float64(s) / float64(n)
}

// Percentile returns the smallest bin at or below which frac of the mass
// lies (frac in [0,1]).
func (h *Histogram) Percentile(frac float64) int {
	total := h.Total()
	if total == 0 {
		return 0
	}
	// Clamp the rank into [0, total-1]: frac=1 must select the largest
	// occupied bin, not fall through to the last bin of the array.
	target := int64(frac * float64(total))
	if target >= total {
		target = total - 1
	}
	if target < 0 {
		target = 0
	}
	var cum int64
	for b, v := range h.bins {
		cum += int64(v)
		if cum > target {
			return b
		}
	}
	return len(h.bins) - 1
}

// BlockStats aggregates prefetch-block observations the way the paper's
// Table 2 reports them: first-word Latency (cycles from the first address
// issued to the forward network until the first datum returns) and
// Interarrival time between the remaining words of the block.
type BlockStats struct {
	latency  *Histogram
	inter    *Histogram
	blocks   int64
	words    int64
	latSum   int64
	interSum int64
	interN   int64
	latMin   int64
	latMax   int64
}

// NewBlockStats builds an aggregator.
func NewBlockStats() *BlockStats {
	return &BlockStats{
		latency: NewHistogram(1),
		inter:   NewHistogram(1),
		latMin:  math.MaxInt64,
	}
}

// Observe records one block: the issue cycle of its first address and the
// arrival cycles of its words. It is directly pluggable as a
// prefetch.BlockObserver.
func (b *BlockStats) Observe(firstIssue int64, arrivals []int64) {
	if len(arrivals) == 0 {
		return
	}
	sorted := make([]int64, len(arrivals))
	copy(sorted, arrivals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	lat := sorted[0] - firstIssue
	b.blocks++
	b.words += int64(len(sorted))
	b.latSum += lat
	b.latency.Add(int(lat))
	if lat < b.latMin {
		b.latMin = lat
	}
	if lat > b.latMax {
		b.latMax = lat
	}
	for i := 1; i < len(sorted); i++ {
		d := sorted[i] - sorted[i-1]
		b.interSum += d
		b.interN++
		b.inter.Add(int(d))
	}
}

// Blocks returns the number of observed blocks.
func (b *BlockStats) Blocks() int64 { return b.blocks }

// MeanLatency returns the average first-word latency in cycles.
func (b *BlockStats) MeanLatency() float64 {
	if b.blocks == 0 {
		return 0
	}
	return float64(b.latSum) / float64(b.blocks)
}

// MinLatency returns the smallest observed first-word latency.
func (b *BlockStats) MinLatency() int64 {
	if b.blocks == 0 {
		return 0
	}
	return b.latMin
}

// MaxLatency returns the largest observed first-word latency.
func (b *BlockStats) MaxLatency() int64 { return b.latMax }

// MeanInterarrival returns the average gap between successive words.
func (b *BlockStats) MeanInterarrival() float64 {
	if b.interN == 0 {
		return 0
	}
	return float64(b.interSum) / float64(b.interN)
}

// LatencyHistogram exposes the latency histogrammer.
func (b *BlockStats) LatencyHistogram() *Histogram { return b.latency }

// InterarrivalHistogram exposes the interarrival histogrammer.
func (b *BlockStats) InterarrivalHistogram() *Histogram { return b.inter }

// String formats the Table 2 pair.
func (b *BlockStats) String() string {
	return fmt.Sprintf("latency %.1f interarrival %.2f (%d blocks)",
		b.MeanLatency(), b.MeanInterarrival(), b.blocks)
}
