package perfmon

import (
	"testing"
	"testing/quick"
)

func TestTracerCapacityAndDrops(t *testing.T) {
	tr := NewTracer(1)
	for i := 0; i < TracerCap+10; i++ {
		tr.Post(Event{Cycle: int64(i)})
	}
	if len(tr.Events()) != TracerCap {
		t.Errorf("captured %d, want %d", len(tr.Events()), TracerCap)
	}
	if tr.Dropped() != 10 {
		t.Errorf("dropped %d, want 10", tr.Dropped())
	}
}

func TestTracerCascade(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < TracerCap+10; i++ {
		tr.Post(Event{})
	}
	if tr.Dropped() != 0 {
		t.Error("cascaded tracer dropped events below combined capacity")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1)
	h.Add(5)
	h.Add(5)
	h.Add(7)
	if h.Count(5) != 2 || h.Count(7) != 1 {
		t.Errorf("counts: %d,%d", h.Count(5), h.Count(7))
	}
	if h.Total() != 3 {
		t.Errorf("total %d", h.Total())
	}
	want := (5.0*2 + 7) / 3
	if got := h.Mean(); got != want {
		t.Errorf("mean %v, want %v", got, want)
	}
}

func TestHistogramClampsAndIgnoresBadBins(t *testing.T) {
	h := NewHistogram(1)
	h.Add(-5)
	h.Add(HistogramBins + 100)
	if h.Count(0) != 1 {
		t.Error("negative bin should clamp to 0")
	}
	if h.Count(HistogramBins-1) != 1 {
		t.Error("overflow bin should clamp to last counter")
	}
	if h.Count(-1) != 0 || h.Count(1<<30) != 0 {
		t.Error("out-of-range Count should be 0")
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1)
	for i := 0; i < 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Errorf("median %d, want 50", p)
	}
	if p := h.Percentile(0); p != 0 {
		t.Errorf("p0 = %d, want 0", p)
	}
}

func TestBlockStats(t *testing.T) {
	b := NewBlockStats()
	// Block 1: issued at 10, words at 18, 19, 20 (lat 8, inter 1, 1).
	b.Observe(10, []int64{18, 19, 20})
	// Block 2: issued at 100, words out of order: 120, 110, 114
	// (lat 10, inter 4, 6 after sorting).
	b.Observe(100, []int64{120, 110, 114})
	if b.Blocks() != 2 {
		t.Fatalf("blocks = %d", b.Blocks())
	}
	if got := b.MeanLatency(); got != 9 {
		t.Errorf("mean latency %v, want 9", got)
	}
	if got := b.MinLatency(); got != 8 {
		t.Errorf("min latency %v, want 8", got)
	}
	if got := b.MaxLatency(); got != 10 {
		t.Errorf("max latency %v, want 10", got)
	}
	if got := b.MeanInterarrival(); got != 3 {
		t.Errorf("mean interarrival %v, want (1+1+4+6)/4 = 3", got)
	}
}

func TestBlockStatsEmpty(t *testing.T) {
	b := NewBlockStats()
	b.Observe(5, nil)
	if b.Blocks() != 0 || b.MeanLatency() != 0 || b.MeanInterarrival() != 0 || b.MinLatency() != 0 {
		t.Error("empty observation should be ignored")
	}
}

func TestBlockStatsSortInvariantProperty(t *testing.T) {
	// Interarrival sum == span of sorted arrivals regardless of order.
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		arr := make([]int64, len(raw))
		for i, v := range raw {
			arr[i] = int64(v) + 100
		}
		b := NewBlockStats()
		b.Observe(0, arr)
		min, max := arr[0], arr[0]
		for _, v := range arr {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		wantMean := float64(max-min) / float64(len(arr)-1)
		got := b.MeanInterarrival()
		diff := got - wantMean
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentileExtremes(t *testing.T) {
	// Regression: frac=1 must return the largest occupied bin, not fall
	// through to the overflow bucket at the end of the bin array.
	h := NewHistogram(1)
	for i := 0; i < 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(1.0); p != 99 {
		t.Errorf("p100 = %d, want 99 (largest occupied bin)", p)
	}

	// All mass in a single bin: every percentile is that bin.
	one := NewHistogram(1)
	for i := 0; i < 7; i++ {
		one.Add(42)
	}
	for _, frac := range []float64{0, 0.5, 1} {
		if p := one.Percentile(frac); p != 42 {
			t.Errorf("single-bin p%.0f = %d, want 42", 100*frac, p)
		}
	}

	// Empty histogram: defined as 0 at any fraction.
	if p := NewHistogram(1).Percentile(1); p != 0 {
		t.Errorf("empty p100 = %d, want 0", p)
	}
}
