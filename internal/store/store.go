// Package store is the durable second level of the run cache: an
// on-disk, content-addressed, size-bounded blob store keyed by the fleet
// run-cache keys (sha256 over every input that affects a result). It
// implements fleet.SecondLevel, so attaching a Store to a fleet.Cache
// turns the in-process memo into a two-level lookup — memory, then disk,
// then simulate — and cedarserve's cached responses survive process
// restarts.
//
// Layout under the root directory:
//
//	index.json        global index: key → blob file, size, sha256, LRU seq
//	blobs/<sha>       one file per blob, named by sha256 of the KEY
//	tmp-*             in-flight writes (swept at Open)
//
// Durability contract:
//
//   - Writes are crash-safe: blob bytes and the index are each written to
//     a temp file in the same directory and renamed into place, so a
//     crash leaves either the old state or the new state, never a torn
//     file. Orphans (a blob whose index write never landed, or a leftover
//     tmp- file) are swept at Open.
//   - Reads are verified: Get recomputes the blob's sha256 and checks its
//     size against the index; any mismatch — truncation, bit rot, manual
//     editing — drops the entry and reads as a miss, so a corrupt blob
//     degrades to a re-simulation, never a wrong answer or a crash.
//   - Eviction is LRU over a size budget: Put evicts least-recently-used
//     entries until the store fits. Recency is persisted on writes; a
//     crash loses recency (not data), leaving the order approximate.
//
// The store is single-writer: one process (the daemon) owns a directory.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"cedar/internal/scope"
)

// SchemaVersion identifies the index wire format.
const SchemaVersion = 1

const (
	indexFile = "index.json"
	blobDir   = "blobs"
	tmpPrefix = "tmp-"
)

// Store is a durable content-addressed blob store. Methods are safe for
// concurrent use; disk IO runs under the store lock (blobs are small —
// serialized experiment artifacts — and correctness beats throughput
// here).
type Store struct {
	mu      sync.Mutex
	dir     string
	max     int64 // byte budget; 0 = unbounded
	seq     int64 // monotonically increasing access stamp
	entries map[string]*entry
	bytes   int64
	stats   Stats
}

// entry is the in-memory index record for one blob.
type entry struct {
	file string // blob file name under blobs/
	size int64
	sum  string // sha256 of the blob bytes, hex
	seq  int64  // last-access stamp for LRU
}

// Stats counts store activity since Open. Counters are monotonic for the
// life of the Store so scope can publish them.
type Stats struct {
	Gets      int64 // lookups presented
	Hits      int64 // answered from a verified blob
	Misses    int64 // unknown key
	Puts      int64 // blobs written (or refreshed)
	Evictions int64 // entries removed to fit the size budget
	Corrupt   int64 // blobs that failed size/checksum verification
	Rejected  int64 // blobs larger than the whole budget, not stored
	Errors    int64 // IO failures (write, rename, index persist)
}

// indexEntry is the wire form of one index record.
type indexEntry struct {
	Key  string `json:"key"`
	File string `json:"file"`
	Size int64  `json:"size"`
	Sum  string `json:"sum"`
	Seq  int64  `json:"seq"`
}

// indexDoc is the index.json wire format.
type indexDoc struct {
	Schema  int          `json:"schema"`
	Entries []indexEntry `json:"entries"`
}

// Open opens (creating if necessary) a store rooted at dir with the given
// byte budget (0 = unbounded). It sweeps crash debris — tmp files, blobs
// the index does not reference, index entries whose blob is missing or
// mis-sized — and evicts down to the budget if a previous run was allowed
// a larger one. A corrupt index file is an error: it cannot appear
// through a crash (writes are rename-atomic), so losing it silently
// would hide external interference.
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes < 0 {
		return nil, fmt.Errorf("store: negative size budget %d", maxBytes)
	}
	if err := os.MkdirAll(filepath.Join(dir, blobDir), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, max: maxBytes, entries: map[string]*entry{}}
	if err := s.loadIndex(); err != nil {
		return nil, err
	}
	if err := s.sweep(); err != nil {
		return nil, err
	}
	s.evictToFit(0)
	// Persist the post-sweep view so a crash before the first Put does
	// not resurrect swept entries.
	if err := s.writeIndex(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadIndex reads index.json into memory; a missing file is an empty
// store.
func (s *Store) loadIndex() error {
	b, err := os.ReadFile(filepath.Join(s.dir, indexFile))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	var doc indexDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return fmt.Errorf("store: %s is corrupt (%v); refusing to guess — move it aside to start fresh", indexFile, err)
	}
	if doc.Schema != SchemaVersion {
		return fmt.Errorf("store: index schema %d, tool speaks %d", doc.Schema, SchemaVersion)
	}
	for _, ie := range doc.Entries {
		s.entries[ie.Key] = &entry{file: ie.File, size: ie.Size, sum: ie.Sum, seq: ie.Seq}
		s.bytes += ie.Size
		if ie.Seq > s.seq {
			s.seq = ie.Seq
		}
	}
	return nil
}

// sweep removes crash debris: tmp files, unreferenced blobs, and index
// entries whose blob is missing or has the wrong size (content is
// verified lazily at Get).
func (s *Store) sweep() error {
	// Index entries first, so the referenced-file set is accurate.
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	referenced := map[string]bool{}
	for _, k := range keys {
		e := s.entries[k]
		fi, err := os.Stat(s.blobPath(e.file))
		if err != nil || fi.Size() != e.size {
			s.dropLocked(k, e)
			continue
		}
		referenced[e.file] = true
	}

	ents, err := os.ReadDir(filepath.Join(s.dir, blobDir))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range ents {
		if !referenced[de.Name()] {
			if err := os.Remove(s.blobPath(de.Name())); err != nil {
				return fmt.Errorf("store: sweep orphan blob: %w", err)
			}
		}
	}
	rootEnts, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, de := range rootEnts {
		if strings.HasPrefix(de.Name(), tmpPrefix) {
			if err := os.Remove(filepath.Join(s.dir, de.Name())); err != nil {
				return fmt.Errorf("store: sweep tmp file: %w", err)
			}
		}
	}
	return nil
}

// blobPath returns the on-disk path for a blob file name.
func (s *Store) blobPath(file string) string {
	return filepath.Join(s.dir, blobDir, file)
}

// fileNameFor derives the blob file name from the cache key. Keys carry
// a "kind:" prefix and hex tail; hashing the whole key gives a uniform,
// filesystem-safe name regardless of key shape.
func fileNameFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// Get returns the blob stored under key, verifying its size and checksum
// against the index. A failed verification drops the entry (and file)
// and reads as a miss, so callers re-simulate instead of consuming a
// corrupt result. Implements fleet.SecondLevel.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	e, ok := s.entries[key]
	if !ok {
		s.stats.Misses++
		return nil, false
	}
	b, err := os.ReadFile(s.blobPath(e.file))
	if err != nil {
		s.stats.Corrupt++
		s.dropLocked(key, e)
		s.persistLocked()
		return nil, false
	}
	sum := sha256.Sum256(b)
	if int64(len(b)) != e.size || hex.EncodeToString(sum[:]) != e.sum {
		s.stats.Corrupt++
		s.dropLocked(key, e)
		s.persistLocked()
		return nil, false
	}
	s.stats.Hits++
	s.seq++
	e.seq = s.seq
	return b, true
}

// Put stores blob under key, evicting least-recently-used entries to fit
// the size budget. An identical re-Put just refreshes recency; a
// different blob under an existing key replaces it (the key schema makes
// that a simulator-version change, not a collision). Errors are counted,
// not returned — the store is a cache, and a failed write only costs a
// future re-simulation. Implements fleet.SecondLevel; the blob slice is
// not retained.
func (s *Store) Put(key string, blob []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	size := int64(len(blob))
	if s.max > 0 && size > s.max {
		s.stats.Rejected++
		return
	}
	sum := sha256.Sum256(blob)
	hexSum := hex.EncodeToString(sum[:])
	if e, ok := s.entries[key]; ok && e.sum == hexSum {
		s.stats.Puts++
		s.seq++
		e.seq = s.seq
		s.persistLocked()
		return
	}
	file := fileNameFor(key)
	if err := s.writeBlob(file, blob); err != nil {
		s.stats.Errors++
		return
	}
	if old, ok := s.entries[key]; ok {
		// Same key, new content: the blob file was just overwritten in
		// place (same name), only the accounting changes.
		s.bytes -= old.size
	}
	s.seq++
	s.entries[key] = &entry{file: file, size: size, sum: hexSum, seq: s.seq}
	s.bytes += size
	s.stats.Puts++
	s.evictToFit(s.seq)
	s.persistLocked()
}

// writeBlob writes blob crash-safely: temp file in the store root,
// fsync, rename into blobs/.
func (s *Store) writeBlob(file string, blob []byte) error {
	tmp, err := os.CreateTemp(s.dir, tmpPrefix)
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(blob); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, s.blobPath(file)); err != nil {
		_ = os.Remove(tmpName)
		return err
	}
	return nil
}

// evictToFit removes least-recently-used entries until the store fits
// its budget. keep, when non-zero, is a seq stamp that must survive (the
// entry just written). Called with mu held.
func (s *Store) evictToFit(keep int64) {
	if s.max <= 0 {
		return
	}
	for s.bytes > s.max && len(s.entries) > 0 {
		victimKey := ""
		var victim *entry
		for k, e := range s.entries {
			if e.seq == keep {
				continue
			}
			if victim == nil || e.seq < victim.seq {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		s.stats.Evictions++
		s.dropLocked(victimKey, victim)
	}
}

// dropLocked removes an entry and its blob file. Called with mu held.
func (s *Store) dropLocked(key string, e *entry) {
	delete(s.entries, key)
	s.bytes -= e.size
	if err := os.Remove(s.blobPath(e.file)); err != nil && !os.IsNotExist(err) {
		s.stats.Errors++
	}
}

// persistLocked writes the index, folding failures into the error
// counter. Called with mu held on mutation paths; a lost index write
// costs cached entries on the next Open, never correctness.
func (s *Store) persistLocked() {
	if err := s.writeIndex(); err != nil {
		s.stats.Errors++
	}
}

// writeIndex persists the index crash-safely (temp + rename), entries
// sorted by key for deterministic bytes.
func (s *Store) writeIndex() error {
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	doc := indexDoc{Schema: SchemaVersion, Entries: make([]indexEntry, 0, len(keys))}
	for _, k := range keys {
		e := s.entries[k]
		doc.Entries = append(doc.Entries, indexEntry{Key: k, File: e.file, Size: e.size, Sum: e.sum, Seq: e.seq})
	}
	b, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode index: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, tmpPrefix)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, indexFile)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Len returns the number of stored blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the total stored blob size.
func (s *Store) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Publish registers the store's counters and gauges on h under the
// store.* namespace.
func (s *Store) Publish(h *scope.Hub) {
	h.Counter("store.gets", func() int64 { return s.Stats().Gets })
	h.Counter("store.hits", func() int64 { return s.Stats().Hits })
	h.Counter("store.misses", func() int64 { return s.Stats().Misses })
	h.Counter("store.puts", func() int64 { return s.Stats().Puts })
	h.Counter("store.evictions", func() int64 { return s.Stats().Evictions })
	h.Counter("store.corrupt", func() int64 { return s.Stats().Corrupt })
	h.Counter("store.errors", func() int64 { return s.Stats().Errors })
	h.Gauge("store.entries", func() int64 { return int64(s.Len()) })
	h.Gauge("store.bytes", func() int64 { return s.Bytes() })
}
