package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, max int64) *Store {
	t.Helper()
	s, err := Open(dir, max)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTripDeterminism is the serving-correctness gate's disk half:
// a blob must come back byte-identical — through the live store and
// through a reopen (a daemon restart).
func TestRoundTripDeterminism(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	blob := []byte(`{"schema":1,"outcome":{"simcycles":123456,"mflops":9.25}}`)
	s.Put("serve:aabbcc", blob)
	got, ok := s.Get("serve:aabbcc")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("live round trip: ok=%v got=%q", ok, got)
	}

	re := mustOpen(t, dir, 0)
	got, ok = re.Get("serve:aabbcc")
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("reopen round trip: ok=%v got=%q", ok, got)
	}
	if st := re.Stats(); st.Hits != 1 {
		t.Errorf("reopened store stats %+v, want 1 hit", st)
	}
}

func TestMissUnknownKey(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	if _, ok := s.Get("serve:nothere"); ok {
		t.Fatal("unknown key reported a hit")
	}
	if st := s.Stats(); st.Gets != 1 || st.Misses != 1 {
		t.Errorf("stats %+v, want 1 get, 1 miss", st)
	}
}

// TestLRUEviction: the budget evicts least-recently-used entries, and a
// Get refreshes recency.
func TestLRUEviction(t *testing.T) {
	blob := bytes.Repeat([]byte("x"), 100)
	s := mustOpen(t, t.TempDir(), 250) // fits two 100-byte blobs, not three
	s.Put("k:a", blob)
	s.Put("k:b", blob)
	if _, ok := s.Get("k:a"); !ok { // a is now more recent than b
		t.Fatal("k:a missing before eviction")
	}
	s.Put("k:c", blob)
	if _, ok := s.Get("k:b"); ok {
		t.Error("k:b survived eviction despite being least recently used")
	}
	for _, k := range []string{"k:a", "k:c"} {
		if _, ok := s.Get(k); !ok {
			t.Errorf("%s was evicted, want it kept", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if s.Bytes() > 250 {
		t.Errorf("store holds %d bytes, budget 250", s.Bytes())
	}
}

// TestOversizeRejected: a blob that cannot fit the whole budget is not
// stored (storing then instantly evicting it would churn the disk).
func TestOversizeRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 10)
	s.Put("k:big", bytes.Repeat([]byte("y"), 11))
	if s.Len() != 0 {
		t.Fatal("oversize blob was stored")
	}
	if st := s.Stats(); st.Rejected != 1 {
		t.Errorf("stats %+v, want 1 rejected", st)
	}
}

// TestCorruptBlobReadsAsMiss: a blob that fails checksum verification is
// dropped and reported as a miss — the two-level cache re-simulates, and
// the daemon never serves (or crashes on) corrupt bytes.
func TestCorruptBlobReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Put("k:v", []byte("pristine-result-bytes"))

	// Flip bytes behind the store's back, keeping the size identical so
	// only the checksum can catch it.
	name := fileNameFor("k:v")
	if err := os.WriteFile(filepath.Join(dir, blobDir, name), []byte("corrupted-result-byte"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k:v"); ok {
		t.Fatal("corrupt blob served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Errorf("stats %+v, want 1 corrupt", st)
	}
	if s.Len() != 0 {
		t.Error("corrupt entry not dropped")
	}
	// And the drop is durable: a reopen does not resurrect it.
	if _, ok := mustOpen(t, dir, 0).Get("k:v"); ok {
		t.Error("corrupt entry resurrected by reopen")
	}
}

// TestOpenSweepsCrashDebris: tmp files and unreferenced blobs vanish at
// Open; index entries whose blob is missing or mis-sized are dropped.
func TestOpenSweepsCrashDebris(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	s.Put("k:kept", []byte("kept"))
	s.Put("k:truncated", []byte("will-be-truncated"))

	// Simulate a crash: a half-written tmp file, an orphan blob no index
	// entry references, and a blob truncated out from under its entry.
	if err := os.WriteFile(filepath.Join(dir, "tmp-12345"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, blobDir, "feedfacefeedface"), []byte("orphan"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, blobDir, fileNameFor("k:truncated")), []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}

	re := mustOpen(t, dir, 0)
	if got, ok := re.Get("k:kept"); !ok || string(got) != "kept" {
		t.Fatalf("healthy entry lost in sweep: ok=%v got=%q", ok, got)
	}
	if _, ok := re.Get("k:truncated"); ok {
		t.Error("mis-sized entry survived the sweep")
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp-12345")); !os.IsNotExist(err) {
		t.Error("tmp file not swept")
	}
	if _, err := os.Stat(filepath.Join(dir, blobDir, "feedfacefeedface")); !os.IsNotExist(err) {
		t.Error("orphan blob not swept")
	}
}

// TestCorruptIndexRefusesToOpen: a mangled index is external interference
// (index writes are rename-atomic), so Open reports it instead of
// silently discarding the store.
func TestCorruptIndexRefusesToOpen(t *testing.T) {
	dir := t.TempDir()
	mustOpen(t, dir, 0).Put("k:v", []byte("v"))
	if err := os.WriteFile(filepath.Join(dir, indexFile), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, 0); err == nil {
		t.Fatal("Open accepted a corrupt index")
	}
}

func TestNegativeBudgetRejected(t *testing.T) {
	if _, err := Open(t.TempDir(), -1); err == nil {
		t.Fatal("Open accepted a negative budget")
	}
}

// TestShrunkenBudgetEvictsAtOpen: reopening with a smaller budget trims
// the store immediately.
func TestShrunkenBudgetEvictsAtOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, 0)
	for i := 0; i < 4; i++ {
		s.Put(fmt.Sprintf("k:%d", i), bytes.Repeat([]byte("z"), 100))
	}
	re := mustOpen(t, dir, 150)
	if re.Bytes() > 150 || re.Len() != 1 {
		t.Fatalf("reopened store holds %d bytes in %d entries, want ≤150 in 1", re.Bytes(), re.Len())
	}
}

// TestRePutRefreshesRecency: an identical re-Put must not rewrite the
// blob, but must protect the entry from the next eviction.
func TestRePutRefreshesRecency(t *testing.T) {
	blob := bytes.Repeat([]byte("w"), 100)
	s := mustOpen(t, t.TempDir(), 250)
	s.Put("k:a", blob)
	s.Put("k:b", blob)
	s.Put("k:a", blob) // refresh a
	s.Put("k:c", blob) // evicts b, not a
	if _, ok := s.Get("k:a"); !ok {
		t.Error("refreshed entry was evicted")
	}
	if _, ok := s.Get("k:b"); ok {
		t.Error("stale entry survived")
	}
}

// TestReplaceUnderSameKey: a new blob under an existing key replaces the
// old bytes and the accounting follows.
func TestReplaceUnderSameKey(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	s.Put("k:v", []byte("old"))
	s.Put("k:v", []byte("brand-new-longer"))
	got, ok := s.Get("k:v")
	if !ok || string(got) != "brand-new-longer" {
		t.Fatalf("got %q, %v", got, ok)
	}
	if s.Bytes() != int64(len("brand-new-longer")) || s.Len() != 1 {
		t.Fatalf("accounting: %d bytes in %d entries", s.Bytes(), s.Len())
	}
}

// TestIndexDeterministic: two stores with the same contents write
// byte-identical indexes modulo recency stamps — entries are sorted by
// key, so the file is diffable and the determinism story extends to the
// store's own artifacts.
func TestIndexDeterministic(t *testing.T) {
	write := func() []byte {
		dir := t.TempDir()
		s := mustOpen(t, dir, 0)
		s.Put("k:b", []byte("bb"))
		s.Put("k:a", []byte("aa"))
		b, err := os.ReadFile(filepath.Join(dir, indexFile))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(write(), write()) {
		t.Fatal("index bytes differ across identical stores")
	}
}

// TestFileNameMatchesKeyHash pins the blob naming scheme the sweep and
// corrupt-blob tests rely on.
func TestFileNameMatchesKeyHash(t *testing.T) {
	sum := sha256.Sum256([]byte("k:v"))
	if fileNameFor("k:v") != hex.EncodeToString(sum[:]) {
		t.Fatal("blob file name is not the key hash")
	}
}
