// Package vm models Cedar's virtual memory: 4 KB pages over a physical
// address space split between cluster and global memory, with per-cluster
// translation state.
//
// The behaviour that matters to the paper is the TRFD study [MaEG92]: a
// multicluster program takes TLB-miss faults when each additional cluster
// first accesses pages for which a valid PTE already exists in global
// memory — the fault does no I/O, but the kernel must still service it.
// The improved TRFD had almost four times the page faults of the
// one-cluster version and spent close to 50% of its time in virtual
// memory activity until a distributed-memory rewrite removed the sharing.
package vm

import "cedar/internal/params"

// Space identifies which half of the physical address space a page
// belongs to: cluster memory in the lower half, global in the upper.
type Space uint8

// Address spaces.
const (
	SpaceCluster Space = iota
	SpaceGlobal
)

// PageTable tracks, per cluster, which global pages the cluster has a
// valid translation for. It is deliberately simple: the paper's fault
// behaviour is about first-touch per cluster, not replacement.
type PageTable struct {
	p        params.Machine
	clusters []map[uint64]bool
	stats    Stats
}

// Stats counts translation activity.
type Stats struct {
	Hits   int64
	Faults int64
}

// New builds translation state for a machine.
func New(p params.Machine) *PageTable {
	pt := &PageTable{p: p, clusters: make([]map[uint64]bool, p.Clusters)}
	for i := range pt.clusters {
		pt.clusters[i] = make(map[uint64]bool)
	}
	return pt
}

// PageOf returns the page number of a word address.
func (pt *PageTable) PageOf(addr uint64) uint64 {
	return addr / uint64(pt.p.PageWords)
}

// Touch records an access by a cluster to the page holding addr and
// reports the cycles of translation overhead it costs: zero for a hit,
// TLBMissCost for the cluster's first touch.
func (pt *PageTable) Touch(cluster int, addr uint64) int64 {
	page := pt.PageOf(addr)
	if pt.clusters[cluster][page] {
		pt.stats.Hits++
		return 0
	}
	pt.clusters[cluster][page] = true
	pt.stats.Faults++
	return int64(pt.p.TLBMissCost)
}

// Stats returns cumulative counters.
func (pt *PageTable) Stats() Stats { return pt.stats }

// FirstTouchFaults predicts the fault count for a footprint of the given
// words shared by n clusters: every cluster first-touches every page
// (TRFD's "almost four times the page faults" on four clusters).
func FirstTouchFaults(p params.Machine, footprintWords int64, clusters int) int64 {
	pages := (footprintWords + int64(p.PageWords) - 1) / int64(p.PageWords)
	return pages * int64(clusters)
}

// MulticlusterPenaltySeconds converts the excess faults of a multicluster
// run over the one-cluster run into wall time: fault service plus the
// serialization in the kernel's page-table locks makes each excess fault
// cost PageFaultMul·TLBMissCost cycles of the critical path [MaEG92].
func MulticlusterPenaltySeconds(p params.Machine, footprintWords int64, clusters int) float64 {
	if clusters <= 1 {
		return 0
	}
	excess := FirstTouchFaults(p, footprintWords, clusters) -
		FirstTouchFaults(p, footprintWords, 1)
	cycles := excess * int64(p.TLBMissCost) * int64(p.PageFaultMul)
	return params.CyclesToSeconds(cycles)
}
