package vm

import (
	"testing"
	"testing/quick"

	"cedar/internal/params"
)

func TestTouchFirstTouchFaults(t *testing.T) {
	p := params.Default()
	pt := New(p)
	// First touch by cluster 0 faults; second is a hit.
	if c := pt.Touch(0, 100); c != int64(p.TLBMissCost) {
		t.Errorf("first touch cost %d, want %d", c, p.TLBMissCost)
	}
	if c := pt.Touch(0, 101); c != 0 {
		t.Errorf("same-page touch cost %d, want 0", c)
	}
	// A different cluster touching the same page faults again — the
	// TRFD phenomenon.
	if c := pt.Touch(1, 100); c != int64(p.TLBMissCost) {
		t.Errorf("other-cluster touch cost %d, want %d", c, p.TLBMissCost)
	}
	st := pt.Stats()
	if st.Faults != 2 || st.Hits != 1 {
		t.Errorf("stats %+v, want 2 faults 1 hit", st)
	}
}

func TestPageOf(t *testing.T) {
	p := params.Default()
	pt := New(p)
	if pt.PageOf(0) != 0 || pt.PageOf(uint64(p.PageWords)-1) != 0 {
		t.Error("first page wrong")
	}
	if pt.PageOf(uint64(p.PageWords)) != 1 {
		t.Error("second page wrong")
	}
}

func TestFirstTouchFaultsScaleWithClusters(t *testing.T) {
	p := params.Default()
	words := int64(100 * p.PageWords)
	f1 := FirstTouchFaults(p, words, 1)
	f4 := FirstTouchFaults(p, words, 4)
	// "Almost four times the page faults relative to the one-cluster
	// version" — exactly 4× under pure first touch.
	if f4 != 4*f1 {
		t.Errorf("faults %d vs %d, want 4×", f4, f1)
	}
}

func TestMulticlusterPenalty(t *testing.T) {
	p := params.Default()
	words := int64(1000 * p.PageWords)
	if s := MulticlusterPenaltySeconds(p, words, 1); s != 0 {
		t.Errorf("one-cluster penalty %v, want 0", s)
	}
	s4 := MulticlusterPenaltySeconds(p, words, 4)
	if s4 <= 0 {
		t.Error("four-cluster penalty should be positive")
	}
	s2 := MulticlusterPenaltySeconds(p, words, 2)
	if s2 >= s4 {
		t.Error("penalty should grow with clusters")
	}
}

func TestTouchIdempotentProperty(t *testing.T) {
	p := params.Default()
	pt := New(p)
	f := func(addr uint64, cluster uint8) bool {
		cl := int(cluster) % p.Clusters
		pt.Touch(cl, addr)
		// Any repeat touch is free.
		return pt.Touch(cl, addr) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
