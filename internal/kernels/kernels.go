// Package kernels implements the computational kernels of the paper's
// memory-system study (§4.1): a vector load (VL), a tridiagonal
// matrix-vector multiply (TM), the rank-64 update of a matrix (RK) in its
// three memory variants, and a simple 5-diagonal conjugate gradient solver
// (CG) — plus the banded matrix-vector product used for the CM-5
// comparison in §4.3.
//
// All kernels place their matrices in global memory and drive the real
// simulated machine through the Cedar Fortran runtime; the RK variants
// differ exactly as the paper describes: GM/no-pref makes plain vector
// accesses limited by the 13-cycle latency and two outstanding requests,
// GM/pref uses the prefetch units (256-word blocks, aggressively
// overlapped), and GM/cache first transfers the update panel into a
// cached work array in each cluster.
package kernels

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/perfmon"
)

// Result is a kernel run plus the hardware-monitor view of CE 0's
// prefetch traffic (the paper monitored a single processor).
type Result struct {
	core.Result
	Blocks *perfmon.BlockStats
}

// RKMode selects the rank-update memory variant of Table 1.
type RKMode int

// Rank-update variants.
const (
	// RKNoPref: all vector accesses to global memory, no prefetching.
	RKNoPref RKMode = iota
	// RKPref: identical but with prefetching (256-word blocks).
	RKPref
	// RKCache: the A panel is transferred to a cached work array in each
	// cluster and all vector accesses are made to the work array.
	RKCache
)

func (m RKMode) String() string {
	switch m {
	case RKNoPref:
		return "GM/no-pref"
	case RKPref:
		return "GM/pref"
	case RKCache:
		return "GM/cache"
	}
	return fmt.Sprintf("RKMode(%d)", int(m))
}

// rkPrefBlock is the aggressive prefetch block size the RK kernel uses.
const rkPrefBlock = 256

// run executes phases on the machine with CE 0 monitored.
func run(m *core.Machine, cfg cfrt.Config, limit int64, phases ...cfrt.Phase) (Result, error) {
	bs := m.AttachBlockStats(0)
	rt := cfrt.New(m, cfg, phases...)
	res, err := rt.Run(limit)
	if err != nil {
		return Result{}, err
	}
	return Result{Result: res, Blocks: bs}, nil
}

// RankUpdate computes a rank-64 update to an n×n matrix: C += A·B with A
// n×64 and B 64×n, all in global memory (2·64·n² flops).
func RankUpdate(m *core.Machine, n int, mode RKMode) (Result, error) {
	const rank = 64
	aBase := m.AllocGlobalAligned(n*rank, 64)
	cBase := m.AllocGlobalAligned(n*n, 64)

	switch mode {
	case RKNoPref, RKPref:
		pref := 0
		if mode == RKPref {
			pref = rkPrefBlock
		}
		// One XDOALL over the n columns of C; each column performs 64
		// chained multiply-add sweeps over a column of A, then stores
		// the column of C.
		body := func(j int) []*ce.Instr {
			ins := make([]*ce.Instr, 0, rank+1)
			for kk := 0; kk < rank; kk++ {
				// Skew the panel sweep by column so concurrent CEs read
				// different columns of A instead of marching over the
				// same addresses in lockstep (the hand-coded kernel's
				// access pattern).
				k := (kk + j) % rank
				ins = append(ins, &ce.Instr{
					Op: ce.OpVector, N: n, Flops: 2,
					Srcs: []ce.Stream{{
						Space:  ce.SpaceGlobal,
						Base:   aBase + uint64(k*n),
						Stride: 1, PrefBlock: pref,
					}},
				})
			}
			ins = append(ins, &ce.Instr{
				Op: ce.OpVector, N: n, Flops: 0,
				Dst: &ce.Stream{Space: ce.SpaceGlobal, Base: cBase + uint64(j*n), Stride: 1},
			})
			return ins
		}
		return run(m, cfrt.Config{UseCedarSync: true}, 1<<40,
			cfrt.XDoall{N: n, Static: true, Body: body})

	case RKCache:
		// Phase 1: each cluster copies the A panel into a cluster work
		// array (prefetched global loads, cluster stores). Phase 2: the
		// columns of C are distributed over clusters; all A accesses hit
		// the cached work array.
		words := n * rank
		workBase := make([]uint64, len(m.Clusters))
		for i, cl := range m.Clusters {
			workBase[i] = cl.AllocLocal(words)
		}
		per := len(m.Clusters[0].CEs)
		chunk := (words + per - 1) / per
		copyPhase := cfrt.SDoall{
			N: len(m.Clusters), Static: true,
			Body: func(i int) []cfrt.ClusterPhase {
				return []cfrt.ClusterPhase{cfrt.CDoall{
					N: per, Static: true,
					Body: func(part int) []*ce.Instr {
						lo := part * chunk
						cnt := chunk
						if lo+cnt > words {
							cnt = words - lo
						}
						if cnt <= 0 {
							return nil
						}
						return []*ce.Instr{{
							Op: ce.OpVector, N: cnt, Flops: 0,
							Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: aBase + uint64(lo), Stride: 1, PrefBlock: rkPrefBlock}},
							Dst:  &ce.Stream{Space: ce.SpaceCluster, Base: workBase[i] + uint64(lo), Stride: 1},
						}}
					},
				}}
			},
		}
		computePhase := cfrt.SDoall{
			N: len(m.Clusters), Static: true,
			Body: func(i int) []cfrt.ClusterPhase {
				lo := i * n / len(m.Clusters)
				hi := (i + 1) * n / len(m.Clusters)
				return []cfrt.ClusterPhase{cfrt.CDoall{
					N: hi - lo,
					Body: func(jj int) []*ce.Instr {
						j := lo + jj
						ins := make([]*ce.Instr, 0, rank+1)
						for k := 0; k < rank; k++ {
							ins = append(ins, &ce.Instr{
								Op: ce.OpVector, N: n, Flops: 2,
								Srcs: []ce.Stream{{Space: ce.SpaceCluster, Base: workBase[i] + uint64(k*n), Stride: 1}},
							})
						}
						ins = append(ins, &ce.Instr{
							Op: ce.OpVector, N: n, Flops: 0,
							Dst: &ce.Stream{Space: ce.SpaceGlobal, Base: cBase + uint64(j*n), Stride: 1},
						})
						return ins
					},
				}}
			},
		}
		return run(m, cfrt.Config{UseCedarSync: true}, 1<<40, copyPhase, computePhase)
	}
	return Result{}, fmt.Errorf("kernels: unknown RK mode %d", mode)
}

// VectorLoad (VL) streams words from global memory with compiler-style
// 32-word prefetch blocks: the pure memory-access kernel of Table 2.
// Each CE loads total words in sweeps of n.
func VectorLoad(m *core.Machine, n, sweeps int) (Result, error) {
	base := m.AllocGlobalAligned(n*len(m.CEs), 64)
	body := func(i int) []*ce.Instr {
		return []*ce.Instr{{
			Op: ce.OpVector, N: n, Flops: 0,
			Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: base + uint64(i*n), Stride: 1, PrefBlock: 32}},
		}}
	}
	phases := make([]cfrt.Phase, 0, sweeps)
	for s := 0; s < sweeps; s++ {
		phases = append(phases, cfrt.XDoall{N: len(m.CEs), Static: true, Body: body})
	}
	return run(m, cfrt.Config{UseCedarSync: true}, 1<<40, phases...)
}

// TriMat (TM) computes y = T·x for a tridiagonal T of order n: three
// chained multiply-adds per element over the three diagonals plus the
// operand vector, using compiler-generated 32-word prefetches. 5 flops
// per element.
func TriMat(m *core.Machine, n int) (Result, error) {
	diag := make([]uint64, 3)
	for i := range diag {
		diag[i] = m.AllocGlobalAligned(n, 64)
	}
	xBase := m.AllocGlobalAligned(n, 64)
	yBase := m.AllocGlobalAligned(n, 64)

	p := len(m.CEs)
	body := func(part int) []*ce.Instr {
		lo := part * n / p
		hi := (part + 1) * n / p
		cnt := hi - lo
		if cnt <= 0 {
			return nil
		}
		off := uint64(lo)
		ins := []*ce.Instr{
			// Load x into vector registers (no flops).
			{Op: ce.OpVector, N: cnt, Flops: 0,
				Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: xBase + off, Stride: 1, PrefBlock: 32}}},
			// a(i)·x(i-1): multiply-add against the sub-diagonal.
			{Op: ce.OpVector, N: cnt, Flops: 2,
				Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: diag[0] + off, Stride: 1, PrefBlock: 32}}},
			// b(i)·x(i): multiply-add against the main diagonal.
			{Op: ce.OpVector, N: cnt, Flops: 2,
				Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: diag[1] + off, Stride: 1, PrefBlock: 32}}},
			// c(i)·x(i+1): multiply and final register-register add.
			{Op: ce.OpVector, N: cnt, Flops: 1,
				Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: diag[2] + off, Stride: 1, PrefBlock: 32}}},
			// Store y.
			{Op: ce.OpVector, N: cnt, Flops: 0,
				Dst: &ce.Stream{Space: ce.SpaceGlobal, Base: yBase + off, Stride: 1}},
		}
		return ins
	}
	return run(m, cfrt.Config{UseCedarSync: true}, 1<<40,
		cfrt.XDoall{N: p, Static: true, Body: body})
}
