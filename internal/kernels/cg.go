package kernels

import (
	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/network"
)

// CGConfig configures the conjugate gradient kernel.
type CGConfig struct {
	N     int // vector length (paper: 1K ≤ N ≤ 172K)
	Iters int // CG iterations to run
	// MaxCEs restricts the processor count (paper: 2..32); 0 = all.
	MaxCEs int
}

// CG runs a simple conjugate gradient solver on a 5-diagonal system of
// order N (§4.3, the PPT4 scalability study). Each iteration performs the
// 5-diagonal matrix-vector product, two reduction dot products through the
// synchronization processors, and the vector updates; multicluster
// barriers separate the reduction from the updates.
//
// Flops per iteration ≈ 19·N: 9 in the matvec, 4 in the dots, 6 in the
// AXPY updates.
func CG(m *core.Machine, cfg CGConfig) (Result, error) {
	n := cfg.N
	diag := make([]uint64, 5)
	for i := range diag {
		diag[i] = m.AllocGlobalAligned(n, 64)
	}
	pBase := m.AllocGlobalAligned(n, 64)
	qBase := m.AllocGlobalAligned(n, 64)
	xBase := m.AllocGlobalAligned(n, 64)
	rBase := m.AllocGlobalAligned(n, 64)
	accum := m.AllocGlobal(2)

	p := len(m.CEs)
	if cfg.MaxCEs > 0 && cfg.MaxCEs < p {
		p = cfg.MaxCEs
	}

	part := func(i int) (lo, cnt int) {
		lo = i * n / p
		return lo, (i+1)*n/p - lo
	}
	gstream := func(base uint64, lo int) ce.Stream {
		return ce.Stream{Space: ce.SpaceGlobal, Base: base + uint64(lo), Stride: 1, PrefBlock: 32}
	}

	// Phase A: q = A·p (5-diagonal), then partial dot p·q accumulated on
	// the synchronization processor.
	matvecBody := func(i int) []*ce.Instr {
		lo, cnt := part(i)
		if cnt <= 0 {
			return nil
		}
		ins := []*ce.Instr{
			// Load p into registers.
			{Op: ce.OpVector, N: cnt, Flops: 0, Srcs: []ce.Stream{gstream(pBase, lo)}},
		}
		// Five diagonal sweeps: multiply-add chains; the last carries the
		// final register-register adds.
		flops := []int64{2, 2, 2, 2, 1}
		for d := 0; d < 5; d++ {
			ins = append(ins, &ce.Instr{
				Op: ce.OpVector, N: cnt, Flops: flops[d],
				Srcs: []ce.Stream{gstream(diag[d], lo)},
			})
		}
		ins = append(ins,
			// Store q.
			&ce.Instr{Op: ce.OpVector, N: cnt, Flops: 0,
				Dst: &ce.Stream{Space: ce.SpaceGlobal, Base: qBase + uint64(lo), Stride: 1}},
			// Local part of p·q: q still flowing through registers.
			&ce.Instr{Op: ce.OpVector, N: cnt, Flops: 2},
			// Accumulate the partial sum at the memory module.
			&ce.Instr{Op: ce.OpSync, Addr: accum,
				Test: network.TestAlways, Mut: network.OpAdd, Value: 1},
		)
		return ins
	}

	// Phase B: x += αp, r -= αq, r·r reduction, p = r + βp.
	updateBody := func(i int) []*ce.Instr {
		lo, cnt := part(i)
		if cnt <= 0 {
			return nil
		}
		return []*ce.Instr{
			// x update: load x, AXPY with p (registers), store x.
			{Op: ce.OpVector, N: cnt, Flops: 2,
				Srcs: []ce.Stream{gstream(xBase, lo)},
				Dst:  &ce.Stream{Space: ce.SpaceGlobal, Base: xBase + uint64(lo), Stride: 1}},
			// r update: load r and q.
			{Op: ce.OpVector, N: cnt, Flops: 0, Srcs: []ce.Stream{gstream(qBase, lo)}},
			{Op: ce.OpVector, N: cnt, Flops: 2,
				Srcs: []ce.Stream{gstream(rBase, lo)},
				Dst:  &ce.Stream{Space: ce.SpaceGlobal, Base: rBase + uint64(lo), Stride: 1}},
			// r·r: register-register.
			{Op: ce.OpVector, N: cnt, Flops: 2},
			{Op: ce.OpSync, Addr: accum + 1,
				Test: network.TestAlways, Mut: network.OpAdd, Value: 1},
			// p = r + βp, store p.
			{Op: ce.OpVector, N: cnt, Flops: 2,
				Dst: &ce.Stream{Space: ce.SpaceGlobal, Base: pBase + uint64(lo), Stride: 1}},
		}
	}

	var phases []cfrt.Phase
	for it := 0; it < cfg.Iters; it++ {
		phases = append(phases,
			cfrt.XDoall{N: p, Static: true, Body: matvecBody},
			cfrt.XDoall{N: p, Static: true, Body: updateBody},
		)
	}
	return run(m, cfrt.Config{UseCedarSync: true, MaxCEs: cfg.MaxCEs}, 1<<40, phases...)
}

// CGFlops returns the nominal flop count of a CG run, for rate checks.
func CGFlops(cfg CGConfig) int64 {
	return int64(cfg.Iters) * int64(cfg.N) * 19
}
