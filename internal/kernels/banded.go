package kernels

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
)

// BandedConfig configures the banded matrix-vector product — the kernel
// [FWPS92] measured on the CM-5 for the paper's PPT4 comparison. Running
// the same computation on the simulated Cedar puts both machines on one
// axis: the paper compares CG-on-Cedar with banded-matvec-on-CM-5 and
// notes their per-processor rates are "roughly equivalent"; this kernel
// lets the comparison be made kernel-for-kernel as well.
type BandedConfig struct {
	N  int // matrix order
	BW int // total bandwidth (diagonal count): 3 or 11 in the paper
	// MaxCEs restricts the processor count; 0 = all.
	MaxCEs int
}

// Banded computes y = A·x for a banded A of order N with BW diagonals:
// 2·BW−1 flops per row. Rows are partitioned across CEs; each diagonal is
// a chained multiply-add sweep streaming from global memory through the
// prefetch units, with x loaded once into registers per partition.
func Banded(m *core.Machine, cfg BandedConfig) (Result, error) {
	if cfg.BW < 1 || cfg.BW%2 == 0 {
		return Result{}, fmt.Errorf("kernels: bandwidth %d must be odd and positive", cfg.BW)
	}
	if cfg.N < cfg.BW {
		return Result{}, fmt.Errorf("kernels: order %d smaller than bandwidth %d", cfg.N, cfg.BW)
	}
	n := cfg.N
	diags := make([]uint64, cfg.BW)
	for i := range diags {
		diags[i] = m.AllocGlobalAligned(n, 64)
	}
	xBase := m.AllocGlobalAligned(n, 64)
	yBase := m.AllocGlobalAligned(n, 64)

	p := len(m.CEs)
	if cfg.MaxCEs > 0 && cfg.MaxCEs < p {
		p = cfg.MaxCEs
	}

	body := func(part int) []*ce.Instr {
		lo := part * n / p
		cnt := (part+1)*n/p - lo
		if cnt <= 0 {
			return nil
		}
		off := uint64(lo)
		ins := []*ce.Instr{
			// x into registers (the halo is covered by the partition
			// overlap in the register file).
			{Op: ce.OpVector, N: cnt, Flops: 0,
				Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: xBase + off, Stride: 1, PrefBlock: 32}}},
		}
		for d := 0; d < cfg.BW; d++ {
			flops := int64(2)
			if d == cfg.BW-1 {
				flops = 1 // final sweep carries the last register add
			}
			ins = append(ins, &ce.Instr{
				Op: ce.OpVector, N: cnt, Flops: flops,
				Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: diags[d] + off, Stride: 1, PrefBlock: 32}},
			})
		}
		ins = append(ins, &ce.Instr{
			Op: ce.OpVector, N: cnt, Flops: 0,
			Dst: &ce.Stream{Space: ce.SpaceGlobal, Base: yBase + off, Stride: 1},
		})
		return ins
	}
	return run(m, cfrt.Config{UseCedarSync: true, MaxCEs: cfg.MaxCEs}, 1<<40,
		cfrt.XDoall{N: p, Static: true, Body: body})
}

// BandedFlopsCedar returns the nominal flop count (2·BW−1 per row).
func BandedFlopsCedar(cfg BandedConfig) int64 {
	return int64(cfg.N) * int64(2*cfg.BW-1)
}
