package kernels

import (
	"math"
	"testing"

	"cedar/internal/params"
)

func TestMemBWSingleCEUnitStride(t *testing.T) {
	m := mach(t, 4)
	pt, err := MemBW(m, 1, 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	// A lone CE consumes ≈0.7 words/cycle: the raw stream runs at one
	// word per cycle but the vector pipe pays startup per 32-word strip
	// and a refill per 256-word prefetch block. That lands right at the
	// paper's 24 MB/s-per-processor sustained figure (33 MB/s here).
	if pt.WordsPerCycle < 0.6 || pt.WordsPerCycle > 0.85 {
		t.Errorf("solo unit-stride bandwidth %.2f words/cycle, want ≈0.7", pt.WordsPerCycle)
	}
	if pt.MBps < 25 || pt.MBps > 42 {
		t.Errorf("solo bandwidth %.0f MB/s, want ≈33 (paper: 24 MB/s per processor sustained)", pt.MBps)
	}
}

func TestMemBWSaturatesNearObservedMax(t *testing.T) {
	// [GJTV91]: the memory system sustained roughly 500 MB/s, well below
	// the 768 MB/s wiring peak.
	m := mach(t, 4)
	pt, err := MemBW(m, 32, 1, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if pt.MBps < 300 || pt.MBps > 560 {
		t.Errorf("32-CE aggregate %.0f MB/s, want ≈400-500 (observed max)", pt.MBps)
	}
	if pt.MBps > 768 {
		t.Errorf("aggregate %.0f MB/s exceeds the wiring peak", pt.MBps)
	}
}

func TestMemBWModuleConflictStride(t *testing.T) {
	// Stride = MemModules from every CE serializes on one module: the
	// aggregate collapses to the module cycle rate regardless of CEs.
	p := params.Default()
	m := mach(t, 4)
	pt, err := MemBW(m, 16, int64(p.MemModules), 256)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / float64(p.MemService)
	if math.Abs(pt.WordsPerCycle-want) > want*0.3 {
		t.Errorf("conflict-stride aggregate %.3f words/cycle, want ≈%.3f (one module)",
			pt.WordsPerCycle, want)
	}
}

func TestMemBWGrowsWithCEsAtUnitStride(t *testing.T) {
	m1 := mach(t, 4)
	one, err := MemBW(m1, 1, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	m8 := mach(t, 4)
	eight, err := MemBW(m8, 8, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if eight.WordsPerCycle < one.WordsPerCycle*4 {
		t.Errorf("8 CEs deliver %.2f vs 1 CE %.2f words/cycle; poor scaling",
			eight.WordsPerCycle, one.WordsPerCycle)
	}
}

func TestMemBWValidation(t *testing.T) {
	m := mach(t, 1)
	if _, err := MemBW(m, 0, 1, 10); err == nil {
		t.Error("0 CEs accepted")
	}
	if _, err := MemBW(m, 99, 1, 10); err == nil {
		t.Error("too many CEs accepted")
	}
	if _, err := MemBW(m, 1, 1, 0); err == nil {
		t.Error("0 words accepted")
	}
}

func TestBandedFlopsAndRates(t *testing.T) {
	for _, bw := range []int{3, 11} {
		m := mach(t, 4)
		cfg := BandedConfig{N: 8192, BW: bw}
		res, err := Banded(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flops != BandedFlopsCedar(cfg) {
			t.Errorf("BW=%d: flops %d, want %d", bw, res.Flops, BandedFlopsCedar(cfg))
		}
		// §4.3: Cedar's and the CM-5's per-processor rates on these
		// problems are "roughly equivalent" — tens of MFLOPS aggregate.
		if res.MFLOPS < 10 || res.MFLOPS > 200 {
			t.Errorf("BW=%d: %.1f MFLOPS implausible", bw, res.MFLOPS)
		}
	}
}

func TestBandedWiderBandRunsFaster(t *testing.T) {
	// More diagonals per row amortize the per-sweep startup: BW=11 beats
	// BW=3 in aggregate MFLOPS, as on the CM-5 (58-67 vs 28-32).
	m3 := mach(t, 4)
	r3, err := Banded(m3, BandedConfig{N: 8192, BW: 3})
	if err != nil {
		t.Fatal(err)
	}
	m11 := mach(t, 4)
	r11, err := Banded(m11, BandedConfig{N: 8192, BW: 11})
	if err != nil {
		t.Fatal(err)
	}
	if r11.MFLOPS <= r3.MFLOPS {
		t.Errorf("BW=11 (%.1f) not faster than BW=3 (%.1f)", r11.MFLOPS, r3.MFLOPS)
	}
}

func TestBandedValidation(t *testing.T) {
	m := mach(t, 1)
	if _, err := Banded(m, BandedConfig{N: 100, BW: 4}); err == nil {
		t.Error("even bandwidth accepted")
	}
	if _, err := Banded(m, BandedConfig{N: 2, BW: 3}); err == nil {
		t.Error("order below bandwidth accepted")
	}
}
