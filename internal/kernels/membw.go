package kernels

import (
	"fmt"
	"sync"

	"cedar/internal/ce"
	"cedar/internal/core"
	"cedar/internal/params"
)

// MemBWPoint is one measurement of the memory characterization study.
type MemBWPoint struct {
	CEs        int
	Stride     int64
	WordsPerCE int
	Cycles     int64
	// WordsPerCycle is the aggregate delivered bandwidth.
	WordsPerCycle float64
	// MBps converts it to the paper's units (8-byte words at 170 ns).
	MBps float64
}

// MemBW runs the memory-system characterization of [GJTV91]: every
// participating CE streams prefetched loads from global memory and the
// aggregate delivered bandwidth is measured. Unit stride exercises all
// modules; stride = MemModules aims every reference of every CE at a
// single module (the worst-case conflict the paper's stride analysis
// covers); intermediate power-of-two strides hit a subset of modules.
//
// The paper quotes a 768 MB/s wiring peak; the characterization study
// observed roughly 500 MB/s sustained, which is the number this model is
// calibrated to reproduce (see params.Machine.MemService).
func MemBW(m *core.Machine, nCE int, stride int64, wordsPerCE int) (MemBWPoint, error) {
	if nCE < 1 || nCE > len(m.CEs) {
		return MemBWPoint{}, fmt.Errorf("kernels: %d CEs outside 1..%d", nCE, len(m.CEs))
	}
	if wordsPerCE < 1 {
		return MemBWPoint{}, fmt.Errorf("kernels: need at least one word per CE")
	}
	// Each CE walks its own region. For conflict strides every region
	// starts on the same module (aligned base), maximizing collisions,
	// as the characterization kernels did.
	span := uint64(int64(wordsPerCE) * stride)
	align := m.P.MemModules
	bases := make([]uint64, nCE)
	for i := range bases {
		bases[i] = m.AllocGlobalAligned(int(span)+align, align)
	}
	prog := &perCEProgram{instrs: func(i int) []*ce.Instr {
		return []*ce.Instr{{
			Op: ce.OpVector, N: wordsPerCE, Flops: 0,
			Srcs: []ce.Stream{{
				Space: ce.SpaceGlobal, Base: bases[i], Stride: stride,
				PrefBlock: 256,
			}},
		}}
	}}
	res, err := m.RunOn(m.CEs[:nCE], prog, 1<<40)
	if err != nil {
		return MemBWPoint{}, err
	}
	words := int64(nCE * wordsPerCE)
	wpc := float64(words) / float64(res.Cycles)
	return MemBWPoint{
		CEs: nCE, Stride: stride, WordsPerCE: wordsPerCE,
		Cycles:        res.Cycles,
		WordsPerCycle: wpc,
		MBps:          wpc * params.WordBytes * params.CyclesPerSecond / 1e6,
	}, nil
}

// perCEProgram hands each CE its own fixed instruction sequence.
type perCEProgram struct {
	instrs func(ceID int) []*ce.Instr
	// mu guards the lazily built maps: CEs in different cluster shards
	// call Next concurrently on an intra-run parallel engine, and each
	// only touches its own entries.
	mu   sync.Mutex
	seqs map[int][]*ce.Instr
	pos  map[int]int
}

// Next implements ce.Controller.
func (p *perCEProgram) Next(ceID int, cycle int64) (*ce.Instr, ce.Status) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pos == nil {
		p.pos = make(map[int]int)
		p.seqs = make(map[int][]*ce.Instr)
	}
	seq, ok := p.seqs[ceID]
	if !ok {
		seq = p.instrs(ceID)
		p.seqs[ceID] = seq
	}
	i := p.pos[ceID]
	if i >= len(seq) {
		return nil, ce.Finished
	}
	p.pos[ceID] = i + 1
	return seq[i], ce.Ready
}
