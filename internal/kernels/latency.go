package kernels

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/core"
)

// LoadLatency runs the single-processor latency probe behind Table 2's
// round-trip numbers: one CE issues n dependent scalar global loads,
// each separated by gap cycles of scalar work, while the other 31 CEs
// sit idle. Almost every simulated cycle has exactly one request in
// flight (or nothing at all during the gap), which makes this the
// latency-dominated extreme of the memory study — and the event-wheel
// engine's best case, since whole round trips collapse into a handful
// of effective ticks. Addresses walk consecutive words so successive
// loads visit successive memory modules.
func LoadLatency(m *core.Machine, n int, gap int64) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("kernels: need at least one load")
	}
	if gap < 0 {
		return Result{}, fmt.Errorf("kernels: negative gap")
	}
	base := m.AllocGlobal(n)
	instrs := make([]*ce.Instr, 0, 2*n)
	for i := 0; i < n; i++ {
		instrs = append(instrs, &ce.Instr{Op: ce.OpGlobalLoad, Addr: base + uint64(i)})
		if gap > 0 {
			instrs = append(instrs, &ce.Instr{Op: ce.OpScalar, Cycles: gap})
		}
	}
	prog := &ce.Program{Instrs: instrs}
	res, err := m.RunOn(m.CEs[:1], prog, 1<<40)
	if err != nil {
		return Result{}, err
	}
	return Result{Result: res}, nil
}
