package kernels

import (
	"testing"

	"cedar/internal/core"
	"cedar/internal/params"
)

func mach(t *testing.T, clusters int) *core.Machine {
	t.Helper()
	p := params.Default()
	p.Clusters = clusters
	m, err := core.New(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const testN = 128 // small matrices keep unit tests quick; tables use ≥512

func TestRankUpdateFlopCount(t *testing.T) {
	for _, mode := range []RKMode{RKNoPref, RKPref, RKCache} {
		m := mach(t, 1)
		res, err := RankUpdate(m, testN, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		want := int64(2 * 64 * testN * testN)
		if res.Flops != want {
			t.Errorf("%v: flops = %d, want %d", mode, res.Flops, want)
		}
	}
}

func TestRankUpdatePrefetchBeatsNoPref(t *testing.T) {
	m1 := mach(t, 1)
	noPref, err := RankUpdate(m1, testN, RKNoPref)
	if err != nil {
		t.Fatal(err)
	}
	m2 := mach(t, 1)
	pref, err := RankUpdate(m2, testN, RKPref)
	if err != nil {
		t.Fatal(err)
	}
	gain := pref.MFLOPS / noPref.MFLOPS
	// Paper (Table 1, one cluster): 50.0 / 14.5 ≈ 3.5.
	if gain < 2.5 || gain > 5.0 {
		t.Errorf("prefetch gain %.2f× on one cluster, want ≈3.5×", gain)
	}
}

func TestRankUpdateNoPrefNearPaperRate(t *testing.T) {
	m := mach(t, 1)
	res, err := RankUpdate(m, testN, RKNoPref)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 14.5 MFLOPS on one cluster.
	if res.MFLOPS < 11 || res.MFLOPS > 18 {
		t.Errorf("GM/no-pref one cluster = %.1f MFLOPS, want ≈14.5", res.MFLOPS)
	}
}

func TestRankUpdateCacheScalesAcrossClusters(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-cluster sweep in -short mode")
	}
	m1 := mach(t, 1)
	r1, err := RankUpdate(m1, testN, RKCache)
	if err != nil {
		t.Fatal(err)
	}
	m4 := mach(t, 4)
	r4, err := RankUpdate(m4, testN, RKCache)
	if err != nil {
		t.Fatal(err)
	}
	scale := r4.MFLOPS / r1.MFLOPS
	// Paper: 52 → 208, i.e. 4.0× (linear). Small matrices lose some to
	// startup, so accept ≥ 2.5×.
	if scale < 2.5 {
		t.Errorf("GM/cache scaling 1→4 clusters = %.2f×, want near 4×", scale)
	}
}

func TestVectorLoadObservesBlocks(t *testing.T) {
	m := mach(t, 1)
	res, err := VectorLoad(m, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks.Blocks() < 16 {
		t.Errorf("monitored %d blocks, want many 32-word blocks", res.Blocks.Blocks())
	}
	if res.Blocks.MinLatency() < 8 {
		t.Errorf("min latency %d < 8", res.Blocks.MinLatency())
	}
	if res.Flops != 0 {
		t.Errorf("VL should do no flops, got %d", res.Flops)
	}
}

func TestTable2ShapeLatencyGrowsWithCEs(t *testing.T) {
	if testing.Short() {
		t.Skip("contention sweep in -short mode")
	}
	// The central Table 2 observation: loaded latency and interarrival
	// grow with the number of CEs (8 → 32) due to global memory
	// contention.
	lat := map[int]float64{}
	inter := map[int]float64{}
	for _, clusters := range []int{1, 4} {
		m := mach(t, clusters)
		res, err := VectorLoad(m, 2048, 1)
		if err != nil {
			t.Fatal(err)
		}
		lat[clusters] = res.Blocks.MeanLatency()
		inter[clusters] = res.Blocks.MeanInterarrival()
	}
	if lat[4] <= lat[1] {
		t.Errorf("latency did not grow with CEs: 8 CE %.1f vs 32 CE %.1f", lat[1], lat[4])
	}
	if inter[4] < inter[1] {
		t.Errorf("interarrival shrank with CEs: %.2f vs %.2f", inter[1], inter[4])
	}
}

func TestTriMatFlopsAndRate(t *testing.T) {
	m := mach(t, 1)
	const n = 4096
	res, err := TriMat(m, n)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(5 * n); res.Flops != want {
		t.Errorf("TM flops = %d, want %d", res.Flops, want)
	}
	if res.MFLOPS < 5 {
		t.Errorf("TM = %.1f MFLOPS on 8 CEs, implausibly low", res.MFLOPS)
	}
}

func TestCGFlopsAndScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("CG sweep in -short mode")
	}
	m := mach(t, 4)
	cfg := CGConfig{N: 8192, Iters: 2}
	res, err := CG(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flops != CGFlops(cfg) {
		t.Errorf("CG flops = %d, want %d", res.Flops, CGFlops(cfg))
	}
	// Paper: 34-48 MFLOPS on 32 processors for 10K ≤ N ≤ 172K.
	if res.MFLOPS < 15 || res.MFLOPS > 120 {
		t.Errorf("CG on 32 CEs = %.1f MFLOPS, want tens", res.MFLOPS)
	}

	// More processors must help at this size.
	m8 := mach(t, 4)
	res8, err := CG(m8, CGConfig{N: 8192, Iters: 2, MaxCEs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res8.MFLOPS >= res.MFLOPS {
		t.Errorf("CG 8 CEs (%.1f) not slower than 32 CEs (%.1f)", res8.MFLOPS, res.MFLOPS)
	}
}

func TestCGMaxCEsRestricts(t *testing.T) {
	m := mach(t, 4)
	_, err := CG(m, CGConfig{N: 1024, Iters: 1, MaxCEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, c := range m.CEs {
		if c.Flops() > 0 {
			busy++
		}
	}
	if busy > 2 {
		t.Errorf("%d CEs did flops, want ≤ 2", busy)
	}
}
