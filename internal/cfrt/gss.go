package cfrt

import (
	"cedar/internal/ce"
	"cedar/internal/network"
)

// Schedule selects an XDOALL scheduling policy.
//
// GuidedSchedule is guided self-scheduling (GSS) — Polychronopoulos &
// Kuck's policy, developed within the Cedar project (C. Polychronopoulos
// appears in the paper's acknowledgments): each claim takes
// ceil(remaining/P) iterations, so early claims grab large chunks (few
// scheduling operations) while late claims shrink toward single
// iterations (load balance). On Cedar it rides the same Test-And-Operate
// hardware as plain self-scheduling: the runtime issues one fetch-add of
// a locally estimated chunk and the loop end clips over-claimed tails,
// preserving the single-round-trip property.
type Schedule uint8

// XDOALL scheduling policies.
const (
	// SelfSchedule claims one iteration per synchronization operation —
	// the runtime library default.
	SelfSchedule Schedule = iota
	// StaticSchedule pre-chunks iterations evenly; no claims at all.
	StaticSchedule
	// GuidedSchedule claims ceil(remaining/P) iterations per operation.
	GuidedSchedule
)

// gssChunk returns the GSS chunk when `claimed` iterations of n are
// already taken by p processors.
func gssChunk(n int, claimed int64, p int) int {
	rem := n - int(claimed)
	if rem <= 0 {
		return 0
	}
	c := (rem + p - 1) / p
	if c < 1 {
		c = 1
	}
	return c
}

// guidedLoop self-schedules iterations with guided chunks.
func (r *Runtime) guidedLoop(ci, k int, ph XDoall) {
	r.guidedClaim(ci, k, ph.N, func(first int64, chunk int) {
		if first >= int64(ph.N) {
			r.barrier(ci, k)
			return
		}
		hi := int(first) + chunk
		if hi > ph.N {
			hi = ph.N
		}
		r.runChunkThen(ci, int(first), hi, ph.Body, func() {
			r.guidedLoop(ci, k, ph)
		})
	})
}

// guidedClaim performs one guided claim against the phase counter: read
// the counter to estimate remaining work, locally compute the GSS chunk,
// then claim it with a fetch-add (the loop end clips over-claimed
// tails). The estimate costs a real global load — every processor's view
// of the machine-wide progress travels through the network, never
// through simulator-side shared state, so claims behave identically on
// the sequential and sharded engine schedules.
func (r *Runtime) guidedClaim(ci, k, n int, got func(first int64, chunk int)) {
	p := len(r.ces)
	res := &r.res[k]
	if r.cfg.UseCedarSync {
		r.enq(ci,
			scalarInstr(r.syncPathCycles),
			&ce.Instr{
				Op: ce.OpGlobalLoad, Addr: res.counter,
				OnResult: func(v int64, _ bool, _ int64) {
					chunk := gssChunk(n, v, p)
					if chunk < 1 {
						chunk = 1
					}
					r.enq(ci, &ce.Instr{
						Op: ce.OpSync, Addr: res.counter,
						Test: network.TestAlways, Mut: network.OpAdd, Value: int64(chunk),
						OnResult: func(first int64, _ bool, _ int64) {
							got(first, chunk)
						},
					})
				},
			})
		return
	}
	// Library path: the locked read-modify-write already reads the
	// counter, so the estimate folds into it at no extra traffic.
	r.enq(ci, scalarInstr(r.lockPathCycles))
	r.takeLockThen(ci, func() {
		r.enq(ci, &ce.Instr{
			Op: ce.OpGlobalLoad, Addr: res.counter,
			OnResult: func(v int64, _ bool, _ int64) {
				chunk := gssChunk(n, v, p)
				if chunk < 1 {
					chunk = 1
				}
				r.enq(ci,
					&ce.Instr{Op: ce.OpGlobalStore, Addr: res.counter, Value: v + int64(chunk)},
					&ce.Instr{Op: ce.OpGlobalStore, Addr: r.lockAddr, Value: 0,
						OnDone: func(int64) { got(v, chunk) }},
				)
			},
		})
	})
}

// runChunkThen executes iterations [lo, hi) sequentially, then cont.
func (r *Runtime) runChunkThen(ci, lo, hi int, body BodyFn, cont func()) {
	if lo >= hi {
		cont()
		return
	}
	r.enq(ci, body(lo)...)
	r.after(ci, func(int64) { r.runChunkThen(ci, lo+1, hi, body, cont) })
}
