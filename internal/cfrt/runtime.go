package cfrt

import (
	"fmt"

	"cedar/internal/ce"
	"cedar/internal/core"
	"cedar/internal/network"
	"cedar/internal/perfmon"
	"cedar/internal/scope"
)

// Runtime executes a phase program on a machine. It implements
// ce.Controller: CEs pull instructions, and all scheduling state advances
// through instruction completion callbacks, so every runtime action —
// claims, barriers, startup flags — costs real simulated traffic.
type Runtime struct {
	m   *core.Machine
	cfg Config
	ph  []Phase

	ces      []*ce.CE
	ceIdx    map[int]int // CE id -> participant index
	clusters []*clusterCtl
	ctl      []*ceCtl

	flagAddr uint64
	lockAddr uint64
	res      []phaseRes

	// library path lengths (cycles)
	lockPathCycles int64
	syncPathCycles int64
	pollBackoff    int64

	// tracer receives software events when attached (SetTracer).
	tracer *perfmon.Tracer

	// obs is the machine's observability hub (nil when off). Runtime
	// events double as scope counters and phase/loop trace spans.
	obs *scope.Hub
	// sinks[ci] is the scope hub participant ci posts spans to from
	// instruction callbacks: its cluster's shard sink on a sharded
	// machine, obs itself otherwise.
	sinks []*scope.Hub
}

// Runtime observation state lives per participant (ceCtl below) rather
// than on the Runtime: instruction callbacks fire inside CE ticks, which
// run concurrently across cluster shards on an intra-run parallel
// engine. Counters are summed at snapshot time and the phase-span start
// is the minimum over participants at the barrier pass — both reads
// happen cycles after the last write they observe, so the engine's
// cycle barrier orders them.

type ceCtl struct {
	q        []*ce.Instr
	poll     func(cycle int64) bool
	finished bool
	// cdSeen is the last concurrency-bus generation this CE processed;
	// the bus broadcast can fire before a slow worker enters the phase,
	// and this counter guarantees it still joins that loop.
	cdSeen int

	// ev counts this participant's runtime events, indexed by kind-1.
	ev [evKinds]int64
	// phaseStart[k] is the cycle this participant entered phase k (-1
	// until then); the span start is the minimum over participants.
	phaseStart []int64
	// trace buffers tracer events on a sharded machine, flushed to the
	// shared tracer in participant order by the engine's drain phase.
	trace []perfmon.Event
}

type phaseRes struct {
	counter  uint64
	barCount uint64
	barFlag  uint64
}

type clusterCtl struct {
	cl      *core.Cluster
	gen     int
	cd      *CDoall
	iterArg int
	startAt int64
	// cdStartCy is the broadcast cycle of the CDOALL in flight, the start
	// of its trace span (closed by the last join arrival).
	cdStartCy int64
	// donePhase is the index of the SDOALL phase this cluster's master
	// has completed (-1 initially); per-phase so stale completion from
	// an earlier SDOALL cannot release workers early.
	donePhase int
}

// New builds a runtime for the given machine, config and phases.
func New(m *core.Machine, cfg Config, phases ...Phase) *Runtime {
	nclusters := cfg.Clusters
	if nclusters <= 0 || nclusters > len(m.Clusters) {
		nclusters = len(m.Clusters)
	}
	r := &Runtime{
		m:           m,
		cfg:         cfg,
		ph:          phases,
		ceIdx:       make(map[int]int),
		pollBackoff: 25,
	}
	hasSDoall := false
	for _, ph := range phases {
		if _, ok := ph.(SDoall); ok {
			hasSDoall = true
		}
	}
	for c := 0; c < nclusters; c++ {
		cluster := m.Clusters[c]
		r.clusters = append(r.clusters, &clusterCtl{cl: cluster, donePhase: -1})
		for _, e := range cluster.CEs {
			if !hasSDoall && cfg.MaxCEs > 0 && len(r.ces) >= cfg.MaxCEs {
				break
			}
			r.ceIdx[e.ID] = len(r.ces)
			r.ces = append(r.ces, e)
			r.ctl = append(r.ctl, &ceCtl{})
		}
	}
	// Global words for scheduling: a phase flag, a claim lock, and
	// per-phase claim counters and barrier words, spread across modules.
	r.flagAddr = m.AllocGlobal(1)
	r.lockAddr = m.AllocGlobal(1)
	for range phases {
		r.res = append(r.res, phaseRes{
			counter:  m.AllocGlobal(1),
			barCount: m.AllocGlobal(1),
			barFlag:  m.AllocGlobal(1),
		})
	}
	r.obs = m.Scope
	for ci, e := range r.ces {
		c := r.ctl[ci]
		c.phaseStart = make([]int64, len(phases))
		for i := range c.phaseStart {
			c.phaseStart[i] = -1
		}
		r.sinks = append(r.sinks, m.ClusterScope(e.Cluster))
	}
	r.obs.Counter("cfrt.phase_enters", func() int64 { return r.sumEv(EvPhaseEnter) })
	r.obs.Counter("cfrt.claims", func() int64 { return r.sumEv(EvClaim) })
	r.obs.Counter("cfrt.barrier_arrivals", func() int64 { return r.sumEv(EvBarrierArrive) })
	r.obs.Counter("cfrt.cd_starts", func() int64 { return r.sumEv(EvCDStart) })
	r.obs.Counter("cfrt.cd_joins", func() int64 { return r.sumEv(EvCDJoin) })
	// On a sharded machine the tracer buffers flush once per cycle, in
	// participant order — the order the sequential schedule posts in.
	m.AddDrain(func(int64) { r.flushTrace() })
	// Library path lengths: the non-sync claim performs the full lock /
	// read / increment / write / unlock sequence over the network (≈4
	// round trips ≈ 52 cycles); the rest of the ≈30 µs iteration fetch
	// is library code modeled as scalar work. The Cedar-sync path is a
	// short stub plus a single Test-And-Add.
	r.lockPathCycles = int64(m.P.XDoallFetchLock) - 52
	if r.lockPathCycles < 0 {
		r.lockPathCycles = 0
	}
	r.syncPathCycles = 8

	for ci := range r.ces {
		r.enterPhase(ci, 0)
	}
	return r
}

// Participants returns the CEs this runtime drives.
func (r *Runtime) Participants() []*ce.CE { return r.ces }

// Run installs the runtime on its participants and runs to completion.
func (r *Runtime) Run(limit int64) (core.Result, error) {
	return r.m.RunOn(r.ces, r, limit)
}

// P returns the participant count.
func (r *Runtime) P() int { return len(r.ces) }

// Next implements ce.Controller.
func (r *Runtime) Next(ceID int, cycle int64) (*ce.Instr, ce.Status) {
	ci, ok := r.ceIdx[ceID]
	if !ok {
		return nil, ce.Finished
	}
	c := r.ctl[ci]
	for {
		if len(c.q) > 0 {
			in := c.q[0]
			c.q = c.q[1:]
			return in, ce.Ready
		}
		if c.finished {
			return nil, ce.Finished
		}
		if c.poll != nil && c.poll(cycle) {
			continue
		}
		return nil, ce.Wait
	}
}

func (r *Runtime) enq(ci int, ins ...*ce.Instr) {
	r.ctl[ci].q = append(r.ctl[ci].q, ins...)
}

// after enqueues a zero-length scalar op whose completion runs f — the
// runtime's "branch" primitive (costs one issue cycle, like real control
// flow at loop ends).
func (r *Runtime) after(ci int, f func(cycle int64)) {
	r.enq(ci, &ce.Instr{Op: ce.OpScalar, Cycles: 0, OnDone: f})
}

// enterPhase routes a participant into phase k. Panics on an unknown
// phase type — a malformed program, not a runtime condition.
func (r *Runtime) enterPhase(ci, k int) {
	if k >= len(r.ph) {
		r.ctl[ci].finished = true
		return
	}
	// The tracer may be attached after construction (phase 0 is entered
	// inside New), so the post is enqueued unconditionally and checks the
	// tracer when it fires.
	r.after(ci, func(cy int64) { r.post(ci, cy, EvPhaseEnter, int64(k)) })
	switch ph := r.ph[k].(type) {
	case Serial:
		if ci == 0 {
			r.enq(ci, ph.Body()...)
		}
		r.barrier(ci, k)

	case XDoall:
		r.startXDoall(ci, k, ph)

	case SDoall:
		r.startSDoall(ci, k, ph)

	default:
		panic(fmt.Sprintf("cfrt: unknown phase type %T", r.ph[k]))
	}
}

// barrier runs the multicluster end-of-phase barrier and then advances the
// participant to phase k+1.
func (r *Runtime) barrier(ci, k int) {
	res := &r.res[k]
	p := int64(len(r.ces))
	r.enq(ci, &ce.Instr{
		Op: ce.OpSync, Addr: res.barCount,
		Test: network.TestAlways, Mut: network.OpAdd, Value: 1,
		OnResult: func(v int64, _ bool, cy int64) {
			r.post(ci, cy, EvBarrierArrive, int64(k))
			if v == p-1 {
				// Last arrival releases the others.
				r.enq(ci, &ce.Instr{
					Op: ce.OpGlobalStore, Addr: res.barFlag, Value: 1,
					OnDone: func(cy2 int64) {
						r.post(ci, cy2, EvBarrierPass, int64(k))
						r.enterPhase(ci, k+1)
					},
				})
			} else {
				r.pollFlag(ci, res.barFlag, 1, func() { r.enterPhase(ci, k+1) })
			}
		},
	})
}

// pollFlag spins on a global word with Test-And-Read until it reaches
// want, then runs cont. Backoff doubles up to a cap so that dozens of
// waiting CEs do not turn the flag's memory module into a hot spot that
// saturates the network for the processors still computing.
func (r *Runtime) pollFlag(ci int, addr uint64, want int64, cont func()) {
	r.pollFlagBackoff(ci, addr, want, r.pollBackoff, cont)
}

const pollBackoffCap = 400

func (r *Runtime) pollFlagBackoff(ci int, addr uint64, want int64, backoff int64, cont func()) {
	r.enq(ci, &ce.Instr{
		Op: ce.OpSync, Addr: addr,
		Test: network.TestGE, TestArg: want, Mut: network.OpNone,
		OnResult: func(_ int64, passed bool, _ int64) {
			if passed {
				cont()
				return
			}
			next := backoff * 2
			if next > pollBackoffCap {
				next = pollBackoffCap
			}
			r.enq(ci, &ce.Instr{Op: ce.OpScalar, Cycles: backoff})
			r.pollFlagBackoff(ci, addr, want, next, cont)
		},
	})
}

// claim performs one iteration claim against the phase counter, honouring
// the Cedar-sync configuration, and hands the ticket to got.
func (r *Runtime) claim(ci, k int, got func(ticket int64)) {
	res := &r.res[k]
	if r.cfg.UseCedarSync {
		r.enq(ci,
			&ce.Instr{Op: ce.OpScalar, Cycles: r.syncPathCycles},
			&ce.Instr{
				Op: ce.OpSync, Addr: res.counter,
				Test: network.TestAlways, Mut: network.OpAdd, Value: 1,
				OnResult: func(v int64, _ bool, cy int64) {
					r.post(ci, cy, EvClaim, v)
					got(v)
				},
			})
		return
	}
	// Library path: scalar prologue, then lock / read / write / unlock.
	r.enq(ci, &ce.Instr{Op: ce.OpScalar, Cycles: r.lockPathCycles})
	r.takeLockThen(ci, func() {
		r.enq(ci, &ce.Instr{
			Op: ce.OpGlobalLoad, Addr: res.counter,
			OnResult: func(v int64, _ bool, _ int64) {
				r.enq(ci,
					&ce.Instr{Op: ce.OpGlobalStore, Addr: res.counter, Value: v + 1},
					&ce.Instr{Op: ce.OpGlobalStore, Addr: r.lockAddr, Value: 0,
						OnDone: func(int64) { got(v) }},
				)
			},
		})
	})
}

func (r *Runtime) takeLockThen(ci int, cont func()) {
	r.enq(ci, &ce.Instr{
		Op: ce.OpSync, Addr: r.lockAddr,
		Test: network.TestEQ, TestArg: 0, Mut: network.OpWrite, Value: 1,
		OnResult: func(_ int64, passed bool, _ int64) {
			if passed {
				cont()
				return
			}
			r.enq(ci, &ce.Instr{Op: ce.OpScalar, Cycles: 20})
			r.takeLockThen(ci, cont)
		},
	})
}

// scalarInstr builds a plain scalar-work instruction.
func scalarInstr(cycles int64) *ce.Instr {
	return &ce.Instr{Op: ce.OpScalar, Cycles: cycles}
}

// storeFlagInstr builds the phase-release store.
func (r *Runtime) storeFlagInstr(k int) *ce.Instr {
	return &ce.Instr{Op: ce.OpGlobalStore, Addr: r.flagAddr, Value: int64(k + 1)}
}
