package cfrt

import (
	"testing"

	"cedar/internal/ce"
	"cedar/internal/perfmon"
)

func TestTracerCapturesRuntimeEvents(t *testing.T) {
	m := mach(t, 2)
	tr := perfmon.NewTracer(1)
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 24, Body: func(i int) []*ce.Instr {
			return []*ce.Instr{{Op: ce.OpScalar, Cycles: 20}}
		}},
		SDoall{N: 2, Body: func(i int) []ClusterPhase {
			return []ClusterPhase{CDoall{N: 8, Body: func(j int) []*ce.Instr {
				return []*ce.Instr{{Op: ce.OpScalar, Cycles: 10}}
			}}}
		}},
	)
	rt.SetTracer(tr)
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}

	kinds := map[uint16]int{}
	for _, e := range tr.Events() {
		kinds[e.Kind]++
		if e.Cycle < 0 {
			t.Fatalf("negative event cycle: %+v", e)
		}
		if e.CE < 0 || e.CE >= 16 {
			t.Fatalf("event from CE %d outside the 2-cluster machine", e.CE)
		}
	}
	// 16 CEs × 2 phases of entry events.
	if kinds[EvPhaseEnter] != 32 {
		t.Errorf("%d phase-enter events, want 32", kinds[EvPhaseEnter])
	}
	// 24 successful claims plus 16 exhausted ones.
	if kinds[EvClaim] < 24 {
		t.Errorf("%d claims, want ≥ 24", kinds[EvClaim])
	}
	// Each CE arrives at each of the two barriers.
	if kinds[EvBarrierArrive] != 32 {
		t.Errorf("%d barrier arrivals, want 32", kinds[EvBarrierArrive])
	}
	// One release store per barrier.
	if kinds[EvBarrierPass] != 2 {
		t.Errorf("%d barrier passes, want 2", kinds[EvBarrierPass])
	}
	// Two SDOALL iterations, one CDOALL broadcast each.
	if kinds[EvCDStart] != 2 {
		t.Errorf("%d cdoall starts, want 2", kinds[EvCDStart])
	}
	// Each broadcast joins all 8 cluster CEs.
	if kinds[EvCDJoin] != 16 {
		t.Errorf("%d cdoall joins, want 16", kinds[EvCDJoin])
	}
}

func TestTracerDetached(t *testing.T) {
	m := mach(t, 1)
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 4, Body: func(i int) []*ce.Instr {
			return []*ce.Instr{{Op: ce.OpScalar, Cycles: 5}}
		}})
	// No tracer attached: must run without posting anywhere.
	if _, err := rt.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestEventNames(t *testing.T) {
	for _, k := range []uint16{EvPhaseEnter, EvClaim, EvBarrierArrive, EvBarrierPass, EvCDStart, EvCDJoin} {
		if EventName(k) == "unknown" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if EventName(999) != "unknown" {
		t.Error("unknown kind should report unknown")
	}
}
