package cfrt

import "cedar/internal/perfmon"

// Event kinds the runtime posts to an attached tracer — the paper's
// software event tracing ("It is also possible to post events to the
// performance hardware from programs executing on Cedar").
const (
	// EvPhaseEnter: a CE entered phase Value.
	EvPhaseEnter uint16 = iota + 1
	// EvClaim: a CE claimed iteration Value.
	EvClaim
	// EvBarrierArrive: a CE arrived at the phase-Value barrier.
	EvBarrierArrive
	// EvBarrierPass: a CE passed the phase-Value barrier.
	EvBarrierPass
	// EvCDStart: a cluster master broadcast a CDOALL of Value iterations.
	EvCDStart
	// EvCDJoin: a CE completed a cluster join.
	EvCDJoin
)

// EventName renders a runtime event kind.
func EventName(kind uint16) string {
	switch kind {
	case EvPhaseEnter:
		return "phase-enter"
	case EvClaim:
		return "claim"
	case EvBarrierArrive:
		return "barrier-arrive"
	case EvBarrierPass:
		return "barrier-pass"
	case EvCDStart:
		return "cdoall-start"
	case EvCDJoin:
		return "cdoall-join"
	}
	return "unknown"
}

// SetTracer attaches a perfmon tracer; nil detaches. Events are posted
// with the participant's CE id and the cycle at which the triggering
// instruction completed.
func (r *Runtime) SetTracer(tr *perfmon.Tracer) { r.tracer = tr }

// post records a runtime event if a tracer is attached.
func (r *Runtime) post(ci int, cycle int64, kind uint16, value int64) {
	if r.tracer == nil {
		return
	}
	r.tracer.Post(perfmon.Event{
		Cycle: cycle,
		Kind:  kind,
		CE:    int32(r.ces[ci].ID),
		Value: value,
	})
}
