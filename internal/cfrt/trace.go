package cfrt

import (
	"fmt"

	"cedar/internal/perfmon"
)

// Event kinds the runtime posts to an attached tracer — the paper's
// software event tracing ("It is also possible to post events to the
// performance hardware from programs executing on Cedar").
const (
	// EvPhaseEnter: a CE entered phase Value.
	EvPhaseEnter uint16 = iota + 1
	// EvClaim: a CE claimed iteration Value.
	EvClaim
	// EvBarrierArrive: a CE arrived at the phase-Value barrier.
	EvBarrierArrive
	// EvBarrierPass: a CE passed the phase-Value barrier.
	EvBarrierPass
	// EvCDStart: a cluster master broadcast a CDOALL of Value iterations.
	EvCDStart
	// EvCDJoin: a CE completed a cluster join.
	EvCDJoin
)

// EventName renders a runtime event kind.
func EventName(kind uint16) string {
	switch kind {
	case EvPhaseEnter:
		return "phase-enter"
	case EvClaim:
		return "claim"
	case EvBarrierArrive:
		return "barrier-arrive"
	case EvBarrierPass:
		return "barrier-pass"
	case EvCDStart:
		return "cdoall-start"
	case EvCDJoin:
		return "cdoall-join"
	}
	return "unknown"
}

// SetTracer attaches a perfmon tracer; nil detaches. Events are posted
// with the participant's CE id and the cycle at which the triggering
// instruction completed.
func (r *Runtime) SetTracer(tr *perfmon.Tracer) { r.tracer = tr }

// post records a runtime event if a tracer is attached, and feeds the
// observability hub's counters and phase spans.
func (r *Runtime) post(ci int, cycle int64, kind uint16, value int64) {
	r.observe(cycle, kind, value)
	if r.tracer == nil {
		return
	}
	r.tracer.Post(perfmon.Event{
		Cycle: cycle,
		Kind:  kind,
		CE:    int32(r.ces[ci].ID),
		Value: value,
	})
}

// observe folds a runtime event into the scope hub: every kind bumps a
// counter, the first phase entry opens the phase span, and the barrier
// pass (which fires exactly once per phase, on the last arrival) closes
// it on the "cfrt/phases" track.
func (r *Runtime) observe(cycle int64, kind uint16, value int64) {
	if r.obs == nil {
		return
	}
	switch kind {
	case EvPhaseEnter:
		r.nPhaseEnters++
		if k := int(value); r.phaseStart[k] < 0 {
			r.phaseStart[k] = cycle
		}
	case EvClaim:
		r.nClaims++
	case EvBarrierArrive:
		r.nBarrierArrivals++
	case EvBarrierPass:
		k := int(value)
		start := r.phaseStart[k]
		if start < 0 {
			start = cycle
		}
		r.obs.Span("cfrt/phases", r.phaseName(k), start, cycle)
	case EvCDStart:
		r.nCDStarts++
	case EvCDJoin:
		r.nCDJoins++
	}
}

// phaseName labels a phase span by index and kind.
func (r *Runtime) phaseName(k int) string {
	switch r.ph[k].(type) {
	case Serial:
		return fmt.Sprintf("phase%d-serial", k)
	case XDoall:
		return fmt.Sprintf("phase%d-xdoall", k)
	case SDoall:
		return fmt.Sprintf("phase%d-sdoall", k)
	}
	return fmt.Sprintf("phase%d", k)
}
