package cfrt

import (
	"fmt"

	"cedar/internal/perfmon"
)

// Event kinds the runtime posts to an attached tracer — the paper's
// software event tracing ("It is also possible to post events to the
// performance hardware from programs executing on Cedar").
const (
	// EvPhaseEnter: a CE entered phase Value.
	EvPhaseEnter uint16 = iota + 1
	// EvClaim: a CE claimed iteration Value.
	EvClaim
	// EvBarrierArrive: a CE arrived at the phase-Value barrier.
	EvBarrierArrive
	// EvBarrierPass: a CE passed the phase-Value barrier.
	EvBarrierPass
	// EvCDStart: a cluster master broadcast a CDOALL of Value iterations.
	EvCDStart
	// EvCDJoin: a CE completed a cluster join.
	EvCDJoin

	// evKinds is the number of event kinds, for per-participant counts.
	evKinds = int(EvCDJoin)
)

// EventName renders a runtime event kind.
func EventName(kind uint16) string {
	switch kind {
	case EvPhaseEnter:
		return "phase-enter"
	case EvClaim:
		return "claim"
	case EvBarrierArrive:
		return "barrier-arrive"
	case EvBarrierPass:
		return "barrier-pass"
	case EvCDStart:
		return "cdoall-start"
	case EvCDJoin:
		return "cdoall-join"
	}
	return "unknown"
}

// SetTracer attaches a perfmon tracer; nil detaches. Events are posted
// with the participant's CE id and the cycle at which the triggering
// instruction completed.
func (r *Runtime) SetTracer(tr *perfmon.Tracer) { r.tracer = tr }

// post records a runtime event if a tracer is attached, and feeds the
// observability hub's counters and phase spans. It always runs inside
// the posting participant's tick, so everything it writes is the
// participant's own (or its cluster shard's) state.
func (r *Runtime) post(ci int, cycle int64, kind uint16, value int64) {
	r.observe(ci, cycle, kind, value)
	if r.tracer == nil {
		return
	}
	ev := perfmon.Event{
		Cycle: cycle,
		Kind:  kind,
		CE:    int32(r.ces[ci].ID),
		Value: value,
	}
	if r.m.Sharded() {
		// The tracer is shared across clusters; buffer per participant
		// and flush in participant order at the engine's drain phase.
		r.ctl[ci].trace = append(r.ctl[ci].trace, ev)
		return
	}
	r.tracer.Post(ev)
}

// flushTrace forwards buffered tracer events in participant order —
// within one cycle, the order a sequential pass posts in, because each
// participant's posts happen during its own tick and ticks run in index
// order.
func (r *Runtime) flushTrace() {
	if r.tracer == nil {
		return
	}
	for _, c := range r.ctl {
		for i := range c.trace {
			r.tracer.Post(c.trace[i])
		}
		c.trace = c.trace[:0]
	}
}

// sumEv totals one event kind over every participant. Reads happen at
// snapshot time, after (or between) cycles, so the per-participant
// counts are quiescent.
func (r *Runtime) sumEv(kind uint16) int64 {
	var v int64
	for _, c := range r.ctl {
		v += c.ev[kind-1]
	}
	return v
}

// observe folds a runtime event into the scope hub: every kind bumps the
// participant's counter, the first phase entry opens the phase span, and
// the barrier pass (which fires exactly once per phase, on the last
// arrival, cycles after every participant's entry) closes it on the
// "cfrt/phases" track.
func (r *Runtime) observe(ci int, cycle int64, kind uint16, value int64) {
	if r.obs == nil {
		return
	}
	c := r.ctl[ci]
	c.ev[kind-1]++
	switch kind {
	case EvPhaseEnter:
		if k := int(value); c.phaseStart[k] < 0 {
			c.phaseStart[k] = cycle
		}
	case EvBarrierPass:
		k := int(value)
		start := int64(-1)
		for _, o := range r.ctl {
			if s := o.phaseStart[k]; s >= 0 && (start < 0 || s < start) {
				start = s
			}
		}
		if start < 0 {
			start = cycle
		}
		r.sinks[ci].Span("cfrt/phases", r.phaseName(k), start, cycle)
	}
}

// phaseName labels a phase span by index and kind.
func (r *Runtime) phaseName(k int) string {
	switch r.ph[k].(type) {
	case Serial:
		return fmt.Sprintf("phase%d-serial", k)
	case XDoall:
		return fmt.Sprintf("phase%d-xdoall", k)
	case SDoall:
		return fmt.Sprintf("phase%d-sdoall", k)
	}
	return fmt.Sprintf("phase%d", k)
}
