package cfrt

import (
	"math/rand"
	"testing"

	"cedar/internal/ce"
)

// TestRandomProgramsTerminateAndCover is a fuzz-style property test: the
// runtime must execute every iteration of every phase exactly once and
// terminate, for arbitrary mixes of phase types, scheduling policies,
// cluster restrictions and sync configurations.
func TestRandomProgramsTerminateAndCover(t *testing.T) {
	rng := rand.New(rand.NewSource(1993))
	for trial := 0; trial < 12; trial++ {
		clusters := 1 + rng.Intn(4)
		m := mach(t, clusters)
		cfg := Config{
			UseCedarSync: rng.Intn(2) == 0,
		}
		if rng.Intn(3) == 0 {
			cfg.Clusters = 1 + rng.Intn(clusters)
		}

		type unit struct{ phase, iter, sub int }
		counts := make(map[unit]int)
		var want []unit

		nPhases := 1 + rng.Intn(4)
		var phases []Phase
		for pi := 0; pi < nPhases; pi++ {
			pi := pi
			switch rng.Intn(3) {
			case 0: // Serial
				want = append(want, unit{pi, 0, 0})
				phases = append(phases, Serial{Body: func() []*ce.Instr {
					return []*ce.Instr{{Op: ce.OpScalar, Cycles: int64(1 + rng.Intn(40)),
						OnDone: func(int64) { counts[unit{pi, 0, 0}]++ }}}
				}})
			case 1: // XDoall with a random policy
				n := 1 + rng.Intn(60)
				sched := Schedule(rng.Intn(3))
				for i := 0; i < n; i++ {
					want = append(want, unit{pi, i, 0})
				}
				cost := int64(1 + rng.Intn(80))
				phases = append(phases, XDoall{N: n, Sched: sched,
					Body: func(i int) []*ce.Instr {
						return []*ce.Instr{{Op: ce.OpScalar, Cycles: cost,
							OnDone: func(int64) { counts[unit{pi, i, 0}]++ }}}
					}})
			default: // SDoall with a CDoall nest
				n := 1 + rng.Intn(6)
				inner := 1 + rng.Intn(12)
				static := rng.Intn(2) == 0
				for i := 0; i < n; i++ {
					for j := 0; j < inner; j++ {
						want = append(want, unit{pi, i, j + 1})
					}
				}
				cost := int64(1 + rng.Intn(60))
				phases = append(phases, SDoall{N: n, Static: static,
					Body: func(i int) []ClusterPhase {
						return []ClusterPhase{CDoall{N: inner,
							Body: func(j int) []*ce.Instr {
								return []*ce.Instr{{Op: ce.OpScalar, Cycles: cost,
									OnDone: func(int64) { counts[unit{pi, i, j + 1}]++ }}}
							}}}
					}})
			}
		}

		rt := New(m, cfg, phases...)
		if _, err := rt.Run(500_000_000); err != nil {
			t.Fatalf("trial %d (%d clusters, cfg %+v): %v", trial, clusters, cfg, err)
		}
		for _, u := range want {
			if counts[u] != 1 {
				t.Fatalf("trial %d: unit %+v ran %d times", trial, u, counts[u])
			}
		}
		if len(counts) != len(want) {
			t.Fatalf("trial %d: %d units ran, want %d", trial, len(counts), len(want))
		}
	}
}
