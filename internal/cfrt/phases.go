// Package cfrt models the Cedar Fortran runtime library: the loop
// scheduling machinery that CEDAR FORTRAN programs use to run DOALL loops
// across the machine.
//
// Three loop levels exist, matching the language:
//
//   - CDOALL schedules iterations on the CEs of one cluster through the
//     concurrency control bus: concurrent-start broadcasts the loop in a
//     few microseconds and CEs self-schedule with short bus transactions.
//   - SDOALL schedules each iteration on an entire cluster. The iteration
//     starts on one CE of the cluster; the other CEs remain idle until a
//     CDOALL executes within the SDOALL body.
//   - XDOALL uses all processors in the machine, scheduling through the
//     runtime library in global memory: loop startup costs ≈90 µs and
//     fetching the next iteration ≈30 µs — unless Cedar synchronization
//     instructions are used, in which case a claim is one Test-And-Add
//     round trip. This is exactly the "no Cedar synchronization" ablation
//     of Table 3.
//
// Loops can be self-scheduled or statically chunked, again matching the
// runtime library options the paper describes.
package cfrt

import "cedar/internal/ce"

// BodyFn produces the instruction sequence of one loop iteration.
type BodyFn func(iter int) []*ce.Instr

// Phase is one machine-wide step of a program. Phases are separated by
// multicluster barriers through global memory.
type Phase interface{ isPhase() }

// Serial runs on CE 0 while every other CE waits at the phase barrier.
type Serial struct {
	Body func() []*ce.Instr
}

func (Serial) isPhase() {}

// XDoall spreads N iterations over every CE in the machine.
type XDoall struct {
	N    int
	Body BodyFn
	// Static pre-chunks iterations instead of self-scheduling claims
	// (shorthand for Sched: StaticSchedule).
	Static bool
	// Sched selects the scheduling policy when Static is false:
	// SelfSchedule (default) or GuidedSchedule.
	Sched Schedule
}

// schedule resolves the effective policy.
func (x XDoall) schedule() Schedule {
	if x.Static {
		return StaticSchedule
	}
	return x.Sched
}

func (XDoall) isPhase() {}

// SDoall schedules iterations on whole clusters. Each iteration's body is
// a sequence of cluster phases.
type SDoall struct {
	N    int
	Body func(iter int) []ClusterPhase
	// Static assigns iteration i to cluster i mod clusters — the
	// affinity scheduling CEDAR FORTRAN uses to keep successive SDOALLs
	// on the same data partitions.
	Static bool
}

func (SDoall) isPhase() {}

// ClusterPhase is one step of an SDOALL iteration, executed by one cluster.
type ClusterPhase interface{ isClusterPhase() }

// ClusterSerial runs on the cluster's master CE.
type ClusterSerial struct {
	Body func() []*ce.Instr
}

func (ClusterSerial) isClusterPhase() {}

// CDoall spreads N iterations over the cluster's CEs via the concurrency
// control bus.
type CDoall struct {
	N    int
	Body BodyFn
	// Static claims ceil(N/8) iterations per bus transaction.
	Static bool
}

func (CDoall) isClusterPhase() {}

// Config selects runtime library options.
type Config struct {
	// UseCedarSync claims XDOALL/SDOALL iterations with a single
	// Test-And-Add executed by the memory's synchronization processor.
	// Without it the library takes a Test-And-Set lock and performs the
	// read-increment-write-unlock sequence over the network, ≈30 µs per
	// claim (the paper's "No Synchronization" column).
	UseCedarSync bool
	// Clusters restricts execution to the first n clusters (0 = all).
	// The Perfect rules confined some codes to one cluster to avoid
	// intercluster overhead.
	Clusters int
	// MaxCEs restricts execution to the first n CEs across the
	// participating clusters (0 = all); used by processor-count sweeps
	// such as the CG scalability study. SDOALL phases require whole
	// clusters and ignore this limit.
	MaxCEs int
}
