package cfrt

import (
	"testing"
	"testing/quick"

	"cedar/internal/ce"
)

func TestGSSChunkSequence(t *testing.T) {
	// Classic GSS on n=100, p=4: 25, 19, 14, 11, 8, 6, 5, 3, 3, 2, 1, ...
	n, p := 100, 4
	claimed := int64(0)
	var chunks []int
	for {
		c := gssChunk(n, claimed, p)
		if c == 0 {
			break
		}
		chunks = append(chunks, c)
		claimed += int64(c)
	}
	if chunks[0] != 25 {
		t.Errorf("first chunk %d, want 25", chunks[0])
	}
	sum := 0
	for i, c := range chunks {
		sum += c
		if i > 0 && c > chunks[i-1] {
			t.Errorf("chunks not non-increasing: %v", chunks)
			break
		}
	}
	if sum != n {
		t.Errorf("chunks cover %d, want %d", sum, n)
	}
	if last := chunks[len(chunks)-1]; last != 1 {
		t.Errorf("last chunk %d, want 1", last)
	}
}

func TestGSSChunkProperty(t *testing.T) {
	f := func(nn, cc uint16, pp uint8) bool {
		n := int(nn%10000) + 1
		claimed := int64(cc) % int64(n+10)
		p := int(pp%64) + 1
		c := gssChunk(n, claimed, p)
		if claimed >= int64(n) {
			return c == 0
		}
		rem := n - int(claimed)
		return c >= 1 && c <= rem && c >= rem/p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGuidedScheduleCoversAll(t *testing.T) {
	m := mach(t, 4)
	var recs []record
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 157, Sched: GuidedSchedule, Body: bodyRecording(&recs, 20)})
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	coverage(t, recs, 157)
}

func TestGuidedScheduleWithoutCedarSync(t *testing.T) {
	m := mach(t, 2)
	var recs []record
	rt := New(m, Config{UseCedarSync: false},
		XDoall{N: 64, Sched: GuidedSchedule, Body: bodyRecording(&recs, 15)})
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	coverage(t, recs, 64)
}

func TestGuidedFewerClaimsThanSelf(t *testing.T) {
	// GSS's point: far fewer scheduling operations for the same loop.
	countClaims := func(sched Schedule) int64 {
		m := mach(t, 4)
		var recs []record
		rt := New(m, Config{UseCedarSync: true},
			XDoall{N: 512, Sched: sched, Body: bodyRecording(&recs, 10)})
		if _, err := rt.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		coverage(t, recs, 512)
		return m.Mem.Stats().SyncOps
	}
	self := countClaims(SelfSchedule)
	guided := countClaims(GuidedSchedule)
	// Both counts include the same barrier and startup-flag traffic
	// (≈290 sync ops of noise); the claim traffic itself drops from 512
	// to ≈P·log(N/P) ≈ 90.
	if float64(guided) >= float64(self)*0.6 {
		t.Errorf("guided used %d sync ops vs self-scheduling's %d; want a large reduction", guided, self)
	}
}

func TestGuidedBalancesIrregularLoop(t *testing.T) {
	// Iterations with wildly uneven cost: guided scheduling must not be
	// much worse than self-scheduling (which has perfect balance), and
	// must clearly beat static chunking (which strands the expensive
	// tail on one CE).
	body := func(i int) []*ce.Instr {
		cost := int64(10)
		if i >= 480 {
			cost = 2000 // expensive tail
		}
		return []*ce.Instr{{Op: ce.OpScalar, Cycles: cost}}
	}
	run := func(sched Schedule) int64 {
		m := mach(t, 4)
		rt := New(m, Config{UseCedarSync: true},
			XDoall{N: 512, Sched: sched, Body: body})
		res, err := rt.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	static := run(StaticSchedule)
	guided := run(GuidedSchedule)
	if guided >= static {
		t.Errorf("guided (%d cyc) not better than static (%d cyc) on an imbalanced tail", guided, static)
	}
}

func TestStaticShorthandStillWorks(t *testing.T) {
	x := XDoall{Static: true}
	if x.schedule() != StaticSchedule {
		t.Error("Static flag should select StaticSchedule")
	}
	x = XDoall{Sched: GuidedSchedule}
	if x.schedule() != GuidedSchedule {
		t.Error("Sched field ignored")
	}
	if (XDoall{}).schedule() != SelfSchedule {
		t.Error("default should be self-scheduling")
	}
}
