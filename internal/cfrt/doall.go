package cfrt

import "fmt"

// startXDoall enters an XDOALL phase for one participant: the machine-wide
// loop whose startup and scheduling run through global memory.
func (r *Runtime) startXDoall(ci, k int, ph XDoall) {
	work := func() {
		switch ph.schedule() {
		case StaticSchedule:
			p := len(r.ces)
			lo := ci * ph.N / p
			hi := (ci + 1) * ph.N / p
			r.runChunk(ci, k, ph.Body, lo, hi)
		case GuidedSchedule:
			r.guidedLoop(ci, k, ph)
		default:
			r.claimLoop(ci, k, ph)
		}
	}
	if ci == 0 {
		// The initiating processor pays the ≈90 µs library startup and
		// then releases the machine by writing the phase flag.
		r.enq(ci, scalarInstr(int64(r.m.P.XDoallStartup)), r.storeFlagInstr(k))
		r.after(ci, func(int64) { work() })
		return
	}
	r.pollFlag(ci, r.flagAddr, int64(k+1), work)
}

// runChunk executes iterations [lo, hi) sequentially, then barriers.
func (r *Runtime) runChunk(ci, k int, body BodyFn, lo, hi int) {
	if lo >= hi {
		r.barrier(ci, k)
		return
	}
	r.enq(ci, body(lo)...)
	r.after(ci, func(int64) { r.runChunk(ci, k, body, lo+1, hi) })
}

// claimLoop self-schedules iterations until the counter runs out.
func (r *Runtime) claimLoop(ci, k int, ph XDoall) {
	r.claim(ci, k, func(ticket int64) {
		if ticket >= int64(ph.N) {
			r.barrier(ci, k)
			return
		}
		r.enq(ci, ph.Body(int(ticket))...)
		r.after(ci, func(int64) { r.claimLoop(ci, k, ph) })
	})
}

// startSDoall enters an SDOALL phase: iterations are claimed by cluster
// masters; the other CEs of each cluster watch the concurrency control
// bus for CDOALLs spawned inside the iteration body.
func (r *Runtime) startSDoall(ci, k int, ph SDoall) {
	e := r.ces[ci]
	cs := r.clusterForCE(ci)
	if e.IDInCluster != 0 {
		// Worker: wait for bus broadcasts until the cluster is done.
		r.workerWait(ci, k, cs)
		return
	}
	clusterIdx := r.clusterIndex(cs)
	work := func() {
		if ph.Static {
			r.masterStatic(ci, k, ph, cs, clusterIdx, clusterIdx)
		} else {
			r.masterClaim(ci, k, ph, cs)
		}
	}
	if ci == 0 {
		r.enq(ci, scalarInstr(int64(r.m.P.XDoallStartup)), r.storeFlagInstr(k))
		r.after(ci, func(int64) { work() })
		return
	}
	r.pollFlag(ci, r.flagAddr, int64(k+1), work)
}

// clusterForCE resolves a CE index to its participating cluster. Panics
// if the CE belongs to no participating cluster — a scheduling bug.
func (r *Runtime) clusterForCE(ci int) *clusterCtl {
	cl := r.ces[ci].Cluster
	for _, cs := range r.clusters {
		if cs.cl.ID == cl {
			return cs
		}
	}
	panic("cfrt: CE outside participating clusters")
}

func (r *Runtime) clusterIndex(cs *clusterCtl) int {
	for i, c := range r.clusters {
		if c == cs {
			return i
		}
	}
	return -1
}

// masterStatic runs SDOALL iterations iter, iter+stride, ... on this
// cluster — the affinity scheduling that keeps partitions in place.
func (r *Runtime) masterStatic(ci, k int, ph SDoall, cs *clusterCtl, iter, first int) {
	_ = first
	if iter >= ph.N {
		cs.donePhase = k
		r.barrier(ci, k)
		return
	}
	r.runClusterWork(ci, k, cs, iter, ph.Body(iter), 0, func() {
		r.masterStatic(ci, k, ph, cs, iter+len(r.clusters), first)
	})
}

// masterClaim self-schedules SDOALL iterations through the global counter.
func (r *Runtime) masterClaim(ci, k int, ph SDoall, cs *clusterCtl) {
	r.claim(ci, k, func(ticket int64) {
		if ticket >= int64(ph.N) {
			cs.donePhase = k
			r.barrier(ci, k)
			return
		}
		iter := int(ticket)
		r.runClusterWork(ci, k, cs, iter, ph.Body(iter), 0, func() {
			r.masterClaim(ci, k, ph, cs)
		})
	})
}

// runClusterWork executes the j-th cluster phase of an SDOALL iteration on
// the master, then cont. Panics on an unknown cluster-phase type — a
// malformed program, not a runtime condition.
func (r *Runtime) runClusterWork(ci, k int, cs *clusterCtl, iter int, work []ClusterPhase, j int, cont func()) {
	if j >= len(work) {
		cont()
		return
	}
	next := func() { r.runClusterWork(ci, k, cs, iter, work, j+1, cont) }
	switch cp := work[j].(type) {
	case ClusterSerial:
		// Data private to an SDOALL iteration but shared by the cluster
		// lives in cluster memory; the serial part runs on the master
		// while workers keep watching the bus.
		r.enq(ci, cp.Body()...)
		r.after(ci, func(int64) { next() })

	case CDoall:
		cd := cp
		r.after(ci, func(cy int64) {
			at := cs.cl.Bus.ConcurrentStart(cy, cd.N)
			r.post(ci, cy, EvCDStart, int64(cd.N))
			cs.cd = &cd
			cs.iterArg = iter
			cs.startAt = at
			cs.cdStartCy = cy
			cs.gen++
			r.waitUntil(ci, at, func() {
				r.cdClaim(ci, k, cs, &cd, iter, true, next)
			})
		})

	default:
		panic("cfrt: unknown cluster phase")
	}
}

// workerWait parks a non-master CE until the bus broadcasts a CDOALL (or
// the cluster's SDOALL work ends). Watching the bus is free — the
// concurrency control hardware wakes CEs directly.
func (r *Runtime) workerWait(ci, k int, cs *clusterCtl) {
	ctl := r.ctl[ci]
	ctl.poll = func(cy int64) bool {
		if cs.gen > ctl.cdSeen {
			// Joins are cluster-wide, so the master is never more than
			// one generation ahead of any worker.
			ctl.poll = nil
			ctl.cdSeen = cs.gen
			cd := cs.cd
			iter := cs.iterArg
			r.waitUntil(ci, cs.startAt, func() {
				r.cdClaim(ci, k, cs, cd, iter, false, func() {
					r.workerWait(ci, k, cs)
				})
			})
			return true
		}
		if cs.donePhase == k {
			ctl.poll = nil
			r.barrier(ci, k)
			return true
		}
		return false
	}
}

// cdClaim self-schedules (or block-claims) CDOALL iterations on the bus,
// then joins; after the join completes, cont runs.
func (r *Runtime) cdClaim(ci, k int, cs *clusterCtl, cd *CDoall, iter int, isMaster bool, cont func()) {
	r.after(ci, func(cy int64) {
		if cd.Static {
			chunk := (cd.N + len(cs.cl.CEs) - 1) / len(cs.cl.CEs)
			first, count, at := cs.cl.Bus.ClaimBlock(cy, chunk)
			if count == 0 {
				r.waitUntil(ci, at, func() { r.cdJoin(ci, cs, cont) })
				return
			}
			r.waitUntil(ci, at, func() {
				r.runCDBlock(ci, cd, iter, first, first+count, func() {
					r.cdClaim(ci, k, cs, cd, iter, isMaster, cont)
				})
			})
			return
		}
		j, at := cs.cl.Bus.Claim(cy)
		if j < 0 {
			r.waitUntil(ci, at, func() { r.cdJoin(ci, cs, cont) })
			return
		}
		r.waitUntil(ci, at, func() {
			r.enq(ci, cd.Body(j)...)
			r.after(ci, func(int64) {
				r.cdClaim(ci, k, cs, cd, iter, isMaster, cont)
			})
		})
	})
}

func (r *Runtime) runCDBlock(ci int, cd *CDoall, iter, lo, hi int, cont func()) {
	if lo >= hi {
		cont()
		return
	}
	r.enq(ci, cd.Body(lo)...)
	r.after(ci, func(int64) { r.runCDBlock(ci, cd, iter, lo+1, hi, cont) })
}

// cdJoin arrives at the cluster join and waits for it to complete.
func (r *Runtime) cdJoin(ci int, cs *clusterCtl, cont func()) {
	r.after(ci, func(cy int64) {
		gen, doneAt, last := cs.cl.Bus.JoinArrive(cy)
		r.post(ci, cy, EvCDJoin, gen)
		if last {
			// The last arrival closes the loop instance's trace span:
			// broadcast to join completion. The post runs inside this
			// CE's tick, so it goes through the cluster's sink.
			r.sinks[ci].Span(fmt.Sprintf("cfrt/cluster%d", cs.cl.ID),
				"cdoall", cs.cdStartCy, doneAt)
			r.waitUntil(ci, doneAt, cont)
			return
		}
		r.ctl[ci].poll = func(pollCy int64) bool {
			at, ok := cs.cl.Bus.JoinDone(gen, pollCy)
			if !ok {
				return false
			}
			r.ctl[ci].poll = nil
			r.waitUntil(ci, at, cont)
			return true
		}
	})
}

// waitUntil stalls the participant until the target cycle, then cont.
func (r *Runtime) waitUntil(ci int, target int64, cont func()) {
	r.after(ci, func(cy int64) {
		d := target - cy
		if d > 0 {
			r.enq(ci, scalarInstr(d))
		}
		r.after(ci, func(int64) { cont() })
	})
}
