package cfrt

import (
	"testing"

	"cedar/internal/ce"
	"cedar/internal/core"
	"cedar/internal/params"
)

func mach(t *testing.T, clusters int) *core.Machine {
	t.Helper()
	p := params.Default()
	p.Clusters = clusters
	m, err := core.New(p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// recorder collects which CE ran which iteration at what cycle.
type record struct {
	iter  int
	ce    int
	cycle int64
}

func bodyRecording(recs *[]record, work int64) BodyFn {
	return func(iter int) []*ce.Instr {
		return []*ce.Instr{{
			Op: ce.OpScalar, Cycles: work,
			OnDone: func(cy int64) {
				*recs = append(*recs, record{iter: iter, cycle: cy})
			},
		}}
	}
}

func coverage(t *testing.T, recs []record, n int) {
	t.Helper()
	seen := make(map[int]int)
	for _, r := range recs {
		seen[r.iter]++
	}
	if len(seen) != n {
		t.Fatalf("covered %d iterations, want %d", len(seen), n)
	}
	for it, c := range seen {
		if c != 1 {
			t.Fatalf("iteration %d ran %d times", it, c)
		}
	}
}

func TestXDoallSelfSchedCoversAll(t *testing.T) {
	m := mach(t, 4)
	var recs []record
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 100, Body: bodyRecording(&recs, 50)})
	if _, err := rt.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	coverage(t, recs, 100)
}

func TestXDoallStaticCoversAll(t *testing.T) {
	m := mach(t, 2)
	var recs []record
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 37, Static: true, Body: bodyRecording(&recs, 10)})
	if _, err := rt.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	coverage(t, recs, 37)
}

func TestXDoallStartupNinetyMicroseconds(t *testing.T) {
	// An empty XDOALL costs at least the 90 µs library startup.
	m := mach(t, 4)
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 1, Body: bodyRecording(new([]record), 1)})
	res, err := rt.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	us := res.Seconds * 1e6
	if us < 90 {
		t.Errorf("XDOALL phase took %.1f µs, want ≥ 90 (startup)", us)
	}
	if us > 300 {
		t.Errorf("XDOALL phase took %.1f µs, implausibly long for 1 iteration", us)
	}
}

func TestCedarSyncSpeedsUpFineGrainLoops(t *testing.T) {
	// Small-granularity self-scheduled loop: claims dominate, so Cedar
	// sync must win clearly (the Table 3 "No Synchronization" slowdown).
	const n = 400
	run := func(sync bool) int64 {
		m := mach(t, 4)
		var recs []record
		rt := New(m, Config{UseCedarSync: sync},
			XDoall{N: n, Body: bodyRecording(&recs, 30)})
		res, err := rt.Run(100_000_000)
		if err != nil {
			t.Fatal(err)
		}
		coverage(t, recs, n)
		return res.Cycles
	}
	withSync := run(true)
	without := run(false)
	if without <= withSync {
		t.Fatalf("no-sync (%d cyc) not slower than Cedar sync (%d cyc)", without, withSync)
	}
	if ratio := float64(without) / float64(withSync); ratio < 1.5 {
		t.Errorf("no-sync slowdown only %.2f×, want > 1.5× for fine-grain loop", ratio)
	}
}

func TestSerialPhaseRunsOnCEZeroOnly(t *testing.T) {
	m := mach(t, 2)
	ran := 0
	rt := New(m, Config{UseCedarSync: true},
		Serial{Body: func() []*ce.Instr {
			return []*ce.Instr{{Op: ce.OpScalar, Cycles: 500, Flops: 123,
				OnDone: func(int64) { ran++ }}}
		}})
	res, err := rt.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("serial body ran %d times", ran)
	}
	if res.Flops != 123 {
		t.Errorf("flops = %d, want 123", res.Flops)
	}
}

func TestPhasesAreOrderedByBarriers(t *testing.T) {
	m := mach(t, 4)
	var phase1End, phase2Start int64 = -1, 1 << 62
	b1 := func(iter int) []*ce.Instr {
		return []*ce.Instr{{Op: ce.OpScalar, Cycles: 40, OnDone: func(cy int64) {
			if cy > phase1End {
				phase1End = cy
			}
		}}}
	}
	b2 := func(iter int) []*ce.Instr {
		return []*ce.Instr{{Op: ce.OpScalar, Cycles: 40, OnDone: func(cy int64) {
			start := cy - 40
			if start < phase2Start {
				phase2Start = start
			}
		}}}
	}
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 64, Body: b1},
		XDoall{N: 64, Body: b2},
	)
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if phase2Start <= phase1End {
		t.Fatalf("phase 2 started at %d before phase 1 ended at %d", phase2Start, phase1End)
	}
}

func TestSDoallCDoallNest(t *testing.T) {
	m := mach(t, 4)
	type key struct{ i, j int }
	seen := make(map[key]int)
	rt := New(m, Config{UseCedarSync: true},
		SDoall{N: 8, Body: func(i int) []ClusterPhase {
			return []ClusterPhase{
				ClusterSerial{Body: func() []*ce.Instr {
					return []*ce.Instr{{Op: ce.OpScalar, Cycles: 20}}
				}},
				CDoall{N: 16, Body: func(j int) []*ce.Instr {
					return []*ce.Instr{{Op: ce.OpScalar, Cycles: 25,
						OnDone: func(int64) { seen[key{i, j}]++ }}}
				}},
			}
		}})
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8*16 {
		t.Fatalf("covered %d (i,j) pairs, want %d", len(seen), 8*16)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("pair %v ran %d times", k, c)
		}
	}
}

func TestSDoallUsesAllClusterCEs(t *testing.T) {
	m := mach(t, 1)
	byCE := make(map[int]int)
	rt := New(m, Config{UseCedarSync: true},
		SDoall{N: 1, Body: func(i int) []ClusterPhase {
			return []ClusterPhase{CDoall{N: 160, Body: func(j int) []*ce.Instr {
				return []*ce.Instr{{Op: ce.OpScalar, Cycles: 200}}
			}}}
		}})
	res, err := rt.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Clusters[0].CEs {
		if c.ActiveCycles() > 1000 {
			byCE[c.ID]++
		}
	}
	if len(byCE) != 8 {
		t.Fatalf("only %d CEs did substantial work, want 8", len(byCE))
	}
	// 160 iterations × 200 cycles on 8 CEs ≈ 4000 cycles of body work.
	if res.Cycles > 12000 {
		t.Errorf("CDOALL nest took %d cycles; poor parallelization", res.Cycles)
	}
}

func TestSDoallStaticAffinity(t *testing.T) {
	// Static SDOALL: iteration i runs on cluster i mod 4 with no global
	// claims; every (i, j) pair still runs exactly once.
	m := mach(t, 4)
	type key struct{ i, j int }
	seen := make(map[key]int)
	rt := New(m, Config{UseCedarSync: true},
		SDoall{N: 12, Static: true, Body: func(i int) []ClusterPhase {
			return []ClusterPhase{CDoall{N: 8, Body: func(j int) []*ce.Instr {
				return []*ce.Instr{{Op: ce.OpScalar, Cycles: 30,
					OnDone: func(int64) { seen[key{i, j}]++ }}}
			}}}
		}})
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 12*8 {
		t.Fatalf("covered %d pairs, want %d", len(seen), 12*8)
	}
	for k, c := range seen {
		if c != 1 {
			t.Fatalf("pair %v ran %d times", k, c)
		}
	}
}

func TestClustersRestriction(t *testing.T) {
	// Confining execution to one cluster: only 8 CEs work.
	m := mach(t, 4)
	rt := New(m, Config{UseCedarSync: true, Clusters: 1},
		XDoall{N: 64, Body: func(i int) []*ce.Instr {
			return []*ce.Instr{{Op: ce.OpScalar, Cycles: 100, Flops: 10}}
		}})
	if rt.P() != 8 {
		t.Fatalf("participants = %d, want 8", rt.P())
	}
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, c := range m.CEs {
		if c.Flops() > 0 {
			busy++
		}
	}
	if busy > 8 {
		t.Fatalf("%d CEs did flops, want ≤ 8", busy)
	}
}

func TestTwoSDoallPhasesBackToBack(t *testing.T) {
	// Regression: stale cluster-done state must not release workers early
	// in the second SDOALL phase.
	m := mach(t, 2)
	count := 0
	phase := func() Phase {
		return SDoall{N: 4, Body: func(i int) []ClusterPhase {
			return []ClusterPhase{CDoall{N: 8, Body: func(j int) []*ce.Instr {
				return []*ce.Instr{{Op: ce.OpScalar, Cycles: 10,
					OnDone: func(int64) { count++ }}}
			}}}
		}}
	}
	rt := New(m, Config{UseCedarSync: true}, phase(), phase())
	if _, err := rt.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if count != 2*4*8 {
		t.Fatalf("body ran %d times, want %d", count, 2*4*8)
	}
}

func TestVectorBodiesThroughRuntime(t *testing.T) {
	// End-to-end: an XDOALL whose body is a prefetched global vector op.
	m := mach(t, 4)
	rt := New(m, Config{UseCedarSync: true},
		XDoall{N: 64, Body: func(i int) []*ce.Instr {
			base := uint64(i * 512)
			return []*ce.Instr{{
				Op: ce.OpVector, N: 256, Flops: 2,
				Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: base, Stride: 1, PrefBlock: 256}},
			}}
		}})
	res, err := rt.Run(100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	wantFlops := int64(64 * 256 * 2)
	if res.Flops != wantFlops {
		t.Fatalf("flops = %d, want %d", res.Flops, wantFlops)
	}
	if res.MFLOPS < 20 {
		t.Errorf("aggregate %.1f MFLOPS, want substantial parallel rate", res.MFLOPS)
	}
}
