package gmem

import (
	"fmt"

	"cedar/internal/fault"
	"cedar/internal/network"
	"cedar/internal/params"
)

// Memory is the global shared memory system: MemModules interleaved
// modules. Consecutive 8-byte words map to consecutive modules
// (double-word interleaving). When the network has more ports than
// modules, modules are spread across the port space (module i on port
// i·(ports/modules)) so the destination tags exercise every switch output
// digit — the wiring choice that keeps a 32-module system from funnelling
// all traffic through a quarter of a 64-port network's first-stage
// outputs.
//
// Each module initiates at most one request per MemService cycles, holds a
// pipeline of accesses completing MemLatency cycles after initiation
// (SyncOpLatency more for synchronization instructions), and retires one
// reply per cycle into the reverse network, with back-pressure stalling
// initiation when replies bank up.
type Memory struct {
	p          params.Machine
	fwd        network.Fabric
	rev        network.Fabric
	data       *Store
	mods       []module
	portStride int

	// live lists the in-service module indices; interleaving maps
	// addr % len(live) onto it. Healthy machines list every module, so
	// the mapping reduces to the plain addr % MemModules interleave.
	live []int
	inj  *fault.Injector

	stats Stats
	// lastTick is the last executed cycle, for exact per-cycle counter
	// accounting across engine jumps: a sleeping module's state is frozen,
	// so the skipped cycles contribute gap × (frozen classification).
	lastTick int64
	wake     func(at int64)
}

// Stats holds cumulative memory-system counters. BusyCyc, DrainCyc and
// StallCyc classify each module-cycle into at most one bucket (by the
// module's state at tick entry), so busy+stall never exceeds elapsed
// module-cycles and the attribution conservation law holds exactly.
type Stats struct {
	Reads   int64
	Writes  int64
	SyncOps int64
	Stalls  int64 // initiation stalls due to reply back-pressure (events)
	BusyCyc int64 // module-cycles spent with the pipeline non-empty
	// DrainCyc counts module-cycles with an empty pipeline but replies
	// still staged for the reverse network (the module is draining).
	DrainCyc int64
	// StallCyc counts module-cycles where a consumable request waits at
	// the port but the MemService recovery gap blocks initiation and the
	// module is otherwise empty.
	StallCyc int64
}

type inflight struct {
	pkt  *network.Packet
	done int64
	nack bool // bounce instead of execute (injected PFU NACK)
}

type module struct {
	nextInit int64 // earliest cycle the module may initiate a request
	pipe     []inflight
	out      []*network.Packet // replies awaiting the reverse network
}

// outCap bounds banked-up replies before a module stalls initiation; it
// models the module's reply staging buffer.
const outCap = 4

// never mirrors sim.Never without importing sim (gmem sits below it in
// the layering DAG).
const never = int64(1<<63 - 1)

// New builds the memory system over the given fabrics. The store is shared
// backdoor state: runtime code may Peek/Poke it directly for setup.
func New(p params.Machine, fwd, rev network.Fabric, data *Store) *Memory {
	if data == nil {
		data = NewStore()
	}
	stride := 1
	if fwd != nil && fwd.Ports() > p.MemModules {
		stride = fwd.Ports() / p.MemModules
	}
	m := &Memory{
		p:          p,
		fwd:        fwd,
		rev:        rev,
		data:       data,
		mods:       make([]module, p.MemModules),
		portStride: stride,
		lastTick:   -1,
	}
	m.remap()
	return m
}

// SetFaults installs a fault injector and remaps interleaving around
// any dead banks. Call before the first access: remapping moves
// addresses between modules, so live data does not survive it.
func (m *Memory) SetFaults(inj *fault.Injector) {
	m.inj = inj
	m.remap()
}

// remap rebuilds the live-module list from the injector's dead set.
func (m *Memory) remap() {
	m.live = m.live[:0]
	for i := range m.mods {
		if !m.inj.BankDead(i) {
			m.live = append(m.live, i)
		}
	}
}

// LiveModules returns how many modules are in service.
func (m *Memory) LiveModules() int { return len(m.live) }

// Name implements sim.Component.
func (m *Memory) Name() string { return "gmem" }

// Idle implements sim.Idler.
func (m *Memory) Idle() bool {
	for i := range m.mods {
		md := &m.mods[i]
		if len(md.pipe) > 0 || len(md.out) > 0 {
			return false
		}
	}
	return true
}

// Stats returns cumulative counters.
func (m *Memory) Stats() Stats { return m.stats }

// InFlight returns the accesses currently held in module pipelines plus
// replies awaiting the reverse network — an occupancy gauge for the
// observability hub.
func (m *Memory) InFlight() int {
	n := 0
	for i := range m.mods {
		md := &m.mods[i]
		n += len(md.pipe) + len(md.out)
	}
	return n
}

// Modules returns the module count (the denominator for module-cycle
// attribution).
func (m *Memory) Modules() int { return len(m.mods) }

// Store returns the backdoor store.
func (m *Memory) Store() *Store { return m.data }

// ModuleFor returns the fabric port of the module serving a word
// address. With dead banks the interleave narrows to the live modules:
// the machine degrades in bandwidth instead of faulting on a quarter
// of its address space.
func (m *Memory) ModuleFor(addr uint64) int {
	return m.live[int(addr%uint64(len(m.live)))] * m.portStride
}

// PortOf returns the fabric port of module i.
func (m *Memory) PortOf(i int) int { return i * m.portStride }

// Tick implements sim.Component.
func (m *Memory) Tick(cycle int64) {
	if gap := cycle - m.lastTick - 1; gap > 0 {
		// The engine skipped the memory entirely for gap cycles. A module
		// can only sleep with a non-empty pipeline (busy; replies staged
		// or consumable port traffic force wakefulness) or fully empty
		// (idle), and its state is frozen while asleep, so bulk-adding
		// the gap reproduces the stepped run's counters exactly.
		for i := range m.mods {
			if len(m.mods[i].pipe) > 0 {
				m.stats.BusyCyc += gap
			}
		}
	}
	m.lastTick = cycle
	for i := range m.mods {
		m.tickModule(i, cycle)
	}
}

// SetWaker installs the engine wake callback and hooks the forward
// fabric's port wakers so packets that arrive while the memory sleeps
// rouse it. Until a waker is wired the memory never sleeps: without the
// port hooks a future-wake answer could strand arriving traffic.
func (m *Memory) SetWaker(wake func(at int64)) {
	m.wake = wake
	if m.fwd != nil {
		for i := range m.mods {
			m.fwd.SetPortWaker(m.PortOf(i), wake)
		}
	}
}

// NextWakeup implements sim.Sleeper: the earliest cycle any module must
// act — now while replies are staged (one offer per cycle) or a
// consumable request waits at a port, the earliest pipeline retirement
// or port arrival otherwise. Packets that arrive while the memory
// sleeps wake it through the forward fabric's port wakers.
func (m *Memory) NextWakeup(now int64) int64 {
	if m.wake == nil {
		return now
	}
	w := never
	for i := range m.mods {
		md := &m.mods[i]
		if len(md.out) > 0 {
			return now
		}
		if len(md.pipe) > 0 {
			t := md.pipe[0].done
			if t < now {
				t = now
			}
			if t < w {
				w = t
			}
		}
		if m.fwd != nil {
			if t := m.fwd.NextAt(m.PortOf(i), now); t < w {
				// Wake when the packet is consumable even if nextInit gates
				// actual initiation: the waiting cycles are the module's
				// stall classification and must be observed per cycle.
				w = t
			}
		}
	}
	return w
}

// tickModule advances one memory module: initiate the head request, age
// the pipeline, and emit due replies. Panics on a packet kind a memory
// module cannot serve — a routing bug, not a runtime condition.
func (m *Memory) tickModule(i int, cycle int64) {
	md := &m.mods[i]
	switch {
	case len(md.pipe) > 0:
		m.stats.BusyCyc++
	case len(md.out) > 0:
		m.stats.DrainCyc++
	case cycle < md.nextInit && m.fwd != nil && m.fwd.Peek(m.PortOf(i)) != nil:
		m.stats.StallCyc++
	}

	// Retire completed accesses into the reply stage.
	for len(md.pipe) > 0 && md.pipe[0].done <= cycle && len(md.out) < outCap {
		f := md.pipe[0]
		if f.nack {
			md.out = append(md.out, nackReply(f.pkt))
		} else {
			md.out = append(md.out, m.execute(f.pkt))
		}
		copy(md.pipe, md.pipe[1:])
		md.pipe = md.pipe[:len(md.pipe)-1]
	}

	// Offer one reply per cycle to the reverse network.
	if len(md.out) > 0 {
		if m.rev.Offer(md.out[0]) {
			copy(md.out, md.out[1:])
			md.out = md.out[:len(md.out)-1]
		}
	}

	// Initiate a new request if the pipeline and reply stage allow.
	if cycle < md.nextInit {
		return
	}
	if len(md.out) >= outCap {
		m.stats.Stalls++
		return
	}
	pkt := m.fwd.Peek(m.PortOf(i))
	if pkt == nil {
		return
	}
	lat := int64(m.p.MemLatency) + m.inj.BankStall(i, cycle)
	nack := false
	switch pkt.Kind {
	case network.ReadReq:
		// A busy module may refuse optional (prefetch) traffic; the
		// request still occupies an initiation slot but bounces back as
		// a NACK instead of executing.
		if pkt.Tag&network.PrefetchTagBit != 0 && m.inj.PFUNack(i, cycle) {
			nack = true
		} else {
			m.stats.Reads++
		}
	case network.WriteReq:
		m.stats.Writes++
	case network.SyncReq:
		m.stats.SyncOps++
		lat += int64(m.p.SyncOpLatency)
	default:
		panic(fmt.Sprintf("gmem: unexpected packet kind %v at module %d", pkt.Kind, i))
	}
	m.fwd.Poll(m.PortOf(i))
	md.pipe = append(md.pipe, inflight{pkt: pkt, done: cycle + lat, nack: nack})
	md.nextInit = cycle + int64(m.p.MemService)
}

// nackReply turns a refused prefetch read into its bounce, reusing the
// packet like execute does.
func nackReply(req *network.Packet) *network.Packet {
	reply := req
	reply.Src, reply.Dst = req.Dst, req.Src
	reply.Kind = network.NackReply
	reply.Value = 0
	reply.TestPassed = false
	return reply
}

// execute performs the semantic effect of a request and turns the packet
// into its own reply (the request has left the forward network and is
// owned by the module, so reuse is safe and halves packet allocations on
// the simulator's hottest path). Mutations happen at retire time; because
// each address belongs to exactly one module and a module retires
// serially, read-modify-write operations are indivisible, exactly as the
// hardware synchronization processors guarantee.
func (m *Memory) execute(req *network.Packet) *network.Packet {
	reply := req
	reply.Src, reply.Dst = req.Dst, req.Src
	reply.TestPassed = false
	switch req.Kind {
	case network.ReadReq:
		reply.Kind = network.ReadReply
		reply.Value = m.data.Load(req.Addr)
	case network.WriteReq:
		m.data.StoreWord(req.Addr, req.Value)
		reply.Kind = network.WriteAck
		reply.Value = 0
	case network.SyncReq:
		old := m.data.Load(req.Addr)
		if req.Test.Eval(old, req.TestArg) {
			reply.TestPassed = true
			m.data.StoreWord(req.Addr, req.Mut.Apply(old, req.Value))
		}
		reply.Kind = network.SyncReply
		reply.Value = old
	}
	return reply
}
