// Package gmem models Cedar's globally shared memory: 32 double-word
// interleaved modules reached through the forward network, each with a
// pipelined access path and a synchronization processor that executes
// indivisible Test-And-Set and Cedar Test-And-Operate instructions
// [ZhYe87] at the memory, avoiding multi-transit lock cycles over the
// multistage network.
package gmem

const chunkWords = 1 << 12

// Store is a sparse 64-bit word-addressed memory. It backs both global and
// cluster memories; addresses are 8-byte word indices. The zero value is
// ready to use and reads of untouched words return zero.
type Store struct {
	chunks map[uint64]*[chunkWords]int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{chunks: make(map[uint64]*[chunkWords]int64)}
}

// Load returns the word at addr.
func (s *Store) Load(addr uint64) int64 {
	c := s.chunks[addr/chunkWords]
	if c == nil {
		return 0
	}
	return c[addr%chunkWords]
}

// StoreWord writes v at addr.
func (s *Store) StoreWord(addr uint64, v int64) {
	key := addr / chunkWords
	c := s.chunks[key]
	if c == nil {
		c = new([chunkWords]int64) //lint:allow hotalloc first-touch chunk allocation, amortised over the whole run
		s.chunks[key] = c
	}
	c[addr%chunkWords] = v
}

// Add atomically (in simulation time) adds delta and returns the old value.
func (s *Store) Add(addr uint64, delta int64) int64 {
	old := s.Load(addr)
	s.StoreWord(addr, old+delta)
	return old
}

// Footprint returns the number of allocated chunks, for tests.
func (s *Store) Footprint() int { return len(s.chunks) }
