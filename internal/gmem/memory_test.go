package gmem

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cedar/internal/network"
	"cedar/internal/params"
	"cedar/internal/sim"
)

// rig wires CE-side driver ports to memory through forward and reverse
// omega networks, mirroring the real machine's tick order.
type rig struct {
	p      params.Machine
	eng    *sim.Engine
	fwd    *network.Omega
	rev    *network.Omega
	mem    *Memory
	driver *driver
}

type request struct {
	pkt     *network.Packet
	src     int    // original CE port (the packet is reused as its reply)
	tag     uint32 // original tag
	issued  bool
	reply   *network.Packet
	replyAt int64
}

// driver issues requests from CE ports and collects replies. It is a
// stand-in for the CE/PFU components built later.
type driver struct {
	fwd, rev network.Fabric
	reqs     []*request
	pending  map[int][]*request // per-port FIFO of unissued requests
	out      map[int]int        // outstanding per port
}

func (d *driver) Name() string { return "driver" }
func (d *driver) Idle() bool {
	for _, r := range d.reqs {
		if r.reply == nil {
			return false
		}
	}
	return true
}

func (d *driver) add(r *request) {
	if d.pending == nil {
		d.pending = make(map[int][]*request)
		d.out = make(map[int]int)
	}
	r.src = r.pkt.Src
	r.tag = r.pkt.Tag
	d.reqs = append(d.reqs, r)
	d.pending[r.src] = append(d.pending[r.src], r)
}

func (d *driver) Tick(cycle int64) {
	// Collect replies.
	for port := range d.pending {
		for {
			rep := d.rev.Poll(port)
			if rep == nil {
				break
			}
			matched := false
			for _, r := range d.reqs {
				if r.issued && r.reply == nil && r.src == port && r.tag == rep.Tag {
					r.reply = rep
					r.replyAt = cycle
					d.out[port]--
					matched = true
					break
				}
			}
			if !matched {
				panic("driver: unmatched reply")
			}
		}
	}
	// Issue new requests, one per port per cycle.
	for port, q := range d.pending {
		if len(q) == 0 {
			continue
		}
		r := q[0]
		r.pkt.Issue = cycle
		if d.fwd.Offer(r.pkt) {
			r.issued = true
			d.pending[port] = q[1:]
			d.out[port]++
		}
	}
}

func newRig(t *testing.T) *rig {
	t.Helper()
	p := params.Default()
	fwd := network.NewOmega(network.OmegaConfig{Name: "fwd", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords})
	rev := network.NewOmega(network.OmegaConfig{Name: "rev", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords})
	mem := New(p, fwd, rev, nil)
	d := &driver{fwd: fwd, rev: rev}
	eng := sim.New()
	eng.Register(d, fwd, mem, rev)
	return &rig{p: p, eng: eng, fwd: fwd, rev: rev, mem: mem, driver: d}
}

func (r *rig) run(t *testing.T, limit int64) {
	t.Helper()
	if err := r.eng.RunUntilIdle(limit); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func (r *rig) port(addr uint64) int { return r.mem.ModuleFor(addr) }

func TestReadAfterWrite(t *testing.T) {
	r := newRig(t)
	addr := uint64(12345)
	w := &request{pkt: &network.Packet{Kind: network.WriteReq, Src: 0, Dst: r.port(addr), Addr: addr, Value: 77, Tag: 1}}
	r.driver.add(w)
	r.run(t, 1000)
	if w.reply == nil || w.reply.Kind != network.WriteAck {
		t.Fatalf("write not acked: %+v", w.reply)
	}
	rd := &request{pkt: &network.Packet{Kind: network.ReadReq, Src: 5, Dst: r.port(addr), Addr: addr, Tag: 2}}
	r.driver.add(rd)
	r.run(t, 1000)
	if rd.reply == nil || rd.reply.Value != 77 {
		t.Fatalf("read returned %+v, want 77", rd.reply)
	}
}

func TestUnloadedLatencyIsEight(t *testing.T) {
	// The paper: minimal Latency is 8 cycles from network issue to return.
	r := newRig(t)
	addr := uint64(3)
	rd := &request{pkt: &network.Packet{Kind: network.ReadReq, Src: 9, Dst: r.port(addr), Addr: addr, Tag: 1}}
	r.driver.add(rd)
	r.run(t, 1000)
	lat := rd.replyAt - rd.reply.Issue
	if lat != 8 {
		t.Fatalf("unloaded round trip = %d cycles, want 8", lat)
	}
}

func TestPipelinedModuleThroughput(t *testing.T) {
	// One CE streaming reads to one module: limited by module service
	// rate (1/cycle), so N reads take ≈N cycles beyond the pipe latency.
	r := newRig(t)
	const n = 400
	for i := 0; i < n; i++ {
		addr := uint64(32 * i) // same module (stride = MemModules)
		r.driver.add(&request{pkt: &network.Packet{Kind: network.ReadReq, Src: 0, Dst: r.port(addr), Addr: addr, Tag: uint32(i)}})
	}
	r.run(t, 100000)
	cycles := r.eng.Cycle()
	svc := int64(r.p.MemService)
	if cycles > int64(n)*svc+50 {
		t.Errorf("streaming %d reads took %d cycles; module not pipelined", n, cycles)
	}
	if cycles < int64(n)*svc {
		t.Errorf("streaming %d reads took %d cycles; faster than the module cycle time", n, cycles)
	}
}

func TestInterleavingSpreadsModules(t *testing.T) {
	r := newRig(t)
	seen := map[int]bool{}
	for a := uint64(0); a < 64; a++ {
		seen[r.mem.ModuleFor(a)] = true
	}
	if len(seen) != r.p.MemModules {
		t.Errorf("sequential addresses touch %d modules, want %d", len(seen), r.p.MemModules)
	}
}

func TestSyncFetchAddAtomic(t *testing.T) {
	// 32 CEs fetch-add 1 to one counter; all old values must be distinct
	// and the final value equals the request count — the indivisibility
	// property of the synchronization processors.
	r := newRig(t)
	const per = 8
	addr := uint64(777)
	var reqs []*request
	for ce := 0; ce < 32; ce++ {
		for i := 0; i < per; i++ {
			rq := &request{pkt: &network.Packet{
				Kind: network.SyncReq, Src: ce, Dst: r.port(addr), Addr: addr,
				Test: network.TestAlways, Mut: network.OpAdd, Value: 1,
				Tag: uint32(ce*1000 + i),
			}}
			reqs = append(reqs, rq)
			r.driver.add(rq)
		}
	}
	r.run(t, 1_000_000)
	seen := map[int64]bool{}
	for _, rq := range reqs {
		if rq.reply == nil || rq.reply.Kind != network.SyncReply {
			t.Fatalf("missing sync reply: %+v", rq)
		}
		if !rq.reply.TestPassed {
			t.Fatal("TestAlways must pass")
		}
		if seen[rq.reply.Value] {
			t.Fatalf("duplicate fetch-add ticket %d: atomicity violated", rq.reply.Value)
		}
		seen[rq.reply.Value] = true
	}
	if got := r.mem.Store().Load(addr); got != 32*per {
		t.Fatalf("final counter = %d, want %d", got, 32*per)
	}
}

func TestTestAndSetMutualExclusion(t *testing.T) {
	// Test-And-Set = Test(EQ 0) And Write(1). Exactly one requester may
	// win when many race.
	r := newRig(t)
	addr := uint64(4242)
	var reqs []*request
	for ce := 0; ce < 16; ce++ {
		rq := &request{pkt: &network.Packet{
			Kind: network.SyncReq, Src: ce, Dst: r.port(addr), Addr: addr,
			Test: network.TestEQ, TestArg: 0, Mut: network.OpWrite, Value: 1,
			Tag: uint32(ce),
		}}
		reqs = append(reqs, rq)
		r.driver.add(rq)
	}
	r.run(t, 100000)
	winners := 0
	for _, rq := range reqs {
		if rq.reply.TestPassed {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("%d CEs acquired the lock, want exactly 1", winners)
	}
	if got := r.mem.Store().Load(addr); got != 1 {
		t.Fatalf("lock value = %d, want 1", got)
	}
}

func TestTestAndOperateConditional(t *testing.T) {
	// Zhu-Yew style: decrement only while positive.
	r := newRig(t)
	addr := uint64(99)
	r.mem.Store().StoreWord(addr, 3)
	var reqs []*request
	for ce := 0; ce < 8; ce++ {
		rq := &request{pkt: &network.Packet{
			Kind: network.SyncReq, Src: ce, Dst: r.port(addr), Addr: addr,
			Test: network.TestGT, TestArg: 0, Mut: network.OpSub, Value: 1,
			Tag: uint32(ce),
		}}
		reqs = append(reqs, rq)
		r.driver.add(rq)
	}
	r.run(t, 100000)
	passed := 0
	for _, rq := range reqs {
		if rq.reply.TestPassed {
			passed++
		}
	}
	if passed != 3 {
		t.Fatalf("%d decrements passed, want 3", passed)
	}
	if got := r.mem.Store().Load(addr); got != 0 {
		t.Fatalf("counter = %d, want 0", got)
	}
}

func TestManyPortsLatencyDegradesUnderLoad(t *testing.T) {
	// Qualitative Table 2 behaviour: 32 CEs streaming raise average
	// latency above the unloaded 8 cycles.
	r := newRig(t)
	const per = 60
	for ce := 0; ce < 32; ce++ {
		for i := 0; i < per; i++ {
			addr := uint64(ce*per + i)
			r.driver.add(&request{pkt: &network.Packet{Kind: network.ReadReq, Src: ce, Dst: r.port(addr), Addr: addr, Tag: uint32(ce*1000 + i)}})
		}
	}
	r.run(t, 1_000_000)
	var sum, n int64
	for _, rq := range r.driver.reqs {
		sum += rq.replyAt - rq.reply.Issue
		n++
	}
	avg := float64(sum) / float64(n)
	if avg <= 8 {
		t.Errorf("average loaded latency %.2f, want > 8 (contention)", avg)
	}
	if avg > 200 {
		t.Errorf("average loaded latency %.2f implausibly high", avg)
	}
}

func TestStoreSparse(t *testing.T) {
	s := NewStore()
	if s.Load(1<<40) != 0 {
		t.Error("untouched word should read 0")
	}
	s.StoreWord(1<<40, 9)
	if s.Load(1<<40) != 9 {
		t.Error("round trip failed")
	}
	if old := s.Add(1<<40, 5); old != 9 {
		t.Errorf("Add old = %d, want 9", old)
	}
	if s.Load(1<<40) != 14 {
		t.Error("Add did not store")
	}
	if s.Footprint() != 1 {
		t.Errorf("footprint %d, want 1 chunk", s.Footprint())
	}
}

func TestStoreRoundTripProperty(t *testing.T) {
	s := NewStore()
	f := func(addr uint64, v int64) bool {
		addr %= 1 << 33
		s.StoreWord(addr, v)
		return s.Load(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRandomTrafficConservesReplies(t *testing.T) {
	r := newRig(t)
	rng := rand.New(rand.NewSource(3))
	n := 500
	for i := 0; i < n; i++ {
		addr := uint64(rng.Intn(1 << 16))
		kind := network.ReadReq
		if rng.Intn(3) == 0 {
			kind = network.WriteReq
		}
		r.driver.add(&request{pkt: &network.Packet{Kind: kind, Src: rng.Intn(32), Dst: r.port(addr), Addr: addr, Value: int64(i), Tag: uint32(i)}})
	}
	r.run(t, 1_000_000)
	for i, rq := range r.driver.reqs {
		if rq.reply == nil {
			t.Fatalf("request %d never answered", i)
		}
	}
	st := r.mem.Stats()
	if st.Reads+st.Writes != int64(n) {
		t.Errorf("memory stats count %d, want %d", st.Reads+st.Writes, n)
	}
}
