package core

import (
	"fmt"

	"cedar/internal/network"
	"cedar/internal/perfmon"
	"cedar/internal/scope"
)

// instrument publishes every component's counters, gauges, and cycle
// attribution on the machine's observability hub. All readings go through
// closures over component state, so a machine built without a hub pays
// nothing, and one built with a hub pays only at snapshot time.
func (m *Machine) instrument() {
	h := m.Scope
	if h == nil {
		return
	}

	eng := m.Engine
	h.Counter("engine.cycle", eng.Cycle)
	h.Gauge("engine.idle_components", func() int64 { return int64(eng.IdleCount()) })

	instrumentFabric(h, "net.fwd", m.Fwd)
	instrumentFabric(h, "net.rev", m.Rev)

	mem := m.Mem
	h.Counter("gmem.reads", func() int64 { return mem.Stats().Reads })
	h.Counter("gmem.writes", func() int64 { return mem.Stats().Writes })
	h.Counter("gmem.syncops", func() int64 { return mem.Stats().SyncOps })
	h.Counter("gmem.stalls", func() int64 { return mem.Stats().Stalls })
	h.Counter("gmem.busy_cycles", func() int64 { return mem.Stats().BusyCyc })
	h.Gauge("gmem.inflight", func() int64 { return int64(mem.InFlight()) })

	for _, cl := range m.Clusters {
		cc, bus := cl.Cache, cl.Bus
		pre := fmt.Sprintf("cluster%d", cl.ID)
		h.Counter(pre+".cache.hits", func() int64 { return cc.Stats().Hits })
		h.Counter(pre+".cache.misses", func() int64 { return cc.Stats().Misses })
		h.Counter(pre+".cache.miss_attach", func() int64 { return cc.Stats().MissAttach })
		h.Counter(pre+".cache.writebacks", func() int64 { return cc.Stats().WriteBacks })
		h.Counter(pre+".cache.stall_cycles", func() int64 { return cc.Stats().StallCyc })
		h.Gauge(pre+".cache.mshr_in_use", func() int64 { return int64(cc.MSHRInUse()) })
		h.Gauge(pre+".cache.queued", func() int64 { return int64(cc.QueuedRequests()) })
		h.Counter(pre+".bus.broadcasts", func() int64 { return bus.Stats().Broadcasts })
		h.Counter(pre+".bus.claims", func() int64 { return bus.Stats().Claims })
		h.Counter(pre+".bus.joins", func() int64 { return bus.Stats().Joins })
		h.Counter(pre+".bus.wait_cycles", func() int64 { return bus.Stats().WaitCyc })
	}

	ces := m.CEs
	h.Counter("ce.flops", func() int64 {
		var v int64
		for _, c := range ces {
			v += c.Flops()
		}
		return v
	})
	h.Counter("ce.active_cycles", func() int64 {
		var v int64
		for _, c := range ces {
			v += c.ActiveCycles()
		}
		return v
	})
	h.Counter("ce.wait_cycles", func() int64 {
		var v int64
		for _, c := range ces {
			v += c.WaitCycles()
		}
		return v
	})
	h.Gauge("ce.stores_outstanding", func() int64 {
		var v int64
		for _, c := range ces {
			v += int64(c.StoresOutstanding())
		}
		return v
	})
	h.Counter("pfu.blocks", func() int64 { return m.pfuStats().Blocks })
	h.Counter("pfu.issued", func() int64 { return m.pfuStats().Issued })
	h.Counter("pfu.returned", func() int64 { return m.pfuStats().Returned })
	h.Counter("pfu.dropped", func() int64 { return m.pfuStats().Dropped })
	h.Counter("pfu.suspends", func() int64 { return m.pfuStats().Suspends })
	h.Counter("pfu.refused_cycles", func() int64 { return m.pfuStats().RefusedCyc })
	h.Gauge("pfu.outstanding", func() int64 {
		var v int64
		for _, c := range ces {
			v += int64(c.PFU().Outstanding())
		}
		return v
	})

	// Fault-injection and recovery counters, only on faulted machines so
	// healthy metrics artifacts stay identical to the pre-fault layout.
	if inj := m.Faults; inj != nil {
		h.Counter("fault.bank_stalls", func() int64 { return inj.Stats().BankStalls })
		h.Counter("fault.stage_jams", func() int64 { return inj.Stats().StageJams })
		h.Counter("fault.link_drops", func() int64 { return inj.Stats().LinkDrops })
		h.Counter("fault.pfu_nacks", func() int64 { return inj.Stats().PFUNacks })
		h.Gauge("fault.dead_modules", func() int64 { return int64(inj.DeadModules()) })
		h.Counter("fault.pfu_retries", func() int64 { return m.FaultCounters().Retries })
		h.Counter("fault.pfu_timeouts", func() int64 { return m.FaultCounters().Timeouts })
		h.Counter("fault.failed_ces", func() int64 { return int64(m.FaultCounters().FailedCE) })
	}

	// Prefetch-block lifetime spans: first issue to last arrival, one
	// track per CE, matching the paper's single-processor block monitor
	// but machine-wide. The observer fires inside the CE's tick, so the
	// post goes through the CE's cluster sink — the machine hub itself on
	// a sequential build.
	for _, c := range ces {
		track := fmt.Sprintf("pfu/ce%d", c.ID)
		sh := m.ClusterScope(c.Cluster)
		c.PFU().AddObserver(func(firstIssue int64, arrivals []int64) {
			end := firstIssue
			for _, a := range arrivals {
				if a > end {
					end = a
				}
			}
			sh.Span(track, "prefetch-block", firstIssue, end)
		})
	}

	m.attribute()
}

// instrumentFabric publishes one fabric's counters and occupancy gauge.
func instrumentFabric(h *scope.Hub, pre string, f network.Fabric) {
	h.Counter(pre+".offered", func() int64 { return f.Stats().Offered })
	h.Counter(pre+".refused", func() int64 { return f.Stats().Refused })
	h.Counter(pre+".delivered", func() int64 { return f.Stats().Delivered })
	h.Counter(pre+".word_hops", func() int64 { return f.Stats().WordHops })
	h.Gauge(pre+".queued_words", func() int64 { return int64(f.Queued()) })
}

// pfuStats sums prefetch counters over every CE.
func (m *Machine) pfuStats() (s struct {
	Blocks, Issued, Returned, Dropped, Suspends, RefusedCyc int64
}) {
	for _, c := range m.CEs {
		ps := c.PFU().Stats()
		s.Blocks += ps.Blocks
		s.Issued += ps.Issued
		s.Returned += ps.Returned
		s.Dropped += ps.Dropped
		s.Suspends += ps.Suspends
		s.RefusedCyc += ps.RefusedCyc
	}
	return s
}

// attribute registers the machine's busy/stall/idle contributors. Each
// class reports in its own component-cycles: CE-cycles for "ce",
// module-cycles for "gmem", line-cycles for "network", and so on. Idle is
// derived (elapsed minus busy minus stall) and clamped at zero because
// busy and stall proxies can overlap within a cycle.
func (m *Machine) attribute() {
	h, eng := m.Scope, m.Engine

	ces := m.CEs
	h.Attribute("ce", func() scope.Attr {
		var busy, stall int64
		for _, c := range ces {
			busy += c.ActiveCycles()
			stall += c.WaitCycles()
		}
		return attr(busy, stall, int64(len(ces))*eng.Cycle())
	})

	mem := m.Mem
	h.Attribute("gmem", func() scope.Attr {
		s := mem.Stats()
		return attr(s.BusyCyc+s.DrainCyc, s.StallCyc, int64(mem.Modules())*eng.Cycle())
	})

	for _, cl := range m.Clusters {
		cc, bus := cl.Cache, cl.Bus
		h.Attribute("cache", func() scope.Attr {
			s := cc.Stats()
			return attr(s.BusyCyc, s.WaitCyc, eng.Cycle())
		})
		h.Attribute("ccbus", func() scope.Attr {
			s := bus.Stats()
			return attr(s.BusyCyc, s.WaitCyc, eng.Cycle())
		})
	}

	for _, f := range []network.Fabric{m.Fwd, m.Rev} {
		f := f
		h.Attribute("network", func() scope.Attr {
			s := f.Stats()
			return attr(s.WordHops, s.RefusedCyc, int64(f.Lines())*eng.Cycle())
		})
	}
}

// attr assembles an Attr whose parts sum to elapsed exactly. The
// contributors feeding it count disjoint per-cycle classifications, so
// the clamps are no-ops except for a transaction booked past the end of
// a run (ccbus); they keep the conservation law an invariant rather
// than a convention.
func attr(busy, stall, elapsed int64) scope.Attr {
	if busy > elapsed {
		busy = elapsed
	}
	if stall > elapsed-busy {
		stall = elapsed - busy
	}
	return scope.Attr{Busy: busy, Stall: stall, Idle: elapsed - busy - stall, Elapsed: elapsed}
}

// AttachSampler builds a cycle sampler over every gauge registered so far,
// registers it with the engine (so it ticks after all components), and
// returns it for histogram readout. interval is in cycles.
func (m *Machine) AttachSampler(interval int64) *perfmon.Sampler {
	s := perfmon.NewSampler(interval)
	m.Scope.AttachSampler(s)
	m.Engine.Register(s)
	return s
}
