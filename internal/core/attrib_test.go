package core

import (
	"testing"

	"cedar/internal/ce"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// TestAttributionConservation pins the conservation law: for every
// component class, busy + stall + idle must equal the class's elapsed
// component-cycles exactly. The pre-event-wheel attribution mixed event
// counters (hits, claims, refusals) into per-cycle buckets, which let
// busy+stall exceed elapsed under load; the disjoint per-cycle
// classification counters make the sum an invariant.
func TestAttributionConservation(t *testing.T) {
	p := params.Default()
	hub := scope.NewHub()
	m := MustNew(p, Options{Scope: hub, NoFaults: true})

	// A program touching every attributed class: global vector traffic
	// (gmem, network), prefetched and plain streams (PFU), cluster cache
	// loads and stores (cache, cmem), synchronization (gmem sync
	// processors), and a fence.
	gbase := m.AllocGlobal(4096)
	lbase := m.Clusters[0].AllocLocal(512)
	prog := &ce.Program{Instrs: []*ce.Instr{
		{Op: ce.OpScalar, Cycles: 20, Flops: 10},
		{Op: ce.OpVector, N: 256, Flops: 1,
			Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: gbase, Stride: 1, PrefBlock: 128}},
			Dst:  &ce.Stream{Space: ce.SpaceGlobal, Base: gbase + 1024, Stride: 1}},
		{Op: ce.OpClusterStore, Addr: lbase, Value: 7},
		{Op: ce.OpClusterLoad, Addr: lbase},
		{Op: ce.OpVector, N: 64, Flops: 1,
			Srcs: []ce.Stream{{Space: ce.SpaceCluster, Base: lbase, Stride: 1}}},
		{Op: ce.OpSync, Addr: gbase + 4000},
		{Op: ce.OpGlobalStore, Addr: gbase + 2048, Value: 3},
		{Op: ce.OpFence},
	}}
	if _, err := m.RunOn(m.CEs[:8], prog, 2_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Drive the concurrency bus directly (instructions do not reach it),
	// including a transaction booked past the end of the run so the
	// ccbus busy clamp is exercised.
	bus := m.Clusters[0].Bus
	bus.ConcurrentStart(0, 16)
	for i := 0; i < 20; i++ {
		bus.Claim(int64(i))
	}
	bus.ConcurrentStart(m.Engine.Cycle(), 4)

	sawBusy := map[string]bool{}
	for _, r := range hub.Attribution() {
		if r.Busy < 0 || r.Stall < 0 || r.Idle < 0 || r.Elapsed <= 0 {
			t.Errorf("%s: negative or empty attribution: %+v", r.Class, r)
		}
		if got := r.Busy + r.Stall + r.Idle; got != r.Elapsed {
			t.Errorf("%s: busy+stall+idle = %d, want elapsed %d (busy %d stall %d idle %d)",
				r.Class, got, r.Elapsed, r.Busy, r.Stall, r.Idle)
		}
		if r.Busy > 0 {
			sawBusy[r.Class] = true
		}
	}
	for _, class := range []string{"ce", "gmem", "cache", "ccbus", "network"} {
		if !sawBusy[class] {
			t.Errorf("class %q reported no busy cycles; the workload should exercise it", class)
		}
	}
}
