package core

import (
	"bytes"
	"fmt"
	"testing"

	"cedar/internal/ce"
	"cedar/internal/params"
	"cedar/internal/scope"
	"cedar/internal/sim"
)

// shardWorkload runs a program touching every attributed class on a
// fresh machine under the current sim.SetShards setting and returns the
// machine's observable byte streams plus its hub.
func shardWorkload(t *testing.T) (string, *scope.Hub) {
	t.Helper()
	p := params.Default()
	hub := scope.NewHub()
	m := MustNew(p, Options{Scope: hub, NoFaults: true})

	gbase := m.AllocGlobal(8192)
	lbase := m.Clusters[0].AllocLocal(512)
	prog := &ce.Program{Instrs: []*ce.Instr{
		{Op: ce.OpScalar, Cycles: 20, Flops: 10},
		{Op: ce.OpVector, N: 256, Flops: 1,
			Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Base: gbase, Stride: 1, PrefBlock: 128}},
			Dst:  &ce.Stream{Space: ce.SpaceGlobal, Base: gbase + 1024, Stride: 1}},
		{Op: ce.OpClusterStore, Addr: lbase, Value: 7},
		{Op: ce.OpClusterLoad, Addr: lbase},
		{Op: ce.OpVector, N: 64, Flops: 1,
			Srcs: []ce.Stream{{Space: ce.SpaceCluster, Base: lbase, Stride: 1}}},
		{Op: ce.OpSync, Addr: gbase + 4000},
		{Op: ce.OpGlobalStore, Addr: gbase + 2048, Value: 3},
		{Op: ce.OpFence},
	}}
	// All CEs across all clusters, so cross-cluster network and memory
	// traffic flows through the shard mailboxes.
	res, err := m.Run(prog, 5_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var b bytes.Buffer
	fmt.Fprintf(&b, "cycles:%d flops:%d skipped:%d\n", res.Cycles, res.Flops, m.Engine.FastForwarded())
	b.WriteString(scope.FormatAttribution(hub.Attribution()))
	if err := hub.WriteMetricsCSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := hub.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), hub
}

// TestShardedMachineMatchesSequential is the core-level half of the
// shards equivalence gate: the same workload on a sequential and a
// sharded build must produce byte-identical cycles, attribution,
// metrics, and trace. It runs under -race in scripts/check.sh, so the
// detector watches the real phase-A concurrency over the full machine.
func TestShardedMachineMatchesSequential(t *testing.T) {
	if sim.Shards() != 1 {
		t.Fatal("shards already set at test entry; a previous test leaked the setting")
	}
	seq, _ := shardWorkload(t)
	for _, n := range []int{2, 4, 8} {
		sim.SetShards(n)
		got, _ := shardWorkload(t)
		sim.SetShards(1)
		if got != seq {
			t.Errorf("-shards %d diverges from sequential:\n--- shards %d ---\n%.2000s\n--- sequential ---\n%.2000s",
				n, n, got, seq)
		}
	}
}

// TestAttributionConservationParallel pins the conservation law — for
// every component class, busy + stall + idle == elapsed exactly — on a
// machine executing under the parallel engine, where the contributors'
// counters accumulate from concurrent shard ticks.
func TestAttributionConservationParallel(t *testing.T) {
	sim.SetShards(4)
	defer sim.SetShards(1)
	_, hub := shardWorkload(t)
	sawBusy := map[string]bool{}
	for _, r := range hub.Attribution() {
		if r.Busy < 0 || r.Stall < 0 || r.Idle < 0 || r.Elapsed <= 0 {
			t.Errorf("%s: negative or empty attribution: %+v", r.Class, r)
		}
		if got := r.Busy + r.Stall + r.Idle; got != r.Elapsed {
			t.Errorf("%s: busy+stall+idle = %d, want elapsed %d (busy %d stall %d idle %d)",
				r.Class, got, r.Elapsed, r.Busy, r.Stall, r.Idle)
		}
		if r.Busy > 0 {
			sawBusy[r.Class] = true
		}
	}
	for _, class := range []string{"ce", "gmem", "cache", "network"} {
		if !sawBusy[class] {
			t.Errorf("class %q reported no busy cycles; the workload should exercise it", class)
		}
	}
}
