package core

import (
	"testing"

	"cedar/internal/ce"
	"cedar/internal/params"
)

func TestNewDefaultMachine(t *testing.T) {
	m, err := New(params.Default(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.CEs) != 32 {
		t.Errorf("CEs = %d, want 32", len(m.CEs))
	}
	if len(m.Clusters) != 4 {
		t.Errorf("clusters = %d, want 4", len(m.Clusters))
	}
	stride := m.P.NetPorts / m.P.CEs()
	for i, c := range m.CEs {
		if c.ID != i || c.Port != i*stride {
			t.Errorf("CE %d has ID %d port %d, want port %d (spread wiring)", i, c.ID, c.Port, i*stride)
		}
		if c.Cluster != i/8 || c.IDInCluster != i%8 {
			t.Errorf("CE %d cluster mapping %d/%d", i, c.Cluster, c.IDInCluster)
		}
	}
}

func TestNewRejectsInvalidParams(t *testing.T) {
	p := params.Default()
	p.Clusters = 0
	if _, err := New(p, Options{}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := New(params.Default(), Options{Fabric: FabricKind(99)}); err == nil {
		t.Error("unknown fabric accepted")
	}
}

func TestAllocators(t *testing.T) {
	m := MustNew(params.Default(), Options{})
	a := m.AllocGlobal(100)
	b := m.AllocGlobal(50)
	if b != a+100 {
		t.Errorf("global allocs overlap: %d then %d", a, b)
	}
	c := m.AllocGlobalAligned(10, 64)
	if c%64 != 0 {
		t.Errorf("aligned alloc at %d", c)
	}
	l1 := m.Clusters[0].AllocLocal(10)
	l2 := m.Clusters[0].AllocLocal(10)
	if l2 != l1+10 {
		t.Errorf("local allocs overlap: %d then %d", l1, l2)
	}
	// Different clusters have independent address spaces.
	o1 := m.Clusters[1].AllocLocal(10)
	if o1 != l1 {
		t.Errorf("cluster 1 first alloc at %d, want %d (independent space)", o1, l1)
	}
}

func TestRunAggregatesFlops(t *testing.T) {
	m := MustNew(params.Default(), Options{})
	res, err := m.Run(&ce.Program{Instrs: []*ce.Instr{
		{Op: ce.OpScalar, Cycles: 1000, Flops: 500},
	}}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flops != 32*500 {
		t.Errorf("flops = %d, want %d", res.Flops, 32*500)
	}
	if res.MFLOPS <= 0 || res.Seconds <= 0 {
		t.Errorf("bad derived metrics: %+v", res)
	}
}

func TestRunOnSubset(t *testing.T) {
	m := MustNew(params.Default(), Options{})
	res, err := m.RunOn(m.Clusters[0].CEs, &ce.Program{Instrs: []*ce.Instr{
		{Op: ce.OpScalar, Cycles: 100, Flops: 10},
	}}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flops != 8*10 {
		t.Errorf("flops = %d, want 80", res.Flops)
	}
}

func TestCrossbarFabricMachine(t *testing.T) {
	m := MustNew(params.Default(), Options{Fabric: FabricCrossbar})
	var got int64
	m.Mem.Store().StoreWord(42, 7)
	res, err := m.RunOn(m.CEs[:1], &ce.Program{Instrs: []*ce.Instr{
		{Op: ce.OpGlobalLoad, Addr: 42, OnResult: func(v int64, _ bool, _ int64) { got = v }},
	}}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("crossbar load = %d, want 7", got)
	}
	if res.Cycles > 30 {
		t.Errorf("crossbar scalar load took %d cycles", res.Cycles)
	}
}

func TestScaledMachine(t *testing.T) {
	m := MustNew(params.Scaled(8), Options{})
	if len(m.CEs) != 64 {
		t.Errorf("scaled CEs = %d, want 64", len(m.CEs))
	}
	res, err := m.Run(&ce.Program{Instrs: []*ce.Instr{
		{Op: ce.OpScalar, Cycles: 10, Flops: 1},
	}}, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flops != 64 {
		t.Errorf("flops = %d, want 64", res.Flops)
	}
}

func TestAttachBlockStats(t *testing.T) {
	m := MustNew(params.Default(), Options{})
	bs := m.AttachBlockStats(0)
	_, err := m.RunOn(m.CEs[:1], &ce.Program{Instrs: []*ce.Instr{
		{Op: ce.OpVector, N: 64, Flops: 2,
			Srcs: []ce.Stream{{Space: ce.SpaceGlobal, Stride: 1, PrefBlock: 32}}},
	}}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	m.CEs[0].PFU().Finish()
	if bs.Blocks() < 2 {
		t.Errorf("observed %d blocks, want ≥ 2 (64 elements in 32-word blocks)", bs.Blocks())
	}
	if bs.MinLatency() < 8 {
		t.Errorf("min latency %d below hardware floor", bs.MinLatency())
	}
}
