// Package core assembles the Cedar machine: four (or a configured number
// of) slightly modified Alliant FX/8 clusters — each with eight CEs, a
// shared four-way interleaved cache, a cluster memory and a concurrency
// control bus — connected through two unidirectional multistage
// shuffle-exchange networks to a globally shared memory whose modules
// carry synchronization processors.
//
// core is the paper's primary artifact. Everything else in internal/ is a
// subsystem of this machine or an instrument pointed at it.
package core

import (
	"fmt"
	"strings"

	"cedar/internal/cache"
	"cedar/internal/ccbus"
	"cedar/internal/ce"
	"cedar/internal/cmem"
	"cedar/internal/fault"
	"cedar/internal/gmem"
	"cedar/internal/network"
	"cedar/internal/params"
	"cedar/internal/perfmon"
	"cedar/internal/scope"
	"cedar/internal/sim"
)

// FabricKind selects the interconnection network implementation.
type FabricKind int

// Supported fabrics.
const (
	// FabricOmega is Cedar's multistage shuffle-exchange network with
	// shallow two-word port queues (the machine as built).
	FabricOmega FabricKind = iota
	// FabricCrossbar is an idealized non-blocking crossbar used for the
	// [Turn93] ablation: same port bandwidth, no internal structure.
	FabricCrossbar
)

// Options tune machine construction beyond the parameter set.
type Options struct {
	Fabric FabricKind
	// QueueWords overrides params.NetQueueWords when > 0 (queue-depth
	// ablation).
	QueueWords int
	// Scope, when non-nil, is the observability hub every component
	// publishes metrics, trace spans, and cycle attribution on. Nil (the
	// default) builds an uninstrumented machine at zero overhead.
	Scope *scope.Hub
	// Faults, when non-nil, is the fault plan this machine runs under.
	// Nil falls back to the process-wide plan installed by the CLIs'
	// -faults flag (fault.SetDefault); NoFaults forces a healthy machine
	// regardless of either.
	Faults   *fault.Plan
	NoFaults bool
}

// Cluster is one Alliant FX/8.
type Cluster struct {
	ID    int
	Bus   *ccbus.Bus
	Cache *cache.Cache
	CMem  *cmem.Memory
	CEs   []*ce.CE

	nextLocal uint64
}

// AllocLocal reserves words of cluster memory and returns the base
// address (cluster address spaces are private per cluster).
func (c *Cluster) AllocLocal(words int) uint64 {
	base := c.nextLocal
	c.nextLocal += uint64(words)
	return base
}

// Machine is a configured Cedar system.
type Machine struct {
	P        params.Machine
	Engine   *sim.Engine
	Fwd, Rev network.Fabric
	Mem      *gmem.Memory
	Clusters []*Cluster
	CEs      []*ce.CE
	// Scope is the observability hub the machine was built with (nil when
	// observability is off). The runtime picks it up automatically.
	Scope *scope.Hub
	// Faults is the machine's fault injector; nil on healthy machines.
	Faults *fault.Injector

	// shards is the cluster-shard count of an intra-run parallel build
	// (0 when the machine was built for the sequential schedule).
	shards   int
	clScopes []*scope.Hub
	drains   []func(cycle int64)

	nextGlobal uint64
	flopsBase  int64
}

// Sharded reports whether the machine was built for the intra-run
// parallel engine (one shard per cluster). Controllers with per-shard
// buffers (cfrt's tracer) branch on it.
func (m *Machine) Sharded() bool { return m.shards > 0 }

// ClusterScope returns the hub cluster cl's components must post trace
// spans to from inside a tick: a shard-private sink on a sharded machine
// (merged back in cluster order every cycle), the machine hub itself
// otherwise. Metric registration always goes to Scope directly — it
// happens at construction time, before the engine runs.
func (m *Machine) ClusterScope(cl int) *scope.Hub {
	if m.shards > 0 && cl >= 0 && cl < len(m.clScopes) {
		return m.clScopes[cl]
	}
	return m.Scope
}

// AddDrain appends a hook to the sharded engine's drain phase, after the
// fabric mailboxes and span sinks have been replayed. Runtimes that
// buffer per-shard effects flush through it. No-op on a sequential
// machine, whose effects were never deferred.
func (m *Machine) AddDrain(f func(cycle int64)) {
	if m.shards > 0 {
		m.drains = append(m.drains, f)
	}
}

// New builds a machine. It returns an error for invalid parameter sets.
func New(p params.Machine, opt Options) (*Machine, error) {
	if opt.QueueWords > 0 {
		p.NetQueueWords = opt.QueueWords
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}

	var fwd, rev network.Fabric
	switch opt.Fabric {
	case FabricOmega:
		fwd = network.NewOmega(network.OmegaConfig{Name: "fwd", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords})
		// The reverse network's egress ports empty into the CEs' 512-word
		// prefetch buffers, which absorb reply bursts; the forward
		// egress is a memory module's small input latch.
		rev = network.NewOmega(network.OmegaConfig{Name: "rev", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords, EgressWords: 64})
	case FabricCrossbar:
		// Latency matched to the omega's stage count for a fair ablation.
		stages := 0
		for n := p.NetPorts; n > 1; n /= p.NetRadix {
			stages++
		}
		fwd = network.NewCrossbar("fwd", p.NetPorts, stages)
		rev = network.NewCrossbar("rev", p.NetPorts, stages)
	default:
		return nil, fmt.Errorf("core: unknown fabric kind %d", opt.Fabric)
	}

	m := &Machine{P: p, Engine: sim.New(), Fwd: fwd, Rev: rev, Scope: opt.Scope}
	m.Mem = gmem.New(p, fwd, rev, nil)

	// Intra-run parallelism: with -shards > 1 and more than one cluster,
	// each cluster becomes an engine shard (the fabrics, global memory,
	// and samplers stay in the hub region). Cluster→fabric submissions
	// defer into per-shard mailboxes and trace spans into per-cluster
	// sinks, both replayed in cluster order by the drain hook, so the
	// artifacts are byte-identical to a sequential (-shards 1) build.
	if sim.Shards() > 1 && p.Clusters > 1 {
		m.shards = p.Clusters
	}

	plan := opt.Faults
	if plan == nil && !opt.NoFaults {
		plan = fault.Default()
	}
	if !opt.NoFaults && plan != nil {
		inj, err := fault.NewInjector(p, plan)
		if err != nil {
			return nil, err
		}
		m.Faults = inj
		if inj != nil {
			inj.SetScope(opt.Scope)
			m.Mem.SetFaults(inj)
			fwd.SetFaults(inj)
			rev.SetFaults(inj)
		}
	}

	// regCluster registers cluster components, as shard cl on a sharded
	// build and in the plain tick order otherwise — the component order
	// (eight CEs then the cache/cmem composite, cluster-major) is the
	// same either way.
	regCluster := func(cl int, cs ...sim.Component) []sim.Handle {
		if m.shards > 0 {
			return m.Engine.RegisterShard(cl, cs...)
		}
		return m.Engine.Register(cs...)
	}

	for cl := 0; cl < p.Clusters; cl++ {
		cm := cmem.New(p.CMemWordsPerCyc, p.CMemLatency, nil)
		cc := cache.New(p, p.CEsPerCluster, cm)
		cluster := &Cluster{
			ID:    cl,
			Bus:   ccbus.New(p, p.CEsPerCluster),
			Cache: cc,
			CMem:  cm,
		}
		// CEs are spread across the port space for the same reason the
		// memory modules are: destination tags must exercise every
		// switch output digit or reply traffic funnels through a few
		// first-stage outputs.
		ceStride := p.NetPorts / p.CEs()
		if ceStride < 1 {
			ceStride = 1
		}
		for i := 0; i < p.CEsPerCluster; i++ {
			id := cl*p.CEsPerCluster + i
			c := ce.New(p, id, cl, i, id*ceStride, fwd, rev, cc, m.Mem.ModuleFor)
			if m.Faults.Retryable() {
				// Only recoverable faults (NACKs, drops) arm the retry
				// machinery: timeout watchdogs under a stall-only plan
				// would add behavior the plan doesn't call for.
				c.ArmFaultRecovery()
			}
			cluster.CEs = append(cluster.CEs, c)
			m.CEs = append(m.CEs, c)
			h := regCluster(cl, c)[0]
			c.SetWaker(h.Wake)
			// The CE ticks before the reverse fabric, so an egress packet
			// is consumable the cycle after it lands.
			wake := h.Wake
			rev.SetPortWaker(c.Port, func(at int64) { wake(at + 1) })
		}
		m.Clusters = append(m.Clusters, cluster)
		// Cache and cluster memory tick as one composite, after the
		// cluster's CEs (which submit to the cache) and with the cache
		// ahead of the memory behind it.
		ch := regCluster(cl, sim.SchedFunc{
			ID: fmt.Sprintf("cluster%d", cl),
			F:  func(cy int64) { cc.Tick(cy); cm.Tick(cy) },
			W: func(now int64) int64 {
				w := cc.NextWakeup(now)
				if t := cm.NextWakeup(now); t < w {
					w = t
				}
				return w
			},
		})[0]
		cc.SetWaker(ch.Wake)
		cm.SetWaker(ch.Wake)
	}
	hs := m.Engine.Register(fwd, m.Mem, rev)
	fwd.SetWaker(hs[0].Wake)
	// The memory ticks after the forward fabric, so SetWaker's port hooks
	// deliver arrival cycles directly.
	m.Mem.SetWaker(hs[1].Wake)
	rev.SetWaker(hs[2].Wake)
	if m.shards > 0 {
		// Port ownership is per fabric side, because CE ports and memory
		// module ports share one index space (modules are spread across
		// the port range, so the two sets overlap). Cluster components
		// offer on fwd and poll on rev during phase A — those sides carry
		// the CE-port map. The memory offers on rev and polls on fwd from
		// the serial hub pass — those sides stay fully inline (nil map).
		portOf := make([]int, p.NetPorts)
		for i := range portOf {
			portOf[i] = -1
		}
		for _, c := range m.CEs {
			portOf[c.Port] = c.Cluster
		}
		shardOf := func(port int) int { return portOf[port] }
		fwd.SetShards(shardOf, nil, p.Clusters)
		rev.SetShards(nil, shardOf, p.Clusters)
		if opt.Scope != nil {
			for cl := 0; cl < p.Clusters; cl++ {
				m.clScopes = append(m.clScopes, opt.Scope.SpanSink())
			}
		}
		m.Engine.SetDrain(func(cycle int64) {
			fwd.DrainShards()
			rev.DrainShards()
			for _, s := range m.clScopes {
				m.Scope.DrainSpans(s)
			}
			for _, f := range m.drains {
				f(cycle)
			}
		})
	}
	m.instrument()
	return m, nil
}

// MustNew builds a machine from a known-good configuration.
func MustNew(p params.Machine, opt Options) *Machine {
	m, err := New(p, opt)
	if err != nil {
		panic(err)
	}
	return m
}

// AllocGlobal reserves words of global memory and returns the base word
// address.
func (m *Machine) AllocGlobal(words int) uint64 {
	base := m.nextGlobal
	m.nextGlobal += uint64(words)
	return base
}

// AllocGlobalAligned reserves words starting at a multiple of align words.
func (m *Machine) AllocGlobalAligned(words, align int) uint64 {
	if align > 0 && m.nextGlobal%uint64(align) != 0 {
		m.nextGlobal += uint64(align) - m.nextGlobal%uint64(align)
	}
	return m.AllocGlobal(words)
}

// AttachBlockStats wires a Table 2 style prefetch monitor to one CE, as
// the paper did ("we monitored all requests of a single processor").
func (m *Machine) AttachBlockStats(ceID int) *perfmon.BlockStats {
	bs := perfmon.NewBlockStats()
	m.CEs[ceID].PFU().SetObserver(bs.Observe)
	return bs
}

// Result summarizes a program run.
type Result struct {
	Cycles  int64
	Flops   int64
	MFLOPS  float64
	Seconds float64
}

// Run executes a controller on every CE until all are idle, returning
// aggregate timing. The limit bounds runaway programs.
func (m *Machine) Run(ctrl ce.Controller, limit int64) (Result, error) {
	return m.RunOn(m.CEs, ctrl, limit)
}

// RunOn executes a controller on a subset of CEs (the others stay idle).
func (m *Machine) RunOn(ces []*ce.CE, ctrl ce.Controller, limit int64) (Result, error) {
	start := m.Engine.Cycle()
	var flops0 int64
	for _, c := range m.CEs {
		flops0 += c.Flops()
	}
	for _, c := range ces {
		c.SetController(ctrl)
	}
	err := m.Engine.RunUntil(func() bool {
		for _, c := range ces {
			if !c.Idle() {
				return false
			}
		}
		return true
	}, limit)
	if err != nil {
		// Under a fault plan a starved program is a degraded run, not a
		// simulator failure: injected faults can legitimately keep a
		// barrier from ever filling.
		if m.Faults != nil {
			return Result{}, fmt.Errorf("core: %w: program did not complete: %v", fault.ErrDegraded, err)
		}
		return Result{}, fmt.Errorf("core: program did not complete: %w", err)
	}
	// Let the memory system drain (stores in flight etc.).
	if err := m.Engine.RunUntilIdle(100000); err != nil {
		return Result{}, fmt.Errorf("core: drain: %w", err)
	}
	var flops int64
	for _, c := range m.CEs {
		flops += c.Flops()
	}
	cycles := m.Engine.Cycle() - start
	r := Result{
		Cycles:  cycles,
		Flops:   flops - flops0,
		Seconds: params.CyclesToSeconds(cycles),
	}
	r.MFLOPS = params.MFLOPS(r.Flops, r.Cycles)
	// CEs that exhausted a retry budget abandoned their program; the
	// timing is still measured, so report it alongside the degradation.
	var failed []string
	for _, c := range ces {
		if cerr := c.Err(); cerr != nil {
			failed = append(failed, cerr.Error())
		}
	}
	if len(failed) > 0 {
		return r, fmt.Errorf("core: %w: %s", fault.ErrDegraded, strings.Join(failed, "; "))
	}
	return r, nil
}

// FaultCounters summarizes a faulted machine's injections and the
// recovery work they caused — the numbers the degraded-mode table and
// the observability hub report.
type FaultCounters struct {
	Injected int64 // faults fired (stalls + jams + drops + NACKs)
	Retries  int64 // PFU element reissues
	Timeouts int64 // PFU requests presumed lost
	Nacks    int64 // NACK replies received by PFUs
	DeadMods int   // memory modules removed from service
	FailedCE int   // CEs that abandoned their program
}

// FaultCounters reads the machine's fault and recovery counters; all
// zeros on a healthy machine.
func (m *Machine) FaultCounters() FaultCounters {
	var fc FaultCounters
	if m.Faults == nil {
		return fc
	}
	st := m.Faults.Stats()
	fc.Injected = st.BankStalls + st.StageJams + st.LinkDrops + st.PFUNacks
	fc.DeadMods = m.Faults.DeadModules()
	for _, c := range m.CEs {
		ps := c.PFU().Stats()
		fc.Retries += ps.Retries
		fc.Timeouts += ps.Timeouts
		fc.Nacks += ps.Nacks
		if c.Err() != nil {
			fc.FailedCE++
		}
	}
	return fc
}
