// Package fleet is the deterministic parallel experiment orchestrator.
//
// The simulator itself is strictly single-goroutine: the engine ticks
// components in registration order and that order is part of the model.
// What fleet parallelizes is the level above — independent experiment
// points (one whole machine simulation each: a table row, an ablation
// configuration, a Perfect-code variant, a PPT sweep point). Jobs are
// dispatched to a bounded worker pool and results are reassembled in
// submission order, so every report, JSON and trace artifact is
// byte-identical to a sequential run. Per-job scope hubs are forked from
// the caller's hub and adopted back in submission order (scope.Hub.Fork /
// Adopt), which keeps -trace and -metrics output stable under any worker
// count.
//
// A content-addressed run cache (Cache, keyed via Key over machine
// parameters, workload profile and scheduling policy) memoizes repeated
// configurations so they simulate once per process. Caching applies only
// to unobserved jobs: a cache hit skips the simulation, so it cannot
// replay instrumentation, and jobs running under a hub therefore always
// execute.
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cedar/internal/scope"
)

// Job is one experiment point: an independent simulation (or any other
// self-contained computation) producing a T.
type Job[T any] struct {
	// Key, when non-empty, memoizes the job in the run cache. It must be
	// content-addressed over every input that affects the result (build it
	// with Key). Jobs observed by a hub ignore it.
	Key string
	// Run executes the point. hub is the job's private scope view (nil
	// when the caller runs unobserved); the job must build all mutable
	// state — machine, runtime, hub sub-namespaces — from scratch so
	// nothing is shared with concurrently running jobs.
	Run func(hub *scope.Hub) (T, error)
}

// Config controls one Run call.
type Config struct {
	// Jobs is the worker count; 0 means the process-wide default
	// (SetJobs, falling back to GOMAXPROCS).
	Jobs int
	// Hub, when non-nil, observes every job through a forked child hub
	// that is adopted back in submission order.
	Hub *scope.Hub
	// Cache overrides the process-wide run cache. nil selects the shared
	// cache; use a private Cache (or clear the shared one) in benchmarks
	// that must re-simulate.
	Cache *Cache
}

// defaultJobs holds the process-wide worker default set via SetJobs;
// 0 means "use GOMAXPROCS".
var defaultJobs atomic.Int32

// SetJobs sets the process-wide default worker count used when
// Config.Jobs is zero. n <= 0 restores the GOMAXPROCS default. CLIs wire
// their -jobs flag here.
func SetJobs(n int) {
	if n < 0 {
		n = 0
	}
	defaultJobs.Store(int32(n))
}

// Jobs returns the process-wide default worker count.
func Jobs() int {
	if n := defaultJobs.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the jobs on a bounded worker pool and returns their
// results in submission order. With one worker (the default on a
// single-CPU host, or Config{Jobs: 1}) jobs run inline on the caller's
// goroutine against the caller's hub — exactly the pre-fleet sequential
// code path. With more workers each job runs against a forked hub;
// children are adopted back in submission order after all jobs finish, so
// artifacts are byte-identical to the sequential run. On failure the
// error of the earliest-submitted failing job is returned.
//
// Panics if a Job.Run panics: worker goroutines capture component panics
// (mirroring the sim shardRunner) and the first recorded one is rethrown
// on the caller's goroutine after the pool drains, so a panicking job
// poisons the Run call — where the caller can recover — and never kills
// the process from a goroutine nobody owns. The remaining jobs still run
// to completion before the rethrow.
func Run[T any](cfg Config, jobs []Job[T]) ([]T, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	cache := cfg.Cache
	if cache == nil {
		cache = shared
	}
	workers := cfg.Jobs
	if workers <= 0 {
		workers = Jobs()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			out, err := runOne(j, cfg.Hub, cache)
			if err != nil {
				return nil, err
			}
			results[i] = out
		}
		return results, nil
	}

	hubs := make([]*scope.Hub, len(jobs))
	errs := make([]error, len(jobs))
	var rec recovered
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow nondeterminism the pool runs whole independent simulations; each engine stays single-goroutine and results merge in submission order
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				runGuarded(&rec, jobs[i], cfg.Hub, cache, hubs, results, errs, i)
			}
		}()
	}
	wg.Wait()
	if p := rec.first(); p != nil {
		// Resurface the original panic where the caller can see (and
		// recover from) it. Hubs are not adopted: a panicked pass has no
		// coherent artifact to merge.
		panic(p)
	}
	for _, h := range hubs {
		cfg.Hub.Adopt(h)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runGuarded executes one pool job with panic capture: a panicking
// Job.Run is recorded in rec for Run to rethrow on the caller's
// goroutine, and the worker moves on to the next job.
func runGuarded[T any](rec *recovered, j Job[T], parent *scope.Hub, cache *Cache,
	hubs []*scope.Hub, results []T, errs []error, i int) {
	defer rec.capture()
	hubs[i] = parent.Fork()
	results[i], errs[i] = runOne(j, hubs[i], cache)
}

// recovered holds the first panic captured by the worker pool, for the
// caller's goroutine to rethrow — the same idiom as sim's shardRunner.
type recovered struct {
	mu sync.Mutex
	p  any
}

// capture is runGuarded's deferred recovery: it records the first
// worker panic for Run to rethrow.
func (r *recovered) capture() {
	if p := recover(); p != nil {
		r.mu.Lock()
		if r.p == nil {
			r.p = p
		}
		r.mu.Unlock()
	}
}

func (r *recovered) first() any {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.p
}

// cacheCopy is the deep-copy hook runOne uses on every cached return. A
// package variable only so the copy-failure fallback (recompute, never
// alias) stays testable; production code always runs deepCopy.
var cacheCopy = deepCopy

// runOne executes one job, through the cache when it is unobserved and
// keyed.
func runOne[T any](j Job[T], hub *scope.Hub, cache *Cache) (T, error) {
	if j.Key != "" && hub == nil && cache != nil {
		v, err := cache.do(j.Key, func() (any, error) { return j.Run(nil) })
		if err != nil {
			var zero T
			return zero, err
		}
		if tv, ok := v.(T); ok {
			// Every caller — including the one that just computed the
			// value — gets a deep copy, so mutating a returned result
			// can never corrupt the cached original or a sibling hit.
			if cp, ok := cacheCopy(tv).(T); ok {
				return cp, nil
			}
			// The copy machinery could not reproduce T. Fall through and
			// recompute: handing out the cached value itself would alias
			// cache internals to a caller that is free to mutate them.
		}
		// A key collision across result types (or an uncopyable value) is
		// recomputed rather than served a foreign or shared reference.
	}
	return j.Run(hub)
}
