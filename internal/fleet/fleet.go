// Package fleet is the deterministic parallel experiment orchestrator.
//
// The simulator itself is strictly single-goroutine: the engine ticks
// components in registration order and that order is part of the model.
// What fleet parallelizes is the level above — independent experiment
// points (one whole machine simulation each: a table row, an ablation
// configuration, a Perfect-code variant, a PPT sweep point). Jobs are
// dispatched to a bounded worker pool and results are reassembled in
// submission order, so every report, JSON and trace artifact is
// byte-identical to a sequential run. Per-job scope hubs are forked from
// the caller's hub and adopted back in submission order (scope.Hub.Fork /
// Adopt), which keeps -trace and -metrics output stable under any worker
// count.
//
// A content-addressed run cache (Cache, keyed via Key over machine
// parameters, workload profile and scheduling policy) memoizes repeated
// configurations so they simulate once per process. Caching applies only
// to unobserved jobs: a cache hit skips the simulation, so it cannot
// replay instrumentation, and jobs running under a hub therefore always
// execute.
package fleet

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cedar/internal/scope"
)

// Job is one experiment point: an independent simulation (or any other
// self-contained computation) producing a T.
type Job[T any] struct {
	// Key, when non-empty, memoizes the job in the run cache. It must be
	// content-addressed over every input that affects the result (build it
	// with Key). Jobs observed by a hub ignore it.
	Key string
	// Run executes the point. hub is the job's private scope view (nil
	// when the caller runs unobserved); the job must build all mutable
	// state — machine, runtime, hub sub-namespaces — from scratch so
	// nothing is shared with concurrently running jobs.
	Run func(hub *scope.Hub) (T, error)
}

// Config controls one Run call.
type Config struct {
	// Jobs is the worker count; 0 means the process-wide default
	// (SetJobs, falling back to GOMAXPROCS).
	Jobs int
	// Hub, when non-nil, observes every job through a forked child hub
	// that is adopted back in submission order.
	Hub *scope.Hub
	// Cache overrides the process-wide run cache. nil selects the shared
	// cache; use a private Cache (or clear the shared one) in benchmarks
	// that must re-simulate.
	Cache *Cache
}

// defaultJobs holds the process-wide worker default set via SetJobs;
// 0 means "use GOMAXPROCS".
var defaultJobs atomic.Int32

// SetJobs sets the process-wide default worker count used when
// Config.Jobs is zero. n <= 0 restores the GOMAXPROCS default. CLIs wire
// their -jobs flag here.
func SetJobs(n int) {
	if n < 0 {
		n = 0
	}
	defaultJobs.Store(int32(n))
}

// Jobs returns the process-wide default worker count.
func Jobs() int {
	if n := defaultJobs.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes the jobs on a bounded worker pool and returns their
// results in submission order. With one worker (the default on a
// single-CPU host, or Config{Jobs: 1}) jobs run inline on the caller's
// goroutine against the caller's hub — exactly the pre-fleet sequential
// code path. With more workers each job runs against a forked hub;
// children are adopted back in submission order after all jobs finish, so
// artifacts are byte-identical to the sequential run. On failure the
// error of the earliest-submitted failing job is returned.
func Run[T any](cfg Config, jobs []Job[T]) ([]T, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	cache := cfg.Cache
	if cache == nil {
		cache = shared
	}
	workers := cfg.Jobs
	if workers <= 0 {
		workers = Jobs()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]T, len(jobs))
	if workers <= 1 {
		for i, j := range jobs {
			out, err := runOne(j, cfg.Hub, cache)
			if err != nil {
				return nil, err
			}
			results[i] = out
		}
		return results, nil
	}

	hubs := make([]*scope.Hub, len(jobs))
	errs := make([]error, len(jobs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		//lint:allow nondeterminism the pool runs whole independent simulations; each engine stays single-goroutine and results merge in submission order
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				hubs[i] = cfg.Hub.Fork()
				results[i], errs[i] = runOne(jobs[i], hubs[i], cache)
			}
		}()
	}
	wg.Wait()
	for _, h := range hubs {
		cfg.Hub.Adopt(h)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runOne executes one job, through the cache when it is unobserved and
// keyed.
func runOne[T any](j Job[T], hub *scope.Hub, cache *Cache) (T, error) {
	if j.Key != "" && hub == nil && cache != nil {
		v, err := cache.do(j.Key, func() (any, error) { return j.Run(nil) })
		if err != nil {
			var zero T
			return zero, err
		}
		if tv, ok := v.(T); ok {
			// Every caller — including the one that just computed the
			// value — gets a deep copy, so mutating a returned result
			// can never corrupt the cached original or a sibling hit.
			if cp, ok := deepCopy(tv).(T); ok {
				return cp, nil
			}
			return tv, nil
		}
		// A key collision across result types is a caller bug; recompute
		// rather than return a foreign value.
	}
	return j.Run(hub)
}
