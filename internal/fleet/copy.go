package fleet

import "reflect"

// deepCopy returns a structurally independent copy of v, so a value
// handed out by the run cache can be mutated by its receiver without
// corrupting the cached original (or a sibling cache hit). Pointers,
// slices, maps and interfaces are copied recursively; structs are
// copied whole and then have their exported fields recursed. Unexported
// pointer internals (e.g. a histogram buried in a perfmon struct)
// cannot be reached by reflection and stay shared — results cached by
// fleet treat those as read-only.
func deepCopy(v any) any {
	if v == nil {
		return nil
	}
	return copyValue(reflect.ValueOf(v)).Interface()
}

func copyValue(v reflect.Value) reflect.Value {
	switch v.Kind() {
	case reflect.Pointer:
		if v.IsNil() {
			return v
		}
		out := reflect.New(v.Type().Elem())
		out.Elem().Set(copyValue(v.Elem()))
		return out
	case reflect.Slice:
		if v.IsNil() {
			return v
		}
		out := reflect.MakeSlice(v.Type(), v.Len(), v.Len())
		for i := 0; i < v.Len(); i++ {
			out.Index(i).Set(copyValue(v.Index(i)))
		}
		return out
	case reflect.Map:
		if v.IsNil() {
			return v
		}
		out := reflect.MakeMapWithSize(v.Type(), v.Len())
		iter := v.MapRange()
		for iter.Next() {
			out.SetMapIndex(copyValue(iter.Key()), copyValue(iter.Value()))
		}
		return out
	case reflect.Struct:
		out := reflect.New(v.Type()).Elem()
		out.Set(v) // whole-value copy carries unexported fields along
		for i := 0; i < out.NumField(); i++ {
			f := out.Field(i)
			if f.CanSet() {
				f.Set(copyValue(v.Field(i)))
			}
		}
		return out
	case reflect.Array:
		out := reflect.New(v.Type()).Elem()
		out.Set(v)
		for i := 0; i < out.Len(); i++ {
			if out.Index(i).CanSet() {
				out.Index(i).Set(copyValue(v.Index(i)))
			}
		}
		return out
	case reflect.Interface:
		if v.IsNil() {
			return v
		}
		out := reflect.New(v.Type()).Elem()
		out.Set(copyValue(v.Elem()))
		return out
	default:
		// Scalars, strings, chans, funcs: value copy is enough (chans and
		// funcs are reference types, but cached results never carry them).
		return v
	}
}
