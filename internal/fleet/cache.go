package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"cedar/internal/fault"
	"cedar/internal/scope"
)

// Cache is a content-addressed, single-flight run cache: the first job to
// present a key computes the value while concurrent presenters of the same
// key wait for it, and later presenters reuse it outright. Simulations are
// deterministic, so a cached outcome is indistinguishable from a re-run.
type Cache struct {
	mu    sync.Mutex
	m     map[string]*entry
	stats CacheStats
}

type entry struct {
	done chan struct{}
	// complete flips under mu once the value is stored, so lookups can
	// classify themselves as hit (finished entry) or coalesced (in-flight
	// entry) without a non-blocking channel read.
	complete bool
	val      any
	err      error
}

// CacheStats counts run-cache activity. Every keyed, unobserved job is
// exactly one lookup; single flight guarantees each distinct key is
// computed once, so Lookups, Misses and Served (= Hits + Coalesced) are
// deterministic at any worker count. Only the Hits/Coalesced split is
// timing-dependent: whether a repeat presenter found the first
// computation finished or still in flight depends on scheduling.
// Byte-compared artifacts must therefore report Served, never the split.
type CacheStats struct {
	Lookups   int64 // keyed jobs presented to the cache
	Misses    int64 // first presentations, each computed exactly once
	Hits      int64 // served from a finished entry
	Coalesced int64 // waited on an in-flight computation of the same key
}

// Served returns the lookups answered without a fresh computation.
func (s CacheStats) Served() int64 { return s.Hits + s.Coalesced }

// HitRate returns Served over Lookups (0 when the cache was never
// consulted). Deterministic at any worker count, per CacheStats.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Served()) / float64(s.Lookups)
}

// Stats returns a snapshot of the cache's counters. Counters are
// monotonic for the life of the cache: Clear empties the entries but
// keeps the counts, so scope can publish them as counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Publish registers the cache's counters and entry count on h under the
// fleet.cache.* namespace. Note the Hits/Coalesced caveat on CacheStats:
// runs that must be byte-identical across -jobs values should only rely
// on lookups, misses and the derived served count. (CLI runs that build
// a hub never consult the cache — observed jobs always execute — so for
// them these read as zeros and artifacts stay byte-stable regardless.)
func (c *Cache) Publish(h *scope.Hub) {
	h.Counter("fleet.cache.lookups", func() int64 { return c.Stats().Lookups })
	h.Counter("fleet.cache.misses", func() int64 { return c.Stats().Misses })
	h.Counter("fleet.cache.hits", func() int64 { return c.Stats().Hits })
	h.Counter("fleet.cache.coalesced", func() int64 { return c.Stats().Coalesced })
	h.Gauge("fleet.cache.entries", func() int64 { return int64(c.Len()) })
}

// PublishMetrics registers the process-wide shared run cache on h — what
// the CLIs call so -metrics output carries fleet.cache.* counters.
func PublishMetrics(h *scope.Hub) { shared.Publish(h) }

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: map[string]*entry{}}
}

// shared is the process-wide cache: configurations repeated across suites
// (the same machine running the same workload for two different tables)
// simulate once per process.
var shared = NewCache()

// ResetCache empties the process-wide shared cache. Benchmarks and
// equality tests use it to force re-simulation.
func ResetCache() { shared.Clear() }

// do returns the cached value for key, computing it via compute on first
// presentation. Concurrent callers of the same key block until the first
// computation finishes (single flight). Errors are cached too: the
// simulator is deterministic, so a failing configuration fails again.
func (c *Cache) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	c.stats.Lookups++
	if e, ok := c.m[key]; ok {
		if e.complete {
			c.stats.Hits++
		} else {
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	c.stats.Misses++
	e := &entry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()
	e.val, e.err = compute()
	c.mu.Lock()
	e.complete = true
	c.mu.Unlock()
	close(e.done)
	return e.val, e.err
}

// Len returns the number of cached (or in-flight) keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Clear empties the cache. In-flight computations complete normally but
// are not retained.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.m = map[string]*entry{}
	c.mu.Unlock()
}

// Key builds a content-addressed cache key: a stable hash over the
// experiment kind and every input that affects the result (machine
// parameters, workload profile or size, scheduling policy, ablation
// switches). Parts are serialized with %#v, so they must be plain values —
// structs of scalars, slices, strings — never pointers or maps, whose
// rendering is not stable. Distinct inputs yield distinct keys; the kind
// label keeps experiments with coincidentally equal inputs (and different
// result types) apart.
func Key(kind string, parts ...any) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", kind)
	for _, p := range parts {
		fmt.Fprintf(h, "|%#v", p)
	}
	// The process-wide fault plan changes every machine a job builds, so
	// it is an implicit input of every keyed job: mixing it in keeps a
	// healthy run from ever being served a faulted run's cached result
	// (or vice versa). Jobs that pass an explicit plan also include it
	// in their parts.
	if fp := fault.DefaultFingerprint(); fp != "" {
		fmt.Fprintf(h, "|faults:%s", fp)
	}
	return kind + ":" + hex.EncodeToString(h.Sum(nil)[:16])
}
