package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"

	"cedar/internal/fault"
	"cedar/internal/scope"
)

// Cache is a content-addressed, single-flight run cache: the first job to
// present a key computes the value while concurrent presenters of the same
// key wait for it, and later presenters reuse it outright. Simulations are
// deterministic, so a cached outcome is indistinguishable from a re-run.
//
// An optional SecondLevel (SetStore) turns the cache into the first tier
// of a two-level lookup: in-process map, then durable byte store, then
// compute. Only []byte values round-trip through the second level.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*entry
	second SecondLevel
	stats  CacheStats
}

// SecondLevel is a durable byte store behind the in-process cache —
// internal/store's Store implements it. On a first presentation of a key
// the cache consults Get before computing, and writes a freshly computed
// []byte value through with Put. Values of any other type bypass the
// second level entirely (the store is byte-addressed; cedarserve's
// response bodies are the intended tenants). Put must not retain the
// slice past the call: it aliases the cached value.
type SecondLevel interface {
	Get(key string) ([]byte, bool)
	Put(key string, blob []byte)
}

// SetStore attaches (or, with nil, detaches) the cache's second level.
// Attach before the first lookup: entries already cached in memory are
// not written back.
func (c *Cache) SetStore(s SecondLevel) {
	c.mu.Lock()
	c.second = s
	c.mu.Unlock()
}

// errComputePanicked poisons a single-flight entry whose computation
// panicked, so coalesced waiters fail fast instead of waiting forever.
var errComputePanicked = errors.New("fleet: cached computation panicked")

type entry struct {
	done chan struct{}
	// complete flips under mu once the value is stored, so lookups can
	// classify themselves as hit (finished entry) or coalesced (in-flight
	// entry) without a non-blocking channel read.
	complete bool
	val      any
	err      error
}

// CacheStats counts run-cache activity. Every keyed, unobserved job is
// exactly one lookup; single flight guarantees each distinct key is
// computed once, so Lookups, Misses and Served (= Hits + Coalesced) are
// deterministic at any worker count. Only the Hits/Coalesced split is
// timing-dependent: whether a repeat presenter found the first
// computation finished or still in flight depends on scheduling.
// Byte-compared artifacts must therefore report Served, never the split.
type CacheStats struct {
	Lookups   int64 // keyed jobs presented to the cache
	Misses    int64 // first presentations, each computed exactly once
	Hits      int64 // served from a finished entry
	Coalesced int64 // waited on an in-flight computation of the same key
	// DiskHits counts the subset of Misses answered by the second-level
	// store without computing (Misses - DiskHits presentations actually
	// ran the job). Always zero when no store is attached.
	DiskHits int64
}

// Served returns the lookups answered without a fresh computation.
func (s CacheStats) Served() int64 { return s.Hits + s.Coalesced }

// HitRate returns Served over Lookups (0 when the cache was never
// consulted). Deterministic at any worker count, per CacheStats.
func (s CacheStats) HitRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Served()) / float64(s.Lookups)
}

// Stats returns a snapshot of the cache's counters. Counters are
// monotonic for the life of the cache: Clear empties the entries but
// keeps the counts, so scope can publish them as counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Publish registers the cache's counters and entry count on h under the
// fleet.cache.* namespace. Note the Hits/Coalesced caveat on CacheStats:
// runs that must be byte-identical across -jobs values should only rely
// on lookups, misses and the derived served count. (CLI runs that build
// a hub never consult the cache — observed jobs always execute — so for
// them these read as zeros and artifacts stay byte-stable regardless.)
func (c *Cache) Publish(h *scope.Hub) {
	h.Counter("fleet.cache.lookups", func() int64 { return c.Stats().Lookups })
	h.Counter("fleet.cache.misses", func() int64 { return c.Stats().Misses })
	h.Counter("fleet.cache.hits", func() int64 { return c.Stats().Hits })
	h.Counter("fleet.cache.coalesced", func() int64 { return c.Stats().Coalesced })
	h.Counter("fleet.cache.diskhits", func() int64 { return c.Stats().DiskHits })
	h.Gauge("fleet.cache.entries", func() int64 { return int64(c.Len()) })
}

// PublishMetrics registers the process-wide shared run cache on h — what
// the CLIs call so -metrics output carries fleet.cache.* counters.
func PublishMetrics(h *scope.Hub) { shared.Publish(h) }

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: map[string]*entry{}}
}

// shared is the process-wide cache: configurations repeated across suites
// (the same machine running the same workload for two different tables)
// simulate once per process.
var shared = NewCache()

// ResetCache empties the process-wide shared cache. Benchmarks and
// equality tests use it to force re-simulation.
func ResetCache() { shared.Clear() }

// do returns the cached value for key, computing it via compute on first
// presentation. Concurrent callers of the same key block until the first
// computation finishes (single flight). When a second level is attached,
// a first presentation consults it before computing, and a computed
// []byte value is written through.
//
// Error-caching contract: errors are cached exactly like values, for the
// life of the entry. The simulator is deterministic, so a failing
// configuration fails identically on every retry and recomputing would
// only re-pay the failure. That includes degraded-run errors
// (fault.ErrDegraded with partial results): the entry is pinned to its
// key, and a later healthy run of the same inputs can never be served it
// because the process-wide fault-plan fingerprint is mixed into every
// Key — the healthy run presents a different key. The only uncached
// outcome is a panic: the entry is poisoned with an error for any
// coalesced waiters (so they fail instead of hanging), dropped from the
// map (so the key stays retryable), and the panic unwinds through to the
// computing caller.
func (c *Cache) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	c.stats.Lookups++
	if e, ok := c.m[key]; ok {
		if e.complete {
			c.stats.Hits++
		} else {
			c.stats.Coalesced++
		}
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	c.stats.Misses++
	e := &entry{done: make(chan struct{})}
	c.m[key] = e
	second := c.second
	c.mu.Unlock()

	if second != nil {
		if blob, ok := second.Get(key); ok {
			e.val = blob
			c.mu.Lock()
			c.stats.DiskHits++
			e.complete = true
			c.mu.Unlock()
			close(e.done)
			return e.val, nil
		}
	}

	finished := false
	defer func() {
		if finished {
			return
		}
		// compute panicked and the panic is unwinding through this frame:
		// poison the entry for coalesced waiters, drop the key, and let
		// the panic continue to the caller.
		c.mu.Lock()
		delete(c.m, key)
		e.complete = true
		c.mu.Unlock()
		e.err = errComputePanicked
		close(e.done)
	}()
	e.val, e.err = compute()
	finished = true
	if e.err == nil && second != nil {
		if blob, ok := e.val.([]byte); ok {
			second.Put(key, blob)
		}
	}
	c.mu.Lock()
	e.complete = true
	c.mu.Unlock()
	close(e.done)
	return e.val, e.err
}

// Len returns the number of cached (or in-flight) keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Clear empties the cache. In-flight computations complete normally but
// are not retained.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.m = map[string]*entry{}
	c.mu.Unlock()
}

// Key builds a content-addressed cache key: a stable hash over the
// experiment kind and every input that affects the result (machine
// parameters, workload profile or size, scheduling policy, ablation
// switches). Parts are serialized with %#v, so they must be plain values —
// structs of scalars, slices, strings — never pointers or maps, whose
// rendering is not stable. Distinct inputs yield distinct keys; the kind
// label keeps experiments with coincidentally equal inputs (and different
// result types) apart.
func Key(kind string, parts ...any) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", kind)
	for _, p := range parts {
		fmt.Fprintf(h, "|%#v", p)
	}
	// The process-wide fault plan changes every machine a job builds, so
	// it is an implicit input of every keyed job: mixing it in keeps a
	// healthy run from ever being served a faulted run's cached result
	// (or vice versa). Jobs that pass an explicit plan also include it
	// in their parts.
	if fp := fault.DefaultFingerprint(); fp != "" {
		fmt.Fprintf(h, "|faults:%s", fp)
	}
	return kind + ":" + hex.EncodeToString(h.Sum(nil)[:16])
}
