package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"cedar/internal/fault"
)

// Cache is a content-addressed, single-flight run cache: the first job to
// present a key computes the value while concurrent presenters of the same
// key wait for it, and later presenters reuse it outright. Simulations are
// deterministic, so a cached outcome is indistinguishable from a re-run.
type Cache struct {
	mu sync.Mutex
	m  map[string]*entry
}

type entry struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{m: map[string]*entry{}}
}

// shared is the process-wide cache: configurations repeated across suites
// (the same machine running the same workload for two different tables)
// simulate once per process.
var shared = NewCache()

// ResetCache empties the process-wide shared cache. Benchmarks and
// equality tests use it to force re-simulation.
func ResetCache() { shared.Clear() }

// do returns the cached value for key, computing it via compute on first
// presentation. Concurrent callers of the same key block until the first
// computation finishes (single flight). Errors are cached too: the
// simulator is deterministic, so a failing configuration fails again.
func (c *Cache) do(key string, compute func() (any, error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.m[key] = e
	c.mu.Unlock()
	e.val, e.err = compute()
	close(e.done)
	return e.val, e.err
}

// Len returns the number of cached (or in-flight) keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Clear empties the cache. In-flight computations complete normally but
// are not retained.
func (c *Cache) Clear() {
	c.mu.Lock()
	c.m = map[string]*entry{}
	c.mu.Unlock()
}

// Key builds a content-addressed cache key: a stable hash over the
// experiment kind and every input that affects the result (machine
// parameters, workload profile or size, scheduling policy, ablation
// switches). Parts are serialized with %#v, so they must be plain values —
// structs of scalars, slices, strings — never pointers or maps, whose
// rendering is not stable. Distinct inputs yield distinct keys; the kind
// label keeps experiments with coincidentally equal inputs (and different
// result types) apart.
func Key(kind string, parts ...any) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s", kind)
	for _, p := range parts {
		fmt.Fprintf(h, "|%#v", p)
	}
	// The process-wide fault plan changes every machine a job builds, so
	// it is an implicit input of every keyed job: mixing it in keeps a
	// healthy run from ever being served a faulted run's cached result
	// (or vice versa). Jobs that pass an explicit plan also include it
	// in their parts.
	if fp := fault.DefaultFingerprint(); fp != "" {
		fmt.Fprintf(h, "|faults:%s", fp)
	}
	return kind + ":" + hex.EncodeToString(h.Sum(nil)[:16])
}
