package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"cedar/internal/fault"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// TestRunOrdering is the worker-pool ordering contract: results come back
// in submission order regardless of completion order.
func TestRunOrdering(t *testing.T) {
	const n = 16
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(*scope.Hub) (int, error) {
			// Later submissions finish first, so in-order reassembly is
			// actually exercised.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i * i, nil
		}}
	}
	got, err := Run(Config{Jobs: 8, Cache: NewCache()}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestHubBytesIdenticalAcrossWorkerCounts checks the per-job hub plumbing:
// metrics, spans and attribution posted by jobs must serialize identically
// whether the pool ran with one worker or eight.
func TestHubBytesIdenticalAcrossWorkerCounts(t *testing.T) {
	artifacts := func(workers int) (csv, trace []byte) {
		hub := scope.NewHub()
		jobs := make([]Job[int], 6)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{Run: func(h *scope.Hub) (int, error) {
				sub := h.Sub(fmt.Sprintf("job%d", i))
				sub.Counter("value", func() int64 { return int64(i) })
				sub.Span("work", "run", int64(i*10), int64(i*10+3))
				sub.Attribute("job", func() scope.Attr { return scope.Attr{Busy: int64(i)} })
				return i, nil
			}}
		}
		if _, err := Run(Config{Jobs: workers, Hub: hub, Cache: NewCache()}, jobs); err != nil {
			t.Fatal(err)
		}
		var cb, tb bytes.Buffer
		if err := hub.WriteMetricsCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := hub.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), tb.Bytes()
	}
	c1, t1 := artifacts(1)
	c8, t8 := artifacts(8)
	if !bytes.Equal(c1, c8) {
		t.Errorf("metrics CSV differs between 1 and 8 workers:\n1:\n%s\n8:\n%s", c1, c8)
	}
	if !bytes.Equal(t1, t8) {
		t.Error("trace JSON differs between 1 and 8 workers")
	}
}

// TestCacheSingleFlight checks memoization: eight concurrent jobs with one
// key simulate once and all read the same value.
func TestCacheSingleFlight(t *testing.T) {
	var computes atomic.Int64
	cache := NewCache()
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: "same-point",
			Run: func(*scope.Hub) (int, error) {
				computes.Add(1)
				return 42, nil
			},
		}
	}
	got, err := Run(Config{Jobs: 8, Cache: cache}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1 (single flight)", n)
	}
	for i, v := range got {
		if v != 42 {
			t.Errorf("result[%d] = %d, want 42", i, v)
		}
	}
	// A later Run against the same cache reuses the value outright.
	if _, err := Run(Config{Jobs: 1, Cache: cache}, jobs[:2]); err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times after second Run, want 1", n)
	}
}

// TestHubDisablesCache: a cache hit skips the simulation and therefore
// cannot replay instrumentation, so observed jobs must always execute.
func TestHubDisablesCache(t *testing.T) {
	var computes atomic.Int64
	cache := NewCache()
	job := Job[int]{Key: "observed-point", Run: func(h *scope.Hub) (int, error) {
		computes.Add(1)
		h.Counter("ran", func() int64 { return 1 })
		return 7, nil
	}}
	hub := scope.NewHub()
	for i := 0; i < 3; i++ {
		if _, err := Run(Config{Jobs: 1, Hub: hub, Cache: cache}, []Job[int]{job}); err != nil {
			t.Fatal(err)
		}
	}
	if n := computes.Load(); n != 3 {
		t.Errorf("observed job ran %d times, want 3 (cache must be bypassed)", n)
	}
	if cache.Len() != 0 {
		t.Errorf("cache holds %d keys after observed runs, want 0", cache.Len())
	}
	if hub.Metrics() != 3 {
		t.Errorf("hub has %d metrics, want 3", hub.Metrics())
	}
}

// TestKeyDistinctInputs: the run-cache key must separate any two
// configurations that differ in machine parameters, workload, or policy.
func TestKeyDistinctInputs(t *testing.T) {
	base := params.Default()
	k1 := Key("perfect", base, "ARC2D", "auto")
	if k2 := Key("perfect", base, "ARC2D", "auto"); k2 != k1 {
		t.Errorf("identical inputs produced distinct keys:\n%s\n%s", k1, k2)
	}
	mutated := base
	mutated.Clusters = base.Clusters + 1
	distinct := []string{
		Key("perfect", mutated, "ARC2D", "auto"),
		Key("perfect", base, "QCD", "auto"),
		Key("perfect", base, "ARC2D", "serial"),
		Key("table1", base, "ARC2D", "auto"),
	}
	seen := map[string]bool{k1: true}
	for i, k := range distinct {
		if seen[k] {
			t.Errorf("key %d (%s) collides with an earlier configuration", i, k)
		}
		seen[k] = true
	}
}

func TestRunErrorEarliestWins(t *testing.T) {
	errA := errors.New("job 2 failed")
	errB := errors.New("job 5 failed")
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(*scope.Hub) (int, error) {
			switch i {
			case 2:
				return 0, errA
			case 5:
				return 0, errB
			}
			return i, nil
		}}
	}
	_, err := Run(Config{Jobs: 4, Cache: NewCache()}, jobs)
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want the earliest-submitted failure %v", err, errA)
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](Config{Jobs: 8}, nil)
	if err != nil || got != nil {
		t.Errorf("Run(nil) = %v, %v; want nil, nil", got, err)
	}
}

func TestJobsDefault(t *testing.T) {
	SetJobs(0)
	if Jobs() < 1 {
		t.Errorf("default Jobs() = %d, want >= 1", Jobs())
	}
	SetJobs(3)
	if Jobs() != 3 {
		t.Errorf("Jobs() after SetJobs(3) = %d", Jobs())
	}
	SetJobs(0)
}

// rowResult is a cache-hostile result shape: every reference kind the
// deep copy must sever, including nesting.
type rowResult struct {
	Rows   []float64
	Labels map[string]int
	Peak   *int64
	Nested []*rowResult
}

// TestCacheHitsAreIsolated is the aliasing regression: results handed
// out by the run cache must be structurally independent, so a caller
// that mutates its result (tables post-process rows in place, e.g.
// normalizing cycles into slowdowns) cannot corrupt the cached original
// or a sibling cache hit.
func TestCacheHitsAreIsolated(t *testing.T) {
	cache := NewCache()
	peak := int64(99)
	job := Job[*rowResult]{
		Key: "aliased-point",
		Run: func(*scope.Hub) (*rowResult, error) {
			p := peak
			return &rowResult{
				Rows:   []float64{1, 2, 3},
				Labels: map[string]int{"a": 1},
				Peak:   &p,
				Nested: []*rowResult{{Rows: []float64{9}}},
			}, nil
		},
	}

	first, err := Run(Config{Jobs: 1, Cache: cache}, []Job[*rowResult]{job})
	if err != nil {
		t.Fatal(err)
	}
	// The first caller (the one that computed the value) mutates every
	// layer of its copy.
	first[0].Rows[0] = -1
	first[0].Labels["a"] = -1
	*first[0].Peak = -1
	first[0].Nested[0].Rows[0] = -1

	second, err := Run(Config{Jobs: 1, Cache: cache}, []Job[*rowResult]{job})
	if err != nil {
		t.Fatal(err)
	}
	got := second[0]
	if got.Rows[0] != 1 || got.Labels["a"] != 1 || *got.Peak != 99 || got.Nested[0].Rows[0] != 9 {
		t.Fatalf("cache hit observed a sibling's mutations: %+v (peak %d, nested %v)",
			got, *got.Peak, got.Nested[0].Rows)
	}
	// And the two hits must not alias each other either.
	if &first[0].Rows[0] == &second[0].Rows[0] || first[0].Peak == second[0].Peak {
		t.Fatal("two cache hits share backing storage")
	}
}

// TestKeySeesDefaultFaultPlan: the process-wide fault plan changes every
// machine a job builds, so it must be part of every cache key — a
// healthy run must never be served a faulted run's result.
func TestKeySeesDefaultFaultPlan(t *testing.T) {
	t.Cleanup(func() { fault.SetDefault(nil) })
	fault.SetDefault(nil)
	healthy := Key("point", 1)
	fault.SetDefault(fault.DemoPlan())
	faulted := Key("point", 1)
	if healthy == faulted {
		t.Fatal("cache key ignores the installed fault plan")
	}
	fault.SetDefault(nil)
	if again := Key("point", 1); again != healthy {
		t.Fatalf("healthy key unstable: %q vs %q", again, healthy)
	}
}

// TestCacheStatsDeterministicAtAnyWorkerCount: lookups, misses and the
// served count (hits + coalesced) must not depend on scheduling; only the
// hit/coalesce split may. This is the contract cedarbench's deterministic
// artifact section rests on.
func TestCacheStatsDeterministicAtAnyWorkerCount(t *testing.T) {
	counts := func(workers int) CacheStats {
		cache := NewCache()
		jobs := make([]Job[int], 12)
		for i := range jobs {
			// Four distinct keys, each presented three times.
			key := fmt.Sprintf("point-%d", i%4)
			jobs[i] = Job[int]{Key: key, Run: func(*scope.Hub) (int, error) { return i, nil }}
		}
		if _, err := Run(Config{Jobs: workers, Cache: cache}, jobs); err != nil {
			t.Fatal(err)
		}
		return cache.Stats()
	}
	for _, workers := range []int{1, 8} {
		st := counts(workers)
		if st.Lookups != 12 || st.Misses != 4 || st.Served() != 8 {
			t.Errorf("workers=%d: stats %+v, want 12 lookups, 4 misses, 8 served", workers, st)
		}
		if got, want := st.HitRate(), 8.0/12.0; got != want {
			t.Errorf("workers=%d: hit rate %v, want %v", workers, got, want)
		}
		if st.Hits+st.Coalesced != 8 {
			t.Errorf("workers=%d: hits %d + coalesced %d != 8", workers, st.Hits, st.Coalesced)
		}
	}
}

// TestCacheStatsSurviveClear: the counters are monotonic for the life of
// the cache (scope publishes them as counters), even though Clear drops
// the entries.
func TestCacheStatsSurviveClear(t *testing.T) {
	cache := NewCache()
	job := []Job[int]{{Key: "k", Run: func(*scope.Hub) (int, error) { return 1, nil }}}
	for i := 0; i < 2; i++ {
		if _, err := Run(Config{Jobs: 1, Cache: cache}, job); err != nil {
			t.Fatal(err)
		}
	}
	cache.Clear()
	if cache.Len() != 0 {
		t.Errorf("Len() = %d after Clear, want 0", cache.Len())
	}
	st := cache.Stats()
	if st.Lookups != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats %+v after Clear, want lookups 2, misses 1, hits 1", st)
	}
}

// TestCachePublish: fleet.cache.* metrics land on the hub and read the
// live counters.
func TestCachePublish(t *testing.T) {
	cache := NewCache()
	hub := scope.NewHub()
	cache.Publish(hub)
	if _, err := Run(Config{Jobs: 1, Cache: cache}, []Job[int]{
		{Key: "a", Run: func(*scope.Hub) (int, error) { return 1, nil }},
		{Key: "a", Run: func(*scope.Hub) (int, error) { return 1, nil }},
		{Key: "b", Run: func(*scope.Hub) (int, error) { return 2, nil }},
	}); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, s := range hub.Snapshot() {
		got[s.Name] = s.Value
	}
	want := map[string]int64{
		"fleet.cache.lookups":   3,
		"fleet.cache.misses":    2,
		"fleet.cache.hits":      1,
		"fleet.cache.coalesced": 0,
		"fleet.cache.entries":   2,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d (snapshot: %v)", name, got[name], v, got)
		}
	}
	// Publish of the shared cache must be nil-hub safe.
	PublishMetrics(nil)
}
