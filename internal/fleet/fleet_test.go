package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cedar/internal/fault"
	"cedar/internal/params"
	"cedar/internal/scope"
)

// TestRunOrdering is the worker-pool ordering contract: results come back
// in submission order regardless of completion order.
func TestRunOrdering(t *testing.T) {
	const n = 16
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(*scope.Hub) (int, error) {
			// Later submissions finish first, so in-order reassembly is
			// actually exercised.
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i * i, nil
		}}
	}
	got, err := Run(Config{Jobs: 8, Cache: NewCache()}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestHubBytesIdenticalAcrossWorkerCounts checks the per-job hub plumbing:
// metrics, spans and attribution posted by jobs must serialize identically
// whether the pool ran with one worker or eight.
func TestHubBytesIdenticalAcrossWorkerCounts(t *testing.T) {
	artifacts := func(workers int) (csv, trace []byte) {
		hub := scope.NewHub()
		jobs := make([]Job[int], 6)
		for i := range jobs {
			i := i
			jobs[i] = Job[int]{Run: func(h *scope.Hub) (int, error) {
				sub := h.Sub(fmt.Sprintf("job%d", i))
				sub.Counter("value", func() int64 { return int64(i) })
				sub.Span("work", "run", int64(i*10), int64(i*10+3))
				sub.Attribute("job", func() scope.Attr { return scope.Attr{Busy: int64(i)} })
				return i, nil
			}}
		}
		if _, err := Run(Config{Jobs: workers, Hub: hub, Cache: NewCache()}, jobs); err != nil {
			t.Fatal(err)
		}
		var cb, tb bytes.Buffer
		if err := hub.WriteMetricsCSV(&cb); err != nil {
			t.Fatal(err)
		}
		if err := hub.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), tb.Bytes()
	}
	c1, t1 := artifacts(1)
	c8, t8 := artifacts(8)
	if !bytes.Equal(c1, c8) {
		t.Errorf("metrics CSV differs between 1 and 8 workers:\n1:\n%s\n8:\n%s", c1, c8)
	}
	if !bytes.Equal(t1, t8) {
		t.Error("trace JSON differs between 1 and 8 workers")
	}
}

// TestCacheSingleFlight checks memoization: eight concurrent jobs with one
// key simulate once and all read the same value.
func TestCacheSingleFlight(t *testing.T) {
	var computes atomic.Int64
	cache := NewCache()
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{
			Key: "same-point",
			Run: func(*scope.Hub) (int, error) {
				computes.Add(1)
				return 42, nil
			},
		}
	}
	got, err := Run(Config{Jobs: 8, Cache: cache}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times, want 1 (single flight)", n)
	}
	for i, v := range got {
		if v != 42 {
			t.Errorf("result[%d] = %d, want 42", i, v)
		}
	}
	// A later Run against the same cache reuses the value outright.
	if _, err := Run(Config{Jobs: 1, Cache: cache}, jobs[:2]); err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("compute ran %d times after second Run, want 1", n)
	}
}

// TestHubDisablesCache: a cache hit skips the simulation and therefore
// cannot replay instrumentation, so observed jobs must always execute.
func TestHubDisablesCache(t *testing.T) {
	var computes atomic.Int64
	cache := NewCache()
	job := Job[int]{Key: "observed-point", Run: func(h *scope.Hub) (int, error) {
		computes.Add(1)
		h.Counter("ran", func() int64 { return 1 })
		return 7, nil
	}}
	hub := scope.NewHub()
	for i := 0; i < 3; i++ {
		if _, err := Run(Config{Jobs: 1, Hub: hub, Cache: cache}, []Job[int]{job}); err != nil {
			t.Fatal(err)
		}
	}
	if n := computes.Load(); n != 3 {
		t.Errorf("observed job ran %d times, want 3 (cache must be bypassed)", n)
	}
	if cache.Len() != 0 {
		t.Errorf("cache holds %d keys after observed runs, want 0", cache.Len())
	}
	if hub.Metrics() != 3 {
		t.Errorf("hub has %d metrics, want 3", hub.Metrics())
	}
}

// TestKeyDistinctInputs: the run-cache key must separate any two
// configurations that differ in machine parameters, workload, or policy.
func TestKeyDistinctInputs(t *testing.T) {
	base := params.Default()
	k1 := Key("perfect", base, "ARC2D", "auto")
	if k2 := Key("perfect", base, "ARC2D", "auto"); k2 != k1 {
		t.Errorf("identical inputs produced distinct keys:\n%s\n%s", k1, k2)
	}
	mutated := base
	mutated.Clusters = base.Clusters + 1
	distinct := []string{
		Key("perfect", mutated, "ARC2D", "auto"),
		Key("perfect", base, "QCD", "auto"),
		Key("perfect", base, "ARC2D", "serial"),
		Key("table1", base, "ARC2D", "auto"),
	}
	seen := map[string]bool{k1: true}
	for i, k := range distinct {
		if seen[k] {
			t.Errorf("key %d (%s) collides with an earlier configuration", i, k)
		}
		seen[k] = true
	}
}

func TestRunErrorEarliestWins(t *testing.T) {
	errA := errors.New("job 2 failed")
	errB := errors.New("job 5 failed")
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(*scope.Hub) (int, error) {
			switch i {
			case 2:
				return 0, errA
			case 5:
				return 0, errB
			}
			return i, nil
		}}
	}
	_, err := Run(Config{Jobs: 4, Cache: NewCache()}, jobs)
	if !errors.Is(err, errA) {
		t.Errorf("err = %v, want the earliest-submitted failure %v", err, errA)
	}
}

func TestRunEmpty(t *testing.T) {
	got, err := Run[int](Config{Jobs: 8}, nil)
	if err != nil || got != nil {
		t.Errorf("Run(nil) = %v, %v; want nil, nil", got, err)
	}
}

func TestJobsDefault(t *testing.T) {
	SetJobs(0)
	if Jobs() < 1 {
		t.Errorf("default Jobs() = %d, want >= 1", Jobs())
	}
	SetJobs(3)
	if Jobs() != 3 {
		t.Errorf("Jobs() after SetJobs(3) = %d", Jobs())
	}
	SetJobs(0)
}

// rowResult is a cache-hostile result shape: every reference kind the
// deep copy must sever, including nesting.
type rowResult struct {
	Rows   []float64
	Labels map[string]int
	Peak   *int64
	Nested []*rowResult
}

// TestCacheHitsAreIsolated is the aliasing regression: results handed
// out by the run cache must be structurally independent, so a caller
// that mutates its result (tables post-process rows in place, e.g.
// normalizing cycles into slowdowns) cannot corrupt the cached original
// or a sibling cache hit.
func TestCacheHitsAreIsolated(t *testing.T) {
	cache := NewCache()
	peak := int64(99)
	job := Job[*rowResult]{
		Key: "aliased-point",
		Run: func(*scope.Hub) (*rowResult, error) {
			p := peak
			return &rowResult{
				Rows:   []float64{1, 2, 3},
				Labels: map[string]int{"a": 1},
				Peak:   &p,
				Nested: []*rowResult{{Rows: []float64{9}}},
			}, nil
		},
	}

	first, err := Run(Config{Jobs: 1, Cache: cache}, []Job[*rowResult]{job})
	if err != nil {
		t.Fatal(err)
	}
	// The first caller (the one that computed the value) mutates every
	// layer of its copy.
	first[0].Rows[0] = -1
	first[0].Labels["a"] = -1
	*first[0].Peak = -1
	first[0].Nested[0].Rows[0] = -1

	second, err := Run(Config{Jobs: 1, Cache: cache}, []Job[*rowResult]{job})
	if err != nil {
		t.Fatal(err)
	}
	got := second[0]
	if got.Rows[0] != 1 || got.Labels["a"] != 1 || *got.Peak != 99 || got.Nested[0].Rows[0] != 9 {
		t.Fatalf("cache hit observed a sibling's mutations: %+v (peak %d, nested %v)",
			got, *got.Peak, got.Nested[0].Rows)
	}
	// And the two hits must not alias each other either.
	if &first[0].Rows[0] == &second[0].Rows[0] || first[0].Peak == second[0].Peak {
		t.Fatal("two cache hits share backing storage")
	}
}

// TestKeySeesDefaultFaultPlan: the process-wide fault plan changes every
// machine a job builds, so it must be part of every cache key — a
// healthy run must never be served a faulted run's result.
func TestKeySeesDefaultFaultPlan(t *testing.T) {
	t.Cleanup(func() { fault.SetDefault(nil) })
	fault.SetDefault(nil)
	healthy := Key("point", 1)
	fault.SetDefault(fault.DemoPlan())
	faulted := Key("point", 1)
	if healthy == faulted {
		t.Fatal("cache key ignores the installed fault plan")
	}
	fault.SetDefault(nil)
	if again := Key("point", 1); again != healthy {
		t.Fatalf("healthy key unstable: %q vs %q", again, healthy)
	}
}

// TestCacheStatsDeterministicAtAnyWorkerCount: lookups, misses and the
// served count (hits + coalesced) must not depend on scheduling; only the
// hit/coalesce split may. This is the contract cedarbench's deterministic
// artifact section rests on.
func TestCacheStatsDeterministicAtAnyWorkerCount(t *testing.T) {
	counts := func(workers int) CacheStats {
		cache := NewCache()
		jobs := make([]Job[int], 12)
		for i := range jobs {
			// Four distinct keys, each presented three times.
			key := fmt.Sprintf("point-%d", i%4)
			jobs[i] = Job[int]{Key: key, Run: func(*scope.Hub) (int, error) { return i, nil }}
		}
		if _, err := Run(Config{Jobs: workers, Cache: cache}, jobs); err != nil {
			t.Fatal(err)
		}
		return cache.Stats()
	}
	for _, workers := range []int{1, 8} {
		st := counts(workers)
		if st.Lookups != 12 || st.Misses != 4 || st.Served() != 8 {
			t.Errorf("workers=%d: stats %+v, want 12 lookups, 4 misses, 8 served", workers, st)
		}
		if got, want := st.HitRate(), 8.0/12.0; got != want {
			t.Errorf("workers=%d: hit rate %v, want %v", workers, got, want)
		}
		if st.Hits+st.Coalesced != 8 {
			t.Errorf("workers=%d: hits %d + coalesced %d != 8", workers, st.Hits, st.Coalesced)
		}
	}
}

// TestCacheStatsSurviveClear: the counters are monotonic for the life of
// the cache (scope publishes them as counters), even though Clear drops
// the entries.
func TestCacheStatsSurviveClear(t *testing.T) {
	cache := NewCache()
	job := []Job[int]{{Key: "k", Run: func(*scope.Hub) (int, error) { return 1, nil }}}
	for i := 0; i < 2; i++ {
		if _, err := Run(Config{Jobs: 1, Cache: cache}, job); err != nil {
			t.Fatal(err)
		}
	}
	cache.Clear()
	if cache.Len() != 0 {
		t.Errorf("Len() = %d after Clear, want 0", cache.Len())
	}
	st := cache.Stats()
	if st.Lookups != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats %+v after Clear, want lookups 2, misses 1, hits 1", st)
	}
}

// TestCachePublish: fleet.cache.* metrics land on the hub and read the
// live counters.
func TestCachePublish(t *testing.T) {
	cache := NewCache()
	hub := scope.NewHub()
	cache.Publish(hub)
	if _, err := Run(Config{Jobs: 1, Cache: cache}, []Job[int]{
		{Key: "a", Run: func(*scope.Hub) (int, error) { return 1, nil }},
		{Key: "a", Run: func(*scope.Hub) (int, error) { return 1, nil }},
		{Key: "b", Run: func(*scope.Hub) (int, error) { return 2, nil }},
	}); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, s := range hub.Snapshot() {
		got[s.Name] = s.Value
	}
	want := map[string]int64{
		"fleet.cache.lookups":   3,
		"fleet.cache.misses":    2,
		"fleet.cache.hits":      1,
		"fleet.cache.coalesced": 0,
		"fleet.cache.entries":   2,
	}
	for name, v := range want {
		if got[name] != v {
			t.Errorf("%s = %d, want %d (snapshot: %v)", name, got[name], v, got)
		}
	}
	// Publish of the shared cache must be nil-hub safe.
	PublishMetrics(nil)
}

// TestWorkerPanicRethrownOnCaller is the pool-crash regression: a
// panicking Job.Run must not kill the process from a worker goroutine.
// The panic is captured in the pool and rethrown on Run's caller — where
// a recover works — after the remaining jobs finish.
func TestWorkerPanicRethrownOnCaller(t *testing.T) {
	var ran atomic.Int64
	jobs := make([]Job[int], 8)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Run: func(*scope.Hub) (int, error) {
			if i == 3 {
				panic("job 3 exploded")
			}
			ran.Add(1)
			return i, nil
		}}
	}
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("panicking job did not rethrow on the caller's goroutine")
		}
		if s, ok := p.(string); !ok || s != "job 3 exploded" {
			t.Fatalf("rethrown panic = %v, want the original value", p)
		}
		if n := ran.Load(); n != 7 {
			t.Errorf("%d healthy jobs ran, want 7 (pool must drain before rethrowing)", n)
		}
	}()
	_, _ = Run(Config{Jobs: 4, Cache: NewCache()}, jobs)
	t.Fatal("Run returned normally despite a panicking job")
}

// TestPanickedComputePoisonsCoalescedWaiters: a panic inside a cached
// computation must not leave coalesced presenters of the same key
// blocked on a done channel that never closes. They get an error, the
// key stays retryable, and the panic still surfaces on the computing
// caller.
func TestPanickedComputePoisonsCoalescedWaiters(t *testing.T) {
	cache := NewCache()
	started := make(chan struct{})
	release := make(chan struct{})

	computerDone := make(chan any, 1)
	go func() {
		defer func() { computerDone <- recover() }()
		_, _ = Run(Config{Jobs: 1, Cache: cache}, []Job[int]{{
			Key: "poisoned",
			Run: func(*scope.Hub) (int, error) {
				close(started)
				<-release
				panic("compute exploded")
			},
		}})
	}()
	<-started

	waiterErr := make(chan error, 1)
	go func() {
		_, err := Run(Config{Jobs: 1, Cache: cache}, []Job[int]{{
			Key: "poisoned",
			Run: func(*scope.Hub) (int, error) { return 1, nil },
		}})
		waiterErr <- err
	}()
	// The waiter has coalesced once the stats say so; only then let the
	// computation blow up.
	for cache.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	close(release)

	if p := <-computerDone; p == nil {
		t.Error("computing caller did not observe the panic")
	}
	err := <-waiterErr
	if !errors.Is(err, errComputePanicked) {
		t.Fatalf("coalesced waiter got %v, want errComputePanicked", err)
	}
	// The poisoned key was dropped, so a later presentation recomputes.
	got, err := Run(Config{Jobs: 1, Cache: cache}, []Job[int]{{
		Key: "poisoned",
		Run: func(*scope.Hub) (int, error) { return 42, nil },
	}})
	if err != nil || got[0] != 42 {
		t.Fatalf("retry after panic = %v, %v; want 42, nil (key must stay retryable)", got, err)
	}
}

// TestCopyFailureRecomputesNeverAliases is the runOne fallback
// regression: when the deep copy cannot reproduce the cached value's
// type, the job is recomputed — the old code handed out the cached
// original itself, aliasing cache internals to a caller free to mutate
// them.
func TestCopyFailureRecomputesNeverAliases(t *testing.T) {
	orig := cacheCopy
	cacheCopy = func(any) any { return nil } // every copy "fails"
	defer func() { cacheCopy = orig }()

	var computes atomic.Int64
	cache := NewCache()
	job := Job[*rowResult]{
		Key: "uncopyable",
		Run: func(*scope.Hub) (*rowResult, error) {
			computes.Add(1)
			return &rowResult{Rows: []float64{1}}, nil
		},
	}
	first, err := Run(Config{Jobs: 1, Cache: cache}, []Job[*rowResult]{job})
	if err != nil {
		t.Fatal(err)
	}
	first[0].Rows[0] = -1 // would corrupt the cached original if aliased
	second, err := Run(Config{Jobs: 1, Cache: cache}, []Job[*rowResult]{job})
	if err != nil {
		t.Fatal(err)
	}
	if second[0] == first[0] || &second[0].Rows[0] == &first[0].Rows[0] {
		t.Fatal("copy-failure fallback handed out an aliased reference")
	}
	if second[0].Rows[0] != 1 {
		t.Fatalf("second caller saw the first caller's mutation: %v", second[0].Rows)
	}
	if n := computes.Load(); n < 2 {
		t.Fatalf("computes = %d, want ≥ 2 (fallback must recompute, not alias)", n)
	}
}

// TestErrorsCachedForever pins the do() error-caching contract: a failing
// configuration fails again from cache — deterministically — for the life
// of the entry.
func TestErrorsCachedForever(t *testing.T) {
	cache := NewCache()
	sentinel := errors.New("config rejected")
	var computes atomic.Int64
	bad := Job[int]{Key: "bad-config", Run: func(*scope.Hub) (int, error) {
		computes.Add(1)
		return 0, sentinel
	}}
	good := Job[int]{Key: "bad-config", Run: func(*scope.Hub) (int, error) {
		computes.Add(1)
		return 1, nil
	}}
	if _, err := Run(Config{Jobs: 1, Cache: cache}, []Job[int]{bad}); !errors.Is(err, sentinel) {
		t.Fatalf("first run err = %v", err)
	}
	// Same key, would-be-healthy compute: the cached error is served.
	if _, err := Run(Config{Jobs: 1, Cache: cache}, []Job[int]{good}); !errors.Is(err, sentinel) {
		t.Fatalf("second run err = %v, want the cached %v", err, sentinel)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1 (errors cache like values)", n)
	}
}

// TestHealthyAfterFaultedNotServedDegraded: a degraded-run error cached
// while a fault plan was installed must never be served to a healthy run
// of the same inputs. The protection is structural — Key mixes the
// process-wide plan fingerprint in — so the healthy run presents a
// different key and simulates fresh.
func TestHealthyAfterFaultedNotServedDegraded(t *testing.T) {
	t.Cleanup(func() { fault.SetDefault(nil) })
	cache := NewCache()
	var computes atomic.Int64
	point := func() Job[string] {
		// Key is built at submission time, exactly like the tables
		// runners do, so it sees the plan installed *now*.
		return Job[string]{Key: Key("exp", "rank", 48), Run: func(*scope.Hub) (string, error) {
			computes.Add(1)
			if fault.Default() != nil {
				return "partial", fault.ErrDegraded
			}
			return "complete", nil
		}}
	}

	fault.SetDefault(fault.DemoPlan())
	if _, err := Run(Config{Jobs: 1, Cache: cache}, []Job[string]{point()}); !errors.Is(err, fault.ErrDegraded) {
		t.Fatalf("faulted run err = %v, want ErrDegraded", err)
	}
	// Same inputs, plan cleared: must simulate fresh and succeed, never
	// see the cached degraded entry.
	fault.SetDefault(nil)
	got, err := Run(Config{Jobs: 1, Cache: cache}, []Job[string]{point()})
	if err != nil {
		t.Fatalf("healthy run was served the degraded entry: %v", err)
	}
	if got[0] != "complete" || computes.Load() != 2 {
		t.Fatalf("healthy run got %q after %d computes, want fresh \"complete\" after 2", got[0], computes.Load())
	}
	// Re-installing the same plan reuses the degraded entry (errors are
	// cached forever under their key).
	fault.SetDefault(fault.DemoPlan())
	if _, err := Run(Config{Jobs: 1, Cache: cache}, []Job[string]{point()}); !errors.Is(err, fault.ErrDegraded) {
		t.Fatalf("re-faulted run err = %v, want the cached ErrDegraded", err)
	}
	if n := computes.Load(); n != 2 {
		t.Fatalf("computes = %d, want 2 (degraded entry reused under its own key)", n)
	}
}

// fakeStore is an in-memory SecondLevel for two-level lookup tests.
type fakeStore struct {
	mu   sync.Mutex
	m    map[string][]byte
	puts int
	gets int
}

func newFakeStore() *fakeStore { return &fakeStore{m: map[string][]byte{}} }

func (f *fakeStore) Get(key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	b, ok := f.m[key]
	return b, ok
}

func (f *fakeStore) Put(key string, blob []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.puts++
	f.m[key] = append([]byte(nil), blob...)
}

// TestSecondLevelStore: the two-level lookup contract. A computed []byte
// value is written through to the store; a fresh cache (a "restarted
// process") sharing the store answers the same key from disk without
// computing, and counts it as a DiskHit.
func TestSecondLevelStore(t *testing.T) {
	disk := newFakeStore()
	var computes atomic.Int64
	job := Job[[]byte]{Key: "blob-point", Run: func(*scope.Hub) ([]byte, error) {
		computes.Add(1)
		return []byte(`{"simcycles":12345}`), nil
	}}

	warm := NewCache()
	warm.SetStore(disk)
	first, err := Run(Config{Jobs: 1, Cache: warm}, []Job[[]byte]{job})
	if err != nil {
		t.Fatal(err)
	}
	if disk.puts != 1 {
		t.Fatalf("store saw %d puts, want 1 (write-through on compute)", disk.puts)
	}

	cold := NewCache() // fresh process: empty memory, same disk
	cold.SetStore(disk)
	second, err := Run(Config{Jobs: 1, Cache: cold}, []Job[[]byte]{job})
	if err != nil {
		t.Fatal(err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1 (cold cache must answer from the store)", n)
	}
	if !bytes.Equal(first[0], second[0]) {
		t.Fatalf("disk-served value differs from computed:\n%s\n%s", first[0], second[0])
	}
	st := cold.Stats()
	if st.Misses != 1 || st.DiskHits != 1 {
		t.Fatalf("cold stats %+v, want 1 miss answered by 1 disk hit", st)
	}
	// A disk-served value is deep-copied per caller like any other hit.
	second[0][0] = 'X'
	third, err := Run(Config{Jobs: 1, Cache: cold}, []Job[[]byte]{job})
	if err != nil {
		t.Fatal(err)
	}
	if third[0][0] == 'X' {
		t.Fatal("disk-backed cache entry was aliased to a previous caller")
	}
}

// TestSecondLevelBypassedForNonBytes: values that are not []byte never
// reach the store — it is byte-addressed.
func TestSecondLevelBypassedForNonBytes(t *testing.T) {
	disk := newFakeStore()
	cache := NewCache()
	cache.SetStore(disk)
	if _, err := Run(Config{Jobs: 1, Cache: cache}, []Job[int]{
		{Key: "int-point", Run: func(*scope.Hub) (int, error) { return 7, nil }},
	}); err != nil {
		t.Fatal(err)
	}
	if disk.puts != 0 {
		t.Fatalf("store saw %d puts for a non-byte value, want 0", disk.puts)
	}
	if st := cache.Stats(); st.DiskHits != 0 {
		t.Fatalf("DiskHits = %d, want 0", st.DiskHits)
	}
}
