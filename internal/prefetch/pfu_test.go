package prefetch

import (
	"testing"

	"cedar/internal/gmem"
	"cedar/internal/network"
	"cedar/internal/params"
	"cedar/internal/sim"
)

// rig wires one PFU to memory through real fabrics, with a glue component
// that drains the reverse port into the PFU (the CE's role).
type rig struct {
	p          params.Machine
	eng        *sim.Engine
	pfu        *PFU
	mem        *gmem.Memory
	autoResume bool // resume immediately on page crossing, as a CE would
}

func newRig(t *testing.T) *rig {
	t.Helper()
	p := params.Default()
	fwd := network.NewOmega(network.OmegaConfig{Name: "fwd", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords})
	rev := network.NewOmega(network.OmegaConfig{Name: "rev", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords})
	mem := gmem.New(p, fwd, rev, nil)
	pfu := New(p, 0, fwd, mem.ModuleFor, nil)
	eng := sim.New()
	r := &rig{p: p, eng: eng, pfu: pfu, mem: mem}
	drainer := sim.Func{ID: "ce0", F: func(cycle int64) {
		for {
			pkt := rev.Poll(0)
			if pkt == nil {
				break
			}
			if !pfu.Deliver(pkt, cycle) {
				t.Fatalf("non-PFU reply: %v", pkt)
			}
		}
		if r.autoResume && pfu.Suspended() {
			pfu.Resume(pfu.PendingAddr())
		}
		pfu.Tick(cycle)
	}}
	eng.Register(drainer, fwd, mem, rev)
	return r
}

func (r *rig) runUntilDone(t *testing.T, limit int64) {
	t.Helper()
	if err := r.eng.RunUntil(r.pfu.Done, limit); err != nil {
		t.Fatalf("prefetch did not complete: %v", err)
	}
}

func TestPrefetchBlockCompletes(t *testing.T) {
	r := newRig(t)
	for i := 0; i < 32; i++ {
		r.mem.Store().StoreWord(uint64(100+2*i), int64(1000+i))
	}
	if err := r.pfu.Arm(32, 2, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(100); err != nil {
		t.Fatal(err)
	}
	r.runUntilDone(t, 10000)

	// Consume in order with correct values.
	deadline := r.eng.Cycle() + int64(r.p.CELoadOverhead) + 5
	got := 0
	for cycle := r.eng.Cycle(); cycle < deadline && got < 32; cycle++ {
		for {
			v, ok := r.pfu.TryConsume(cycle)
			if !ok {
				break
			}
			if v != int64(1000+got) {
				t.Fatalf("element %d = %d, want %d", got, v, 1000+got)
			}
			got++
		}
	}
	if got != 32 {
		t.Fatalf("consumed %d, want 32", got)
	}
	st := r.pfu.Stats()
	if st.Issued != 32 || st.Returned != 32 {
		t.Errorf("stats %+v, want 32 issued/returned", st)
	}
}

func TestPrefetchStreamsOnePerCycle(t *testing.T) {
	// A 256-word unit-stride block should stream at ≈1 word/cycle once
	// the pipeline fills: this is the whole point of the PFU versus the
	// 2-outstanding CE limit.
	r := newRig(t)
	const n = 256
	if err := r.pfu.Arm(n, 1, nil); err != nil {
		t.Fatal(err)
	}
	var rec struct {
		first    int64
		arrivals []int64
	}
	r.pfu.SetObserver(func(first int64, arr []int64) {
		rec.first = first
		rec.arrivals = arr
	})
	if err := r.pfu.Fire(0); err != nil {
		t.Fatal(err)
	}
	r.runUntilDone(t, 10000)
	r.pfu.Finish()
	if len(rec.arrivals) != n {
		t.Fatalf("observer saw %d arrivals, want %d", len(rec.arrivals), n)
	}
	lat := rec.arrivals[0] - rec.first
	if lat != 8 {
		t.Errorf("first-word latency = %d, want 8 (unloaded minimum)", lat)
	}
	span := rec.arrivals[len(rec.arrivals)-1] - rec.arrivals[0]
	inter := float64(span) / float64(n-1)
	if inter > 1.05 {
		t.Errorf("interarrival %.3f cycles, want ≈1 (unloaded minimum)", inter)
	}
}

func TestPrefetchModuleConflictStride(t *testing.T) {
	// Stride = MemModules hits a single module: service rate 1/cycle but
	// every word comes from the same place, so interarrival stays ≈1 —
	// while stride of 2×MemModules on the same module is identical. The
	// interesting contrast is a power-of-two stride that hits only half
	// the modules from two PFUs... here we just verify a single PFU on a
	// single module still streams at the module service rate.
	r := newRig(t)
	r.autoResume = true
	const n = 128
	if err := r.pfu.Arm(n, int64(r.p.MemModules), nil); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(0); err != nil {
		t.Fatal(err)
	}
	r.runUntilDone(t, 10000)
	cyc := r.eng.Cycle()
	limit := int64(n*r.p.MemService) + 60
	if cyc > limit {
		t.Errorf("single-module stream took %d cycles for %d words (limit %d)", cyc, n, limit)
	}
}

func TestPageCrossingSuspends(t *testing.T) {
	r := newRig(t)
	page := uint64(r.p.PageWords)
	// Start 4 words before a page boundary; the 5th address crosses.
	start := page - 4
	if err := r.pfu.Arm(16, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(start); err != nil {
		t.Fatal(err)
	}
	if err := r.eng.RunUntil(r.pfu.Suspended, 1000); err != nil {
		t.Fatalf("never suspended: %v", err)
	}
	if got := r.pfu.Stats().Issued; got != 4 {
		t.Errorf("issued %d before suspend, want 4", got)
	}
	r.pfu.Resume(page)
	r.runUntilDone(t, 10000)
	if got := r.pfu.Stats().Issued; got != 16 {
		t.Errorf("issued %d total, want 16", got)
	}
	if r.pfu.Stats().Suspends != 1 {
		t.Errorf("suspends = %d, want 1", r.pfu.Stats().Suspends)
	}
}

func TestRearmInvalidatesOutstanding(t *testing.T) {
	r := newRig(t)
	if err := r.pfu.Arm(64, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(0); err != nil {
		t.Fatal(err)
	}
	r.eng.Run(6) // a few requests in flight, none returned yet
	if err := r.pfu.Arm(8, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(5000); err != nil {
		t.Fatal(err)
	}
	r.runUntilDone(t, 10000)
	st := r.pfu.Stats()
	if st.Dropped == 0 {
		t.Error("expected stale replies to be dropped after re-arm")
	}
	if r.pfu.Consumed() != 0 {
		t.Error("nothing consumed yet")
	}
	// All 8 fresh words must be consumable.
	got := 0
	for cycle := r.eng.Cycle(); got < 8 && cycle < r.eng.Cycle()+100; cycle++ {
		for {
			if _, ok := r.pfu.TryConsume(cycle); !ok {
				break
			}
			got++
		}
	}
	if got != 8 {
		t.Fatalf("consumed %d after re-arm, want 8", got)
	}
}

func TestMaskSkipsElements(t *testing.T) {
	r := newRig(t)
	mask := make([]bool, 16)
	for i := range mask {
		mask[i] = i%2 == 0
	}
	if err := r.pfu.Arm(16, 1, mask); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(0); err != nil {
		t.Fatal(err)
	}
	r.runUntilDone(t, 10000)
	if got := r.pfu.Stats().Issued; got != 8 {
		t.Errorf("issued %d with half mask, want 8", got)
	}
}

func TestArmValidation(t *testing.T) {
	r := newRig(t)
	if err := r.pfu.Arm(0, 1, nil); err == nil {
		t.Error("length 0 accepted")
	}
	if err := r.pfu.Arm(r.p.PFUBufferWords+1, 1, nil); err == nil {
		t.Error("oversized block accepted")
	}
	if err := r.pfu.Arm(4, 1, make([]bool, 3)); err == nil {
		t.Error("mismatched mask accepted")
	}
	if err := r.pfu.Fire(0); err == nil {
		t.Error("Fire without Arm accepted")
	}
	if err := r.pfu.Arm(4, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(0); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(0); err == nil {
		t.Error("double Fire accepted")
	}
}

func TestConsumeRespectsCEOverhead(t *testing.T) {
	r := newRig(t)
	if err := r.pfu.Arm(1, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.pfu.Fire(0); err != nil {
		t.Fatal(err)
	}
	r.runUntilDone(t, 1000)
	arrived := r.eng.Cycle()
	if _, ok := r.pfu.TryConsume(arrived); ok {
		t.Error("consumable immediately at arrival; CE transfer overhead ignored")
	}
	if _, ok := r.pfu.TryConsume(arrived + int64(r.p.CELoadOverhead)); !ok {
		t.Error("not consumable after CE overhead elapsed")
	}
}
