// Package prefetch models Cedar's per-CE data prefetch unit (PFU).
//
// The PFU masks the long global-memory latency and overcomes the limit of
// two outstanding requests per Alliant CE. It is "armed" with the length,
// stride and mask of a vector and "fired" with the physical address of the
// first word. It then issues up to 512 requests without pausing; data
// returns — possibly out of order because of memory and network conflicts
// — into a 512-word prefetch buffer whose full/empty bit per word lets the
// CE consume the data in request order without waiting for the whole block.
// When the next address would cross a 4 KB page boundary the PFU suspends
// until the processor supplies the first address of the new page, because
// the PFU only handles physical addresses. Arming again invalidates the
// buffer.
package prefetch

import (
	"errors"
	"fmt"

	"cedar/internal/network"
	"cedar/internal/params"
)

// TagBit marks network packet tags owned by a PFU, letting the CE dispatch
// replies arriving on the shared network port. It aliases the network
// package's definition because the memory modules and fault layer must
// recognize prefetch traffic too.
const TagBit = network.PrefetchTagBit

// BlockObserver receives one record per fired prefetch block, mirroring
// what Cedar's external hardware monitor captured: the cycle the first
// address was issued to the forward network and the cycle each datum
// returned from the reverse network.
type BlockObserver func(firstIssue int64, arrivals []int64)

type slot struct {
	full    bool
	value   int64
	arrival int64

	// Retry bookkeeping (used only under fault injection).
	addr     uint64 // issued physical address, for reissue
	inflight bool   // a request for this element is in the network
	tries    int    // reissues so far
}

// PFU is one CE's prefetch unit.
type PFU struct {
	p       params.Machine
	port    int
	fwd     network.Fabric
	modFor  func(addr uint64) int
	pool    *network.PacketPool
	observe BlockObserver
	// extraObs holds additional block observers (the observability hub's
	// prefetch-block tracer) that ride alongside the primary observe hook.
	extraObs []BlockObserver

	buf   []slot
	epoch uint32

	armed       bool
	fired       bool
	length      int
	stride      int64
	mask        []bool
	nextAddr    uint64
	issuedIdx   int // next element index to issue
	outstanding int
	suspended   bool

	firstIssue int64
	arrivals   []int64

	consumeIdx int

	// Fault recovery: armed only when the machine's fault plan can
	// generate recoverable faults (NACKs, link drops). Healthy machines
	// never touch any of it, so their schedules are bit-identical to a
	// build without this machinery.
	retryArmed bool
	retryQ     []retryEntry // elements awaiting reissue after backoff
	timeoutQ   []timeoutEntry
	err        error

	stats Stats
}

// retryEntry schedules one element reissue no earlier than cycle at.
type retryEntry struct {
	idx int
	at  int64
}

// timeoutEntry watches one in-flight request. The timeout is uniform,
// so entries are appended in deadline order and the queue pops from
// the front; stale entries (the reply arrived, or the element was
// already NACKed and rescheduled) are skipped on pop.
type timeoutEntry struct {
	idx      int
	deadline int64
}

// Retry policy: a NACKed or timed-out element is reissued after a
// deterministic exponential backoff, retryBase cycles doubling per
// attempt, up to retryMax attempts before the PFU declares the element
// unreachable and fails the block.
const (
	retryBase    = 16
	retryMax     = 6
	retryTimeout = 2048 // cycles before an unanswered request is presumed lost
)

// Stats holds cumulative PFU counters.
type Stats struct {
	Blocks     int64 // blocks fired
	Issued     int64 // requests issued to the network
	Returned   int64 // words returned to the buffer
	Dropped    int64 // stale replies discarded after re-arm
	Suspends   int64 // page-crossing suspensions
	RefusedCyc int64 // cycles an issue was refused by network back-pressure
	Nacks      int64 // NACK replies received (fault injection)
	Timeouts   int64 // requests presumed lost after retryTimeout cycles
	Retries    int64 // element reissues
}

// New builds a PFU for the CE on the given forward-network port. modFor
// maps a word address to its memory module (egress port). pool recycles
// issued packets — pass the owning CE's pool so replies drained on the
// shared port retire into the same freelist; nil gets a private pool.
func New(p params.Machine, port int, fwd network.Fabric, modFor func(uint64) int, pool *network.PacketPool) *PFU {
	if pool == nil {
		pool = &network.PacketPool{}
	}
	return &PFU{
		p:      p,
		port:   port,
		fwd:    fwd,
		modFor: modFor,
		pool:   pool,
		buf:    make([]slot, p.PFUBufferWords),
	}
}

// SetObserver installs the hardware-monitor hook.
func (u *PFU) SetObserver(o BlockObserver) { u.observe = o }

// AddObserver installs an additional block observer without displacing the
// one set via SetObserver. Observers fire in installation order.
func (u *PFU) AddObserver(o BlockObserver) {
	if o != nil {
		u.extraObs = append(u.extraObs, o)
	}
}

// Stats returns cumulative counters.
func (u *PFU) Stats() Stats { return u.stats }

// ArmRetry enables the NACK/timeout recovery machinery. Machines call
// it when their fault plan can generate recoverable faults; it stays
// off otherwise so healthy schedules are untouched.
func (u *PFU) ArmRetry() { u.retryArmed = true }

// Err returns the terminal fault error, set when an element exhausted
// its retry budget. The CE surfaces it as a degraded-run result.
func (u *PFU) Err() error { return u.err }

// Outstanding returns the requests currently in flight to memory — an
// occupancy gauge for the observability hub.
func (u *PFU) Outstanding() int { return u.outstanding }

// Arm prepares a prefetch of length words with the given stride (in words).
// mask may be nil (all elements) or length bools selecting elements.
// Arming invalidates the buffer: outstanding replies from earlier blocks
// will be dropped on return.
func (u *PFU) Arm(length int, stride int64, mask []bool) error {
	if length < 1 || length > u.p.PFUBufferWords {
		return fmt.Errorf("prefetch: block length %d outside 1..%d", length, u.p.PFUBufferWords) //lint:allow hotalloc reject-path error construction, not steady-state work
	}
	if mask != nil && len(mask) != length {
		return fmt.Errorf("prefetch: mask length %d != block length %d", len(mask), length) //lint:allow hotalloc reject-path error construction, not steady-state work
	}
	u.flushBlock()
	u.epoch++
	u.armed = true
	u.fired = false
	u.suspended = false
	u.length = length
	u.stride = stride
	u.mask = mask
	u.issuedIdx = 0
	u.consumeIdx = 0
	u.outstanding = 0
	u.arrivals = u.arrivals[:0]
	u.retryQ = u.retryQ[:0]
	u.timeoutQ = u.timeoutQ[:0]
	u.err = nil
	for i := range u.buf {
		u.buf[i] = slot{}
	}
	return nil
}

// Fire rejection errors, allocated once: Fire sits on the per-cycle
// re-arm path, so even its failure modes must not construct errors.
var (
	ErrNotArmed     = errors.New("prefetch: Fire without Arm")
	ErrAlreadyFired = errors.New("prefetch: already fired")
)

// Fire starts the armed prefetch at the given physical word address. The
// first request is issued on the next Tick.
func (u *PFU) Fire(addr uint64) error {
	if !u.armed {
		return ErrNotArmed
	}
	if u.fired {
		return ErrAlreadyFired
	}
	u.fired = true
	u.nextAddr = addr
	u.firstIssue = -1
	u.stats.Blocks++
	return nil
}

// Suspended reports whether the PFU is paused at a page boundary, waiting
// for the processor to supply the first address in the new page.
func (u *PFU) Suspended() bool { return u.suspended }

// PendingAddr returns the virtual continuation address that triggered a
// page-crossing suspension; the processor translates it and passes the
// physical address to Resume.
func (u *PFU) PendingAddr() uint64 { return u.nextAddr }

// Resume supplies the physical address of the new page after a page
// crossing suspension.
func (u *PFU) Resume(addr uint64) {
	if !u.suspended {
		return
	}
	u.suspended = false
	u.nextAddr = addr
}

// Done reports whether every element of the fired block has been issued
// and returned (with no reissues still owed).
func (u *PFU) Done() bool {
	return !u.fired || (u.issuedIdx >= u.length && u.outstanding == 0 && len(u.retryQ) == 0)
}

// Busy reports whether requests are outstanding or still to issue.
func (u *PFU) Busy() bool { return u.fired && !u.Done() }

// never mirrors sim.Never without importing sim (prefetch sits below it
// in the layering DAG).
const never = int64(1<<63 - 1)

// NextWakeup reports the earliest cycle the PFU needs its CE's tick:
// every cycle while it can issue (or must be resumed from a page-crossing
// suspension), the earliest timeout or retry deadline otherwise. Phases
// that only await replies sleep — the reverse port wakes the CE.
func (u *PFU) NextWakeup(now int64) int64 {
	if !u.fired {
		return never
	}
	if u.suspended {
		return now // the CE resumes a suspended PFU on its next tick
	}
	w := never
	if u.issuedIdx < u.length {
		if u.mask != nil && !u.mask[u.issuedIdx] {
			return now // masked elements are marked consumable by ticking
		}
		if u.outstanding < u.p.PFUMaxOutstanding {
			return now // an issue (or its refusal) is attempted every cycle
		}
		// Port saturated: a reply must free a slot first.
	}
	if u.retryArmed {
		if len(u.timeoutQ) > 0 && u.timeoutQ[0].deadline < w {
			w = u.timeoutQ[0].deadline
		}
		for _, e := range u.retryQ {
			if e.at < w {
				w = e.at
			}
		}
	}
	if w < now {
		return now
	}
	return w
}

// NextConsumableAt reports when the next in-order element clears the
// CE-side transfer pipeline. ok is false when the word has not arrived
// (its delivery on the reverse port wakes the CE) or the block is drained.
func (u *PFU) NextConsumableAt() (int64, bool) {
	if u.consumeIdx >= u.length {
		return 0, false
	}
	s := &u.buf[u.consumeIdx]
	if !s.full {
		return 0, false
	}
	return s.arrival + int64(u.p.CELoadOverhead), true
}

// Tick issues at most one request into the forward network (the PFU shares
// the CE's single network port; the fabric's ingress serialization
// arbitrates between them).
func (u *PFU) Tick(cycle int64) {
	if !u.fired || u.suspended {
		return
	}
	if u.retryArmed {
		u.expireTimeouts(cycle)
		// Reissues share the single port with fresh issues and go first:
		// the CE consumes in request order, so the oldest missing element
		// gates progress.
		if u.reissue(cycle) {
			return
		}
	}
	for u.issuedIdx < u.length && u.mask != nil && !u.mask[u.issuedIdx] {
		// Masked-off elements are never fetched; mark them consumable.
		u.buf[u.issuedIdx].full = true
		u.buf[u.issuedIdx].arrival = cycle
		u.issuedIdx++
	}
	if u.issuedIdx >= u.length {
		return
	}
	if u.outstanding >= u.p.PFUMaxOutstanding {
		return
	}
	addr := u.nextAddr
	if !u.issueElement(u.issuedIdx, addr, cycle) {
		return
	}
	u.stats.Issued++
	u.issuedIdx++
	if u.issuedIdx < u.length {
		next := uint64(int64(addr) + u.stride)
		if next/uint64(u.p.PageWords) != addr/uint64(u.p.PageWords) {
			u.suspended = true
			u.stats.Suspends++
		}
		u.nextAddr = next
	}
}

// issueElement offers one element read to the forward network and books
// the retry state on success.
func (u *PFU) issueElement(idx int, addr uint64, cycle int64) bool {
	pkt := u.pool.Get()
	pkt.Kind = network.ReadReq
	pkt.Src = u.port
	pkt.Dst = u.modFor(addr)
	pkt.Addr = addr
	pkt.Tag = TagBit | (u.epoch&0x7fff)<<16 | uint32(idx)
	pkt.Issue = cycle
	if !u.fwd.Offer(pkt) {
		u.stats.RefusedCyc++
		u.pool.Put(pkt)
		return false
	}
	if u.firstIssue < 0 {
		u.firstIssue = cycle
	}
	u.outstanding++
	s := &u.buf[idx]
	s.addr = addr
	s.inflight = true
	if u.retryArmed {
		u.timeoutQ = append(u.timeoutQ, timeoutEntry{idx: idx, deadline: cycle + retryTimeout})
	}
	return true
}

// expireTimeouts reschedules in-flight requests presumed lost.
func (u *PFU) expireTimeouts(cycle int64) {
	for len(u.timeoutQ) > 0 && u.timeoutQ[0].deadline <= cycle {
		e := u.timeoutQ[0]
		copy(u.timeoutQ, u.timeoutQ[1:])
		u.timeoutQ = u.timeoutQ[:len(u.timeoutQ)-1]
		s := &u.buf[e.idx]
		if s.full || !s.inflight {
			continue // answered, or already NACKed and rescheduled
		}
		s.inflight = false
		u.outstanding--
		u.stats.Timeouts++
		u.scheduleRetry(e.idx, cycle)
	}
}

// reissue sends the first due retry; it reports whether the port was
// consumed (by a reissue or its refusal).
func (u *PFU) reissue(cycle int64) bool {
	for qi := range u.retryQ {
		e := u.retryQ[qi]
		if e.at > cycle {
			continue
		}
		if u.buf[e.idx].full {
			// The "lost" reply arrived after all; drop the retry.
			copy(u.retryQ[qi:], u.retryQ[qi+1:])
			u.retryQ = u.retryQ[:len(u.retryQ)-1]
			return false
		}
		if u.outstanding >= u.p.PFUMaxOutstanding {
			return false
		}
		if !u.issueElement(e.idx, u.buf[e.idx].addr, cycle) {
			return true // port refused; retry stays queued
		}
		u.stats.Retries++
		copy(u.retryQ[qi:], u.retryQ[qi+1:])
		u.retryQ = u.retryQ[:len(u.retryQ)-1]
		return true
	}
	return false
}

// scheduleRetry books an element reissue after exponential backoff, or
// fails the block when the retry budget is exhausted.
func (u *PFU) scheduleRetry(idx int, cycle int64) {
	s := &u.buf[idx]
	s.tries++
	if s.tries > retryMax {
		//lint:allow hotalloc terminal fault path, runs at most once per block
		u.err = fmt.Errorf("prefetch: element %d unreachable after %d retries (addr %#x)",
			idx, retryMax, s.addr)
		u.fired = false // give up the block; Busy() turns false
		return
	}
	backoff := int64(retryBase) << (s.tries - 1)
	u.retryQ = append(u.retryQ, retryEntry{idx: idx, at: cycle + backoff})
}

// Deliver hands the PFU a reply polled from the reverse network by its CE.
// It reports whether the packet belonged to this PFU.
func (u *PFU) Deliver(pkt *network.Packet, cycle int64) bool {
	if pkt.Tag&TagBit == 0 {
		return false
	}
	epoch := (pkt.Tag &^ TagBit) >> 16
	idx := int(pkt.Tag & 0xffff)
	if epoch != u.epoch&0x7fff || idx >= u.length {
		u.stats.Dropped++ // stale reply from an invalidated block
		return true
	}
	s := &u.buf[idx]
	if pkt.Kind == network.NackReply {
		// The module refused service; back off and reissue.
		if s.full || !s.inflight {
			u.stats.Dropped++ // the element already made it another way
			return true
		}
		s.inflight = false
		u.outstanding--
		u.stats.Nacks++
		u.scheduleRetry(idx, cycle)
		return true
	}
	if s.full {
		u.stats.Dropped++
		return true
	}
	s.full = true
	s.value = pkt.Value
	s.arrival = cycle
	if s.inflight {
		s.inflight = false
		u.outstanding--
	}
	u.stats.Returned++
	u.arrivals = append(u.arrivals, cycle)
	return true
}

// TryConsume returns the next element in request order if it has arrived
// and cleared the CE-side transfer pipeline (CELoadOverhead cycles).
func (u *PFU) TryConsume(cycle int64) (int64, bool) {
	if u.consumeIdx >= u.length {
		return 0, false
	}
	s := &u.buf[u.consumeIdx]
	if !s.full || cycle < s.arrival+int64(u.p.CELoadOverhead) {
		return 0, false
	}
	u.consumeIdx++
	return s.value, true
}

// Consumed reports how many elements the CE has taken from the buffer.
func (u *PFU) Consumed() int { return u.consumeIdx }

// flushBlock reports the completed (or abandoned) block to the observer.
func (u *PFU) flushBlock() {
	if u.fired && (u.observe != nil || len(u.extraObs) > 0) &&
		u.firstIssue >= 0 && len(u.arrivals) > 0 {
		arr := make([]int64, len(u.arrivals)) //lint:allow hotalloc per-block observer snapshot; arrivals is reused, so observers need their own copy
		copy(arr, u.arrivals)
		if u.observe != nil {
			u.observe(u.firstIssue, arr)
		}
		for _, o := range u.extraObs {
			o(u.firstIssue, arr)
		}
	}
	u.fired = false
}

// Finish flushes monitor data for the current block once Done; call it
// before reusing the PFU for an unrelated block without re-arming.
func (u *PFU) Finish() {
	if u.Done() {
		u.flushBlock()
	}
}
