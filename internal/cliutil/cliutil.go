// Package cliutil holds the flag plumbing shared by the commands:
// validation of the -jobs worker count, the -shards intra-run engine
// bound, the -clusters machine width, and loading/installing the
// -faults plan. Keeping it in one place means the commands cannot
// drift apart in how they reject bad invocations.
package cliutil

import (
	"flag"
	"fmt"

	"cedar/internal/fault"
	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/sim"
)

// Flags carries the parsed values of the shared command flags. The zero
// value of every field means "not set, keep the process default".
type Flags struct {
	// Jobs is the fleet worker count (-jobs); 0 means GOMAXPROCS.
	Jobs int
	// Shards is the intra-run parallel engine's worker bound (-shards);
	// 0 or 1 keeps the sequential schedule. Artifacts are byte-identical
	// at any value — the flag only changes how much host parallelism one
	// simulation may use.
	Shards int
	// Clusters is the simulated machine width (-clusters); 0 keeps the
	// as-built 4-cluster Cedar, 16 and 64 select the scale-up presets.
	Clusters int
	// Faults names a JSON fault plan file, or the literal "demo".
	Faults string
}

// Setup applies the shared flags after fs has been parsed. jobs and
// shards must be positive when the user set them explicitly (the unset
// default 0 means GOMAXPROCS for jobs and sequential for shards).
// Faults, when non-empty, names a JSON fault plan — or the literal
// "demo" for the built-in dead-bank-plus-network-fault scenario — which
// is validated and installed as the process-wide default so every
// machine the command builds runs under it. The loaded plan (nil when
// Faults is empty) is returned; errors are suitable for printing
// followed by exit 2.
func Setup(fs *flag.FlagSet, f Flags) (*fault.Plan, error) {
	explicit := map[string]bool{}
	fs.Visit(func(fl *flag.Flag) { explicit[fl.Name] = true })
	if explicit["jobs"] && f.Jobs <= 0 {
		return nil, fmt.Errorf("-jobs must be at least 1, got %d", f.Jobs)
	}
	if explicit["shards"] && f.Shards <= 0 {
		return nil, fmt.Errorf("-shards must be at least 1, got %d", f.Shards)
	}
	fleet.SetJobs(f.Jobs)
	sim.SetShards(f.Shards)
	if err := params.SetDefaultClusters(f.Clusters); err != nil {
		return nil, fmt.Errorf("-clusters %d: %w", f.Clusters, err)
	}

	var plan *fault.Plan
	if f.Faults != "" {
		if f.Faults == "demo" {
			plan = fault.DemoPlan()
		} else {
			var err error
			if plan, err = fault.Load(f.Faults); err != nil {
				return nil, err
			}
		}
	}
	// Install unconditionally: a command invoked without -faults must
	// clear any plan a previous test or library caller left behind.
	fault.SetDefault(plan)
	return plan, nil
}
