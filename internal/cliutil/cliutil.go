// Package cliutil holds the flag plumbing shared by the four commands:
// validation of the -jobs worker count and loading/installing the
// -faults plan. Keeping it in one place means the commands cannot
// drift apart in how they reject bad invocations.
package cliutil

import (
	"flag"
	"fmt"

	"cedar/internal/fault"
	"cedar/internal/fleet"
)

// Setup applies the shared -jobs and -faults flags after fs has been
// parsed. jobs must be positive when the user set it explicitly (the
// unset default 0 means GOMAXPROCS). faultsPath, when non-empty, names
// a JSON fault plan — or the literal "demo" for the built-in
// dead-bank-plus-network-fault scenario — which is validated and
// installed as the process-wide default so every machine the command
// builds runs under it. The loaded plan (nil when faultsPath is empty)
// is returned; errors are suitable for printing followed by exit 2.
func Setup(fs *flag.FlagSet, jobs int, faultsPath string) (*fault.Plan, error) {
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if explicit["jobs"] && jobs <= 0 {
		return nil, fmt.Errorf("-jobs must be at least 1, got %d", jobs)
	}
	fleet.SetJobs(jobs)

	var plan *fault.Plan
	if faultsPath != "" {
		if faultsPath == "demo" {
			plan = fault.DemoPlan()
		} else {
			var err error
			if plan, err = fault.Load(faultsPath); err != nil {
				return nil, err
			}
		}
	}
	// Install unconditionally: a command invoked without -faults must
	// clear any plan a previous test or library caller left behind.
	fault.SetDefault(plan)
	return plan, nil
}
