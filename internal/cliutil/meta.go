package cliutil

import (
	"cedar/internal/fault"
	"cedar/internal/fleet"
)

// MetaSchema versions the run-metadata header format.
const MetaSchema = 1

// Meta is the self-describing run-metadata header embedded in JSON
// artifacts (cedarsim -json; cedarbench carries the same facts in its
// own header): enough to tell, from the artifact alone, which tool
// produced it under which fault plan and worker configuration. Jobs is
// the only field that may differ between byte-compared runs — consumers
// comparing artifacts across -jobs values must compare the payload, not
// the header.
type Meta struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	Jobs   int    `json:"jobs"`
	// FaultSeed and FaultPlan identify the process-wide fault plan
	// (absent when healthy); FaultPlan is the plan's short content hash.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	FaultPlan string `json:"fault_plan,omitempty"`
}

// NewMeta builds the header for tool under the given plan (nil for a
// healthy run).
func NewMeta(tool string, plan *fault.Plan) Meta {
	m := Meta{Schema: MetaSchema, Tool: tool, Jobs: fleet.Jobs()}
	if plan != nil {
		m.FaultSeed = plan.Seed
		m.FaultPlan = plan.Hash()
	}
	return m
}
