package cliutil

import (
	"runtime"

	"cedar/internal/fault"
	"cedar/internal/fleet"
	"cedar/internal/sim"
)

// MetaSchema versions the run-metadata header format.
const MetaSchema = 2

// Meta is the self-describing run-metadata header embedded in JSON
// artifacts (cedarsim -json; cedarbench carries the same facts in its
// own header): enough to tell, from the artifact alone, which tool
// produced it under which fault plan and worker configuration. The
// host-parallelism fields — Jobs, Shards, GoMaxProcs, NumCPU — may
// differ between byte-compared runs without the payload differing;
// consumers comparing artifacts across worker configurations must
// compare the payload, not the header.
type Meta struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	Jobs   int    `json:"jobs"`
	// Shards is the intra-run parallel engine's worker bound (1 = the
	// sequential schedule); GoMaxProcs and NumCPU record how much host
	// parallelism was actually available, so a committed artifact's
	// measured throughput can be read in context.
	Shards     int `json:"shards"`
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// FaultSeed and FaultPlan identify the process-wide fault plan
	// (absent when healthy); FaultPlan is the plan's short content hash.
	FaultSeed uint64 `json:"fault_seed,omitempty"`
	FaultPlan string `json:"fault_plan,omitempty"`
}

// NewMeta builds the header for tool under the given plan (nil for a
// healthy run).
func NewMeta(tool string, plan *fault.Plan) Meta {
	m := Meta{
		Schema:     MetaSchema,
		Tool:       tool,
		Jobs:       fleet.Jobs(),
		Shards:     sim.Shards(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	if plan != nil {
		m.FaultSeed = plan.Seed
		m.FaultPlan = plan.Hash()
	}
	return m
}
