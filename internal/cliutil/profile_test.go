package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"cedar/internal/fault"
	"cedar/internal/fleet"
)

func TestProfilesWriteBothFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	p, err := StartProfiles(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", path, err)
		}
	}
	// Stop must be idempotent.
	if err := p.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

func TestProfilesNoOpAndNil(t *testing.T) {
	p, err := StartProfiles("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Errorf("empty Profiles.Stop: %v", err)
	}
	var nilP *Profiles
	if err := nilP.Stop(); err != nil {
		t.Errorf("nil Profiles.Stop: %v", err)
	}
}

func TestProfilesBadPath(t *testing.T) {
	if _, err := StartProfiles(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu"), ""); err == nil {
		t.Fatal("unwritable cpuprofile path should error at start")
	}
	p, err := StartProfiles("", filepath.Join(t.TempDir(), "no", "such", "dir", "mem"))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err == nil {
		t.Fatal("unwritable memprofile path should error at stop")
	}
}

func TestNewMeta(t *testing.T) {
	fleet.SetJobs(3)
	defer fleet.SetJobs(0)

	m := NewMeta("cedarsim", nil)
	if m.Schema != MetaSchema || m.Tool != "cedarsim" || m.Jobs != 3 {
		t.Fatalf("healthy meta: %+v", m)
	}
	if m.FaultSeed != 0 || m.FaultPlan != "" {
		t.Fatalf("healthy meta carries fault fields: %+v", m)
	}

	plan := fault.DemoPlan()
	m = NewMeta("judge", plan)
	if m.FaultSeed != plan.Seed || m.FaultPlan != plan.Hash() || m.FaultPlan == "" {
		t.Fatalf("faulted meta: %+v", m)
	}
}
