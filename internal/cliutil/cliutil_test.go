package cliutil

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cedar/internal/fault"
	"cedar/internal/fleet"
)

// newFS builds the flag set every command declares, pre-parsed with args.
func newFS(t *testing.T, args ...string) (*flag.FlagSet, *int, *string) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jobs := fs.Int("jobs", 0, "")
	faults := fs.String("faults", "", "")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return fs, jobs, faults
}

func reset(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		fault.SetDefault(nil)
		fleet.SetJobs(0)
	})
}

func TestSetupJobsValidation(t *testing.T) {
	reset(t)
	for _, args := range [][]string{
		{"-jobs", "0"},
		{"-jobs=-4"},
	} {
		fs, jobs, faults := newFS(t, args...)
		if _, err := Setup(fs, *jobs, *faults); err == nil {
			t.Errorf("Setup(%v): want error for non-positive explicit -jobs", args)
		} else if !strings.Contains(err.Error(), "-jobs") {
			t.Errorf("Setup(%v): error %q does not name the flag", args, err)
		}
	}

	// Unset -jobs keeps the GOMAXPROCS default without complaint.
	fs, jobs, faults := newFS(t)
	if _, err := Setup(fs, *jobs, *faults); err != nil {
		t.Fatalf("Setup with defaults: %v", err)
	}

	fs, jobs, faults = newFS(t, "-jobs", "3")
	if _, err := Setup(fs, *jobs, *faults); err != nil {
		t.Fatalf("Setup(-jobs 3): %v", err)
	}
	if got := fleet.Jobs(); got != 3 {
		t.Fatalf("fleet.Jobs() = %d, want 3", got)
	}
}

func TestSetupFaultPlans(t *testing.T) {
	reset(t)

	fs, jobs, faults := newFS(t, "-faults", "demo")
	plan, err := Setup(fs, *jobs, *faults)
	if err != nil {
		t.Fatalf("Setup(-faults demo): %v", err)
	}
	if plan == nil || len(plan.Faults) == 0 {
		t.Fatal("demo plan is empty")
	}
	if fault.Default() != plan {
		t.Fatal("demo plan was not installed as the default")
	}

	good := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(good, []byte(`{"seed": 7, "faults": [{"kind": "bank-dead", "module": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, jobs, faults = newFS(t, "-faults", good)
	plan, err = Setup(fs, *jobs, *faults)
	if err != nil {
		t.Fatalf("Setup(-faults %s): %v", good, err)
	}
	if plan.Seed != 7 || len(plan.Faults) != 1 || plan.Faults[0].Kind != fault.BankDead {
		t.Fatalf("loaded plan = %+v", plan)
	}

	// No -faults clears a previously installed plan.
	fs, jobs, faults = newFS(t)
	if _, err := Setup(fs, *jobs, *faults); err != nil {
		t.Fatal(err)
	}
	if fault.Default() != nil {
		t.Fatal("Setup without -faults left a stale default plan")
	}
}

func TestSetupFaultErrors(t *testing.T) {
	reset(t)
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"seed": 1, "faults": [{"kind": "bank-dead", "module": -1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		filepath.Join(t.TempDir(), "missing.json"),
		bad,
	} {
		fs, jobs, faults := newFS(t, "-faults", path)
		if _, err := Setup(fs, *jobs, *faults); err == nil {
			t.Errorf("Setup(-faults %s): want error", path)
		}
	}
}
