package cliutil

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cedar/internal/fault"
	"cedar/internal/fleet"
	"cedar/internal/params"
	"cedar/internal/sim"
)

// newFS builds the flag set every command declares, pre-parsed with args.
func newFS(t *testing.T, args ...string) (*flag.FlagSet, *int, *string) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	jobs := fs.Int("jobs", 0, "")
	faults := fs.String("faults", "", "")
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return fs, jobs, faults
}

func reset(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		fault.SetDefault(nil)
		fleet.SetJobs(0)
		sim.SetShards(1)
		if err := params.SetDefaultClusters(0); err != nil {
			t.Fatal(err)
		}
	})
}

func TestSetupJobsValidation(t *testing.T) {
	reset(t)
	for _, args := range [][]string{
		{"-jobs", "0"},
		{"-jobs=-4"},
	} {
		fs, jobs, faults := newFS(t, args...)
		if _, err := Setup(fs, Flags{Jobs: *jobs, Faults: *faults}); err == nil {
			t.Errorf("Setup(%v): want error for non-positive explicit -jobs", args)
		} else if !strings.Contains(err.Error(), "-jobs") {
			t.Errorf("Setup(%v): error %q does not name the flag", args, err)
		}
	}

	// Unset -jobs keeps the GOMAXPROCS default without complaint.
	fs, jobs, faults := newFS(t)
	if _, err := Setup(fs, Flags{Jobs: *jobs, Faults: *faults}); err != nil {
		t.Fatalf("Setup with defaults: %v", err)
	}

	fs, jobs, faults = newFS(t, "-jobs", "3")
	if _, err := Setup(fs, Flags{Jobs: *jobs, Faults: *faults}); err != nil {
		t.Fatalf("Setup(-jobs 3): %v", err)
	}
	if got := fleet.Jobs(); got != 3 {
		t.Fatalf("fleet.Jobs() = %d, want 3", got)
	}
}

func TestSetupFaultPlans(t *testing.T) {
	reset(t)

	fs, jobs, faults := newFS(t, "-faults", "demo")
	plan, err := Setup(fs, Flags{Jobs: *jobs, Faults: *faults})
	if err != nil {
		t.Fatalf("Setup(-faults demo): %v", err)
	}
	if plan == nil || len(plan.Faults) == 0 {
		t.Fatal("demo plan is empty")
	}
	if fault.Default() != plan {
		t.Fatal("demo plan was not installed as the default")
	}

	good := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(good, []byte(`{"seed": 7, "faults": [{"kind": "bank-dead", "module": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, jobs, faults = newFS(t, "-faults", good)
	plan, err = Setup(fs, Flags{Jobs: *jobs, Faults: *faults})
	if err != nil {
		t.Fatalf("Setup(-faults %s): %v", good, err)
	}
	if plan.Seed != 7 || len(plan.Faults) != 1 || plan.Faults[0].Kind != fault.BankDead {
		t.Fatalf("loaded plan = %+v", plan)
	}

	// No -faults clears a previously installed plan.
	fs, jobs, faults = newFS(t)
	if _, err := Setup(fs, Flags{Jobs: *jobs, Faults: *faults}); err != nil {
		t.Fatal(err)
	}
	if fault.Default() != nil {
		t.Fatal("Setup without -faults left a stale default plan")
	}
}

func TestSetupFaultErrors(t *testing.T) {
	reset(t)
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"seed": 1, "faults": [{"kind": "bank-dead", "module": -1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{
		filepath.Join(t.TempDir(), "missing.json"),
		bad,
	} {
		fs, jobs, faults := newFS(t, "-faults", path)
		if _, err := Setup(fs, Flags{Jobs: *jobs, Faults: *faults}); err == nil {
			t.Errorf("Setup(-faults %s): want error", path)
		}
	}
}

func TestSetupShardsAndClusters(t *testing.T) {
	reset(t)
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	shards := fs.Int("shards", 0, "")
	clusters := fs.Int("clusters", 0, "")
	if err := fs.Parse([]string{"-shards", "4", "-clusters", "16"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(fs, Flags{Shards: *shards, Clusters: *clusters}); err != nil {
		t.Fatal(err)
	}
	if got := sim.Shards(); got != 4 {
		t.Errorf("sim.Shards() = %d, want 4", got)
	}
	if got := params.Default().Clusters; got != 16 {
		t.Errorf("Default().Clusters = %d, want 16", got)
	}

	// Explicit non-positive -shards is rejected like -jobs.
	fs = flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	shards = fs.Int("shards", 0, "")
	if err := fs.Parse([]string{"-shards", "0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Setup(fs, Flags{Shards: *shards}); err == nil {
		t.Error("Setup(-shards 0): want error")
	} else if !strings.Contains(err.Error(), "-shards") {
		t.Errorf("error %q does not name the flag", err)
	}

	// An invalid width is rejected by params validation.
	if _, err := Setup(flag.NewFlagSet("t", flag.ContinueOnError), Flags{Clusters: -2}); err == nil {
		t.Error("Setup(-clusters -2): want error")
	}
}

func TestNewMetaHostFields(t *testing.T) {
	reset(t)
	sim.SetShards(3)
	m := NewMeta("test", nil)
	if m.Shards != 3 {
		t.Errorf("Meta.Shards = %d, want 3", m.Shards)
	}
	if m.GoMaxProcs < 1 || m.NumCPU < 1 {
		t.Errorf("host fields unset: %+v", m)
	}
	if m.Schema != MetaSchema {
		t.Errorf("Schema = %d, want %d", m.Schema, MetaSchema)
	}
}
