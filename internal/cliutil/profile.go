package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles is the pprof plumbing behind the shared -cpuprofile and
// -memprofile flags: StartProfiles begins collection, Stop finishes it.
// A regression flagged by `cedarbench diff` should be attributable in
// one re-run with these flags — that is the whole point of having them
// on every command.
type Profiles struct {
	cpu     *os.File
	memPath string
}

// StartProfiles opens the requested profiles; empty paths skip that
// profile, and a fully empty request returns a Profiles whose Stop is a
// no-op (callers need no nil checks). On error nothing is left running.
func StartProfiles(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close() // the profiling error is the one worth reporting
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpu = f
	}
	return p, nil
}

// Stop ends CPU profiling and writes the heap profile (after a GC, so
// the profile shows live memory rather than garbage). Safe to call on a
// Profiles that started nothing.
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	var firstErr error
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			firstErr = fmt.Errorf("cpuprofile: %w", err)
		}
		p.cpu = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("memprofile: %w", err)
			}
			return firstErr
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			_ = f.Close()
			if firstErr == nil {
				firstErr = fmt.Errorf("memprofile: %w", err)
			}
			return firstErr
		}
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("memprofile: %w", err)
		}
		p.memPath = ""
	}
	return firstErr
}
