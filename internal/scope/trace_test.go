package scope

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSpanClampAndOrder(t *testing.T) {
	h := NewHub()
	h.Span("a", "backwards", 10, 5) // end < start clamps to zero-length
	h.Sub("run").Span("a", "ok", 0, 100)
	h.Emit("a", "mark", 50)
	spans := h.Spans()
	if len(spans) != 3 {
		t.Fatalf("%d spans, want 3", len(spans))
	}
	if spans[0].End != 10 {
		t.Errorf("backwards span end %d, want clamped to 10", spans[0].End)
	}
	if spans[1].Track != "run/a" {
		t.Errorf("Sub track %q, want run/a", spans[1].Track)
	}
	if !spans[2].Instant || spans[2].Start != 50 || spans[2].End != 50 {
		t.Errorf("instant span %+v", spans[2])
	}
}

func TestTraceCapAndDropAccounting(t *testing.T) {
	h := NewHub()
	h.SetTraceCap(2)
	for i := int64(0); i < 5; i++ {
		h.Span("t", "s", i, i+1)
	}
	if len(h.Spans()) != 2 {
		t.Errorf("%d spans kept, want 2", len(h.Spans()))
	}
	if h.TraceDropped() != 3 {
		t.Errorf("%d dropped, want 3", h.TraceDropped())
	}
	var b bytes.Buffer
	if err := h.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.OtherData["droppedEvents"] != "3" {
		t.Errorf("droppedEvents = %q, want 3", doc.OtherData["droppedEvents"])
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	h := NewHub()
	h.Span("beta", "work", 0, 200)
	h.Span("alpha", "work", 100, 300)
	h.Emit("beta", "tick", 150)
	var b bytes.Buffer
	if err := h.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// process_name + 2 thread_name metadata + 3 events.
	if len(doc.TraceEvents) != 6 {
		t.Fatalf("%d events, want 6", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Name != "process_name" || doc.TraceEvents[0].Args["name"] != "cedar" {
		t.Errorf("first event %+v", doc.TraceEvents[0])
	}
	// Threads numbered by sorted track name: alpha=0, beta=1.
	if doc.TraceEvents[1].Args["name"] != "alpha" || doc.TraceEvents[1].Tid != 0 {
		t.Errorf("thread 0 metadata %+v", doc.TraceEvents[1])
	}
	if doc.TraceEvents[2].Args["name"] != "beta" || doc.TraceEvents[2].Tid != 1 {
		t.Errorf("thread 1 metadata %+v", doc.TraceEvents[2])
	}
	first := doc.TraceEvents[3] // posting order: beta's "work"
	if first.Ph != "X" || first.Tid != 1 || first.Ts != 0 || first.Dur <= 0 {
		t.Errorf("complete event %+v", first)
	}
	if last := doc.TraceEvents[5]; last.Ph != "i" {
		t.Errorf("instant event %+v", last)
	}
}

func TestChromeTraceDeterministic(t *testing.T) {
	build := func() *Hub {
		h := NewHub()
		for i := int64(0); i < 100; i++ {
			h.Span("trk", "s", i*10, i*10+5)
		}
		h.Emit("other", "e", 7)
		return h
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical hubs produced different trace bytes")
	}
	// Writing the same hub twice must also be stable.
	h := build()
	a.Reset()
	b.Reset()
	if err := h.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := h.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same hub wrote different trace bytes on second export")
	}
}

func TestNilHubTraceIsValidEmpty(t *testing.T) {
	var h *Hub
	var b bytes.Buffer
	if err := h.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("nil-hub trace invalid JSON: %v", err)
	}
	// Only the process_name metadata record.
	if len(doc.TraceEvents) != 1 {
		t.Errorf("%d events, want 1", len(doc.TraceEvents))
	}
}
