package scope

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a busy/stall/idle decomposition of one contributor's
// component-cycles: Busy cycles did useful work, Stall cycles were spent
// blocked on a resource, Idle cycles had nothing to do. The three need
// not share a denominator across classes — each class reports in its own
// component-cycles (CE-cycles, module-cycles, line-cycles, ...).
type Attr struct {
	Busy  int64
	Stall int64
	Idle  int64
	// Elapsed is the contributor's total component-cycles. Contributors
	// maintain Busy + Stall + Idle == Elapsed exactly (the conservation
	// law core's tests enforce); readers can use it as the denominator
	// without re-deriving it.
	Elapsed int64
}

type attrib struct {
	class string
	read  func() Attr
}

// Attribute registers a cycle-attribution contributor for a component
// class ("ce", "gmem", "cache", ...). Contributors to the same class —
// including ones registered through different Sub views — are summed, so
// a sweep over many machines aggregates into one "where did the cycles
// go" answer per class. Class names are deliberately not prefixed by Sub.
func (h *Hub) Attribute(class string, read func() Attr) {
	if h == nil || read == nil {
		return
	}
	h.st.attribs = append(h.st.attribs, attrib{class: class, read: read})
}

// AttrRow is one class's aggregated attribution.
type AttrRow struct {
	Class   string
	Busy    int64
	Stall   int64
	Idle    int64
	Elapsed int64
}

// Attribution reads every contributor and returns per-class totals,
// sorted by class name.
func (h *Hub) Attribution() []AttrRow {
	if h == nil {
		return nil
	}
	byClass := map[string]*AttrRow{}
	var order []string
	for _, a := range h.st.attribs {
		r := byClass[a.class]
		if r == nil {
			r = &AttrRow{Class: a.class}
			byClass[a.class] = r
			order = append(order, a.class)
		}
		v := a.read()
		r.Busy += v.Busy
		r.Stall += v.Stall
		r.Idle += v.Idle
		r.Elapsed += v.Elapsed
	}
	sort.Strings(order)
	rows := make([]AttrRow, 0, len(order))
	for _, c := range order {
		rows = append(rows, *byClass[c])
	}
	return rows
}

// FormatAttribution renders the "where did the cycles go" table:
// busy/stall/idle component-cycles and their shares, one row per class.
func FormatAttribution(rows []AttrRow) string {
	if len(rows) == 0 {
		return "no attribution data (build the machine with a scope hub)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %16s %16s %16s %7s %7s %7s\n",
		"class", "busy", "stall", "idle", "busy%", "stall%", "idle%")
	for _, r := range rows {
		tot := r.Busy + r.Stall + r.Idle
		pct := func(v int64) float64 {
			if tot == 0 {
				return 0
			}
			return 100 * float64(v) / float64(tot)
		}
		fmt.Fprintf(&b, "%-10s %16d %16d %16d %6.1f%% %6.1f%% %6.1f%%\n",
			r.Class, r.Busy, r.Stall, r.Idle,
			pct(r.Busy), pct(r.Stall), pct(r.Idle))
	}
	b.WriteString("component-cycles per class; stall = blocked on a resource, idle = no work\n")
	return b.String()
}
