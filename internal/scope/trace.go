package scope

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cedar/internal/params"
)

// Span is one trace record: a slice of simulated time on a named track
// (a complete event), or an instant when Instant is set. Cycles are the
// only time base — the trace never carries wall-clock time.
type Span struct {
	Track string
	Name  string
	Start int64
	End   int64
	// Instant marks a point event (a Chrome "i" event).
	Instant bool
}

// Span records a complete event covering [start, end] cycles on a track.
// The track is namespaced by the hub's Sub prefix. When the bounded
// buffer is full the event is dropped and counted, like the hardware
// tracer filling up.
func (h *Hub) Span(track, name string, start, end int64) {
	if h == nil {
		return
	}
	if end < start {
		end = start
	}
	h.add(Span{Track: h.join(track), Name: name, Start: start, End: end})
}

// Emit records an instant event at the given cycle.
func (h *Hub) Emit(track, name string, cycle int64) {
	if h == nil {
		return
	}
	h.add(Span{Track: h.join(track), Name: name, Start: cycle, End: cycle, Instant: true})
}

func (h *Hub) add(s Span) {
	if len(h.st.spans) >= h.st.spanCap {
		h.st.dropped++
		return
	}
	h.st.spans = append(h.st.spans, s)
}

// SetTraceCap bounds the span buffer (default perfmon.TracerCap). Call
// before any events are posted; shrinking below the current length only
// affects future posts.
func (h *Hub) SetTraceCap(n int) {
	if h == nil || n < 0 {
		return
	}
	h.st.spanCap = n
}

// Spans returns the captured trace in posting order.
func (h *Hub) Spans() []Span {
	if h == nil {
		return nil
	}
	return h.st.spans
}

// TraceDropped returns the number of events lost to the buffer bound.
func (h *Hub) TraceDropped() int64 {
	if h == nil {
		return 0
	}
	return h.st.dropped
}

// chromeEvent is one Chrome trace-event record. Field order is fixed by
// the struct, and encoding/json sorts map keys, so serialization is
// deterministic.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	S    string            `json:"s,omitempty"`
	Args map[string]string `json:"args,omitempty"`
}

// cycleUS converts a cycle stamp to the trace-event microsecond time
// base. The mapping is a pure function of the cycle count, so traces
// stay byte-identical across runs.
func cycleUS(cycle int64) float64 {
	return float64(cycle) * params.CycleNS / 1e3
}

// WriteChromeTrace exports the captured spans as Chrome trace-event JSON
// ({"traceEvents": [...]}), loadable in Perfetto or chrome://tracing.
// Tracks become threads of one "cedar" process, numbered in sorted track
// order; dropped-event accounting rides in otherData. Output is
// byte-identical across identical runs. A nil hub writes a valid empty
// trace.
func (h *Hub) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var spans []Span
	var dropped int64
	if h != nil {
		spans = h.st.spans
		dropped = h.st.dropped
	}
	if _, err := fmt.Fprintf(bw,
		"{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":\"%d\"},\"traceEvents\":[",
		dropped); err != nil {
		return err
	}

	seen := map[string]bool{}
	var tracks []string
	for _, s := range spans {
		if !seen[s.Track] {
			seen[s.Track] = true
			tracks = append(tracks, s.Track)
		}
	}
	sort.Strings(tracks)
	tid := make(map[string]int, len(tracks))
	for i, t := range tracks {
		tid[t] = i
	}

	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	if err := emit(chromeEvent{Name: "process_name", Ph: "M",
		Args: map[string]string{"name": "cedar"}}); err != nil {
		return err
	}
	for i, t := range tracks {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", Tid: i,
			Args: map[string]string{"name": t}}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		ev := chromeEvent{Name: s.Name, Ts: cycleUS(s.Start), Tid: tid[s.Track]}
		if s.Instant {
			ev.Ph = "i"
			ev.S = "t"
		} else {
			ev.Ph = "X"
			ev.Dur = cycleUS(s.End) - cycleUS(s.Start)
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
