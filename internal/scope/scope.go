// Package scope is the simulator's whole-machine observability hub — the
// software analogue of the external performance-monitoring rack the paper
// describes: cascaded 1M-event tracers and 64K-counter histogrammers
// hooked "to any accessible hardware signal".
//
// A Hub has three faces:
//
//   - a metrics registry: every component publishes named counters
//     (monotonic, read from the component's own Stats) and gauges
//     (instantaneous occupancies), snapshotable at any cycle and
//     cycle-sampled into distributions via perfmon.Sampler;
//   - a span/event tracer stamped in simulated cycles only, with a
//     bounded buffer and drop accounting like the hardware tracer,
//     exported as Chrome trace-event JSON (viewable in Perfetto or
//     chrome://tracing);
//   - a cycle-attribution report: busy/stall/idle per component class,
//     answering "where did the cycles go".
//
// A nil *Hub is valid: every method short-circuits, so instrumentation
// stays in place at near-zero cost when observability is off. All emitted
// artifacts are byte-identical across identical runs — metrics are read
// through deterministic closures, snapshots are sorted by name, and the
// trace carries only simulated cycles (never wall clock).
package scope

import (
	"fmt"
	"io"
	"sort"

	"cedar/internal/perfmon"
)

// Kind classifies a registered metric.
type Kind uint8

// Metric kinds.
const (
	// KindCounter is a monotonically non-decreasing count (events,
	// cycles accumulated).
	KindCounter Kind = iota
	// KindGauge is an instantaneous value (queue occupancy, in-flight
	// requests) meaningful to sample over time.
	KindGauge
)

// String renders the kind for CSV and JSON output.
func (k Kind) String() string {
	if k == KindGauge {
		return "gauge"
	}
	return "counter"
}

type metric struct {
	name string // final name, uniquified against the owning state
	base string // prefix-joined name before uniquification, for Adopt replay
	kind Kind
	read func() int64
}

// Hub is one observability nexus, shared by every component of a machine
// (or of several machines in a sweep, namespaced via Sub). The zero value
// is not usable; construct with NewHub. A nil *Hub is usable everywhere.
type Hub struct {
	prefix string
	st     *state
}

// state is shared across all Sub views of one hub.
type state struct {
	metrics []metric
	taken   map[string]int
	spans   []Span
	spanCap int
	dropped int64
	attribs []attrib
}

// NewHub builds an empty hub with the default trace capacity (one
// hardware tracer unit: perfmon.TracerCap events).
func NewHub() *Hub {
	return &Hub{st: &state{taken: map[string]int{}, spanCap: perfmon.TracerCap}}
}

// Of returns the first hub of an optional variadic parameter (nil when
// absent), so experiment APIs can take `obs ...*scope.Hub` and remain
// call-compatible with observability off.
func Of(obs []*Hub) *Hub {
	if len(obs) > 0 {
		return obs[0]
	}
	return nil
}

// Sub returns a view of the hub that prefixes every metric name and trace
// track with prefix + "/". Sweeps use it to keep per-run registrations
// unique. Sub of a nil hub is nil.
func (h *Hub) Sub(prefix string) *Hub {
	if h == nil {
		return nil
	}
	return &Hub{prefix: h.join(prefix), st: h.st}
}

func (h *Hub) join(name string) string {
	if h.prefix == "" {
		return name
	}
	return h.prefix + "/" + name
}

// register adds a metric, uniquifying colliding names deterministically
// ("x", "x#2", "x#3", ...) so two runtimes on one machine cannot clobber
// each other's registrations.
func (h *Hub) register(name string, kind Kind, read func() int64) {
	h.st.add(metric{base: h.join(name), kind: kind, read: read})
}

// add uniquifies m's base name against this state's taken map and appends
// the metric. Registration and Adopt replay share it, so a forked child's
// metrics land under exactly the names a sequential run would have used.
func (st *state) add(m metric) {
	n := st.taken[m.base]
	st.taken[m.base] = n + 1
	m.name = m.base
	if n > 0 {
		m.name = fmt.Sprintf("%s#%d", m.base, n+1)
	}
	st.metrics = append(st.metrics, m)
}

// Fork returns a detached hub with the same prefix and trace capacity but
// private state, for handing to a worker goroutine: nothing posted to the
// child is visible to h (or vice versa) until Adopt merges it back.
// Fork of a nil hub is nil.
func (h *Hub) Fork() *Hub {
	if h == nil {
		return nil
	}
	return &Hub{prefix: h.prefix, st: &state{taken: map[string]int{}, spanCap: h.st.spanCap}}
}

// Adopt merges a forked child back into h: metric registrations replay
// through h's uniquification (via their base names), spans append under
// h's capacity with drop accounting, and attribution contributors carry
// over. Adopting children in the order their jobs were submitted
// reproduces the sequential run's artifacts byte for byte: names, span
// order, and the dropped-event count all match, because a child inherits
// the parent's capacity and drops are additive. Adopt of or onto nil is a
// no-op.
func (h *Hub) Adopt(child *Hub) {
	if h == nil || child == nil || h.st == child.st {
		return
	}
	for _, m := range child.st.metrics {
		h.st.add(metric{base: m.base, kind: m.kind, read: m.read})
	}
	for _, s := range child.st.spans {
		h.add(s)
	}
	h.st.dropped += child.st.dropped
	h.st.attribs = append(h.st.attribs, child.st.attribs...)
}

// SpanSink returns a detached span buffer sharing h's namespace, for one
// shard of an intra-run parallel engine: spans and instants posted to the
// sink during phase A stay shard-private until DrainSpans merges them.
// The sink's own buffer is effectively unbounded — the parent's capacity
// and drop accounting apply at drain time, in merge order, so the
// dropped-event count matches a sequential run byte for byte. SpanSink of
// a nil hub is nil (posting to a nil sink is the usual no-op).
func (h *Hub) SpanSink() *Hub {
	if h == nil {
		return nil
	}
	const unbounded = int(^uint(0) >> 1)
	return &Hub{prefix: h.prefix, st: &state{taken: map[string]int{}, spanCap: unbounded}}
}

// DrainSpans moves everything posted to sink since the last drain into h,
// in posting order, under h's capacity and drop accounting, and empties
// the sink. Draining cluster sinks in fixed shard order between phases
// reproduces the span order (and drop count) of a sequential pass, because
// within a shard components tick — and post — in the same index order as
// the flat schedule. DrainSpans of or onto nil is a no-op.
func (h *Hub) DrainSpans(sink *Hub) {
	if h == nil || sink == nil || h.st == sink.st {
		return
	}
	for _, s := range sink.st.spans {
		h.add(s)
	}
	h.st.dropped += sink.st.dropped
	sink.st.dropped = 0
	sink.st.spans = sink.st.spans[:0]
}

// Counter publishes a monotonic count read on demand through read. The
// closure must be deterministic and must stay valid for the life of the
// hub.
func (h *Hub) Counter(name string, read func() int64) {
	if h == nil || read == nil {
		return
	}
	h.register(name, KindCounter, read)
}

// Gauge publishes an instantaneous value read on demand through read.
func (h *Hub) Gauge(name string, read func() int64) {
	if h == nil || read == nil {
		return
	}
	h.register(name, KindGauge, read)
}

// Metrics returns the number of registered metrics.
func (h *Hub) Metrics() int {
	if h == nil {
		return 0
	}
	return len(h.st.metrics)
}

// Sample is one metric reading.
type Sample struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Value int64  `json:"value"`
}

// Snapshot reads every registered metric, returning samples sorted by
// name. Callable at any cycle; the values are whatever the components
// report at that instant.
func (h *Hub) Snapshot() []Sample {
	if h == nil {
		return nil
	}
	out := make([]Sample, 0, len(h.st.metrics))
	for _, m := range h.st.metrics {
		out = append(out, Sample{Name: m.name, Kind: m.kind.String(), Value: m.read()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SnapshotUnder returns the samples whose name equals prefix or starts
// with prefix + "/" — one experiment's slice of a shared hub.
func (h *Hub) SnapshotUnder(prefix string) []Sample {
	if h == nil {
		return nil
	}
	var out []Sample
	for _, s := range h.Snapshot() {
		if s.Name == prefix || (len(s.Name) > len(prefix) &&
			s.Name[:len(prefix)] == prefix && s.Name[len(prefix)] == '/') {
			out = append(out, s)
		}
	}
	return out
}

// WriteMetricsCSV writes the full snapshot as a three-column CSV
// (metric,kind,value), sorted by metric name; byte-identical across
// identical runs.
func (h *Hub) WriteMetricsCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "metric,kind,value\n"); err != nil {
		return err
	}
	if h == nil {
		return nil
	}
	for _, s := range h.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s,%s,%d\n", s.Name, s.Kind, s.Value); err != nil {
			return err
		}
	}
	return nil
}

// AttachSampler registers every gauge known so far as a probe on s,
// turning instantaneous occupancies into cycle-sampled distributions —
// the paper's histogrammers hooked to hardware signals. Register s with
// the simulation engine after the components it probes; gauges registered
// after the call are not probed.
func (h *Hub) AttachSampler(s *perfmon.Sampler) {
	if h == nil || s == nil {
		return
	}
	for _, m := range h.st.metrics {
		if m.kind != KindGauge {
			continue
		}
		read := m.read
		s.Probe(m.name, func() int { return int(read()) })
	}
}
