package scope

import (
	"strings"
	"testing"

	"cedar/internal/perfmon"
)

func TestNilHubIsInert(t *testing.T) {
	var h *Hub
	h.Counter("c", func() int64 { return 1 })
	h.Gauge("g", func() int64 { return 2 })
	h.Span("t", "s", 0, 10)
	h.Emit("t", "e", 5)
	h.Attribute("ce", func() Attr { return Attr{Busy: 1} })
	h.AttachSampler(perfmon.NewSampler(1))
	if h.Sub("x") != nil {
		t.Error("Sub of nil hub must be nil")
	}
	if h.Metrics() != 0 || h.Snapshot() != nil || h.Spans() != nil ||
		h.TraceDropped() != 0 || h.Attribution() != nil {
		t.Error("nil hub must report empty everything")
	}
	var b strings.Builder
	if err := h.WriteMetricsCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "metric,kind,value\n" {
		t.Errorf("nil hub CSV = %q", b.String())
	}
}

func TestRegistryAndSnapshot(t *testing.T) {
	h := NewHub()
	n := int64(0)
	h.Counter("b.count", func() int64 { return n })
	h.Gauge("a.depth", func() int64 { return 7 })
	if h.Metrics() != 2 {
		t.Fatalf("Metrics() = %d, want 2", h.Metrics())
	}
	n = 41
	snap := h.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot length %d", len(snap))
	}
	// Sorted by name: a.depth before b.count.
	if snap[0].Name != "a.depth" || snap[0].Kind != "gauge" || snap[0].Value != 7 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Name != "b.count" || snap[1].Kind != "counter" || snap[1].Value != 41 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
}

func TestSubNamespacesAndSnapshotUnder(t *testing.T) {
	h := NewHub()
	h.Sub("run1").Counter("x", func() int64 { return 1 })
	h.Sub("run2").Counter("x", func() int64 { return 2 })
	h.Sub("run1").Sub("inner").Counter("y", func() int64 { return 3 })
	under := h.SnapshotUnder("run1")
	if len(under) != 2 {
		t.Fatalf("SnapshotUnder(run1) = %d samples, want 2", len(under))
	}
	if under[0].Name != "run1/inner/y" || under[1].Name != "run1/x" {
		t.Errorf("names %q %q", under[0].Name, under[1].Name)
	}
	// "run1" must not match "run1x/..." style prefixes.
	h.Sub("run1x").Counter("z", func() int64 { return 4 })
	if got := len(h.SnapshotUnder("run1")); got != 2 {
		t.Errorf("prefix run1 leaked into run1x: %d samples", got)
	}
}

func TestDuplicateNamesUniquified(t *testing.T) {
	h := NewHub()
	h.Counter("dup", func() int64 { return 1 })
	h.Counter("dup", func() int64 { return 2 })
	h.Counter("dup", func() int64 { return 3 })
	snap := h.Snapshot()
	want := []string{"dup", "dup#2", "dup#3"}
	for i, s := range snap {
		if s.Name != want[i] || s.Value != int64(i+1) {
			t.Errorf("snap[%d] = %+v, want name %s value %d", i, s, want[i], i+1)
		}
	}
}

func TestWriteMetricsCSV(t *testing.T) {
	h := NewHub()
	h.Counter("z", func() int64 { return 9 })
	h.Gauge("a", func() int64 { return -1 })
	var b strings.Builder
	if err := h.WriteMetricsCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "metric,kind,value\na,gauge,-1\nz,counter,9\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestAttachSamplerProbesGaugesOnly(t *testing.T) {
	h := NewHub()
	depth := int64(0)
	h.Gauge("queue.depth", func() int64 { return depth })
	h.Counter("events", func() int64 { return 1000 })
	s := perfmon.NewSampler(1)
	h.AttachSampler(s)
	if names := s.Probes(); len(names) != 1 || names[0] != "queue.depth" {
		t.Fatalf("probes %v, want only the gauge", names)
	}
	for cy := int64(0); cy < 4; cy++ {
		depth = cy
		s.Tick(cy)
	}
	hist := s.Histogram("queue.depth")
	if hist.Total() != 4 {
		t.Errorf("%d samples, want 4", hist.Total())
	}
	if hist.Percentile(1.0) != 3 {
		t.Errorf("max sampled depth %d, want 3", hist.Percentile(1.0))
	}
}

func TestAttribution(t *testing.T) {
	h := NewHub()
	// Contributors to one class aggregate — even across Sub views, which
	// deliberately do not prefix attribution classes.
	h.Attribute("ce", func() Attr { return Attr{Busy: 10, Stall: 2, Idle: 1} })
	h.Sub("run2").Attribute("ce", func() Attr { return Attr{Busy: 5, Stall: 1, Idle: 0} })
	h.Attribute("gmem", func() Attr { return Attr{Busy: 3} })
	rows := h.Attribution()
	if len(rows) != 2 {
		t.Fatalf("%d classes, want 2", len(rows))
	}
	if rows[0].Class != "ce" || rows[0].Busy != 15 || rows[0].Stall != 3 || rows[0].Idle != 1 {
		t.Errorf("ce row %+v", rows[0])
	}
	if rows[1].Class != "gmem" || rows[1].Busy != 3 {
		t.Errorf("gmem row %+v", rows[1])
	}
	out := FormatAttribution(rows)
	if !strings.Contains(out, "ce") || !strings.Contains(out, "stall") {
		t.Errorf("formatted attribution missing content:\n%s", out)
	}
	if FormatAttribution(nil) == "" {
		t.Error("empty attribution must still render a line")
	}
}
