package scope

import (
	"bytes"
	"testing"
)

// TestForkAdoptMatchesSequential is the parallel-artifact contract: posting
// a workload through forked children adopted in submission order must
// produce the same hub contents as posting it directly.
func TestForkAdoptMatchesSequential(t *testing.T) {
	post := func(h *Hub, run int) {
		sub := h.Sub("run")
		sub.Counter("ops", func() int64 { return int64(run) })
		sub.Counter("ops", func() int64 { return int64(run + 100) }) // collides
		sub.Gauge("depth", func() int64 { return 7 })
		sub.Span("track", "work", int64(run*10), int64(run*10+5))
		sub.Attribute("ce", func() Attr { return Attr{Busy: int64(run)} })
	}

	seq := NewHub()
	for run := 0; run < 3; run++ {
		post(seq, run)
	}

	par := NewHub()
	children := make([]*Hub, 3)
	for run := 0; run < 3; run++ {
		children[run] = par.Fork()
		post(children[run], run)
	}
	for _, c := range children {
		par.Adopt(c)
	}

	var seqCSV, parCSV, seqTr, parTr bytes.Buffer
	if err := seq.WriteMetricsCSV(&seqCSV); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteMetricsCSV(&parCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqCSV.Bytes(), parCSV.Bytes()) {
		t.Errorf("metrics CSV differs:\nsequential:\n%s\nforked:\n%s", seqCSV.String(), parCSV.String())
	}
	if err := seq.WriteChromeTrace(&seqTr); err != nil {
		t.Fatal(err)
	}
	if err := par.WriteChromeTrace(&parTr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqTr.Bytes(), parTr.Bytes()) {
		t.Error("trace JSON differs between sequential and fork/adopt posting")
	}

	seqAt, parAt := seq.Attribution(), par.Attribution()
	if len(seqAt) != len(parAt) {
		t.Fatalf("attribution rows: %d sequential vs %d forked", len(seqAt), len(parAt))
	}
	for i := range seqAt {
		if seqAt[i] != parAt[i] {
			t.Errorf("attribution row %d: %+v vs %+v", i, seqAt[i], parAt[i])
		}
	}
}

// TestForkAdoptDropAccounting checks that span drops are additive: a child
// inherits the parent's capacity, and adoption re-applies the parent's
// remaining room, so kept spans and the dropped count both match the
// sequential run.
func TestForkAdoptDropAccounting(t *testing.T) {
	const capSpans = 4
	fill := func(h *Hub, jobs, spansPerJob int, fork bool) *Hub {
		for j := 0; j < jobs; j++ {
			target := h
			if fork {
				target = h.Fork()
			}
			for s := 0; s < spansPerJob; s++ {
				target.Span("t", "s", int64(j*100+s), int64(j*100+s+1))
			}
			if fork {
				h.Adopt(target)
			}
		}
		return h
	}
	seq := NewHub()
	seq.SetTraceCap(capSpans)
	fill(seq, 3, 3, false)
	par := NewHub()
	par.SetTraceCap(capSpans)
	fill(par, 3, 3, true)

	if got, want := len(par.Spans()), len(seq.Spans()); got != want {
		t.Fatalf("kept spans = %d, want %d", got, want)
	}
	for i, s := range par.Spans() {
		if s != seq.Spans()[i] {
			t.Errorf("span %d = %+v, want %+v", i, s, seq.Spans()[i])
		}
	}
	if got, want := par.TraceDropped(), seq.TraceDropped(); got != want {
		t.Errorf("dropped = %d, want %d", got, want)
	}
	if seq.TraceDropped() == 0 {
		t.Error("test workload did not overflow the span buffer")
	}
}

func TestForkAdoptNil(t *testing.T) {
	var nilHub *Hub
	if nilHub.Fork() != nil {
		t.Error("Fork of nil hub is not nil")
	}
	nilHub.Adopt(NewHub()) // must not panic
	h := NewHub()
	h.Adopt(nil)
	h.Adopt(h)
	if h.Metrics() != 0 {
		t.Error("self/nil adopt changed the hub")
	}
}

func TestForkInheritsPrefix(t *testing.T) {
	h := NewHub()
	child := h.Sub("sweep").Fork()
	child.Counter("runs", func() int64 { return 1 })
	h.Adopt(child)
	if got := h.SnapshotUnder("sweep"); len(got) != 1 || got[0].Name != "sweep/runs" {
		t.Errorf("adopted metric = %+v, want one sweep/runs", got)
	}
}

// TestForkAdoptBothChildrenAtCap pins the drop arithmetic when every
// party is saturated: two forked children each fill past the span cap
// before adoption. Conservation must hold exactly — every posted span is
// either kept by the parent or counted dropped exactly once (child-side
// drops carry over verbatim; child-kept spans rejected by the full
// parent are counted by the parent's own bound) — so a double count or
// a lost count both fail.
func TestForkAdoptBothChildrenAtCap(t *testing.T) {
	const (
		capSpans    = 4
		perChild    = capSpans + 2 // each child drops 2 itself
		children    = 2
		totalPosted = children * perChild
	)
	parent := NewHub()
	parent.SetTraceCap(capSpans)

	kids := make([]*Hub, children)
	for c := range kids {
		kids[c] = parent.Fork()
		for s := 0; s < perChild; s++ {
			kids[c].Span("t", "s", int64(c*100+s), int64(c*100+s+1))
		}
		if got := len(kids[c].Spans()); got != capSpans {
			t.Fatalf("child %d kept %d spans, want %d (at cap)", c, got, capSpans)
		}
		if got := kids[c].TraceDropped(); got != perChild-capSpans {
			t.Fatalf("child %d dropped %d, want %d", c, got, perChild-capSpans)
		}
	}
	for _, c := range kids {
		parent.Adopt(c)
	}

	if got := len(parent.Spans()); got != capSpans {
		t.Errorf("parent kept %d spans, want %d", got, capSpans)
	}
	// The first child's kept spans fill the parent; everything else is a
	// drop: 2 (child 0) + 2 (child 1) + 4 (child 1's kept spans bounced
	// off the full parent) = posted - kept.
	if got, want := parent.TraceDropped(), int64(totalPosted-capSpans); got != want {
		t.Errorf("parent dropped = %d, want %d (each loss counted exactly once)", got, want)
	}
	// The kept spans are the first child's, in posting order.
	for i, s := range parent.Spans() {
		if want := (Span{Track: "t", Name: "s", Start: int64(i), End: int64(i + 1)}); s != want {
			t.Errorf("span %d = %+v, want %+v", i, s, want)
		}
	}
}
