package scope

import (
	"fmt"
	"io"
	"os"
)

// WriteArtifacts writes the hub's trace (Chrome trace-event JSON) and
// metrics (CSV) to the given paths; an empty path skips that artifact.
// The CLIs' -trace and -metrics flags funnel here so every tool emits
// identical formats.
func WriteArtifacts(h *Hub, tracePath, metricsPath string) error {
	if tracePath != "" {
		if err := writeFile(tracePath, h.WriteChromeTrace); err != nil {
			return fmt.Errorf("scope: trace: %w", err)
		}
	}
	if metricsPath != "" {
		if err := writeFile(metricsPath, h.WriteMetricsCSV); err != nil {
			return fmt.Errorf("scope: metrics: %w", err)
		}
	}
	return nil
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}
