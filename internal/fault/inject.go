package fault

import (
	"fmt"

	"cedar/internal/params"
	"cedar/internal/scope"
)

// Stats counts injected faults, cumulatively per machine.
type Stats struct {
	BankStalls int64 // stall injections (not stall cycles)
	StageJams  int64 // output wires jammed for a cycle
	LinkDrops  int64 // prefetch packets lost in a fabric
	PFUNacks   int64 // prefetch reads bounced by a module
}

// Injector answers the machine's per-cycle fault queries for one Plan.
// All methods are nil-safe: a nil *Injector is the healthy machine.
// The injector is owned by a single machine (single goroutine); its
// counters are plain fields, and its probability draws are pure
// functions of (seed, component, cycle), so identical machines draw
// identical faults regardless of how many run concurrently.
type Injector struct {
	plan *Plan
	hub  *scope.Hub

	dead   []bool // per-module BankDead flags
	nDead  int
	stalls []int // plan indices of BankStall faults
	jams   []int // plan indices of StageJam faults
	drops  []int // plan indices of LinkDrop faults
	nacks  []int // plan indices of PFUNack faults

	stats Stats
}

// NewInjector validates the plan against a machine configuration and
// builds its injector. A nil or empty plan yields a nil injector.
func NewInjector(p params.Machine, plan *Plan) (*Injector, error) {
	if plan == nil || len(plan.Faults) == 0 {
		return nil, nil
	}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{plan: plan, dead: make([]bool, p.MemModules)}
	for i := range plan.Faults {
		f := &plan.Faults[i]
		if f.Module >= p.MemModules {
			return nil, fmt.Errorf("fault: fault %d (%s): module %d outside 0..%d",
				i, f.Kind, f.Module, p.MemModules-1)
		}
		switch f.Kind {
		case BankDead:
			if !in.dead[f.Module] {
				in.dead[f.Module] = true
				in.nDead++
			}
		case BankStall:
			in.stalls = append(in.stalls, i)
		case StageJam:
			in.jams = append(in.jams, i)
		case LinkDrop:
			in.drops = append(in.drops, i)
		case PFUNack:
			in.nacks = append(in.nacks, i)
		}
	}
	if in.nDead >= p.MemModules {
		return nil, fmt.Errorf("fault: all %d memory modules dead", p.MemModules)
	}
	return in, nil
}

// SetScope attaches an observability hub; injections emit cycle-stamped
// instant events on its "faults" track.
func (in *Injector) SetScope(h *scope.Hub) {
	if in != nil {
		in.hub = h
	}
}

// Stats returns cumulative injection counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return in.stats
}

// DeadModules returns how many memory modules the plan removes.
func (in *Injector) DeadModules() int {
	if in == nil {
		return 0
	}
	return in.nDead
}

// Retryable reports whether the plan can generate recoverable faults
// (NACKs or drops) that the prefetch path must arm its retry and
// timeout machinery for.
func (in *Injector) Retryable() bool {
	return in != nil && (len(in.nacks) > 0 || len(in.drops) > 0)
}

// BankDead reports whether global-memory module mod is out of service.
func (in *Injector) BankDead(mod int) bool {
	return in != nil && in.dead[mod]
}

// BankStall returns the extra service latency injected into module
// mod's access initiated at cycle (0 when no stall fires).
func (in *Injector) BankStall(mod int, cycle int64) int64 {
	if in == nil {
		return 0
	}
	var extra int64
	for _, i := range in.stalls {
		f := &in.plan.Faults[i]
		if f.Module != -1 && f.Module != mod {
			continue
		}
		if !f.active(cycle) {
			continue
		}
		if in.draw(f.Rate, saltStall, uint64(i), uint64(mod), uint64(cycle)) {
			extra += f.Extra
			in.stats.BankStalls++
			in.emit("gmem", "bank-stall", cycle)
		}
	}
	return extra
}

// StageJam reports whether the output wire (fabric, stage, line) is
// jammed at cycle, counting and emitting the injection.
func (in *Injector) StageJam(fabric string, stage, line int, cycle int64) bool {
	if in == nil || len(in.jams) == 0 {
		return false
	}
	if !in.drawWire(in.jams, saltJam, fabric, stage, line, cycle) {
		return false
	}
	in.stats.StageJams++
	in.emit(fabric, "stage-jam", cycle)
	return true
}

// JamDelay returns how many consecutive cycles starting at cycle the
// wire (fabric, stage, line) is jammed — the added transit latency an
// ideal crossbar charges in place of blocking a queue. The scan is
// capped so a rate-1 jam cannot loop forever.
func (in *Injector) JamDelay(fabric string, stage, line int, cycle int64) int64 {
	if in == nil || len(in.jams) == 0 {
		return 0
	}
	var d int64
	for d < jamScanCap && in.drawWire(in.jams, saltJam, fabric, stage, line, cycle+d) {
		d++
	}
	if d > 0 {
		in.stats.StageJams++
		in.emit(fabric, "stage-jam", cycle)
	}
	return d
}

// LinkDrop reports whether a prefetch packet crossing the wire (fabric,
// stage, line) at cycle is lost.
func (in *Injector) LinkDrop(fabric string, stage, line int, cycle int64) bool {
	if in == nil || len(in.drops) == 0 {
		return false
	}
	if !in.drawWire(in.drops, saltDrop, fabric, stage, line, cycle) {
		return false
	}
	in.stats.LinkDrops++
	in.emit(fabric, "link-drop", cycle)
	return true
}

// PFUNack reports whether module mod bounces the prefetch read it
// initiates at cycle.
func (in *Injector) PFUNack(mod int, cycle int64) bool {
	if in == nil || len(in.nacks) == 0 {
		return false
	}
	for _, i := range in.nacks {
		f := &in.plan.Faults[i]
		if f.Module != -1 && f.Module != mod {
			continue
		}
		if !f.active(cycle) {
			continue
		}
		if in.draw(f.Rate, saltNack, uint64(i), uint64(mod), uint64(cycle)) {
			in.stats.PFUNacks++
			in.emit("gmem", "pfu-nack", cycle)
			return true
		}
	}
	return false
}

// drawWire evaluates every fault in idxs against a network wire.
func (in *Injector) drawWire(idxs []int, salt uint64, fabric string, stage, line int, cycle int64) bool {
	fc := fabricCode(fabric)
	for _, i := range idxs {
		f := &in.plan.Faults[i]
		if f.Fabric != "" && f.Fabric != fabric {
			continue
		}
		if f.Stage != -1 && f.Stage != stage {
			continue
		}
		if f.Line != -1 && f.Line != line {
			continue
		}
		if !f.active(cycle) {
			continue
		}
		if in.draw(f.Rate, salt, uint64(i), fc, uint64(stage)<<32|uint64(uint32(line)), uint64(cycle)) {
			return true
		}
	}
	return false
}

func (in *Injector) emit(where, what string, cycle int64) {
	if in.hub != nil {
		in.hub.Emit("faults/"+where, what, cycle)
	}
}

// jamScanCap bounds JamDelay's look-ahead.
const jamScanCap = 4096

// Draw salts keep the fault streams of different kinds decorrelated
// even when they key on the same component and cycle.
const (
	saltStall uint64 = 1
	saltJam   uint64 = 2
	saltDrop  uint64 = 3
	saltNack  uint64 = 4
)

// fabricCode maps a fabric name to a draw-key component (FNV-1a).
func fabricCode(name string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001b3
	}
	return h
}

// draw is a Bernoulli trial with probability rate, keyed on the plan
// seed and the caller-supplied component/cycle words. It is a pure
// function: the counter-based PRNG hashes its inputs instead of
// advancing shared state, which is what keeps fault schedules identical
// across worker counts.
func (in *Injector) draw(rate float64, words ...uint64) bool {
	if rate >= 1 {
		return true
	}
	h := splitmix(in.plan.Seed ^ 0x9e3779b97f4a7c15)
	for _, w := range words {
		h = splitmix(h ^ w)
	}
	// 53 uniform mantissa bits → [0, 1).
	return float64(h>>11)/(1<<53) < rate
}

// splitmix is the SplitMix64 finalizer, a well-mixed 64-bit hash.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
