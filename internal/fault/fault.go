// Package fault injects deterministic hardware faults into the Cedar
// model: dead or stalling global-memory banks, contended or lossy
// network stages, and transient NACKs on the prefetch request path.
//
// A Plan is pure data — a seed plus a list of fault descriptions — and
// every injection decision is a pure function of (seed, component,
// cycle): draws come from a counter-based PRNG, never from shared
// mutable state, so a faulted run is byte-identical at any worker
// count, exactly like a healthy one. The Injector built from a Plan is
// the only object the machine's components consult, and a nil Injector
// is a valid "no faults" instance whose every query is false.
package fault

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind names a fault mechanism.
type Kind uint8

// Fault kinds.
const (
	// KindUnknown is the zero value; plans must name a real kind.
	KindUnknown Kind = iota
	// BankDead removes a global-memory module from service for the whole
	// run. Interleaving remaps around it (graceful degradation): the
	// machine keeps its data and its answers, it just loses bandwidth.
	BankDead
	// BankStall adds Extra cycles of service latency to a module's
	// accesses with probability Rate per initiation.
	BankStall
	// StageJam blocks an output wire of a network stage with probability
	// Rate per cycle, modeling a contended or flaky switch.
	StageJam
	// LinkDrop loses a prefetch packet traversing a network wire with
	// probability Rate. Only idempotent prefetch read traffic is ever
	// dropped; the PFU's retry machinery recovers the element.
	LinkDrop
	// PFUNack makes a module bounce a prefetch read with a NACK reply
	// with probability Rate per initiation, modeling a busy
	// synchronization processor refusing optional traffic.
	PFUNack
)

var kindNames = map[Kind]string{
	BankDead:  "bank-dead",
	BankStall: "bank-stall",
	StageJam:  "stage-jam",
	LinkDrop:  "link-drop",
	PFUNack:   "pfu-nack",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its string name.
func (k Kind) MarshalJSON() ([]byte, error) {
	s, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("fault: cannot marshal kind %d", uint8(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes a kind from its string name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("fault: kind must be a string: %w", err)
	}
	for kk, name := range kindNames {
		if name == s {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("fault: unknown kind %q (want one of %s)", s, strings.Join(kindNameList(), ", "))
}

func kindNameList() []string {
	names := make([]string, 0, len(kindNames))
	for _, n := range kindNames {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Fault is one injected defect. Which fields matter depends on Kind.
type Fault struct {
	Kind Kind `json:"kind"`

	// Module selects a global-memory module for BankDead, BankStall and
	// PFUNack. -1 means every module (not valid for BankDead).
	Module int `json:"module,omitempty"`

	// Fabric selects a network for StageJam and LinkDrop: "fwd", "rev",
	// or "" for both.
	Fabric string `json:"fabric,omitempty"`
	// Stage selects a network stage; -1 means every stage.
	Stage int `json:"stage,omitempty"`
	// Line selects an output wire within the stage; -1 means every line.
	Line int `json:"line,omitempty"`

	// From and Until bound the active window in cycles; Until 0 means
	// open-ended.
	From  int64 `json:"from,omitempty"`
	Until int64 `json:"until,omitempty"`

	// Rate is the per-opportunity firing probability in [0, 1]. BankDead
	// ignores it.
	Rate float64 `json:"rate,omitempty"`

	// Extra is the added service latency in cycles for BankStall.
	Extra int64 `json:"extra,omitempty"`
}

// active reports whether the fault's window covers cycle.
func (f *Fault) active(cycle int64) bool {
	return cycle >= f.From && (f.Until == 0 || cycle < f.Until)
}

// Plan is a complete, seed-deterministic fault scenario.
type Plan struct {
	// Seed keys every probability draw. Two plans with the same faults
	// but different seeds fire at different cycles.
	Seed uint64 `json:"seed"`

	Faults []Fault `json:"faults"`
}

// Validate checks the plan against machine-independent invariants.
// Machine-dependent checks (module in range) happen in NewInjector.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for i := range p.Faults {
		f := &p.Faults[i]
		where := fmt.Sprintf("fault %d (%s)", i, f.Kind)
		switch f.Kind {
		case BankDead:
			if f.Module < 0 {
				return fmt.Errorf("fault: %s: needs an explicit module ≥ 0", where)
			}
		case BankStall:
			if f.Module < -1 {
				return fmt.Errorf("fault: %s: module must be ≥ -1", where)
			}
			if f.Extra < 1 {
				return fmt.Errorf("fault: %s: needs extra ≥ 1 stall cycles", where)
			}
		case StageJam, LinkDrop:
			if f.Fabric != "" && f.Fabric != "fwd" && f.Fabric != "rev" {
				return fmt.Errorf("fault: %s: fabric must be \"fwd\", \"rev\" or empty, got %q", where, f.Fabric)
			}
			if f.Stage < -1 || f.Line < -1 {
				return fmt.Errorf("fault: %s: stage and line must be ≥ -1", where)
			}
		case PFUNack:
			if f.Module < -1 {
				return fmt.Errorf("fault: %s: module must be ≥ -1", where)
			}
		default:
			return fmt.Errorf("fault: fault %d: unknown kind %d", i, uint8(f.Kind))
		}
		if f.Kind != BankDead {
			if f.Rate <= 0 || f.Rate > 1 {
				return fmt.Errorf("fault: %s: rate must be in (0, 1], got %g", where, f.Rate)
			}
		}
		if f.From < 0 {
			return fmt.Errorf("fault: %s: from must be ≥ 0", where)
		}
		if f.Until != 0 && f.Until <= f.From {
			return fmt.Errorf("fault: %s: until %d must be 0 (open) or > from %d", where, f.Until, f.From)
		}
	}
	return nil
}

// Load reads and validates a JSON plan file.
func Load(path string) (*Plan, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &p, nil
}

// Fingerprint returns a stable content string for cache keying; nil and
// empty plans fingerprint to "".
func (p *Plan) Fingerprint() string {
	if p == nil || len(p.Faults) == 0 {
		return ""
	}
	return fmt.Sprintf("%d:%#v", p.Seed, p.Faults)
}

// Hash returns a short content hash of the plan — 16 hex digits of the
// SHA-256 of Fingerprint — for run-metadata headers, where the full
// fingerprint (a %#v dump of every fault) would be noise. Nil and empty
// plans hash to "".
func (p *Plan) Hash() string {
	fp := p.Fingerprint()
	if fp == "" {
		return ""
	}
	sum := sha256.Sum256([]byte(fp))
	return hex.EncodeToString(sum[:8])
}

// defaultPlan holds the process-wide plan installed by the CLIs'
// -faults flag; machines built without an explicit Options.Faults use
// it. Reads and writes go through an atomic pointer so tests and
// worker goroutines never race.
var defaultPlan atomic.Pointer[Plan]

// SetDefault installs (or, with nil, clears) the process-wide plan.
func SetDefault(p *Plan) { defaultPlan.Store(p) }

// Default returns the process-wide plan, or nil.
func Default() *Plan { return defaultPlan.Load() }

// DefaultFingerprint returns the fingerprint of the process-wide plan
// for run-cache keys, so healthy and faulted runs of the same
// configuration never collide in the cache.
func DefaultFingerprint() string { return Default().Fingerprint() }

// ErrDegraded marks a run that completed (or was abandoned) in degraded
// mode: faults exhausted a retry budget or starved the program past its
// cycle limit. Callers report the partial result instead of crashing.
var ErrDegraded = errors.New("fault: degraded run")

// DemoPlan is the scenario the CLIs run when -faults is given no plan
// file: one dead memory bank, a jammed first network stage, and
// transient NACKs — the "dead bank + network stage fault" smoke case.
func DemoPlan() *Plan {
	return &Plan{
		Seed: 0xCEDA2,
		Faults: []Fault{
			{Kind: BankDead, Module: 3},
			{Kind: StageJam, Fabric: "fwd", Stage: 0, Line: -1, Rate: 0.05},
			{Kind: PFUNack, Module: -1, Rate: 0.02},
		},
	}
}
