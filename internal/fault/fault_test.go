package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cedar/internal/params"
)

func writePlan(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadRoundTrip(t *testing.T) {
	path := writePlan(t, `{
		"seed": 99,
		"faults": [
			{"kind": "bank-dead", "module": 5},
			{"kind": "bank-stall", "module": -1, "rate": 0.25, "extra": 8},
			{"kind": "stage-jam", "fabric": "fwd", "stage": 0, "line": -1, "rate": 0.05},
			{"kind": "link-drop", "stage": -1, "line": -1, "rate": 0.001, "from": 100, "until": 5000},
			{"kind": "pfu-nack", "module": -1, "rate": 0.02}
		]
	}`)
	p, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 99 || len(p.Faults) != 5 {
		t.Fatalf("loaded %+v", p)
	}
	want := []Kind{BankDead, BankStall, StageJam, LinkDrop, PFUNack}
	for i, k := range want {
		if p.Faults[i].Kind != k {
			t.Errorf("fault %d kind = %v, want %v", i, p.Faults[i].Kind, k)
		}
	}
	if f := p.Faults[3]; f.From != 100 || f.Until != 5000 {
		t.Errorf("window = [%d, %d), want [100, 5000)", f.From, f.Until)
	}
}

func TestLoadRejectsBadPlans(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"not json", `]`, "invalid"},
		{"unknown field", `{"seed": 1, "faults": [], "typo": true}`, "typo"},
		{"unknown kind", `{"faults": [{"kind": "gremlin"}]}`, "gremlin"},
		{"kind not string", `{"faults": [{"kind": 3}]}`, "string"},
		{"dead bank without module", `{"faults": [{"kind": "bank-dead", "module": -1}]}`, "module"},
		{"stall without extra", `{"faults": [{"kind": "bank-stall", "module": 0, "rate": 0.5}]}`, "extra"},
		{"bad fabric", `{"faults": [{"kind": "stage-jam", "fabric": "diagonal", "stage": -1, "line": -1, "rate": 0.1}]}`, "fabric"},
		{"rate above one", `{"faults": [{"kind": "pfu-nack", "module": -1, "rate": 1.5}]}`, "rate"},
		{"rate missing", `{"faults": [{"kind": "link-drop", "stage": -1, "line": -1}]}`, "rate"},
		{"inverted window", `{"faults": [{"kind": "pfu-nack", "module": -1, "rate": 0.1, "from": 50, "until": 10}]}`, "until"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writePlan(t, tc.body)
			_, err := Load(path)
			if err == nil {
				t.Fatalf("Load accepted %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestNewInjectorMachineChecks(t *testing.T) {
	p := params.Default()

	if in, err := NewInjector(p, nil); in != nil || err != nil {
		t.Fatalf("nil plan: injector %v, err %v", in, err)
	}
	if in, err := NewInjector(p, &Plan{Seed: 1}); in != nil || err != nil {
		t.Fatalf("empty plan: injector %v, err %v", in, err)
	}

	if _, err := NewInjector(p, &Plan{Faults: []Fault{
		{Kind: BankDead, Module: p.MemModules},
	}}); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("out-of-range module: err %v", err)
	}

	all := &Plan{}
	for m := 0; m < p.MemModules; m++ {
		all.Faults = append(all.Faults, Fault{Kind: BankDead, Module: m})
	}
	if _, err := NewInjector(p, all); err == nil || !strings.Contains(err.Error(), "dead") {
		t.Fatalf("all-dead plan: err %v", err)
	}

	in, err := NewInjector(p, DemoPlan())
	if err != nil {
		t.Fatal(err)
	}
	if !in.BankDead(3) || in.BankDead(0) || in.DeadModules() != 1 {
		t.Fatalf("demo plan dead set: mod3=%v mod0=%v n=%d", in.BankDead(3), in.BankDead(0), in.DeadModules())
	}
	if !in.Retryable() {
		t.Fatal("demo plan has NACKs, must be retryable")
	}
}

func TestNilInjectorIsHealthy(t *testing.T) {
	var in *Injector
	if in.BankDead(0) || in.BankStall(0, 10) != 0 || in.StageJam("fwd", 0, 0, 10) ||
		in.JamDelay("fwd", 0, 0, 10) != 0 || in.LinkDrop("rev", 1, 2, 10) ||
		in.PFUNack(0, 10) || in.Retryable() || in.DeadModules() != 0 {
		t.Fatal("nil injector injected something")
	}
	in.SetScope(nil) // must not panic
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector stats = %+v", s)
	}
}

// TestDrawsAreDeterministic is the heart of the package: two injectors
// built from equal plans must produce identical fault schedules, and the
// schedule must be a pure function of cycle (re-querying never changes
// the answer).
func TestDrawsAreDeterministic(t *testing.T) {
	p := params.Default()
	mk := func() *Injector {
		in, err := NewInjector(p, &Plan{Seed: 0xABCD, Faults: []Fault{
			{Kind: StageJam, Fabric: "fwd", Stage: -1, Line: -1, Rate: 0.1},
			{Kind: LinkDrop, Stage: -1, Line: -1, Rate: 0.05},
			{Kind: PFUNack, Module: -1, Rate: 0.2},
			{Kind: BankStall, Module: -1, Rate: 0.3, Extra: 4},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	fired := 0
	for cycle := int64(0); cycle < 2000; cycle++ {
		if ja, jb := a.StageJam("fwd", 1, 3, cycle), b.StageJam("fwd", 1, 3, cycle); ja != jb {
			t.Fatalf("cycle %d: jam %v vs %v", cycle, ja, jb)
		}
		if da, db := a.LinkDrop("rev", 0, 7, cycle), b.LinkDrop("rev", 0, 7, cycle); da != db {
			t.Fatalf("cycle %d: drop %v vs %v", cycle, da, db)
		}
		if na, nb := a.PFUNack(2, cycle), b.PFUNack(2, cycle); na != nb {
			t.Fatalf("cycle %d: nack %v vs %v", cycle, na, nb)
		} else if na {
			fired++
		}
		if sa, sb := a.BankStall(5, cycle), b.BankStall(5, cycle); sa != sb {
			t.Fatalf("cycle %d: stall %d vs %d", cycle, sa, sb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
	// A 20% nack over 2000 cycles that never fires (or always fires)
	// would mean the draw is broken, not unlucky.
	if fired == 0 || fired == 2000 {
		t.Fatalf("nack fired %d/2000 times", fired)
	}

	// Re-querying one cycle must be idempotent apart from the counters.
	c := mk()
	first := c.StageJam("fwd", 1, 3, 77)
	for i := 0; i < 10; i++ {
		if c.StageJam("fwd", 1, 3, 77) != first {
			t.Fatal("draw at a fixed (component, cycle) changed between queries")
		}
	}
}

// TestDrawStreamsDecorrelated checks different seeds and different
// fault kinds do not share a schedule.
func TestDrawStreamsDecorrelated(t *testing.T) {
	p := params.Default()
	mk := func(seed uint64) *Injector {
		in, err := NewInjector(p, &Plan{Seed: seed, Faults: []Fault{
			{Kind: StageJam, Stage: -1, Line: -1, Rate: 0.5},
			{Kind: LinkDrop, Stage: -1, Line: -1, Rate: 0.5},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(1), mk(2)
	sameSeed, sameKind := 0, 0
	const nCycles = 512
	for cycle := int64(0); cycle < nCycles; cycle++ {
		if a.StageJam("fwd", 0, 0, cycle) == b.StageJam("fwd", 0, 0, cycle) {
			sameSeed++
		}
		if a.StageJam("rev", 1, 1, cycle) == a.LinkDrop("rev", 1, 1, cycle) {
			sameKind++
		}
	}
	// Independent 50% streams agree about half the time; identical
	// streams agree always. Allow wide slack — the draws are fixed by
	// the seed, so this cannot flake.
	if sameSeed > nCycles*3/4 || sameKind > nCycles*3/4 {
		t.Fatalf("streams correlated: seed %d/%d, kind %d/%d", sameSeed, nCycles, sameKind, nCycles)
	}
}

func TestJamDelayWindowed(t *testing.T) {
	p := params.Default()
	in, err := NewInjector(p, &Plan{Faults: []Fault{
		// Rate 1 inside a closed window: the delay is exactly the
		// remaining window length, and zero outside it.
		{Kind: StageJam, Fabric: "fwd", Stage: 0, Line: -1, Rate: 1, From: 10, Until: 20},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if d := in.JamDelay("fwd", 0, 0, 5); d != 0 {
		t.Fatalf("before window: delay %d", d)
	}
	if d := in.JamDelay("fwd", 0, 0, 10); d != 10 {
		t.Fatalf("at window start: delay %d, want 10", d)
	}
	if d := in.JamDelay("fwd", 0, 0, 15); d != 5 {
		t.Fatalf("mid-window: delay %d, want 5", d)
	}
	if d := in.JamDelay("fwd", 0, 0, 20); d != 0 {
		t.Fatalf("after window: delay %d", d)
	}
	if d := in.JamDelay("rev", 0, 0, 15); d != 0 {
		t.Fatalf("wrong fabric: delay %d", d)
	}
}

func TestFingerprint(t *testing.T) {
	var nilPlan *Plan
	if fp := nilPlan.Fingerprint(); fp != "" {
		t.Fatalf("nil fingerprint %q", fp)
	}
	if fp := (&Plan{Seed: 3}).Fingerprint(); fp != "" {
		t.Fatalf("empty fingerprint %q", fp)
	}
	a := DemoPlan().Fingerprint()
	if a == "" || a != DemoPlan().Fingerprint() {
		t.Fatal("demo fingerprint unstable")
	}
	other := DemoPlan()
	other.Seed++
	if other.Fingerprint() == a {
		t.Fatal("different seeds share a fingerprint")
	}
}

func TestDefaultPlanInstall(t *testing.T) {
	t.Cleanup(func() { SetDefault(nil) })
	if Default() != nil {
		t.Fatal("default plan not nil at start")
	}
	if DefaultFingerprint() != "" {
		t.Fatal("nil default has a fingerprint")
	}
	p := DemoPlan()
	SetDefault(p)
	if Default() != p {
		t.Fatal("SetDefault did not install")
	}
	if DefaultFingerprint() != p.Fingerprint() {
		t.Fatal("default fingerprint mismatch")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not clear")
	}
}
