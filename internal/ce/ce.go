package ce

import (
	"fmt"

	"cedar/internal/cache"
	"cedar/internal/network"
	"cedar/internal/params"
	"cedar/internal/prefetch"
)

// Tag layout for CE-issued packets (bit 31 belongs to the PFU).
const (
	tagKindShift = 28
	tagKindVec   = 1 << tagKindShift
	tagKindLoad  = 2 << tagKindShift
	tagKindSync  = 3 << tagKindShift
	tagKindStore = 4 << tagKindShift
	tagKindMask  = 7 << tagKindShift
)

// CE is one computational element.
type CE struct {
	ID          int // machine-wide CE number
	Cluster     int
	IDInCluster int
	Port        int // network port

	p      params.Machine
	fwd    network.Fabric
	rev    network.Fabric
	pfu    *prefetch.PFU
	cache  *cache.Cache
	modFor func(uint64) int
	ctrl   Controller

	// pool recycles this CE's packets. Requests return to the issuing
	// port as in-place replies, so the consumer in drainReplies retires
	// them straight back here; the PFU shares the pool because it issues
	// on the same port.
	pool network.PacketPool

	cur *Instr

	// Scalar execution.
	busyUntil int64
	started   bool

	// Blocking scalar load / sync.
	issuedScalar bool
	scalarDoneAt int64
	scalarVal    int64
	scalarPassed bool
	scalarBack   bool

	// Vector execution.
	vec vecState

	// Store tracking (global write acks).
	storesOutstanding int
	pendingStores     []*network.Packet

	// Accounting.
	flops     int64
	finished  bool
	activeCyc int64
	waitCyc   int64
	doneAt    int64
	// lastTick is the last executed cycle, for exact counter accounting
	// across engine jumps: a sleeping CE's instruction state is frozen,
	// so skipped cycles carry the frozen active/wait classification.
	lastTick int64
	wake     func(at int64)

	// Fault recovery (degraded-mode runs).
	faulty  bool  // fault plan active: poll the PFU for terminal errors
	failErr error // terminal fault; the CE abandons its program
}

type vecState struct {
	streams      []streamState
	dst          *Stream
	n            int
	flopsPer     int64
	completed    int
	pipeFree     int64
	stripCharged bool
	outstanding  int     // non-prefetch global loads in flight (≤ MaxOutstanding)
	freeAt       []int64 // completion times that release outstanding slots
	storesQueued int     // completed elements whose store is not yet issued
	nextStoreEl  int
}

type streamState struct {
	s      Stream
	issued int
	avail  []int64 // per-element availability cycle; -1 = not yet

	// Prefetch block management.
	blockStart int // first element of the armed block
	blockLen   int

	// Cluster in-order delivery.
	clusterInFlight int
}

// New builds a CE. cache may be nil for configurations under test without
// a cluster hierarchy.
func New(p params.Machine, id, clusterID, idInCluster, port int,
	fwd, rev network.Fabric, cch *cache.Cache, modFor func(uint64) int) *CE {
	c := &CE{
		ID:          id,
		Cluster:     clusterID,
		IDInCluster: idInCluster,
		Port:        port,
		p:           p,
		fwd:         fwd,
		rev:         rev,
		cache:       cch,
		modFor:      modFor,
		lastTick:    -1,
	}
	c.pfu = prefetch.New(p, port, fwd, modFor, &c.pool)
	return c
}

// PFU exposes the CE's prefetch unit (for monitor attachment).
func (c *CE) PFU() *prefetch.PFU { return c.pfu }

// ArmFaultRecovery enables degraded-mode operation: the PFU arms its
// NACK/timeout retry machinery and the CE turns a retry-exhausted
// element into a recorded error (surfaced by Err) instead of waiting
// forever on a word that will never arrive.
func (c *CE) ArmFaultRecovery() {
	c.faulty = true
	c.pfu.ArmRetry()
}

// Err returns the terminal fault that made this CE abandon its program,
// or nil. A failed CE reports Idle so the run can finish and the
// machine can surface a degraded result.
func (c *CE) Err() error { return c.failErr }

// fail records a terminal fault and abandons the current instruction.
func (c *CE) fail(err error, cycle int64) {
	if c.failErr != nil {
		return
	}
	c.failErr = fmt.Errorf("ce%d: %w", c.ID, err) //lint:allow hotalloc terminal fault path, runs at most once per CE per run
	c.cur = nil
	c.finished = true
	c.doneAt = cycle
}

// SetController installs the instruction source and clears completion.
func (c *CE) SetController(ctrl Controller) {
	c.ctrl = ctrl
	c.finished = false
}

// Flops returns the floating-point operations completed so far.
func (c *CE) Flops() int64 { return c.flops }

// ActiveCycles returns cycles spent with an instruction in progress.
func (c *CE) ActiveCycles() int64 { return c.activeCyc }

// WaitCycles returns cycles spent idle waiting for the controller.
func (c *CE) WaitCycles() int64 { return c.waitCyc }

// StoresOutstanding returns the store acknowledgements still in flight —
// an occupancy gauge for the observability hub.
func (c *CE) StoresOutstanding() int { return c.storesOutstanding }

// DoneAt returns the cycle the controller finished (valid once Idle).
func (c *CE) DoneAt() int64 { return c.doneAt }

// Name implements sim.Component.
func (c *CE) Name() string { return fmt.Sprintf("ce%d", c.ID) }

// Idle implements sim.Idler: finished and nothing in flight. A CE that
// hit a terminal fault abandoned its program: it is idle as soon as its
// stores drain, so the run can end and report the degradation.
func (c *CE) Idle() bool {
	if c.failErr != nil {
		return c.storesOutstanding == 0 && len(c.pendingStores) == 0
	}
	return c.finished && c.cur == nil && c.storesOutstanding == 0 &&
		len(c.pendingStores) == 0 && !c.pfu.Busy()
}

// never mirrors sim.Never without importing sim (ce sits below it in
// the layering DAG).
const never = int64(1<<63 - 1)

// SetWaker installs the engine wake callback used by cache completions;
// the machine wires the reverse network's port waker separately. Until a
// waker is wired the CE never sleeps.
func (c *CE) SetWaker(wake func(at int64)) { c.wake = wake }

// NextWakeup implements sim.Sleeper: the earliest cycle this CE must
// tick given its instruction state. External completions reach it by
// push — the reverse network's port waker and the cache's CacheDone —
// so phases that only await them sleep indefinitely.
func (c *CE) NextWakeup(now int64) int64 {
	if c.wake == nil {
		return now
	}
	w := never
	// Reverse-port traffic: a packet that reached the fabric egress at
	// cycle t is consumable the cycle after (the fabric ticks after us).
	if t := c.rev.NextAt(c.Port, now-1); t != never && t+1 < w {
		w = t + 1
	}
	if len(c.pendingStores) > 0 {
		return now // retryStores offers every cycle
	}
	if c.cur == nil {
		if !c.finished {
			return now // the controller is polled every cycle
		}
	} else {
		switch c.cur.Op {
		case OpScalar:
			if !c.started {
				return now
			}
			if c.busyUntil < w {
				w = c.busyUntil
			}
		case OpGlobalLoad, OpSync:
			if !c.issuedScalar {
				return now // offering until the network accepts
			}
			if c.scalarBack && c.scalarDoneAt < w {
				w = c.scalarDoneAt
			}
			// Reply in flight: the reverse port wakes us.
		case OpGlobalStore, OpClusterStore:
			return now // offering until accepted
		case OpFence:
			if c.storesOutstanding == 0 {
				return now // retires on the next tick
			}
			// Waiting on write acks: the reverse port wakes us.
		case OpClusterLoad:
			if !c.started {
				return now // submitting until the cache accepts
			}
			if c.scalarBack && c.scalarDoneAt < w {
				w = c.scalarDoneAt
			}
			// The cache completion wakes us via CacheDone.
		case OpVector:
			if !c.started {
				return now
			}
			if t := c.vecWakeup(now); t < w {
				w = t
			}
		}
	}
	if t := c.pfu.NextWakeup(now); t < w {
		w = t
	}
	if w < now {
		return now
	}
	return w
}

// Tick implements sim.Component.
func (c *CE) Tick(cycle int64) {
	if gap := cycle - c.lastTick - 1; gap > 0 {
		// cur and finished only change inside ticks, so the skipped
		// cycles all carry the frozen classification. A CE waiting on its
		// controller never sleeps, so the waitCyc arm is for safety.
		if c.cur != nil {
			c.activeCyc += gap
		} else if !c.finished {
			c.waitCyc += gap
		}
	}
	c.lastTick = cycle
	c.drainReplies(cycle)
	c.retryStores()

	if c.cur == nil && !c.finished {
		c.fetch(cycle)
	}
	if c.cur != nil {
		c.activeCyc++
		c.execute(cycle)
	} else if !c.finished {
		c.waitCyc++
	}

	// The PFU shares the CE's network port; it issues with whatever port
	// bandwidth the CE left unused this cycle.
	if c.pfu.Suspended() {
		c.pfu.Resume(c.pfu.PendingAddr())
	}
	c.pfu.Tick(cycle)
	if c.faulty && c.failErr == nil {
		if err := c.pfu.Err(); err != nil {
			c.fail(err, cycle)
		}
	}
}

func (c *CE) fetch(cycle int64) {
	if c.ctrl == nil {
		// A CE with no controller has no work: immediately finished, so
		// unassigned CEs do not hold up idleness detection.
		c.finished = true
		c.doneAt = cycle
		return
	}
	in, st := c.ctrl.Next(c.ID, cycle)
	switch st {
	case Finished:
		c.finished = true
		c.doneAt = cycle
	case Wait:
	case Ready:
		c.cur = in
		c.started = false
	}
}

func (c *CE) retire(cycle int64) {
	done := c.cur.OnDone
	c.cur = nil
	if done != nil {
		done(cycle)
	}
	// Allow back-to-back fetch next tick (1-cycle issue overhead).
}

// execute advances the current instruction by one cycle. Panics on an
// unknown opcode — a corrupt program is a controller bug, not a runtime
// condition a simulation should survive.
func (c *CE) execute(cycle int64) {
	switch c.cur.Op {
	case OpScalar:
		if !c.started {
			c.started = true
			c.busyUntil = cycle + c.cur.Cycles
		}
		if cycle >= c.busyUntil {
			c.flops += c.cur.Flops
			c.retire(cycle)
		}

	case OpGlobalLoad, OpSync:
		c.execScalarGlobal(cycle)

	case OpGlobalStore:
		pkt := c.pool.Get()
		pkt.Kind = network.WriteReq
		pkt.Src = c.Port
		pkt.Dst = c.modFor(c.cur.Addr)
		pkt.Addr = c.cur.Addr
		pkt.Value = c.cur.Value
		pkt.Tag = tagKindStore
		pkt.Issue = cycle
		if c.offerStore(pkt) {
			c.retire(cycle)
		} else {
			c.pool.Put(pkt)
		}

	case OpFence:
		if c.storesOutstanding == 0 && len(c.pendingStores) == 0 {
			c.retire(cycle)
		}

	case OpClusterLoad:
		if !c.started {
			c.started = true
			c.scalarBack = false
			ok := c.cache.Submit(c.IDInCluster, c.cur.Addr, false, 0, c, tagKindLoad)
			if !ok {
				c.started = false
			}
		} else if c.scalarBack && cycle >= c.scalarDoneAt {
			if c.cur.OnResult != nil {
				c.cur.OnResult(0, true, cycle)
			}
			c.retire(cycle)
		}

	case OpClusterStore:
		if c.cache.Submit(c.IDInCluster, c.cur.Addr, true, c.cur.Value, nil, 0) {
			c.retire(cycle)
		}

	case OpVector:
		if !c.started {
			c.started = true
			c.startVector(cycle)
		}
		c.execVector(cycle)

	default:
		panic(fmt.Sprintf("ce: unknown op %d", c.cur.Op))
	}
}

func (c *CE) execScalarGlobal(cycle int64) {
	if !c.issuedScalar {
		pkt := c.pool.Get()
		pkt.Src = c.Port
		pkt.Dst = c.modFor(c.cur.Addr)
		pkt.Addr = c.cur.Addr
		pkt.Issue = cycle
		if c.cur.Op == OpSync {
			pkt.Kind = network.SyncReq
			pkt.Value = c.cur.Value
			pkt.Test = c.cur.Test
			pkt.Mut = c.cur.Mut
			pkt.TestArg = c.cur.TestArg
			pkt.Tag = tagKindSync
		} else {
			pkt.Kind = network.ReadReq
			pkt.Tag = tagKindLoad
		}
		if c.fwd.Offer(pkt) {
			c.issuedScalar = true
			c.scalarBack = false
		} else {
			c.pool.Put(pkt)
		}
		return
	}
	if c.scalarBack && cycle >= c.scalarDoneAt {
		c.issuedScalar = false
		if c.cur.OnResult != nil {
			c.cur.OnResult(c.scalarVal, c.scalarPassed, cycle)
		}
		c.flops += c.cur.Flops
		c.retire(cycle)
	}
}

// drainReplies dispatches everything waiting on the reverse port.
// Returning prefetch words land in the 512-word prefetch buffer and other
// replies in dedicated registers, so the port drains without back-pressure
// (the CE-side transfer time is modeled as availability delay instead).
// Consumed packets retire to the CE's pool — a reply is the rewritten
// request, so this port is the end of the packet lifecycle. Panics on a
// reply tag no unit claims: that is a routing bug, not a runtime
// condition.
func (c *CE) drainReplies(cycle int64) {
	for {
		pkt := c.rev.Poll(c.Port)
		if pkt == nil {
			return
		}
		if c.pfu.Deliver(pkt, cycle) {
			c.pool.Put(pkt)
			continue
		}
		switch pkt.Tag & tagKindMask {
		case tagKindStore:
			c.storesOutstanding--
		case tagKindLoad, tagKindSync:
			c.scalarBack = true
			c.scalarVal = pkt.Value
			c.scalarPassed = pkt.TestPassed
			c.scalarDoneAt = cycle + int64(c.p.CELoadOverhead)
		case tagKindVec:
			si := int(pkt.Tag>>16) & 0xfff
			el := int(pkt.Tag & 0xffff)
			vs := &c.vec
			if si < len(vs.streams) && el < len(vs.streams[si].avail) {
				t := cycle + int64(c.p.CELoadOverhead)
				vs.streams[si].avail[el] = t
				// The CE's outstanding-request slot frees when the load
				// completes into a register (the full 13-cycle latency),
				// not when the packet leaves the network — this is what
				// pins GM/no-pref at 2 requests per 13 cycles.
				vs.freeAt = append(vs.freeAt, t)
			}
		default:
			panic(fmt.Sprintf("ce%d: unmatched reply %v", c.ID, pkt))
		}
		c.pool.Put(pkt)
	}
}

// CacheDone implements cache.Sink: a cluster-cache access submitted by
// this CE completed at cycle at. The tag's kind bits name the operation
// that issued it; vector tags carry the stream and element like their
// global-memory counterparts.
func (c *CE) CacheDone(tag uint64, at int64) {
	switch uint32(tag) & tagKindMask {
	case tagKindLoad:
		c.scalarBack = true
		c.scalarDoneAt = at
	case tagKindVec:
		si := int(tag>>16) & 0xfff
		el := int(tag & 0xffff)
		vs := &c.vec
		if si < len(vs.streams) {
			st := &vs.streams[si]
			if el < len(st.avail) {
				st.avail[el] = at
			}
			st.clusterInFlight--
		}
	}
	if c.wake != nil {
		// The cache ticks after the CEs, so the completion is actionable
		// on the next cycle; the engine clamps the wake accordingly.
		c.wake(at)
	}
}

func (c *CE) offerStore(pkt *network.Packet) bool {
	if len(c.pendingStores) > 0 {
		// Preserve order behind earlier refused stores.
		if len(c.pendingStores) >= storePendingCap {
			return false
		}
		c.pendingStores = append(c.pendingStores, pkt)
		return true
	}
	if c.fwd.Offer(pkt) {
		c.storesOutstanding++
		return true
	}
	if len(c.pendingStores) >= storePendingCap {
		return false
	}
	c.pendingStores = append(c.pendingStores, pkt)
	return true
}

const storePendingCap = 8

// offerVecStore issues one vector-element global store.
func (c *CE) offerVecStore(addr uint64, cycle int64) bool {
	pkt := c.pool.Get()
	pkt.Kind = network.WriteReq
	pkt.Src = c.Port
	pkt.Dst = c.modFor(addr)
	pkt.Addr = addr
	pkt.Tag = tagKindStore
	pkt.Issue = cycle
	if c.offerStore(pkt) {
		return true
	}
	c.pool.Put(pkt)
	return false
}

func (c *CE) retryStores() {
	for len(c.pendingStores) > 0 {
		if !c.fwd.Offer(c.pendingStores[0]) {
			return
		}
		c.storesOutstanding++
		copy(c.pendingStores, c.pendingStores[1:])
		c.pendingStores = c.pendingStores[:len(c.pendingStores)-1]
	}
}
