package ce

import (
	"math"
	"testing"

	"cedar/internal/cache"
	"cedar/internal/cmem"
	"cedar/internal/gmem"
	"cedar/internal/network"
	"cedar/internal/params"
	"cedar/internal/sim"
)

// rig assembles one cluster's worth of CEs with real fabrics, global
// memory, cache and cluster memory.
type rig struct {
	p   params.Machine
	eng *sim.Engine
	ces []*CE
	mem *gmem.Memory
	cch *cache.Cache
	cm  *cmem.Memory
}

func newRig(t *testing.T, nCE int) *rig {
	t.Helper()
	p := params.Default()
	fwd := network.NewOmega(network.OmegaConfig{Name: "fwd", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords})
	rev := network.NewOmega(network.OmegaConfig{Name: "rev", Ports: p.NetPorts, Radix: p.NetRadix, QueueWords: p.NetQueueWords})
	mem := gmem.New(p, fwd, rev, nil)
	cm := cmem.New(p.CMemWordsPerCyc, p.CMemLatency, nil)
	cch := cache.New(p, p.CEsPerCluster, cm)
	r := &rig{p: p, eng: sim.New(), mem: mem, cch: cch, cm: cm}
	for i := 0; i < nCE; i++ {
		c := New(p, i, 0, i%p.CEsPerCluster, i, fwd, rev, cch, mem.ModuleFor)
		r.ces = append(r.ces, c)
		r.eng.Register(c)
	}
	r.eng.Register(
		sim.Func{ID: "cache", F: func(cy int64) { cch.Tick(cy); cm.Tick(cy) }},
		fwd, mem, rev,
	)
	return r
}

func (r *rig) run(t *testing.T, limit int64) {
	t.Helper()
	if err := r.eng.RunUntil(func() bool {
		for _, c := range r.ces {
			if !c.Idle() {
				return false
			}
		}
		return r.cch.Idle() && r.cm.Idle()
	}, limit); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func prog(instrs ...*Instr) *Program { return &Program{Instrs: instrs} }

func TestScalarTiming(t *testing.T) {
	r := newRig(t, 1)
	r.ces[0].SetController(prog(&Instr{Op: OpScalar, Cycles: 100, Flops: 50}))
	r.run(t, 1000)
	if got := r.ces[0].Flops(); got != 50 {
		t.Errorf("flops = %d, want 50", got)
	}
	if cy := r.eng.Cycle(); cy < 100 || cy > 105 {
		t.Errorf("scalar instr took %d cycles, want ≈100", cy)
	}
}

func TestGlobalLoadThirteenCycles(t *testing.T) {
	r := newRig(t, 1)
	var doneAt int64 = -1
	r.mem.Store().StoreWord(500, 31)
	var got int64
	r.ces[0].SetController(prog(&Instr{
		Op: OpGlobalLoad, Addr: 500,
		OnResult: func(v int64, _ bool, cy int64) { got = v; doneAt = cy },
	}))
	r.run(t, 1000)
	if got != 31 {
		t.Errorf("loaded %d, want 31", got)
	}
	// Issue happens during cycle 0; the full load latency is 13 cycles.
	if doneAt != 13 {
		t.Errorf("load completed at cycle %d, want 13", doneAt)
	}
}

func TestSyncRoundTrip(t *testing.T) {
	r := newRig(t, 1)
	r.mem.Store().StoreWord(64, 5)
	var got int64
	var passed bool
	r.ces[0].SetController(prog(&Instr{
		Op: OpSync, Addr: 64, Test: network.TestGT, TestArg: 0,
		Mut: network.OpSub, Value: 1,
		OnResult: func(v int64, p bool, _ int64) { got = v; passed = p },
	}))
	r.run(t, 1000)
	if got != 5 || !passed {
		t.Errorf("sync returned %d/%v, want 5/true", got, passed)
	}
	if v := r.mem.Store().Load(64); v != 4 {
		t.Errorf("location = %d, want 4", v)
	}
}

func TestStoreAndFence(t *testing.T) {
	r := newRig(t, 1)
	r.ces[0].SetController(prog(
		&Instr{Op: OpGlobalStore, Addr: 123, Value: 9},
		&Instr{Op: OpFence},
	))
	r.run(t, 1000)
	if v := r.mem.Store().Load(123); v != 9 {
		t.Errorf("stored %d, want 9", v)
	}
}

// vecRate runs a single-CE vector op and returns achieved flops/cycle.
func vecRate(t *testing.T, in *Instr) float64 {
	r := newRig(t, 1)
	r.ces[0].SetController(prog(in))
	r.run(t, 2_000_000)
	return float64(r.ces[0].Flops()) / float64(r.eng.Cycle())
}

func TestVectorRegisterOnlyNearPeak(t *testing.T) {
	// Pure register-register vector work: 2 flops/cycle minus startup.
	rate := vecRate(t, &Instr{Op: OpVector, N: 320, Flops: 2})
	// Effective peak with startup 12 per 32-strip: 2 * 32/44 = 1.45.
	if rate < 1.3 || rate > 1.6 {
		t.Errorf("register-vector rate %.3f flops/cycle, want ≈1.45", rate)
	}
}

func TestVectorGlobalNoPrefetchMatchesPaperAnchor(t *testing.T) {
	// GM/no-pref: 2 outstanding × 13-cycle latency ⇒ 0.154 words/cycle ⇒
	// with 2 chained flops/word ≈ 0.31 flops/cycle ≈ 1.81 MFLOPS —
	// the Table 1 anchor (14.5 MFLOPS on 8 CEs).
	rate := vecRate(t, &Instr{
		Op: OpVector, N: 256, Flops: 2,
		Srcs: []Stream{{Space: SpaceGlobal, Base: 0, Stride: 1}},
	})
	mflops := rate * params.CyclesPerSecond / 1e6
	if math.Abs(mflops-1.81) > 0.25 {
		t.Errorf("GM/no-pref = %.2f MFLOPS/CE, want ≈1.81", mflops)
	}
}

func TestVectorGlobalPrefetchStreams(t *testing.T) {
	// GM/pref with large blocks: consumption near 1 word/cycle ⇒ close
	// to 2 flops/cycle minus startup and block re-arm bubbles.
	rate := vecRate(t, &Instr{
		Op: OpVector, N: 512, Flops: 2,
		Srcs: []Stream{{Space: SpaceGlobal, Base: 0, Stride: 1, PrefBlock: 256}},
	})
	mflops := rate * params.CyclesPerSecond / 1e6
	if mflops < 6.0 {
		t.Errorf("GM/pref = %.2f MFLOPS/CE, want > 6 (prefetch must stream)", mflops)
	}
	// Paper: prefetch gains ≈3.5× over no-pref on one cluster.
	if gain := mflops / 1.81; gain < 3.0 || gain > 6.0 {
		t.Errorf("prefetch gain %.2f×, want ≈3.5×", gain)
	}
}

func TestVectorSmallPrefetchBlocksSlower(t *testing.T) {
	big := vecRate(t, &Instr{
		Op: OpVector, N: 512, Flops: 2,
		Srcs: []Stream{{Space: SpaceGlobal, Stride: 1, PrefBlock: 256}},
	})
	small := vecRate(t, &Instr{
		Op: OpVector, N: 512, Flops: 2,
		Srcs: []Stream{{Space: SpaceGlobal, Stride: 1, PrefBlock: 32}},
	})
	if small >= big {
		t.Errorf("32-word blocks (%.3f) not slower than 256-word blocks (%.3f)", small, big)
	}
	if small < big*0.5 {
		t.Errorf("32-word blocks (%.3f) implausibly slow vs %.3f", small, big)
	}
}

func TestVectorClusterCached(t *testing.T) {
	// Cluster-space stream: after the first touch the line is resident;
	// a second pass runs at cache speed.
	r := newRig(t, 1)
	stream := Stream{Space: SpaceCluster, Base: 0, Stride: 1}
	r.ces[0].SetController(prog(
		&Instr{Op: OpVector, N: 256, Flops: 0, Srcs: []Stream{stream}},
	))
	r.run(t, 1_000_000)
	warm := r.eng.Cycle()
	_ = warm
	r2 := newRig(t, 1)
	r2.ces[0].SetController(prog(
		&Instr{Op: OpVector, N: 256, Flops: 0, Srcs: []Stream{stream}},
		&Instr{Op: OpVector, N: 256, Flops: 2, Srcs: []Stream{stream}},
	))
	r2.run(t, 1_000_000)
	rate := float64(r2.ces[0].Flops()) / float64(r2.eng.Cycle())
	// Second pass runs at cache speed; the cold fill pass dilutes the
	// average over both passes.
	if rate < 0.4 {
		t.Errorf("cached cluster rate %.3f flops/cycle over both passes, want > 0.4", rate)
	}
}

func TestVectorGlobalStoreWritesValues(t *testing.T) {
	r := newRig(t, 1)
	r.ces[0].SetController(prog(
		&Instr{Op: OpVector, N: 64, Flops: 1,
			Dst: &Stream{Space: SpaceGlobal, Base: 9000, Stride: 1}},
		&Instr{Op: OpFence},
	))
	r.run(t, 100000)
	// Timing-only store data (zero), but the ack count must balance.
	if r.ces[0].storesOutstanding != 0 {
		t.Errorf("%d store acks missing", r.ces[0].storesOutstanding)
	}
}

func TestEightCEsShareMemorySystem(t *testing.T) {
	// 8 CEs each streaming prefetched loads: aggregate limited by the
	// network/memory, so per-CE rate dips below the solo rate.
	solo := vecRate(t, &Instr{
		Op: OpVector, N: 512, Flops: 2,
		Srcs: []Stream{{Space: SpaceGlobal, Stride: 1, PrefBlock: 256}},
	})
	r := newRig(t, 8)
	for i, c := range r.ces {
		base := uint64(i * 4096)
		c.SetController(prog(&Instr{
			Op: OpVector, N: 512, Flops: 2,
			Srcs: []Stream{{Space: SpaceGlobal, Base: base, Stride: 1, PrefBlock: 256}},
		}))
	}
	r.run(t, 2_000_000)
	var total int64
	for _, c := range r.ces {
		total += c.Flops()
	}
	per := float64(total) / float64(r.eng.Cycle()) / 8
	if per > solo {
		t.Errorf("per-CE rate %.3f with 8 CEs exceeds solo %.3f", per, solo)
	}
	if per < solo*0.3 {
		t.Errorf("per-CE rate %.3f collapsed vs solo %.3f", per, solo)
	}
}

func TestProgramControllerSequences(t *testing.T) {
	r := newRig(t, 2)
	order := make(map[int][]int)
	mk := func(ce, tag int) *Instr {
		return &Instr{Op: OpScalar, Cycles: 1, OnDone: func(int64) {
			order[ce] = append(order[ce], tag)
		}}
	}
	r.ces[0].SetController(prog(mk(0, 1), mk(0, 2), mk(0, 3)))
	r.ces[1].SetController(prog(mk(1, 10), mk(1, 20)))
	r.run(t, 1000)
	if len(order[0]) != 3 || order[0][0] != 1 || order[0][2] != 3 {
		t.Errorf("ce0 order = %v", order[0])
	}
	if len(order[1]) != 2 || order[1][1] != 20 {
		t.Errorf("ce1 order = %v", order[1])
	}
}

func TestVectorValidation(t *testing.T) {
	cases := []struct {
		name string
		in   *Instr
	}{
		{"zero N", &Instr{Op: OpVector, N: 0}},
		{"pref cluster", &Instr{Op: OpVector, N: 4, Srcs: []Stream{{Space: SpaceCluster, PrefBlock: 8}}}},
		{"two PFUs", &Instr{Op: OpVector, N: 4, Srcs: []Stream{
			{Space: SpaceGlobal, PrefBlock: 8}, {Space: SpaceGlobal, PrefBlock: 8}}}},
		{"huge unprefetched", &Instr{Op: OpVector, N: 1 << 17, Srcs: []Stream{{Space: SpaceGlobal}}}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", tc.name)
				}
			}()
			r := newRig(t, 1)
			r.ces[0].SetController(prog(tc.in))
			r.eng.Run(10)
		}()
	}
}
