package ce

import (
	"fmt"

	"cedar/internal/network"
)

// startVector initializes stream state for the current OpVector. The
// stream and availability slices are reused across instructions: they
// grow once to the widest vector the program issues and then stay put,
// keeping this per-instruction path off the allocator. Panics if the
// instruction is malformed (N < 1, an unprefetched memory stream longer
// than the 16-bit element tag space, prefetch on a non-global stream, or
// more than one prefetched stream) — controller bugs, not runtime
// conditions.
func (c *CE) startVector(cycle int64) {
	in := c.cur
	if in.N < 1 {
		panic("ce: vector with N < 1")
	}
	vs := &c.vec
	streams := vs.streams[:0]
	freeAt := vs.freeAt[:0]
	*vs = vecState{
		dst:      in.Dst,
		n:        in.N,
		flopsPer: in.Flops,
		pipeFree: cycle,
	}
	vs.freeAt = freeAt
	if cap(streams) < len(in.Srcs) {
		streams = make([]streamState, len(in.Srcs)) //lint:allow hotalloc grows once to the widest instruction, then reused
	}
	vs.streams = streams[:len(in.Srcs)]
	prefs := 0
	for i, s := range in.Srcs {
		st := &vs.streams[i]
		avail := st.avail[:0]
		*st = streamState{s: s}
		if s.Space != SpaceNone {
			if cap(avail) < in.N {
				avail = make([]int64, in.N) //lint:allow hotalloc grows once to the longest vector, then reused
			}
			st.avail = avail[:in.N]
			for e := range st.avail {
				st.avail[e] = -1
			}
		}
		if s.Space != SpaceNone && s.PrefBlock == 0 && in.N > 0xffff {
			panic("ce: unprefetched memory stream longer than 65535 elements; strip-mine or prefetch")
		}
		if s.PrefBlock > 0 {
			if s.Space != SpaceGlobal {
				panic("ce: prefetch on non-global stream")
			}
			prefs++
			if prefs > 1 {
				panic("ce: more than one prefetched stream (one PFU per CE)")
			}
			c.armBlock(st, 0, cycle)
		}
	}
}

// armBlock arms and fires the PFU for the block starting at element first.
// Panics if the PFU rejects the arm or the fire — the block geometry comes
// from the instruction, so a rejection is a controller bug.
func (c *CE) armBlock(st *streamState, first int, cycle int64) {
	n := st.s.PrefBlock
	if first+n > c.vec.n {
		n = c.vec.n - first
	}
	st.blockStart = first
	st.blockLen = n
	if err := c.pfu.Arm(n, st.s.Stride, nil); err != nil {
		panic(fmt.Sprintf("ce%d: arm: %v", c.ID, err))
	}
	addr := uint64(int64(st.s.Base) + st.s.Stride*int64(first))
	if err := c.pfu.Fire(addr); err != nil {
		panic(fmt.Sprintf("ce%d: fire: %v", c.ID, err))
	}
	// Arming costs a couple of pipeline cycles (the compiler's explicit
	// prefetch instruction immediately before the vector op).
	if c.vec.pipeFree < cycle {
		c.vec.pipeFree = cycle
	}
	c.vec.pipeFree += 2
}

// execVector advances the vector instruction one cycle: issue source
// requests, complete at most one element, and drain pending stores.
func (c *CE) execVector(cycle int64) {
	vs := &c.vec
	in := c.cur

	// Issue phase for each stream.
	for i := range vs.streams {
		c.issueStream(&vs.streams[i], i, cycle)
	}

	// Completion phase: one element per cycle through the vector pipe.
	if vs.completed < vs.n && vs.storesQueued < storePendingCap {
		e := vs.completed
		// Strip-mining: charge startup at each MaxVL boundary.
		if e%c.p.MaxVL == 0 && !vs.stripCharged {
			base := vs.pipeFree
			if base < cycle {
				base = cycle
			}
			vs.pipeFree = base + int64(c.p.VectorStartup)
			vs.stripCharged = true
		}
		// Pipe readiness is checked before operand readiness because
		// elementReady consumes a word from the PFU buffer as a side
		// effect; a consumed word must complete this cycle.
		if vs.pipeFree+1 <= cycle && c.elementReady(e, cycle) {
			c.consumeElement(e, cycle)
			vs.pipeFree = cycle
			vs.completed++
			vs.stripCharged = vs.completed%c.p.MaxVL != 0
			c.flops += vs.flopsPer
			if vs.dst != nil {
				vs.storesQueued++
			}
		}
	}

	// Store phase: issue queued element stores in order.
	c.issueVecStores(cycle)

	// Retirement: all elements completed and all stores issued.
	if vs.completed == vs.n && vs.storesQueued == 0 {
		_ = in
		c.pfu.Finish() // flush the last block to the performance monitor
		c.retire(cycle)
	}
}

// issueStream pushes source requests for a stream as capacity allows.
func (c *CE) issueStream(st *streamState, si int, cycle int64) {
	vs := &c.vec
	switch {
	case st.s.Space == SpaceNone:
		// Register operand: nothing to issue.

	case st.s.PrefBlock > 0:
		// The PFU issues autonomously; re-arm when the block is drained.
		if vs.completed >= st.blockStart+st.blockLen && st.blockStart+st.blockLen < vs.n {
			// All elements of the current block consumed; next block.
			c.armBlock(st, st.blockStart+st.blockLen, cycle)
		}

	case st.s.Space == SpaceGlobal:
		// Plain global loads: at most MaxOutstanding in flight per CE
		// (shared across streams), one issue per cycle through the port.
		keep := vs.freeAt[:0]
		for _, t := range vs.freeAt {
			if t > cycle {
				keep = append(keep, t)
			} else {
				vs.outstanding--
			}
		}
		vs.freeAt = keep
		if st.issued < vs.n && vs.outstanding < c.p.MaxOutstanding {
			e := st.issued
			addr := uint64(int64(st.s.Base) + st.s.Stride*int64(e))
			pkt := c.pool.Get()
			pkt.Kind = network.ReadReq
			pkt.Src = c.Port
			pkt.Dst = c.modFor(addr)
			pkt.Addr = addr
			pkt.Tag = tagKindVec | uint32(si)<<16 | uint32(e&0xffff)
			pkt.Issue = cycle
			if c.fwd.Offer(pkt) {
				st.issued++
				vs.outstanding++
			} else {
				c.pool.Put(pkt)
			}
		}

	case st.s.Space == SpaceCluster:
		// In-order submission through the cluster cache. The tag encodes
		// stream and element exactly like a global vector load's network
		// tag, and CacheDone routes the completion back to the element.
		if st.issued < vs.n && st.clusterInFlight < 4 {
			e := st.issued
			addr := uint64(int64(st.s.Base) + st.s.Stride*int64(e))
			tag := uint64(tagKindVec) | uint64(si)<<16 | uint64(e&0xffff)
			if c.cache.Submit(c.IDInCluster, addr, false, 0, c, tag) {
				st.issued++
				st.clusterInFlight++
			}
		}
	}
}

// vecWakeup reports the earliest cycle the running vector instruction
// needs a tick: issue opportunities and store drains want every cycle,
// slot expiries and operand availability give exact future cycles, and
// phases waiting only on in-flight operands sleep (replies and cache
// completions wake the CE by push).
func (c *CE) vecWakeup(now int64) int64 {
	vs := &c.vec
	if vs.storesQueued > 0 {
		return now // issueVecStores drains every cycle
	}
	w := never
	for i := range vs.streams {
		st := &vs.streams[i]
		switch {
		case st.s.Space == SpaceNone:
		case st.s.PrefBlock > 0:
			if vs.completed >= st.blockStart+st.blockLen && st.blockStart+st.blockLen < vs.n {
				return now // the next block re-arms on the next tick
			}
		case st.s.Space == SpaceGlobal:
			if st.issued < vs.n {
				if vs.outstanding < c.p.MaxOutstanding {
					return now // an issue is attempted every cycle
				}
				for _, t := range vs.freeAt {
					if t < w {
						w = t // an expiring slot enables the next issue
					}
				}
			}
		case st.s.Space == SpaceCluster:
			if st.issued < vs.n && st.clusterInFlight < 4 {
				return now // a submit is attempted every cycle
			}
		}
	}
	// Completion gate for the next element (the store queue is empty
	// here, so the storePendingCap gate cannot block).
	if vs.completed < vs.n {
		e := vs.completed
		if e%c.p.MaxVL == 0 && !vs.stripCharged {
			return now // the strip-startup charge books on the next tick
		}
		t := vs.pipeFree + 1
		ready := true
		for i := range vs.streams {
			st := &vs.streams[i]
			switch {
			case st.s.Space == SpaceNone:
			case st.s.PrefBlock > 0:
				if e < st.blockStart || e >= st.blockStart+st.blockLen {
					return now // block-boundary bookkeeping; a tick resolves it
				}
				if at, ok := c.pfu.NextConsumableAt(); !ok {
					ready = false // word in flight; its delivery wakes us
				} else if at > t {
					t = at
				}
			default:
				if st.avail[e] < 0 {
					ready = false // operand in flight; its completion wakes us
				} else if st.avail[e] > t {
					t = st.avail[e]
				}
			}
		}
		if ready && t < w {
			w = t
		}
	}
	return w
}

// elementReady reports whether every stream has element e available now.
func (c *CE) elementReady(e int, cycle int64) bool {
	for i := range c.vec.streams {
		st := &c.vec.streams[i]
		switch {
		case st.s.Space == SpaceNone:
		case st.s.PrefBlock > 0:
			// Checked at consumption via TryConsume; availability means
			// the PFU's next in-order word is this element and ready.
			if e < st.blockStart || e >= st.blockStart+st.blockLen {
				return false
			}
			if c.pfu.Consumed() != e-st.blockStart {
				return false
			}
			// Peek: we must not consume unless all other streams are
			// also ready, so defer the actual consume.
		default:
			if st.avail[e] < 0 || cycle < st.avail[e] {
				return false
			}
		}
	}
	// Now consume from the PFU if there is a prefetched stream.
	for i := range c.vec.streams {
		st := &c.vec.streams[i]
		if st.s.PrefBlock > 0 {
			if _, ok := c.pfu.TryConsume(cycle); !ok {
				return false
			}
		}
	}
	return true
}

// consumeElement is a hook point for value semantics; timing-only for now.
func (c *CE) consumeElement(e int, cycle int64) {}

// issueVecStores drains the per-element store queue in order.
func (c *CE) issueVecStores(cycle int64) {
	vs := &c.vec
	for vs.storesQueued > 0 {
		e := vs.nextStoreEl
		d := vs.dst
		addr := uint64(int64(d.Base) + d.Stride*int64(e))
		var ok bool
		if d.Space == SpaceCluster {
			ok = c.cache.Submit(c.IDInCluster, addr, true, 0, nil, 0)
		} else {
			ok = c.offerVecStore(addr, cycle)
		}
		if !ok {
			return
		}
		vs.nextStoreEl++
		vs.storesQueued--
	}
}
