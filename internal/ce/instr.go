// Package ce models an Alliant FX/8 computational element as deployed in
// Cedar: a 170 ns pipelined scalar processor with a vector unit (eight
// 32-word registers, 64-bit floating point, register-memory instructions
// with one memory operand, chaining) and a per-CE global-memory interface
// limited to two outstanding requests unless the prefetch unit is used.
//
// CEs do not interpret 68020 machine code; they execute Instrs — an
// abstraction at the level the paper reasons about: scalar work, vector
// operations over memory streams, scalar global accesses, and Cedar
// synchronization instructions. A Controller feeds Instrs to each CE,
// which is how the Cedar Fortran runtime schedules loop iterations.
package ce

import (
	"sync"

	"cedar/internal/network"
)

// Space says where a stream's data lives.
type Space uint8

// Stream address spaces.
const (
	// SpaceNone is a register-resident operand: always available.
	SpaceNone Space = iota
	// SpaceGlobal is Cedar's shared global memory, reached through the
	// forward/reverse networks.
	SpaceGlobal
	// SpaceCluster is the cluster memory behind the shared cache.
	SpaceCluster
)

// Stream describes one vector memory operand.
type Stream struct {
	Space  Space
	Base   uint64 // word address of element 0
	Stride int64  // words between elements
	// PrefBlock selects prefetched access in blocks of this many words
	// (global streams only; at most one prefetched stream per
	// instruction, since a CE has a single PFU). Zero means plain
	// loads limited to the CE's two outstanding requests.
	PrefBlock int
}

// Op is an instruction kind.
type Op uint8

// Instruction kinds.
const (
	// OpScalar models Cycles of scalar computation contributing Flops
	// floating-point operations.
	OpScalar Op = iota
	// OpVector is a strip-mined vector operation of N elements reading
	// Srcs and optionally writing Dst, contributing Flops per element.
	OpVector
	// OpGlobalLoad is a blocking scalar load from global memory.
	OpGlobalLoad
	// OpGlobalStore is a non-blocking scalar store to global memory.
	OpGlobalStore
	// OpSync is a blocking Cedar Test-And-Operate on a global location,
	// executed by the memory module's synchronization processor.
	OpSync
	// OpFence blocks until all of this CE's global stores have been
	// acknowledged (a memory-ordering point in the weakly ordered
	// global memory).
	OpFence
	// OpClusterLoad is a blocking scalar load through the cluster cache.
	OpClusterLoad
	// OpClusterStore is a non-blocking scalar store through the cache.
	OpClusterStore
)

// Instr is one CE instruction.
type Instr struct {
	Op Op

	// OpScalar.
	Cycles int64

	// Flops: total for OpScalar, per element for OpVector.
	Flops int64

	// OpVector.
	N    int
	Srcs []Stream
	Dst  *Stream

	// Scalar memory / sync operations.
	Addr    uint64
	Value   int64
	Test    network.TestOp
	Mut     network.MutOp
	TestArg int64

	// OnResult fires when a load or sync completes, with the returned
	// value (and for sync, whether the test passed).
	OnResult func(value int64, passed bool, cycle int64)

	// OnDone fires when the instruction retires.
	OnDone func(cycle int64)
}

// Status is a Controller response.
type Status uint8

// Controller responses.
const (
	// Ready: the returned instruction should execute now.
	Ready Status = iota
	// Wait: nothing to do this cycle; ask again.
	Wait
	// Finished: this CE has no further work.
	Finished
)

// Controller feeds instructions to a CE. The Cedar Fortran runtime
// implements Controller to schedule loops; tests use canned sequences.
type Controller interface {
	Next(ceID int, cycle int64) (*Instr, Status)
}

// Program is a fixed instruction sequence implementing Controller.
type Program struct {
	Instrs []*Instr
	// mu guards the lazily built position map: CEs in different cluster
	// shards call Next concurrently on an intra-run parallel engine. Each
	// CE only ever touches its own entry, so the values — and therefore
	// the simulated behavior — are schedule-independent.
	mu  sync.Mutex
	pos map[int]int
}

// Next implements Controller: every CE runs the same sequence privately.
func (p *Program) Next(ceID int, cycle int64) (*Instr, Status) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pos == nil {
		p.pos = make(map[int]int) //lint:allow hotalloc one-time lazy initialisation per program, not per-cycle work
	}
	i := p.pos[ceID]
	if i >= len(p.Instrs) {
		return nil, Finished
	}
	p.pos[ceID] = i + 1
	return p.Instrs[i], Ready
}
