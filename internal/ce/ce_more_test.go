package ce

import (
	"testing"

	"cedar/internal/network"
)

func TestClusterScalarLoadStore(t *testing.T) {
	r := newRig(t, 1)
	var got int64 = -1
	r.ces[0].SetController(prog(
		&Instr{Op: OpClusterStore, Addr: 40, Value: 55},
		&Instr{Op: OpClusterLoad, Addr: 40, OnResult: func(v int64, _ bool, cy int64) {
			got = r.cm.Store().Load(40)
		}},
	))
	r.run(t, 10000)
	if got != 55 {
		t.Fatalf("cluster load observed %d, want 55", got)
	}
}

func TestClusterLoadPaysCachePath(t *testing.T) {
	r := newRig(t, 1)
	r.ces[0].SetController(prog(&Instr{Op: OpClusterLoad, Addr: 0}))
	r.run(t, 10000)
	// Cold access: cache miss + cluster memory latency; far less than a
	// global load but not free.
	if cy := r.eng.Cycle(); cy < 5 || cy > 60 {
		t.Errorf("cold cluster load took %d cycles", cy)
	}
}

func TestVectorTwoSourceStreams(t *testing.T) {
	// A two-operand vector op (wpf = 1): both streams must arrive, and
	// only one may use the PFU. Throughput is bounded by the unprefetched
	// stream's two-outstanding limit.
	r := newRig(t, 1)
	r.ces[0].SetController(prog(&Instr{
		Op: OpVector, N: 64, Flops: 2,
		Srcs: []Stream{
			{Space: SpaceGlobal, Base: 0, Stride: 1, PrefBlock: 64},
			{Space: SpaceGlobal, Base: 4096, Stride: 1},
		},
	}))
	r.run(t, 100000)
	rate := float64(r.ces[0].Flops()) / float64(r.eng.Cycle())
	// ≈2 flops per 6.5 cycles (the plain stream's 2/13 word rate).
	if rate > 0.5 {
		t.Errorf("two-stream rate %.3f flops/cycle; unprefetched stream should bound it", rate)
	}
	if rate < 0.15 {
		t.Errorf("two-stream rate %.3f flops/cycle implausibly low", rate)
	}
}

func TestVectorClusterDestination(t *testing.T) {
	// Global→cluster block move: the GM/cache copy phase's instruction.
	r := newRig(t, 1)
	r.ces[0].SetController(prog(&Instr{
		Op: OpVector, N: 128, Flops: 0,
		Srcs: []Stream{{Space: SpaceGlobal, Base: 0, Stride: 1, PrefBlock: 128}},
		Dst:  &Stream{Space: SpaceCluster, Base: 0, Stride: 1},
	}))
	r.run(t, 100000)
	st := r.cch.Stats()
	if st.Hits+st.Misses == 0 {
		t.Error("cluster store stream never touched the cache")
	}
}

func TestFenceWaitsForAllStores(t *testing.T) {
	r := newRig(t, 1)
	var fenceAt, lastStore int64
	instrs := []*Instr{}
	for i := 0; i < 16; i++ {
		instrs = append(instrs, &Instr{Op: OpGlobalStore, Addr: uint64(i * 7),
			OnDone: func(cy int64) { lastStore = cy }})
	}
	instrs = append(instrs, &Instr{Op: OpFence, OnDone: func(cy int64) { fenceAt = cy }})
	r.ces[0].SetController(prog(instrs...))
	r.run(t, 100000)
	if fenceAt <= lastStore {
		t.Errorf("fence completed at %d, before the last store issue at %d finished acking",
			fenceAt, lastStore)
	}
	// Every store must be visible in memory.
	for i := 0; i < 16; i++ {
		// Timing-only values (zero) — presence is what the ack proves;
		// storesOutstanding reaching zero is checked by Idle already.
		_ = i
	}
}

func TestWaitAndActiveCycleAccounting(t *testing.T) {
	r := newRig(t, 1)
	c := r.ces[0]
	c.SetController(prog(&Instr{Op: OpScalar, Cycles: 50}))
	r.run(t, 1000)
	if c.ActiveCycles() < 50 {
		t.Errorf("active cycles %d < 50", c.ActiveCycles())
	}
	if c.DoneAt() <= 0 {
		t.Errorf("DoneAt = %d", c.DoneAt())
	}
}

type waitThenRun struct {
	waitTicks int
	given     bool
}

func (w *waitThenRun) Next(ceID int, cycle int64) (*Instr, Status) {
	if w.waitTicks > 0 {
		w.waitTicks--
		return nil, Wait
	}
	if !w.given {
		w.given = true
		return &Instr{Op: OpScalar, Cycles: 5}, Ready
	}
	return nil, Finished
}

func TestControllerWaitCounted(t *testing.T) {
	r := newRig(t, 1)
	c := r.ces[0]
	c.SetController(&waitThenRun{waitTicks: 30})
	r.run(t, 1000)
	if c.WaitCycles() < 25 {
		t.Errorf("wait cycles %d, want ≈30", c.WaitCycles())
	}
}

func TestSyncTestFailureReported(t *testing.T) {
	r := newRig(t, 1)
	r.mem.Store().StoreWord(9, 5)
	var passed = true
	r.ces[0].SetController(prog(&Instr{
		Op: OpSync, Addr: 9, Test: network.TestEQ, TestArg: 0,
		Mut: network.OpWrite, Value: 1,
		OnResult: func(_ int64, p bool, _ int64) { passed = p },
	}))
	r.run(t, 1000)
	if passed {
		t.Error("TAS on a held lock should fail")
	}
	if v := r.mem.Store().Load(9); v != 5 {
		t.Errorf("failed TAS mutated the location to %d", v)
	}
}

func TestVectorRegisterOnlyNoTraffic(t *testing.T) {
	r := newRig(t, 1)
	r.ces[0].SetController(prog(&Instr{Op: OpVector, N: 64, Flops: 2}))
	r.run(t, 10000)
	if got := r.mem.Stats().Reads; got != 0 {
		t.Errorf("register-register vector issued %d memory reads", got)
	}
}
