package cache

import (
	"testing"

	"cedar/internal/cmem"
	"cedar/internal/params"
)

// doneFunc adapts a completion closure to the cache's Sink interface so
// tests can keep asserting on completion cycles.
type doneFunc func(cy int64)

func (f doneFunc) CacheDone(_ uint64, cy int64) { f(cy) }

type rig struct {
	p     params.Machine
	mem   *cmem.Memory
	c     *Cache
	cycle int64
}

func newRig() *rig {
	p := params.Default()
	mem := cmem.New(p.CMemWordsPerCyc, p.CMemLatency, nil)
	return &rig{p: p, mem: mem, c: New(p, p.CEsPerCluster, mem)}
}

func (r *rig) tick() {
	r.c.Tick(r.cycle)
	r.mem.Tick(r.cycle)
	r.cycle++
}

func (r *rig) runUntilIdle(t *testing.T, limit int) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if r.c.Idle() && r.mem.Idle() {
			return
		}
		r.tick()
	}
	t.Fatalf("not idle after %d cycles", limit)
}

func TestMissThenHit(t *testing.T) {
	r := newRig()
	var missDone, hitDone int64 = -1, -1
	if !r.c.Submit(0, 100, false, 0, doneFunc(func(cy int64) { missDone = cy }), 0) {
		t.Fatal("submit refused")
	}
	r.runUntilIdle(t, 1000)
	if missDone < 0 {
		t.Fatal("miss never completed")
	}
	// Miss cost ≥ cluster memory latency.
	if missDone < int64(r.p.CMemLatency) {
		t.Errorf("miss completed at %d, faster than cluster memory latency %d", missDone, r.p.CMemLatency)
	}
	if !r.c.Contains(100) {
		t.Error("line not resident after fill")
	}
	start := r.cycle
	r.c.Submit(0, 101, false, 0, doneFunc(func(cy int64) { hitDone = cy }), 0) // same 4-word line
	r.runUntilIdle(t, 1000)
	if hitDone < 0 {
		t.Fatal("hit never completed")
	}
	if lat := hitDone - start; lat > int64(r.p.CacheHitLatency)+1 {
		t.Errorf("hit latency %d, want ≈%d", lat, r.p.CacheHitLatency)
	}
	st := r.c.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 miss 1 hit", st)
	}
}

func TestWriteReadThroughStore(t *testing.T) {
	r := newRig()
	ok := r.c.Submit(2, 555, true, 42, nil, 0)
	if !ok {
		t.Fatal("refused")
	}
	r.runUntilIdle(t, 1000)
	if got := r.mem.Store().Load(555); got != 42 {
		t.Fatalf("store = %d, want 42", got)
	}
	var got int64
	r.c.Submit(3, 555, false, 0, doneFunc(func(int64) { got = r.mem.Store().Load(555) }), 0)
	r.runUntilIdle(t, 1000)
	if got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
}

func TestMissesFoldIntoMSHR(t *testing.T) {
	r := newRig()
	done := 0
	for i := 0; i < 4; i++ {
		addr := uint64(200 + i) // same 32-byte line (4 words)
		if !r.c.Submit(i%2, addr, false, 0, doneFunc(func(int64) { done++ }), 0) {
			t.Fatal("refused")
		}
	}
	r.runUntilIdle(t, 1000)
	if done != 4 {
		t.Fatalf("%d completions, want 4", done)
	}
	st := r.c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one line)", st.Misses)
	}
	if st.MissAttach != 3 {
		t.Errorf("attached = %d, want 3", st.MissAttach)
	}
}

func TestLockupFreeTwoMissesPerCE(t *testing.T) {
	r := newRig()
	// Three distinct lines from one CE: the third miss must wait for a
	// miss slot, so completions arrive in two waves.
	var times []int64
	for i := 0; i < 3; i++ {
		addr := uint64(i * 1024)
		if !r.c.Submit(0, addr, false, 0, doneFunc(func(cy int64) { times = append(times, cy) }), 0) {
			t.Fatal("refused")
		}
	}
	r.runUntilIdle(t, 1000)
	if len(times) != 3 {
		t.Fatalf("%d completions, want 3", len(times))
	}
	if r.c.Stats().StallCyc == 0 {
		t.Error("third miss should have stalled for a miss slot")
	}
	if times[2] <= times[1] {
		t.Error("third miss should complete after the first wave")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	p := params.Default()
	p.CacheBytes = 4 * p.CacheLineBytes // tiny 4-line cache to force eviction
	mem := cmem.New(p.CMemWordsPerCyc, p.CMemLatency, nil)
	c := New(p, 1, mem)
	cycle := int64(0)
	step := func() { c.Tick(cycle); mem.Tick(cycle); cycle++ }
	run := func() {
		for i := 0; i < 1000 && !(c.Idle() && mem.Idle()); i++ {
			step()
		}
	}
	c.Submit(0, 0, true, 7, nil, 0) // dirty line 0
	run()
	// Line 4*lineWords maps to the same frame in a 4-line cache.
	conflict := uint64(4 * (p.CacheLineBytes / 8) * 4)
	_ = conflict
	c.Submit(0, uint64(4*4), false, 0, nil, 0) // line index 4 -> frame 0
	run()
	if c.Stats().WriteBacks != 1 {
		t.Errorf("write-backs = %d, want 1", c.Stats().WriteBacks)
	}
	if c.Contains(0) {
		t.Error("victim line still resident")
	}
}

func TestQueueBackPressure(t *testing.T) {
	r := newRig()
	n := 0
	for i := 0; ; i++ {
		if !r.c.Submit(0, uint64(i), false, 0, nil, 0) {
			break
		}
		n++
		if n > 100 {
			t.Fatal("queue never filled")
		}
	}
	if n != queueCap {
		t.Errorf("accepted %d before refusing, want %d", n, queueCap)
	}
	r.runUntilIdle(t, 10000)
	if !r.c.Submit(0, 0, false, 0, nil, 0) {
		t.Error("still refusing after drain")
	}
	r.runUntilIdle(t, 1000)
}

func TestBandwidthEightWordsPerCycle(t *testing.T) {
	// All 8 CEs streaming hits: aggregate ≈8 words/cycle.
	r := newRig()
	// Warm one line per CE region, then stream hits.
	for ce := 0; ce < 8; ce++ {
		r.c.Submit(ce, uint64(ce*4), false, 0, nil, 0)
	}
	r.runUntilIdle(t, 1000)
	done := 0
	const perCE = 100
	pending := make([]int, 8)
	issued := make([]int, 8)
	start := r.cycle
	for done < 8*perCE {
		for ce := 0; ce < 8; ce++ {
			ce := ce
			if issued[ce] < perCE && pending[ce] < queueCap {
				addr := uint64(ce*4) + uint64(issued[ce]%4)
				if r.c.Submit(ce, addr, false, 0, doneFunc(func(int64) { done++; pending[ce]-- }), 0) {
					issued[ce]++
					pending[ce]++
				}
			}
		}
		r.tick()
		if r.cycle-start > 10000 {
			t.Fatal("stalled")
		}
	}
	elapsed := r.cycle - start
	perCycle := float64(8*perCE) / float64(elapsed)
	if perCycle < 6.5 {
		t.Errorf("hit bandwidth %.2f words/cycle, want ≈8", perCycle)
	}
}

func TestSingleCECappedAtTwoWordsPerCycle(t *testing.T) {
	r := newRig()
	r.c.Submit(0, 0, false, 0, nil, 0)
	r.runUntilIdle(t, 1000)
	done := 0
	issued := 0
	pendingCount := 0
	start := r.cycle
	const n = 100
	for done < n {
		if issued < n && pendingCount < queueCap {
			if r.c.Submit(0, uint64(issued%4), false, 0, doneFunc(func(int64) { done++; pendingCount-- }), 0) {
				issued++
				pendingCount++
			}
		}
		r.tick()
		if r.cycle-start > 10000 {
			t.Fatal("stalled")
		}
	}
	elapsed := r.cycle - start
	perCycle := float64(n) / float64(elapsed)
	if perCycle > 2.2 {
		t.Errorf("single CE got %.2f words/cycle, cap is 2", perCycle)
	}
}

func TestSetAssociativityAvoidsConflictMisses(t *testing.T) {
	// Two lines that map to the same set thrash a direct-mapped cache
	// but coexist in a 2-way set.
	run := func(ways int) int64 {
		p := params.Default()
		p.CacheBytes = 4 * p.CacheLineBytes // 4 lines total
		p.CacheWays = ways
		mem := cmem.New(p.CMemWordsPerCyc, p.CMemLatency, nil)
		c := New(p, 1, mem)
		cycle := int64(0)
		run := func() {
			for i := 0; i < 2000 && !(c.Idle() && mem.Idle()); i++ {
				c.Tick(cycle)
				mem.Tick(cycle)
				cycle++
			}
		}
		lineWords := uint64(p.CacheLineBytes / 8)
		sets := uint64(4 / ways)
		a := uint64(0)
		b := sets * lineWords // same set as a, different tag
		for rep := 0; rep < 10; rep++ {
			c.Submit(0, a, false, 0, nil, 0)
			run()
			c.Submit(0, b, false, 0, nil, 0)
			run()
		}
		return c.Stats().Misses
	}
	direct := run(1)
	twoWay := run(2)
	if direct < 15 {
		t.Errorf("direct-mapped misses %d; alternating conflict lines should thrash", direct)
	}
	if twoWay > 4 {
		t.Errorf("2-way misses %d; both lines should coexist", twoWay)
	}
}

func TestLRUWithinSet(t *testing.T) {
	// 2-way, one set: touching A, B, A then C must evict B (LRU), not A.
	p := params.Default()
	p.CacheBytes = 2 * p.CacheLineBytes
	p.CacheWays = 2
	mem := cmem.New(p.CMemWordsPerCyc, p.CMemLatency, nil)
	c := New(p, 1, mem)
	cycle := int64(0)
	run := func() {
		for i := 0; i < 2000 && !(c.Idle() && mem.Idle()); i++ {
			c.Tick(cycle)
			mem.Tick(cycle)
			cycle++
		}
	}
	lw := uint64(p.CacheLineBytes / 8)
	a, b, cc := uint64(0), 1*lw, 2*lw
	for _, addr := range []uint64{a, b, a, cc} {
		c.Submit(0, addr, false, 0, nil, 0)
		run()
	}
	if !c.Contains(a) {
		t.Error("A (recently used) evicted")
	}
	if c.Contains(b) {
		t.Error("B (least recently used) survived")
	}
	if !c.Contains(cc) {
		t.Error("C not installed")
	}
}
