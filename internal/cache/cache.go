// Package cache models the Alliant FX/8 four-way interleaved shared cache:
// 512 KB, 32-byte lines, physically addressed, write-back, and lockup-free
// with two outstanding misses per CE. Its bandwidth is eight 64-bit words
// per instruction cycle — one input stream per vector pipe in each of the
// eight CEs — while the cluster memory behind it provides half of that.
//
// The model keeps a real tag array (set-associative with LRU replacement;
// params.CacheWays, direct-mapped by default) so capacity and conflict
// behaviour are genuine, but reads data through the shared backing store;
// the cache's job in the simulation is timing, the store's is values.
package cache

import (
	"fmt"

	"cedar/internal/cmem"
	"cedar/internal/params"
)

// invalidTag marks an empty cache frame.
const invalidTag = ^uint64(0)

// Sink receives word-access completions. Completions carry the
// submitter's tag instead of a per-request closure so that the CE's
// per-cycle submissions allocate nothing (the CE encodes which operation
// and element the access belongs to in the tag and implements CacheDone
// once).
type Sink interface {
	CacheDone(tag uint64, cycle int64)
}

type request struct {
	addr  uint64
	write bool
	value int64
	sink  Sink
	tag   uint64
}

type frame struct {
	tag   uint64 // line address, or invalidTag
	dirty bool
	used  int64 // last-touch stamp for LRU within a set
}

type mshr struct {
	owner   int // CE whose miss allocated the entry
	waiting []request
}

// Cache is one cluster's shared cache in front of its cluster memory.
type Cache struct {
	p   params.Machine
	mem *cmem.Memory

	nCE       int
	lineWords uint64
	numSets   uint64
	ways      int
	clock     int64 // LRU stamp source

	frames   []frame
	queues   [][]request
	missOut  []int
	mshrs    map[uint64]*mshr
	mshrFree []*mshr // retired entries, reused so misses stop allocating

	firing []firing
	stats  Stats
	// lastTick is the last executed cycle, for exact per-cycle counter
	// accounting across engine jumps: a sleeping cache's state is frozen
	// (Submit and fills wake it), so skipped cycles contribute gap × the
	// frozen classification.
	lastTick int64
	wake     func(at int64)
}

// never mirrors sim.Never without importing sim (cache sits below it in
// the layering DAG).
const never = int64(1<<63 - 1)

type firing struct {
	at   int64
	sink Sink
	tag  uint64
}

// Stats holds cumulative cache counters. BusyCyc and WaitCyc classify
// each cache-cycle into at most one bucket (by the state at tick entry),
// so busy+stall never exceeds elapsed cycles and the attribution
// conservation law holds exactly.
type Stats struct {
	Hits       int64
	Misses     int64
	MissAttach int64 // requests folded into an in-flight fill
	WriteBacks int64
	StallCyc   int64 // CE-cycles a queue head waited for a miss slot (events)
	BusyCyc    int64 // cycles actively serving queued requests
	// WaitCyc counts cycles with empty queues but outstanding misses or
	// pending completions — the cache waiting on cluster memory.
	WaitCyc int64
}

// New builds the cache for nCE client CEs over the given cluster memory.
// Panics if the parameterised geometry is degenerate (a line smaller
// than a word, or fewer lines than ways).
func New(p params.Machine, nCE int, mem *cmem.Memory) *Cache {
	lineWords := uint64(p.CacheLineBytes / params.WordBytes)
	if lineWords == 0 {
		panic("cache: line smaller than a word")
	}
	ways := p.CacheWays
	if ways < 1 {
		ways = 1
	}
	numLines := uint64(p.CacheBytes / p.CacheLineBytes)
	numSets := numLines / uint64(ways)
	if numSets == 0 {
		panic("cache: fewer lines than ways")
	}
	c := &Cache{
		p:         p,
		mem:       mem,
		nCE:       nCE,
		lineWords: lineWords,
		numSets:   numSets,
		ways:      ways,
		frames:    make([]frame, numSets*uint64(ways)),
		queues:    make([][]request, nCE),
		missOut:   make([]int, nCE),
		mshrs:     make(map[uint64]*mshr),
	}
	for i := range c.frames {
		c.frames[i].tag = invalidTag
	}
	c.lastTick = -1
	return c
}

// queueCap bounds each CE's pending requests at the cache.
const queueCap = 8

// Stats returns cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// MSHRInUse returns the number of outstanding miss lines — an occupancy
// gauge for the observability hub.
func (c *Cache) MSHRInUse() int { return len(c.mshrs) }

// QueuedRequests returns the word accesses waiting in per-CE queues.
func (c *Cache) QueuedRequests() int {
	n := 0
	for _, q := range c.queues {
		n += len(q)
	}
	return n
}

// Submit enqueues a word access for a CE. sink.CacheDone(tag, cycle)
// fires when the word is available (reads) or accepted (writes); sink may
// be nil for fire-and-forget stores. It returns false when the CE's queue
// is full; the caller retries next cycle. Panics if ce is out of range —
// a wiring bug, not a runtime condition.
func (c *Cache) Submit(ce int, addr uint64, write bool, value int64, sink Sink, tag uint64) bool {
	if ce < 0 || ce >= c.nCE {
		panic(fmt.Sprintf("cache: CE %d out of range", ce))
	}
	if len(c.queues[ce]) >= queueCap {
		return false
	}
	c.queues[ce] = append(c.queues[ce], request{addr: addr, write: write, value: value, sink: sink, tag: tag})
	if c.wake != nil {
		c.wake(0) // clamps to the currently executing cycle
	}
	return true
}

// SetWaker installs the engine wake callback; Submit and fill use it to
// rouse a sleeping cache. Until one is wired the cache never sleeps.
func (c *Cache) SetWaker(wake func(at int64)) { c.wake = wake }

// NextWakeup implements sim.Sleeper: now while requests are queued (one
// round-robin pass per cycle), the earliest pending completion
// otherwise. Outstanding misses alone need no ticks — the cluster
// memory's FillDone callback wakes the cache when the line lands.
func (c *Cache) NextWakeup(now int64) int64 {
	if c.wake == nil {
		return now
	}
	for _, q := range c.queues {
		if len(q) > 0 {
			return now
		}
	}
	w := never
	for i := range c.firing {
		if at := c.firing[i].at; at < w {
			w = at
		}
	}
	if w < now {
		return now
	}
	return w
}

// Idle reports whether no requests are queued, in flight, or completing.
func (c *Cache) Idle() bool {
	if len(c.mshrs) != 0 || len(c.firing) != 0 {
		return false
	}
	for _, q := range c.queues {
		if len(q) != 0 {
			return false
		}
	}
	return true
}

// set returns the frames of the set holding line.
func (c *Cache) set(line uint64) []frame {
	s := (line % c.numSets) * uint64(c.ways)
	return c.frames[s : s+uint64(c.ways)]
}

// lookup returns the frame holding line, or nil.
func (c *Cache) lookup(line uint64) *frame {
	set := c.set(line)
	for i := range set {
		if set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

// victim returns the set's LRU frame.
func (c *Cache) victim(line uint64) *frame {
	set := c.set(line)
	v := &set[0]
	for i := 1; i < len(set); i++ {
		if set[i].tag == invalidTag {
			return &set[i]
		}
		if set[i].used < v.used {
			v = &set[i]
		}
	}
	return v
}

// Contains reports whether the line holding addr is resident, for tests.
func (c *Cache) Contains(addr uint64) bool {
	return c.lookup(addr/c.lineWords) != nil
}

// Tick serves up to CacheWordsPerCyc requests round-robin across the CE
// queues and fires due completions.
func (c *Cache) Tick(cycle int64) {
	if gap := cycle - c.lastTick - 1; gap > 0 {
		// A sleeping cache has empty queues (an accepted Submit wakes it
		// the same cycle), so the skipped cycles classify purely by the
		// miss/firing set — frozen since the last tick or fill settlement.
		if len(c.mshrs) > 0 || len(c.firing) > 0 {
			c.stats.WaitCyc += gap
		}
	}
	c.lastTick = cycle
	queued := false
	for _, q := range c.queues {
		if len(q) > 0 {
			queued = true
			break
		}
	}
	switch {
	case queued:
		c.stats.BusyCyc++
	case len(c.mshrs) > 0 || len(c.firing) > 0:
		c.stats.WaitCyc++
	}

	if len(c.firing) > 0 {
		keep := c.firing[:0]
		for _, f := range c.firing {
			if f.at <= cycle {
				f.sink.CacheDone(f.tag, cycle)
			} else {
				keep = append(keep, f)
			}
		}
		c.firing = keep
	}

	// One round-robin pass: each CE may be served up to two words per
	// cycle (a load stream plus a store), within the cluster-wide
	// CacheWordsPerCyc budget. The scan start rotates with the cycle
	// number, not a tick counter: arbitration must not depend on how many
	// ticks actually ran, or skipping a sleeping cache's no-op ticks
	// would reorder service relative to the stepped schedule.
	credit := c.p.CacheWordsPerCyc
	start := int((cycle + 1) % int64(c.nCE)) //lint:allow cycleint remainder bounded by nCE, fits int
	for scan := 0; scan < c.nCE && credit > 0; scan++ {
		ce := (start + scan) % c.nCE
		for served := 0; served < 2 && credit > 0 && len(c.queues[ce]) > 0; served++ {
			if !c.serveHead(ce, cycle) {
				c.stats.StallCyc++
				break
			}
			credit--
		}
	}
}

// serveHead attempts the head request of a CE queue. It reports whether a
// request was consumed (hit, write, or miss initiation/attachment).
func (c *Cache) serveHead(ce int, cycle int64) bool {
	q := c.queues[ce]
	r := q[0]
	line := r.addr / c.lineWords
	c.clock++

	if fr := c.lookup(line); fr != nil {
		// Hit.
		c.stats.Hits++
		fr.used = c.clock
		if r.write {
			fr.dirty = true
			c.mem.Store().StoreWord(r.addr, r.value)
			if r.sink != nil {
				c.firing = append(c.firing, firing{at: cycle, sink: r.sink, tag: r.tag})
			}
		} else if r.sink != nil {
			c.firing = append(c.firing, firing{at: cycle + int64(c.p.CacheHitLatency), sink: r.sink, tag: r.tag})
		}
		c.queues[ce] = q[1:]
		return true
	}

	if m, ok := c.mshrs[line]; ok {
		// Fold into the in-flight fill.
		c.stats.MissAttach++
		m.waiting = append(m.waiting, r)
		c.queues[ce] = q[1:]
		return true
	}

	// New miss: needs one of the CE's two miss slots.
	if c.missOut[ce] >= c.p.CacheMissPerCE {
		return false
	}
	c.stats.Misses++
	c.missOut[ce]++
	m := c.getMSHR()
	m.owner = ce
	m.waiting = append(m.waiting, r)
	c.mshrs[line] = m
	c.queues[ce] = q[1:]

	// Evict the set's LRU occupant (write-back if dirty) and fetch.
	fr := c.victim(line)
	if fr.tag != invalidTag && fr.dirty {
		c.stats.WriteBacks++
		c.mem.Submit(int(c.lineWords), nil, 0)
	}
	fr.tag = invalidTag
	fr.dirty = false
	// The cache itself is the fill sink: the tag carries the line, so no
	// per-miss closure is needed.
	c.mem.Submit(int(c.lineWords), c, line)
	return true
}

// FillDone implements cmem.Sink: a line fetch submitted with the line
// address as tag has completed.
func (c *Cache) FillDone(tag uint64, cycle int64) { c.fill(tag, cycle) }

// getMSHR reuses a retired miss entry or makes a new one.
func (c *Cache) getMSHR() *mshr {
	if n := len(c.mshrFree); n > 0 {
		m := c.mshrFree[n-1]
		c.mshrFree[n-1] = nil
		c.mshrFree = c.mshrFree[:n-1]
		return m
	}
	return &mshr{} //lint:allow hotalloc pool refill on first use; steady state reuses retired MSHRs
}

// putMSHR retires a completed miss entry for reuse.
func (c *Cache) putMSHR(m *mshr) {
	m.owner = 0
	m.waiting = m.waiting[:0]
	c.mshrFree = append(c.mshrFree, m)
}

// fill completes a line fetch: installs the tag and releases waiters.
func (c *Cache) fill(line uint64, cycle int64) {
	m := c.mshrs[line]
	if m == nil {
		return
	}
	if gap := cycle - c.lastTick; gap > 0 {
		// Cluster memory ticks after the cache, so a sleeping cache has
		// already skipped its slot this cycle; settle the elapsed cycles
		// (waiting — this very miss was outstanding) before the fill
		// mutates the classification, e.g. a nil-sink store miss whose
		// completion leaves nothing pending.
		c.stats.WaitCyc += gap
		c.lastTick = cycle
	}
	delete(c.mshrs, line)
	c.missOut[m.owner]--
	fr := c.victim(line)
	c.clock++
	fr.tag = line
	fr.dirty = false
	fr.used = c.clock
	earliest := never
	for _, r := range m.waiting {
		if r.write {
			fr.dirty = true
			c.mem.Store().StoreWord(r.addr, r.value)
			if r.sink != nil {
				c.firing = append(c.firing, firing{at: cycle, sink: r.sink, tag: r.tag})
				earliest = cycle
			}
		} else if r.sink != nil {
			at := cycle + int64(c.p.CacheHitLatency)
			c.firing = append(c.firing, firing{at: at, sink: r.sink, tag: r.tag})
			if at < earliest {
				earliest = at
			}
		}
	}
	if earliest != never && c.wake != nil {
		c.wake(earliest)
	}
	c.putMSHR(m)
}
