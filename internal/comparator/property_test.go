package comparator

import (
	"testing"
	"testing/quick"
)

func TestYMPMonotonicityProperties(t *testing.T) {
	y := NewYMP8()
	// More vectorization never slows the one-processor run; more
	// parallel coverage never slows the multiprocessor run.
	f := func(v1, v2, p1, p2 uint8) bool {
		va, vb := float64(v1%100)/100, float64(v2%100)/100
		if va > vb {
			va, vb = vb, va
		}
		pa, pb := float64(p1%100)/100, float64(p2%100)/100
		if pa > pb {
			pa, pb = pb, pa
		}
		base := CodeSummary{Flops: 1e9, VecFrac: va, ParAutoFrac: pa}
		moreVec := base
		moreVec.VecFrac = vb
		morePar := base
		morePar.ParAutoFrac = pb
		return y.OneProcSeconds(moreVec) <= y.OneProcSeconds(base)+1e-12 &&
			y.AutoSeconds(morePar) <= y.AutoSeconds(base)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestYMPEfficiencyBounds(t *testing.T) {
	y := NewYMP8()
	f := func(v, pa uint8) bool {
		c := CodeSummary{Flops: 1e9,
			VecFrac:     float64(v%101) / 100,
			ParAutoFrac: float64(pa%101) / 100,
		}
		e := y.RestructuringEfficiency(c)
		return e >= 1.0/float64(y.Procs)-1e-12 && e <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCM5RateBounds(t *testing.T) {
	c := NewCM5()
	f := func(nRaw uint32, bwSel, pSel uint8) bool {
		n := int(nRaw%1_000_000) + 1000
		bw := []int{3, 5, 7, 11}[bwSel%4]
		p := []int{32, 64, 256, 512}[pSel%4]
		mf := c.BandedMFLOPS(n, bw, p)
		// Aggregate rate is positive and below the partition's compute
		// peak.
		return mf > 0 && mf <= float64(p)*c.NodeMFLOPS+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestCM5EfficiencyMonotoneInN(t *testing.T) {
	c := NewCM5()
	f := func(aRaw, bRaw uint32, pSel uint8) bool {
		a := int(aRaw%500_000) + 1000
		b := int(bRaw%500_000) + 1000
		if a > b {
			a, b = b, a
		}
		p := []int{32, 256, 512}[pSel%3]
		// Bigger problems amortize the fixed latency: efficiency is
		// non-decreasing in N.
		return c.BandedEfficiency(b, 11, p) >= c.BandedEfficiency(a, 11, p)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
