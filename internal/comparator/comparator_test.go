package comparator

import (
	"math"
	"testing"
)

func code(flops int64, vec, pAuto, pHand float64) CodeSummary {
	return CodeSummary{Flops: flops, VecFrac: vec, ParAutoFrac: pAuto, ParHandFrac: pHand, Cray1VecFrac: vec}
}

func TestYMPRatesOrdering(t *testing.T) {
	y := NewYMP8()
	scalarCode := code(1e9, 0.1, 0.1, 0.5)
	vecCode := code(1e9, 0.95, 0.1, 0.5)
	if y.OneProcSeconds(vecCode) >= y.OneProcSeconds(scalarCode) {
		t.Error("vectorized code should run faster")
	}
	if y.AutoSeconds(vecCode) >= y.OneProcSeconds(vecCode) {
		t.Error("autotasking should not slow a code down")
	}
	if y.HandSeconds(vecCode) >= y.AutoSeconds(vecCode) {
		t.Error("hand parallelization (0.5 > 0.1) should beat autotasking")
	}
}

func TestYMPAmdahlLimit(t *testing.T) {
	y := NewYMP8()
	c := code(1e9, 0.9, 1.0, 1.0)
	sp := y.OneProcSeconds(c) / y.AutoSeconds(c)
	if math.Abs(sp-8) > 1e-9 {
		t.Errorf("fully parallel speedup %v, want 8", sp)
	}
	if eff := y.RestructuringEfficiency(c); math.Abs(eff-1) > 1e-9 {
		t.Errorf("efficiency %v, want 1", eff)
	}
	c0 := code(1e9, 0.9, 0, 0)
	if eff := y.RestructuringEfficiency(c0); math.Abs(eff-0.125) > 1e-9 {
		t.Errorf("serial code efficiency %v, want 1/8", eff)
	}
}

func TestYMPClockAdvantage(t *testing.T) {
	// A highly vectorized code should run near the sustained vector rate,
	// far beyond Cedar's per-processor rates — the 28× clock story.
	y := NewYMP8()
	c := code(1e9, 0.98, 0.0, 0.0)
	mf := float64(c.Flops) / (y.OneProcSeconds(c) * 1e6)
	if mf < 80 || mf > 160 {
		t.Errorf("vector code at %.0f MFLOPS on one YMP CPU, want ≈100+", mf)
	}
}

func TestCray1SlowerThanYMP(t *testing.T) {
	cr := NewCray1()
	y := NewYMP8()
	c := code(1e9, 0.9, 0, 0)
	if cr.MFLOPS(c) >= float64(c.Flops)/(y.OneProcSeconds(c)*1e6) {
		t.Error("Cray-1 should be slower than one YMP processor")
	}
}

func TestCM5CalibrationWindow(t *testing.T) {
	// Paper: 32-node CM-5, 16K ≤ N ≤ 256K: BW=3 delivers 28-32 MFLOPS,
	// BW=11 delivers 58-67 MFLOPS.
	c := NewCM5()
	for _, n := range []int{16 << 10, 64 << 10, 256 << 10} {
		if mf := c.BandedMFLOPS(n, 3, 32); mf < 24 || mf > 36 {
			t.Errorf("BW=3 N=%d: %.1f MFLOPS, want ≈28-32", n, mf)
		}
		if mf := c.BandedMFLOPS(n, 11, 32); mf < 52 || mf > 72 {
			t.Errorf("BW=11 N=%d: %.1f MFLOPS, want ≈58-67", n, mf)
		}
	}
}

func TestCM5NeverHighBand(t *testing.T) {
	// The paper: "high performance was not achieved relative to 32, 256,
	// or 512 processors" for 16K ≤ N ≤ 256K.
	c := NewCM5()
	for _, p := range []int{32, 256, 512} {
		for _, bw := range []int{3, 11} {
			for _, n := range []int{16 << 10, 64 << 10, 256 << 10} {
				if eff := c.BandedEfficiency(n, bw, p); eff >= 0.5 {
					t.Errorf("P=%d BW=%d N=%d: efficiency %.2f reaches high band", p, bw, n, eff)
				}
			}
		}
	}
}

func TestCM5IntermediateAt32(t *testing.T) {
	// ...but it is scalable intermediate (≥ 1/(2·log₂P) = 0.1 at P=32).
	c := NewCM5()
	for _, n := range []int{16 << 10, 64 << 10, 256 << 10} {
		if eff := c.BandedEfficiency(n, 11, 32); eff < 0.1 {
			t.Errorf("BW=11 N=%d: efficiency %.2f below intermediate", n, eff)
		}
	}
}

func TestCM5CommunicationHurtsSmallN(t *testing.T) {
	c := NewCM5()
	small := c.BandedEfficiency(1<<10, 3, 512)
	big := c.BandedEfficiency(256<<10, 3, 512)
	if small >= big {
		t.Errorf("efficiency should grow with N: %v vs %v", small, big)
	}
}

func TestBandedFlops(t *testing.T) {
	if f := BandedFlops(100, 3); f != 500 {
		t.Errorf("BandedFlops(100,3) = %d, want 500", f)
	}
	if f := BandedFlops(100, 11); f != 2100 {
		t.Errorf("BandedFlops(100,11) = %d, want 2100", f)
	}
}
