package comparator

import "math"

// CM5 models a Thinking Machines CM-5 partition without floating-point
// accelerators running the banded matrix-vector products of [FWPS92].
//
// Two observations from the paper's quoted data pin the model's shape:
// the aggregate rate is nearly flat over a 16× range of problem sizes
// (28-32 MFLOPS for BW=3, 58-67 for BW=11 on 32 nodes), which means the
// dominant communication cost is per element — the CM Fortran data-motion
// overhead on every vector element — rather than a per-matvec latency;
// and the BW=11 rate is ≈2.1× the BW=3 rate, which a per-diagonal cost
// could not produce. A fixed per-operation latency plus a control-network
// reduction adds the small-N and large-P falloff.
type CM5 struct {
	NodeMFLOPS     float64 // sustained per-node compute rate on the kernel
	NodePeakMFLOPS float64 // per-node peak, the PPT efficiency denominator
	PerElemUS      float64 // data-motion overhead per matrix row (µs)
	LatencyUS      float64 // fixed per-matvec software/network latency (µs)
	ReduceUS       float64 // per-stage cost of the control-network reduction
}

// NewCM5 returns the model calibrated to [FWPS92]'s 32-node rates.
func NewCM5() CM5 {
	return CM5{
		NodeMFLOPS:     2.9,
		NodePeakMFLOPS: 4.5,
		PerElemUS:      3.6,
		LatencyUS:      90,
		ReduceUS:       12,
	}
}

// BandedFlops is the flop count of one matvec of order n with total
// bandwidth bw: 2·bw−1 flops per row.
func BandedFlops(n, bw int) int64 {
	return int64(n) * int64(2*bw-1)
}

// BandedSeconds is the time of one banded matvec of order n, bandwidth
// bw, on p nodes.
func (c CM5) BandedSeconds(n, bw, p int) float64 {
	rows := float64(n) / float64(p)
	perRowUS := float64(2*bw-1)/c.NodeMFLOPS + c.PerElemUS
	return (rows*perRowUS + c.LatencyUS + c.ReduceUS*math.Log2(float64(p))) / 1e6
}

// BandedMFLOPS is the aggregate rate of the banded matvec.
func (c CM5) BandedMFLOPS(n, bw, p int) float64 {
	return float64(BandedFlops(n, bw)) / (c.BandedSeconds(n, bw, p) * 1e6)
}

// BandedEfficiency is the rate per node over the node peak — the PPT
// efficiency used in the §4.3 scalability comparison.
func (c CM5) BandedEfficiency(n, bw, p int) float64 {
	return c.BandedMFLOPS(n, bw, p) / (float64(p) * c.NodePeakMFLOPS)
}

// BandedPoint bundles one sweep point's aggregate rate and PPT
// efficiency, so sweep drivers can evaluate a comparator machine as a
// single dispatchable job. CM5 is a pure value model: concurrent
// evaluations are safe.
func (c CM5) BandedPoint(n, bw, p int) (mflops, eff float64) {
	return c.BandedMFLOPS(n, bw, p), c.BandedEfficiency(n, bw, p)
}
