// Package comparator provides calibrated analytic models of the machines
// the paper compares Cedar against: the Cray YMP/8 and Cray-1 vector
// machines (Perfect suite summaries, Tables 3, 5 and 6, Figure 3) and the
// Thinking Machines CM-5 without floating-point accelerators (the banded
// matrix-vector experiments of the PPT4 study, after [FWPS92]).
//
// The paper itself uses only published per-code summaries of these
// systems — MFLOPS, efficiency bands, instability — so an Amdahl-style
// model driven by each code's vectorizable and parallelizable fractions
// reproduces the comparison without the original hardware.
package comparator

// CodeSummary characterizes one Perfect code for the vector-machine
// models: total floating-point work and the fractions the compilers (or
// hand tuners) could exploit.
type CodeSummary struct {
	Name  string
	Flops int64
	// VecFrac is the fraction of work the Cray compiler vectorizes.
	VecFrac float64
	// ParAutoFrac is the fraction automatic restructuring (autotasking)
	// spreads across the YMP's 8 processors.
	ParAutoFrac float64
	// ParHandFrac is the same after manual optimization.
	ParHandFrac float64
	// Cray1VecFrac is the vectorization a modern compiler achieves on
	// the Cray-1 (Table 5's footnote).
	Cray1VecFrac float64
}

// YMP8 models the 8-processor Cray Y-MP: 6 ns clock (the paper notes the
// 170/6 ≈ 28.3 clock ratio to Cedar).
type YMP8 struct {
	// ScalarMFLOPS and VectorMFLOPS are sustained per-processor rates.
	ScalarMFLOPS float64
	VectorMFLOPS float64
	Procs        int
}

// NewYMP8 returns the calibrated model.
func NewYMP8() YMP8 {
	return YMP8{ScalarMFLOPS: 12, VectorMFLOPS: 160, Procs: 8}
}

// rate1 is the single-processor rate for a code (flops per µs).
func (y YMP8) rate1(c CodeSummary) float64 {
	return 1 / ((1-c.VecFrac)/y.ScalarMFLOPS + c.VecFrac/y.VectorMFLOPS)
}

// SerialScalarSeconds is the all-scalar uniprocessor time.
func (y YMP8) SerialScalarSeconds(c CodeSummary) float64 {
	return float64(c.Flops) / (y.ScalarMFLOPS * 1e6)
}

// OneProcSeconds is the vectorized single-processor time.
func (y YMP8) OneProcSeconds(c CodeSummary) float64 {
	return float64(c.Flops) / (y.rate1(c) * 1e6)
}

// amdahl returns the multiprocessor time for parallel fraction p.
func (y YMP8) amdahl(t1, p float64) float64 {
	return t1 * ((1 - p) + p/float64(y.Procs))
}

// AutoSeconds is the baseline-compiler 8-processor time.
func (y YMP8) AutoSeconds(c CodeSummary) float64 {
	return y.amdahl(y.OneProcSeconds(c), c.ParAutoFrac)
}

// HandSeconds is the manually optimized 8-processor time.
func (y YMP8) HandSeconds(c CodeSummary) float64 {
	return y.amdahl(y.OneProcSeconds(c), c.ParHandFrac)
}

// AutoMFLOPS is the rate of the baseline-compiler run (Table 3's
// comparison column and Table 5's ensemble).
func (y YMP8) AutoMFLOPS(c CodeSummary) float64 {
	return float64(c.Flops) / (y.AutoSeconds(c) * 1e6)
}

// RestructuringEfficiency is Table 6's metric: the parallel speedup of
// automatic restructuring over the one-processor run, per processor.
func (y YMP8) RestructuringEfficiency(c CodeSummary) float64 {
	return y.OneProcSeconds(c) / y.AutoSeconds(c) / float64(y.Procs)
}

// HandEfficiency is Figure 3's metric for the manually optimized codes.
func (y YMP8) HandEfficiency(c CodeSummary) float64 {
	return y.OneProcSeconds(c) / y.HandSeconds(c) / float64(y.Procs)
}

// Cray1 models the single-processor Cray-1 with a modern compiler.
type Cray1 struct {
	ScalarMFLOPS float64
	VectorMFLOPS float64
}

// NewCray1 returns the calibrated model.
func NewCray1() Cray1 {
	return Cray1{ScalarMFLOPS: 4, VectorMFLOPS: 70}
}

// MFLOPS is the sustained rate for a code.
func (cr Cray1) MFLOPS(c CodeSummary) float64 {
	v := c.Cray1VecFrac
	return 1 / ((1-v)/cr.ScalarMFLOPS + v/cr.VectorMFLOPS)
}
