// Package xylem models the services of Cedar's operating system — Xylem,
// the kernel that links the four Alliant clusters' operating systems into
// one [EABM91] — at the altitude the paper's measurements need: cluster
// task management (gang-scheduled "cluster tasks" whose creation costs
// milliseconds, which is why programs are structured as loop phases and
// not task spawns), and the Fortran I/O path whose formatted conversions
// dominated BDNA's runtime until the hand version switched to unformatted
// transfers.
package xylem

import "cedar/internal/params"

// IOMode selects the Fortran I/O path.
type IOMode uint8

// I/O modes.
const (
	// Formatted I/O converts every datum through the Fortran runtime's
	// text formatter: hundreds of cycles per word.
	Formatted IOMode = iota
	// Unformatted I/O moves binary records: a few cycles per word of
	// buffer copy plus the device time.
	Unformatted
)

// IOModel prices Fortran I/O.
type IOModel struct {
	// FormattedCyclesPerWord is the conversion cost of formatted I/O.
	FormattedCyclesPerWord int64
	// UnformattedCyclesPerWord is the buffer-copy cost of binary I/O.
	UnformattedCyclesPerWord int64
	// DeviceWordsPerSec is the backing store's streaming rate.
	DeviceWordsPerSec float64
}

// DefaultIO returns the model calibrated so BDNA-scale formatted output
// (tens of millions of words) costs the tens of seconds the paper's
// Table 4 I/O fix recovered.
func DefaultIO() IOModel {
	return IOModel{
		FormattedCyclesPerWord:   350,
		UnformattedCyclesPerWord: 4,
		DeviceWordsPerSec:        2e6,
	}
}

// Seconds prices an I/O volume in a mode: CPU conversion time plus device
// streaming time (overlapped with neither in the serial Fortran library).
func (io IOModel) Seconds(words int64, mode IOMode) float64 {
	per := io.UnformattedCyclesPerWord
	if mode == Formatted {
		per = io.FormattedCyclesPerWord
	}
	cpu := params.CyclesToSeconds(words * per)
	dev := float64(words) / io.DeviceWordsPerSec
	return cpu + dev
}

// TaskModel prices Xylem cluster-task operations.
type TaskModel struct {
	// SpawnCycles is the cost of creating a gang-scheduled cluster task.
	SpawnCycles int64
	// SwitchCycles is a cluster-task context switch.
	SwitchCycles int64
}

// DefaultTasks returns costs in the millisecond regime that pushed Cedar
// programs toward loop-level parallelism instead of task spawning.
func DefaultTasks() TaskModel {
	return TaskModel{
		SpawnCycles:  int64(params.MicrosToCycles(3000)),
		SwitchCycles: int64(params.MicrosToCycles(500)),
	}
}

// SpawnSeconds prices creating n cluster tasks.
func (t TaskModel) SpawnSeconds(n int) float64 {
	return params.CyclesToSeconds(int64(n) * t.SpawnCycles)
}
