package xylem

import "testing"

func TestFormattedCostsMoreThanUnformatted(t *testing.T) {
	io := DefaultIO()
	const words = 1_000_000
	f := io.Seconds(words, Formatted)
	u := io.Seconds(words, Unformatted)
	if f <= u {
		t.Fatalf("formatted %.2f s not more expensive than unformatted %.2f s", f, u)
	}
	// The BDNA story: the format conversion dominates, so switching modes
	// recovers the bulk of the I/O time (Table 4's 1.7× from I/O alone).
	if f/u < 10 {
		t.Errorf("formatted/unformatted ratio %.1f, want conversion-dominated", f/u)
	}
	// Magnitudes: a million formatted words is tens of seconds on a 1990
	// machine; unformatted a second or two.
	if f < 20 || f > 120 {
		t.Errorf("formatted 1M words = %.1f s, want tens of seconds", f)
	}
	if u > 5 {
		t.Errorf("unformatted 1M words = %.1f s, want ≈1", u)
	}
}

func TestIOScalesLinearly(t *testing.T) {
	io := DefaultIO()
	one := io.Seconds(100_000, Formatted)
	ten := io.Seconds(1_000_000, Formatted)
	if ratio := ten / one; ratio < 9.9 || ratio > 10.1 {
		t.Errorf("scaling ratio %.2f, want 10", ratio)
	}
}

func TestTaskSpawnIsMilliseconds(t *testing.T) {
	tm := DefaultTasks()
	s := tm.SpawnSeconds(1)
	if s < 1e-3 || s > 20e-3 {
		t.Errorf("cluster task spawn %.4f s, want milliseconds", s)
	}
	if tm.SpawnSeconds(4) <= tm.SpawnSeconds(1) {
		t.Error("spawning more tasks must cost more")
	}
	if tm.SwitchCycles <= 0 {
		t.Error("context switch must cost cycles")
	}
}
