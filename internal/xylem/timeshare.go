package xylem

import (
	"sync"

	"cedar/internal/ce"
	"cedar/internal/params"
)

// TimeSharer multiplexes several programs onto one machine the way Xylem
// multiprogrammed cluster tasks: each cluster is gang-scheduled — all
// eight CEs switch tasks together at quantum boundaries, paying a context
// switch — because the concurrency control bus only serves one task's
// loops at a time.
//
// The paper collected every measurement in single-user mode "to avoid the
// non-determinism of multiprogramming"; TimeSharer implements exactly the
// perturbation they were avoiding, so the library can demonstrate it:
// barrier- and loop-scheduling-heavy programs suffer far more than their
// share of the machine, because a task's barrier can spin while its
// partner CEs run a different task.
//
// Rotation decisions read machine-wide completion flags, so the result
// is only defined for the sequential engine schedule: run time-sharing
// studies with -shards 1. The mutex below keeps a sharded run safe (no
// data races), but its rotations then depend on cross-cluster tick
// interleaving and are not byte-comparable across shard counts.
type TimeSharer struct {
	mu      sync.Mutex
	p       params.Machine
	quantum int64
	sw      int64 // context switch cost in cycles
	tasks   []ce.Controller

	cluster  []tsCluster
	finished [][]bool // [task][ceID]
	doneAt   []int64  // [task] cycle the task's last CE finished
	switches int64
}

type tsCluster struct {
	current  int
	switchAt int64
	// pendingSwitch[ceInCluster] is set when the CE still owes the
	// context-switch stall for the current rotation.
	pendingSwitch []bool
}

// NewTimeSharer builds a sharer over the given programs. quantum is the
// scheduling quantum in cycles; the context switch cost comes from the
// task model.
func NewTimeSharer(p params.Machine, tm TaskModel, quantum int64, tasks ...ce.Controller) *TimeSharer {
	if quantum < 1 {
		quantum = 1
	}
	t := &TimeSharer{
		p:       p,
		quantum: quantum,
		sw:      tm.SwitchCycles,
		tasks:   tasks,
		cluster: make([]tsCluster, p.Clusters),
		doneAt:  make([]int64, len(tasks)),
	}
	for i := range t.cluster {
		t.cluster[i] = tsCluster{
			switchAt:      quantum,
			pendingSwitch: make([]bool, p.CEsPerCluster),
		}
	}
	for range tasks {
		t.finished = append(t.finished, make([]bool, p.CEs()))
	}
	return t
}

// Switches reports how many cluster-level rotations occurred.
func (t *TimeSharer) Switches() int64 { return t.switches }

// DoneAt reports the cycle a task's last CE finished (0 if not yet).
func (t *TimeSharer) DoneAt(task int) int64 { return t.doneAt[task] }

// taskDone reports whether every CE finished the task.
func (t *TimeSharer) taskDone(task int) bool {
	for _, f := range t.finished[task] {
		if !f {
			return false
		}
	}
	return true
}

// Next implements ce.Controller.
func (t *TimeSharer) Next(ceID int, cycle int64) (*ce.Instr, ce.Status) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cl := &t.cluster[ceID/t.p.CEsPerCluster]
	inCluster := ceID % t.p.CEsPerCluster

	// Gang switch: the first CE of the cluster to cross the boundary
	// rotates the whole cluster; every CE then owes one switch stall.
	if cycle >= cl.switchAt {
		// Re-arm from now (a long-running instruction may have carried
		// the cluster past several boundaries). The switch stall itself
		// must not eat the whole quantum, so it is added on top —
		// otherwise a quantum shorter than a context switch would rotate
		// forever without running anything.
		cl.switchAt = cycle + t.sw + t.quantum
		next := t.nextLiveTask(cl.current)
		if next != cl.current {
			cl.current = next
			t.switches++
			for i := range cl.pendingSwitch {
				cl.pendingSwitch[i] = true
			}
		}
	}
	if cl.pendingSwitch[inCluster] {
		cl.pendingSwitch[inCluster] = false
		return &ce.Instr{Op: ce.OpScalar, Cycles: t.sw}, ce.Ready
	}

	cur := cl.current
	if t.finished[cur][ceID] {
		// This CE has no more work in the current task; idle until the
		// next rotation (or finish if every task is done for it).
		for task := range t.tasks {
			if !t.finished[task][ceID] {
				return nil, ce.Wait
			}
		}
		return nil, ce.Finished
	}

	in, st := t.tasks[cur].Next(ceID, cycle)
	switch st {
	case ce.Finished:
		t.finished[cur][ceID] = true
		if t.taskDone(cur) && t.doneAt[cur] == 0 {
			t.doneAt[cur] = cycle
		}
		return nil, ce.Wait
	case ce.Wait:
		return nil, ce.Wait
	default:
		return in, ce.Ready
	}
}

// nextLiveTask returns the next task with any unfinished CE, or cur.
func (t *TimeSharer) nextLiveTask(cur int) int {
	n := len(t.tasks)
	for off := 1; off <= n; off++ {
		cand := (cur + off) % n
		if !t.taskDone(cand) {
			return cand
		}
	}
	return cur
}

// FixedWork is a simple gang of identical scalar workloads — every CE
// executes instrs scalar operations of the given length. Useful as a
// background task in multiprogramming studies.
type FixedWork struct {
	instrs int
	cycles int64
	mu     sync.Mutex
	pos    map[int]int
}

// NewFixedWork builds the workload.
func NewFixedWork(instrs int, cycles int64) *FixedWork {
	return &FixedWork{instrs: instrs, cycles: cycles, pos: map[int]int{}}
}

// Next implements ce.Controller.
func (f *FixedWork) Next(ceID int, cycle int64) (*ce.Instr, ce.Status) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.pos[ceID] >= f.instrs {
		return nil, ce.Finished
	}
	f.pos[ceID]++
	return &ce.Instr{Op: ce.OpScalar, Cycles: f.cycles, Flops: 1}, ce.Ready
}
