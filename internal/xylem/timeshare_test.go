package xylem

import (
	"testing"

	"cedar/internal/ce"
	"cedar/internal/cfrt"
	"cedar/internal/core"
	"cedar/internal/params"
)

func TestTimeSharerRunsBothTasksToCompletion(t *testing.T) {
	p := params.Default()
	m := core.MustNew(p, core.Options{})
	a := NewFixedWork(40, 100)
	b := NewFixedWork(40, 100)
	ts := NewTimeSharer(p, DefaultTasks(), 2000, a, b)
	res, err := m.Run(ts, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Both tasks' flops: 2 tasks × 32 CEs × 40 instrs.
	if want := int64(2 * 32 * 40); res.Flops != want {
		t.Errorf("flops %d, want %d", res.Flops, want)
	}
	if ts.Switches() == 0 {
		t.Error("no rotations happened")
	}
	if ts.DoneAt(0) == 0 || ts.DoneAt(1) == 0 {
		t.Error("completion times not recorded")
	}
	// Time-sharing two equal tasks costs at least the sum of their work.
	soloCycles := int64(40 * 100)
	if res.Cycles < 2*soloCycles {
		t.Errorf("shared run %d cycles, cannot beat 2× solo %d", res.Cycles, soloCycles)
	}
}

func TestTimeSharerSingleTaskNoOverhead(t *testing.T) {
	p := params.Default()
	m := core.MustNew(p, core.Options{})
	ts := NewTimeSharer(p, DefaultTasks(), 2000, NewFixedWork(20, 50))
	res, err := m.Run(ts, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Switches() != 0 {
		t.Errorf("%d rotations with one task", ts.Switches())
	}
	if res.Cycles > 20*50+200 {
		t.Errorf("single task took %d cycles, want ≈1000", res.Cycles)
	}
}

// TestMultiprogrammingPerturbsBarrierCode demonstrates why the paper ran
// single-user: a barrier-synchronized program co-scheduled with plain
// compute work slows down by far more than the 2× its machine share
// predicts, because its barriers spin while gang partners run the other
// task.
func TestMultiprogrammingPerturbsBarrierCode(t *testing.T) {
	p := params.Default()
	body := func(i int) []*ce.Instr {
		return []*ce.Instr{{Op: ce.OpScalar, Cycles: 50, Flops: 10}}
	}
	barrierPhases := func() []cfrt.Phase {
		var phs []cfrt.Phase
		for k := 0; k < 6; k++ {
			phs = append(phs, cfrt.XDoall{N: 64, Body: body})
		}
		return phs
	}

	// Solo run.
	mSolo := core.MustNew(p, core.Options{})
	rtSolo := cfrt.New(mSolo, cfrt.Config{UseCedarSync: true}, barrierPhases()...)
	solo, err := rtSolo.Run(1 << 40)
	if err != nil {
		t.Fatal(err)
	}

	// Co-scheduled with a compute-only task.
	mShared := core.MustNew(p, core.Options{})
	rtShared := cfrt.New(mShared, cfrt.Config{UseCedarSync: true}, barrierPhases()...)
	bg := NewFixedWork(400, 200)
	ts := NewTimeSharer(p, DefaultTasks(), 3000, rtShared, bg)
	if _, err := mShared.Run(ts, 1<<40); err != nil {
		t.Fatal(err)
	}
	sharedDone := ts.DoneAt(0)
	if sharedDone == 0 {
		t.Fatal("barrier task never finished")
	}
	slowdown := float64(sharedDone) / float64(solo.Cycles)
	if slowdown < 2.2 {
		t.Errorf("barrier code slowdown %.1f× under multiprogramming; expected well beyond its 2× share", slowdown)
	}
}

func TestTimeSharerQuantumClamp(t *testing.T) {
	ts := NewTimeSharer(params.Default(), DefaultTasks(), 0, NewFixedWork(1, 1))
	if ts.quantum != 1 {
		t.Errorf("quantum %d, want clamp to 1", ts.quantum)
	}
}
