// Package params holds the machine parameters of the Cedar multiprocessor
// as published in "The Cedar System and an Initial Performance Study"
// (ISCA 1993) and its companion CSRD reports.
//
// All time constants are expressed in CE instruction cycles. One CE cycle
// is 170 ns, so 1 µs ≈ 5.88 cycles and the peak vector rate of 2 flops per
// cycle equals the paper's 11.8 MFLOPS per CE.
package params

import (
	"fmt"
	"sync/atomic"
)

// CycleNS is the CE instruction cycle time in nanoseconds.
const CycleNS = 170.0

// CyclesPerSecond is the CE clock rate (≈5.88 MHz).
const CyclesPerSecond = 1e9 / CycleNS

// WordBytes is the machine word size in bytes: Cedar moves 64-bit words
// everywhere (memory interleave, network flits, prefetch buffer slots).
const WordBytes = 8

// WiringPeakMBps is the global-memory wiring peak the paper quotes
// (768 MB/s); the [GJTV91] characterization sustained ≈500 MB/s, which
// Machine.MemService is calibrated to reproduce.
const WiringPeakMBps = 768.0

// GlobalLoadLatency is the unloaded CE-to-global-memory load latency in
// cycles as quoted by the paper (13 cycles end to end: network transit
// both ways, module access, and the CE-side transfer). The simulator
// derives its timing from the component costs in Machine; this named
// figure exists so documentation, reports and tests never hardcode "13".
const GlobalLoadLatency = 13

// Machine describes a Cedar configuration. The zero value is not useful;
// start from Default() and override fields as needed.
type Machine struct {
	// Topology.
	Clusters      int // number of Alliant FX/8 clusters (Cedar: 4)
	CEsPerCluster int // computational elements per cluster (8)

	// Global interconnection network (forward and reverse are identical).
	NetRadix      int // crossbar switch arity (8 × 8)
	NetQueueWords int // words of queueing per switch input and output port (2)
	NetPorts      int // ports per network; must be a power of NetRadix and ≥ CEs and ≥ MemModules

	// Global memory.
	MemModules    int // interleaved memory modules (32)
	MemLatency    int // module access latency in cycles (pipelined)
	MemService    int // cycles between successive initiations in one module; 3 CE cycles (≈510 ns DRAM cycle) reproduces the ≈500 MB/s the memory characterization study [GJTV91] observed, below the 768 MB/s wiring peak
	SyncOpLatency int // extra cycles for a synchronization-processor operation

	// CE-side global access.
	CELoadOverhead int // cycles to move a word between network port and CE/prefetch buffer
	MaxOutstanding int // outstanding global requests per CE without the PFU (2)

	// Prefetch unit.
	PFUMaxOutstanding int // requests the PFU issues without pausing (512)
	PFUBufferWords    int // prefetch buffer capacity (512)

	// Vector unit.
	MaxVL         int // vector register length in words (32)
	VectorStartup int // pipeline fill cycles per vector instruction

	// Cluster cache and memory.
	CacheBytes       int // shared cache size (512 KB)
	CacheLineBytes   int // line size (32 B)
	CacheWays        int // set associativity (1 = direct mapped)
	CacheBanks       int // interleaving (4)
	CacheWordsPerCyc int // cluster cache bandwidth in words/cycle (8)
	CacheHitLatency  int // cycles for a hit
	CacheMissPerCE   int // outstanding misses allowed per CE (2)
	CMemLatency      int // cluster memory access latency
	CMemWordsPerCyc  int // cluster memory bandwidth in words/cycle (4 = half cache)
	ClusterMemWords  int // cluster memory capacity in 8-byte words (32 MB)
	GlobalMemWords   int // global memory capacity in 8-byte words (64 MB)

	// Virtual memory.
	PageWords    int // page size in 8-byte words (4 KB = 512 words)
	TLBMissCost  int // cycles for a TLB/PTE fault taken by a cluster
	PageFaultMul int // multiplier applied when faults thrash (TRFD study)

	// Runtime library costs (cycles).
	XDoallStartup    int // XDOALL library startup path; with flag release and polling the measured loop startup is ≈90-100 µs
	XDoallFetchLock  int // per-iteration fetch without Cedar sync (≈30 µs ≈ 176 cycles)
	CDoallStart      int // CDOALL concurrent-start (few µs on the CC bus)
	CCBusClaim       int // self-schedule claim on the concurrency control bus
	BarrierClusterCy int // intra-cluster barrier via CC bus
}

// defaultClusters holds the process-wide cluster-count override set by
// the -clusters CLI flag (0 or 4 = the as-built Cedar). Atomic for the
// same reason sim.SetShards is: tests and fleet workers read it
// concurrently.
var defaultClusters atomic.Int64

// SetDefaultClusters installs a process-wide cluster count consulted by
// Default: 0 or 4 selects the as-built Cedar, any other valid count the
// corresponding Scaled configuration (16 and 64 are the named presets).
// CLI commands call this from the -clusters flag so every experiment in
// the invocation runs on the wider machine; the fleet cache keys runs by
// the full parameter set, so cached artifacts never cross widths.
func SetDefaultClusters(n int) error {
	if n < 0 {
		return fmt.Errorf("params: clusters must be ≥ 1, got %d", n)
	}
	if n > 0 {
		if err := Scaled(n).Validate(); err != nil {
			return err
		}
	}
	defaultClusters.Store(int64(n))
	return nil
}

// DefaultClusters reports the installed override (0 = as built).
func DefaultClusters() int { return int(defaultClusters.Load()) }

// Default returns the Cedar machine the process is configured for: as
// built — four 8-CE clusters, a 64-port two-stage omega network of 8×8
// crossbars, and 32 interleaved global memory modules — unless
// SetDefaultClusters installed a wider scale-up.
func Default() Machine {
	if n := DefaultClusters(); n > 0 && n != asBuilt().Clusters {
		return Scaled(n)
	}
	return asBuilt()
}

// asBuilt is the published 1993 configuration.
func asBuilt() Machine {
	return Machine{
		Clusters:      4,
		CEsPerCluster: 8,

		NetRadix:      8,
		NetQueueWords: 2,
		NetPorts:      64,

		MemModules:    32,
		MemLatency:    3,
		MemService:    3,
		SyncOpLatency: 2,

		CELoadOverhead: 5,
		MaxOutstanding: 2,

		PFUMaxOutstanding: 512,
		PFUBufferWords:    512,

		MaxVL:         32,
		VectorStartup: 12,

		CacheBytes:       512 << 10,
		CacheLineBytes:   32,
		CacheWays:        1,
		CacheBanks:       4,
		CacheWordsPerCyc: 8,
		CacheHitLatency:  2,
		CacheMissPerCE:   2,
		CMemLatency:      10,
		CMemWordsPerCyc:  4,
		ClusterMemWords:  (32 << 20) / WordBytes,
		GlobalMemWords:   (64 << 20) / WordBytes,

		PageWords:    512,
		TLBMissCost:  300,
		PageFaultMul: 4,

		XDoallStartup:    500,
		XDoallFetchLock:  176,
		CDoallStart:      24,
		CCBusClaim:       2,
		BarrierClusterCy: 16,
	}
}

// Scaled returns a Cedar-like machine scaled to the given cluster count,
// growing the network and memory system proportionally (the PPT5 probe).
// It always starts from the published base, never from an installed
// SetDefaultClusters override, so Scaled(n) means the same machine in
// every process.
func Scaled(clusters int) Machine {
	m := asBuilt()
	m.Clusters = clusters
	ces := clusters * m.CEsPerCluster
	m.NetPorts = nextPowerOf(m.NetRadix, ces)
	m.MemModules = ces
	return m
}

// Cedar16 is the 16-cluster scale-up preset: 128 CEs behind a 512-port
// three-stage omega (the fabric widens with cluster count: one more
// rank of 8×8 crossbars than the as-built two-stage network) and 128
// interleaved memory modules.
func Cedar16() Machine { return Scaled(16) }

// Cedar64 is the 64-cluster scale-up preset: 512 CEs, a 512-port
// three-stage omega running at full port occupancy, and 512 memory
// modules — the largest configuration whose network the 8×8 switch
// family reaches in three stages.
func Cedar64() Machine { return Scaled(64) }

// CEs returns the total number of computational elements.
func (m Machine) CEs() int { return m.Clusters * m.CEsPerCluster }

// PeakMFLOPS returns the absolute machine peak in MFLOPS
// (2 flops/cycle/CE; 376 MFLOPS for the 32-CE Cedar).
func (m Machine) PeakMFLOPS() float64 {
	return float64(m.CEs()) * 2 * CyclesPerSecond / 1e6
}

// EffectivePeakMFLOPS returns the peak after unavoidable vector startup on
// MaxVL-element strips (274 MFLOPS for the 32-CE Cedar).
func (m Machine) EffectivePeakMFLOPS() float64 {
	perElem := float64(m.MaxVL+m.VectorStartup) / float64(m.MaxVL)
	return m.PeakMFLOPS() / perElem
}

// Validate reports a descriptive error if the configuration is internally
// inconsistent (for example, a network too small for the processor count).
func (m Machine) Validate() error {
	switch {
	case m.Clusters < 1:
		return fmt.Errorf("params: Clusters must be ≥ 1, got %d", m.Clusters)
	case m.CEsPerCluster < 1:
		return fmt.Errorf("params: CEsPerCluster must be ≥ 1, got %d", m.CEsPerCluster)
	case m.NetRadix < 2:
		return fmt.Errorf("params: NetRadix must be ≥ 2, got %d", m.NetRadix)
	case !isPowerOf(m.NetRadix, m.NetPorts):
		return fmt.Errorf("params: NetPorts (%d) must be a power of NetRadix (%d)", m.NetPorts, m.NetRadix)
	case m.NetPorts < m.CEs():
		return fmt.Errorf("params: NetPorts (%d) smaller than CE count (%d)", m.NetPorts, m.CEs())
	case m.NetPorts < m.MemModules:
		return fmt.Errorf("params: NetPorts (%d) smaller than MemModules (%d)", m.NetPorts, m.MemModules)
	case m.MemModules < 1:
		return fmt.Errorf("params: MemModules must be ≥ 1, got %d", m.MemModules)
	case m.NetQueueWords < 1:
		return fmt.Errorf("params: NetQueueWords must be ≥ 1, got %d", m.NetQueueWords)
	case m.MaxVL < 1:
		return fmt.Errorf("params: MaxVL must be ≥ 1, got %d", m.MaxVL)
	case m.PageWords < 1:
		return fmt.Errorf("params: PageWords must be ≥ 1, got %d", m.PageWords)
	case m.MaxOutstanding < 1:
		return fmt.Errorf("params: MaxOutstanding must be ≥ 1, got %d", m.MaxOutstanding)
	case m.PFUMaxOutstanding < 1:
		return fmt.Errorf("params: PFUMaxOutstanding must be ≥ 1, got %d", m.PFUMaxOutstanding)
	}
	return nil
}

// MicrosToCycles converts microseconds to CE cycles, rounding to nearest.
func MicrosToCycles(us float64) int {
	return int(us*1000/CycleNS + 0.5)
}

// CyclesToSeconds converts a cycle count to wall-clock seconds on Cedar.
func CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) * CycleNS / 1e9
}

// MFLOPS computes the rate for a flop count over a cycle count.
func MFLOPS(flops, cycles int64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(flops) / (float64(cycles) * CycleNS / 1e3)
}

func isPowerOf(base, n int) bool {
	if n < 1 {
		return false
	}
	for n > 1 {
		if n%base != 0 {
			return false
		}
		n /= base
	}
	return true
}

func nextPowerOf(base, n int) int {
	p := 1
	for p < n {
		p *= base
	}
	return p
}
