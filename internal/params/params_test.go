package params

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default() invalid: %v", err)
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	m := Default()
	if got := m.CEs(); got != 32 {
		t.Errorf("CEs = %d, want 32", got)
	}
	// Peak 11.8 MFLOPS/CE -> 376 for the machine (paper: 376 absolute peak).
	if got := m.PeakMFLOPS(); math.Abs(got-376.47) > 0.5 {
		t.Errorf("PeakMFLOPS = %.2f, want ≈376", got)
	}
	// Effective peak after vector startup (paper: 274).
	if got := m.EffectivePeakMFLOPS(); math.Abs(got-274) > 4 {
		t.Errorf("EffectivePeakMFLOPS = %.2f, want ≈274", got)
	}
	// Unloaded global load round trip: 2 forward stages + memory pipeline +
	// 2 reverse stages + 1 consume cycle = 8 (the paper's minimal Latency),
	// plus the CE-side overhead completing the 13-cycle load latency.
	netMem := 2 + m.MemLatency + 2 + 1
	if netMem != 8 {
		t.Errorf("network+memory min latency = %d cycles, want 8", netMem)
	}
	if total := netMem + m.CELoadOverhead; total != 13 {
		t.Errorf("unloaded load latency = %d cycles, want 13", total)
	}
	// XDOALL startup ≈ 90 µs.
	if us := float64(m.XDoallStartup) * CycleNS / 1000; us < 55 || us > 100 {
		t.Errorf("XDoallStartup = %.1f µs, want ≈90", us)
	}
	// Iteration fetch ≈ 30 µs.
	if us := float64(m.XDoallFetchLock) * CycleNS / 1000; us < 25 || us > 35 {
		t.Errorf("XDoallFetchLock = %.1f µs, want ≈30", us)
	}
}

func TestScaled(t *testing.T) {
	for _, clusters := range []int{1, 2, 4, 8, 16} {
		m := Scaled(clusters)
		if err := m.Validate(); err != nil {
			t.Errorf("Scaled(%d) invalid: %v", clusters, err)
		}
		if m.CEs() != clusters*8 {
			t.Errorf("Scaled(%d).CEs = %d, want %d", clusters, m.CEs(), clusters*8)
		}
		if m.NetPorts < m.CEs() || m.NetPorts < m.MemModules {
			t.Errorf("Scaled(%d): network too small: %d ports", clusters, m.NetPorts)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Machine)
	}{
		{"zero clusters", func(m *Machine) { m.Clusters = 0 }},
		{"zero CEs", func(m *Machine) { m.CEsPerCluster = 0 }},
		{"bad radix", func(m *Machine) { m.NetRadix = 1 }},
		{"ports not power of radix", func(m *Machine) { m.NetPorts = 48 }},
		{"network too small", func(m *Machine) { m.NetPorts = 8 }},
		{"no modules", func(m *Machine) { m.MemModules = 0; m.NetPorts = 8 }},
		{"zero queue", func(m *Machine) { m.NetQueueWords = 0 }},
		{"zero VL", func(m *Machine) { m.MaxVL = 0 }},
		{"zero page", func(m *Machine) { m.PageWords = 0 }},
		{"zero outstanding", func(m *Machine) { m.MaxOutstanding = 0 }},
		{"zero pfu", func(m *Machine) { m.PFUMaxOutstanding = 0 }},
	}
	for _, tc := range cases {
		m := Default()
		tc.mut(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
}

func TestMicrosToCycles(t *testing.T) {
	if got := MicrosToCycles(90); got < 525 || got > 533 {
		t.Errorf("MicrosToCycles(90) = %d, want ≈529", got)
	}
	if got := MicrosToCycles(0); got != 0 {
		t.Errorf("MicrosToCycles(0) = %d, want 0", got)
	}
}

func TestCyclesToSeconds(t *testing.T) {
	// 5,882,353 cycles ≈ 1 second.
	cps := CyclesPerSecond
	got := CyclesToSeconds(int64(cps))
	if math.Abs(got-1.0) > 1e-6 {
		t.Errorf("CyclesToSeconds(1s worth) = %v, want 1.0", got)
	}
}

func TestMFLOPS(t *testing.T) {
	// 2 flops/cycle should be the 11.76 MFLOPS peak.
	got := MFLOPS(2_000_000, 1_000_000)
	if math.Abs(got-11.76) > 0.05 {
		t.Errorf("MFLOPS(2M flops, 1M cycles) = %.3f, want ≈11.76", got)
	}
	if MFLOPS(100, 0) != 0 {
		t.Error("MFLOPS with zero cycles should be 0")
	}
}

func TestIsPowerOf(t *testing.T) {
	cases := []struct {
		base, n int
		want    bool
	}{
		{8, 1, true}, {8, 8, true}, {8, 64, true}, {8, 512, true},
		{8, 2, false}, {8, 48, false}, {8, 0, false}, {8, -8, false},
		{2, 1024, true}, {2, 1023, false},
	}
	for _, c := range cases {
		if got := isPowerOf(c.base, c.n); got != c.want {
			t.Errorf("isPowerOf(%d,%d) = %v, want %v", c.base, c.n, got, c.want)
		}
	}
}

func TestNextPowerOfProperty(t *testing.T) {
	f := func(n uint16) bool {
		v := int(n%5000) + 1
		p := nextPowerOf(8, v)
		return p >= v && isPowerOf(8, p) && (p == 1 || p/8 < v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMFLOPSRoundTripProperty(t *testing.T) {
	// MFLOPS(f, c) * seconds(c) ≈ f/1e6 for all positive inputs.
	f := func(fl, cy uint32) bool {
		flops := int64(fl%1_000_000) + 1
		cycles := int64(cy%10_000_000) + 1
		mf := MFLOPS(flops, cycles)
		sec := CyclesToSeconds(cycles)
		return math.Abs(mf*sec-float64(flops)/1e6) < 1e-9*float64(flops)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPaperConstants(t *testing.T) {
	// The named paper figures are what cedarvet's paramhygiene check
	// points violators at; pin them so they cannot drift silently.
	if WordBytes != 8 {
		t.Errorf("WordBytes = %d, want 8", WordBytes)
	}
	if WiringPeakMBps != 768.0 {
		t.Errorf("WiringPeakMBps = %v, want 768", WiringPeakMBps)
	}
	if GlobalLoadLatency != 13 {
		t.Errorf("GlobalLoadLatency = %v, want the paper's 13 cycles", GlobalLoadLatency)
	}
	d := Default()
	if d.PFUBufferWords != 512 || d.PFUMaxOutstanding != 512 {
		t.Errorf("PFU depth = %d/%d, want the paper's 512", d.PFUBufferWords, d.PFUMaxOutstanding)
	}
	if d.ClusterMemWords != (32<<20)/WordBytes || d.GlobalMemWords != (64<<20)/WordBytes {
		t.Error("memory capacities must be expressed in 8-byte machine words")
	}
}

func TestClusterPresets(t *testing.T) {
	for _, tc := range []struct {
		name            string
		m               Machine
		clusters, ports int
	}{
		{"Cedar16", Cedar16(), 16, 512},
		{"Cedar64", Cedar64(), 64, 512},
	} {
		if err := tc.m.Validate(); err != nil {
			t.Errorf("%s: %v", tc.name, err)
		}
		if tc.m.Clusters != tc.clusters {
			t.Errorf("%s: Clusters = %d, want %d", tc.name, tc.m.Clusters, tc.clusters)
		}
		// The omega widens with cluster count: the as-built 64-port
		// two-stage fabric grows a third stage for both presets.
		if tc.m.NetPorts != tc.ports {
			t.Errorf("%s: NetPorts = %d, want %d", tc.name, tc.m.NetPorts, tc.ports)
		}
		if tc.m.NetPorts < tc.m.CEs() || tc.m.NetPorts < tc.m.MemModules {
			t.Errorf("%s: network narrower than the machine: %d ports, %d CEs, %d modules",
				tc.name, tc.m.NetPorts, tc.m.CEs(), tc.m.MemModules)
		}
	}
}

func TestSetDefaultClusters(t *testing.T) {
	defer func() {
		if err := SetDefaultClusters(0); err != nil {
			t.Fatal(err)
		}
	}()
	if err := SetDefaultClusters(16); err != nil {
		t.Fatal(err)
	}
	if got := Default(); got.Clusters != 16 || got != Cedar16() {
		t.Errorf("Default under -clusters 16 = %+v, want Cedar16", got)
	}
	// Scaled must ignore the override: it always starts from the
	// published base.
	if got := Scaled(2); got.Clusters != 2 || got.NetPorts != 64 {
		t.Errorf("Scaled(2) under override = %+v", got)
	}
	if err := SetDefaultClusters(-1); err == nil {
		t.Error("SetDefaultClusters(-1) accepted")
	}
	if err := SetDefaultClusters(0); err != nil {
		t.Fatal(err)
	}
	if got := Default(); got != asBuilt() {
		t.Errorf("Default after reset = %+v", got)
	}
}
