// Package serve is the experiment-serving daemon core behind cedarserve:
// an HTTP/JSON front end over the bench vocabulary. A client POSTs one
// experiment point — machine spec × workload spec × optional fault spec —
// and receives the deterministic outcome artifact as the response body.
//
// Three properties carry over from the rest of the module:
//
//   - Byte-determinism. The response body for a given request is computed
//     once, cached as bytes, and every later identical request is served
//     those exact bytes. A cached response is byte-identical to a fresh
//     simulation — the same invariant the -jobs/-shards equality gates
//     pin, extended across process restarts when a durable store backs
//     the cache.
//   - Single flight. In-flight identical requests coalesce on the fleet
//     run cache: the first computes, the rest wait and share the result.
//   - Crash isolation. A panicking simulation is captured by the handler
//     and reported as a 500 error response; it poisons only the waiters
//     coalesced on the same key (the key stays retryable) and never
//     takes down the daemon.
//
// Admission is a bounded worker pool: at most Config.Jobs simulations run
// concurrently, enforced by a semaphore acquired inside the compute path —
// coalesced waiters and cache hits never hold a slot.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"cedar/internal/bench"
	"cedar/internal/fault"
	"cedar/internal/fleet"
	"cedar/internal/scope"
)

// SchemaVersion stamps every response body (and its cache key), so a
// response-shape change can never serve stale bytes from a store written
// by an older daemon.
const SchemaVersion = 1

// Config configures a Server.
type Config struct {
	// Jobs bounds concurrently running simulations; 0 means the fleet
	// process default (GOMAXPROCS unless fleet.SetJobs overrode it).
	Jobs int
	// Store, when non-nil, backs the in-process response cache with a
	// durable second level — internal/store's Store is the intended
	// implementation. Responses survive daemon restarts through it.
	Store fleet.SecondLevel
	// Hub, when non-nil, receives the server's serve.* counters and the
	// response cache's fleet.cache.* counters.
	Hub *scope.Hub
}

// Request is one submitted experiment point. The specs are exactly the
// bench campaign vocabulary; unknown fields are rejected so a typoed
// knob can never silently run the default configuration.
type Request struct {
	Machine  bench.MachineSpec  `json:"machine"`
	Workload bench.WorkloadSpec `json:"workload"`
	// Fault optionally injects a plan: Demo or an inline Plan. Path is
	// rejected — the daemon does not read server-side files on behalf of
	// clients.
	Fault *bench.FaultSpec `json:"fault,omitempty"`
	// Metrics filters the scope snapshot captured into the outcome by
	// name prefix; empty selects bench.DefaultMetrics.
	Metrics []string `json:"metrics,omitempty"`
}

// Response is the response body for a served experiment point.
type Response struct {
	Schema int `json:"schema"`
	// Key is the content-addressed cache key the response is stored
	// under — equal keys guarantee byte-equal bodies.
	Key      string        `json:"key"`
	Machine  string        `json:"machine,omitempty"`
	Workload string        `json:"workload,omitempty"`
	Outcome  bench.Outcome `json:"outcome"`
}

// errorBody is the JSON error envelope for non-200 responses.
type errorBody struct {
	Error string `json:"error"`
}

// Stats is a snapshot of the server's request counters.
type Stats struct {
	// Requests counts run submissions accepted for processing (past
	// decode and validation).
	Requests int64 `json:"requests"`
	// BadRequests counts submissions rejected with a 400.
	BadRequests int64 `json:"bad_requests"`
	// Simulations counts actual simulation executions — Requests minus
	// the lookups answered by the cache tiers.
	Simulations int64 `json:"simulations"`
	// Panics counts simulation panics converted into 500 responses.
	Panics int64 `json:"panics"`
	// Cache is the response cache's counter snapshot.
	Cache fleet.CacheStats `json:"cache"`
}

// Server computes and caches experiment responses. Create with New;
// serve its Handler.
type Server struct {
	cache *fleet.Cache
	sem   chan struct{}

	requests    atomic.Int64
	badRequests atomic.Int64
	simulations atomic.Int64
	panics      atomic.Int64
	writeErrors atomic.Int64
}

// runSpec is the simulation entry point — a package variable only so
// tests can substitute a panicking or counting implementation.
var runSpec = bench.RunSpec

// New builds a Server with a fresh response cache, optionally backed by
// cfg.Store and observed through cfg.Hub.
func New(cfg Config) *Server {
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = fleet.Jobs()
	}
	s := &Server{
		cache: fleet.NewCache(),
		sem:   make(chan struct{}, jobs),
	}
	if cfg.Store != nil {
		s.cache.SetStore(cfg.Store)
	}
	if cfg.Hub != nil {
		s.cache.Publish(cfg.Hub)
		cfg.Hub.Counter("serve.requests", func() int64 { return s.requests.Load() })
		cfg.Hub.Counter("serve.badrequests", func() int64 { return s.badRequests.Load() })
		cfg.Hub.Counter("serve.simulations", func() int64 { return s.simulations.Load() })
		cfg.Hub.Counter("serve.panics", func() int64 { return s.panics.Load() })
		cfg.Hub.Counter("serve.writeerrors", func() int64 { return s.writeErrors.Load() })
	}
	return s
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:    s.requests.Load(),
		BadRequests: s.badRequests.Load(),
		Simulations: s.simulations.Load(),
		Panics:      s.panics.Load(),
		Cache:       s.cache.Stats(),
	}
}

// Handler returns the daemon's HTTP API:
//
//	POST /v1/run    submit one experiment point, receive its Response
//	GET  /v1/stats  server and cache counters (operational, not cached)
//	GET  /healthz   liveness probe
//
// Any other method on these paths is a 405 from the mux's method
// patterns.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			s.writeErrors.Add(1)
		}
	})
	return mux
}

// handleRun decodes, validates and executes one submission. The compute
// path runs inline on the request goroutine through the fleet cache, so
// identical concurrent submissions coalesce; a simulation panic unwinds
// to the deferred recovery here and becomes a 500.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.writeError(w, http.StatusInternalServerError, fmt.Sprintf("simulation panicked: %v", p))
		}
	}()

	req, plan, metrics, err := s.decode(r)
	if err != nil {
		s.badRequests.Add(1)
		s.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.requests.Add(1)

	body, source, err := s.respond(req, plan, metrics)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	// The source tier travels in a header, never the body: bodies must
	// stay byte-identical whether computed, coalesced, or cache-served.
	w.Header().Set("X-Cedar-Source", source)
	if _, err := w.Write(body); err != nil {
		s.writeErrors.Add(1)
	}
}

// decode parses and validates a submission, resolving its fault plan and
// metric filter. All rejections are client errors.
func (s *Server) decode(r *http.Request) (Request, *fault.Plan, []string, error) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, nil, fmt.Errorf("decoding request: %w", err)
	}
	if err := req.Machine.Validate(); err != nil {
		return req, nil, nil, err
	}
	if err := req.Workload.Validate(); err != nil {
		return req, nil, nil, err
	}
	plan, err := resolveFault(req.Fault)
	if err != nil {
		return req, nil, nil, err
	}
	metrics := req.Metrics
	if len(metrics) == 0 {
		metrics = bench.DefaultMetrics
	}
	return req, plan, metrics, nil
}

// resolveFault materializes a request's fault plan: nil (healthy), the
// built-in demo plan, or a validated inline plan. Plan files are a
// campaign-runner affordance; a daemon reading server-side paths named
// by clients would be a confused deputy, so Path is rejected.
func resolveFault(fs *bench.FaultSpec) (*fault.Plan, error) {
	if fs == nil {
		return nil, nil
	}
	if fs.Path != "" {
		return nil, errors.New("serve: fault.path is not accepted; inline the plan or use demo")
	}
	if fs.Demo && fs.Plan != nil {
		return nil, errors.New("serve: fault demo and plan are mutually exclusive")
	}
	switch {
	case fs.Demo:
		return fault.DemoPlan(), nil
	case fs.Plan != nil:
		if err := fs.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("serve: fault plan: %w", err)
		}
		return fs.Plan, nil
	}
	return nil, nil
}

// respond produces the response body for a validated submission — from
// the cache tiers when possible, by simulating otherwise — plus the tier
// it came from ("run" for a fresh simulation, "cache" for anything
// served without one: memory hit, coalesced wait, or durable store).
func (s *Server) respond(req Request, plan *fault.Plan, metrics []string) ([]byte, string, error) {
	key := requestKey(req, plan, metrics)
	computed := false
	job := fleet.Job[[]byte]{
		Key: key,
		Run: func(*scope.Hub) ([]byte, error) {
			// Admission: bound concurrent simulations, not concurrent
			// requests — only the computing presenter holds a slot.
			s.sem <- struct{}{}
			defer func() { <-s.sem }()
			computed = true
			s.simulations.Add(1)
			out, err := runSpec(req.Machine, req.Workload, plan, metrics)
			if err != nil {
				return nil, err
			}
			body, err := json.Marshal(Response{
				Schema:   SchemaVersion,
				Key:      key,
				Machine:  req.Machine.Name,
				Workload: req.Workload.Name,
				Outcome:  out,
			})
			if err != nil {
				return nil, err
			}
			return append(body, '\n'), nil
		},
	}
	res, err := fleet.Run(fleet.Config{Jobs: 1, Cache: s.cache}, []fleet.Job[[]byte]{job})
	if err != nil {
		return nil, "", err
	}
	source := "cache"
	if computed {
		source = "run"
	}
	return res[0], source, nil
}

// requestKey builds the content-addressed key a response is cached and
// stored under: the schema version plus every semantic input, with the
// fault plan folded in as its fingerprint (plans are pointers, whose
// %#v rendering is not stable). Machine and workload names participate
// because they appear in the response body — equal keys must mean
// byte-equal bodies.
func requestKey(req Request, plan *fault.Plan, metrics []string) string {
	fp := ""
	if plan != nil {
		fp = plan.Fingerprint()
	}
	return fleet.Key("serve", SchemaVersion, req.Machine, req.Workload, fp,
		strings.Join(metrics, ","))
}

// handleStats reports the server's counters. Operational data — the
// hit/coalesced split is timing-dependent, so this endpoint is never
// cached or byte-compared.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body, err := json.Marshal(s.Stats())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if _, err := w.Write(append(body, '\n')); err != nil {
		s.writeErrors.Add(1)
	}
}

// writeError sends a JSON error envelope with the given status.
func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, err := json.Marshal(errorBody{Error: msg})
	if err != nil {
		// A string field cannot fail to marshal; guard anyway.
		body = []byte(`{"error":"internal"}`)
	}
	if _, err := w.Write(append(body, '\n')); err != nil {
		s.writeErrors.Add(1)
	}
}
