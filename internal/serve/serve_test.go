package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cedar/internal/bench"
	"cedar/internal/fault"
	"cedar/internal/store"
)

// reqBody is the canonical fast request the tests submit: trimat order
// 16 on the default machine, the same tiny point the bench tests use.
const reqBody = `{"machine":{"name":"m"},"workload":{"name":"w","kind":"trimat","n":16}}`

// altBody is a second, distinct fast request for eviction tests.
const altBody = `{"machine":{"name":"m"},"workload":{"name":"w2","kind":"trimat","n":12}}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postRun submits one run request and returns status, source header and
// body.
func postRun(t *testing.T, base, body string) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("X-Cedar-Source"), b
}

// TestCacheHitByteEquality is the serving half of the repo's determinism
// invariant, gated in check.sh: a cached response must be byte-identical
// to the freshly simulated one — within one server, across servers
// sharing the durable store (a daemon restart), and across a true store
// reopen.
func TestCacheHitByteEquality(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Jobs: 2, Store: st})

	code, source, fresh := postRun(t, ts1.URL, reqBody)
	if code != http.StatusOK || source != "run" {
		t.Fatalf("fresh run: code=%d source=%q body=%s", code, source, fresh)
	}
	var r Response
	if err := json.Unmarshal(fresh, &r); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
	if r.Schema != SchemaVersion || r.Outcome.Status != "ok" || r.Outcome.SimCycles <= 0 {
		t.Fatalf("implausible outcome: %+v", r)
	}

	code, source, cached := postRun(t, ts1.URL, reqBody)
	if code != http.StatusOK || source != "cache" {
		t.Fatalf("repeat run: code=%d source=%q", code, source)
	}
	if !bytes.Equal(fresh, cached) {
		t.Fatalf("cached body differs from fresh:\n%s\n%s", fresh, cached)
	}
	if sims := s1.Stats().Simulations; sims != 1 {
		t.Fatalf("simulations = %d, want 1 (repeat must be served)", sims)
	}

	// A second server on the same store is a daemon restart: cold memory
	// cache, warm disk. The response must come back byte-identical with
	// zero simulations.
	s2, ts2 := newTestServer(t, Config{Jobs: 2, Store: st})
	code, source, restarted := postRun(t, ts2.URL, reqBody)
	if code != http.StatusOK || source != "cache" {
		t.Fatalf("restart run: code=%d source=%q", code, source)
	}
	if !bytes.Equal(fresh, restarted) {
		t.Fatal("restarted server served different bytes")
	}
	if sims := s2.Stats().Simulations; sims != 0 {
		t.Fatalf("restarted server simulated %d times, want 0", sims)
	}
	if hits := s2.Stats().Cache.DiskHits; hits != 1 {
		t.Fatalf("restarted server disk hits = %d, want 1", hits)
	}

	// And across a true reopen of the store directory.
	re, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, ts3 := newTestServer(t, Config{Jobs: 2, Store: re})
	if _, _, reopened := postRun(t, ts3.URL, reqBody); !bytes.Equal(fresh, reopened) {
		t.Fatal("reopened store served different bytes")
	}
}

// TestCoalescedRequestsShareOneSimulation: concurrent identical
// submissions single-flight on the response cache — one simulation, all
// callers served the same bytes.
func TestCoalescedRequestsShareOneSimulation(t *testing.T) {
	release := make(chan struct{})
	var sims atomic.Int64
	old := runSpec
	runSpec = func(ms bench.MachineSpec, ws bench.WorkloadSpec, plan *fault.Plan, metrics []string) (bench.Outcome, error) {
		sims.Add(1)
		<-release
		return old(ms, ws, plan, metrics)
	}
	defer func() { runSpec = old }()

	s, ts := newTestServer(t, Config{Jobs: 2})
	const n = 4
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, b := postRun(t, ts.URL, reqBody)
			if code != http.StatusOK {
				t.Errorf("request %d: code %d: %s", i, code, b)
			}
			bodies[i] = b
		}(i)
	}
	// Release the gated simulation only once every other submission has
	// presented its key and is waiting on the in-flight entry.
	for {
		st := s.Stats().Cache
		if st.Coalesced >= n-1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := sims.Load(); got != 1 {
		t.Fatalf("%d simulations for %d identical requests, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d served different bytes", i)
		}
	}
}

// TestBadRequests: every malformed submission is a 400 with a JSON error
// envelope — never a default-configured run.
func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	cases := []struct {
		name, body, wantErr string
	}{
		{"truncated json", `{"machine":`, "decoding request"},
		{"unknown field", `{"machine":{"name":"m","fabrik":"omega"}}`, "unknown field"},
		{"bad fabric", `{"machine":{"fabric":"hypercube"},"workload":{"kind":"trimat"}}`, "unknown fabric"},
		{"bad kind", `{"workload":{"kind":"sort"}}`, "unknown kind"},
		{"negative size", `{"workload":{"kind":"trimat","n":-4}}`, "non-negative"},
		{"bad rank variant", `{"workload":{"kind":"rank","variant":"turbo"}}`, "unknown rank variant"},
		{"fault path", `{"workload":{"kind":"trimat"},"fault":{"path":"/etc/passwd"}}`, "not accepted"},
		{"fault demo+plan", `{"workload":{"kind":"trimat"},"fault":{"demo":true,"plan":{}}}`, "mutually exclusive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := postRun(t, ts.URL, tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("code = %d, want 400; body: %s", code, body)
			}
			var eb errorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if !strings.Contains(eb.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", eb.Error, tc.wantErr)
			}
		})
	}
	if got := s.Stats().BadRequests; got != int64(len(cases)) {
		t.Errorf("bad request counter = %d, want %d", got, len(cases))
	}
	if got := s.Stats().Simulations; got != 0 {
		t.Errorf("%d simulations ran for malformed submissions", got)
	}
}

// TestMethodNotAllowed: the mux method patterns reject a GET on the
// submission endpoint.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/run = %d, want 405", resp.StatusCode)
	}
}

// TestPanicBecomes500: a panicking simulation is a 500 error response —
// the daemon survives, and the key stays retryable once the fault is
// gone.
func TestPanicBecomes500(t *testing.T) {
	old := runSpec
	runSpec = func(bench.MachineSpec, bench.WorkloadSpec, *fault.Plan, []string) (bench.Outcome, error) {
		panic("injected simulator bug")
	}
	s, ts := newTestServer(t, Config{Jobs: 1})

	code, _, body := postRun(t, ts.URL, reqBody)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking run: code=%d body=%s", code, body)
	}
	if !bytes.Contains(body, []byte("injected simulator bug")) {
		t.Errorf("500 body does not name the panic: %s", body)
	}
	if got := s.Stats().Panics; got != 1 {
		t.Errorf("panic counter = %d, want 1", got)
	}

	// The poisoned entry was dropped: with the bug fixed, the same
	// request computes cleanly.
	runSpec = old
	if code, source, _ := postRun(t, ts.URL, reqBody); code != http.StatusOK || source != "run" {
		t.Fatalf("retry after panic: code=%d source=%q, want 200 fresh run", code, source)
	}
}

// TestStoreEvictionOverAPI: a size-bounded store behind the daemon
// evicts the least recently used response instead of growing without
// bound.
func TestStoreEvictionOverAPI(t *testing.T) {
	// Learn the two response sizes with an unbacked server, then budget
	// the store so either fits but not both.
	_, ts := newTestServer(t, Config{Jobs: 1})
	_, _, a := postRun(t, ts.URL, reqBody)
	_, _, b := postRun(t, ts.URL, altBody)
	budget := int64(len(a))
	if int64(len(b)) > budget {
		budget = int64(len(b))
	}

	st, err := store.Open(t.TempDir(), budget)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, Config{Jobs: 1, Store: st})
	postRun(t, ts2.URL, reqBody)
	postRun(t, ts2.URL, altBody)
	if st.Len() != 1 {
		t.Fatalf("store holds %d entries under a one-response budget, want 1", st.Len())
	}
	if st.Stats().Evictions != 1 {
		t.Errorf("store stats %+v, want 1 eviction", st.Stats())
	}
}

// TestStatsEndpoint: the operational counters are served as JSON.
func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	postRun(t, ts.URL, reqBody)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var stats Stats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1 || stats.Simulations != 1 || stats.Cache.Misses != 1 {
		t.Errorf("stats %+v, want 1 request, 1 simulation, 1 miss", stats)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Jobs: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
}

// TestRequestKeyDistinguishesInputs: every semantic input moves the
// cache key, so distinct experiments can never share bytes.
func TestRequestKeyDistinguishesInputs(t *testing.T) {
	base := Request{
		Machine:  bench.MachineSpec{Name: "m"},
		Workload: bench.WorkloadSpec{Name: "w", Kind: "trimat", N: 16},
	}
	metrics := bench.DefaultMetrics
	k0 := requestKey(base, nil, metrics)

	variants := map[string]string{}
	alt := base
	alt.Workload.N = 32
	variants["workload size"] = requestKey(alt, nil, metrics)
	alt = base
	alt.Machine.Fabric = "crossbar"
	variants["fabric"] = requestKey(alt, nil, metrics)
	variants["fault plan"] = requestKey(base, fault.DemoPlan(), metrics)
	variants["metrics"] = requestKey(base, nil, []string{"gmem."})
	variants["machine name"] = requestKey(Request{
		Machine:  bench.MachineSpec{Name: "m2"},
		Workload: base.Workload,
	}, nil, metrics)

	for what, k := range variants {
		if k == k0 {
			t.Errorf("changing %s did not change the key", what)
		}
	}
	if again := requestKey(base, nil, metrics); again != k0 {
		t.Error("identical inputs produced different keys")
	}
}

// TestDemoFaultRunsDegradedOrOk: a demo-plan submission flows through to
// a valid outcome and is cached under a distinct key from the healthy
// run.
func TestDemoFaultRunsDegradedOrOk(t *testing.T) {
	s, ts := newTestServer(t, Config{Jobs: 1})
	healthy := reqBody
	faulted := `{"machine":{"name":"m"},"workload":{"name":"w","kind":"trimat","n":16},"fault":{"demo":true}}`

	_, _, hb := postRun(t, ts.URL, healthy)
	code, _, fb := postRun(t, ts.URL, faulted)
	if code != http.StatusOK {
		t.Fatalf("faulted run: code=%d body=%s", code, fb)
	}
	if bytes.Equal(hb, fb) {
		t.Fatal("faulted and healthy runs served identical bytes")
	}
	var r Response
	if err := json.Unmarshal(fb, &r); err != nil {
		t.Fatal(err)
	}
	if r.Outcome.Status != "ok" && r.Outcome.Status != "degraded" {
		t.Fatalf("faulted outcome status %q", r.Outcome.Status)
	}
	if r.Outcome.Faults.Injected == 0 {
		t.Error("demo plan injected no faults")
	}
	if got := s.Stats().Simulations; got != 2 {
		t.Errorf("simulations = %d, want 2 distinct", got)
	}
}

// TestOversizeResponseStillServed: a store too small for any response
// degrades the daemon to memory-only caching, never to an error.
func TestOversizeResponseStillServed(t *testing.T) {
	st, err := store.Open(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Jobs: 1, Store: st})
	code, _, body := postRun(t, ts.URL, reqBody)
	if code != http.StatusOK {
		t.Fatalf("code=%d body=%s", code, body)
	}
	if st.Len() != 0 || st.Stats().Rejected != 1 {
		t.Errorf("store %+v, want the oversize blob rejected", st.Stats())
	}
	if code, source, _ := postRun(t, ts.URL, reqBody); code != http.StatusOK || source != "cache" {
		t.Errorf("memory tier did not serve the repeat: code=%d source=%q", code, source)
	}
}
