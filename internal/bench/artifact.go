package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"cedar/internal/core"
	"cedar/internal/scope"
)

// Artifact is one campaign execution, written as BENCH_<area>.json. The
// schema's load-bearing property is the split between Deterministic —
// pure functions of the campaign config, byte-identical at any worker
// count and across machines — and Measured, which holds wall time and
// allocation deltas that vary run to run. Byte comparisons and the
// determinism gates look only at DeterministicBytes; Diff applies a
// tight threshold to the deterministic simcycles and a loose one to the
// measured allocations.
type Artifact struct {
	Header        Header        `json:"header"`
	Deterministic Deterministic `json:"deterministic"`
	Measured      Measured      `json:"measured"`
}

// Header is the self-describing run metadata: schema version, tool,
// campaign identity, and the fault plans in play. It names the jobs
// values the campaign ran at, so it is excluded from the deterministic
// byte comparison (two runs at different -jobs overrides must still
// produce identical deterministic sections).
type Header struct {
	Schema int    `json:"schema"`
	Tool   string `json:"tool"`
	Area   string `json:"area"`
	Notes  string `json:"notes,omitempty"`
	// Jobs lists the worker counts the matrix was executed at.
	Jobs []int `json:"jobs"`
	// Shards lists the intra-run engine worker bounds the matrix was
	// executed at (one full pass per jobs × shards combination). Like
	// Jobs, it is excluded from the deterministic byte comparison.
	Shards []int `json:"shards,omitempty"`
	// Points is the matrix size (machines × workloads × faults).
	Points int `json:"points"`
	// Faults records each fault axis entry's seed and plan hash, so an
	// artifact can be matched to the exact plans that produced it.
	Faults []FaultMeta `json:"faults,omitempty"`
}

// FaultMeta identifies one resolved fault plan.
type FaultMeta struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed,omitempty"`
	// Plan is the short content hash of the plan ("" for healthy).
	Plan string `json:"plan,omitempty"`
}

// Deterministic is the byte-comparable section: every field is a pure
// function of the campaign config.
type Deterministic struct {
	Points []PointResult `json:"points"`
	// Fleet summarizes the run cache across one full matrix pass.
	// Single-flight makes these counts identical at any worker count.
	Fleet FleetStats `json:"fleet"`
}

// FleetStats is the deterministic view of fleet cache activity: Served
// deliberately collapses the timing-dependent hit/coalesce split.
type FleetStats struct {
	Lookups int64   `json:"lookups"`
	Misses  int64   `json:"misses"`
	Served  int64   `json:"served"`
	HitRate float64 `json:"hit_rate"`
}

// PointResult is one matrix point's deterministic outcome.
type PointResult struct {
	// ID is "machine/workload/fault" — the axes join the point came from.
	ID       string `json:"id"`
	Machine  string `json:"machine"`
	Workload string `json:"workload"`
	Fault    string `json:"fault"`
	Outcome
}

// Outcome is the identity-free simulation result — what the fleet cache
// stores, shared by every point with the same semantic inputs. All
// fields are exported because cached results round-trip through the
// fleet deep copy, which only recurses exported fields.
type Outcome struct {
	// Status is "ok" or "degraded" (the fault plan exhausted a retry
	// budget or starved the program; partial timing is still reported).
	Status    string  `json:"status"`
	SimCycles int64   `json:"simcycles"`
	Flops     int64   `json:"flops"`
	MFLOPS    float64 `json:"mflops"`
	// Faults is the machine's injection/recovery counters (zero when
	// healthy).
	Faults core.FaultCounters `json:"faults"`
	// Metrics is the scope snapshot filtered to the campaign's metric
	// prefixes.
	Metrics []scope.Sample `json:"metrics,omitempty"`
	// Attribution is the busy/stall/idle cycle breakdown per hardware
	// class.
	Attribution []scope.AttrRow `json:"attribution,omitempty"`
	// WallNS is the point's own wall time. Measured, not deterministic —
	// excluded from the JSON here and surfaced under Measured.Points.
	WallNS int64 `json:"-"`
}

// Measured holds everything timing- and environment-dependent.
type Measured struct {
	// GoMaxProcs and NumCPU record how much host parallelism the measured
	// runs actually had. A committed artifact's throughput — and any
	// shards-axis speedup — can only be read in that context: -shards 4
	// on a 1-CPU host is a schedule change, not a speedup.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
	// Runs has one entry per jobs × shards pass.
	Runs []RunMeasure `json:"runs"`
	// Points carries per-point wall times from the first pass.
	Points []PointMeasure `json:"points,omitempty"`
}

// RunMeasure is one matrix pass's cost.
type RunMeasure struct {
	Jobs int `json:"jobs"`
	// Shards is the intra-run engine worker bound the pass ran under.
	Shards int `json:"shards"`
	// WallNS is the pass's wall-clock duration (0 when no clock was
	// injected — e.g. library runs under the nondeterminism lint).
	WallNS int64 `json:"wall_ns,omitempty"`
	// Mallocs and AllocBytes are runtime.MemStats deltas across the pass.
	Mallocs    uint64 `json:"mallocs"`
	AllocBytes uint64 `json:"alloc_bytes"`
}

// PointMeasure is one point's wall time in the first pass.
type PointMeasure struct {
	ID     string `json:"id"`
	WallNS int64  `json:"wall_ns"`
}

// DeterministicBytes returns the canonical encoding of the deterministic
// section — the unit of byte comparison for the determinism gates.
func (a *Artifact) DeterministicBytes() ([]byte, error) {
	b, err := json.MarshalIndent(&a.Deterministic, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("bench: encode deterministic section: %w", err)
	}
	return b, nil
}

// Encode renders the whole artifact as indented JSON with a trailing
// newline (committed-artifact friendly).
func (a *Artifact) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(a); err != nil {
		return nil, fmt.Errorf("bench: encode artifact: %w", err)
	}
	return buf.Bytes(), nil
}

// Write writes the artifact to path.
func (a *Artifact) Write(path string) error {
	b, err := a.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("bench: %w", err)
	}
	return nil
}

// ReadArtifact loads an artifact file, checking its schema version.
func ReadArtifact(path string) (*Artifact, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	var a Artifact
	if err := json.Unmarshal(b, &a); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if a.Header.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s: artifact schema %d, tool speaks %d", path, a.Header.Schema, SchemaVersion)
	}
	return &a, nil
}
