// Package bench is the declarative performance-campaign runner — the
// measurement substrate for the repo's own performance story. A Campaign
// is one JSON config declaring a matrix of (machine parameters ×
// workload × fault plan), plus the worker counts to execute it at; Run
// drives every point through the cedarfleet pool (reusing the run cache
// and single-flight path) and emits a BENCH_<area>.json Artifact whose
// deterministic section — simcycles, scope counter snapshots,
// busy/stall/idle attribution, fleet cache rates — is byte-identical at
// any -jobs value, while measured fields (wall time, allocations) live
// in a separate section excluded from byte comparisons. Diff compares
// two artifacts against a regression threshold; cmd/cedarbench is the
// CLI face and scripts/check.sh runs the smoke campaign every PR so the
// perf trajectory extends one artifact at a time.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cedar/internal/core"
	"cedar/internal/fault"
	"cedar/internal/params"
)

// SchemaVersion identifies the campaign-config and artifact wire format.
// Bump it on any incompatible change so old baselines fail loudly in
// Diff instead of comparing apples to oranges.
const SchemaVersion = 1

// Campaign declares one benchmark matrix. The experiment points are the
// cross product Machines × Workloads × Faults; every point is one whole
// machine simulation dispatched to the fleet pool.
type Campaign struct {
	// Schema is the config format version; 0 means "current".
	Schema int `json:"schema,omitempty"`
	// Area names the artifact: results are written as BENCH_<area>.json.
	Area string `json:"area"`
	// Notes is free-form provenance copied into the artifact header.
	Notes string `json:"notes,omitempty"`
	// Machines, Workloads and Faults are the matrix axes. Faults may be
	// empty, which means a single healthy entry.
	Machines  []MachineSpec  `json:"machines"`
	Workloads []WorkloadSpec `json:"workloads"`
	Faults    []FaultSpec    `json:"faults,omitempty"`
	// Jobs lists the fleet worker counts to execute the matrix at, one
	// full pass per value against a fresh private run cache. The
	// deterministic section must agree byte-for-byte across passes (Run
	// verifies this); the measured section records one wall-time and
	// allocation entry per pass. Empty means a single pass at 1.
	Jobs []int `json:"jobs,omitempty"`
	// Shards lists the intra-run engine worker bounds to execute the
	// matrix at — the second pass axis, crossed with Jobs. 1 is the
	// sequential schedule; higher values let each simulation tick its
	// clusters concurrently. The deterministic section must agree
	// byte-for-byte across shard passes too, so every successful Run is
	// also a sequential-vs-parallel equivalence proof. Empty means the
	// process default (normally 1).
	Shards []int `json:"shards,omitempty"`
	// Metrics lists the scope counter/gauge name prefixes captured into
	// each point's deterministic record ("gmem.", "pfu.", ...). Empty
	// selects DefaultMetrics. A whole-machine snapshot would bloat the
	// committed artifacts, so points carry a curated slice.
	Metrics []string `json:"metrics,omitempty"`

	// baseDir resolves relative fault-plan paths; set by Load.
	baseDir string
}

// DefaultMetrics is the metric-prefix filter applied when a campaign
// does not name its own.
var DefaultMetrics = []string{"engine.cycle", "gmem.", "pfu.", "fault."}

// MachineSpec is one machine axis entry: the default Cedar with named
// overrides. Zero fields keep the paper configuration.
type MachineSpec struct {
	Name string `json:"name"`
	// Scaled, when > 0, starts from params.Scaled(Scaled) — the PPT5
	// scaled-Cedar base — instead of params.Default().
	Scaled        int `json:"scaled,omitempty"`
	Clusters      int `json:"clusters,omitempty"`
	CEsPerCluster int `json:"ces_per_cluster,omitempty"`
	MemModules    int `json:"mem_modules,omitempty"`
	NetQueueWords int `json:"net_queue_words,omitempty"`
	// Fabric selects the interconnect: "", "omega" or "crossbar".
	Fabric string `json:"fabric,omitempty"`
}

// Params materializes the machine parameter set.
func (ms MachineSpec) Params() params.Machine {
	p := params.Default()
	if ms.Scaled > 0 {
		p = params.Scaled(ms.Scaled)
	}
	if ms.Clusters > 0 {
		p.Clusters = ms.Clusters
	}
	if ms.CEsPerCluster > 0 {
		p.CEsPerCluster = ms.CEsPerCluster
	}
	if ms.MemModules > 0 {
		p.MemModules = ms.MemModules
	}
	if ms.NetQueueWords > 0 {
		p.NetQueueWords = ms.NetQueueWords
	}
	return p
}

// fabricKind maps the spec's fabric name to the core option.
func (ms MachineSpec) fabricKind() (core.FabricKind, error) {
	switch ms.Fabric {
	case "", "omega":
		return core.FabricOmega, nil
	case "crossbar":
		return core.FabricCrossbar, nil
	}
	return core.FabricOmega, fmt.Errorf("bench: machine %q: unknown fabric %q (want omega or crossbar)", ms.Name, ms.Fabric)
}

// Validate checks the machine spec in isolation — what cedarserve runs
// on a submitted config before building anything.
func (ms MachineSpec) Validate() error {
	_, err := ms.fabricKind()
	return err
}

// Validate checks the workload spec in isolation: a known kind, a known
// rank variant, non-negative sizes.
func (ws WorkloadSpec) Validate() error {
	if !workloadKinds[ws.Kind] {
		return fmt.Errorf("bench: workload %q: unknown kind %q (want one of %s)",
			ws.Name, ws.Kind, strings.Join(kindList(), ", "))
	}
	if ws.Kind == "rank" {
		switch ws.Variant {
		case "", "nopref", "pref", "cache":
		default:
			return fmt.Errorf("bench: workload %q: unknown rank variant %q (want nopref, pref or cache)", ws.Name, ws.Variant)
		}
	}
	if ws.N < 0 || ws.Sweeps < 0 || ws.Iters < 0 || ws.BW < 0 || ws.MaxCEs < 0 ||
		ws.CEs < 0 || ws.Stride < 0 || ws.Gap < 0 {
		return fmt.Errorf("bench: workload %q: sizes must be non-negative", ws.Name)
	}
	return nil
}

// WorkloadSpec is one workload axis entry: a paper kernel plus its
// sizing. Kind selects the kernel; the other fields parameterize it and
// unused ones must stay zero.
type WorkloadSpec struct {
	Name string `json:"name"`
	// Kind is one of "rank" (rank-64 update; Variant selects the memory
	// mode), "vectorload", "trimat", "cg", "banded", or "membw" (the
	// memory-characterization stream; CEs/Stride apply, N is words per CE).
	Kind string `json:"kind"`
	// N is the problem order; a kind-specific default applies when 0. For
	// membw it is the per-CE word count (default 4096).
	N int `json:"n,omitempty"`
	// Variant selects the rank-update memory mode: "nopref", "pref"
	// (default) or "cache".
	Variant string `json:"variant,omitempty"`
	// Sweeps is the vectorload sweep count (default 1).
	Sweeps int `json:"sweeps,omitempty"`
	// Iters is the CG iteration count (default 2).
	Iters int `json:"iters,omitempty"`
	// BW is the banded-matvec diagonal count (default 11).
	BW int `json:"bw,omitempty"`
	// MaxCEs restricts the processor count for cg/banded; 0 = all.
	MaxCEs int `json:"max_ces,omitempty"`
	// CEs is the membw participating-CE count (default 1).
	CEs int `json:"ces,omitempty"`
	// Gap is the latency-probe scalar pause between dependent loads in
	// cycles (default 0: back-to-back round trips).
	Gap int `json:"gap,omitempty"`
	// Stride is the membw access stride in words (default 1; MemModules
	// aims every reference at one module, the paper's worst case).
	Stride int `json:"stride,omitempty"`
}

// FaultSpec is one fault axis entry: no plan (healthy), the built-in
// demo plan, a plan file, or an inline plan. At most one source may be
// set.
type FaultSpec struct {
	Name string `json:"name"`
	// Demo selects fault.DemoPlan (dead bank + stage jam + NACKs).
	Demo bool `json:"demo,omitempty"`
	// Path names a JSON plan file, resolved relative to the campaign
	// config file when not absolute.
	Path string `json:"path,omitempty"`
	// Plan is an inline plan.
	Plan *fault.Plan `json:"plan,omitempty"`
}

// resolve loads the spec's plan (nil for a healthy entry).
func (fs FaultSpec) resolve(baseDir string) (*fault.Plan, error) {
	sources := 0
	for _, set := range []bool{fs.Demo, fs.Path != "", fs.Plan != nil} {
		if set {
			sources++
		}
	}
	if sources > 1 {
		return nil, fmt.Errorf("bench: fault %q: demo, path and plan are mutually exclusive", fs.Name)
	}
	switch {
	case fs.Demo:
		return fault.DemoPlan(), nil
	case fs.Path != "":
		path := fs.Path
		if !filepath.IsAbs(path) && baseDir != "" {
			path = filepath.Join(baseDir, path)
		}
		return fault.Load(path)
	case fs.Plan != nil:
		if err := fs.Plan.Validate(); err != nil {
			return nil, fmt.Errorf("bench: fault %q: %w", fs.Name, err)
		}
		return fs.Plan, nil
	}
	return nil, nil
}

// workloadKinds names the valid WorkloadSpec.Kind values.
var workloadKinds = map[string]bool{
	"rank": true, "vectorload": true, "trimat": true, "cg": true, "banded": true,
	"membw": true, "latency": true,
}

// Validate checks the campaign against the schema: a named area, at
// least one entry per mandatory axis, unique non-empty names, known
// kinds, and positive jobs values. Fault plans are validated when
// resolved at run time (files may legitimately not exist yet at config
// authoring time).
func (c *Campaign) Validate() error {
	if c.Schema != 0 && c.Schema != SchemaVersion {
		return fmt.Errorf("bench: campaign schema %d not supported (tool speaks %d)", c.Schema, SchemaVersion)
	}
	if c.Area == "" {
		return fmt.Errorf("bench: campaign needs an area (names the BENCH_<area>.json artifact)")
	}
	if strings.ContainsAny(c.Area, "/\\ ") {
		return fmt.Errorf("bench: area %q must be a bare token (it becomes a file name)", c.Area)
	}
	if len(c.Machines) == 0 {
		return fmt.Errorf("bench: campaign needs at least one machine")
	}
	if len(c.Workloads) == 0 {
		return fmt.Errorf("bench: campaign needs at least one workload")
	}
	check := func(axis, name string, seen map[string]bool) error {
		if name == "" {
			return fmt.Errorf("bench: every %s needs a name", axis)
		}
		if strings.Contains(name, "/") {
			return fmt.Errorf("bench: %s name %q must not contain '/' (names join into point IDs)", axis, name)
		}
		if seen[name] {
			return fmt.Errorf("bench: duplicate %s name %q", axis, name)
		}
		seen[name] = true
		return nil
	}
	seen := map[string]bool{}
	for _, m := range c.Machines {
		if err := check("machine", m.Name, seen); err != nil {
			return err
		}
		if err := m.Validate(); err != nil {
			return err
		}
	}
	seen = map[string]bool{}
	for _, w := range c.Workloads {
		if err := check("workload", w.Name, seen); err != nil {
			return err
		}
		if err := w.Validate(); err != nil {
			return err
		}
	}
	seen = map[string]bool{}
	for _, f := range c.Faults {
		if err := check("fault", f.Name, seen); err != nil {
			return err
		}
	}
	for _, j := range c.Jobs {
		if j < 1 {
			return fmt.Errorf("bench: jobs values must be ≥ 1, got %d", j)
		}
	}
	for _, s := range c.Shards {
		if s < 1 {
			return fmt.Errorf("bench: shards values must be ≥ 1, got %d", s)
		}
	}
	return nil
}

func kindList() []string {
	return []string{"banded", "cg", "membw", "rank", "trimat", "vectorload"}
}

// Load reads and validates a campaign config file. Relative fault-plan
// paths inside the config resolve against the config file's directory,
// so campaigns stay relocatable.
func Load(path string) (*Campaign, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	var c Campaign
	if err := dec.Decode(&c); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c.baseDir = filepath.Dir(path)
	return &c, nil
}

// Smoke is the built-in smoke campaign — what `cedarbench run` with no
// -config executes, and what bench/campaigns/smoke.json mirrors (a test
// keeps them in sync). It is sized to finish in well under a minute so
// scripts/check.sh can extend the perf trajectory on every PR: three
// machine variants (as built, two-cluster, crossbar fabric) × four
// kernels × (healthy, demo faults), at one and eight workers.
func Smoke() *Campaign {
	return &Campaign{
		Schema: SchemaVersion,
		Area:   "smoke",
		Notes:  "standing smoke campaign run by scripts/check.sh; see DESIGN.md 'Benchmarking: cedarbench'",
		Machines: []MachineSpec{
			{Name: "cedar"},
			{Name: "cedar-2cl", Clusters: 2},
			{Name: "cedar-xbar", Fabric: "crossbar"},
		},
		Workloads: []WorkloadSpec{
			{Name: "rank48-pref", Kind: "rank", N: 48, Variant: "pref"},
			{Name: "rank48-cache", Kind: "rank", N: 48, Variant: "cache"},
			{Name: "vl1k", Kind: "vectorload", N: 1024, Sweeps: 1},
			{Name: "cg64", Kind: "cg", N: 64, Iters: 2},
		},
		Faults: []FaultSpec{
			{Name: "healthy"},
			{Name: "demo", Demo: true},
		},
		Jobs:    []int{1, 8},
		Metrics: []string{"engine.cycle", "gmem.", "pfu.", "fault."},
	}
}
