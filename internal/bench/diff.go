package bench

import (
	"fmt"
	"strings"
)

// DiffOptions sets the regression thresholds as fractions (0.05 = 5%).
type DiffOptions struct {
	// CycleThreshold flags a point whose simcycles grew by more than this
	// fraction. 0 selects the 5% default; simcycles are deterministic, so
	// the threshold exists only to absorb intentional small modelling
	// changes.
	CycleThreshold float64
	// AllocThreshold flags a matrix pass whose malloc count grew by more
	// than this fraction. 0 selects the 30% default — deliberately loose,
	// since allocation counts drift with the Go toolchain.
	AllocThreshold float64
}

// Default thresholds (see DiffOptions).
const (
	DefaultCycleThreshold = 0.05
	DefaultAllocThreshold = 0.30
)

// DiffReport is the outcome of comparing a new artifact against an old
// baseline.
type DiffReport struct {
	Area string `json:"area"`
	// Regressions is what makes the diff fail: simcycle growth past the
	// threshold, malloc growth past the alloc threshold, or a point that
	// disappeared from the matrix.
	Regressions []DiffLine `json:"regressions,omitempty"`
	// Improvements and Notes are informational.
	Improvements []DiffLine `json:"improvements,omitempty"`
	Notes        []string   `json:"notes,omitempty"`
}

// DiffLine is one compared quantity.
type DiffLine struct {
	ID     string  `json:"id"`     // point ID, or "jobs=N allocs" for a pass
	Metric string  `json:"metric"` // "simcycles" or "mallocs"
	Old    int64   `json:"old"`
	New    int64   `json:"new"`
	Delta  float64 `json:"delta"` // fractional change, (new-old)/old; 0 when ZeroBase
	// ZeroBase marks a line whose baseline value was zero: the fractional
	// change is undefined (it would render as +Inf% or NaN), so Delta is
	// left 0 and the report states new-vs-zero explicitly.
	ZeroBase bool `json:"zero_base,omitempty"`
}

// HasRegressions reports whether the diff should fail.
func (r *DiffReport) HasRegressions() bool { return len(r.Regressions) > 0 }

// Format renders the report for terminals — one line per finding.
func (r *DiffReport) Format() string {
	var b strings.Builder
	line := func(verdict string, l DiffLine) {
		if l.ZeroBase {
			fmt.Fprintf(&b, "%s %s %s: %d -> %d (zero baseline; %% undefined)\n", verdict, l.ID, l.Metric, l.Old, l.New)
			return
		}
		fmt.Fprintf(&b, "%s %s %s: %d -> %d (%+.1f%%)\n", verdict, l.ID, l.Metric, l.Old, l.New, l.Delta*100)
	}
	for _, l := range r.Regressions {
		line("REGRESSION", l)
	}
	for _, l := range r.Improvements {
		line("improvement", l)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	if b.Len() == 0 {
		fmt.Fprintf(&b, "no change: %s matches baseline\n", r.Area)
	}
	return b.String()
}

// Diff compares two artifacts of the same area: per-point simcycles
// against CycleThreshold and per-pass malloc counts (matched by jobs
// value) against AllocThreshold. A point present in old but missing from
// new is a regression — a shrinking matrix must be an explicit baseline
// update, never a silent pass. New points and improvements are noted
// without failing.
func Diff(old, new *Artifact, opt DiffOptions) (*DiffReport, error) {
	if old.Header.Area != new.Header.Area {
		return nil, fmt.Errorf("bench: diff across areas %q vs %q", old.Header.Area, new.Header.Area)
	}
	cycThr := opt.CycleThreshold
	if cycThr == 0 {
		cycThr = DefaultCycleThreshold
	}
	allocThr := opt.AllocThreshold
	if allocThr == 0 {
		allocThr = DefaultAllocThreshold
	}
	if cycThr < 0 || allocThr < 0 {
		return nil, fmt.Errorf("bench: thresholds must be non-negative")
	}

	r := &DiffReport{Area: new.Header.Area}
	newPoints := map[string]PointResult{}
	for _, p := range new.Deterministic.Points {
		newPoints[p.ID] = p
	}
	for _, op := range old.Deterministic.Points {
		np, ok := newPoints[op.ID]
		if !ok {
			r.Regressions = append(r.Regressions, DiffLine{ID: op.ID, Metric: "simcycles", Old: op.SimCycles, New: 0, Delta: -1})
			continue
		}
		delete(newPoints, op.ID)
		if op.SimCycles == 0 {
			// A zero baseline has no defined fractional change; any growth
			// is reported as new-vs-zero instead of +Inf% (and a 0 -> 0
			// point is genuinely unchanged).
			if np.SimCycles != 0 {
				r.Regressions = append(r.Regressions, DiffLine{
					ID: op.ID, Metric: "simcycles", Old: 0, New: np.SimCycles, ZeroBase: true})
			}
			if op.Status != np.Status {
				r.Notes = append(r.Notes, fmt.Sprintf("%s: status %q -> %q", op.ID, op.Status, np.Status))
			}
			continue
		}
		delta := float64(np.SimCycles-op.SimCycles) / float64(op.SimCycles)
		l := DiffLine{ID: op.ID, Metric: "simcycles", Old: op.SimCycles, New: np.SimCycles, Delta: delta}
		switch {
		case delta > cycThr:
			r.Regressions = append(r.Regressions, l)
		case delta < -cycThr:
			r.Improvements = append(r.Improvements, l)
		}
		if op.Status != np.Status {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: status %q -> %q", op.ID, op.Status, np.Status))
		}
	}
	// Iterate new's own order (not the leftover map) so notes are stable.
	for _, np := range new.Deterministic.Points {
		if _, leftover := newPoints[np.ID]; leftover {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: new point (simcycles %d)", np.ID, np.SimCycles))
		}
	}

	// Passes pair up by their full axis position. Artifacts from before
	// the shards axis carry 0 there, which still pairs correctly against
	// other pre-shards artifacts.
	type runKey struct{ jobs, shards int }
	oldRuns := map[runKey]RunMeasure{}
	for _, m := range old.Measured.Runs {
		oldRuns[runKey{m.Jobs, m.Shards}] = m
	}
	for _, nm := range new.Measured.Runs {
		om, ok := oldRuns[runKey{nm.Jobs, nm.Shards}]
		if !ok {
			continue
		}
		id := fmt.Sprintf("jobs=%d allocs", nm.Jobs)
		if nm.Shards > 1 {
			id = fmt.Sprintf("jobs=%d shards=%d allocs", nm.Jobs, nm.Shards)
		}
		if om.Mallocs == 0 {
			// Same zero-baseline rule as simcycles: explicit new-vs-zero,
			// never a NaN or +Inf percentage. Allocations from a baseline
			// that measured none always exceed any fractional threshold.
			if nm.Mallocs != 0 {
				r.Regressions = append(r.Regressions, DiffLine{
					ID: id, Metric: "mallocs",
					Old: 0, New: int64(nm.Mallocs), ZeroBase: true})
			}
			continue
		}
		delta := (float64(nm.Mallocs) - float64(om.Mallocs)) / float64(om.Mallocs)
		l := DiffLine{ID: id, Metric: "mallocs",
			Old: int64(om.Mallocs), New: int64(nm.Mallocs), Delta: delta}
		switch {
		case delta > allocThr:
			r.Regressions = append(r.Regressions, l)
		case delta < -allocThr:
			r.Improvements = append(r.Improvements, l)
		}
	}
	return r, nil
}
