package bench

import (
	"strings"
	"testing"
)

// fix builds a two-point artifact with measured runs for diff tests.
func fix() *Artifact {
	return &Artifact{
		Header: Header{Schema: SchemaVersion, Tool: "cedarbench", Area: "t", Jobs: []int{1}, Points: 2},
		Deterministic: Deterministic{
			Points: []PointResult{
				{ID: "m/w1/healthy", Outcome: Outcome{Status: "ok", SimCycles: 1000}},
				{ID: "m/w2/healthy", Outcome: Outcome{Status: "ok", SimCycles: 2000}},
			},
			Fleet: FleetStats{Lookups: 2, Misses: 2},
		},
		Measured: Measured{Runs: []RunMeasure{{Jobs: 1, Mallocs: 10000, AllocBytes: 1 << 20}}},
	}
}

func TestDiffNoChange(t *testing.T) {
	r, err := Diff(fix(), fix(), DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() || len(r.Improvements) != 0 || len(r.Notes) != 0 {
		t.Fatalf("identical artifacts should be clean: %s", r.Format())
	}
	if !strings.Contains(r.Format(), "no change") {
		t.Fatalf("clean format: %q", r.Format())
	}
}

func TestDiffFlagsSimcycleRegression(t *testing.T) {
	n := fix()
	n.Deterministic.Points[0].SimCycles = 1100 // +10% > 5% default
	r, err := Diff(fix(), n, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions) != 1 || r.Regressions[0].Metric != "simcycles" || r.Regressions[0].ID != "m/w1/healthy" {
		t.Fatalf("want one simcycle regression: %s", r.Format())
	}
	// A wider threshold absorbs the same delta.
	r, err = Diff(fix(), n, DiffOptions{CycleThreshold: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() {
		t.Fatalf("15%% threshold should absorb a 10%% delta: %s", r.Format())
	}
}

func TestDiffFlagsImprovementAndStatusChange(t *testing.T) {
	n := fix()
	n.Deterministic.Points[1].SimCycles = 1500 // -25%
	n.Deterministic.Points[1].Status = "degraded"
	r, err := Diff(fix(), n, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() {
		t.Fatalf("improvement must not fail the diff: %s", r.Format())
	}
	if len(r.Improvements) != 1 || r.Improvements[0].ID != "m/w2/healthy" {
		t.Fatalf("want one improvement: %s", r.Format())
	}
	if len(r.Notes) != 1 || !strings.Contains(r.Notes[0], "degraded") {
		t.Fatalf("status flip should be noted: %v", r.Notes)
	}
}

func TestDiffMissingPointIsRegression(t *testing.T) {
	n := fix()
	n.Deterministic.Points = n.Deterministic.Points[:1]
	r, err := Diff(fix(), n, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions) != 1 || r.Regressions[0].ID != "m/w2/healthy" {
		t.Fatalf("vanished point must regress: %s", r.Format())
	}
}

func TestDiffNewPointIsNote(t *testing.T) {
	n := fix()
	n.Deterministic.Points = append(n.Deterministic.Points,
		PointResult{ID: "m/w3/healthy", Outcome: Outcome{Status: "ok", SimCycles: 10}})
	r, err := Diff(fix(), n, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() || len(r.Notes) != 1 || !strings.Contains(r.Notes[0], "new point") {
		t.Fatalf("added point should be a note: %s", r.Format())
	}
}

func TestDiffFlagsAllocRegression(t *testing.T) {
	n := fix()
	n.Measured.Runs[0].Mallocs = 15000 // +50% > 30% default
	r, err := Diff(fix(), n, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Regressions) != 1 || r.Regressions[0].Metric != "mallocs" {
		t.Fatalf("want one alloc regression: %s", r.Format())
	}
	// Runs are matched by jobs value: a pass the baseline never ran is
	// not comparable.
	n.Measured.Runs[0].Jobs = 8
	r, err = Diff(fix(), n, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.HasRegressions() {
		t.Fatalf("unmatched jobs pass must not compare: %s", r.Format())
	}
}

// TestDiffZeroBaselines pins the zero-baseline arithmetic: a baseline
// value of zero must never render +Inf% or NaN, a 0 -> 0 quantity is
// clean, and growth from zero is an explicit new-vs-zero regression.
func TestDiffZeroBaselines(t *testing.T) {
	cases := []struct {
		name           string
		mutate         func(old, new *Artifact)
		wantRegression bool
		wantMetric     string
	}{
		{
			name: "simcycles zero to nonzero",
			mutate: func(old, new *Artifact) {
				old.Deterministic.Points[0].SimCycles = 0
			},
			wantRegression: true,
			wantMetric:     "simcycles",
		},
		{
			name: "simcycles zero to zero",
			mutate: func(old, new *Artifact) {
				old.Deterministic.Points[0].SimCycles = 0
				new.Deterministic.Points[0].SimCycles = 0
			},
		},
		{
			name: "simcycles zero baseline still notes status flip",
			mutate: func(old, new *Artifact) {
				old.Deterministic.Points[0].SimCycles = 0
				new.Deterministic.Points[0].SimCycles = 0
				new.Deterministic.Points[0].Status = "degraded"
			},
		},
		{
			name: "mallocs zero to nonzero",
			mutate: func(old, new *Artifact) {
				old.Measured.Runs[0].Mallocs = 0
			},
			wantRegression: true,
			wantMetric:     "mallocs",
		},
		{
			name: "mallocs zero to zero",
			mutate: func(old, new *Artifact) {
				old.Measured.Runs[0].Mallocs = 0
				new.Measured.Runs[0].Mallocs = 0
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			old, n := fix(), fix()
			tc.mutate(old, n)
			r, err := Diff(old, n, DiffOptions{})
			if err != nil {
				t.Fatal(err)
			}
			out := r.Format()
			if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
				t.Fatalf("zero baseline leaked Inf/NaN: %q", out)
			}
			if !tc.wantRegression {
				if r.HasRegressions() {
					t.Fatalf("want clean diff: %s", out)
				}
				return
			}
			if len(r.Regressions) != 1 {
				t.Fatalf("want exactly one regression: %s", out)
			}
			l := r.Regressions[0]
			if l.Metric != tc.wantMetric || !l.ZeroBase || l.Old != 0 || l.New == 0 || l.Delta != 0 {
				t.Fatalf("zero-base line malformed: %+v", l)
			}
			if !strings.Contains(out, "zero baseline") {
				t.Fatalf("report must state new-vs-zero explicitly: %q", out)
			}
		})
	}
}

func TestDiffRejectsMismatchedAreasAndBadThresholds(t *testing.T) {
	n := fix()
	n.Header.Area = "other"
	if _, err := Diff(fix(), n, DiffOptions{}); err == nil {
		t.Fatal("cross-area diff should error")
	}
	if _, err := Diff(fix(), fix(), DiffOptions{CycleThreshold: -1}); err == nil {
		t.Fatal("negative threshold should error")
	}
}
