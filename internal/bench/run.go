package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"cedar/internal/core"
	"cedar/internal/fault"
	"cedar/internal/fleet"
	"cedar/internal/kernels"
	"cedar/internal/params"
	"cedar/internal/scope"
	"cedar/internal/sim"
)

// RunOptions tunes one campaign execution.
type RunOptions struct {
	// Jobs, when > 0, overrides the campaign's jobs list with this single
	// worker count — the CLI's -jobs flag.
	Jobs int
	// Shards, when > 0, overrides the campaign's shards list with this
	// single intra-run engine worker bound — the CLI's -shards flag.
	Shards int
	// Now, when non-nil, supplies the wall clock for the measured
	// section (the CLI passes time.Now). Nil omits wall times — library
	// and test runs stay clean under the nondeterminism lint, and the
	// deterministic section never depends on the clock either way.
	Now func() time.Time
	// Progress, when non-nil, receives one line per matrix pass.
	Progress io.Writer
}

// point is one fully resolved matrix cell.
type point struct {
	id, machine, workload, fault string

	pm     params.Machine
	fabric core.FabricKind
	w      WorkloadSpec
	plan   *fault.Plan
}

// workloadKey is the semantic (name-free) view of a workload spec used
// for cache keying: two differently named specs with equal semantics
// share one simulation.
type workloadKey struct {
	Kind, Variant        string
	N, Sweeps, Iters, BW int
	MaxCEs               int
	CEs, Stride, Gap     int
}

// Run executes the campaign: one full matrix pass per jobs × shards
// combination, each against a fresh private run cache, every point
// dispatched through the fleet pool. The first pass fills the artifact's
// deterministic section; every later pass re-derives it and
// byte-compares against the first, so a successful Run is itself a
// determinism proof across worker counts AND a sequential-vs-parallel
// engine equivalence proof across shard bounds. Points that degrade
// under their fault plan report status "degraded" with partial timing;
// any other failure aborts the campaign.
func Run(c *Campaign, opt RunOptions) (*Artifact, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	jobsList := c.Jobs
	if opt.Jobs > 0 {
		jobsList = []int{opt.Jobs}
	}
	if len(jobsList) == 0 {
		jobsList = []int{1}
	}
	shardsList := c.Shards
	if opt.Shards > 0 {
		shardsList = []int{opt.Shards}
	}
	if len(shardsList) == 0 {
		shardsList = []int{sim.Shards()}
	}
	faults := c.Faults
	if len(faults) == 0 {
		faults = []FaultSpec{{Name: "healthy"}}
	}
	metrics := c.Metrics
	if len(metrics) == 0 {
		metrics = DefaultMetrics
	}

	plans := make([]*fault.Plan, len(faults))
	faultMeta := make([]FaultMeta, len(faults))
	for i, fs := range faults {
		plan, err := fs.resolve(c.baseDir)
		if err != nil {
			return nil, err
		}
		plans[i] = plan
		faultMeta[i] = FaultMeta{Name: fs.Name, Plan: plan.Hash()}
		if plan != nil {
			faultMeta[i].Seed = plan.Seed
		}
	}

	var points []point
	for _, ms := range c.Machines {
		fabric, err := ms.fabricKind()
		if err != nil {
			return nil, err
		}
		pm := ms.Params()
		for _, w := range c.Workloads {
			for fi, fs := range faults {
				points = append(points, point{
					id:       ms.Name + "/" + w.Name + "/" + fs.Name,
					machine:  ms.Name,
					workload: w.Name,
					fault:    fs.Name,
					pm:       pm,
					fabric:   fabric,
					w:        w,
					plan:     plans[fi],
				})
			}
		}
	}

	art := &Artifact{Header: Header{
		Schema: SchemaVersion,
		Tool:   "cedarbench",
		Area:   c.Area,
		Notes:  c.Notes,
		Jobs:   jobsList,
		Shards: shardsList,
		Points: len(points),
		Faults: faultMeta,
	}}
	art.Measured.GoMaxProcs = runtime.GOMAXPROCS(0)
	art.Measured.NumCPU = runtime.NumCPU()

	// The shard bound is process-wide state (machines read it at build
	// time); pin it per pass and restore the caller's setting on every
	// path out.
	prevShards := sim.Shards()
	defer sim.SetShards(prevShards)

	type pass struct{ shards, jobs int }
	var passes []pass
	for _, s := range shardsList {
		for _, j := range jobsList {
			passes = append(passes, pass{shards: s, jobs: j})
		}
	}

	var baseline []byte
	for passIdx, ps := range passes {
		j := ps.jobs
		sim.SetShards(ps.shards)
		cache := fleet.NewCache()
		fjobs := make([]fleet.Job[Outcome], len(points))
		for i, pt := range points {
			wk := workloadKey{Kind: pt.w.Kind, Variant: pt.w.Variant,
				N: pt.w.N, Sweeps: pt.w.Sweeps, Iters: pt.w.Iters, BW: pt.w.BW,
				MaxCEs: pt.w.MaxCEs, CEs: pt.w.CEs, Stride: pt.w.Stride, Gap: pt.w.Gap}
			fjobs[i] = fleet.Job[Outcome]{
				// Keyed over semantics only — never the axis names — so
				// coincidentally equal points simulate once. The job builds
				// its own hub internally (the fleet-level hub stays nil)
				// precisely so keyed jobs remain cacheable while still
				// capturing metrics and attribution as plain result data.
				Key: fleet.Key("bench", pt.pm, int(pt.fabric), wk, pt.plan.Fingerprint(), strings.Join(metrics, ",")),
				Run: func(*scope.Hub) (Outcome, error) {
					return runPoint(pt, metrics, opt.Now)
				},
			}
		}

		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		var start time.Time
		if opt.Now != nil {
			start = opt.Now()
		}
		results, err := fleet.Run(fleet.Config{Jobs: j, Cache: cache}, fjobs)
		if err != nil {
			return nil, err
		}
		runtime.ReadMemStats(&ms1)

		det := Deterministic{Points: make([]PointResult, len(points))}
		for i, out := range results {
			det.Points[i] = PointResult{
				ID: points[i].id, Machine: points[i].machine,
				Workload: points[i].workload, Fault: points[i].fault,
				Outcome: out,
			}
		}
		st := cache.Stats()
		det.Fleet = FleetStats{Lookups: st.Lookups, Misses: st.Misses, Served: st.Served(), HitRate: st.HitRate()}

		probe := Artifact{Deterministic: det}
		b, err := probe.DeterministicBytes()
		if err != nil {
			return nil, err
		}
		if passIdx == 0 {
			art.Deterministic = det
			baseline = b
			for i, out := range results {
				if out.WallNS > 0 {
					art.Measured.Points = append(art.Measured.Points, PointMeasure{ID: points[i].id, WallNS: out.WallNS})
				}
			}
		} else if !bytes.Equal(b, baseline) {
			return nil, fmt.Errorf("bench: determinism violation — deterministic section at jobs=%d shards=%d differs from jobs=%d shards=%d",
				j, ps.shards, passes[0].jobs, passes[0].shards)
		}

		run := RunMeasure{Jobs: j, Shards: ps.shards, Mallocs: ms1.Mallocs - ms0.Mallocs, AllocBytes: ms1.TotalAlloc - ms0.TotalAlloc}
		if opt.Now != nil {
			run.WallNS = opt.Now().Sub(start).Nanoseconds()
		}
		art.Measured.Runs = append(art.Measured.Runs, run)
		if opt.Progress != nil {
			fmt.Fprintf(opt.Progress, "bench %s: pass %d/%d (jobs=%d shards=%d): %d points, cache served %d/%d\n",
				c.Area, passIdx+1, len(passes), j, ps.shards, len(points), st.Served(), st.Lookups)
		}
	}
	return art, nil
}

// RunSpec executes one (machine × workload × fault plan) point on a
// freshly built machine with a private hub — cedarserve's entry into the
// bench vocabulary. metrics filters the scope snapshot captured into the
// outcome (nil selects DefaultMetrics); plan nil runs healthy, ignoring
// any process-wide default. A run that degrades under its plan returns
// Status "degraded" with partial timing and a nil error, exactly like a
// campaign point.
func RunSpec(ms MachineSpec, ws WorkloadSpec, plan *fault.Plan, metrics []string) (Outcome, error) {
	fabric, err := ms.fabricKind()
	if err != nil {
		return Outcome{}, err
	}
	if err := ws.Validate(); err != nil {
		return Outcome{}, err
	}
	if len(metrics) == 0 {
		metrics = DefaultMetrics
	}
	pt := point{
		id:      ms.Name + "/" + ws.Name,
		machine: ms.Name, workload: ws.Name,
		pm: ms.Params(), fabric: fabric, w: ws, plan: plan,
	}
	return runPoint(pt, metrics, nil)
}

// runPoint simulates one matrix cell on a freshly built machine with a
// private hub, returning the identity-free outcome the cache stores.
func runPoint(pt point, metrics []string, now func() time.Time) (Outcome, error) {
	hub := scope.NewHub()
	m, err := core.New(pt.pm, core.Options{
		Fabric: pt.fabric, Scope: hub,
		Faults: pt.plan, NoFaults: pt.plan == nil,
	})
	if err != nil {
		return Outcome{}, fmt.Errorf("bench: point %s: %w", pt.id, err)
	}
	var start time.Time
	if now != nil {
		start = now()
	}
	res, err := runWorkload(m, pt.w)
	out := Outcome{Status: "ok"}
	switch {
	case err == nil:
		out.SimCycles, out.Flops, out.MFLOPS = res.Cycles, res.Flops, res.MFLOPS
	case errors.Is(err, fault.ErrDegraded):
		// The plan starved the program or exhausted a retry budget;
		// report what the machine measured before giving up.
		out.Status = "degraded"
		out.SimCycles, out.Flops, out.MFLOPS = res.Cycles, res.Flops, res.MFLOPS
		if out.SimCycles == 0 {
			out.SimCycles = m.Engine.Cycle()
		}
	default:
		return Outcome{}, fmt.Errorf("bench: point %s: %w", pt.id, err)
	}
	if now != nil {
		out.WallNS = now().Sub(start).Nanoseconds()
	}
	out.Faults = m.FaultCounters()
	out.Metrics = filterMetrics(hub.Snapshot(), metrics)
	out.Attribution = hub.Attribution()
	return out, nil
}

// runWorkload dispatches a workload spec to its kernel, applying the
// kind defaults documented on WorkloadSpec.
func runWorkload(m *core.Machine, w WorkloadSpec) (kernels.Result, error) {
	n := w.N
	pick := func(def int) int {
		if n > 0 {
			return n
		}
		return def
	}
	switch w.Kind {
	case "rank":
		mode := kernels.RKPref
		switch w.Variant {
		case "nopref":
			mode = kernels.RKNoPref
		case "cache":
			mode = kernels.RKCache
		}
		return kernels.RankUpdate(m, pick(64), mode)
	case "vectorload":
		sweeps := w.Sweeps
		if sweeps == 0 {
			sweeps = 1
		}
		return kernels.VectorLoad(m, pick(1024), sweeps)
	case "trimat":
		return kernels.TriMat(m, pick(64))
	case "cg":
		iters := w.Iters
		if iters == 0 {
			iters = 2
		}
		return kernels.CG(m, kernels.CGConfig{N: pick(64), Iters: iters, MaxCEs: w.MaxCEs})
	case "banded":
		bw := w.BW
		if bw == 0 {
			bw = 11
		}
		return kernels.Banded(m, kernels.BandedConfig{N: pick(64), BW: bw, MaxCEs: w.MaxCEs})
	case "membw":
		nce := w.CEs
		if nce == 0 {
			nce = 1
		}
		stride := int64(w.Stride)
		if stride == 0 {
			stride = 1
		}
		pt, err := kernels.MemBW(m, nce, stride, pick(4096))
		if err != nil {
			return kernels.Result{}, err
		}
		// The stream kernel does no arithmetic; bandwidth lives in the
		// gmem.* metrics, the deterministic cycle count is the result.
		return kernels.Result{Result: core.Result{Cycles: pt.Cycles}}, nil
	case "latency":
		return kernels.LoadLatency(m, pick(2000), int64(w.Gap))
	}
	return kernels.Result{}, fmt.Errorf("bench: unknown workload kind %q", w.Kind)
}

// filterMetrics keeps the samples whose name starts with any of the
// campaign's metric prefixes; input order (sorted by name) is preserved.
func filterMetrics(samples []scope.Sample, prefixes []string) []scope.Sample {
	var out []scope.Sample
	for _, s := range samples {
		for _, p := range prefixes {
			if strings.HasPrefix(s.Name, p) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}
