package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cedar/internal/fault"
)

// mini returns a small campaign for runner tests: one machine, two
// workloads (one duplicated semantically under another name, to exercise
// cache dedup), healthy and demo fault plans.
func mini() *Campaign {
	return &Campaign{
		Area:     "mini",
		Machines: []MachineSpec{{Name: "cedar"}},
		Workloads: []WorkloadSpec{
			{Name: "vl", Kind: "vectorload", N: 256},
			{Name: "vl-again", Kind: "vectorload", N: 256},
			{Name: "rank16", Kind: "rank", N: 16, Variant: "pref"},
		},
		Faults: []FaultSpec{{Name: "healthy"}, {Name: "demo", Demo: true}},
	}
}

func TestValidateRejectsBadCampaigns(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Campaign)
		want string
	}{
		{"no area", func(c *Campaign) { c.Area = "" }, "area"},
		{"area with slash", func(c *Campaign) { c.Area = "a/b" }, "bare token"},
		{"bad schema", func(c *Campaign) { c.Schema = 99 }, "schema"},
		{"no machines", func(c *Campaign) { c.Machines = nil }, "machine"},
		{"no workloads", func(c *Campaign) { c.Workloads = nil }, "workload"},
		{"dup machine", func(c *Campaign) { c.Machines = append(c.Machines, MachineSpec{Name: "cedar"}) }, "duplicate"},
		{"unnamed workload", func(c *Campaign) { c.Workloads[0].Name = "" }, "name"},
		{"slash in name", func(c *Campaign) { c.Workloads[0].Name = "a/b" }, "'/'"},
		{"bad kind", func(c *Campaign) { c.Workloads[0].Kind = "mystery" }, "unknown kind"},
		{"bad variant", func(c *Campaign) { c.Workloads[2].Variant = "turbo" }, "variant"},
		{"negative size", func(c *Campaign) { c.Workloads[0].N = -1 }, "non-negative"},
		{"bad fabric", func(c *Campaign) { c.Machines[0].Fabric = "token-ring" }, "fabric"},
		{"zero jobs", func(c *Campaign) { c.Jobs = []int{0} }, "jobs"},
		{"zero shards", func(c *Campaign) { c.Shards = []int{0} }, "shards"},
	}
	for _, tc := range cases {
		c := mini()
		tc.mut(c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	if err := mini().Validate(); err != nil {
		t.Fatalf("mini campaign should validate: %v", err)
	}
}

func TestFaultSpecSourcesAreExclusive(t *testing.T) {
	fs := FaultSpec{Name: "both", Demo: true, Path: "x.json"}
	if _, err := fs.resolve(""); err == nil {
		t.Fatal("demo+path should be rejected")
	}
	plan, err := FaultSpec{Name: "healthy"}.resolve("")
	if err != nil || plan != nil {
		t.Fatalf("healthy spec: got plan=%v err=%v", plan, err)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.json")
	if err := os.WriteFile(path, []byte(`{"area":"x","machines":[{"name":"m"}],"workloads":[{"name":"w","kind":"trimat"}],"surprise":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "surprise") {
		t.Fatalf("unknown field should fail load, got %v", err)
	}
}

func TestLoadResolvesFaultPathsRelativeToConfig(t *testing.T) {
	dir := t.TempDir()
	planJSON, err := json.Marshal(fault.DemoPlan())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "plan.json"), planJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := `{"area":"x","machines":[{"name":"m"}],"workloads":[{"name":"w","kind":"trimat","n":16}],"faults":[{"name":"f","path":"plan.json"}]}`
	path := filepath.Join(dir, "c.json")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := c.Faults[0].resolve(c.baseDir)
	if err != nil {
		t.Fatalf("relative plan path should resolve against config dir: %v", err)
	}
	if plan.Hash() != fault.DemoPlan().Hash() {
		t.Fatalf("loaded plan differs from demo plan")
	}
}

// TestRunDeterministicAcrossJobs is the package-level half of the
// determinism gate: two executions at different worker counts must agree
// byte-for-byte on the deterministic section. (Run's internal self-check
// covers multi-pass campaigns; this covers separate processes-worth of
// state — fresh caches, fresh hubs.)
func TestRunDeterministicAcrossJobs(t *testing.T) {
	a1, err := Run(mini(), RunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	a8, err := Run(mini(), RunOptions{Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := a1.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	b8, err := a8.DeterministicBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b8) {
		t.Fatalf("deterministic sections differ between jobs=1 and jobs=8:\n%s\n---\n%s", b1, b8)
	}
}

// TestRunDeterministicAcrossShards exercises the shards pass axis: one
// Run at shards {1, 4} must byte-agree across its own passes (Run's
// internal check fails otherwise), record one measured entry per pass,
// and report the host parallelism the wall times were taken under.
func TestRunDeterministicAcrossShards(t *testing.T) {
	c := mini()
	c.Shards = []int{1, 4}
	art, err := Run(c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := art.Header.Shards; len(got) != 2 || got[0] != 1 || got[1] != 4 {
		t.Errorf("Header.Shards = %v, want [1 4]", got)
	}
	if len(art.Measured.Runs) != 2 {
		t.Fatalf("Measured.Runs has %d entries, want one per shards pass (2)", len(art.Measured.Runs))
	}
	for i, want := range []int{1, 4} {
		if art.Measured.Runs[i].Shards != want {
			t.Errorf("Runs[%d].Shards = %d, want %d", i, art.Measured.Runs[i].Shards, want)
		}
	}
	if art.Measured.GoMaxProcs < 1 || art.Measured.NumCPU < 1 {
		t.Errorf("host fields missing: gomaxprocs=%d num_cpu=%d", art.Measured.GoMaxProcs, art.Measured.NumCPU)
	}

	// The shards override narrows the axis to one pass, like -jobs.
	art, err = Run(mini(), RunOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Measured.Runs) != 1 || art.Measured.Runs[0].Shards != 2 {
		t.Errorf("Shards override: runs = %+v, want one pass at shards=2", art.Measured.Runs)
	}
}

func TestRunOutcomes(t *testing.T) {
	c := mini()
	c.Jobs = []int{1, 4} // exercises the internal cross-pass byte self-check
	art, err := Run(c, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(art.Deterministic.Points), 6; got != want {
		t.Fatalf("points: got %d, want %d", got, want)
	}
	if art.Header.Points != 6 || art.Header.Tool != "cedarbench" || art.Header.Schema != SchemaVersion {
		t.Fatalf("bad header: %+v", art.Header)
	}
	// vl and vl-again are semantically identical: per pass, 6 lookups but
	// only 4 distinct simulations.
	fl := art.Deterministic.Fleet
	if fl.Lookups != 6 || fl.Misses != 4 || fl.Served != 2 {
		t.Fatalf("fleet stats: %+v", fl)
	}
	byID := map[string]PointResult{}
	for _, p := range art.Deterministic.Points {
		if p.SimCycles <= 0 {
			t.Errorf("%s: no simcycles", p.ID)
		}
		if len(p.Metrics) == 0 {
			t.Errorf("%s: no metrics captured", p.ID)
		}
		if len(p.Attribution) == 0 {
			t.Errorf("%s: no attribution captured", p.ID)
		}
		byID[p.ID] = p
	}
	dup, orig := byID["cedar/vl-again/healthy"], byID["cedar/vl/healthy"]
	if dup.SimCycles != orig.SimCycles {
		t.Fatalf("semantically equal points disagree: %d vs %d", dup.SimCycles, orig.SimCycles)
	}
	healthy, demo := byID["cedar/rank16/healthy"], byID["cedar/rank16/demo"]
	if healthy.Faults.Injected != 0 {
		t.Fatalf("healthy point reports injections: %+v", healthy.Faults)
	}
	if demo.Faults.Injected == 0 {
		t.Fatalf("demo-fault point reports no injections")
	}
	if demo.SimCycles <= healthy.SimCycles {
		t.Errorf("demo faults should slow the run: %d vs %d", demo.SimCycles, healthy.SimCycles)
	}
	// One measured entry per pass, no wall times (no clock injected).
	if len(art.Measured.Runs) != 2 || art.Measured.Runs[0].Jobs != 1 || art.Measured.Runs[1].Jobs != 4 {
		t.Fatalf("measured runs: %+v", art.Measured.Runs)
	}
	for _, r := range art.Measured.Runs {
		if r.WallNS != 0 {
			t.Errorf("wall time recorded without a clock: %+v", r)
		}
		if r.Mallocs == 0 {
			t.Errorf("no alloc delta recorded: %+v", r)
		}
	}
	if len(art.Measured.Points) != 0 {
		t.Errorf("per-point wall times recorded without a clock")
	}
}

func TestArtifactRoundTrip(t *testing.T) {
	art, err := Run(&Campaign{
		Area:      "rt",
		Machines:  []MachineSpec{{Name: "m"}},
		Workloads: []WorkloadSpec{{Name: "w", Kind: "trimat", N: 16}},
	}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	if err := art.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	b0, _ := art.DeterministicBytes()
	b1, _ := got.DeterministicBytes()
	if !bytes.Equal(b0, b1) {
		t.Fatal("round trip changed the deterministic section")
	}

	// A wrong schema version must be refused.
	got.Header.Schema = SchemaVersion + 1
	raw, _ := got.Encode()
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadArtifact(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("future schema should be refused, got %v", err)
	}
}

// TestSmokeMatchesCommittedConfig keeps the built-in smoke campaign and
// the committed bench/campaigns/smoke.json from drifting apart: both are
// sources for `cedarbench run`, so they must describe the same matrix.
func TestSmokeMatchesCommittedConfig(t *testing.T) {
	committed, err := Load(filepath.Join("..", "..", "bench", "campaigns", "smoke.json"))
	if err != nil {
		t.Fatal(err)
	}
	committed.baseDir = ""
	want, err := json.Marshal(Smoke())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(committed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("bench/campaigns/smoke.json drifted from bench.Smoke():\ncommitted: %s\nbuilt-in:  %s", got, want)
	}
	if err := Smoke().Validate(); err != nil {
		t.Fatal(err)
	}
}
