package ccbus

import (
	"testing"

	"cedar/internal/params"
)

func newBus() *Bus {
	return New(params.Default(), 8)
}

func TestConcurrentStartCost(t *testing.T) {
	b := newBus()
	p := params.Default()
	at := b.ConcurrentStart(100, 64)
	if at != 100+int64(p.CDoallStart) {
		t.Fatalf("start completes at %d, want %d", at, 100+int64(p.CDoallStart))
	}
	// A few microseconds, as the paper says.
	us := float64(p.CDoallStart) * params.CycleNS / 1000
	if us < 1 || us > 10 {
		t.Errorf("CDOALL start = %.1f µs, want a few µs", us)
	}
}

func TestClaimsCoverLoopExactlyOnce(t *testing.T) {
	b := newBus()
	b.ConcurrentStart(0, 20)
	seen := map[int]bool{}
	cycle := int64(100)
	for {
		iter, at := b.Claim(cycle)
		cycle = at
		if iter < 0 {
			break
		}
		if seen[iter] {
			t.Fatalf("iteration %d claimed twice", iter)
		}
		seen[iter] = true
	}
	if len(seen) != 20 {
		t.Fatalf("claimed %d iterations, want 20", len(seen))
	}
}

func TestClaimsSerializeOnBus(t *testing.T) {
	b := newBus()
	b.ConcurrentStart(0, 100)
	// 8 CEs all claim at the same cycle: grants must be spaced by the
	// claim cost.
	var ats []int64
	for ce := 0; ce < 8; ce++ {
		_, at := b.Claim(1000)
		ats = append(ats, at)
	}
	cost := int64(params.Default().CCBusClaim)
	for i := 1; i < len(ats); i++ {
		if ats[i]-ats[i-1] != cost {
			t.Fatalf("claim %d at %d, previous at %d; want spacing %d", i, ats[i], ats[i-1], cost)
		}
	}
	if b.Stats().WaitCyc == 0 {
		t.Error("simultaneous claims should record bus wait")
	}
}

func TestClaimBlockStaticChunks(t *testing.T) {
	b := newBus()
	b.ConcurrentStart(0, 30)
	covered := 0
	for {
		first, count, _ := b.ClaimBlock(0, 8)
		if count == 0 {
			break
		}
		if first != covered {
			t.Fatalf("block starts at %d, want %d", first, covered)
		}
		covered += count
	}
	if covered != 30 {
		t.Fatalf("blocks covered %d, want 30", covered)
	}
}

func TestJoinFiresOnLastArrival(t *testing.T) {
	b := newBus()
	b.ConcurrentStart(0, 8)
	var gen int64
	for ce := 0; ce < 7; ce++ {
		g, _, ok := b.JoinArrive(int64(10 + ce))
		gen = g
		if ok {
			t.Fatalf("join fired after %d arrivals", ce+1)
		}
	}
	g, done, ok := b.JoinArrive(50)
	if !ok {
		t.Fatal("join did not fire on 8th arrival")
	}
	if g != gen {
		t.Fatalf("generation changed mid-join: %d vs %d", g, gen)
	}
	if done < 50+int64(params.Default().BarrierClusterCy) {
		t.Errorf("join done at %d, want ≥ %d", done, 50+int64(params.Default().BarrierClusterCy))
	}
	// Earlier arrivals can poll for completion.
	if at, fin := b.JoinDone(gen, done); !fin || at != done {
		t.Errorf("JoinDone(gen, %d) = %d,%v; want %d,true", done, at, fin, done)
	}
	if _, fin := b.JoinDone(gen, done-1); fin {
		t.Error("JoinDone before completion cycle reported true")
	}
}

func TestClaimWithoutLoopReturnsExhausted(t *testing.T) {
	b := newBus()
	if iter, _ := b.Claim(0); iter != -1 {
		t.Fatalf("claim on idle bus returned %d, want -1", iter)
	}
}

func TestTwoLoopsSequential(t *testing.T) {
	b := newBus()
	b.ConcurrentStart(0, 4)
	for i := 0; i < 4; i++ {
		if iter, _ := b.Claim(0); iter != i {
			t.Fatalf("loop1 claim %d != %d", iter, i)
		}
	}
	for ce := 0; ce < 8; ce++ {
		b.JoinArrive(100)
	}
	b.ConcurrentStart(200, 3)
	got := 0
	for {
		iter, _ := b.Claim(200)
		if iter < 0 {
			break
		}
		got++
	}
	if got != 3 {
		t.Fatalf("loop2 yielded %d iterations, want 3", got)
	}
}
