// Package ccbus models the Alliant FX/8 concurrency control bus: the
// dedicated fork/join fabric connecting the eight CEs of one cluster.
//
// Concurrency control instructions implement fast fork, join and
// synchronization. A single "concurrent start" instruction spreads the
// iterations of a parallel loop from one CE to all CEs in the cluster by
// broadcasting the program counter and setting up private per-processor
// stacks — the whole cluster is gang-scheduled. CEs then self-schedule
// iterations among themselves with short bus transactions, which is why a
// CDOALL starts in a few microseconds while an XDOALL through global
// memory needs ≈90 µs.
//
// The bus is a serial resource: one transaction at a time. Timing is
// modeled by booking: a requester at cycle c is granted at
// max(c, busFree) and the bus is busy for the transaction cost.
package ccbus

import "cedar/internal/params"

// Bus is one cluster's concurrency control bus.
type Bus struct {
	p       params.Machine
	nCE     int
	busFree int64

	// Current concurrent loop state.
	loopActive bool
	nextIter   int
	limit      int

	// Join/barrier state.
	joined  int
	genDone int64 // completion cycle of the current join generation
	gen     int64

	stats Stats
}

// Stats holds cumulative bus counters.
type Stats struct {
	Broadcasts int64
	Claims     int64
	Joins      int64
	WaitCyc    int64 // cycles requesters spent waiting for the bus
	// BusyCyc counts cycles the serialized bus was occupied by a booked
	// transaction. Bookings never overlap, so BusyCyc can exceed elapsed
	// cycles only by the tail of a transaction booked past the end of a
	// run.
	BusyCyc int64
}

// New builds a bus for a cluster of nCE processors.
func New(p params.Machine, nCE int) *Bus {
	return &Bus{p: p, nCE: nCE}
}

// Stats returns cumulative counters.
func (b *Bus) Stats() Stats { return b.stats }

// book serializes a transaction of the given cost starting no earlier than
// cycle; it returns the completion cycle.
func (b *Bus) book(cycle int64, cost int) int64 {
	start := cycle
	if b.busFree > start {
		b.stats.WaitCyc += b.busFree - start
		start = b.busFree
	}
	b.busFree = start + int64(cost)
	b.stats.BusyCyc += int64(cost)
	return b.busFree
}

// ConcurrentStart broadcasts a parallel loop of n iterations to the
// cluster. It returns the cycle at which every CE has the loop (the
// "spread" is one broadcast, CDoallStart cycles). Iterations are then
// claimed with Claim.
func (b *Bus) ConcurrentStart(cycle int64, n int) int64 {
	b.stats.Broadcasts++
	b.loopActive = true
	b.nextIter = 0
	b.limit = n
	return b.book(cycle, b.p.CDoallStart)
}

// Claim self-schedules the next iteration: a short serialized bus
// transaction. It returns the iteration index (or -1 when the loop is
// exhausted) and the cycle at which the claim completes.
func (b *Bus) Claim(cycle int64) (iter int, at int64) {
	at = b.book(cycle, b.p.CCBusClaim)
	b.stats.Claims++
	if !b.loopActive || b.nextIter >= b.limit {
		return -1, at
	}
	iter = b.nextIter
	b.nextIter++
	return iter, at
}

// ClaimBlock claims up to chunk consecutive iterations in one transaction
// (static chunking uses this with chunk = ceil(n/nCE)). It returns the
// first iteration, the count claimed (0 when exhausted), and the
// completion cycle.
func (b *Bus) ClaimBlock(cycle int64, chunk int) (first, count int, at int64) {
	at = b.book(cycle, b.p.CCBusClaim)
	b.stats.Claims++
	if !b.loopActive || b.nextIter >= b.limit {
		return 0, 0, at
	}
	first = b.nextIter
	count = chunk
	if first+count > b.limit {
		count = b.limit - first
	}
	b.nextIter += count
	return first, count, at
}

// JoinArrive signals that a CE reached the join point. When the count
// completes the cluster, the join fires: the returned cycle is valid only
// on the completing call (ok true); other callers poll JoinDone with the
// generation they observed.
func (b *Bus) JoinArrive(cycle int64) (gen int64, done int64, ok bool) {
	b.joined++
	gen = b.gen
	if b.joined < b.nCE {
		return gen, 0, false
	}
	// Last arrival completes the join after a bus round.
	b.stats.Joins++
	b.joined = 0
	b.gen++
	b.genDone = b.book(cycle, b.p.BarrierClusterCy)
	b.loopActive = false
	return gen, b.genDone, true
}

// JoinDone reports whether join generation gen has completed by cycle, and
// if so when.
func (b *Bus) JoinDone(gen int64, cycle int64) (int64, bool) {
	if b.gen > gen && b.genDone <= cycle {
		return b.genDone, true
	}
	if b.gen > gen {
		return b.genDone, cycle >= b.genDone
	}
	return 0, false
}
