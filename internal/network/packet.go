// Package network models Cedar's unidirectional global interconnection
// networks: multistage shuffle-exchange (omega) networks built from 8×8
// crossbar switches with 64-bit data paths, two-word queues per switch
// port, stage-to-stage flow control, and tag-based self-routing in the
// style of Lawrie's alignment networks [Lawr75].
//
// Cedar uses two such networks — a forward network carrying requests from
// the 32 CEs to the 32 global memory modules, and a reverse network
// carrying replies back. Both are instances of the same Fabric.
//
// A packet consists of one to four 64-bit words; the first word carries
// routing and control information and the memory address. A W-word packet
// occupies a link for W cycles, which is how store traffic consumes twice
// the bandwidth of load requests.
package network

import "fmt"

// Kind identifies the packet type on the wire.
type Kind uint8

// Packet kinds. Requests travel on the forward network, replies on the
// reverse network.
const (
	// ReadReq asks a memory module for one word. 1 word on the wire.
	ReadReq Kind = iota
	// WriteReq carries one word to be stored. 2 words on the wire.
	WriteReq
	// SyncReq carries a Test-And-Operate command for the module's
	// synchronization processor. 2 words on the wire.
	SyncReq
	// ReadReply returns a loaded word. 1 word on the wire (the data path
	// is 64 bits wide and routing rides in unused address bits).
	ReadReply
	// WriteAck confirms a store for memory-ordering points. 1 word.
	WriteAck
	// SyncReply returns the pre-operation value of a synchronization
	// location together with the test outcome. 1 word.
	SyncReply
	// NackReply bounces a prefetch read whose module refused service
	// (fault injection); the PFU reissues the element. 1 word.
	NackReply
)

var kindNames = [...]string{"ReadReq", "WriteReq", "SyncReq", "ReadReply", "WriteAck", "SyncReply", "NackReply"}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// WireWords returns the number of 64-bit words a packet of this kind
// occupies, including the routing/address word.
func (k Kind) WireWords() int {
	switch k {
	case WriteReq, SyncReq:
		return 2
	default:
		return 1
	}
}

// IsReply reports whether the kind travels on the reverse network.
func (k Kind) IsReply() bool {
	return k == ReadReply || k == WriteAck || k == SyncReply || k == NackReply
}

// PrefetchTagBit marks packet tags owned by a prefetch unit. It lives
// here (rather than in internal/prefetch) because the memory modules
// and the fault layer must recognize prefetch traffic: PFU reads are
// the only idempotent, retried packets, so they are the only ones a
// fault may NACK or drop.
const PrefetchTagBit = 1 << 31

// droppable reports whether a fault may lose this packet in transit:
// only prefetch read traffic, which the PFU detects (by NACK or
// timeout) and reissues. Stores and synchronization operations are
// never dropped — retrying them would double-apply their side effects.
func droppable(p *Packet) bool {
	return p.Tag&PrefetchTagBit != 0 && (p.Kind == ReadReq || p.Kind == ReadReply)
}

// TestOp is the relational test of a Cedar Test-And-Operate synchronization
// instruction [ZhYe87]. The test is evaluated against the current value of
// the synchronization location; the mutation is applied only if it passes.
type TestOp uint8

// Relational tests on the 32-bit synchronization field.
const (
	TestAlways TestOp = iota // unconditional (plain fetch-and-op)
	TestEQ
	TestNE
	TestLT
	TestLE
	TestGT
	TestGE
)

// Eval applies the test to value v with argument arg.
func (t TestOp) Eval(v, arg int64) bool {
	switch t {
	case TestAlways:
		return true
	case TestEQ:
		return v == arg
	case TestNE:
		return v != arg
	case TestLT:
		return v < arg
	case TestLE:
		return v <= arg
	case TestGT:
		return v > arg
	case TestGE:
		return v >= arg
	}
	return false
}

// MutOp is the operate half of Test-And-Operate.
type MutOp uint8

// Mutations applied by the synchronization processor when the test passes.
const (
	OpNone  MutOp = iota // test only
	OpRead               // no mutation, return value
	OpWrite              // store operand
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
)

// Apply returns the new value for location value v and operand arg.
func (m MutOp) Apply(v, arg int64) int64 {
	switch m {
	case OpNone, OpRead:
		return v
	case OpWrite:
		return arg
	case OpAdd:
		return v + arg
	case OpSub:
		return v - arg
	case OpAnd:
		return v & arg
	case OpOr:
		return v | arg
	case OpXor:
		return v ^ arg
	}
	return v
}

// Packet is one message on a Cedar network.
type Packet struct {
	Kind Kind
	Src  int    // ingress port
	Dst  int    // egress port
	Addr uint64 // global word address (8-byte words)

	// Tag lets the issuer match replies to requests (for example, a
	// prefetch buffer slot index).
	Tag uint32

	// Value is the store data (WriteReq), operand (SyncReq), or returned
	// value (ReadReply, SyncReply).
	Value int64

	// Test/Mut describe a SyncReq command; TestArg is the comparison
	// operand. SyncReply sets TestPassed.
	Test       TestOp
	Mut        MutOp
	TestArg    int64
	TestPassed bool

	// Issue is the cycle the original request entered the forward
	// network; replies copy it so the issuer can compute round-trip
	// latency. Maintained by the caller, not the fabric.
	Issue int64

	// readyAt gates cut-through: the packet may not leave a queue before
	// this cycle (it is still arriving, or it just moved this cycle).
	readyAt int64
}

// Words returns the wire length of the packet.
func (p *Packet) Words() int { return p.Kind.WireWords() }

// String implements fmt.Stringer for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %d->%d addr=%#x tag=%d", p.Kind, p.Src, p.Dst, p.Addr, p.Tag)
}
