package network

import "testing"

// FuzzOmegaRouting drives the fabric with attacker-chosen traffic and
// checks the invariants that every other component depends on: packets
// are delivered exactly once, at their destination, in per-pair order,
// and the fabric drains to idle.
func FuzzOmegaRouting(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, uint8(2))
	f.Add([]byte{63, 63, 63, 0, 0, 0}, uint8(1))
	f.Add([]byte{7, 56, 9, 41, 3, 3, 3, 3}, uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, qw uint8) {
		if len(raw) == 0 || len(raw) > 512 {
			return
		}
		queueWords := int(qw%8) + 1
		o := NewOmega(OmegaConfig{Name: "fuzz", Ports: 64, Radix: 8, QueueWords: queueWords})

		type key struct{ src, dst int }
		lastTag := map[key]int{}
		want := len(raw) / 2
		sent, recv := 0, 0
		cycle := int64(0)
		for recv < want {
			if sent < want {
				src := int(raw[2*sent]) % 64
				dst := int(raw[2*sent+1]) % 64
				kind := ReadReq
				if raw[2*sent]%3 == 0 {
					kind = WriteReq
				}
				if o.Offer(&Packet{Kind: kind, Src: src, Dst: dst,
					Tag: uint32(sent), Addr: uint64(src)<<32 | uint64(dst)}) {
					sent++
				}
			}
			o.Tick(cycle)
			for p := 0; p < 64; p++ {
				for {
					pkt := o.Poll(p)
					if pkt == nil {
						break
					}
					if pkt.Dst != p {
						t.Fatalf("misdelivered %v at %d", pkt, p)
					}
					src := int(pkt.Addr >> 32)
					k := key{src, pkt.Dst}
					if prev, ok := lastTag[k]; ok && int(pkt.Tag) < prev {
						t.Fatalf("pair %v out of order: %d after %d", k, pkt.Tag, prev)
					}
					lastTag[k] = int(pkt.Tag)
					recv++
				}
			}
			cycle++
			if cycle > 1_000_000 {
				t.Fatalf("stalled at sent=%d recv=%d", sent, recv)
			}
		}
		for !o.Idle() {
			o.Tick(cycle)
			for p := 0; p < 64; p++ {
				for o.Poll(p) != nil {
					recv++
				}
			}
			cycle++
			if cycle > 2_000_000 {
				t.Fatal("drain stalled")
			}
		}
		if recv != sent {
			t.Fatalf("conservation: sent %d recv %d", sent, recv)
		}
	})
}
