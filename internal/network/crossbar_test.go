package network

import (
	"math/rand"
	"testing"
)

func TestCrossbarDelivers(t *testing.T) {
	c := NewCrossbar("xbar", 64, 2)
	for dst := 0; dst < 64; dst++ {
		if !c.Offer(&Packet{Kind: ReadReq, Src: 0, Dst: dst, Tag: uint32(dst)}) {
			t.Fatal("ideal crossbar refused a packet")
		}
	}
	got := drain(t, c, 0, 1000)
	n := 0
	for port, pkts := range got {
		for _, p := range pkts {
			if p.Dst != port || int(p.Tag) != port {
				t.Fatalf("misdelivery: %v at %d", p, port)
			}
			n++
		}
	}
	if n != 64 {
		t.Fatalf("delivered %d, want 64", n)
	}
}

func TestCrossbarLatency(t *testing.T) {
	c := NewCrossbar("xbar", 8, 2)
	if !c.Offer(&Packet{Kind: ReadReq, Src: 1, Dst: 5}) {
		t.Fatal("refused")
	}
	var cycle int64
	for ; cycle < 50; cycle++ {
		c.Tick(cycle)
		if c.Poll(5) != nil {
			break
		}
	}
	// Offer before tick 0: transit done at cycle 2, serialized 1 word -> 3,
	// pollable once pushed at the tick where readyAt <= cycle.
	if cycle < 2 || cycle > 4 {
		t.Fatalf("crossbar latency %d cycles, want 2-4", cycle)
	}
}

func TestCrossbarEgressSerialization(t *testing.T) {
	// 32 packets to one port cannot drain faster than 1/cycle.
	c := NewCrossbar("xbar", 64, 2)
	for s := 0; s < 32; s++ {
		if !c.Offer(&Packet{Kind: ReadReq, Src: s, Dst: 7}) {
			t.Fatal("refused")
		}
	}
	var cycle int64
	recv := 0
	lastBatch := 0
	for recv < 32 && cycle < 200 {
		c.Tick(cycle)
		batch := 0
		for c.Poll(7) != nil {
			recv++
			batch++
		}
		if batch > 1 {
			lastBatch = batch
		}
		cycle++
	}
	if recv != 32 {
		t.Fatalf("received %d, want 32", recv)
	}
	if lastBatch > 1 {
		t.Errorf("egress port delivered %d packets in one cycle, want ≤1", lastBatch)
	}
	if cycle < 32 {
		t.Errorf("32 packets drained in %d cycles, faster than 1 word/cycle", cycle)
	}
}

func TestCrossbarNoInternalBlocking(t *testing.T) {
	// A permutation (distinct destinations) must complete in ≈latency
	// cycles regardless of load: no head-of-line blocking.
	c := NewCrossbar("xbar", 64, 2)
	perm := rand.New(rand.NewSource(7)).Perm(64)
	for s, d := range perm {
		if !c.Offer(&Packet{Kind: ReadReq, Src: s, Dst: d}) {
			t.Fatal("refused")
		}
	}
	recv := 0
	var cycle int64
	for recv < 64 && cycle < 20 {
		c.Tick(cycle)
		for p := 0; p < 64; p++ {
			for c.Poll(p) != nil {
				recv++
			}
		}
		cycle++
	}
	if recv != 64 {
		t.Fatalf("permutation delivered %d/64 in %d cycles; ideal crossbar must not block", recv, cycle)
	}
}

func TestCrossbarConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := NewCrossbar("xbar", 16, 2)
	offered, delivered := 0, 0
	var cycle int64
	for offered < 2000 {
		for i := 0; i < 4; i++ {
			kind := ReadReq
			if rng.Intn(3) == 0 {
				kind = WriteReq
			}
			if c.Offer(&Packet{Kind: kind, Src: rng.Intn(16), Dst: rng.Intn(16)}) {
				offered++
			}
		}
		c.Tick(cycle)
		for p := 0; p < 16; p++ {
			for c.Poll(p) != nil {
				delivered++
			}
		}
		cycle++
	}
	for !c.Idle() {
		c.Tick(cycle)
		for p := 0; p < 16; p++ {
			for c.Poll(p) != nil {
				delivered++
			}
		}
		cycle++
		if cycle > 100000 {
			t.Fatal("drain stalled")
		}
	}
	if delivered != offered {
		t.Fatalf("delivered %d, offered %d", delivered, offered)
	}
}
