package network

import (
	"fmt"
	"math"

	"cedar/internal/fault"
)

// Fabric is a unidirectional interconnection network between n ingress
// ports and n egress ports. Cedar instantiates two fabrics: forward
// (CE→memory) and reverse (memory→CE).
//
// A Fabric is a sim.Component; sources must be ticked before the fabric
// and sinks after it so a packet traverses at most one stage per cycle.
// It is also a sim.Sleeper: NextWakeup keeps the fabric ticking exactly
// while packets are inside it, SetWaker lets Offer rouse a sleeping
// fabric, and SetPortWaker/NextAt carry delivery times to sleeping
// egress consumers (the waker and NextAt both report the first cycle an
// after-fabric sink can consume the packet; sinks registered before the
// fabric see it one cycle later and add that themselves).
type Fabric interface {
	// Name identifies the fabric in diagnostics.
	Name() string
	// Ports returns the port count.
	Ports() int
	// Offer attempts to inject a packet at its Src port. It returns false
	// when the ingress queue cannot accept the packet this cycle; the
	// caller must retry later (flow control back-pressure).
	Offer(p *Packet) bool
	// Poll removes and returns the next packet delivered at the egress
	// port, or nil if none is ready.
	Poll(port int) *Packet
	// Peek returns the next deliverable packet without removing it.
	Peek(port int) *Packet
	// Tick advances the fabric one cycle.
	Tick(cycle int64)
	// Idle reports whether no packets are in flight.
	Idle() bool
	// Stats returns cumulative traffic counters.
	Stats() Stats
	// Queued returns the words currently buffered inside the fabric —
	// an instantaneous occupancy gauge for the observability hub.
	Queued() int
	// Lines returns the number of wire-cycles available per simulated
	// cycle (ports × (stages+1) for a multistage fabric, counting the
	// ingress wires), the denominator for utilization attribution.
	Lines() int
	// SetFaults installs a fault injector consulted on every wire
	// movement. nil (the default) is the healthy fabric.
	SetFaults(inj *fault.Injector)
	// NextWakeup implements sim.Sleeper: now while any packet is in
	// flight, Never when the fabric is empty.
	NextWakeup(now int64) int64
	// SetWaker installs the fabric's own wake callback (its engine
	// handle); Offer invokes it so an injection rouses a sleeping fabric.
	SetWaker(wake func(at int64))
	// SetPortWaker installs a per-egress-port callback invoked when a
	// packet finishes arriving at that port, with the first cycle an
	// after-fabric sink could consume it.
	SetPortWaker(port int, wake func(at int64))
	// NextAt returns the first cycle ≥ now at which an after-fabric sink
	// could consume the packet at the egress port's head, or Never when
	// the queue is empty. Sleeping consumers fold it into NextWakeup so a
	// requery never forgets work already waiting at the port.
	NextAt(port int, now int64) int64
	// SetShards configures deferred submission for intra-run parallel
	// engines: ingressOf maps each port to the shard owning its Offer
	// caller, egressOf to the shard owning its Poll caller; -1 (or a nil
	// map) means hub-owned, which keeps the fully inline path. Calls on
	// shard-owned sides record their shared-state effects in per-shard
	// mailboxes instead of applying them (see shard.go).
	SetShards(ingressOf, egressOf func(port int) int, n int)
	// DrainShards replays the deferred effects in fixed shard order; the
	// engine's drain hook calls it between phase A and the hub pass.
	DrainShards()
}

// Stats holds cumulative fabric counters.
type Stats struct {
	Offered   int64 // packets accepted at ingress
	Refused   int64 // Offer calls rejected by back-pressure
	Delivered int64 // packets handed to egress consumers
	WordHops  int64 // word×stage movements (a utilization proxy)
	// RefusedCyc counts port-cycles with at least one rejected Offer —
	// the deduplicated, conservation-safe stall measure (Refused can
	// exceed one per port per cycle when a CE and its PFU both retry).
	RefusedCyc int64
}

// never mirrors sim.Never without importing the engine package (the
// layering DAG keeps network below sim): the NextWakeup value meaning
// "asleep until woken".
const never = int64(math.MaxInt64)

// Omega is Cedar's packet-switched multistage shuffle-exchange network.
//
// The fabric has ports = radix^stages lines. Each stage applies the perfect
// radix-k shuffle (rotate the base-k digits of the line number left by one)
// and then a column of k×k crossbar switches. A packet destined for egress
// port d is self-routed: the switch at stage t sends it out local port
// digit(d, stages-1-t) — the tag-control scheme of [Lawr75].
//
// Each stage line has a word-granular queue (the hardware has a two-word
// queue at every crossbar input and output port; we aggregate the pair into
// one queue of their combined capacity). Flow control between stages
// prevents overflow: a packet advances only if the downstream queue has
// space. A W-word packet occupies its output wire for W cycles.
type Omega struct {
	name   string
	radix  int
	stages int
	ports  int

	// in[t][l] is the queue at the input of stage t, line l.
	in [][]wordQueue
	// egress[p] is the delivery queue at egress port p.
	egress []wordQueue
	// rr[t][l] is the round-robin arbitration pointer for the output wire
	// at stage t, global output line l (which input of the switch last won).
	rr [][]int
	// outBusy[t][l] counts remaining cycles the output wire at stage t,
	// line l is occupied by a multi-word packet.
	outBusy [][]int
	// busyWires[t] lists wires with outBusy > 0, so idle switches can be
	// skipped without freezing in-flight multi-word transfers.
	busyWires [][]int
	// swCount[t][sw] counts packets queued at the inputs of switch sw in
	// stage t; empty switches are skipped in the hot loop.
	swCount [][]int
	// ingressBusy[p] counts remaining cycles port p's ingress wire is
	// occupied; ingressList tracks the busy ones.
	ingressBusy []int
	ingressList []int

	egressCap int
	stats     Stats
	inflight  int
	inj       *fault.Injector
	// wake is the fabric's own engine handle (Offer rouses a sleeping
	// fabric through it); portWake[p] notifies egress port p's consumer
	// when a packet finishes arriving. Both are optional.
	wake     func(at int64)
	portWake []func(at int64)
	// lastRefuse[p] is the o.now stamp of port p's last counted refusal,
	// deduplicating RefusedCyc to one per port-cycle.
	lastRefuse []int64
	// shards holds the port→shard ownership map and per-shard deferred
	// mailboxes on an intra-run parallel engine; nil keeps every call
	// inline (the unsharded schedule).
	shards *portShards
	// now is the next cycle this fabric will execute. Offer stamps packets
	// with it so a packet injected during cycle c takes its first hop at
	// tick c; Poll uses it so a packet that completed its last hop during
	// cycle c is consumable from cycle c+1 on (sinks tick after the fabric,
	// so a sink at cycle c+1 sees it one cycle after arrival).
	now int64
}

// OmegaConfig configures an Omega fabric.
type OmegaConfig struct {
	Name string
	// Ports must be a power of Radix.
	Ports int
	// Radix is the crossbar arity (Cedar: 8).
	Radix int
	// QueueWords is the buffering per crossbar port (Cedar: 2). Each stage
	// line aggregates an input and an output port queue, so the per-line
	// capacity is 2×QueueWords.
	QueueWords int
	// EgressWords is the delivery queue capacity at each egress port.
	// Zero selects 2×QueueWords.
	EgressWords int
}

// NewOmega builds the fabric. It panics if Ports is not a positive power
// of Radix — configurations are validated by params.Machine.Validate, so
// this indicates a programming error.
func NewOmega(cfg OmegaConfig) *Omega {
	if cfg.Radix < 2 || cfg.Radix > maxRadix {
		panic(fmt.Sprintf("network: radix %d outside 2..%d", cfg.Radix, maxRadix))
	}
	stages := 0
	for n := cfg.Ports; n > 1; n /= cfg.Radix {
		if n%cfg.Radix != 0 {
			panic(fmt.Sprintf("network: ports %d not a power of radix %d", cfg.Ports, cfg.Radix))
		}
		stages++
	}
	if stages == 0 {
		panic("network: need at least one stage")
	}
	if cfg.QueueWords < 1 {
		panic("network: QueueWords < 1")
	}
	egressCap := cfg.EgressWords
	if egressCap == 0 {
		egressCap = 2 * cfg.QueueWords
	}
	o := &Omega{
		name:        cfg.Name,
		radix:       cfg.Radix,
		stages:      stages,
		ports:       cfg.Ports,
		in:          make([][]wordQueue, stages),
		egress:      make([]wordQueue, cfg.Ports),
		rr:          make([][]int, stages),
		outBusy:     make([][]int, stages),
		busyWires:   make([][]int, stages),
		swCount:     make([][]int, stages),
		ingressBusy: make([]int, cfg.Ports),
		egressCap:   egressCap,
		portWake:    make([]func(at int64), cfg.Ports),
		lastRefuse:  make([]int64, cfg.Ports),
	}
	for p := range o.lastRefuse {
		o.lastRefuse[p] = -1
	}
	lineCap := 2 * cfg.QueueWords
	for t := 0; t < stages; t++ {
		o.in[t] = make([]wordQueue, cfg.Ports)
		o.rr[t] = make([]int, cfg.Ports)
		o.outBusy[t] = make([]int, cfg.Ports)
		o.swCount[t] = make([]int, cfg.Ports/cfg.Radix)
		for l := 0; l < cfg.Ports; l++ {
			o.in[t][l] = newWordQueue(lineCap)
		}
	}
	for p := 0; p < cfg.Ports; p++ {
		o.egress[p] = newWordQueue(egressCap)
	}
	return o
}

// Name implements Fabric.
func (o *Omega) Name() string { return o.name }

// Ports implements Fabric.
func (o *Omega) Ports() int { return o.ports }

// Stats implements Fabric.
func (o *Omega) Stats() Stats { return o.stats }

// Idle implements Fabric.
func (o *Omega) Idle() bool { return o.inflight == 0 }

// SetFaults implements Fabric.
func (o *Omega) SetFaults(inj *fault.Injector) { o.inj = inj }

// SetWaker implements Fabric.
func (o *Omega) SetWaker(wake func(at int64)) { o.wake = wake }

// SetPortWaker implements Fabric.
func (o *Omega) SetPortWaker(port int, wake func(at int64)) { o.portWake[port] = wake }

// NextWakeup implements Fabric (sim.Sleeper): the omega must tick every
// cycle a packet is anywhere inside it — stage queues, egress queues
// (Peek gates on the advancing clock) or the ingress wires — and can
// sleep indefinitely once empty; Offer wakes it back up. Until a waker
// is wired the fabric never sleeps: Offer could not rouse it.
func (o *Omega) NextWakeup(now int64) int64 {
	if o.wake == nil || o.inflight > 0 || len(o.ingressList) > 0 {
		return now
	}
	return never
}

// NextAt implements Fabric.
func (o *Omega) NextAt(port int, now int64) int64 {
	h := o.egress[port].headPkt()
	if h == nil {
		return never
	}
	if h.readyAt > now {
		return h.readyAt
	}
	return now
}

// Queued implements Fabric: words buffered in the stage and egress queues.
func (o *Omega) Queued() int {
	w := 0
	for t := 0; t < o.stages; t++ {
		for l := 0; l < o.ports; l++ {
			w += o.in[t][l].words
		}
	}
	for p := 0; p < o.ports; p++ {
		w += o.egress[p].words
	}
	return w
}

// Lines implements Fabric: one output wire per line per stage, plus the
// ingress wire per port (whose refused cycles are the stall side of the
// network attribution).
func (o *Omega) Lines() int { return o.ports * (o.stages + 1) }

// shuffle rotates the base-k digits of line left by one: the perfect
// radix-k shuffle wiring between stages.
func (o *Omega) shuffle(line int) int {
	v := line * o.radix
	return v%o.ports + v/o.ports
}

// digit extracts base-k digit i (0 = least significant) of v.
func (o *Omega) digit(v, i int) int {
	for ; i > 0; i-- {
		v /= o.radix
	}
	return v % o.radix
}

// Offer implements Fabric. The packet enters the stage-0 queue on the
// shuffled line for its source port. Panics if a port is out of range —
// a wiring bug, not a runtime condition.
func (o *Omega) Offer(p *Packet) bool {
	if p.Src < 0 || p.Src >= o.ports || p.Dst < 0 || p.Dst >= o.ports {
		panic(fmt.Sprintf("network %s: port out of range: %v", o.name, p))
	}
	if o.ingressBusy[p.Src] > 0 {
		o.refuse(p.Src)
		return false
	}
	line := o.shuffle(p.Src)
	q := &o.in[0][line]
	if !q.canAccept(p.Words()) {
		o.refuse(p.Src)
		return false
	}
	p.readyAt = o.now
	q.push(p)
	o.ingressBusy[p.Src] = p.Words()
	if b := o.shards.inBox(p.Src); b != nil {
		// Shard-owned port: the line queue and ingress wire above are
		// port-private; everything shared waits for DrainShards.
		b.accepted = append(b.accepted, p.Src)
		b.offered++
		b.inflight++
		b.wake = true
		return true
	}
	o.swCount[0][line/o.radix]++
	o.ingressList = append(o.ingressList, p.Src)
	o.stats.Offered++
	o.inflight++
	if o.wake != nil {
		// Rouse a sleeping fabric: 0 clamps to the earliest legal cycle,
		// which is the one currently executing (sources tick first).
		o.wake(0)
	}
	return true
}

// refuse records one rejected Offer, deduplicating the per-port-cycle
// RefusedCyc stall counter via o.now (current while the fabric is
// non-empty, which a refusal implies). The dedup stamp is port-private;
// the counters defer on shard-owned ports.
func (o *Omega) refuse(port int) {
	first := o.lastRefuse[port] != o.now
	if first {
		o.lastRefuse[port] = o.now
	}
	if b := o.shards.inBox(port); b != nil {
		b.refused++
		if first {
			b.refusedCyc++
		}
		return
	}
	o.stats.Refused++
	if first {
		o.stats.RefusedCyc++
	}
}

// Peek implements Fabric.
func (o *Omega) Peek(port int) *Packet {
	h := o.egress[port].headPkt()
	if h == nil || h.readyAt >= o.now {
		return nil
	}
	return h
}

// Poll implements Fabric. The egress queue is port-private; the
// delivery counters defer on shard-owned ports.
func (o *Omega) Poll(port int) *Packet {
	if o.Peek(port) == nil {
		return nil
	}
	p := o.egress[port].pop()
	if b := o.shards.outBox(port); b != nil {
		b.delivered++
		b.inflight--
		return p
	}
	o.stats.Delivered++
	o.inflight--
	return p
}

// Tick implements Fabric: every switch column moves at most one packet per
// output wire. Stages are processed last-first so a packet vacating a queue
// frees space for the upstream stage within the same cycle (pipelining),
// while the readyAt stamp still limits each packet to one hop per cycle.
func (o *Omega) Tick(cycle int64) {
	o.now = cycle + 1
	if len(o.ingressList) > 0 {
		keep := o.ingressList[:0]
		for _, p := range o.ingressList {
			if o.ingressBusy[p] > 0 {
				o.ingressBusy[p]--
			}
			if o.ingressBusy[p] > 0 {
				keep = append(keep, p)
			}
		}
		o.ingressList = keep
	}
	for t := o.stages - 1; t >= 0; t-- {
		o.tickStage(t, cycle)
	}
}

func (o *Omega) tickStage(t int, cycle int64) {
	nsw := o.ports / o.radix
	k := o.radix
	routeDigit := o.stages - 1 - t
	// Release output wires occupied by multi-word packets.
	if len(o.busyWires[t]) > 0 {
		keep := o.busyWires[t][:0]
		for _, w := range o.busyWires[t] {
			o.outBusy[t][w]--
			if o.outBusy[t][w] > 0 {
				keep = append(keep, w)
			}
		}
		o.busyWires[t] = keep
	}
	// Per switch: one pass over the inputs collects each head packet's
	// desired output; a second pass arbitrates per output in round-robin
	// order. This is O(k) per switch instead of O(k²).
	var wantOut [maxRadix]int8 // desired output per input, -1 = none
	for sw := 0; sw < nsw; sw++ {
		if o.swCount[t][sw] == 0 {
			continue
		}
		base := sw * k
		outMask := 0
		for inp := 0; inp < k; inp++ {
			wantOut[inp] = -1
			h := o.in[t][base+inp].headPkt()
			if h == nil || h.readyAt > cycle {
				continue
			}
			out := o.digit(h.Dst, routeDigit)
			wantOut[inp] = int8(out)
			outMask |= 1 << out
		}
		if outMask == 0 {
			continue
		}
		for out := 0; out < k; out++ {
			if outMask&(1<<out) == 0 {
				continue
			}
			gout := base + out
			if o.outBusy[t][gout] > 0 {
				continue
			}
			if o.inj.StageJam(o.name, t, gout, cycle) {
				continue // the output wire is jammed this cycle
			}
			// Round-robin scan starting after the last winner.
			start := o.rr[t][gout]
			for i := 0; i < k; i++ {
				inp := (start + 1 + i) % k
				if wantOut[inp] != int8(out) {
					continue
				}
				if h := o.in[t][base+inp].headPkt(); droppable(h) &&
					o.inj.LinkDrop(o.name, t, gout, cycle) {
					// The wire eats the packet: it leaves its queue and
					// never arrives. Only idempotent prefetch reads are
					// droppable; the PFU reissues the element.
					o.in[t][base+inp].pop()
					o.swCount[t][sw]--
					o.inflight--
					break
				}
				var dst *wordQueue
				if t == o.stages-1 {
					dst = &o.egress[gout]
				} else {
					dst = &o.in[t+1][o.shuffle(gout)]
				}
				if !dst.canAccept(o.in[t][base+inp].headPkt().Words()) {
					break // head-of-line blocking: this output stalls
				}
				h := o.in[t][base+inp].pop()
				o.swCount[t][sw]--
				h.readyAt = cycle + int64(h.Words())
				dst.push(h)
				if t < o.stages-1 {
					o.swCount[t+1][o.shuffle(gout)/o.radix]++
				} else if w := o.portWake[gout]; w != nil {
					// Final hop: tell the egress consumer when the packet
					// becomes consumable (readyAt for sinks ticking after
					// the fabric; before-fabric sinks add one themselves).
					w(h.readyAt)
				}
				o.rr[t][gout] = inp
				if w := h.Words() - 1; w > 0 {
					o.outBusy[t][gout] = w
					o.busyWires[t] = append(o.busyWires[t], gout)
				}
				o.stats.WordHops += int64(h.Words())
				break
			}
		}
	}
}

// maxRadix bounds the stack-allocated arbitration scratch space.
const maxRadix = 16

var _ Fabric = (*Omega)(nil)
