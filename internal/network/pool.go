package network

// PacketPool is a freelist of Packets for the per-cycle issue paths. The
// packet lifecycle is linear — a CE or PFU allocates a request, the
// forward fabric carries it, the memory module rewrites it in place into
// the reply, the reverse fabric carries it back, and the issuing CE
// consumes it — so the consumer can hand the dead packet straight back to
// the pool that built it. Each CE owns one pool (shared with its PFU,
// which issues on the same port): packets never migrate between CEs, so
// the pool needs no locking and stays deterministic. A packet dropped by
// fault injection simply never returns; the pool forgets it and the
// garbage collector takes over.
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed packet, reusing a retired one when available.
func (p *PacketPool) Get() *Packet {
	n := len(p.free)
	if n == 0 {
		return new(Packet) //lint:allow hotalloc pool refill on first use; steady state reuses retired packets
	}
	pkt := p.free[n-1]
	p.free[n-1] = nil
	p.free = p.free[:n-1]
	*pkt = Packet{}
	return pkt
}

// Put retires a packet. The caller must hold the only live reference.
func (p *PacketPool) Put(pkt *Packet) {
	if pkt != nil {
		p.free = append(p.free, pkt)
	}
}
