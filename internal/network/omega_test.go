package network

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func cedarOmega(name string) *Omega {
	return NewOmega(OmegaConfig{Name: name, Ports: 64, Radix: 8, QueueWords: 2})
}

// drain ticks the fabric until idle, collecting delivered packets per port.
func drain(t *testing.T, f Fabric, start int64, limit int) map[int][]*Packet {
	t.Helper()
	got := make(map[int][]*Packet)
	cycle := start
	for i := 0; i < limit && !f.Idle(); i++ {
		f.Tick(cycle)
		for p := 0; p < f.Ports(); p++ {
			for {
				pkt := f.Poll(p)
				if pkt == nil {
					break
				}
				got[p] = append(got[p], pkt)
			}
		}
		cycle++
	}
	if !f.Idle() {
		t.Fatalf("%s not idle after %d cycles", f.Name(), limit)
	}
	return got
}

func TestOmegaRoutesEveryPair(t *testing.T) {
	// Every (src, dst) pair must deliver to exactly dst: the tag-routing
	// invariant of the shuffle-exchange wiring.
	for src := 0; src < 64; src++ {
		o := cedarOmega("fwd")
		for dst := 0; dst < 64; dst++ {
			p := &Packet{Kind: ReadReq, Src: src, Dst: dst, Tag: uint32(dst)}
			if !o.Offer(p) {
				// Back-pressure: drain and retry.
				got := drain(t, o, 100, 10000)
				checkDelivery(t, got)
				if !o.Offer(p) {
					t.Fatalf("offer failed on empty fabric src=%d dst=%d", src, dst)
				}
			}
		}
		got := drain(t, o, 1000, 100000)
		checkDelivery(t, got)
	}
}

func checkDelivery(t *testing.T, got map[int][]*Packet) {
	t.Helper()
	for port, pkts := range got {
		for _, p := range pkts {
			if p.Dst != port {
				t.Fatalf("packet %v delivered at port %d", p, port)
			}
			if int(p.Tag) != port {
				t.Fatalf("tag %d delivered at port %d", p.Tag, port)
			}
		}
	}
}

func TestOmegaUniquePathLatency(t *testing.T) {
	// Unloaded, one packet takes exactly stages+1 cycles from Offer to
	// Poll readiness: one hop per stage plus egress availability.
	o := cedarOmega("fwd")
	p := &Packet{Kind: ReadReq, Src: 5, Dst: 40}
	if !o.Offer(p) {
		t.Fatal("offer refused on empty fabric")
	}
	cycle := int64(0)
	for ; cycle < 100; cycle++ {
		o.Tick(cycle)
		if got := o.Poll(40); got != nil {
			break
		}
	}
	// Offered before cycle 0: stage0 hop at 0, stage1 hop at 1, pollable
	// after tick at cycle 2 (readyAt = 2).
	if cycle != 2 {
		t.Fatalf("delivery at cycle %d, want 2 (stages=2)", cycle)
	}
}

func TestOmegaConservation(t *testing.T) {
	// Randomized conservation: every accepted packet is delivered exactly
	// once, at its destination, regardless of congestion.
	rng := rand.New(rand.NewSource(42))
	o := cedarOmega("fwd")
	offered := 0
	delivered := make(map[int]int)
	cycle := int64(0)
	want := 5000
	for offered < want {
		// Bursty injection from random sources.
		for i := 0; i < 8; i++ {
			src := rng.Intn(64)
			dst := rng.Intn(64)
			kind := ReadReq
			if rng.Intn(4) == 0 {
				kind = WriteReq
			}
			if o.Offer(&Packet{Kind: kind, Src: src, Dst: dst}) {
				offered++
			}
		}
		o.Tick(cycle)
		for p := 0; p < 64; p++ {
			for {
				pkt := o.Poll(p)
				if pkt == nil {
					break
				}
				if pkt.Dst != p {
					t.Fatalf("misdelivered: %v at %d", pkt, p)
				}
				delivered[p]++
			}
		}
		cycle++
	}
	for !o.Idle() {
		o.Tick(cycle)
		for p := 0; p < 64; p++ {
			for o.Poll(p) != nil {
				delivered[p]++
			}
		}
		cycle++
		if cycle > 1_000_000 {
			t.Fatal("drain did not complete")
		}
	}
	total := 0
	for _, n := range delivered {
		total += n
	}
	if total != offered {
		t.Fatalf("delivered %d, offered %d", total, offered)
	}
	st := o.Stats()
	if st.Offered != int64(offered) || st.Delivered != int64(total) {
		t.Errorf("stats mismatch: %+v vs offered=%d delivered=%d", st, offered, total)
	}
}

func TestOmegaFIFOPerPair(t *testing.T) {
	// Packets between the same (src, dst) pair must stay in order: there
	// is a unique path and queues are FIFOs.
	o := cedarOmega("fwd")
	const n = 200
	sent := 0
	var got []uint32
	cycle := int64(0)
	for sent < n || !o.Idle() {
		if sent < n {
			if o.Offer(&Packet{Kind: ReadReq, Src: 3, Dst: 17, Tag: uint32(sent)}) {
				sent++
			}
		}
		o.Tick(cycle)
		for {
			p := o.Poll(17)
			if p == nil {
				break
			}
			got = append(got, p.Tag)
		}
		cycle++
		if cycle > 100000 {
			t.Fatal("stalled")
		}
	}
	if len(got) != n {
		t.Fatalf("delivered %d, want %d", len(got), n)
	}
	for i, tag := range got {
		if tag != uint32(i) {
			t.Fatalf("out of order: position %d has tag %d", i, tag)
		}
	}
}

func TestOmegaSinglePortBandwidth(t *testing.T) {
	// A single src→dst stream of 1-word packets sustains 1 packet/cycle.
	o := cedarOmega("fwd")
	const n = 1000
	sent, recv := 0, 0
	var first, last int64
	cycle := int64(0)
	for recv < n {
		if sent < n && o.Offer(&Packet{Kind: ReadReq, Src: 0, Dst: 0}) {
			sent++
		}
		o.Tick(cycle)
		for o.Poll(0) != nil {
			if recv == 0 {
				first = cycle
			}
			last = cycle
			recv++
		}
		cycle++
		if cycle > 100000 {
			t.Fatal("stalled")
		}
	}
	perPacket := float64(last-first) / float64(n-1)
	if perPacket > 1.05 {
		t.Errorf("single-stream throughput %.3f cycles/packet, want ≈1", perPacket)
	}
}

func TestOmegaWritePacketsHalveThroughput(t *testing.T) {
	// 2-word WriteReq packets occupy links for two cycles each.
	o := cedarOmega("fwd")
	const n = 500
	sent, recv := 0, 0
	var first, last int64
	cycle := int64(0)
	for recv < n {
		if sent < n && o.Offer(&Packet{Kind: WriteReq, Src: 0, Dst: 0}) {
			sent++
		}
		o.Tick(cycle)
		for o.Poll(0) != nil {
			if recv == 0 {
				first = cycle
			}
			last = cycle
			recv++
		}
		cycle++
		if cycle > 100000 {
			t.Fatal("stalled")
		}
	}
	perPacket := float64(last-first) / float64(n-1)
	if perPacket < 1.9 || perPacket > 2.1 {
		t.Errorf("write throughput %.3f cycles/packet, want ≈2", perPacket)
	}
}

func TestOmegaHotSpotContention(t *testing.T) {
	// 8 sources hammering one destination share the single egress link:
	// aggregate ≈1 packet/cycle, so each source gets ≈1/8.
	o := cedarOmega("fwd")
	const n = 800
	sent := make([]int, 8)
	recv := 0
	cycle := int64(0)
	for recv < n {
		for s := 0; s < 8; s++ {
			if sent[s] < n/8 && o.Offer(&Packet{Kind: ReadReq, Src: s * 8, Dst: 9}) {
				sent[s]++
			}
		}
		o.Tick(cycle)
		for o.Poll(9) != nil {
			recv++
		}
		cycle++
		if cycle > 100000 {
			t.Fatal("stalled")
		}
	}
	if cycle < n-10 {
		t.Errorf("hot spot drained in %d cycles; %d packets cannot beat 1/cycle", cycle, n)
	}
	if cycle > n*13/10 {
		t.Errorf("hot spot took %d cycles for %d packets; egress link underutilized", cycle, n)
	}
}

func TestOmegaRoundRobinFairness(t *testing.T) {
	// Two sources that collide at a first-stage switch should receive
	// roughly equal service, not starve one another.
	o := cedarOmega("fwd")
	// Sources 0 and 1 are on the same stage-0 switch after shuffling?
	// Regardless of placement, both target dst 0 so they conflict at the
	// final output; round-robin must alternate them.
	counts := map[int]int{}
	sent := map[int]int{}
	cycle := int64(0)
	const per = 300
	for counts[0]+counts[1] < 2*per {
		for _, s := range []int{0, 1} {
			if sent[s] < per && o.Offer(&Packet{Kind: ReadReq, Src: s, Dst: 0, Tag: uint32(s)}) {
				sent[s]++
			}
		}
		o.Tick(cycle)
		for {
			p := o.Poll(0)
			if p == nil {
				break
			}
			counts[int(p.Tag)]++
		}
		cycle++
		if cycle > 100000 {
			t.Fatal("stalled")
		}
	}
	if counts[0] != per || counts[1] != per {
		t.Fatalf("delivered %v, want %d each", counts, per)
	}
}

func TestShuffleIsPermutationProperty(t *testing.T) {
	o := cedarOmega("fwd")
	seen := make([]bool, 64)
	for p := 0; p < 64; p++ {
		s := o.shuffle(p)
		if s < 0 || s >= 64 {
			t.Fatalf("shuffle(%d) = %d out of range", p, s)
		}
		if seen[s] {
			t.Fatalf("shuffle not injective at %d", p)
		}
		seen[s] = true
	}
	// Digit rotation property: shuffling `stages` times is the identity.
	f := func(v uint8) bool {
		p := int(v) % 64
		s := p
		for i := 0; i < o.stages; i++ {
			s = o.shuffle(s)
		}
		return s == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOmegaOfferPanicsOnBadPort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for out-of-range port")
		}
	}()
	cedarOmega("fwd").Offer(&Packet{Src: 99, Dst: 0})
}

func TestNewOmegaRejectsBadConfig(t *testing.T) {
	cases := []OmegaConfig{
		{Ports: 48, Radix: 8, QueueWords: 2},
		{Ports: 64, Radix: 1, QueueWords: 2},
		{Ports: 1, Radix: 8, QueueWords: 2},
		{Ports: 64, Radix: 8, QueueWords: 0},
	}
	for _, cfg := range cases {
		func() {
			defer func() { recover() }()
			NewOmega(cfg)
			t.Errorf("NewOmega(%+v) did not panic", cfg)
		}()
	}
}

func TestKindProperties(t *testing.T) {
	if ReadReq.WireWords() != 1 || WriteReq.WireWords() != 2 || SyncReq.WireWords() != 2 {
		t.Error("request wire lengths wrong")
	}
	if ReadReply.WireWords() != 1 || SyncReply.WireWords() != 1 || WriteAck.WireWords() != 1 {
		t.Error("reply wire lengths wrong")
	}
	for _, k := range []Kind{ReadReq, WriteReq, SyncReq} {
		if k.IsReply() {
			t.Errorf("%v should not be a reply", k)
		}
	}
	for _, k := range []Kind{ReadReply, WriteAck, SyncReply} {
		if !k.IsReply() {
			t.Errorf("%v should be a reply", k)
		}
	}
}

func TestTestOpEval(t *testing.T) {
	cases := []struct {
		op     TestOp
		v, arg int64
		want   bool
	}{
		{TestAlways, 0, 0, true},
		{TestEQ, 5, 5, true}, {TestEQ, 5, 6, false},
		{TestNE, 5, 6, true}, {TestNE, 5, 5, false},
		{TestLT, 4, 5, true}, {TestLT, 5, 5, false},
		{TestLE, 5, 5, true}, {TestLE, 6, 5, false},
		{TestGT, 6, 5, true}, {TestGT, 5, 5, false},
		{TestGE, 5, 5, true}, {TestGE, 4, 5, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.v, c.arg); got != c.want {
			t.Errorf("op %d Eval(%d,%d) = %v, want %v", c.op, c.v, c.arg, got, c.want)
		}
	}
}

func TestMutOpApply(t *testing.T) {
	cases := []struct {
		op     MutOp
		v, arg int64
		want   int64
	}{
		{OpNone, 7, 3, 7}, {OpRead, 7, 3, 7}, {OpWrite, 7, 3, 3},
		{OpAdd, 7, 3, 10}, {OpSub, 7, 3, 4},
		{OpAnd, 6, 3, 2}, {OpOr, 6, 3, 7}, {OpXor, 6, 3, 5},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.v, c.arg); got != c.want {
			t.Errorf("op %d Apply(%d,%d) = %d, want %d", c.op, c.v, c.arg, got, c.want)
		}
	}
}
