package network

import (
	"math/rand"
	"testing"
)

// Omega networks of different radices and depths must all satisfy the
// routing, conservation and FIFO properties; Cedar's 8×8/2-stage build is
// one point in the family.
func TestOmegaOtherConfigsRoute(t *testing.T) {
	configs := []OmegaConfig{
		{Name: "radix2-16", Ports: 16, Radix: 2, QueueWords: 2},   // 4 stages
		{Name: "radix4-64", Ports: 64, Radix: 4, QueueWords: 2},   // 3 stages
		{Name: "radix8-512", Ports: 512, Radix: 8, QueueWords: 2}, // 3 stages
		{Name: "radix16-256", Ports: 256, Radix: 16, QueueWords: 4},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			o := NewOmega(cfg)
			rng := rand.New(rand.NewSource(7))
			// Random (src,dst) pairs rather than the full cross product
			// for the big fabrics.
			pairs := cfg.Ports * 4
			sent := 0
			recv := 0
			cycle := int64(0)
			for recv < pairs {
				if sent < pairs {
					p := &Packet{Kind: ReadReq,
						Src: rng.Intn(cfg.Ports), Dst: rng.Intn(cfg.Ports)}
					p.Tag = uint32(p.Dst)
					if o.Offer(p) {
						sent++
					}
				}
				o.Tick(cycle)
				for port := 0; port < cfg.Ports; port++ {
					for {
						p := o.Poll(port)
						if p == nil {
							break
						}
						if p.Dst != port || int(p.Tag) != port {
							t.Fatalf("misdelivery at %d: %v", port, p)
						}
						recv++
					}
				}
				cycle++
				if cycle > 2_000_000 {
					t.Fatalf("stalled: sent %d recv %d", sent, recv)
				}
			}
			if !o.Idle() {
				t.Error("fabric not idle after draining")
			}
		})
	}
}

// The ideal crossbar and the omega must deliver exactly the same multiset
// of packets for any traffic pattern — they differ only in timing.
func TestCrossbarOmegaDeliveryEquivalence(t *testing.T) {
	const ports = 64
	gen := func() []*Packet {
		rng := rand.New(rand.NewSource(99))
		var pkts []*Packet
		for i := 0; i < 800; i++ {
			kind := ReadReq
			if rng.Intn(4) == 0 {
				kind = WriteReq
			}
			pkts = append(pkts, &Packet{Kind: kind,
				Src: rng.Intn(ports), Dst: rng.Intn(ports), Tag: uint32(i)})
		}
		return pkts
	}
	collect := func(f Fabric) map[uint32]int {
		pkts := gen()
		got := map[uint32]int{}
		next := 0
		cycle := int64(0)
		n := 0
		for n < len(pkts) {
			if next < len(pkts) && f.Offer(pkts[next]) {
				next++
			}
			f.Tick(cycle)
			for port := 0; port < ports; port++ {
				for {
					p := f.Poll(port)
					if p == nil {
						break
					}
					if p.Dst != port {
						t.Fatalf("%s misdelivered %v at %d", f.Name(), p, port)
					}
					got[p.Tag]++
					n++
				}
			}
			cycle++
			if cycle > 1_000_000 {
				t.Fatalf("%s stalled", f.Name())
			}
		}
		return got
	}
	omega := collect(NewOmega(OmegaConfig{Name: "omega", Ports: ports, Radix: 8, QueueWords: 2}))
	xbar := collect(NewCrossbar("xbar", ports, 2))
	if len(omega) != len(xbar) {
		t.Fatalf("delivered sets differ: %d vs %d", len(omega), len(xbar))
	}
	for tag, c := range omega {
		if xbar[tag] != c {
			t.Fatalf("tag %d delivered %d times by omega, %d by crossbar", tag, c, xbar[tag])
		}
	}
}

func TestOmegaRejectsOversizedRadix(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("radix above the arbitration scratch bound should panic")
		}
	}()
	NewOmega(OmegaConfig{Ports: 32 * 32, Radix: 32, QueueWords: 2})
}
