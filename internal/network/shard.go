package network

// Deferred submission: the fabric half of the intra-run parallel
// engine's mailbox contract.
//
// On a sharded engine, cluster components (CEs, PFUs) call Offer and
// Poll during phase A, concurrently across shards. Each fabric port is
// owned by exactly one caller, so the per-port halves of those calls —
// the ingress wire, the stage-0 line queue (the radix-k shuffle maps
// each source port to a distinct line), the egress queue, the refusal
// dedup stamp — stay inline: they are shard-private state. Everything
// shared across ports (traffic counters, the inflight census, the
// ingress occupancy list, switch occupancy counts, the crossbar's
// arrival-order heap, the fabric's own wake) is instead recorded in the
// offering port's shard mailbox and replayed by DrainShards in fixed
// shard order between phase A and the hub pass.
//
// Ownership is per fabric SIDE, not just per port: the same port number
// can name a CE on one fabric's egress and a memory module on the other
// fabric's ingress (modules are spread over the shared port space, so
// the index ranges overlap). The forward fabric is offered by cluster
// components and polled by global memory; the reverse fabric is the
// mirror image. SetShards therefore takes two maps — ingressOf governs
// Offer (and its refusals), egressOf governs Poll — and a nil map means
// that side is driven entirely from the hub pass and stays inline.
//
// Replay order equals the order a sequential pass would have produced:
// shards are registered cluster-major, components tick in index order
// within a shard, and each mailbox preserves offer order — so the
// ingress list, the crossbar sequence numbers, and every counter are
// byte-identical to the unsharded run. Hub-side calls happen after
// DrainShards, in the serial hub pass, exactly as on an unsharded
// engine.

// shardBox is one shard's deferred fabric effects for one cycle.
type shardBox struct {
	accepted []int     // omega: accepted ingress ports, in offer order
	pkts     []*Packet // crossbar: offered packets, in offer order

	offered, refused, refusedCyc, delivered int64
	inflight                                int
	wake                                    bool
}

// portShards resolves port→mailbox for a fabric; nil means unsharded
// (every call inline).
type portShards struct {
	ingressOf []int
	egressOf  []int
	boxes     []shardBox
}

func newPortShards(ports int, ingressOf, egressOf func(port int) int, n int) *portShards {
	side := func(of func(port int) int) []int {
		m := make([]int, ports)
		for p := 0; p < ports; p++ {
			if of != nil {
				m[p] = of(p)
			} else {
				m[p] = -1
			}
		}
		return m
	}
	return &portShards{ingressOf: side(ingressOf), egressOf: side(egressOf), boxes: make([]shardBox, n)}
}

// inBox returns the mailbox for Offer-side calls on the given port, or
// nil when the port's offering caller is hub-owned (or the fabric
// unsharded) and must act inline.
func (ps *portShards) inBox(port int) *shardBox {
	if ps == nil {
		return nil
	}
	if s := ps.ingressOf[port]; s >= 0 {
		return &ps.boxes[s]
	}
	return nil
}

// outBox is inBox for Poll-side calls.
func (ps *portShards) outBox(port int) *shardBox {
	if ps == nil {
		return nil
	}
	if s := ps.egressOf[port]; s >= 0 {
		return &ps.boxes[s]
	}
	return nil
}

// SetShards implements Fabric: install the per-side port→shard
// ownership maps.
func (o *Omega) SetShards(ingressOf, egressOf func(port int) int, n int) {
	o.shards = newPortShards(o.ports, ingressOf, egressOf, n)
}

// DrainShards implements Fabric: replay every shard's deferred effects
// in shard order. Accepted sources re-run the shared half of Offer —
// the switch occupancy count and the ingress wire list — in the same
// order a sequential pass interleaved them.
func (o *Omega) DrainShards() {
	if o.shards == nil {
		return
	}
	for s := range o.shards.boxes {
		b := &o.shards.boxes[s]
		for _, src := range b.accepted {
			line := o.shuffle(src)
			o.swCount[0][line/o.radix]++
			o.ingressList = append(o.ingressList, src)
		}
		o.stats.Offered += b.offered
		o.stats.Refused += b.refused
		o.stats.RefusedCyc += b.refusedCyc
		o.stats.Delivered += b.delivered
		o.inflight += b.inflight
		if b.wake && o.wake != nil {
			o.wake(0) // lands on the executing cycle: the fabric ticks next
		}
		b.accepted = b.accepted[:0]
		b.offered, b.refused, b.refusedCyc, b.delivered = 0, 0, 0, 0
		b.inflight = 0
		b.wake = false
	}
}

// SetShards implements Fabric.
func (c *Crossbar) SetShards(ingressOf, egressOf func(port int) int, n int) {
	c.shards = newPortShards(c.ports, ingressOf, egressOf, n)
}

// DrainShards implements Fabric: offered packets enter the transit heap
// in shard-major offer order, so sequence numbers — the deterministic
// arrival tie-break — match the sequential run.
func (c *Crossbar) DrainShards() {
	if c.shards == nil {
		return
	}
	for s := range c.shards.boxes {
		b := &c.shards.boxes[s]
		for i, p := range b.pkts {
			p.readyAt = -1 // filled in when Tick schedules it
			c.seq++
			c.pending.push(pendingPkt{pkt: p, seq: c.seq})
			c.stats.Offered++
			c.inflight++
			b.pkts[i] = nil
		}
		if len(b.pkts) > 0 && c.wake != nil {
			c.wake(0)
		}
		b.pkts = b.pkts[:0]
		c.stats.Delivered += b.delivered
		c.inflight += b.inflight
		b.delivered = 0
		b.inflight = 0
	}
}
