package network

import (
	"fmt"

	"cedar/internal/fault"
)

// Crossbar is an idealized single-stage interconnect used for the [Turn93]
// ablation: the paper attributes Cedar's contention degradation to
// "specific implementation constraints" (shallow two-word queues in a
// multistage fabric) rather than to the network type itself. The Crossbar
// has no internal blocking and unbounded ingress buffering; the only
// conflicts are at the egress ports, each of which delivers one word per
// cycle. Comparing kernels under Omega vs Crossbar isolates the network
// topology from the raw port bandwidth.
type Crossbar struct {
	name    string
	ports   int
	latency int64 // minimum transit cycles, matching the omega's stage count

	pending  pktHeap // packets in transit, ordered by arrival time
	egress   []unboundedQueue
	outFree  []int64 // next cycle each egress port may deliver a word
	stats    Stats
	inflight int
	seq      int64
	inj      *fault.Injector
	wake     func(at int64)
	portWake []func(at int64)
	// shards holds the port→shard ownership map and per-shard deferred
	// mailboxes on an intra-run parallel engine; nil keeps every call
	// inline (the unsharded schedule).
	shards *portShards
}

// NewCrossbar builds an ideal crossbar with the given minimum transit
// latency (use the stage count of the omega being compared against).
// Panics if ports < 1 — a configuration bug, not a runtime condition.
func NewCrossbar(name string, ports int, latency int) *Crossbar {
	if ports < 1 {
		panic("network: crossbar needs ≥1 port")
	}
	if latency < 1 {
		latency = 1
	}
	return &Crossbar{
		name:     name,
		ports:    ports,
		latency:  int64(latency),
		egress:   make([]unboundedQueue, ports),
		outFree:  make([]int64, ports),
		portWake: make([]func(at int64), ports),
	}
}

// Name implements Fabric.
func (c *Crossbar) Name() string { return c.name }

// Ports implements Fabric.
func (c *Crossbar) Ports() int { return c.ports }

// Stats implements Fabric.
func (c *Crossbar) Stats() Stats { return c.stats }

// Idle implements Fabric.
func (c *Crossbar) Idle() bool { return c.inflight == 0 }

// SetFaults implements Fabric. The single-stage crossbar maps a stage
// fault onto its one logical stage: jams add transit latency (there is
// no queue to block) and drops lose the packet at transit start.
func (c *Crossbar) SetFaults(inj *fault.Injector) { c.inj = inj }

// SetWaker implements Fabric.
func (c *Crossbar) SetWaker(wake func(at int64)) { c.wake = wake }

// SetPortWaker implements Fabric.
func (c *Crossbar) SetPortWaker(port int, wake func(at int64)) { c.portWake[port] = wake }

// NextWakeup implements Fabric (sim.Sleeper). Egress packets are fully
// delivered (Peek is not clock-gated), so only the transit heap needs
// ticks: the fabric sleeps until its earliest arrival. Unstamped heads
// (readyAt -1, sorted first) need a tick now to be scheduled. Until a
// waker is wired the fabric never sleeps: Offer could not rouse it.
func (c *Crossbar) NextWakeup(now int64) int64 {
	if c.wake == nil {
		return now
	}
	if len(c.pending) == 0 {
		return never
	}
	r := c.pending[0].pkt.readyAt
	if r > now {
		return r
	}
	return now
}

// NextAt implements Fabric: crossbar egress packets are consumable as
// soon as they are queued.
func (c *Crossbar) NextAt(port int, now int64) int64 {
	if c.egress[port].headPkt() == nil {
		return never
	}
	return now
}

// Queued implements Fabric: words of every packet not yet polled — the
// ideal crossbar buffers everything internally.
func (c *Crossbar) Queued() int {
	w := 0
	for i := range c.pending {
		w += c.pending[i].pkt.Words()
	}
	for p := range c.egress {
		q := &c.egress[p]
		for i := q.head; i < len(q.pkts); i++ {
			w += q.pkts[i].Words()
		}
	}
	return w
}

// Lines implements Fabric: a single-stage fabric has one wire per port.
func (c *Crossbar) Lines() int { return c.ports }

// Offer implements Fabric. An ideal crossbar never refuses. Panics if a
// port is out of range — a wiring bug, not a runtime condition.
func (c *Crossbar) Offer(p *Packet) bool {
	if p.Src < 0 || p.Src >= c.ports || p.Dst < 0 || p.Dst >= c.ports {
		panic(fmt.Sprintf("network %s: port out of range: %v", c.name, p))
	}
	if b := c.shards.inBox(p.Src); b != nil {
		// Shard-owned port: the sequence number — the deterministic
		// arrival tie-break — is assigned at DrainShards, in shard-major
		// offer order, so it matches the sequential interleaving.
		b.pkts = append(b.pkts, p)
		return true
	}
	p.readyAt = -1 // filled in when scheduled below
	c.seq++
	c.pending.push(pendingPkt{pkt: p, seq: c.seq})
	c.stats.Offered++
	c.inflight++
	if c.wake != nil {
		c.wake(0) // clamps to the currently executing cycle
	}
	return true
}

// Tick implements Fabric: packets whose transit time has elapsed contend
// for their egress port in arrival order; each port passes one word per
// cycle. A packet reaches the egress queue only once its last word has
// crossed, so Peek/Poll always see fully delivered packets.
func (c *Crossbar) Tick(cycle int64) {
	for len(c.pending) > 0 {
		top := &c.pending[0]
		if top.pkt.readyAt == -1 {
			if droppable(top.pkt) && c.inj.LinkDrop(c.name, 0, top.pkt.Dst, cycle) {
				c.pending.pop()
				c.inflight--
				continue
			}
			// Stamp transit eligibility on first sight; a jammed stage
			// shows up as added transit latency.
			top.pkt.readyAt = cycle + c.latency + c.inj.JamDelay(c.name, 0, top.pkt.Dst, cycle)
			c.pending.fix(0)
			continue
		}
		if top.pkt.readyAt > cycle {
			break
		}
		if !top.scheduled {
			// Transit done: serialize through the egress port.
			port := top.pkt.Dst
			free := c.outFree[port]
			if free < cycle {
				free = cycle
			}
			w := int64(top.pkt.Words())
			c.outFree[port] = free + w
			top.pkt.readyAt = free + w
			top.scheduled = true
			c.stats.WordHops += w
			c.pending.fix(0)
			continue
		}
		p := c.pending.pop().pkt
		c.egress[p.Dst].push(p)
		if w := c.portWake[p.Dst]; w != nil {
			// Consumable this very cycle by an after-fabric sink.
			w(cycle)
		}
	}
}

// Peek implements Fabric.
func (c *Crossbar) Peek(port int) *Packet {
	return c.egress[port].headPkt()
}

// Poll implements Fabric. The egress queue is port-private; the
// delivery counters defer on shard-owned ports.
func (c *Crossbar) Poll(port int) *Packet {
	p := c.egress[port].pop()
	if p != nil {
		if b := c.shards.outBox(port); b != nil {
			b.delivered++
			b.inflight--
			return p
		}
		c.stats.Delivered++
		c.inflight--
	}
	return p
}

var _ Fabric = (*Crossbar)(nil)

// unboundedQueue is the ideal crossbar's infinite egress buffer.
type unboundedQueue struct {
	pkts []*Packet
	head int
}

func (q *unboundedQueue) push(p *Packet) { q.pkts = append(q.pkts, p) }

func (q *unboundedQueue) headPkt() *Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	return q.pkts[q.head]
}

func (q *unboundedQueue) pop() *Packet {
	if q.head >= len(q.pkts) {
		return nil
	}
	p := q.pkts[q.head]
	q.pkts[q.head] = nil
	q.head++
	if q.head == len(q.pkts) {
		q.pkts = q.pkts[:0]
		q.head = 0
	}
	return p
}

type pendingPkt struct {
	pkt       *Packet
	seq       int64
	scheduled bool
}

// pktHeap is a hand-rolled min-heap over pendingPkt, ordered by readyAt
// then arrival sequence. container/heap would box every element through
// interface{} on Push/Pop — an allocation per packet on the per-cycle
// path — so the sift routines are written out instead.
type pktHeap []pendingPkt

func (h pktHeap) less(i, j int) bool {
	ri, rj := h[i].pkt.readyAt, h[j].pkt.readyAt
	if ri != rj {
		// Unstamped packets (-1) sort first so Tick stamps them.
		return ri < rj
	}
	return h[i].seq < h[j].seq
}

func (h *pktHeap) push(p pendingPkt) {
	*h = append(*h, p)
	h.up(len(*h) - 1)
}

func (h *pktHeap) pop() pendingPkt {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	top := old[n]
	old[n] = pendingPkt{}
	*h = old[:n]
	if n > 0 {
		h.down(0)
	}
	return top
}

// fix restores heap order after element i's key changed in place.
func (h *pktHeap) fix(i int) {
	if !h.down(i) {
		h.up(i)
	}
}

func (h *pktHeap) up(i int) {
	s := *h
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// down sifts element i toward the leaves; it reports whether i moved.
func (h *pktHeap) down(i int) bool {
	s := *h
	start := i
	for {
		left := 2*i + 1
		if left >= len(s) {
			break
		}
		least := left
		if right := left + 1; right < len(s) && s.less(right, left) {
			least = right
		}
		if !s.less(least, i) {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return i > start
}
