package network

// wordQueue is a FIFO of packets with a capacity measured in 64-bit words,
// matching the word-granular buffering of the Cedar crossbar ports. It is
// a fixed ring buffer: queues sit on the simulator's hottest path and must
// not allocate per packet.
//
// An empty queue always accepts one packet even if the packet is longer
// than the capacity; this models cut-through of a long packet that is
// streaming across the queue and avoids deadlock for packets longer than
// the two-word hardware buffers.
type wordQueue struct {
	capWords int
	words    int
	ring     []*Packet
	head     int
	n        int
}

func newWordQueue(capWords int) wordQueue {
	// At most one packet per word, plus one slot for the oversized
	// packet an empty queue must accept.
	return wordQueue{capWords: capWords, ring: make([]*Packet, capWords+1)}
}

// canAccept reports whether a packet of w words may be pushed now.
func (q *wordQueue) canAccept(w int) bool {
	if q.n == 0 {
		return true
	}
	return q.n < len(q.ring) && q.words+w <= q.capWords
}

// push appends the packet. The caller must have checked canAccept.
func (q *wordQueue) push(p *Packet) {
	q.ring[(q.head+q.n)%len(q.ring)] = p
	q.n++
	q.words += p.Words()
}

// headPkt returns the oldest packet without removing it, or nil.
func (q *wordQueue) headPkt() *Packet {
	if q.n == 0 {
		return nil
	}
	return q.ring[q.head]
}

// pop removes and returns the oldest packet, or nil.
func (q *wordQueue) pop() *Packet {
	if q.n == 0 {
		return nil
	}
	p := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) % len(q.ring)
	q.n--
	q.words -= p.Words()
	return p
}

// empty reports whether the queue holds no packets.
func (q *wordQueue) empty() bool { return q.n == 0 }

// len returns the number of queued packets.
func (q *wordQueue) len() int { return q.n }
