package cedar_test

import (
	"bytes"
	"testing"

	"cedar"
)

// TestBenchArtifactDeterminism is the cedarbench acceptance check, a
// sibling of TestParallelVsSequentialEquality: a campaign's
// deterministic section must be byte-identical whether the matrix runs
// on one worker or eight. It runs under -race in scripts/check.sh, so
// the detector watches the real parallel execution of the jobs=8 pass.
func TestBenchArtifactDeterminism(t *testing.T) {
	campaign := func() *cedar.BenchCampaign {
		return &cedar.BenchCampaign{
			Area: "gate",
			Machines: []cedar.BenchMachineSpec{
				{Name: "cedar"},
				{Name: "cedar-xbar", Fabric: "crossbar"},
			},
			Workloads: []cedar.BenchWorkloadSpec{
				{Name: "rank16", Kind: "rank", N: 16, Variant: "pref"},
				{Name: "vl256", Kind: "vectorload", N: 256},
			},
			Faults: []cedar.BenchFaultSpec{{Name: "healthy"}, {Name: "demo", Demo: true}},
		}
	}

	run := func(jobs int) []byte {
		t.Helper()
		art, err := cedar.RunBenchCampaign(campaign(), cedar.BenchRunOptions{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		b, err := art.DeterministicBytes()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	seq, par := run(1), run(8)
	if !bytes.Equal(par, seq) {
		t.Errorf("bench deterministic section differs between -jobs 1 and -jobs 8 (%d vs %d bytes)", len(seq), len(par))
	}

	// Facade-level diff sanity: identical artifacts are clean; a
	// simcycle bump past the threshold is a regression.
	art1, err := cedar.RunBenchCampaign(campaign(), cedar.BenchRunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	art2, err := cedar.RunBenchCampaign(campaign(), cedar.BenchRunOptions{Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cedar.DiffBenchArtifacts(art1, art2, cedar.BenchDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasRegressions() {
		t.Errorf("identical campaigns diff dirty: %s", rep.Format())
	}
	art2.Deterministic.Points[0].SimCycles = art2.Deterministic.Points[0].SimCycles * 11 / 10
	rep, err = cedar.DiffBenchArtifacts(art1, art2, cedar.BenchDiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HasRegressions() {
		t.Error("10% simcycle bump not flagged at the 5% default threshold")
	}
}
