// End-to-end determinism regression: the simulator's whole value as a
// reproduction rests on identical runs producing identical cycle counts
// and identical report bytes. cedarvet (cmd/cedarvet) enforces the
// invariants statically; this test enforces them dynamically by running
// the same workloads twice in one process. See DESIGN.md "Determinism
// invariants and cedarvet".
package cedar_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cedar"
)

// trackProfile returns the smallest Perfect proxy, cheap enough to
// simulate twice per test run.
func trackProfile(t *testing.T) cedar.PerfectProfile {
	t.Helper()
	for _, p := range cedar.PerfectCodes() {
		if p.Name == "TRACK" {
			return p
		}
	}
	t.Fatal("TRACK missing from the Perfect suite")
	panic("unreachable")
}

func TestPerfectRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full Perfect proxy run in -short mode")
	}
	code := trackProfile(t)
	run := func() cedar.PerfectOutcome {
		out, err := cedar.RunPerfect(cedar.DefaultParams(), code, cedar.PerfectSpec{Variant: cedar.PerfectAuto})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	first, second := run(), run()
	if first != second {
		t.Errorf("two identical Perfect runs disagree:\n first: %+v\nsecond: %+v", first, second)
	}
	if first.SimCycles <= 0 {
		t.Errorf("SimCycles = %d, want > 0", first.SimCycles)
	}
}

func TestKernelCycleDeterminism(t *testing.T) {
	run := func() cedar.KernelResult {
		m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
		res, err := cedar.RankUpdate(m, 64, cedar.RKPref)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	if first.Cycles != second.Cycles {
		t.Errorf("rank-64 update cycle counts disagree: %d vs %d", first.Cycles, second.Cycles)
	}
	if first.Flops != second.Flops || first.MFLOPS != second.MFLOPS {
		t.Errorf("rank-64 update results disagree: %+v vs %+v", first.Result, second.Result)
	}
}

// TestScopeArtifactsDeterminism is the observability acceptance check:
// the same instrumented run twice must yield byte-identical Chrome trace
// JSON and metrics CSV.
func TestScopeArtifactsDeterminism(t *testing.T) {
	run := func() (trace, metrics []byte) {
		hub := cedar.NewHub()
		m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{Scope: hub})
		if _, err := cedar.RankUpdate(m, 64, cedar.RKPref); err != nil {
			t.Fatal(err)
		}
		var tb, mb bytes.Buffer
		if err := hub.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := hub.WriteMetricsCSV(&mb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), mb.Bytes()
	}
	t1, m1 := run()
	t2, m2 := run()
	if !bytes.Equal(t1, t2) {
		t.Error("trace JSON differs between identical instrumented runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics CSV differs between identical instrumented runs")
	}
	if !bytes.Contains(m1, []byte("ce.active_cycles")) {
		t.Error("metrics CSV missing expected ce.active_cycles counter")
	}
	if !bytes.Contains(t1, []byte("traceEvents")) {
		t.Error("trace output is not Chrome trace-event JSON")
	}
}

// TestParallelVsSequentialEquality is the cedarfleet acceptance check:
// the worker pool must be invisible in every observable byte stream. It
// runs a representative slice of the experiment suite at -jobs 1 and
// -jobs 8 and byte-compares the formatted report text, the cedarsim
// -json rendering, and the hub's trace and metrics artifacts. It runs
// under -race on purpose — the pool is enabled, so the detector sees the
// real parallel execution.
func TestParallelVsSequentialEquality(t *testing.T) {
	type artifacts struct {
		report, jsonOut, trace, metrics []byte
	}
	run := func(jobs int) artifacts {
		t.Helper()
		cedar.SetJobs(jobs)
		defer cedar.SetJobs(0)
		cedar.ResetRunCache()
		hub := cedar.NewHub()
		var rep bytes.Buffer

		t1, err := cedar.RunTable1(64, hub)
		if err != nil {
			t.Fatal(err)
		}
		rep.WriteString(t1.Format())
		ov, err := cedar.RunOverheads(hub)
		if err != nil {
			t.Fatal(err)
		}
		rep.WriteString(ov.Format())
		bw, err := cedar.RunMemBW(256, hub)
		if err != nil {
			t.Fatal(err)
		}
		rep.WriteString(bw.Format())
		rep.WriteString(cedar.FormatAttribution(hub.Attribution()))

		// The payload of the cedarsim -json shape: result plus the
		// experiment's metric slice. The run-metadata header is omitted
		// on purpose — it records the jobs value, the one field allowed
		// to differ between byte-compared runs.
		jsonOut, err := json.MarshalIndent(struct {
			Result  *cedar.Table1Result  `json:"result"`
			Metrics []cedar.MetricSample `json:"metrics"`
		}{t1, hub.SnapshotUnder("t1")}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}

		var tb, mb bytes.Buffer
		if err := hub.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := hub.WriteMetricsCSV(&mb); err != nil {
			t.Fatal(err)
		}
		return artifacts{rep.Bytes(), jsonOut, tb.Bytes(), mb.Bytes()}
	}

	seq, par := run(1), run(8)
	for _, cmp := range []struct {
		name      string
		got, want []byte
	}{
		{"report text", par.report, seq.report},
		{"JSON output", par.jsonOut, seq.jsonOut},
		{"trace JSON", par.trace, seq.trace},
		{"metrics CSV", par.metrics, seq.metrics},
	} {
		if !bytes.Equal(cmp.got, cmp.want) {
			t.Errorf("%s differs between -jobs 1 and -jobs 8", cmp.name)
		}
	}
	if len(seq.metrics) == 0 || len(seq.trace) == 0 {
		t.Error("equality check ran without artifacts; the hub saw nothing")
	}
}

// TestRunCacheMemoizes checks the process-wide run cache: with no hub
// attached, repeating an experiment reuses the memoized result, and
// ResetRunCache forces a fresh simulation.
func TestRunCacheMemoizes(t *testing.T) {
	cedar.ResetRunCache()
	first, err := cedar.RunOverheads()
	if err != nil {
		t.Fatal(err)
	}
	second, err := cedar.RunOverheads()
	if err != nil {
		t.Fatal(err)
	}
	if *first != *second {
		t.Errorf("memoized overheads disagree: %+v vs %+v", first, second)
	}
	cedar.ResetRunCache()
	third, err := cedar.RunOverheads()
	if err != nil {
		t.Fatal(err)
	}
	if *first != *third {
		t.Errorf("fresh run after ResetRunCache disagrees: %+v vs %+v", first, third)
	}
}

func TestReportBytesDeterminism(t *testing.T) {
	gen := func() string {
		var b strings.Builder
		err := cedar.WriteReport(&b, cedar.ReportConfig{
			SkipKernels:     true,
			SkipPerfect:     true,
			SkipMethodology: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if first, second := gen(), gen(); first != second {
		t.Errorf("report header bytes disagree across runs:\n%q\nvs\n%q", first, second)
	}
}

// TestFaultedRunDeterministic is the cedarfault acceptance check: a
// degraded run is as reproducible as a healthy one. The same fault plan
// (a dead bank, a jammed network stage, transient prefetch NACKs) at
// -jobs 1 and -jobs 8 must yield byte-identical table text, JSON, trace
// and metrics — the injector draws from a counter-based PRNG keyed on
// (seed, component, cycle), never from shared mutable state. Like the
// healthy equality test it runs under -race with the pool really on.
func TestFaultedRunDeterministic(t *testing.T) {
	plan := &cedar.FaultPlan{
		Seed: 0xCEDA,
		Faults: []cedar.Fault{
			{Kind: cedar.FaultBankDead, Module: 3},
			{Kind: cedar.FaultStageJam, Fabric: "fwd", Stage: 0, Line: -1, Rate: 0.05},
			{Kind: cedar.FaultPFUNack, Module: -1, Rate: 0.02},
		},
	}
	type artifacts struct {
		table, jsonOut, trace, metrics []byte
		rows                           []cedar.DegradedRow
	}
	run := func(jobs int) artifacts {
		t.Helper()
		cedar.SetJobs(jobs)
		defer cedar.SetJobs(0)
		cedar.ResetRunCache()
		hub := cedar.NewHub()
		rows, err := cedar.RunDegraded(48, plan, hub)
		if err != nil {
			t.Fatal(err)
		}
		jsonOut, err := json.MarshalIndent(struct {
			Result  []cedar.DegradedRow  `json:"result"`
			Metrics []cedar.MetricSample `json:"metrics"`
		}{rows, hub.SnapshotUnder("degraded")}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		var tb, mb bytes.Buffer
		if err := hub.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := hub.WriteMetricsCSV(&mb); err != nil {
			t.Fatal(err)
		}
		return artifacts{[]byte(cedar.FormatDegraded(rows)), jsonOut, tb.Bytes(), mb.Bytes(), rows}
	}

	seq, par := run(1), run(8)
	for _, cmp := range []struct {
		name      string
		got, want []byte
	}{
		{"degraded table text", par.table, seq.table},
		{"JSON output", par.jsonOut, seq.jsonOut},
		{"trace JSON", par.trace, seq.trace},
		{"metrics CSV", par.metrics, seq.metrics},
	} {
		if !bytes.Equal(cmp.got, cmp.want) {
			t.Errorf("%s differs between -jobs 1 and -jobs 8:\n-jobs 8:\n%s\n-jobs 1:\n%s",
				cmp.name, cmp.got, cmp.want)
		}
	}

	// The check is vacuous if nothing was actually injected: the healthy
	// baseline row must stay clean and the faulted rows must fire.
	if len(seq.rows) < 2 {
		t.Fatalf("degraded table has %d rows", len(seq.rows))
	}
	if seq.rows[0].Injected != 0 || seq.rows[0].DeadMods != 0 {
		t.Errorf("healthy baseline row saw faults: %+v", seq.rows[0])
	}
	injected := int64(0)
	for _, r := range seq.rows[1:] {
		injected += r.Injected + int64(r.DeadMods)
	}
	if injected == 0 {
		t.Error("no scenario injected any fault; the plan never fired")
	}
	if !bytes.Contains(seq.metrics, []byte("fault.")) {
		t.Error("metrics CSV carries no fault.* counters")
	}
}
