#!/usr/bin/env bash
# check.sh — the full local verification gate. Run from anywhere inside
# the repo; CI and pre-commit hooks should invoke exactly this script so
# there is one definition of "green".
#
#   FUZZTIME=30s scripts/check.sh    # longer fuzz smoke (default 5s each)
set -euo pipefail
cd "$(dirname "$0")/.."

FUZZTIME="${FUZZTIME:-5s}"

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

# cedarvet runs after stock vet on purpose: its analyzers assume a
# vet-clean tree (no unreachable code, no misused builtins), so stock
# vet findings would only show up here as noise. The -json artifact is
# what CI uploads; on failure we print it so the findings are visible in
# the log too.
echo "==> cedarvet (hot-path allocs, layering, concurrency, error flow, determinism)"
mkdir -p artifacts
if ! go run ./cmd/cedarvet -json ./... > artifacts/cedarvet.json; then
  cat artifacts/cedarvet.json
  echo "cedarvet: findings (see artifacts/cedarvet.json)" >&2
  exit 1
fi

echo "==> go test ./..."
go test ./...

echo "==> go test -race ./..."
# The full-report integration tests skip themselves under -race (they
# multiply minutes of simulation by the detector's overhead); the line
# above runs them unraced.
go test -race ./...

echo "==> cedarfleet parallel-vs-sequential equality (-race, pool enabled)"
# The worker pool must be invisible: -jobs 8 and -jobs 1 byte-identical
# report/JSON/trace/metrics, with the detector watching the real parallel
# execution — for healthy runs and for fault-injected (cedarfault)
# degraded runs alike. -count=1 defeats the test cache so the gate always
# exercises the pool.
go test -race -count=1 -run '^(TestParallelVsSequentialEquality|TestFaultedRunDeterministic|TestBenchArtifactDeterminism)$' .

echo "==> stepped-vs-event engine equivalence (-race)"
# The event wheel (internal/sim) skips sleeping components and jumps the
# clock over empty cycles; both must be invisible. These run the suite
# with the wheel on and with pure per-cycle stepping and byte-compare
# every artifact, plus the seeded random-interleaving property test.
go test -race -count=1 -run '^(TestSteppedVsEventEquality|TestSteppedVsEventDegraded)$' .
go test -race -count=1 -run '^TestRandomWakeInterleavingsMatchStepped$' ./internal/sim

echo "==> sharded-vs-sequential engine equality (-race, parallel phase A)"
# The intra-run parallel engine must be invisible: -shards 1 and
# -shards N byte-identical report/JSON/trace/metrics — healthy and
# fault-degraded — with the race detector watching the real phase-A
# worker pool. Plus the machine-level equality run, the seeded property
# test over random shard counts and worker interleavings, and the
# all-asleep-shard jump regression.
go test -race -count=1 -run '^(TestShardsVsSequentialEquality|TestShardsVsSequentialDegraded)$' .
go test -race -count=1 -run '^(TestShardedMachineMatchesSequential|TestAttributionConservationParallel)$' ./internal/core
go test -race -count=1 -run '^(TestShardedMatchesFlat|TestSleepingShardDoesNotBlockJump)$' ./internal/sim

echo "==> cedarserve cached-vs-fresh response equality (-race)"
# The serving daemon's cache must be invisible: a response served from
# the in-process cache, from a coalesced in-flight computation, or from
# the durable on-disk store across a daemon restart must be
# byte-identical to the freshly simulated one — with the race detector
# watching the real concurrent submissions. The store's own half of the
# contract is its durable round trip. Plus the fleet-pool crash-safety
# regressions: a panicking job surfaces on the caller, never a stray
# goroutine, and a failed cache copy recomputes instead of aliasing.
go test -race -count=1 -run '^(TestCacheHitByteEquality|TestCoalescedRequestsShareOneSimulation|TestPanicBecomes500)$' ./internal/serve
go test -race -count=1 -run '^TestRoundTripDeterminism$' ./internal/store
go test -race -count=1 -run '^(TestWorkerPanicRethrownOnCaller|TestCopyFailureRecomputesNeverAliases|TestHealthyAfterFaultedNotServedDegraded)$' ./internal/fleet

echo "==> cedarbench smoke campaign + regression diff"
# The smoke campaign runs the full matrix once per declared jobs value
# ([1, 8]) and fails itself if the deterministic sections differ, so a
# successful run is a cross-jobs byte-equality proof. The diff then
# gates simcycles (tight, they are deterministic) and allocations
# (loose, they drift with the toolchain) against the committed baseline.
go run ./cmd/cedarbench run -config bench/campaigns/smoke.json -out artifacts/BENCH_smoke.json -q
go run ./cmd/cedarbench diff bench/BENCH_smoke.json artifacts/BENCH_smoke.json -threshold 5% -alloc-threshold 30%

echo "==> cedarbench latency campaign (event-wheel win) + regression diff"
# The latency campaign is dominated by long memory waits — exactly what
# the event wheel jumps over — so its simcycles are also the regression
# gate on the wheel's scheduling (a missed wake changes cycle counts
# before it changes anything else).
go run ./cmd/cedarbench run -config bench/campaigns/latency.json -out artifacts/BENCH_latency.json -q
go run ./cmd/cedarbench diff bench/BENCH_latency.json artifacts/BENCH_latency.json -threshold 5% -alloc-threshold 30%

echo "==> cedarbench wide campaign (16/64-cluster presets, shards 1 vs 4) + regression diff"
# The wide campaign runs the scale-up machines once per declared shards
# value and fails itself if the deterministic sections differ, so a
# green run is a sequential-vs-sharded byte-equality proof on the
# machines big enough for sharding to matter. The diff gates their
# simcycles like any other committed baseline.
go run ./cmd/cedarbench run -config bench/campaigns/wide.json -out artifacts/BENCH_wide.json -q
go run ./cmd/cedarbench diff bench/BENCH_wide.json artifacts/BENCH_wide.json -threshold 5% -alloc-threshold 30%

echo "==> fuzz smoke ($FUZZTIME per target)"
go test -run='^$' -fuzz='^FuzzOmegaRouting$' -fuzztime="$FUZZTIME" ./internal/network
go test -run='^$' -fuzz='^FuzzInstability$' -fuzztime="$FUZZTIME" ./internal/ppt
go test -run='^$' -fuzz='^FuzzBands$' -fuzztime="$FUZZTIME" ./internal/ppt

echo "OK: build, vet, cedarvet, race tests, shard equality, serve equality, bench campaigns and fuzz smoke all green"
