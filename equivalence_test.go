// Stepped-vs-event equivalence: the event-wheel engine (internal/sim)
// skips sleeping components and jumps the clock over empty cycles, and
// its whole contract is that neither is observable — every artifact must
// be byte-identical to the pure per-cycle stepped schedule. This file is
// the dynamic gate on that contract, the event-wheel analogue of
// TestParallelVsSequentialEquality: it runs the experiment suite once
// with SetSteppedEngine(true) and once with the wheel on, and
// byte-compares report text, JSON, Chrome trace, and metrics CSV.
package cedar_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cedar"
)

// suiteArtifacts runs the representative experiment slice (the same one
// the -jobs equality gate uses) under the current engine mode and
// collects every observable byte stream.
func suiteArtifacts(t *testing.T) (report, jsonOut, trace, metrics []byte) {
	t.Helper()
	cedar.ResetRunCache()
	hub := cedar.NewHub()
	var rep bytes.Buffer

	t1, err := cedar.RunTable1(64, hub)
	if err != nil {
		t.Fatal(err)
	}
	rep.WriteString(t1.Format())
	ov, err := cedar.RunOverheads(hub)
	if err != nil {
		t.Fatal(err)
	}
	rep.WriteString(ov.Format())
	bw, err := cedar.RunMemBW(256, hub)
	if err != nil {
		t.Fatal(err)
	}
	rep.WriteString(bw.Format())
	rep.WriteString(cedar.FormatAttribution(hub.Attribution()))

	jsonBytes, err := json.MarshalIndent(struct {
		Result  *cedar.Table1Result  `json:"result"`
		Metrics []cedar.MetricSample `json:"metrics"`
	}{t1, hub.SnapshotUnder("t1")}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}

	var tb, mb bytes.Buffer
	if err := hub.WriteChromeTrace(&tb); err != nil {
		t.Fatal(err)
	}
	if err := hub.WriteMetricsCSV(&mb); err != nil {
		t.Fatal(err)
	}
	return rep.Bytes(), jsonBytes, tb.Bytes(), mb.Bytes()
}

// TestSteppedVsEventEquality is the event-wheel acceptance check. The
// stepped run is ground truth (it is the schedule the machine model was
// validated against); the event run must reproduce it exactly, down to
// the cycle-stamped trace spans and the attribution table.
func TestSteppedVsEventEquality(t *testing.T) {
	if cedar.SteppedEngine() {
		t.Fatal("stepped mode already on at test entry; a previous test leaked the setting")
	}
	cedar.SetSteppedEngine(true)
	sRep, sJSON, sTrace, sMetrics := suiteArtifacts(t)
	cedar.SetSteppedEngine(false)
	eRep, eJSON, eTrace, eMetrics := suiteArtifacts(t)
	cedar.ResetRunCache()

	for _, cmp := range []struct {
		name      string
		got, want []byte
	}{
		{"report text", eRep, sRep},
		{"JSON output", eJSON, sJSON},
		{"trace JSON", eTrace, sTrace},
		{"metrics CSV", eMetrics, sMetrics},
	} {
		if !bytes.Equal(cmp.got, cmp.want) {
			t.Errorf("%s differs between stepped and event engines", cmp.name)
		}
	}
	if len(sMetrics) == 0 || len(sTrace) == 0 {
		t.Error("equality check ran without artifacts; the hub saw nothing")
	}
}

// TestSteppedVsEventDegraded extends the gate to faulted machines: the
// injector draws from a counter-based PRNG keyed on (seed, component,
// cycle), so skipping a component's no-op ticks must not perturb a
// single draw. A divergence here means some fault site consumes
// randomness on cycles the wheel skips.
func TestSteppedVsEventDegraded(t *testing.T) {
	plan := &cedar.FaultPlan{
		Seed: 0xCEDA,
		Faults: []cedar.Fault{
			{Kind: cedar.FaultBankDead, Module: 3},
			{Kind: cedar.FaultStageJam, Fabric: "fwd", Stage: 0, Line: -1, Rate: 0.05},
			{Kind: cedar.FaultPFUNack, Module: -1, Rate: 0.02},
		},
	}
	run := func() []byte {
		t.Helper()
		cedar.ResetRunCache()
		rows, err := cedar.RunDegraded(48, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		return []byte(cedar.FormatDegraded(rows))
	}
	cedar.SetSteppedEngine(true)
	stepped := run()
	cedar.SetSteppedEngine(false)
	event := run()
	cedar.ResetRunCache()
	if !bytes.Equal(event, stepped) {
		t.Errorf("degraded table differs between stepped and event engines:\nevent:\n%s\nstepped:\n%s",
			event, stepped)
	}
}
