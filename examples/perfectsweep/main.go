// perfectsweep runs a few Perfect Benchmark proxies through their
// variants — serial, KAP-compiled, automatable, hand-optimized — the way
// §3.3 and §4.2 of the paper discuss them: KAP alone buys little; the
// automatable transformations (array privatization, parallel reductions,
// runtime dependence tests...) buy a lot; algorithmic hand work buys the
// rest.
//
//	go run ./examples/perfectsweep [-code QCD]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"cedar"
)

func main() {
	code := flag.String("code", "QCD,DYFESM,BDNA", "comma-separated Perfect codes")
	flag.Parse()

	want := map[string]bool{}
	for _, c := range strings.Split(*code, ",") {
		want[strings.ToUpper(strings.TrimSpace(c))] = true
	}

	pm := cedar.DefaultParams()
	for _, prof := range cedar.PerfectCodes() {
		if !want[prof.Name] {
			continue
		}
		serial, err := cedar.RunPerfect(pm, prof, cedar.PerfectSpec{Variant: cedar.PerfectSerial})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: serial %.0f s\n", prof.Name, serial.Seconds)
		for _, spec := range []cedar.PerfectSpec{
			{Variant: cedar.PerfectKAP},
			{Variant: cedar.PerfectAuto},
			{Variant: cedar.PerfectAuto, NoSync: true},
			{Variant: cedar.PerfectAuto, NoSync: true, NoPref: true},
			{Variant: cedar.PerfectHand},
		} {
			out, err := cedar.RunPerfect(pm, prof, spec)
			if err != nil {
				log.Fatal(err)
			}
			name := spec.Variant.String()
			if spec.NoSync {
				name += " -sync"
			}
			if spec.NoPref {
				name += " -pref"
			}
			fmt.Printf("  %-22s %8.1f s   speedup %5.1f   %6.2f MFLOPS\n",
				name, out.Seconds, serial.Seconds/out.Seconds, out.MFLOPS)
		}
	}
}
