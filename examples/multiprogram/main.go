// multiprogram demonstrates why the paper collected every measurement in
// single-user mode "to avoid the non-determinism of multiprogramming": a
// barrier-synchronized program co-scheduled with background compute work
// slows down far beyond the 2× its machine share predicts, because its
// barriers spin while its gang partners run the other task.
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"

	"cedar"
)

func main() {
	p := cedar.DefaultParams()
	body := func(i int) []*cedar.Instr {
		return []*cedar.Instr{{Op: cedar.OpScalar, Cycles: 50, Flops: 10}}
	}
	phases := func() []cedar.Phase {
		var phs []cedar.Phase
		for k := 0; k < 6; k++ {
			phs = append(phs, cedar.XDoall{N: 64, Body: body})
		}
		return phs
	}

	// Single-user run, as the paper measured.
	mSolo := cedar.NewMachine(p, cedar.Options{})
	solo, err := cedar.NewRuntime(mSolo, cedar.RuntimeConfig{UseCedarSync: true}, phases()...).Run(1 << 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-user:        %7d cycles (%.2f ms)\n", solo.Cycles, solo.Seconds*1e3)

	// The same program time-shared with a compute-bound task.
	mShared := cedar.NewMachine(p, cedar.Options{})
	rt := cedar.NewRuntime(mShared, cedar.RuntimeConfig{UseCedarSync: true}, phases()...)
	background := cedar.FixedWork(400, 200)
	ts := cedar.NewTimeSharer(p, 3000, rt, background)
	if _, err := mShared.Run(ts, 1<<40); err != nil {
		log.Fatal(err)
	}
	shared := ts.DoneAt(0)
	fmt.Printf("multiprogrammed:    %7d cycles (%.1f× slower on a 2-way share)\n",
		shared, float64(shared)/float64(solo.Cycles))
	fmt.Printf("cluster rotations:  %d\n", ts.Switches())
	fmt.Println("\nthe paper: \"All the results ... were collected in single-user mode")
	fmt.Println("to avoid the non-determinism of multiprogramming.\"")
}
