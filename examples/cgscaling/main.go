// cgscaling reproduces the shape of the paper's PPT4 study (§4.3): a
// 5-diagonal conjugate gradient solver swept over processor counts and
// problem sizes. Cedar shows scalable high performance for systems larger
// than ≈10-16K unknowns and intermediate performance for debugging-sized
// runs.
//
//	go run ./examples/cgscaling [-iters 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"cedar"
)

func main() {
	iters := flag.Int("iters", 3, "CG iterations per measurement")
	flag.Parse()

	fmt.Printf("%8s", "N \\ P")
	ps := []int{2, 8, 32}
	for _, p := range ps {
		fmt.Printf("  %6d CE", p)
	}
	fmt.Println("   (MFLOPS)")

	for _, n := range []int{1 << 10, 8 << 10, 32 << 10} {
		fmt.Printf("%8d", n)
		for _, p := range ps {
			m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
			res, err := cedar.CG(m, cedar.CGConfig{N: n, Iters: *iters, MaxCEs: p})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %9.1f", res.MFLOPS)
		}
		fmt.Println()
	}
	fmt.Println("\npaper: 34-48 MFLOPS on 32 processors for 10K <= N <= 172K")
}
