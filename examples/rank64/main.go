// rank64 runs the paper's central memory-system experiment (§4.1,
// Table 1): a rank-64 update to an n×n matrix in the three memory
// variants — plain global accesses, prefetched global accesses, and the
// cached cluster work array — showing how prefetching masks the 13-cycle
// global latency and how the cluster caches recover the rest.
//
//	go run ./examples/rank64 [-n 256] [-clusters 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"cedar"
)

func main() {
	n := flag.Int("n", 256, "matrix order (the paper used 1K)")
	clusters := flag.Int("clusters", 4, "clusters to use (1-4)")
	flag.Parse()

	p := cedar.DefaultParams()
	p.Clusters = *clusters

	for _, mode := range []cedar.RKMode{cedar.RKNoPref, cedar.RKPref, cedar.RKCache} {
		m, err := cedar.NewMachineErr(p, cedar.Options{})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cedar.RankUpdate(m, *n, mode)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %7.1f MFLOPS  (first-word latency %.1f cyc, interarrival %.2f cyc)\n",
			mode, res.MFLOPS, res.Blocks.MeanLatency(), res.Blocks.MeanInterarrival())
	}
	fmt.Println("\npaper (n=1K, 4 clusters): GM/no-pref 55, GM/pref 104, GM/cache 208 MFLOPS")
}
