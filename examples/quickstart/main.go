// Quickstart: build a Cedar machine, write a small parallel program with
// the CEDAR FORTRAN runtime abstractions, and read back its performance.
//
// The program is a DOALL over 64 vector operations streaming from global
// memory through the prefetch units — the bread-and-butter pattern of
// Cedar codes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cedar"
)

func main() {
	// The machine as built: 4 clusters × 8 CEs, two-stage omega networks,
	// 32 global memory modules with synchronization processors.
	p := cedar.DefaultParams()
	m := cedar.NewMachine(p, cedar.Options{})

	// Place a working array in global memory.
	const vecLen = 512
	const iters = 64
	base := m.AllocGlobalAligned(iters*vecLen, 64)

	// Each iteration is one chained multiply-add sweep over its slice,
	// prefetched in 256-word blocks.
	body := func(i int) []*cedar.Instr {
		return []*cedar.Instr{{
			Op: cedar.OpVector, N: vecLen, Flops: 2,
			Srcs: []cedar.Stream{{
				Space:     cedar.SpaceGlobal,
				Base:      base + uint64(i*vecLen),
				Stride:    1,
				PrefBlock: 256,
			}},
		}}
	}

	// An XDOALL self-schedules the iterations over all 32 CEs using the
	// memory modules' Test-And-Add synchronization instructions.
	rt := cedar.NewRuntime(m,
		cedar.RuntimeConfig{UseCedarSync: true},
		cedar.XDoall{N: iters, Body: body},
	)
	res, err := rt.Run(100_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d flops in %d cycles (%.2f ms at %.0f ns per cycle)\n",
		res.Flops, res.Cycles, res.Seconds*1e3, cedar.CycleNS)
	fmt.Printf("aggregate rate: %.1f MFLOPS (machine peak %.0f, effective peak %.0f)\n",
		res.MFLOPS, p.PeakMFLOPS(), p.EffectivePeakMFLOPS())
}
