// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment and
// reports the headline quantities as custom metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. Sizes are reduced from the paper's
// (documented per benchmark); the shapes are the reproduction target.
// cmd/cedarsim, cmd/perfect and cmd/judge run the same experiments with
// formatted output and full sizes.
package cedar_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"cedar"
	"cedar/internal/params"
	"cedar/internal/tables"
)

// benchTableN is the rank-update matrix order used in benchmarks (the
// paper used 1K; 192 keeps -bench=. affordable while preserving shape).
const benchTableN = 192

// BenchmarkTable1 regenerates the rank-64 update memory study: MFLOPS for
// GM/no-pref, GM/pref and GM/cache on 1-4 clusters.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t1, err := tables.RunTable1(benchTableN)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t1.MFLOPS[0][3], "nopref-4cl-MFLOPS")
		b.ReportMetric(t1.MFLOPS[1][3], "pref-4cl-MFLOPS")
		b.ReportMetric(t1.MFLOPS[2][3], "cache-4cl-MFLOPS")
		b.ReportMetric(t1.PrefetchGain()[0], "pref-gain-1cl")
	}
}

// BenchmarkScopeOverhead measures the cost of the observability hub on
// Table 1: the disabled case (nil hub — every scope call short-circuits)
// must track BenchmarkTable1 within noise, and the enabled case bounds
// the price of full instrumentation.
func BenchmarkScopeOverhead(b *testing.B) {
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tables.RunTable1(benchTableN); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hub := cedar.NewHub()
			t1, err := tables.RunTable1(benchTableN, hub)
			if err != nil {
				b.Fatal(err)
			}
			if len(hub.Snapshot()) == 0 {
				b.Fatal("instrumented run registered no metrics")
			}
			b.ReportMetric(t1.MFLOPS[1][3], "pref-4cl-MFLOPS")
		}
	})
}

// BenchmarkTable2 regenerates the global-memory latency and interarrival
// study for the VL, TM, RK and CG kernels on 8/16/32 CEs.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t2, err := tables.RunTable2Small()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t2.Latency["RK"][32], "RK-latency-32CE")
		b.ReportMetric(t2.Inter["RK"][32], "RK-interarrival-32CE")
		b.ReportMetric(t2.Latency["VL"][8], "VL-latency-8CE")
	}
}

// benchSuite runs the Perfect suite once per process (three
// representative codes keep -bench=. tractable; cmd/perfect runs all
// thirteen) and shares the result across the table benchmarks, which
// differ only in how they analyze it.
var (
	benchSuiteOnce sync.Once
	benchSuiteRes  *tables.SuiteResult
	benchSuiteErr  error
)

func benchSuite(b *testing.B) *tables.SuiteResult {
	b.Helper()
	benchSuiteOnce.Do(func() {
		codes := cedar.PerfectCodes()
		var sel []cedar.PerfectProfile
		for _, c := range codes {
			switch c.Name {
			case "ARC2D", "QCD", "SPICE":
				sel = append(sel, c)
			}
		}
		benchSuiteRes, benchSuiteErr = tables.RunSuite(params.Default(), sel, nil)
	})
	if benchSuiteErr != nil {
		b.Fatal(benchSuiteErr)
	}
	return benchSuiteRes
}

// BenchmarkTable3 regenerates the Perfect Benchmarks speedup/MFLOPS table
// (three-code slice: the high performer, the RNG-bound code, and the
// suite's poor performer).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		t3 := tables.BuildTable3(s)
		for _, r := range t3.Rows {
			switch r.Code {
			case "ARC2D":
				b.ReportMetric(r.AutoSpeedup, "ARC2D-auto-speedup")
			case "QCD":
				b.ReportMetric(r.AutoSpeedup, "QCD-auto-speedup")
			case "SPICE":
				b.ReportMetric(r.MFLOPS, "SPICE-MFLOPS")
			}
		}
	}
}

// BenchmarkTable4 regenerates the hand-optimization results.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		for _, r := range tables.BuildTable4(s) {
			if r.Code == "QCD" {
				b.ReportMetric(r.Improvement, "QCD-hand-improvement")
			}
		}
	}
}

// BenchmarkTable5 regenerates the instability analysis.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		t5 := tables.BuildTable5(s)
		b.ReportMetric(t5.In["Cedar"][0], "Cedar-In-e0")
		b.ReportMetric(t5.In["YMP/8"][0], "YMP-In-e0")
	}
}

// BenchmarkTable6 regenerates the restructuring-efficiency bands.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		t6 := tables.BuildTable6(s)
		b.ReportMetric(float64(t6.CedarHigh), "Cedar-high-codes")
		b.ReportMetric(float64(t6.YMPUnacc), "YMP-unacceptable-codes")
	}
}

// BenchmarkFigure3 regenerates the Cedar-vs-YMP efficiency scatter.
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite(b)
		f := tables.BuildFigure3(s)
		b.ReportMetric(float64(f.CedarUnacc), "Cedar-unacceptable")
		b.ReportMetric(float64(f.YMPHigh), "YMP-high")
	}
}

// BenchmarkPPT4 regenerates the scalability study (reduced sweep).
func BenchmarkPPT4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := tables.RunPPT4(false)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := res.Cedar32Range()
		b.ReportMetric(lo, "CG-32CE-min-MFLOPS")
		b.ReportMetric(hi, "CG-32CE-max-MFLOPS")
	}
}

// BenchmarkDoallOverheads regenerates the §3.2 runtime costs.
func BenchmarkDoallOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ov, err := tables.RunOverheads()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(ov.XDoallStartupUS, "XDOALL-startup-us")
		b.ReportMetric(ov.FetchNoSyncUS, "fetch-library-us")
		b.ReportMetric(ov.FetchCedarSyncUS, "fetch-cedarsync-us")
	}
}

// BenchmarkNetworkAblation supports the [Turn93] claim: contention
// degradation is an implementation constraint (queue depth), not the
// network type.
func BenchmarkNetworkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.RunNetworkAblation(benchTableN)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MFLOPS, "omega-2w-MFLOPS")
		b.ReportMetric(rows[1].MFLOPS, "omega-8w-MFLOPS")
		b.ReportMetric(rows[2].MFLOPS, "crossbar-MFLOPS")
	}
}

// BenchmarkPrefetchBlock isolates the prefetch block-size design choice.
func BenchmarkPrefetchBlock(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.RunPrefetchBlockAblation(benchTableN)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MFLOPS, "noprefetch-MFLOPS")
		b.ReportMetric(rows[1].MFLOPS, "block32-MFLOPS")
		b.ReportMetric(rows[len(rows)-1].MFLOPS, "block512-MFLOPS")
	}
}

// BenchmarkSchedulingAblation compares static, self- and guided
// scheduling on balanced and imbalanced loops.
func BenchmarkSchedulingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.RunSchedulingAblation()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workload == "imbalanced" && r.CedarSync {
				switch r.Policy {
				case "static":
					b.ReportMetric(float64(r.Cycles), "imbalanced-static-cycles")
				case "guided":
					b.ReportMetric(float64(r.Cycles), "imbalanced-guided-cycles")
				}
			}
		}
	}
}

// BenchmarkMemBW runs the [GJTV91] characterization at full machine width.
func BenchmarkMemBW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bw, err := tables.RunMemBW(2048)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(bw.PeakMBps(), "peak-MBps")
	}
}

// BenchmarkScaledCedar probes PPT5: the same kernels on an 8-cluster
// Cedar-like machine with a proportionally scaled network and memory.
func BenchmarkScaledCedar(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := tables.RunScaledCedar(benchTableN)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].RKMFLOPS, "RK-4cl-MFLOPS")
		b.ReportMetric(rows[len(rows)-1].RKMFLOPS, "RK-8cl-MFLOPS")
	}
}

// BenchmarkSuiteParallel regenerates the kernel-level report sections at
// 1 and 4 workers; the ratio of the two timings is the cedarfleet
// speedup (≈1 on a single-core host; the 4-core acceptance target is
// ≥2×). The run cache resets every iteration so the benchmark measures
// simulation, not memoization.
func BenchmarkSuiteParallel(b *testing.B) {
	for _, jobs := range []int{1, 4} {
		b.Run(fmt.Sprintf("jobs%d", jobs), func(b *testing.B) {
			cedar.SetJobs(jobs)
			b.Cleanup(func() { cedar.SetJobs(0) })
			for i := 0; i < b.N; i++ {
				cedar.ResetRunCache()
				err := cedar.WriteReport(io.Discard, cedar.ReportConfig{
					RankN:           benchTableN,
					SkipPerfect:     true,
					SkipMethodology: true,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkKernelCG measures the CG kernel itself at a PPT4 point.
func BenchmarkKernelCG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
		res, err := cedar.CG(m, cedar.CGConfig{N: 16 << 10, Iters: 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MFLOPS, "MFLOPS")
	}
}

// BenchmarkSimulatorThroughput measures the simulator itself: simulated
// machine cycles per host second on the prefetched rank update.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
		res, err := cedar.RankUpdate(m, 128, cedar.RKPref)
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}
