// Tests of the public facade: everything a downstream user touches.
package cedar_test

import (
	"testing"

	"cedar"
)

func TestDefaultParamsAreCedarAsBuilt(t *testing.T) {
	p := cedar.DefaultParams()
	if p.Clusters != 4 || p.CEsPerCluster != 8 {
		t.Fatalf("default machine is %d×%d, want 4×8", p.Clusters, p.CEsPerCluster)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewMachineAndAllocators(t *testing.T) {
	m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
	if len(m.CEs) != 32 {
		t.Fatalf("%d CEs", len(m.CEs))
	}
	a := m.AllocGlobal(10)
	b := m.AllocGlobal(10)
	if b <= a {
		t.Error("allocator not monotone")
	}
}

func TestNewMachineErrReportsBadConfig(t *testing.T) {
	p := cedar.DefaultParams()
	p.Clusters = 0
	if _, err := cedar.NewMachineErr(p, cedar.Options{}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestRuntimeThroughFacade(t *testing.T) {
	m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
	ran := 0
	rt := cedar.NewRuntime(m, cedar.RuntimeConfig{UseCedarSync: true},
		cedar.XDoall{N: 16, Body: func(i int) []*cedar.Instr {
			return []*cedar.Instr{{Op: cedar.OpScalar, Cycles: 10, Flops: 5,
				OnDone: func(int64) { ran++ }}}
		}})
	res, err := rt.Run(10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 16 {
		t.Errorf("ran %d iterations, want 16", ran)
	}
	if res.Flops != 16*5 {
		t.Errorf("flops = %d", res.Flops)
	}
}

func TestKernelsThroughFacade(t *testing.T) {
	m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
	res, err := cedar.RankUpdate(m, 64, cedar.RKPref)
	if err != nil {
		t.Fatal(err)
	}
	if res.MFLOPS <= 0 || res.Blocks.Blocks() == 0 {
		t.Errorf("kernel result incomplete: %+v", res.Result)
	}

	m2 := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
	if _, err := cedar.VectorLoad(m2, 512, 1); err != nil {
		t.Fatal(err)
	}
	m3 := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
	if _, err := cedar.TriMat(m3, 2048); err != nil {
		t.Fatal(err)
	}
	m4 := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{})
	if _, err := cedar.CG(m4, cedar.CGConfig{N: 1024, Iters: 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPerfectThroughFacade(t *testing.T) {
	codes := cedar.PerfectCodes()
	if len(codes) != 13 {
		t.Fatalf("%d codes", len(codes))
	}
	out, err := cedar.RunPerfect(cedar.DefaultParams(), codes[0],
		cedar.PerfectSpec{Variant: cedar.PerfectAuto})
	if err != nil {
		t.Fatal(err)
	}
	if out.Seconds <= 0 || out.MFLOPS <= 0 {
		t.Errorf("outcome incomplete: %+v", out)
	}
}

func TestMethodologyThroughFacade(t *testing.T) {
	if cedar.Speedup(100, 10) != 10 {
		t.Error("speedup")
	}
	if cedar.Efficiency(16, 32) != 0.5 {
		t.Error("efficiency")
	}
	if cedar.BandOf(16, 32) != cedar.BandHigh {
		t.Error("band high")
	}
	if cedar.BandOf(1, 32) != cedar.BandUnacceptable {
		t.Error("band unacceptable")
	}
	if cedar.Instability([]float64{1, 10}, 0) != 10 {
		t.Error("instability")
	}
}

func TestCrossbarOptionThroughFacade(t *testing.T) {
	m := cedar.NewMachine(cedar.DefaultParams(), cedar.Options{Fabric: cedar.FabricCrossbar})
	res, err := cedar.RankUpdate(m, 64, cedar.RKPref)
	if err != nil {
		t.Fatal(err)
	}
	if res.MFLOPS <= 0 {
		t.Error("crossbar machine did no work")
	}
}

func TestScaledParamsThroughFacade(t *testing.T) {
	p := cedar.ScaledParams(8)
	if p.CEs() != 64 {
		t.Fatalf("scaled CEs = %d", p.CEs())
	}
	m := cedar.NewMachine(p, cedar.Options{})
	if len(m.CEs) != 64 {
		t.Fatal("machine does not match params")
	}
}
