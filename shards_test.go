// Shards-vs-sequential equivalence: the intra-run parallel engine
// (internal/sim shard mode) ticks cluster shards concurrently and drains
// cross-shard effects through ordered mailboxes, and its whole contract
// is that the concurrency is unobservable — every artifact must be
// byte-identical to the sequential single-shard schedule. This file is
// the dynamic gate on that contract, the shard analogue of
// TestSteppedVsEventEquality: it runs the experiment suite once with
// SetShards(1) and once with SetShards(4), and byte-compares report
// text, JSON, Chrome trace, and metrics CSV. scripts/check.sh runs it
// under -race, so the detector watches the real phase-A concurrency.
package cedar_test

import (
	"bytes"
	"testing"

	"cedar"
)

// shardedArtifacts collects the suite's observable byte streams under a
// given worker bound.
func shardedArtifacts(t *testing.T, shards int) (report, jsonOut, trace, metrics []byte) {
	t.Helper()
	cedar.SetShards(shards)
	defer cedar.SetShards(1)
	return suiteArtifacts(t)
}

// TestShardsVsSequentialEquality is the parallel-engine acceptance
// check. The sequential run is ground truth; the sharded run must
// reproduce it exactly, down to the cycle-stamped trace spans and the
// attribution table.
func TestShardsVsSequentialEquality(t *testing.T) {
	if cedar.Shards() != 1 {
		t.Fatal("shards already set at test entry; a previous test leaked the setting")
	}
	sRep, sJSON, sTrace, sMetrics := shardedArtifacts(t, 1)
	pRep, pJSON, pTrace, pMetrics := shardedArtifacts(t, 4)
	cedar.ResetRunCache()

	for _, cmp := range []struct {
		name      string
		got, want []byte
	}{
		{"report text", pRep, sRep},
		{"JSON output", pJSON, sJSON},
		{"trace JSON", pTrace, sTrace},
		{"metrics CSV", pMetrics, sMetrics},
	} {
		if !bytes.Equal(cmp.got, cmp.want) {
			t.Errorf("%s differs between -shards 4 and -shards 1", cmp.name)
		}
	}
	if len(sMetrics) == 0 || len(sTrace) == 0 {
		t.Error("equality check ran without artifacts; the hub saw nothing")
	}
}

// TestShardsVsSequentialDegraded extends the gate to faulted machines:
// the injector draws from a counter-based PRNG keyed on (seed,
// component, cycle), and every draw site runs from the serial hub pass,
// so shard scheduling must not perturb a single draw.
func TestShardsVsSequentialDegraded(t *testing.T) {
	plan := &cedar.FaultPlan{
		Seed: 0xCEDA,
		Faults: []cedar.Fault{
			{Kind: cedar.FaultBankDead, Module: 3},
			{Kind: cedar.FaultStageJam, Fabric: "fwd", Stage: 0, Line: -1, Rate: 0.05},
			{Kind: cedar.FaultPFUNack, Module: -1, Rate: 0.02},
		},
	}
	run := func(shards int) []byte {
		t.Helper()
		cedar.ResetRunCache()
		cedar.SetShards(shards)
		defer cedar.SetShards(1)
		rows, err := cedar.RunDegraded(48, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		return []byte(cedar.FormatDegraded(rows))
	}
	sequential := run(1)
	sharded := run(4)
	cedar.ResetRunCache()
	if !bytes.Equal(sharded, sequential) {
		t.Errorf("degraded table differs between -shards 4 and -shards 1:\nsharded:\n%s\nsequential:\n%s",
			sharded, sequential)
	}
}
